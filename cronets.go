// Package cronets is the public facade of the CRONets reproduction: build
// cloud-routed overlay networks over a generated Internet-scale topology,
// measure the paper's four path configurations (direct, tunnel overlay,
// split-TCP overlay, discrete bound), and select paths automatically with
// MPTCP-style coupled congestion control.
//
// A minimal session:
//
//	net, err := cronets.GenerateInternet(cronets.DefaultTopology(42))
//	cn := cronets.New(net, cronets.DefaultConfig())
//	rng := rand.New(rand.NewSource(1))
//	pr, err := cn.MeasurePair(rng, net.Servers[0], net.Clients[0],
//	    cn.DCCities(), cronets.Spec{Duration: 30 * time.Second}, 0)
//
// The experiment runners that regenerate every table and figure of the
// paper live in internal/experiments and are surfaced by
// cmd/cronets-bench; the real-socket relay/tunnel/multipath stack lives in
// internal/{relay,tunnel,multipath,netem,measure} and is exercised by the
// examples.
package cronets

import (
	"math/rand"
	"time"

	"cronets/internal/core"
	"cronets/internal/mptcpsim"
	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

// Re-exported types: the facade aliases the core and topology types so
// downstream code can use the root package alone for simulation work.
type (
	// CRONet is a cloud-routed overlay network over a generated Internet.
	CRONet = core.CRONet
	// Config holds measurement parameters.
	Config = core.Config
	// PathKind identifies direct / overlay / split-overlay / discrete.
	PathKind = core.PathKind
	// Measurement is one path measurement (throughput, retx rate, RTT).
	Measurement = core.Measurement
	// PairResult is a full (src, dst) measurement across all paths.
	PairResult = core.PairResult
	// Internet is a generated topology.
	Internet = topology.Internet
	// Topology parameterizes Internet generation.
	Topology = topology.Config
	// Host is an endpoint (client, server, or cloud DC).
	Host = topology.Host
	// Spec bounds a measurement by duration and/or bytes.
	Spec = tcpsim.Spec
	// Coupling selects MPTCP congestion coupling (LIA, OLIA, Uncoupled).
	Coupling = mptcpsim.Coupling
)

// Path kinds (see PathKind).
const (
	Direct          = core.Direct
	Overlay         = core.Overlay
	SplitOverlay    = core.SplitOverlay
	DiscreteOverlay = core.DiscreteOverlay
)

// MPTCP couplings.
const (
	LIA       = mptcpsim.LIA
	OLIA      = mptcpsim.OLIA
	Uncoupled = mptcpsim.Uncoupled
)

// New builds a CRONet over a generated Internet.
func New(in *Internet, cfg Config) *CRONet { return core.New(in, cfg) }

// DefaultConfig returns the measurement parameters used by the paper-scale
// experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultTopology returns the paper-scale topology configuration (110
// client stubs, 10 server stubs, 5 cloud data centers).
func DefaultTopology(seed int64) Topology { return topology.DefaultConfig(seed) }

// GenerateInternet builds an Internet from the configuration.
func GenerateInternet(cfg Topology) (*Internet, error) { return topology.Generate(cfg) }

// MeasureMPTCP runs one MPTCP connection from src to dst across the direct
// path plus one subflow per overlay DC. See CRONet.MeasureMPTCP for the
// full-control variant; this helper uses the paper's defaults (OLIA
// coupling, Reno subflow decrease, 100 Mbps NIC).
func MeasureMPTCP(cn *CRONet, rng *rand.Rand, src, dst Host, dcs []string,
	spec Spec, at time.Duration) (core.MPTCPResult, error) {
	return cn.MeasureMPTCP(rng, src, dst, dcs, OLIA, tcpsim.Reno, 100, spec, at)
}
