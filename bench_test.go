package cronets_test

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each benchmark runs the corresponding experiment at
// the paper's scale and reports the headline statistics as custom metrics
// next to the paper's values (encoded in the metric names as _paperNNN
// where useful). Run with:
//
//	go test -bench=. -benchmem
//
// The same runners back cmd/cronets-bench, which prints full rows/series.

import (
	"testing"

	"cronets/internal/experiments"
)

const benchSeed = 42

func newSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.NewSuite(benchSeed, experiments.ScaleFull)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func runControlled(b *testing.B, s *experiments.Suite) experiments.PrevalenceResult {
	b.Helper()
	res, err := s.RunControlled()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig2PrevalenceCDF regenerates Figure 2: 6,600 paths of the
// real-life web-server experiment (paper: plain improves 49% with avg
// 1.29; split improves 78% with avg 3.27 and median 1.67).
func BenchmarkFig2PrevalenceCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res, err := s.RunRealLife()
		if err != nil {
			b.Fatal(err)
		}
		plain, split := res.PlainSummary(), res.SplitSummary()
		b.ReportMetric(float64(res.PathsSampled), "paths")
		b.ReportMetric(plain.FracImproved*100, "plain_improved_%_paper49")
		b.ReportMetric(split.FracImproved*100, "split_improved_%_paper78")
		b.ReportMetric(split.Median, "split_median_paper1.67")
	}
}

// BenchmarkFig3ControlledCDF regenerates Figure 3: 1,250 controlled-sender
// paths (paper: plain 45% avg 6.53; split 74% avg 9.26 median 1.66;
// discrete 76% avg 8.14 median 1.74).
func BenchmarkFig3ControlledCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res := runControlled(b, s)
		plain, split, disc := res.PlainSummary(), res.SplitSummary(), res.DiscreteSummary()
		b.ReportMetric(plain.FracImproved*100, "plain_improved_%_paper45")
		b.ReportMetric(split.FracImproved*100, "split_improved_%_paper74")
		b.ReportMetric(split.Median, "split_median_paper1.66")
		b.ReportMetric(disc.Median, "discrete_median_paper1.74")
	}
}

// BenchmarkFig4RetransmissionCDF regenerates Figure 4 (paper: median retx
// 2.69e-4 direct vs 1.66e-5 best overlay).
func BenchmarkFig4RetransmissionCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r := experiments.RetransFrom(runControlled(b, s))
		b.ReportMetric(r.MedianDirect()*1e4, "direct_retx_1e-4_paper2.69")
		b.ReportMetric(r.MedianOverlay()*1e4, "overlay_retx_1e-4_paper0.166")
	}
}

// BenchmarkFig5RTTRatioCDF regenerates Figure 5 (paper: overlay reduces
// average RTT for 52% of pairs; 90% of >=150 ms pairs).
func BenchmarkFig5RTTRatioCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		r := experiments.RTTRatiosFrom(runControlled(b, s))
		b.ReportMetric(r.FracReduced()*100, "rtt_reduced_%_paper52")
		b.ReportMetric(r.FracReducedAboveRTT(150)*100, "rtt_reduced_150ms_%_paper90")
	}
}

// BenchmarkFig6Longitudinal regenerates Figure 6: the top-30 paths sampled
// 50 times over a week (paper: 90% keep their gains; avg ratio 8.39,
// median 7.58).
func BenchmarkFig6Longitudinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res, err := s.RunLongitudinal(runControlled(b, s), experiments.DefaultLongitudinalConfig())
		if err != nil {
			b.Fatal(err)
		}
		mean, median := res.ImprovementStats()
		b.ReportMetric(res.FracImproved()*100, "improved_%_paper90")
		b.ReportMetric(mean, "avg_ratio_paper8.39")
		b.ReportMetric(median, "median_ratio_paper7.58")
	}
}

// BenchmarkFig7MinOverlayNodes regenerates Figure 7 (paper: 70% of paths
// need at most two overlay nodes).
func BenchmarkFig7MinOverlayNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res, err := s.RunLongitudinal(runControlled(b, s), experiments.DefaultLongitudinalConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracNeedingAtMost(1)*100, "need_le1_%")
		b.ReportMetric(res.FracNeedingAtMost(2)*100, "need_le2_%_paper70")
	}
}

// BenchmarkTable1NodeCount regenerates Table I (paper: mean factors 8.19,
// 8.36, 8.38, 8.39 for 1-4 overlay nodes — saturating by two).
func BenchmarkTable1NodeCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res, err := s.RunLongitudinal(runControlled(b, s), experiments.DefaultLongitudinalConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.NodeCountRows {
			switch row.Nodes {
			case 1:
				b.ReportMetric(row.MeanFactor, "k1_mean_paper8.19")
			case 2:
				b.ReportMetric(row.MeanFactor, "k2_mean_paper8.36")
			case 4:
				b.ReportMetric(row.MeanFactor, "k4_mean_paper8.39")
			}
		}
	}
}

// BenchmarkFig8Diversity regenerates Figure 8 and the Section V-A/V-B
// traceroute statistics (paper: 60% of overlay paths score >= 0.38; 87% of
// common routers in the end segments; 96% of well-improved overlay paths
// have more hops).
func BenchmarkFig8Diversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		d := s.Diversity(runControlled(b, s))
		b.ReportMetric(d.FracScoreAtLeast(experiments.ClassAll, 0.38)*100, "score_ge0.38_%_paper60")
		b.ReportMetric(d.EndFraction()*100, "end_common_%_paper87")
		longer, _ := d.FracLonger()
		b.ReportMetric(longer*100, "longer_hops_%_paper96")
	}
}

// BenchmarkFig9RTTBins regenerates Figure 9 (paper: median improvement
// >2x for >=140 ms RTT, >3x for >=280 ms).
func BenchmarkFig9RTTBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		rows := experiments.RTTBins(runControlled(b, s))
		for _, row := range rows {
			switch row.Label {
			case "[140,210)":
				b.ReportMetric(row.MedianRatio, "median_140ms_paper>2")
			case "[280,inf)":
				b.ReportMetric(row.MedianRatio, "median_280ms_paper>3")
			}
		}
	}
}

// BenchmarkFig10LossBins regenerates Figure 10 (paper: >=86% of paths with
// >=0.25% loss improve).
func BenchmarkFig10LossBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		rows := experiments.LossBins(runControlled(b, s))
		if len(rows) == 4 {
			b.ReportMetric(rows[2].FracImproved*100, "improved_0.25-0.5%_paper86")
			b.ReportMetric(rows[3].FracImproved*100, "improved_ge0.5%_paper86")
		}
	}
}

// BenchmarkFig11Scatter regenerates Figure 11 (paper: almost all sub-10
// Mbps direct paths improve; the majority more than double).
func BenchmarkFig11Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		sum := experiments.SummarizeScatter(experiments.Scatter(runControlled(b, s)))
		b.ReportMetric(sum.FracSlowImproved*100, "slow_improved_%_paper~100")
		b.ReportMetric(sum.FracSlowDoubled*100, "slow_doubled_%_paper>50")
	}
}

// BenchmarkC45Thresholds regenerates the Section V-B decision-tree
// analysis (paper: loss reduction >= 12.1% and RTT reduction >= 10.5%
// imply a high likelihood of throughput gain).
func BenchmarkC45Thresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res, err := experiments.C45Thresholds(runControlled(b, s))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LossReductionPct, "loss_threshold_%_paper12.1")
		b.ReportMetric(res.RTTChangeMaxPct, "rtt_change_max_%_paper-10.5")
		b.ReportMetric(res.Accuracy*100, "accuracy_%")
	}
}

// BenchmarkFig12MPTCPOlia regenerates Figure 12 (paper: coupled MPTCP
// reliably achieves the maximum observed overlay throughput).
func BenchmarkFig12MPTCPOlia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewMPTCPSuite(benchSeed, experiments.ScaleFull)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.RunMPTCP(experiments.DefaultMPTCPConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PairsMeasured), "pairs_paper72")
		b.ReportMetric(res.FracMPTCPAtLeastBestOverlay(0.1)*100, "mptcp_ge_best_%")
		b.ReportMetric(res.MeanMPTCP(), "mptcp_mean_mbps")
	}
}

// BenchmarkFig13MPTCPCubic regenerates Figure 13 (paper: uncoupled
// per-subflow CUBIC saturates the 100 Mbps NIC).
func BenchmarkFig13MPTCPCubic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewMPTCPSuite(benchSeed, experiments.ScaleFull)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.RunMPTCP(experiments.UncoupledMPTCPConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanMPTCP(), "mptcp_mean_mbps_paper~100")
	}
}
