package cronets

// Failover end-to-end test: a multipath channel runs over two netem-shaped
// TCP paths; the shaper on path 0 is scripted to kill its first connection
// mid-stream at an exact byte offset. The sender must redial through the
// same shaper, rejoin the channel via the JOIN handshake, retransmit what
// the dead subflow lost, and deliver the payload byte-identical — all of it
// observable in the shared metrics registry and flow-event ring.

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cronets/internal/multipath"
	"cronets/internal/netem"
	"cronets/internal/obs"
)

func TestFailoverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	const (
		subflows = 2
		killAt   = 128 << 10
		total    = 1 << 20
	)
	reg := obs.NewRegistry()

	// Receiver-side listener: the first `subflows` accepts become the
	// initial subflow set, every later accept is a JOIN attempt.
	destLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer destLn.Close()
	accepted := make(chan net.Conn)
	go func() {
		for {
			c, err := destLn.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}
	}()

	// One netem shaper per path. Path 0 kills its first connection after
	// forwarding exactly killAt bytes upstream — a mid-transfer link cut.
	shapers := make([]*netem.Proxy, subflows)
	for i := range shapers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := netem.Config{Seed: int64(i) + 1, Obs: reg}
		if i == 0 {
			cfg.Faults = netem.FaultPlan{Rules: []netem.FaultRule{
				{Conn: 0, Dir: netem.DirUp, AfterBytes: killAt, Action: netem.FaultKill},
			}}
		}
		shapers[i] = netem.New(ln, destLn.Addr().String(), cfg)
		go shapers[i].Serve() //nolint:errcheck
		defer shapers[i].Close()
	}
	dialPath := func(i int) (net.Conn, error) {
		return net.Dial("tcp", shapers[i].Addr().String())
	}

	var senderConns, receiverConns []net.Conn
	for i := 0; i < subflows; i++ {
		c, err := dialPath(i)
		if err != nil {
			t.Fatal(err)
		}
		senderConns = append(senderConns, c)
		receiverConns = append(receiverConns, <-accepted)
	}

	mpCfg := multipath.Config{
		MaxSegBytes:      4 << 10,
		ChannelID:        42,
		ReconnectBackoff: 5 * time.Millisecond,
		Dialer:           dialPath,
		Obs:              reg,
	}
	receiver, err := multipath.NewReceiver(receiverConns, mpCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()
	go func() {
		for c := range accepted {
			_ = receiver.Join(c)
		}
	}()
	sender, err := multipath.NewSender(senderConns, mpCfg)
	if err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, total)
	rand.New(rand.NewSource(7)).Read(payload)
	var (
		got     []byte
		readErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, readErr = io.ReadAll(receiver)
	}()

	// Stream the first half — striping pushes well past killAt through
	// shaper 0, severing subflow 0 mid-transfer — then trickle until the
	// reconnect loop has the slot back in service.
	half := total / 2
	for off := 0; off < half; off += 32 << 10 {
		end := off + 32<<10
		if end > half {
			end = half
		}
		if _, err := sender.Write(payload[off:end]); err != nil {
			t.Fatalf("write before failover: %v", err)
		}
	}
	// The kill surfaces asynchronously (the severed bytes sit in kernel
	// buffers), so wait for the full death-and-rejoin cycle: the rejoin
	// counter ticking over, with the slot back in service.
	rejoins := reg.Counter("cronets_multipath_rejoins_total", "")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) &&
		!(rejoins.Value() >= 1 && sender.AliveSubflows() == subflows) {
		if _, err := sender.Write(payload[half : half+1]); err != nil {
			t.Fatalf("write during failover: %v", err)
		}
		half++
		time.Sleep(time.Millisecond)
	}
	if rejoins.Value() < 1 || sender.AliveSubflows() != subflows {
		t.Fatalf("killed subflow never rejoined: alive = %d, rejoins = %d",
			sender.AliveSubflows(), rejoins.Value())
	}
	if _, err := sender.Write(payload[half:]); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if err := sender.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across failover: got %d bytes, want %d", len(got), len(payload))
	}

	// The recovery must be visible end to end: the netem fault fired, the
	// dead subflow's unacked segments were retransmitted, and the slot
	// rejoined — all scraped from the real exposition.
	srv := httptest.NewServer(reg.MetricsHandler())
	defer srv.Close()
	text := scrape(t, srv.URL)
	if v := metricValue(t, text, "cronets_netem_faults_total"); v != 1 {
		t.Errorf("netem faults = %v, want 1", v)
	}
	if v := metricValue(t, text, "cronets_multipath_retransmits_total"); v <= 0 {
		t.Errorf("retransmits = %v, want > 0 (kill stranded in-flight segments)", v)
	}
	if v := metricValue(t, text, "cronets_multipath_rejoins_total"); v < 1 {
		t.Errorf("rejoins = %v, want >= 1", v)
	}

	var sawFault, sawRejoin bool
	for _, e := range reg.Events().Snapshot() {
		switch e.Type {
		case obs.EventFaultInjected:
			sawFault = true
		case obs.EventSubflowRejoin:
			sawRejoin = true
		}
	}
	if !sawFault {
		t.Error("no fault-injected event in the ring")
	}
	if !sawRejoin {
		t.Error("no subflow-rejoin event in the ring")
	}
}
