package cronets_test

// Ablation benchmarks for the design choices DESIGN.md calls out, plus the
// paper's Section VII extensions. Run with:
//
//	go test -bench=Ablation -benchtime 1x
//	go test -bench='MultiHop|Placement|Cost|HighBandwidth' -benchtime 1x

import (
	"math/rand"
	"testing"
	"time"

	"cronets/internal/experiments"
	"cronets/internal/netsim"
	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

// BenchmarkMultiHopOverlay runs the Section VII-B study: does a second
// overlay hop (and a third TCP split) help beyond the paper's one-hop
// design?
func BenchmarkMultiHopOverlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res := runControlled(b, s)
		mh, err := s.RunMultiHop(res, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mh.FracTwoHopBetter()*100, "twohop_better_%")
		b.ReportMetric(mh.MedianTwoHopGain(), "median_2hop_over_1hop")
	}
}

// BenchmarkPlacementGreedy runs the Section VII-A node-selection study.
func BenchmarkPlacementGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res := runControlled(b, s)
		pl, err := experiments.RunPlacement(res, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(pl.ObjectiveFrac) >= 2 {
			b.ReportMetric(pl.ObjectiveFrac[0]*100, "k1_objective_%")
			b.ReportMetric(pl.ObjectiveFrac[1]*100, "k2_objective_%")
		}
	}
}

// BenchmarkCostComparison runs the Section VII-D cost table; the abstract
// claims a ~10x saving over comparable leased lines.
func BenchmarkCostComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSuite(b)
		res := runControlled(b, s)
		rows, err := experiments.CostTable(res)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 0 {
			b.ReportMetric(rows[0].SavingsFactor, "savings_x_paper~10")
		}
	}
}

// BenchmarkHighBandwidthNodes runs the Section VII-C 1 Gbps-NIC variant.
func BenchmarkHighBandwidthNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHighBandwidth(benchSeed, experiments.ScaleFull)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Split100.Mean, "split_mean_100mbps_nic")
		b.ReportMetric(res.Split1000.Mean, "split_mean_1gbps_nic")
	}
}

// BenchmarkAblationHotLinks removes the hot (congested) core and regional
// links — the mechanism DESIGN.md credits for the paper's improvement
// tail. Without them, the split-overlay mean should collapse toward the
// pure RTT-halving gain.
func BenchmarkAblationHotLinks(b *testing.B) {
	run := func(hot bool) experiments.RatioSummary {
		cfg := topology.DefaultConfig(benchSeed)
		if !hot {
			cfg.CoreHotProb = 0
			cfg.RegionalHotProb = 0
		}
		s, err := experiments.NewSuiteFromTopology(benchSeed, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.RunControlled()
		if err != nil {
			b.Fatal(err)
		}
		return res.SplitSummary()
	}
	for i := 0; i < b.N; i++ {
		with := run(true)
		without := run(false)
		b.ReportMetric(with.Mean, "split_mean_with_hot")
		b.ReportMetric(without.Mean, "split_mean_no_hot")
	}
}

// BenchmarkAblationSplitVsTunnel isolates the split-TCP mechanism on a
// controlled two-segment path: one loop over the whole detour vs one loop
// per segment. The ratio is the paper's Section II Mathis argument in
// isolation.
func BenchmarkAblationSplitVsTunnel(b *testing.B) {
	seg := tcpsim.StaticPath(netsim.Metrics{
		BaseRTT:        100 * time.Millisecond,
		LossRate:       2e-4,
		BottleneckMbps: 1000,
		AvailableMbps:  1000,
		Hops:           5,
	})
	whole := tcpsim.ConcatPath(seg, seg, 0)
	spec := tcpsim.Spec{Duration: 30 * time.Second}
	for i := 0; i < b.N; i++ {
		tunnel, err := tcpsim.Run(rand.New(rand.NewSource(1)), whole, tcpsim.DefaultConfig(), spec)
		if err != nil {
			b.Fatal(err)
		}
		split, err := tcpsim.RunSplit(rand.New(rand.NewSource(1)), seg, seg,
			tcpsim.DefaultSplitConfig(), spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tunnel.ThroughputMbps, "tunnel_mbps")
		b.ReportMetric(split.ThroughputMbps, "split_mbps")
		b.ReportMetric(split.ThroughputMbps/tunnel.ThroughputMbps, "split_gain_x")
	}
}

// BenchmarkAblationReceiveWindow removes the receive-window cap DESIGN.md
// marks as load-bearing: without it, plain tunnels stop losing to the RTT
// detour and the plain-vs-split gap narrows.
func BenchmarkAblationReceiveWindow(b *testing.B) {
	seg := tcpsim.StaticPath(netsim.Metrics{
		BaseRTT:        120 * time.Millisecond,
		LossRate:       1e-5,
		BottleneckMbps: 100,
		AvailableMbps:  100,
		Hops:           5,
	})
	whole := tcpsim.ConcatPath(seg, seg, 0)
	spec := tcpsim.Spec{Duration: 30 * time.Second}
	for i := 0; i < b.N; i++ {
		capped := tcpsim.DefaultConfig()
		uncapped := tcpsim.DefaultConfig()
		uncapped.MaxCwnd = 1 << 18
		withCap, err := tcpsim.Run(rand.New(rand.NewSource(2)), whole, capped, spec)
		if err != nil {
			b.Fatal(err)
		}
		noCap, err := tcpsim.Run(rand.New(rand.NewSource(2)), whole, uncapped, spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(withCap.ThroughputMbps, "tunnel_mbps_rwnd_capped")
		b.ReportMetric(noCap.ThroughputMbps, "tunnel_mbps_uncapped")
	}
}
