package cronets_test

// Warm-pool end-to-end test — the acceptance scenario for the gateway's
// pre-warmed relay connection pool: a relay behind netem (the CONNECT
// round trip costs a real WAN RTT) fronted by a delaying dialer (the
// client→relay TCP handshake RTT, which netem cannot emulate because the
// kernel completes loopback handshakes locally). A pooled dial must beat
// a cold dial by roughly the handshake RTT: the pool filler prepaid it
// off the critical path, so Dial only pays the CONNECT leg.

import (
	"context"
	"net"
	"testing"
	"time"

	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

// handshakeDelayDialer sleeps before dialing, emulating the SYN/SYN-ACK
// round trip to a WAN relay.
type handshakeDelayDialer struct {
	net.Dialer
	delay time.Duration
}

func (d *handshakeDelayDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.Dialer.DialContext(ctx, network, addr)
}

func TestWarmPoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	const (
		oneWay       = 25 * time.Millisecond // netem per-direction latency on the relay leg
		handshakeRTT = 50 * time.Millisecond // emulated client→relay TCP handshake
	)
	reg := obs.NewRegistry()

	destLn := mustListenCP(t)
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	relayLn := mustListenCP(t)
	rl := relay.New(relayLn, relay.Config{})
	go rl.Serve() //nolint:errcheck
	defer rl.Close()

	linkLn := mustListenCP(t)
	link := netem.New(linkLn, relayLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: oneWay},
		Down: netem.Impairment{Latency: oneWay},
	})
	go link.Serve() //nolint:errcheck
	defer link.Close()
	relayAddr := link.Addr().String()

	mon, err := pathmon.New(pathmon.Config{
		Dest:  destAddr,
		Fleet: []string{relayAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.MakeRoute(relayAddr))

	dialer := &handshakeDelayDialer{delay: handshakeRTT}
	gwPooled, err := gateway.New(gateway.Config{
		Dest:             destAddr,
		Monitor:          mon,
		Dialer:           dialer,
		PoolSize:         2,
		PoolFillInterval: 50 * time.Millisecond,
		Obs:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gwPooled.Close()
	gwCold, err := gateway.New(gateway.Config{
		Dest:    destAddr,
		Monitor: mon,
		Dialer:  dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gwCold.Close()

	waitFor(t, 10*time.Second, "pool warm-up", func() bool {
		return gwPooled.Pool().Idle(relayAddr) >= 2
	})

	// Dial each gateway a few times and keep the fastest attempt: the
	// floor is the deterministic part (sleeps + netem latency); scheduler
	// noise only adds.
	fastest := func(g *gateway.Gateway, warm bool) time.Duration {
		best := time.Hour
		for i := 0; i < 3; i++ {
			if warm {
				waitFor(t, 10*time.Second, "pool re-warm", func() bool {
					return g.Pool().Idle(relayAddr) >= 1
				})
			}
			start := time.Now()
			conn, path, err := g.Dial(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			if path.IsDirect() {
				t.Fatal("dial went direct; pinned best is the relay")
			}
			// The leg is usable end to end.
			if _, err := measure.ProbeRTT(conn, 1); err != nil {
				t.Fatalf("probe over dialed path: %v", err)
			}
			_ = conn.Close()
		}
		return best
	}

	pooled := fastest(gwPooled, true)
	cold := fastest(gwCold, false)
	t.Logf("dial latency: pooled %v, cold %v (handshake RTT %v, CONNECT leg %v)",
		pooled, cold, handshakeRTT, 2*oneWay)

	// Cold pays handshake + CONNECT (~100 ms); pooled only CONNECT
	// (~50 ms). Demand at least half the handshake RTT of separation so
	// loopback jitter cannot fake a pass or a failure.
	if pooled >= cold-handshakeRTT/2 {
		t.Fatalf("pooled dial (%v) did not eliminate the handshake RTT vs cold (%v)", pooled, cold)
	}
	if got := gwPooled.Stats().DialsRelayPooled.Load(); got != 3 {
		t.Fatalf("DialsRelayPooled = %d, want 3", got)
	}
	if got := reg.Counter("cronets_connpool_hits_total", "").Value(); got < 3 {
		t.Fatalf("cronets_connpool_hits_total = %d, want >= 3", got)
	}

	// One more pooled flow, multi-round-trip: warm legs carry sustained
	// request/response traffic, not just the handshake.
	conn, _, err := gwPooled.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := measure.ProbeRTT(conn, 2); err != nil {
		t.Fatalf("second probe over pooled path: %v", err)
	}
}
