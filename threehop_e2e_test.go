package cronets_test

// Three-hop chain end-to-end test — the acceptance scenario for the
// N-hop route model: a topology where the direct path, every
// single-relay path, and every two-hop chain cross at least one
// congested leg, but the 3-hop chain client -> A -> B -> C -> dest rides
// clean segments end to end. With MaxHops=3 the beam search must
// enumerate the depth-3 candidate, pathmon must commit it, the gateway's
// next flow must ride it byte-identically through all three real relays,
// and the route must be visible in /debug/paths (a 3-hop best row), in
// cronets_gateway_dials_total{path="chain"}, and as three nested
// chain.hop trace spans.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

func TestThreeHopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	reg := obs.NewRegistry()

	// Destination: a measure server (probe endpoint + echo application).
	destLn := mustListenCP(t)
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	const congested = 40 * time.Millisecond

	// Relay C: clean egress to the destination, but clients (and relay A)
	// reach it only through impaired links — its value shows only at the
	// end of a chain entered elsewhere.
	relayCLn := mustListenCP(t)
	relayC := relay.New(relayCLn, relay.Config{})
	go relayC.Serve() //nolint:errcheck
	defer relayC.Close()

	netemCLn := mustListenCP(t)
	netemC := netem.New(netemCLn, relayCLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: congested},
		Down: netem.Impairment{Latency: congested},
	})
	go netemC.Serve() //nolint:errcheck
	defer netemC.Close()

	// B's congested egress toward the destination; its backbone leg to C
	// is clean (B dials relay C's listener directly).
	netemBDLn := mustListenCP(t)
	netemBD := netem.New(netemBDLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: congested},
		Down: netem.Impairment{Latency: congested},
	})
	go netemBD.Serve() //nolint:errcheck
	defer netemBD.Close()

	// Relay B: impaired client access (netemB below), congested egress to
	// the destination, clean backbone to C. The fleet names netemC as
	// relay C's address, so B's routing table points that name at the
	// clean direct leg.
	relayBLn := mustListenCP(t)
	relayB := relay.New(relayBLn, relay.Config{
		Dialer: &rewriteDialer{rewrite: map[string]string{
			destAddr:                 netemBDLn.Addr().String(),
			netemCLn.Addr().String(): relayCLn.Addr().String(),
		}},
	})
	go relayB.Serve() //nolint:errcheck
	defer relayB.Close()

	netemBLn := mustListenCP(t)
	netemB := netem.New(netemBLn, relayBLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: congested},
		Down: netem.Impairment{Latency: congested},
	})
	go netemB.Serve() //nolint:errcheck
	defer netemB.Close()

	// A's congested egress toward the destination and toward C; its
	// backbone leg to B is congested in phase 1 and clears in phase 2.
	netemADLn := mustListenCP(t)
	netemAD := netem.New(netemADLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: congested},
		Down: netem.Impairment{Latency: congested},
	})
	go netemAD.Serve() //nolint:errcheck
	defer netemAD.Close()

	netemACLn := mustListenCP(t)
	netemAC := netem.New(netemACLn, relayCLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: congested},
		Down: netem.Impairment{Latency: congested},
	})
	go netemAC.Serve() //nolint:errcheck
	defer netemAC.Close()

	netemABLn := mustListenCP(t)
	netemAB := netem.New(netemABLn, relayBLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: 60 * time.Millisecond},
		Down: netem.Impairment{Latency: 60 * time.Millisecond},
	})
	go netemAB.Serve() //nolint:errcheck
	defer netemAB.Close()

	// Relay A: clean client access, every route out shaped — its dialer
	// is the emulated routing table over the fleet's names for B and C.
	relayALn := mustListenCP(t)
	relayA := relay.New(relayALn, relay.Config{
		Dialer: &rewriteDialer{rewrite: map[string]string{
			destAddr:                 netemADLn.Addr().String(),
			netemBLn.Addr().String(): netemABLn.Addr().String(),
			netemCLn.Addr().String(): netemACLn.Addr().String(),
		}},
	})
	go relayA.Serve() //nolint:errcheck
	defer relayA.Close()

	// Direct path: clean at first, degraded in phase 2.
	netemDLn := mustListenCP(t)
	netemD := netem.New(netemDLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: 2 * time.Millisecond},
		Down: netem.Impairment{Latency: 2 * time.Millisecond},
		Obs:  reg,
	})
	go netemD.Serve() //nolint:errcheck
	defer netemD.Close()

	fleet := []string{relayALn.Addr().String(), netemBLn.Addr().String(), netemCLn.Addr().String()}
	aAddr, bAddr, cAddr := fleet[0], fleet[1], fleet[2]

	const probeInterval = 300 * time.Millisecond
	mon, err := pathmon.New(pathmon.Config{
		Dest:         destAddr,
		DirectAddr:   netemDLn.Addr().String(),
		Fleet:        fleet,
		Interval:     probeInterval,
		ProbeTimeout: 2 * time.Second,
		ProbeCount:   2,
		Alpha:        0.5,
		SwitchMargin: 0.2,
		SwitchRounds: 2,
		MaxHops:      3,
		// The deep chain's summed access-leg srtts (~320 ms) dwarf the
		// 100 ms direct baseline precisely because each leg is congested —
		// the srtt-sum bound would prune away the very candidate whose
		// hop-by-hop segments are clean. Disable pruning; this topology is
		// all triangle-inequality violation.
		ChainPruneFactor: -1,
		Obs:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	tracer := flowtrace.New(flowtrace.Config{Node: "client", SampleRate: 1, Obs: reg})
	gw, err := gateway.New(gateway.Config{
		Dest:             destAddr,
		DirectAddr:       netemDLn.Addr().String(),
		Monitor:          mon,
		Obs:              reg,
		Tracer:           tracer,
		PoolSize:         1,
		PoolRelays:       2,
		PoolFillInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	metricsSrv := httptest.NewServer(reg.MetricsHandler())
	defer metricsSrv.Close()
	pathsSrv := httptest.NewServer(obs.GETOnly(mon.PathsHandler()))
	defer pathsSrv.Close()

	mon.Start()

	// Phase 1: the direct path is clean and wins; every overlay route
	// crosses at least one congested leg.
	waitFor(t, 10*time.Second, "initial best route", func() bool {
		best, ok := mon.Best()
		return ok && best.IsDirect() && mon.Rounds() >= 2
	})

	// Phase 2: the direct path degrades to 50 ms one-way while the A->B
	// backbone congestion clears. Every 1-hop route and every 2-hop chain
	// still crosses a 40 ms impaired leg (B's and C's client access, A's
	// egress to dest and to C, B's egress to dest); only
	// client -> A -> B -> C -> dest is clean end to end. Pathmon must
	// enumerate the depth-3 candidate and commit it.
	netemD.SetImpairment(
		netem.Impairment{Latency: 50 * time.Millisecond},
		netem.Impairment{Latency: 50 * time.Millisecond},
	)
	netemAB.SetImpairment(netem.Impairment{}, netem.Impairment{})
	degradeStart := time.Now()
	wantChain := pathmon.MakeRoute(aAddr, bAddr, cAddr)
	waitFor(t, 30*time.Second, "switch to the 3-hop chain", func() bool {
		best, ok := mon.Best()
		return ok && best == wantChain
	})
	t.Logf("3-hop switch %v after degradation (interval %v)", time.Since(degradeStart), probeInterval)

	// The gateway's next flow rides the chain through all three real
	// relays, byte-identically.
	conn, route, err := gw.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if route != wantChain {
		t.Fatalf("post-degradation dial took %v, want chain %v", route, wantChain)
	}
	payload := make([]byte, 64<<10) // 4096 echo frames of 16 bytes
	rnd := rand.New(rand.NewSource(11))
	rnd.Read(payload)
	if _, err := conn.Write([]byte{'E'}); err != nil { // measure echo mode
		t.Fatal(err)
	}
	writeErr := make(chan error, 1)
	go func() {
		_, err := conn.Write(payload)
		writeErr <- err
	}()
	got := make([]byte, len(payload))
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("reading echoed payload over the 3-hop chain: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatal("payload corrupted crossing the 3-hop chain")
	}
	for name, rl := range map[string]*relay.Relay{"A": relayA, "B": relayB, "C": relayC} {
		if rl.Stats().Accepted.Load() == 0 {
			t.Fatalf("chain flow bypassed relay %s", name)
		}
	}

	// Operator surfaces: the chain dial counter in /metrics and a 3-hop
	// best-state chain row in /debug/paths.
	metrics := scrape(t, metricsSrv, "/")
	if !metricsCounterAtLeast(metrics, `cronets_gateway_dials_total{path="chain"}`, 1) {
		t.Fatalf("cronets_gateway_dials_total{path=\"chain\"} missing or zero:\n%s", metrics)
	}
	var rows []pathmon.PathRow
	if err := json.Unmarshal([]byte(scrape(t, pathsSrv, "/")), &rows); err != nil {
		t.Fatalf("/debug/paths is not valid JSON: %v", err)
	}
	var chainRow *pathmon.PathRow
	for i := range rows {
		if rows[i].Kind == "chain" && rows[i].State == "best" {
			chainRow = &rows[i]
		}
	}
	if chainRow == nil {
		t.Fatalf("/debug/paths has no best chain row: %+v", rows)
	}
	if len(chainRow.Hops) != 3 || chainRow.Hops[0] != aAddr || chainRow.Hops[1] != bAddr || chainRow.Hops[2] != cAddr {
		t.Fatalf("/debug/paths chain hops = %v, want [%s %s %s]", chainRow.Hops, aAddr, bAddr, cAddr)
	}
	if chainRow.Path != "via "+aAddr+">"+bAddr+">"+cAddr {
		t.Fatalf("/debug/paths chain display = %q, want every hop rendered", chainRow.Path)
	}

	// The chain dial left one chain.hop span per hop, nested the way the
	// preamble traveled: hop 0 under gateway.dial, hop 1 under hop 0,
	// hop 2 under hop 1.
	spans := tracer.Snapshot()
	byID := make(map[uint64]*flowtrace.Span, len(spans))
	var hops []*flowtrace.Span
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "chain.hop" {
			hops = append(hops, s)
		}
	}
	if len(hops) != 3 {
		t.Fatalf("chain.hop spans = %d, want 3 (one per hop)", len(hops))
	}
	children := make(map[uint64]*flowtrace.Span, len(hops))
	for _, h := range hops {
		if children[h.Parent] != nil {
			t.Fatalf("two chain.hop spans share parent %d", h.Parent)
		}
		children[h.Parent] = h
	}
	var head *flowtrace.Span
	for _, h := range hops {
		parent := byID[h.Parent]
		if parent == nil || parent.Name != "chain.hop" {
			if head != nil {
				t.Fatalf("two chain.hop heads: %d and %d", head.ID, h.ID)
			}
			head = h
			if parent == nil || parent.Name != "gateway.dial" {
				t.Fatalf("hop 0 parents under %+v, want the gateway.dial span", parent)
			}
		}
	}
	if head == nil {
		t.Fatal("chain.hop spans form a cycle")
	}
	depth := 1
	for cur := children[head.ID]; cur != nil; cur = children[cur.ID] {
		depth++
	}
	if depth != 3 {
		t.Fatalf("chain.hop parent chain depth = %d, want 3", depth)
	}
}
