package cronets_test

// Objective-routing end-to-end test — the acceptance scenario for
// throughput-aware route selection: a topology where the lowest-RTT path
// is rate-limited and a higher-RTT relay path has ~10x the bandwidth.
// One pathmon monitor serves two gateways through per-objective views:
// the latency gateway must commit the thin fast path, the throughput
// gateway the fat slow one, both carrying byte-identical transfers. Then
// the fat path thins out mid-run and the throughput view must switch —
// visible in /metrics and /debug/events — while the latency view never
// moves. Finally, Monitor.Close must return in milliseconds with the
// probe/burst machinery live.

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

func TestObjectiveRoutingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	reg := obs.NewRegistry()

	// Destination: a measure server (probe endpoint, burst sink, and the
	// fronted application in one).
	destLn := mustListenCP(t)
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	// Direct path: 2 ms one-way but the upload direction is rate-limited
	// to ~2 Mbps — the classic congested/policed default route.
	directLn := mustListenCP(t)
	directLink := netem.New(directLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: 2 * time.Millisecond, RateMbps: 2},
		Down: netem.Impairment{Latency: 2 * time.Millisecond},
		Obs:  reg,
	})
	go directLink.Serve() //nolint:errcheck
	defer directLink.Close()

	// Relay path: 12 ms one-way — clearly worse RTT — but unthrottled,
	// an order of magnitude more bandwidth than the direct path.
	relayLn := mustListenCP(t)
	rl := relay.New(relayLn, relay.Config{})
	go rl.Serve() //nolint:errcheck
	defer rl.Close()
	relayLinkLn := mustListenCP(t)
	relayLink := netem.New(relayLinkLn, relayLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: 12 * time.Millisecond},
		Down: netem.Impairment{Latency: 12 * time.Millisecond},
		Obs:  reg,
	})
	go relayLink.Serve() //nolint:errcheck
	defer relayLink.Close()
	relayRoute := pathmon.MakeRoute(relayLink.Addr().String())

	const probeInterval = 300 * time.Millisecond
	mon, err := pathmon.New(pathmon.Config{
		Dest:          destAddr,
		DirectAddr:    directLink.Addr().String(),
		Fleet:         []string{relayLink.Addr().String()},
		Interval:      probeInterval,
		ProbeTimeout:  2 * time.Second,
		ProbeCount:    2,
		Alpha:         0.5,
		BurstDuration: 400 * time.Millisecond,
		BurstEvery:    1,
		SwitchMargin:  0.2,
		SwitchRounds:  2,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	tpView := mon.View(pathmon.ObjectiveThroughput)

	// Two listeners, one monitor: the interactive gateway follows the
	// monitor's (latency) ranking, the bulk gateway the throughput view.
	gwLat, err := gateway.New(gateway.Config{
		Dest:       destAddr,
		DirectAddr: directLink.Addr().String(),
		Monitor:    mon,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gwLat.Close()
	gwTp, err := gateway.New(gateway.Config{
		Dest:       destAddr,
		DirectAddr: directLink.Addr().String(),
		Monitor:    tpView,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gwTp.Close()

	metricsSrv := httptest.NewServer(reg.MetricsHandler())
	defer metricsSrv.Close()
	eventsSrv := httptest.NewServer(reg.EventsHandler())
	defer eventsSrv.Close()

	mon.Start()

	// Phase 1: same probe data, divergent commits. The latency view must
	// hold the 2 ms direct path; the throughput view must commit the fat
	// relay once the bursts have measured both.
	waitFor(t, 20*time.Second, "divergent objective commits", func() bool {
		latBest, latOK := mon.Best()
		tpBest, tpOK := tpView.Best()
		return latOK && tpOK && latBest.IsDirect() && tpBest == relayRoute
	})

	// Both gateways carry a byte-identical transfer over their own route.
	rnd := rand.New(rand.NewSource(10))
	payload := make([]byte, 64<<10) // 4096 echo frames of 16 bytes
	rnd.Read(payload)
	transfer := func(gw *gateway.Gateway, name string) pathmon.Route {
		conn, route, err := gw.Dial(context.Background())
		if err != nil {
			t.Fatalf("%s dial: %v", name, err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte{'E'}); err != nil { // measure echo mode
			t.Fatalf("%s echo preamble: %v", name, err)
		}
		errc := make(chan error, 1)
		go func() {
			_, err := conn.Write(payload)
			errc <- err
		}()
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			t.Fatalf("%s reading echoed payload: %v", name, err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("%s writing payload: %v", name, err)
		}
		if !bytes.Equal(payload, got) {
			t.Fatalf("%s payload corrupted in flight", name)
		}
		return route
	}
	if route := transfer(gwLat, "latency gateway"); !route.IsDirect() {
		t.Fatalf("latency gateway dialed %v, want direct", route)
	}
	if route := transfer(gwTp, "throughput gateway"); route != relayRoute {
		t.Fatalf("throughput gateway dialed %v, want %v", route, relayRoute)
	}

	// The burst machinery is visible to a scraper.
	metrics := scrape(t, metricsSrv, "/")
	if !metricsCounterAtLeast(metrics, "cronets_pathmon_bursts_total", 2) {
		t.Fatalf("cronets_pathmon_bursts_total missing or < 2 in /metrics:\n%s", metrics)
	}
	if !strings.Contains(metrics, "cronets_pathmon_route_mbps") {
		t.Fatalf("cronets_pathmon_route_mbps missing from /metrics:\n%s", metrics)
	}

	// Phase 2: the fat path thins out (policer kicks in at ~1 Mbps) and
	// the direct path's limit lifts. The throughput view must switch to
	// direct through the usual hysteresis; the latency view never moved,
	// so its route table stays committed to direct throughout.
	relayLink.SetImpairment(
		netem.Impairment{Latency: 12 * time.Millisecond, RateMbps: 1},
		netem.Impairment{Latency: 12 * time.Millisecond},
	)
	directLink.SetImpairment(
		netem.Impairment{Latency: 2 * time.Millisecond},
		netem.Impairment{Latency: 2 * time.Millisecond},
	)
	waitFor(t, 30*time.Second, "throughput view switching to the new fat path", func() bool {
		tpBest, ok := tpView.Best()
		return ok && tpBest.IsDirect()
	})
	if latBest, _ := mon.Best(); !latBest.IsDirect() {
		t.Fatalf("latency view moved to %v; it had no reason to leave direct", latBest)
	}

	metrics = scrape(t, metricsSrv, "/")
	if !metricsCounterAtLeast(metrics, "cronets_pathmon_switches_total", 1) {
		t.Fatalf("cronets_pathmon_switches_total missing or zero after the throughput switch:\n%s", metrics)
	}
	events := scrape(t, eventsSrv, "/")
	if !strings.Contains(events, `"burst"`) {
		t.Fatalf("no burst flow events in /debug/events:\n%s", events)
	}
	if !strings.Contains(events, `"path-switch"`) || !strings.Contains(events, "[throughput]") {
		t.Fatalf("no throughput-view path-switch event in /debug/events:\n%s", events)
	}

	// Close must come back in milliseconds even with the probe loop and
	// burst windows live (the monitor-lifetime context cancels them).
	start := time.Now()
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Monitor.Close took %v with probes in flight, want < 100ms", elapsed)
	}
}
