package cronets_test

// Control-plane end-to-end test — the acceptance scenario for the overlay
// control plane: a 3-relay fleet behind netem, a pathmon monitor, and a
// gateway. Degrading the direct path mid-run must steer the gateway's
// next connection onto the best relay within one probe interval plus the
// hysteresis window, with the switch visible both as a
// cronets_pathmon_switches_total increment in /metrics and as a
// path-switch flow event in /debug/events.

import (
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

func mustListenCP(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func scrape(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestControlPlaneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	reg := obs.NewRegistry()

	// Destination: a measure server (the probe endpoint and the fronted
	// application in one).
	destLn := mustListenCP(t)
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	// Direct path through an emulated WAN link, initially 5 ms one-way.
	directLn := mustListenCP(t)
	directLink := netem.New(directLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: 5 * time.Millisecond},
		Down: netem.Impairment{Latency: 5 * time.Millisecond},
		Obs:  reg,
	})
	go directLink.Serve() //nolint:errcheck
	defer directLink.Close()

	// 3-relay fleet, each behind its own netem link (10/12/15 ms one-way
	// — all worse than the healthy direct path, the best being relay 0).
	var fleet []string
	var relays []*relay.Relay
	for _, oneWay := range []time.Duration{10 * time.Millisecond, 12 * time.Millisecond, 15 * time.Millisecond} {
		relayLn := mustListenCP(t)
		rl := relay.New(relayLn, relay.Config{})
		go rl.Serve() //nolint:errcheck
		defer rl.Close()
		relays = append(relays, rl)

		linkLn := mustListenCP(t)
		link := netem.New(linkLn, relayLn.Addr().String(), netem.Config{
			Up:   netem.Impairment{Latency: oneWay},
			Down: netem.Impairment{Latency: oneWay},
		})
		go link.Serve() //nolint:errcheck
		defer link.Close()
		fleet = append(fleet, link.Addr().String())
	}

	const probeInterval = 300 * time.Millisecond
	mon, err := pathmon.New(pathmon.Config{
		Dest:         destAddr,
		DirectAddr:   directLink.Addr().String(),
		Fleet:        fleet,
		Interval:     probeInterval,
		ProbeTimeout: 2 * time.Second,
		ProbeCount:   2,
		Alpha:        0.5,
		SwitchMargin: 0.2,
		SwitchRounds: 2,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	gw, err := gateway.New(gateway.Config{
		Dest:       destAddr,
		DirectAddr: directLink.Addr().String(),
		Monitor:    mon,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// The exposition surface a scraper would see.
	metricsSrv := httptest.NewServer(reg.MetricsHandler())
	defer metricsSrv.Close()
	eventsSrv := httptest.NewServer(reg.EventsHandler())
	defer eventsSrv.Close()

	mon.Start()

	// Phase 1: healthy direct path wins.
	waitFor(t, 10*time.Second, "initial best path", func() bool {
		best, ok := mon.Best()
		return ok && best.IsDirect() && mon.Rounds() >= 2
	})
	conn, path, err := gw.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !path.IsDirect() {
		t.Fatalf("healthy-phase dial took %v, want direct", path)
	}
	if _, err := measure.ProbeRTT(conn, 2); err != nil {
		t.Fatalf("probe over healthy direct path: %v", err)
	}
	_ = conn.Close()
	if got := scrape(t, metricsSrv, "/"); !strings.Contains(got, "cronets_pathmon_switches_total 0") {
		t.Fatalf("/metrics before degradation:\n%s", got)
	}

	// Phase 2: degrade the direct path to 60 ms one-way (a 12x delay
	// step — congested transit) without touching the relays. The monitor
	// must move best to a relay within one probe interval + hysteresis
	// (2 qualifying rounds) + EWMA convergence; generously bounded here.
	directLink.SetImpairment(
		netem.Impairment{Latency: 60 * time.Millisecond},
		netem.Impairment{Latency: 60 * time.Millisecond},
	)
	degradeStart := time.Now()
	waitFor(t, 15*time.Second, "switch to a relay path", func() bool {
		best, ok := mon.Best()
		return ok && !best.IsDirect()
	})
	switchLatency := time.Since(degradeStart)
	t.Logf("path switch %v after degradation (interval %v)", switchLatency, probeInterval)

	best, _ := mon.Best()
	if best.First() != fleet[0] {
		// Not fatal — loopback jitter can favor relay 1 — but log it.
		t.Logf("best relay = %s, nominal best = %s", best.First(), fleet[0])
	}

	// The gateway's next connection must ride the relay.
	acceptedBefore := totalAccepted(relays)
	conn, path, err = gw.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if path.IsDirect() {
		t.Fatal("post-degradation dial still went direct")
	}
	if _, err := measure.ProbeRTT(conn, 2); err != nil {
		t.Fatalf("probe over relay path: %v", err)
	}
	_ = conn.Close()
	if totalAccepted(relays) <= acceptedBefore {
		t.Fatal("no relay accepted the post-degradation connection")
	}

	// The switch must be visible to a scraper: counter in /metrics,
	// flow event in /debug/events.
	metrics := scrape(t, metricsSrv, "/")
	if !metricsCounterAtLeast(metrics, "cronets_pathmon_switches_total", 1) {
		t.Fatalf("cronets_pathmon_switches_total missing or zero in /metrics:\n%s", metrics)
	}
	if !strings.Contains(metrics, "cronets_pathmon_best_is_direct 0") {
		t.Fatalf("cronets_pathmon_best_is_direct should be 0 after the switch:\n%s", metrics)
	}
	events := scrape(t, eventsSrv, "/")
	if !strings.Contains(events, `"path-switch"`) {
		t.Fatalf("no path-switch flow event in /debug/events:\n%s", events)
	}
	if !strings.Contains(events, `"impairment-change"`) {
		t.Fatalf("no impairment-change flow event in /debug/events:\n%s", events)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func totalAccepted(relays []*relay.Relay) int64 {
	var n int64
	for _, rl := range relays {
		n += rl.Stats().Accepted.Load()
	}
	return n
}

// metricsCounterAtLeast reports whether the Prometheus-text exposition
// carries the named series with a value >= min.
func metricsCounterAtLeast(metrics, name string, min int64) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		return int64(v) >= min
	}
	return false
}
