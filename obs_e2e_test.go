package cronets

// End-to-end observability test: relay and multipath traffic run through a
// netem shaper with a shared obs registry, and the /metrics exposition is
// scraped over HTTP and checked for the expected series with sane values.

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cronets/internal/measure"
	"cronets/internal/multipath"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/relay"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue finds an exact series line ("name value") in a Prometheus
// text exposition and returns its value.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s has unparsable value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, text)
	return 0
}

func TestObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	reg := obs.NewRegistry()

	// Measurement server: the traffic destination.
	msLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ms := measure.NewServer(msLn)
	go ms.Serve() //nolint:errcheck
	defer ms.Close()

	// CONNECT-mode split relay with metrics.
	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := relay.New(relayLn, relay.Config{Obs: reg})
	go r.Serve() //nolint:errcheck
	defer r.Close()

	// Netem shaper in front of the relay, with metrics and a fixed seed.
	nemLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shaper := netem.New(nemLn, relayLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: time.Millisecond, Jitter: time.Millisecond},
		Down: netem.Impairment{Latency: time.Millisecond},
		Seed: 42,
		Obs:  reg,
	})
	go shaper.Serve() //nolint:errcheck
	defer shaper.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Connection 1: sink-mode upload through netem -> relay -> server.
	const uploadBytes = 1 << 20
	conn, err := relay.DialVia(ctx, nil, shaper.Addr().String(), msLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := measure.SinkClient(conn); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	for sent := 0; sent < uploadBytes; sent += len(payload) {
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("upload write: %v", err)
		}
	}
	_ = conn.Close()

	// Connection 2: RTT probes recorded into a registry histogram.
	const probes = 5
	rttHist := reg.Histogram("cronets_measure_probe_rtt_seconds",
		"Application-level RTT of echo probes.", obs.LatencyBuckets)
	probeConn, err := relay.DialVia(ctx, nil, shaper.Addr().String(), msLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := measure.ProbeRTTWith(probeConn, probes, rttHist); err != nil {
		t.Fatal(err)
	}
	_ = probeConn.Close()

	// Multipath traffic over two in-process subflows, same registry.
	const mpBytes = 256 << 10
	var senderConns, receiverConns []net.Conn
	for i := 0; i < 2; i++ {
		a, b := net.Pipe()
		senderConns = append(senderConns, a)
		receiverConns = append(receiverConns, b)
	}
	mpCfg := multipath.Config{Obs: reg}
	sender, err := multipath.NewSender(senderConns, mpCfg)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := multipath.NewReceiver(receiverConns, mpCfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var received int64
	go func() {
		defer wg.Done()
		n, _ := io.Copy(io.Discard, receiver)
		received = n
	}()
	if _, err := sender.Write(make([]byte, mpBytes)); err != nil {
		t.Fatal(err)
	}
	if err := sender.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	_ = receiver.Close()
	if received != mpBytes {
		t.Fatalf("multipath received %d bytes, want %d", received, mpBytes)
	}

	// The relay handler goroutines count bytes after the client closes;
	// wait until the counters settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) &&
		r.Stats().BytesUp.Load() < uploadBytes {
		time.Sleep(10 * time.Millisecond)
	}

	// Scrape the exposition over real HTTP.
	srv := httptest.NewServer(reg.MetricsHandler())
	defer srv.Close()
	text := scrape(t, srv.URL)

	// Relay series: both connections' bytes, and one dial-latency sample
	// per successful upstream dial.
	if up := metricValue(t, text, `cronets_relay_bytes_total{dir="up"}`); up < uploadBytes {
		t.Errorf("relay bytes up = %v, want >= %d", up, uploadBytes)
	}
	if down := metricValue(t, text, `cronets_relay_bytes_total{dir="down"}`); down <= 0 {
		t.Errorf("relay bytes down = %v, want > 0", down)
	}
	if got := metricValue(t, text, "cronets_relay_dial_latency_seconds_count"); got != 2 {
		t.Errorf("dial latency count = %v, want 2 (one per connection)", got)
	}
	if got := metricValue(t, text, "cronets_relay_accepted_total"); got != 2 {
		t.Errorf("accepted = %v, want 2", got)
	}

	// Multipath series: the two subflows together carried the payload.
	sub0 := metricValue(t, text, `cronets_multipath_subflow_bytes_total{subflow="0"}`)
	sub1 := metricValue(t, text, `cronets_multipath_subflow_bytes_total{subflow="1"}`)
	if sub0+sub1 != mpBytes {
		t.Errorf("subflow bytes %v + %v = %v, want %d", sub0, sub1, sub0+sub1, mpBytes)
	}
	if sub0 <= 0 || sub1 <= 0 {
		t.Errorf("both subflows should carry traffic, got %v / %v", sub0, sub1)
	}

	// Netem series: everything the relay saw passed through the shaper.
	if shaped := metricValue(t, text, `cronets_netem_shaped_bytes_total{dir="up"}`); shaped < uploadBytes {
		t.Errorf("netem shaped up = %v, want >= %d", shaped, uploadBytes)
	}
	if delays := metricValue(t, text, "cronets_netem_added_delay_seconds_count"); delays <= 0 {
		t.Errorf("netem delay histogram count = %v, want > 0", delays)
	}

	// Measure series: one histogram sample per probe.
	if got := metricValue(t, text, "cronets_measure_probe_rtt_seconds_count"); got != probes {
		t.Errorf("probe rtt count = %v, want %d", got, probes)
	}

	// Flow events: the two CONNECTs and dials are in the ring.
	var connects, dials int
	for _, e := range reg.Events().Snapshot() {
		switch e.Type {
		case obs.EventConnect:
			connects++
		case obs.EventDial:
			dials++
		}
	}
	if connects != 2 || dials != 2 {
		t.Errorf("event ring: connects=%d dials=%d, want 2/2", connects, dials)
	}
}

// TestMetricsEndpointsServeTogether wires the same handlers cronetsd
// mounts and checks each endpoint answers.
func TestMetricsEndpointsServeTogether(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cronets_smoke_total", "smoke").Add(3)
	reg.Scope("smoke").Event(obs.EventDial, "ok")

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/debug/events", reg.EventsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if body := scrape(t, srv.URL+"/metrics"); !strings.Contains(body, "cronets_smoke_total 3") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if body := scrape(t, srv.URL+"/metrics.json"); !strings.Contains(body, `"cronets_smoke_total": 3`) {
		t.Errorf("/metrics.json body:\n%s", body)
	}
	if body := scrape(t, srv.URL+"/debug/events"); !strings.Contains(body, `"type": "dial"`) {
		t.Errorf("/debug/events body:\n%s", body)
	}
	if body := scrape(t, srv.URL+"/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
}
