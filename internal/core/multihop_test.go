package core

import (
	"math/rand"
	"testing"
	"time"

	"cronets/internal/tcpsim"
)

func TestMeasureTwoHop(t *testing.T) {
	in, cn := testNet(t)
	rng := rand.New(rand.NewSource(1))
	spec := tcpsim.Spec{Duration: 10 * time.Second}
	m, err := cn.MeasureTwoHop(rng, in.Servers[0], in.Clients[0],
		in.DCOrder[0], in.DCOrder[1], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Split.ThroughputMbps <= 0 || m.Plain.ThroughputMbps <= 0 {
		t.Errorf("two-hop throughputs: %+v", m)
	}
	if len(m.DCs) != 2 {
		t.Errorf("DCs = %v", m.DCs)
	}
	if m.Split.DC != in.DCOrder[0]+"+"+in.DCOrder[1] {
		t.Errorf("split DC label = %q", m.Split.DC)
	}
}

func TestMeasureTwoHopValidation(t *testing.T) {
	in, cn := testNet(t)
	rng := rand.New(rand.NewSource(1))
	spec := tcpsim.Spec{Duration: time.Second}
	if _, err := cn.MeasureTwoHop(rng, in.Servers[0], in.Clients[0],
		in.DCOrder[0], in.DCOrder[0], spec, 0); err == nil {
		t.Error("expected error for duplicate DCs")
	}
	if _, err := cn.MeasureTwoHop(rng, in.Servers[0], in.Clients[0],
		"Gotham", in.DCOrder[0], spec, 0); err == nil {
		t.Error("expected error for unknown first DC")
	}
	if _, err := cn.MeasureTwoHop(rng, in.Servers[0], in.Clients[0],
		in.DCOrder[0], "Gotham", spec, 0); err == nil {
		t.Error("expected error for unknown second DC")
	}
}

// TestTwoHopSplitUsuallyComparable: the two-hop split should be in the same
// throughput regime as the one-hop split via either of its DCs (it cannot
// do better than its worst segment, and the extra relay should not
// devastate it either).
func TestTwoHopSplitComparable(t *testing.T) {
	in, cn := testNet(t)
	spec := tcpsim.Spec{Duration: 15 * time.Second}
	src, dst := in.Servers[0], in.Clients[1]
	one, err := cn.MeasureOverlay(rand.New(rand.NewSource(3)), src, dst, in.DCOrder[0], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	two, err := cn.MeasureTwoHop(rand.New(rand.NewSource(3)), src, dst,
		in.DCOrder[0], in.DCOrder[1], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := two.Split.ThroughputMbps / one.Split.ThroughputMbps
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("two-hop split %v wildly off one-hop %v",
			two.Split.ThroughputMbps, one.Split.ThroughputMbps)
	}
}
