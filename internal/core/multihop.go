package core

import (
	"fmt"
	"math/rand"
	"time"

	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

// MultiHopMeasurement is the result of a two-hop split overlay (the
// paper's Section VII-B extension): src -> DC1 -> DC2 -> dst with the TCP
// connection terminated at both relays, so three congestion-control loops
// each see roughly a third of the end-to-end RTT.
type MultiHopMeasurement struct {
	// DCs are the overlay hops in order.
	DCs []string
	// Split is the three-segment split-TCP measurement.
	Split Measurement
	// Plain is the single-loop tunnel over the whole detour, for contrast.
	Plain Measurement
}

// MeasureTwoHop measures the two-hop overlay src -> dc1 -> dc2 -> dst in
// both split (per-segment loops) and plain (one end-to-end loop)
// configurations. The middle segment rides the provider's private
// backbone.
func (c *CRONet) MeasureTwoHop(rng *rand.Rand, src, dst topology.Host, dc1, dc2 string,
	spec tcpsim.Spec, at time.Duration) (MultiHopMeasurement, error) {

	if dc1 == dc2 {
		return MultiHopMeasurement{}, fmt.Errorf("core: two-hop overlay needs distinct DCs, got %q twice", dc1)
	}
	h1, ok := c.in.DCs[dc1]
	if !ok {
		return MultiHopMeasurement{}, fmt.Errorf("core: no data center in %q", dc1)
	}
	h2, ok := c.in.DCs[dc2]
	if !ok {
		return MultiHopMeasurement{}, fmt.Errorf("core: no data center in %q", dc2)
	}
	seg1Path, err := c.in.RouterPath(src, h1)
	if err != nil {
		return MultiHopMeasurement{}, fmt.Errorf("core: two-hop leg 1: %w", err)
	}
	seg2Path, err := c.in.RouterPath(h1, h2)
	if err != nil {
		return MultiHopMeasurement{}, fmt.Errorf("core: two-hop leg 2: %w", err)
	}
	seg3Path, err := c.in.RouterPath(h2, dst)
	if err != nil {
		return MultiHopMeasurement{}, fmt.Errorf("core: two-hop leg 3: %w", err)
	}
	seg1, err := c.pathFunc(seg1Path, at)
	if err != nil {
		return MultiHopMeasurement{}, err
	}
	seg2, err := c.pathFunc(seg2Path, at)
	if err != nil {
		return MultiHopMeasurement{}, err
	}
	seg3, err := c.pathFunc(seg3Path, at)
	if err != nil {
		return MultiHopMeasurement{}, err
	}

	out := MultiHopMeasurement{DCs: []string{dc1, dc2}}

	split, err := tcpsim.RunSplitChain(rng, []tcpsim.PathFunc{seg1, seg2, seg3},
		tcpsim.SplitConfig{Flow: c.cfg.Flow, RelayBufferBytes: c.cfg.RelayBufferBytes}, spec)
	if err != nil {
		return MultiHopMeasurement{}, fmt.Errorf("core: two-hop split via %s,%s: %w", dc1, dc2, err)
	}
	out.Split = Measurement{Kind: SplitOverlay, DC: dc1 + "+" + dc2,
		ThroughputMbps: split.ThroughputMbps, RetransRate: split.RetransRate, AvgRTT: split.AvgRTT}

	// Plain: one loop over the full detour, paying both relays' overhead
	// and the tunnel header once.
	tunnelFlow := c.cfg.Flow
	if tunnelFlow.MSSBytes > c.cfg.TunnelHeaderBytes {
		tunnelFlow.MSSBytes -= c.cfg.TunnelHeaderBytes
	}
	whole := tcpsim.ConcatPath(tcpsim.ConcatPath(seg1, seg2, c.cfg.RelayOverhead), seg3, c.cfg.RelayOverhead)
	plain, err := tcpsim.Run(rng, whole, tunnelFlow, spec)
	if err != nil {
		return MultiHopMeasurement{}, fmt.Errorf("core: two-hop tunnel via %s,%s: %w", dc1, dc2, err)
	}
	out.Plain = Measurement{Kind: Overlay, DC: dc1 + "+" + dc2,
		ThroughputMbps: plain.ThroughputMbps, RetransRate: plain.RetransRate, AvgRTT: plain.AvgRTT}
	return out, nil
}
