package core

import (
	"math/rand"
	"testing"
	"time"

	"cronets/internal/mptcpsim"
	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

func testNet(t *testing.T) (*topology.Internet, *CRONet) {
	t.Helper()
	cfg := topology.DefaultConfig(42)
	cfg.ClientStubs = 8
	cfg.ServerStubs = 3
	in, err := topology.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return in, New(in, DefaultConfig())
}

func TestPathKindString(t *testing.T) {
	tests := []struct {
		k    PathKind
		want string
	}{
		{Direct, "direct"}, {Overlay, "overlay"},
		{SplitOverlay, "split-overlay"}, {DiscreteOverlay, "discrete-overlay"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMeasureDirect(t *testing.T) {
	in, cn := testNet(t)
	rng := rand.New(rand.NewSource(1))
	m, path, err := cn.MeasureDirect(rng, in.Servers[0], in.Clients[0],
		tcpsim.Spec{Duration: 10 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Direct {
		t.Errorf("kind = %v", m.Kind)
	}
	if m.ThroughputMbps <= 0 || m.AvgRTT <= 0 {
		t.Errorf("measurement = %+v", m)
	}
	if len(path.Nodes) < 3 {
		t.Errorf("path too short: %v", path.Nodes)
	}
}

func TestMeasureOverlayAllKinds(t *testing.T) {
	in, cn := testNet(t)
	rng := rand.New(rand.NewSource(1))
	om, err := cn.MeasureOverlay(rng, in.Servers[0], in.Clients[0], in.DCOrder[0],
		tcpsim.Spec{Duration: 10 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if om.Plain.Kind != Overlay || om.Split.Kind != SplitOverlay || om.Discrete.Kind != DiscreteOverlay {
		t.Error("kinds wrong")
	}
	for _, m := range []Measurement{om.Plain, om.Split, om.Discrete} {
		if m.ThroughputMbps <= 0 {
			t.Errorf("%v throughput = %v", m.Kind, m.ThroughputMbps)
		}
		if m.DC != in.DCOrder[0] {
			t.Errorf("%v DC = %q", m.Kind, m.DC)
		}
	}
	if _, err := cn.MeasureOverlay(rng, in.Servers[0], in.Clients[0], "Gotham",
		tcpsim.Spec{Duration: time.Second}, 0); err == nil {
		t.Error("expected error for unknown DC")
	}
}

func TestMeasurePair(t *testing.T) {
	in, cn := testNet(t)
	rng := rand.New(rand.NewSource(1))
	pr, err := cn.MeasurePair(rng, in.Servers[0], in.Clients[1], cn.DCCities(),
		tcpsim.Spec{Duration: 10 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Overlays) != len(in.DCOrder) {
		t.Fatalf("overlays = %d", len(pr.Overlays))
	}
	best, ok := pr.BestOverlay(SplitOverlay)
	if !ok {
		t.Fatal("no best overlay")
	}
	for _, o := range pr.Overlays {
		if o.Split.ThroughputMbps > best.ThroughputMbps {
			t.Error("BestOverlay did not return the max")
		}
	}
	if retx, ok := pr.MinOverlayRetrans(); !ok || retx < 0 {
		t.Errorf("MinOverlayRetrans = %v, %v", retx, ok)
	}
	if rtt, ok := pr.MinOverlayRTT(); !ok || rtt <= 0 {
		t.Errorf("MinOverlayRTT = %v, %v", rtt, ok)
	}
}

func TestBestOverlayEmpty(t *testing.T) {
	var pr PairResult
	if _, ok := pr.BestOverlay(Overlay); ok {
		t.Error("empty result should report no overlay")
	}
	if _, ok := pr.MinOverlayRetrans(); ok {
		t.Error("empty result should report no retrans")
	}
	if _, ok := pr.MinOverlayRTT(); ok {
		t.Error("empty result should report no RTT")
	}
}

func TestMeasurementDeterminism(t *testing.T) {
	in, cn := testNet(t)
	spec := tcpsim.Spec{Duration: 10 * time.Second}
	a, _, err := cn.MeasureDirect(rand.New(rand.NewSource(5)), in.Servers[0], in.Clients[0], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := cn.MeasureDirect(rand.New(rand.NewSource(5)), in.Servers[0], in.Clients[0], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputMbps != b.ThroughputMbps || a.AvgRTT != b.AvgRTT {
		t.Error("same seed produced different measurements")
	}
}

func TestMeasureMPTCP(t *testing.T) {
	in, cn := testNet(t)
	rng := rand.New(rand.NewSource(1))
	src := in.DCs[in.DCOrder[0]]
	dst := in.DCs[in.DCOrder[1]]
	overlays := in.DCOrder[2:]
	res, err := cn.MeasureMPTCP(rng, src, dst, overlays,
		mptcpsim.OLIA, tcpsim.Reno, 100, tcpsim.Spec{Duration: 20 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps <= 0 {
		t.Errorf("total = %v", res.TotalMbps)
	}
	if len(res.SubflowMbps) != 1+len(overlays) {
		t.Errorf("subflows = %d, want %d", len(res.SubflowMbps), 1+len(overlays))
	}
	if res.TotalMbps > 101 {
		t.Errorf("total %v exceeds the NIC", res.TotalMbps)
	}

	// The direct path must carry at least some traffic between DCs.
	direct, _, err := cn.MeasureDirect(rng, src, dst, tcpsim.Spec{Duration: 10 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps < direct.ThroughputMbps*0.5 {
		t.Errorf("MPTCP %v far below single-path direct %v", res.TotalMbps, direct.ThroughputMbps)
	}
}

// TestTunnelMSSPenalty: the plain overlay's effective MSS shrinks by the
// encapsulation header; a zero-header config must not.
func TestTunnelHeaderApplied(t *testing.T) {
	in, _ := testNet(t)
	cfg := DefaultConfig()
	cfg.TunnelHeaderBytes = 0
	cfg.RelayLossRate = 0
	cnNoHeader := New(in, cfg)
	rng := rand.New(rand.NewSource(9))
	spec := tcpsim.Spec{Duration: 10 * time.Second}
	a, err := cnNoHeader.MeasureOverlay(rng, in.Servers[0], in.Clients[0], in.DCOrder[0], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig()
	cfg2.TunnelHeaderBytes = 400 // exaggerated to make the effect visible
	cfg2.RelayLossRate = 0
	cnBigHeader := New(in, cfg2)
	b, err := cnBigHeader.MeasureOverlay(rand.New(rand.NewSource(9)), in.Servers[0], in.Clients[0], in.DCOrder[0], spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Plain.ThroughputMbps >= a.Plain.ThroughputMbps {
		t.Errorf("big tunnel header did not reduce plain throughput: %v vs %v",
			b.Plain.ThroughputMbps, a.Plain.ThroughputMbps)
	}
}
