// Package core implements the CRONets system itself: building one-hop
// overlay paths through cloud data centers on top of the topology substrate,
// measuring the four path configurations the paper compares (direct, plain
// tunnel overlay, split-TCP overlay, and the discrete upper bound), and
// selecting paths automatically with MPTCP.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cronets/internal/mptcpsim"
	"cronets/internal/netsim"
	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

// PathKind identifies one of the paper's four measured configurations
// (Section II).
type PathKind int

// Path kinds.
const (
	// Direct is the default Internet path as selected by BGP.
	Direct PathKind = iota + 1
	// Overlay tunnels through one overlay node that decapsulates, NATs and
	// forwards packets; a single TCP loop spans the whole detour.
	Overlay
	// SplitOverlay breaks the TCP connection at the overlay node, giving
	// each segment its own congestion-control loop.
	SplitOverlay
	// DiscreteOverlay measures the two segments separately; the minimum of
	// the two throughputs upper-bounds what the overlay path can achieve.
	DiscreteOverlay
)

// String returns the configuration name used in the paper's figures.
func (k PathKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Overlay:
		return "overlay"
	case SplitOverlay:
		return "split-overlay"
	case DiscreteOverlay:
		return "discrete-overlay"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// Measurement is one path measurement: the three metrics the paper reports.
type Measurement struct {
	Kind PathKind
	// DC is the overlay data-center city ("" for direct paths).
	DC string
	// ThroughputMbps is the measured TCP goodput.
	ThroughputMbps float64
	// RetransRate is the tstat-style retransmission rate.
	RetransRate float64
	// AvgRTT is the tstat-style average round-trip time.
	AvgRTT time.Duration
}

// OverlayMeasurements groups the three overlay configurations through one
// data center.
type OverlayMeasurements struct {
	DC       string
	Plain    Measurement
	Split    Measurement
	Discrete Measurement
	// Route is the overlay route used, retained for traceroute analysis.
	Route topology.OverlayRoute
}

// PairResult is the full measurement of one (source, destination) pair:
// the direct path plus every overlay option.
type PairResult struct {
	Src, Dst topology.Host
	Direct   Measurement
	// DirectPath is the default route, retained for traceroute analysis.
	DirectPath netsim.Path
	// Overlays holds one entry per overlay data center, in DC order.
	Overlays []OverlayMeasurements
}

// BestOverlay returns the overlay measurement of the given kind with the
// highest throughput, and false if there are no overlays.
func (p PairResult) BestOverlay(kind PathKind) (Measurement, bool) {
	var best Measurement
	found := false
	for _, o := range p.Overlays {
		m, ok := o.byKind(kind)
		if !ok {
			continue
		}
		if !found || m.ThroughputMbps > best.ThroughputMbps {
			best = m
			found = true
		}
	}
	return best, found
}

// MinOverlayRetrans returns the lowest retransmission rate across the plain
// overlay tunnels (the statistic of Figure 4), and false without overlays.
func (p PairResult) MinOverlayRetrans() (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, o := range p.Overlays {
		if o.Plain.RetransRate < best {
			best = o.Plain.RetransRate
			found = true
		}
	}
	return best, found
}

// MinOverlayRTT returns the lowest average RTT across the plain overlay
// tunnels (the statistic of Figure 5), and false without overlays.
func (p PairResult) MinOverlayRTT() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, o := range p.Overlays {
		if !found || o.Plain.AvgRTT < best {
			best = o.Plain.AvgRTT
			found = true
		}
	}
	return best, found
}

func (o OverlayMeasurements) byKind(kind PathKind) (Measurement, bool) {
	switch kind {
	case Overlay:
		return o.Plain, true
	case SplitOverlay:
		return o.Split, true
	case DiscreteOverlay:
		return o.Discrete, true
	default:
		return Measurement{}, false
	}
}

// Config holds the CRONet measurement parameters.
type Config struct {
	// Flow is the TCP configuration used by all measurements.
	Flow tcpsim.Config
	// RelayBufferBytes sizes the split proxy's relay buffer.
	RelayBufferBytes int64
	// RelayOverhead is the per-packet processing delay at an overlay node
	// in tunnel (non-split) mode.
	RelayOverhead time.Duration
	// TunnelHeaderBytes is the per-packet encapsulation overhead of the
	// GRE/IPsec tunnel in plain overlay mode, which shrinks the effective
	// MSS of the end-to-end connection.
	TunnelHeaderBytes int
	// RelayLossRate is the per-packet drop probability at the overlay VM
	// in tunnel mode: a single-core VM doing GRE decap + NAT rewrite +
	// re-encap in software drops packets under line-rate bursts. Split
	// mode does not pay this (TCP termination paces the relay).
	RelayLossRate float64
}

// DefaultConfig returns the measurement parameters used by the paper-scale
// experiments.
func DefaultConfig() Config {
	return Config{
		Flow:              tcpsim.DefaultConfig(),
		RelayBufferBytes:  4 << 20,
		RelayOverhead:     250 * time.Microsecond,
		TunnelHeaderBytes: 40, // GRE over IP
		RelayLossRate:     4e-5,
	}
}

// CRONet is a cloud-routed overlay network over a generated Internet: a set
// of overlay nodes (cloud data centers) plus the machinery to measure and
// select paths through them.
type CRONet struct {
	in  *topology.Internet
	cfg Config
}

// New builds a CRONet over the Internet topology.
func New(in *topology.Internet, cfg Config) *CRONet {
	return &CRONet{in: in, cfg: cfg}
}

// Internet returns the underlying topology.
func (c *CRONet) Internet() *topology.Internet { return c.in }

// DCCities returns the overlay data-center cities in deterministic order.
func (c *CRONet) DCCities() []string {
	return append([]string(nil), c.in.DCOrder...)
}

// pathFunc builds the time-varying metrics function for a route starting at
// simulation time `at`.
func (c *CRONet) pathFunc(p netsim.Path, at time.Duration) (tcpsim.PathFunc, error) {
	return tcpsim.NetworkPath(c.in.Net, p, at)
}

// MeasureDirect measures the default Internet path between two hosts.
func (c *CRONet) MeasureDirect(rng *rand.Rand, src, dst topology.Host,
	spec tcpsim.Spec, at time.Duration) (Measurement, netsim.Path, error) {

	path, err := c.in.RouterPath(src, dst)
	if err != nil {
		return Measurement{}, netsim.Path{}, fmt.Errorf("core: direct route: %w", err)
	}
	pf, err := c.pathFunc(path, at)
	if err != nil {
		return Measurement{}, netsim.Path{}, err
	}
	res, err := tcpsim.Run(rng, pf, c.cfg.Flow, spec)
	if err != nil {
		return Measurement{}, netsim.Path{}, fmt.Errorf("core: direct measurement: %w", err)
	}
	return Measurement{
		Kind:           Direct,
		ThroughputMbps: res.ThroughputMbps,
		RetransRate:    res.RetransRate,
		AvgRTT:         res.AvgRTT,
	}, path, nil
}

// MeasureOverlay measures the three overlay configurations through the data
// center in dcCity.
func (c *CRONet) MeasureOverlay(rng *rand.Rand, src, dst topology.Host, dcCity string,
	spec tcpsim.Spec, at time.Duration) (OverlayMeasurements, error) {

	route, err := c.in.OverlayRoute(src, dst, dcCity)
	if err != nil {
		return OverlayMeasurements{}, err
	}
	seg1, err := c.pathFunc(route.ToDC, at)
	if err != nil {
		return OverlayMeasurements{}, err
	}
	seg2, err := c.pathFunc(route.FromDC, at)
	if err != nil {
		return OverlayMeasurements{}, err
	}
	out := OverlayMeasurements{DC: dcCity, Route: route}

	// Plain tunnel: one TCP loop over the concatenated path, with the
	// effective MSS shrunk by the encapsulation header.
	tunnelFlow := c.cfg.Flow
	if tunnelFlow.MSSBytes > c.cfg.TunnelHeaderBytes {
		tunnelFlow.MSSBytes -= c.cfg.TunnelHeaderBytes
	}
	tunnelPath := tcpsim.ConcatPath(seg1, seg2, c.cfg.RelayOverhead)
	if c.cfg.RelayLossRate > 0 {
		inner := tunnelPath
		tunnelPath = func(at time.Duration) netsim.Metrics {
			m := inner(at)
			m.LossRate = 1 - (1-m.LossRate)*(1-c.cfg.RelayLossRate)
			return m
		}
	}
	plain, err := tcpsim.Run(rng, tunnelPath, tunnelFlow, spec)
	if err != nil {
		return OverlayMeasurements{}, fmt.Errorf("core: overlay tunnel via %s: %w", dcCity, err)
	}
	out.Plain = Measurement{Kind: Overlay, DC: dcCity,
		ThroughputMbps: plain.ThroughputMbps, RetransRate: plain.RetransRate, AvgRTT: plain.AvgRTT}

	// Split proxy: two cascaded loops.
	split, err := tcpsim.RunSplit(rng, seg1, seg2,
		tcpsim.SplitConfig{Flow: c.cfg.Flow, RelayBufferBytes: c.cfg.RelayBufferBytes}, spec)
	if err != nil {
		return OverlayMeasurements{}, fmt.Errorf("core: split overlay via %s: %w", dcCity, err)
	}
	out.Split = Measurement{Kind: SplitOverlay, DC: dcCity,
		ThroughputMbps: split.ThroughputMbps, RetransRate: split.RetransRate, AvgRTT: split.AvgRTT}

	// Discrete: both segments measured independently; min is the bound.
	r1, err := tcpsim.Run(rng, seg1, c.cfg.Flow, spec)
	if err != nil {
		return OverlayMeasurements{}, fmt.Errorf("core: discrete segment 1 via %s: %w", dcCity, err)
	}
	r2, err := tcpsim.Run(rng, seg2, c.cfg.Flow, spec)
	if err != nil {
		return OverlayMeasurements{}, fmt.Errorf("core: discrete segment 2 via %s: %w", dcCity, err)
	}
	disc := r1
	if r2.ThroughputMbps < r1.ThroughputMbps {
		disc = r2
	}
	out.Discrete = Measurement{Kind: DiscreteOverlay, DC: dcCity,
		ThroughputMbps: disc.ThroughputMbps, RetransRate: disc.RetransRate,
		AvgRTT: r1.AvgRTT + r2.AvgRTT}
	return out, nil
}

// MeasurePair measures the direct path and every overlay option between two
// hosts at simulation time `at`.
func (c *CRONet) MeasurePair(rng *rand.Rand, src, dst topology.Host, dcs []string,
	spec tcpsim.Spec, at time.Duration) (PairResult, error) {

	direct, dpath, err := c.MeasureDirect(rng, src, dst, spec, at)
	if err != nil {
		return PairResult{}, err
	}
	pr := PairResult{Src: src, Dst: dst, Direct: direct, DirectPath: dpath}
	for _, dc := range dcs {
		om, err := c.MeasureOverlay(rng, src, dst, dc, spec, at)
		if err != nil {
			return PairResult{}, err
		}
		pr.Overlays = append(pr.Overlays, om)
	}
	return pr, nil
}

// MPTCPResult reports an MPTCP path-selection run alongside the reference
// measurements of the paper's Figure 12/13 bars.
type MPTCPResult struct {
	// TotalMbps is the aggregate MPTCP throughput.
	TotalMbps float64
	// SubflowMbps is the per-path breakdown; index 0 is the direct path,
	// then one entry per overlay DC.
	SubflowMbps []float64
}

// MeasureMPTCP runs one MPTCP connection across the direct path plus one
// subflow per overlay data center, with the given congestion coupling. The
// sender never probes paths: the coupled controller discovers the best one.
func (c *CRONet) MeasureMPTCP(rng *rand.Rand, src, dst topology.Host, dcs []string,
	coupling mptcpsim.Coupling, alg tcpsim.Algorithm, nicMbps float64,
	spec tcpsim.Spec, at time.Duration) (MPTCPResult, error) {

	direct, err := c.in.RouterPath(src, dst)
	if err != nil {
		return MPTCPResult{}, err
	}
	dpf, err := c.pathFunc(direct, at)
	if err != nil {
		return MPTCPResult{}, err
	}
	paths := []tcpsim.PathFunc{dpf}
	for _, dc := range dcs {
		route, err := c.in.OverlayRoute(src, dst, dc)
		if err != nil {
			return MPTCPResult{}, err
		}
		seg1, err := c.pathFunc(route.ToDC, at)
		if err != nil {
			return MPTCPResult{}, err
		}
		seg2, err := c.pathFunc(route.FromDC, at)
		if err != nil {
			return MPTCPResult{}, err
		}
		paths = append(paths, tcpsim.ConcatPath(seg1, seg2, c.cfg.RelayOverhead))
	}
	flow := c.cfg.Flow
	flow.Alg = alg
	// Coupled runs use a single-connection-sized receive window (the
	// stock MPTCP deployment); the uncoupled configuration models the
	// paper's Section VI-C scenario where users who pay for the overlay
	// bandwidth provision buffers for the aggregate of all subflows.
	connRwnd := 2 * flow.MaxCwnd
	if coupling == mptcpsim.Uncoupled {
		connRwnd = 0
	}
	res, err := mptcpsim.Run(rng, paths, mptcpsim.Config{
		Flow:             flow,
		Coupling:         coupling,
		SharedAccessMbps: nicMbps,
		ConnRwndPkts:     connRwnd,
	}, spec)
	if err != nil {
		return MPTCPResult{}, fmt.Errorf("core: mptcp run: %w", err)
	}
	return MPTCPResult{TotalMbps: res.TotalThroughputMbps, SubflowMbps: res.SubflowMbps}, nil
}
