package multipath

import (
	"testing"

	"cronets/internal/flowtrace"
)

// TestChannelSpans: a traced channel records multipath.send and
// multipath.recv spans parented under the configured context, with byte
// counts matching the transferred payload.
func TestChannelSpans(t *testing.T) {
	tracer := flowtrace.New(flowtrace.Config{Node: "mp", SampleRate: 1, Seed: 21})
	parent := tracer.Start("flow", flowtrace.Context{})

	s, r := pipes(2)
	payload := randomPayload(7, 96<<10)
	cfg := Config{Tracer: tracer, TraceCtx: parent.Context()}
	got := transfer(t, s, r, payload, cfg)
	if len(got) != len(payload) {
		t.Fatalf("transferred %d bytes, want %d", len(got), len(payload))
	}
	parent.End()

	byName := make(map[string]*flowtrace.Span)
	for _, span := range tracer.Snapshot() {
		byName[span.Name] = span
	}
	for _, name := range []string{"multipath.send", "multipath.recv"} {
		span, ok := byName[name]
		if !ok {
			t.Fatalf("no %s span recorded", name)
		}
		if span.Trace != parent.Trace || span.Parent != parent.ID {
			t.Errorf("%s parented %x on trace %s, want %x on %s",
				name, span.Parent, span.Trace, parent.ID, parent.Trace)
		}
		if span.Bytes() != int64(len(payload)) {
			t.Errorf("%s bytes = %d, want %d", name, span.Bytes(), len(payload))
		}
		if _, ok := span.FirstByte(); !ok {
			t.Errorf("%s has no first-byte mark", name)
		}
	}

	// Untraced channels stay untraced: no tracer, no spans.
	s2, r2 := pipes(1)
	before := len(tracer.Snapshot())
	_ = transfer(t, s2, r2, payload[:1024], Config{})
	if got := len(tracer.Snapshot()); got != before {
		t.Errorf("untraced transfer added %d spans", got-before)
	}
}
