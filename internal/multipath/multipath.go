// Package multipath implements the stream channel behind the paper's
// MPTCP-proxy deployment model (Section VI-A): application data entering
// one proxy is striped across N subflows — one per path, e.g. the direct
// path plus one through each overlay node — with connection-level sequence
// numbers, and reassembled in order at the far proxy. Scheduling is
// pull-based: each subflow's writer takes the next segment when its socket
// can absorb it, so faster paths naturally carry more traffic, and a dead
// subflow's unacknowledged segments are retransmitted on the survivors —
// the failover property MPTCP provides transparently.
package multipath

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"cronets/internal/obs"
)

// Frame types.
const (
	frameData byte = 1
	// frameAck carries the connection-level cumulative in-order count
	// (frees retransmission state, gates Close).
	frameAck byte = 2
	frameFin byte = 3
	// frameSubAck carries the count of segments received on the subflow
	// it arrives on, regardless of ordering — the analog of subflow-level
	// TCP ACKs, which keep a fast subflow sending while the reassembly
	// point waits on a slow one.
	frameSubAck byte = 4
)

// frame header: type(1) + seq(8) + length(4).
const headerSize = 13

// Config parameterizes a multipath channel. The zero value is usable;
// defaults are filled in.
type Config struct {
	// MaxSegBytes is the striping segment size (default 32 KiB).
	MaxSegBytes int
	// WindowSegs bounds unacknowledged segments (default 256); Write
	// blocks when the window is full.
	WindowSegs int
	// AckEvery controls how many in-order segments the receiver delivers
	// between cumulative ACKs (default 4).
	AckEvery int
	// SubflowInflight caps unacknowledged segments per subflow (default
	// 8). Without it a slow subflow's writer pulls unbounded work into
	// kernel buffers and head-of-line blocks the reassembly window.
	SubflowInflight int
	// CloseTimeout bounds Close's wait for final ACKs (default 30 s).
	CloseTimeout time.Duration
	// Obs receives per-subflow metrics and failover events (nil disables
	// instrumentation at zero cost).
	Obs *obs.Registry
}

func (c *Config) applyDefaults() {
	if c.MaxSegBytes <= 0 {
		c.MaxSegBytes = 32 << 10
	}
	if c.WindowSegs <= 0 {
		c.WindowSegs = 256
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 4
	}
	if c.SubflowInflight <= 0 {
		c.SubflowInflight = 8
	}
	if c.CloseTimeout <= 0 {
		c.CloseTimeout = 30 * time.Second
	}
}

// Errors.
var (
	// ErrAllSubflowsDead is returned when no subflow remains to carry
	// unacknowledged data.
	ErrAllSubflowsDead = errors.New("multipath: all subflows dead")
	// ErrSenderClosed is returned by Write after Close.
	ErrSenderClosed = errors.New("multipath: sender closed")
)

// segment is one striped unit awaiting acknowledgment.
type segment struct {
	seq  uint64
	data []byte
}

// Sender stripes a byte stream across subflows. It implements
// io.WriteCloser. Safe for one writer goroutine.
type Sender struct {
	cfg   Config
	conns []net.Conn
	// wmu serializes writes on each subflow so a FIN cannot interleave
	// with a data frame's header/body pair.
	wmu []sync.Mutex

	mu         sync.Mutex
	cond       *sync.Cond
	nextSeq    uint64
	cumAcked   uint64              // all seq < cumAcked are acknowledged
	pending    []*segment          // not yet assigned to a subflow
	inflight   map[uint64]*segment // assigned, unacked
	owner      map[uint64]int      // seq -> subflow index
	sentBy     []uint64            // segments written per subflow
	subAckedBy []uint64            // segments sub-acked per subflow
	alive      []bool
	aliveN     int
	closed     bool
	finSent    bool
	deadErr    error
	wg         sync.WaitGroup

	bytesBy     []*obs.Counter // payload bytes written per subflow
	retransmits *obs.Counter
	scope       *obs.Scope
}

// NewSender builds the sending side over the given subflow connections
// and starts its per-subflow workers.
func NewSender(conns []net.Conn, cfg Config) (*Sender, error) {
	if len(conns) == 0 {
		return nil, errors.New("multipath: need at least one subflow")
	}
	cfg.applyDefaults()
	s := &Sender{
		cfg:        cfg,
		conns:      conns,
		wmu:        make([]sync.Mutex, len(conns)),
		inflight:   make(map[uint64]*segment),
		owner:      make(map[uint64]int),
		sentBy:     make([]uint64, len(conns)),
		subAckedBy: make([]uint64, len(conns)),
		alive:      make([]bool, len(conns)),
		aliveN:     len(conns),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.alive {
		s.alive[i] = true
	}
	s.scope = cfg.Obs.Scope("multipath")
	s.retransmits = cfg.Obs.Counter("cronets_multipath_retransmits_total",
		"Segments requeued onto surviving subflows after a subflow death.")
	s.bytesBy = make([]*obs.Counter, len(conns))
	for i := range conns {
		s.bytesBy[i] = cfg.Obs.Counter(
			obs.Label("cronets_multipath_subflow_bytes_total", "subflow", strconv.Itoa(i)),
			"Payload bytes written per subflow.")
		s.scope.Event(obs.EventSubflowUp, "subflow "+strconv.Itoa(i))
	}
	for i := range conns {
		s.wg.Add(2)
		go s.writeLoop(i)
		go s.ackLoop(i)
	}
	return s, nil
}

// Write stripes p across the subflows, blocking while the unacknowledged
// window is full. It retains no reference to p.
func (s *Sender) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > s.cfg.MaxSegBytes {
			n = s.cfg.MaxSegBytes
		}
		seg := &segment{data: append([]byte(nil), p[:n]...)}
		s.mu.Lock()
		for !s.closed && s.deadErr == nil &&
			len(s.pending)+len(s.inflight) >= s.cfg.WindowSegs {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return written, ErrSenderClosed
		}
		if s.deadErr != nil {
			err := s.deadErr
			s.mu.Unlock()
			return written, err
		}
		seg.seq = s.nextSeq
		s.nextSeq++
		s.pending = append(s.pending, seg)
		s.cond.Broadcast()
		s.mu.Unlock()
		p = p[n:]
		written += n
	}
	return written, nil
}

// Close flushes remaining data, waits for all acknowledgments (bounded by
// CloseTimeout), sends FIN, and closes the subflows.
func (s *Sender) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	finSeq := s.nextSeq
	s.cond.Broadcast()
	deadline := time.Now().Add(s.cfg.CloseTimeout)
	for s.cumAcked < finSeq && s.deadErr == nil && time.Now().Before(deadline) {
		s.waitWithTimeout(50 * time.Millisecond)
	}
	err := s.deadErr
	if err == nil && s.cumAcked < finSeq {
		err = fmt.Errorf("multipath: close timed out with %d segments unacked", finSeq-s.cumAcked)
	}
	s.finSent = true
	s.mu.Unlock()

	// Send FIN on every alive subflow (receivers tolerate duplicates).
	fin := make([]byte, headerSize)
	fin[0] = frameFin
	binary.BigEndian.PutUint64(fin[1:9], finSeq)
	for i, c := range s.conns {
		s.mu.Lock()
		ok := s.alive[i]
		s.mu.Unlock()
		if ok {
			s.wmu[i].Lock()
			_, _ = c.Write(fin)
			s.wmu[i].Unlock()
		}
	}
	for _, c := range s.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}
	// Give receivers a moment to drain, then close for real.
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// waitWithTimeout waits on the cond var for at most d. Caller holds s.mu.
func (s *Sender) waitWithTimeout(d time.Duration) {
	t := time.AfterFunc(d, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.cond.Wait()
}

// writeLoop pulls segments and writes them on subflow i until the channel
// shuts down or the subflow dies.
func (s *Sender) writeLoop(i int) {
	defer s.wg.Done()
	hdr := make([]byte, headerSize)
	for {
		s.mu.Lock()
		for (len(s.pending) == 0 || s.inflightLocked(i) >= s.cfg.SubflowInflight) &&
			!s.doneLocked() && s.alive[i] {
			s.cond.Wait()
		}
		if (s.doneLocked() && len(s.pending) == 0) || !s.alive[i] {
			s.mu.Unlock()
			return
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			continue
		}
		seg := s.pending[0]
		s.pending = s.pending[1:]
		s.inflight[seg.seq] = seg
		s.owner[seg.seq] = i
		s.sentBy[i]++
		s.mu.Unlock()

		hdr[0] = frameData
		binary.BigEndian.PutUint64(hdr[1:9], seg.seq)
		binary.BigEndian.PutUint32(hdr[9:13], uint32(len(seg.data)))
		s.wmu[i].Lock()
		_, err := s.conns[i].Write(hdr)
		if err == nil {
			_, err = s.conns[i].Write(seg.data)
		}
		s.wmu[i].Unlock()
		if err != nil {
			s.subflowDied(i)
			return
		}
		s.bytesBy[i].Add(int64(len(seg.data)))
	}
}

// doneLocked reports whether the sender has been closed and fully acked.
func (s *Sender) doneLocked() bool {
	return (s.closed && s.cumAcked >= s.nextSeq) || s.deadErr != nil || s.finSent
}

// inflightLocked returns the subflow's unacknowledged segment count.
// Caller holds s.mu.
func (s *Sender) inflightLocked(i int) int {
	return int(s.sentBy[i] - s.subAckedBy[i])
}

// ackLoop reads cumulative ACKs arriving on subflow i.
func (s *Sender) ackLoop(i int) {
	defer s.wg.Done()
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(s.conns[i], hdr); err != nil {
			s.subflowDied(i)
			return
		}
		if hdr[0] != frameAck && hdr[0] != frameSubAck {
			s.subflowDied(i)
			return
		}
		value := binary.BigEndian.Uint64(hdr[1:9])
		s.mu.Lock()
		switch hdr[0] {
		case frameAck:
			if value > s.cumAcked {
				for seq := s.cumAcked; seq < value; seq++ {
					delete(s.inflight, seq)
					delete(s.owner, seq)
				}
				s.cumAcked = value
				s.cond.Broadcast()
			}
		case frameSubAck:
			if value > s.subAckedBy[i] {
				s.subAckedBy[i] = value
				s.cond.Broadcast()
			}
		}
		s.mu.Unlock()
	}
}

// subflowDied marks subflow i dead and requeues its unacknowledged
// segments for retransmission on the survivors.
func (s *Sender) subflowDied(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.alive[i] {
		return
	}
	s.alive[i] = false
	s.aliveN--
	var requeue []*segment
	for seq, owner := range s.owner {
		if owner != i {
			continue
		}
		if seg, ok := s.inflight[seq]; ok {
			requeue = append(requeue, seg)
			delete(s.inflight, seq)
		}
		delete(s.owner, seq)
	}
	s.sentBy[i] = 0
	s.subAckedBy[i] = 0
	// Retransmissions go to the front, lowest sequence first.
	for a := 0; a < len(requeue); a++ {
		for b := a + 1; b < len(requeue); b++ {
			if requeue[b].seq < requeue[a].seq {
				requeue[a], requeue[b] = requeue[b], requeue[a]
			}
		}
	}
	s.pending = append(requeue, s.pending...)
	if s.aliveN == 0 && (len(s.pending) > 0 || len(s.inflight) > 0 || !s.closed) {
		s.deadErr = ErrAllSubflowsDead
	}
	s.cond.Broadcast()
	s.retransmits.Add(int64(len(requeue)))
	s.scope.Event(obs.EventSubflowDown,
		fmt.Sprintf("subflow %d down, %d alive", i, s.aliveN))
	if len(requeue) > 0 {
		s.scope.Event(obs.EventRetransmit,
			fmt.Sprintf("%d segments requeued from subflow %d", len(requeue), i))
	}
}

// CumAcked returns the count of contiguously acknowledged segments.
func (s *Sender) CumAcked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cumAcked
}

// AliveSubflows returns how many subflows are still usable.
func (s *Sender) AliveSubflows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aliveN
}
