// Package multipath implements the stream channel behind the paper's
// MPTCP-proxy deployment model (Section VI-A): application data entering
// one proxy is striped across N subflows — one per path, e.g. the direct
// path plus one through each overlay node — with connection-level sequence
// numbers, and reassembled in order at the far proxy. Scheduling is
// pull-based: each subflow's writer takes the next segment when its socket
// can absorb it, so faster paths naturally carry more traffic, and a dead
// subflow's unacknowledged segments are retransmitted on the survivors —
// the failover property MPTCP provides transparently.
//
// Subflows are also *re-establishable*: with a SubflowDialer configured,
// the sender redials a dead subflow with exponential backoff + jitter and
// rejoins it to the channel via a JOIN handshake (channel ID + subflow
// index); the receiver accepts the late-joining socket and striping
// resumes on the recovered path.
package multipath

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/obs"
	"cronets/internal/pipe"
)

// Frame types.
const (
	frameData byte = 1
	// frameAck carries the connection-level cumulative in-order count
	// (frees retransmission state, gates Close).
	frameAck byte = 2
	frameFin byte = 3
	// frameSubAck carries the count of segments received on the subflow
	// it arrives on, regardless of ordering — the analog of subflow-level
	// TCP ACKs, which keep a fast subflow sending while the reassembly
	// point waits on a slow one.
	frameSubAck byte = 4
	// frameJoin is the reconnect handshake: seq carries the channel ID,
	// length the subflow index. The receiver echoes it to accept.
	frameJoin byte = 5
)

// frame header: type(1) + seq(8) + length(4).
const headerSize = 13

// SubflowDialer re-establishes the transport connection for a dead
// subflow. It is called from the sender's reconnect loop and should bound
// its own dial time.
type SubflowDialer func(subflow int) (net.Conn, error)

// Config parameterizes a multipath channel. The zero value is usable;
// defaults are filled in.
type Config struct {
	// MaxSegBytes is the striping segment size (default 32 KiB). The
	// receiver rejects data frames longer than this, so both ends must
	// agree on it.
	MaxSegBytes int
	// WindowSegs bounds unacknowledged segments (default 256); Write
	// blocks when the window is full.
	WindowSegs int
	// AckEvery controls how many in-order segments the receiver delivers
	// between cumulative ACKs (default 4).
	AckEvery int
	// SubflowInflight caps unacknowledged segments per subflow (default
	// 8). Without it a slow subflow's writer pulls unbounded work into
	// kernel buffers and head-of-line blocks the reassembly window.
	SubflowInflight int
	// MaxBufferedBytes caps the receiver's reassembled-but-unread byte
	// buffer (default 8 MiB). While over the cap the receiver withholds
	// cumulative ACKs, so the sender's window closes and a non-reading
	// application cannot force unbounded buffering; at most one more
	// window (WindowSegs * MaxSegBytes) arrives past the cap.
	MaxBufferedBytes int
	// CloseTimeout bounds Close's wait for final ACKs (default 30 s).
	CloseTimeout time.Duration
	// Dialer enables subflow re-establishment: when a subflow dies, the
	// sender redials it and rejoins the channel. Nil disables reconnect
	// (a dead subflow stays dead).
	Dialer SubflowDialer
	// ChannelID identifies the channel in JOIN handshakes; the receiver
	// rejects joins for any other ID. Both ends must agree on it.
	ChannelID uint64
	// ReconnectAttempts caps redial attempts per subflow death
	// (default 5).
	ReconnectAttempts int
	// ReconnectBackoff is the delay before the first redial attempt
	// (default 25 ms), doubling each attempt with up to 50% added
	// jitter, capped at 2 s.
	ReconnectBackoff time.Duration
	// JoinTimeout bounds each side of the JOIN handshake (default 5 s).
	JoinTimeout time.Duration
	// Obs receives per-subflow metrics and failover events (nil disables
	// instrumentation at zero cost).
	Obs *obs.Registry
	// Tracer records flowtrace spans for the channel: the sender opens a
	// "multipath.send" span at construction (a new root when TraceCtx is
	// zero, subject to sampling), the receiver continues a "multipath.recv"
	// span under TraceCtx. Nil disables tracing at zero cost.
	Tracer *flowtrace.Tracer
	// TraceCtx parents the channel's spans under an existing flow. The
	// context travels by configuration, not on the multipath wire, so both
	// ends must be handed the same value (like ChannelID).
	TraceCtx flowtrace.Context
}

func (c *Config) applyDefaults() {
	if c.MaxSegBytes <= 0 {
		c.MaxSegBytes = 32 << 10
	}
	if c.WindowSegs <= 0 {
		c.WindowSegs = 256
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 4
	}
	if c.SubflowInflight <= 0 {
		c.SubflowInflight = 8
	}
	if c.MaxBufferedBytes <= 0 {
		c.MaxBufferedBytes = 8 << 20
	}
	if c.CloseTimeout <= 0 {
		c.CloseTimeout = 30 * time.Second
	}
	if c.ReconnectAttempts <= 0 {
		c.ReconnectAttempts = 5
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 25 * time.Millisecond
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 5 * time.Second
	}
}

// maxReconnectBackoff caps the exponential redial backoff.
const maxReconnectBackoff = 2 * time.Second

// Errors.
var (
	// ErrAllSubflowsDead is returned when no subflow remains to carry
	// unacknowledged data (and reconnection, if enabled, gave up).
	ErrAllSubflowsDead = errors.New("multipath: all subflows dead")
	// ErrSenderClosed is returned by Write after Close.
	ErrSenderClosed = errors.New("multipath: sender closed")
	// ErrJoinRejected is returned when the far end refuses a JOIN
	// handshake (wrong channel ID or subflow index).
	ErrJoinRejected = errors.New("multipath: join rejected")
)

// segment is one striped unit awaiting acknowledgment. Its data lives in
// a pipe pool buffer and the struct itself is recycled through segPool,
// so a steady-state transfer allocates nothing per segment.
type segment struct {
	seq  uint64
	data []byte
	// writers counts writeLoops currently writing this segment's bytes
	// (retransmission can overlap a late cumulative ACK); acked marks it
	// retired by an ACK; released guards the one-time return to the
	// pools. All three are guarded by Sender.mu.
	writers  int8
	acked    bool
	released bool
}

// segPool recycles segment structs across transfers.
var segPool = sync.Pool{New: func() any { return new(segment) }}

// newSegment copies p into a pooled segment.
func newSegment(p []byte) *segment {
	seg := segPool.Get().(*segment)
	seg.seq = 0
	seg.writers, seg.acked, seg.released = 0, false, false
	seg.data = pipe.Get(len(p))
	copy(seg.data, p)
	return seg
}

// releaseSegLocked returns a retired segment's buffer and struct to their
// pools. Idempotent; a no-op while any writeLoop still holds the bytes
// (the last writer's decrement re-invokes it). Caller holds Sender.mu.
func releaseSegLocked(seg *segment) {
	if seg.released || seg.writers > 0 {
		return
	}
	seg.released = true
	pipe.Put(seg.data)
	seg.data = nil
	segPool.Put(seg)
}

// Sender stripes a byte stream across subflows. It implements
// io.WriteCloser. Safe for one writer goroutine.
type Sender struct {
	cfg Config
	// wmu serializes writes on each subflow slot so a FIN cannot
	// interleave with a data frame's header/body pair.
	wmu []sync.Mutex
	// stopc cancels reconnect loops on Close.
	stopc chan struct{}

	// rng drives reconnect backoff jitter, seeded from the channel ID so
	// runs are reproducible.
	rngMu sync.Mutex
	rng   *rand.Rand

	mu    sync.Mutex
	cond  *sync.Cond
	conns []net.Conn
	// epoch[i] counts incarnations of subflow slot i: every rejoin bumps
	// it, so goroutines serving a dead incarnation (or its late frames)
	// can detect they are stale and stand down.
	epoch        []uint64
	nextSeq      uint64
	cumAcked     uint64              // all seq < cumAcked are acknowledged
	pending      []*segment          // not yet assigned to a subflow
	inflight     map[uint64]*segment // assigned, unacked
	owner        map[uint64]int      // seq -> subflow index
	sentBy       []uint64            // segments written per subflow incarnation
	subAckedBy   []uint64            // segments sub-acked per subflow incarnation
	alive        []bool
	aliveN       int
	reconnecting int // subflows with a redial loop in flight
	closed       bool
	finSent      bool
	deadErr      error
	wg           sync.WaitGroup

	bytesBy     []*obs.Counter // payload bytes written per subflow
	retransmits *obs.Counter
	rejoins     *obs.Counter
	scope       *obs.Scope
	span        *flowtrace.Span // "multipath.send", nil when untraced
}

// NewSender builds the sending side over the given subflow connections
// and starts its per-subflow workers.
func NewSender(conns []net.Conn, cfg Config) (*Sender, error) {
	if len(conns) == 0 {
		return nil, errors.New("multipath: need at least one subflow")
	}
	cfg.applyDefaults()
	s := &Sender{
		cfg:        cfg,
		conns:      append([]net.Conn(nil), conns...),
		wmu:        make([]sync.Mutex, len(conns)),
		stopc:      make(chan struct{}),
		rng:        rand.New(rand.NewSource(int64(cfg.ChannelID) + 1)),
		epoch:      make([]uint64, len(conns)),
		inflight:   make(map[uint64]*segment),
		owner:      make(map[uint64]int),
		sentBy:     make([]uint64, len(conns)),
		subAckedBy: make([]uint64, len(conns)),
		alive:      make([]bool, len(conns)),
		aliveN:     len(conns),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.alive {
		s.alive[i] = true
	}
	s.scope = cfg.Obs.Scope("multipath")
	s.retransmits = cfg.Obs.Counter("cronets_multipath_retransmits_total",
		"Segments requeued onto surviving subflows after a subflow death.")
	s.rejoins = cfg.Obs.Counter("cronets_multipath_rejoins_total",
		"Dead subflows re-established via the reconnect loop.")
	s.bytesBy = make([]*obs.Counter, len(conns))
	for i := range conns {
		s.bytesBy[i] = cfg.Obs.Counter(
			obs.Label("cronets_multipath_subflow_bytes_total", "subflow", strconv.Itoa(i)),
			"Payload bytes written per subflow.")
		s.scope.Event(obs.EventSubflowUp, "subflow "+strconv.Itoa(i))
	}
	s.span = cfg.Tracer.Start("multipath.send", cfg.TraceCtx)
	s.span.SetDetail(strconv.Itoa(len(conns)) + " subflows")
	for i, c := range s.conns {
		s.wg.Add(2)
		go s.writeLoop(i, 0, c)
		go s.ackLoop(i, 0, c)
	}
	return s, nil
}

// Write stripes p across the subflows, blocking while the unacknowledged
// window is full. It retains no reference to p.
func (s *Sender) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > s.cfg.MaxSegBytes {
			n = s.cfg.MaxSegBytes
		}
		seg := newSegment(p[:n])
		s.mu.Lock()
		for !s.closed && s.deadErr == nil &&
			len(s.pending)+len(s.inflight) >= s.cfg.WindowSegs {
			s.cond.Wait()
		}
		if s.closed {
			releaseSegLocked(seg)
			s.mu.Unlock()
			return written, ErrSenderClosed
		}
		if s.deadErr != nil {
			err := s.deadErr
			releaseSegLocked(seg)
			s.mu.Unlock()
			return written, err
		}
		seg.seq = s.nextSeq
		s.nextSeq++
		s.pending = append(s.pending, seg)
		s.cond.Broadcast()
		s.mu.Unlock()
		p = p[n:]
		written += n
	}
	return written, nil
}

// Close flushes remaining data, waits for all acknowledgments (bounded by
// CloseTimeout), sends FIN, and closes the subflows. Once the FIN is out,
// subflow teardown is orderly: conns closing underneath the ack loops is
// no longer treated as a path failure.
func (s *Sender) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	finSeq := s.nextSeq
	s.cond.Broadcast()
	deadline := time.Now().Add(s.cfg.CloseTimeout)
	for s.cumAcked < finSeq && s.deadErr == nil && time.Now().Before(deadline) {
		s.waitWithTimeout(50 * time.Millisecond)
	}
	err := s.deadErr
	if err == nil && s.cumAcked < finSeq {
		err = fmt.Errorf("multipath: close timed out with %d segments unacked", finSeq-s.cumAcked)
	}
	s.finSent = true
	conns := append([]net.Conn(nil), s.conns...)
	aliveSnapshot := append([]bool(nil), s.alive...)
	s.mu.Unlock()
	close(s.stopc)

	// Send FIN on every alive subflow (receivers tolerate duplicates).
	fin := make([]byte, headerSize)
	fin[0] = frameFin
	binary.BigEndian.PutUint64(fin[1:9], finSeq)
	for i, c := range conns {
		if aliveSnapshot[i] {
			s.wmu[i].Lock()
			_, _ = c.Write(fin)
			s.wmu[i].Unlock()
		}
	}
	for _, c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}
	// Give receivers a moment to drain, then close for real.
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	// All worker loops are done (writers == 0 everywhere); recycle any
	// segments the transfer never got acknowledged.
	s.mu.Lock()
	for _, seg := range s.pending {
		releaseSegLocked(seg)
	}
	s.pending = nil
	for seq, seg := range s.inflight {
		delete(s.inflight, seq)
		delete(s.owner, seq)
		releaseSegLocked(seg)
	}
	s.mu.Unlock()
	s.span.End()
	return err
}

// waitWithTimeout waits on the cond var for at most d. Caller holds s.mu.
func (s *Sender) waitWithTimeout(d time.Duration) {
	t := time.AfterFunc(d, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.cond.Wait()
}

// writeLoop pulls segments and writes them on subflow slot i (incarnation
// epoch, socket conn) until the channel shuts down, the subflow dies, or
// a rejoin supersedes this incarnation.
func (s *Sender) writeLoop(i int, epoch uint64, conn net.Conn) {
	defer s.wg.Done()
	hdr := make([]byte, headerSize)
	for {
		s.mu.Lock()
		for (len(s.pending) == 0 || s.inflightLocked(i) >= s.cfg.SubflowInflight) &&
			!s.doneLocked() && s.alive[i] && s.epoch[i] == epoch {
			s.cond.Wait()
		}
		if (s.doneLocked() && len(s.pending) == 0) || !s.alive[i] || s.epoch[i] != epoch {
			s.mu.Unlock()
			return
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			continue
		}
		seg := s.pending[0]
		s.pending = s.pending[1:]
		if seg.acked || seg.seq < s.cumAcked {
			// A requeued retransmit that a cumulative ACK already
			// covered: retire it instead of writing stale bytes.
			seg.acked = true
			releaseSegLocked(seg)
			s.mu.Unlock()
			continue
		}
		s.inflight[seg.seq] = seg
		s.owner[seg.seq] = i
		s.sentBy[i]++
		seg.writers++
		segLen := len(seg.data)
		s.mu.Unlock()

		hdr[0] = frameData
		binary.BigEndian.PutUint64(hdr[1:9], seg.seq)
		binary.BigEndian.PutUint32(hdr[9:13], uint32(segLen))
		s.wmu[i].Lock()
		_, err := conn.Write(hdr)
		if err == nil {
			_, err = conn.Write(seg.data)
		}
		s.wmu[i].Unlock()
		s.mu.Lock()
		seg.writers--
		if seg.acked {
			// The ACK landed mid-write; this writer held the release.
			releaseSegLocked(seg)
		}
		s.mu.Unlock()
		if err != nil {
			s.subflowDied(i, epoch)
			return
		}
		s.bytesBy[i].Add(int64(segLen))
		s.span.MarkFirstByte()
		s.span.AddBytes(int64(segLen))
	}
}

// doneLocked reports whether the sender has been closed and fully acked.
func (s *Sender) doneLocked() bool {
	return (s.closed && s.cumAcked >= s.nextSeq) || s.deadErr != nil || s.finSent
}

// inflightLocked returns the subflow's unacknowledged segment count.
// Caller holds s.mu.
func (s *Sender) inflightLocked(i int) int {
	return int(s.sentBy[i] - s.subAckedBy[i])
}

// ackLoop reads cumulative ACKs arriving on subflow slot i's incarnation.
func (s *Sender) ackLoop(i int, epoch uint64, conn net.Conn) {
	defer s.wg.Done()
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			s.subflowDied(i, epoch)
			return
		}
		if hdr[0] != frameAck && hdr[0] != frameSubAck {
			s.subflowDied(i, epoch)
			return
		}
		value := binary.BigEndian.Uint64(hdr[1:9])
		s.mu.Lock()
		switch hdr[0] {
		case frameAck:
			if value > s.cumAcked {
				for seq := s.cumAcked; seq < value; seq++ {
					if seg, ok := s.inflight[seq]; ok {
						delete(s.inflight, seq)
						seg.acked = true
						releaseSegLocked(seg)
					}
					delete(s.owner, seq)
				}
				s.cumAcked = value
				s.cond.Broadcast()
			}
		case frameSubAck:
			// Sub-ack counts are per incarnation; a stale epoch's count
			// must not corrupt the fresh socket's inflight accounting.
			if s.epoch[i] == epoch && value > s.subAckedBy[i] {
				s.subAckedBy[i] = value
				s.cond.Broadcast()
			}
		}
		s.mu.Unlock()
	}
}

// subflowDied marks incarnation epoch of subflow i dead, requeues its
// unacknowledged segments for retransmission on the survivors, and — with
// a Dialer configured — starts the reconnect loop. After the FIN has been
// sent the channel is tearing down and conns closing is not a failure.
func (s *Sender) subflowDied(i int, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch[i] != epoch || !s.alive[i] || s.finSent {
		return
	}
	s.alive[i] = false
	s.aliveN--
	_ = s.conns[i].Close() // wake the peer's reader promptly
	var requeue []*segment
	for seq, owner := range s.owner {
		if owner != i {
			continue
		}
		if seg, ok := s.inflight[seq]; ok {
			requeue = append(requeue, seg)
			delete(s.inflight, seq)
		}
		delete(s.owner, seq)
	}
	s.sentBy[i] = 0
	s.subAckedBy[i] = 0
	// Retransmissions go to the front, lowest sequence first.
	for a := 0; a < len(requeue); a++ {
		for b := a + 1; b < len(requeue); b++ {
			if requeue[b].seq < requeue[a].seq {
				requeue[a], requeue[b] = requeue[b], requeue[a]
			}
		}
	}
	s.pending = append(requeue, s.pending...)
	if s.cfg.Dialer != nil && !s.closed {
		s.reconnecting++
		s.wg.Add(1)
		go s.reconnectLoop(i)
	}
	if s.aliveN == 0 && s.reconnecting == 0 &&
		(len(s.pending) > 0 || len(s.inflight) > 0 || !s.closed) {
		s.deadErr = ErrAllSubflowsDead
	}
	s.cond.Broadcast()
	s.retransmits.Add(int64(len(requeue)))
	s.scope.Event(obs.EventSubflowDown,
		fmt.Sprintf("subflow %d down, %d alive", i, s.aliveN))
	if len(requeue) > 0 {
		s.scope.Event(obs.EventRetransmit,
			fmt.Sprintf("%d segments requeued from subflow %d", len(requeue), i))
	}
}

// reconnectLoop redials subflow i with exponential backoff + jitter,
// rejoins it to the channel via the JOIN handshake, and puts it back into
// service. It gives up after ReconnectAttempts or when the sender closes.
func (s *Sender) reconnectLoop(i int) {
	defer s.wg.Done()
	backoff := s.cfg.ReconnectBackoff
	for attempt := 1; attempt <= s.cfg.ReconnectAttempts; attempt++ {
		select {
		case <-s.stopc:
			s.reconnectDone(false)
			return
		case <-time.After(backoff + s.backoffJitter(backoff)):
		}
		if backoff < maxReconnectBackoff {
			backoff *= 2
		}
		conn, err := s.cfg.Dialer(i)
		if err != nil {
			s.scope.Logger().Debug("subflow redial failed",
				"subflow", i, "attempt", attempt, "err", err)
			continue
		}
		if err := s.joinHandshake(conn, i); err != nil {
			_ = conn.Close()
			s.scope.Logger().Debug("subflow join failed",
				"subflow", i, "attempt", attempt, "err", err)
			continue
		}
		if !s.install(i, conn) {
			// The channel closed while we were dialing.
			_ = conn.Close()
			s.reconnectDone(false)
			return
		}
		s.reconnectDone(true)
		return
	}
	s.reconnectDone(false)
}

// reconnectDone retires one redial loop; if it failed and nothing else can
// revive the channel, the all-dead verdict is delivered.
func (s *Sender) reconnectDone(ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reconnecting--
	if !ok && s.aliveN == 0 && s.reconnecting == 0 && s.deadErr == nil &&
		(len(s.pending) > 0 || len(s.inflight) > 0 || !s.closed) {
		s.deadErr = ErrAllSubflowsDead
	}
	s.cond.Broadcast()
}

// joinHandshake identifies the reconnected socket to the receiver:
// channel ID + subflow index out, the same frame echoed back on accept.
func (s *Sender) joinHandshake(conn net.Conn, i int) error {
	hdr := make([]byte, headerSize)
	hdr[0] = frameJoin
	binary.BigEndian.PutUint64(hdr[1:9], s.cfg.ChannelID)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(i))
	_ = conn.SetDeadline(time.Now().Add(s.cfg.JoinTimeout))
	if _, err := conn.Write(hdr); err != nil {
		return fmt.Errorf("multipath: send join: %w", err)
	}
	resp := make([]byte, headerSize)
	if _, err := io.ReadFull(conn, resp); err != nil {
		return fmt.Errorf("multipath: read join ack: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	if resp[0] != frameJoin || binary.BigEndian.Uint64(resp[1:9]) != s.cfg.ChannelID {
		return ErrJoinRejected
	}
	return nil
}

// install puts a rejoined socket back into subflow slot i, bumping the
// slot's epoch and restarting its worker pair.
func (s *Sender) install(i int, conn net.Conn) bool {
	s.mu.Lock()
	if s.closed || s.finSent || s.deadErr != nil {
		s.mu.Unlock()
		return false
	}
	s.conns[i] = conn
	s.epoch[i]++
	epoch := s.epoch[i]
	s.alive[i] = true
	s.aliveN++
	s.sentBy[i] = 0
	s.subAckedBy[i] = 0
	s.wg.Add(2)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.rejoins.Inc()
	s.scope.Event(obs.EventSubflowRejoin,
		fmt.Sprintf("subflow %d rejoined (epoch %d)", i, epoch))
	go s.writeLoop(i, epoch, conn)
	go s.ackLoop(i, epoch, conn)
	return true
}

// backoffJitter draws a uniform [0, d/2] jitter from the seeded source.
func (s *Sender) backoffJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return time.Duration(s.rng.Int63n(int64(d)/2 + 1))
}

// CumAcked returns the count of contiguously acknowledged segments.
func (s *Sender) CumAcked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cumAcked
}

// AliveSubflows returns how many subflows are currently usable.
func (s *Sender) AliveSubflows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aliveN
}
