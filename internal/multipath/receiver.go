package multipath

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/obs"
	"cronets/internal/pipe"
)

// Receiver reassembles a multipath stream. It implements io.Reader; Read
// returns io.EOF after the FIN's sequence is fully delivered. Join
// accepts a reconnected subflow's socket back into the channel.
type Receiver struct {
	cfg Config
	// wmu serializes ACK writes per subflow slot; ackBuf[i] is the slot's
	// reusable ACK frame, valid only while wmu[i] is held.
	wmu    []sync.Mutex
	ackBuf [][]byte

	mu    sync.Mutex
	cond  *sync.Cond
	conns []net.Conn
	// epoch[i] counts incarnations of subflow slot i (see Sender.epoch):
	// frames and deaths from a superseded socket are recognized as stale.
	epoch    []uint64
	alive    []bool
	reorder  map[uint64][]byte
	recvBy   []uint64 // segments received per subflow incarnation
	expected uint64   // next in-order sequence to deliver
	// delivered is the in-order queue of pooled segments awaiting Read;
	// deliveredOff is Read's offset into delivered[0], deliveredBytes the
	// queue's total unread payload. Segments return to the buffer pool as
	// Read consumes them.
	delivered      [][]byte
	deliveredOff   int
	deliveredBytes int
	finSeq         uint64
	finSeen        bool
	sinceAck       int
	// ackHeld marks a cumulative ACK withheld because delivered exceeded
	// MaxBufferedBytes; Read releases it once the application drains.
	ackHeld   bool
	ackHeldOn int
	deadN     int
	failed    error
	closed    bool
	wg        sync.WaitGroup

	reorderDepth *obs.Gauge
	scope        *obs.Scope
	span         *flowtrace.Span // "multipath.recv", nil when untraced
}

// NewReceiver builds the receiving side over the subflow connections and
// starts its per-subflow readers.
func NewReceiver(conns []net.Conn, cfg Config) (*Receiver, error) {
	if len(conns) == 0 {
		return nil, errors.New("multipath: need at least one subflow")
	}
	cfg.applyDefaults()
	r := &Receiver{
		cfg:     cfg,
		conns:   append([]net.Conn(nil), conns...),
		wmu:     make([]sync.Mutex, len(conns)),
		ackBuf:  make([][]byte, len(conns)),
		epoch:   make([]uint64, len(conns)),
		alive:   make([]bool, len(conns)),
		reorder: make(map[uint64][]byte),
		recvBy:  make([]uint64, len(conns)),
	}
	for i := range r.ackBuf {
		r.ackBuf[i] = make([]byte, headerSize)
	}
	r.cond = sync.NewCond(&r.mu)
	r.scope = cfg.Obs.Scope("multipath")
	r.reorderDepth = cfg.Obs.Gauge("cronets_multipath_reorder_depth",
		"Segments parked in the receiver's reassembly queue.")
	r.span = cfg.Tracer.Continue("multipath.recv", cfg.TraceCtx)
	r.span.SetDetail(strconv.Itoa(len(conns)) + " subflows")
	for i, c := range r.conns {
		r.alive[i] = true
		r.wg.Add(1)
		go r.readLoop(c, i, 0)
	}
	return r, nil
}

// Read returns reassembled, in-order bytes. Draining below the buffer cap
// releases any withheld cumulative ACK so the sender's window reopens.
func (r *Receiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	for r.deliveredBytes == 0 {
		if r.finSeen && r.expected >= r.finSeq {
			r.mu.Unlock()
			return 0, io.EOF
		}
		if r.failed != nil {
			err := r.failed
			r.mu.Unlock()
			return 0, err
		}
		if r.closed {
			r.mu.Unlock()
			return 0, net.ErrClosed
		}
		r.cond.Wait()
	}
	n := 0
	for n < len(p) && len(r.delivered) > 0 {
		head := r.delivered[0]
		c := copy(p[n:], head[r.deliveredOff:])
		n += c
		r.deliveredOff += c
		if r.deliveredOff == len(head) {
			// Fully consumed: the segment goes back to the buffer pool.
			pipe.Put(head)
			r.delivered[0] = nil
			r.delivered = r.delivered[1:]
			r.deliveredOff = 0
		}
	}
	r.deliveredBytes -= n
	release := r.ackHeld && r.deliveredBytes <= r.cfg.MaxBufferedBytes
	ackOn := r.ackHeldOn
	if release {
		r.ackHeld = false
		r.sinceAck = 0
	}
	r.mu.Unlock()
	if release {
		r.sendAck(ackOn)
	}
	return n, nil
}

// Buffered returns how many reassembled bytes await Read.
func (r *Receiver) Buffered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deliveredBytes
}

// Close tears the receiver down.
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := append([]net.Conn(nil), r.conns...)
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	r.wg.Wait()
	// All readLoops are done; return parked and undelivered segments to
	// the buffer pool.
	r.mu.Lock()
	for seq, d := range r.reorder {
		delete(r.reorder, seq)
		pipe.Put(d)
	}
	for _, d := range r.delivered {
		pipe.Put(d)
	}
	r.delivered = nil
	r.deliveredOff = 0
	r.deliveredBytes = 0
	r.mu.Unlock()
	r.span.End()
	return nil
}

// Join accepts a reconnected subflow socket: it reads the JOIN frame,
// validates the channel ID and subflow index, echoes the frame to accept,
// and puts the socket into service as the slot's next incarnation. The
// connection is closed on any error.
func (r *Receiver) Join(conn net.Conn) error {
	hdr := make([]byte, headerSize)
	_ = conn.SetDeadline(time.Now().Add(r.cfg.JoinTimeout))
	if _, err := io.ReadFull(conn, hdr); err != nil {
		_ = conn.Close()
		return fmt.Errorf("multipath: read join: %w", err)
	}
	if hdr[0] != frameJoin {
		_ = conn.Close()
		return fmt.Errorf("multipath: expected JOIN, got frame type %d", hdr[0])
	}
	channel := binary.BigEndian.Uint64(hdr[1:9])
	idx := int(binary.BigEndian.Uint32(hdr[9:13]))
	r.mu.Lock()
	ok := !r.closed && channel == r.cfg.ChannelID && idx >= 0 && idx < len(r.conns)
	r.mu.Unlock()
	if !ok {
		_ = conn.Close()
		return fmt.Errorf("%w: channel %d subflow %d", ErrJoinRejected, channel, idx)
	}
	if _, err := conn.Write(hdr); err != nil {
		_ = conn.Close()
		return fmt.Errorf("multipath: write join ack: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = conn.Close()
		return net.ErrClosed
	}
	old := r.conns[idx]
	r.conns[idx] = conn
	r.epoch[idx]++
	epoch := r.epoch[idx]
	if !r.alive[idx] {
		r.alive[idx] = true
		r.deadN--
	}
	r.recvBy[idx] = 0
	// A rejoin can revive a channel declared dead before the application
	// observed the failure.
	if r.failed == ErrAllSubflowsDead {
		r.failed = nil
	}
	r.wg.Add(1)
	r.cond.Broadcast()
	r.mu.Unlock()
	if old != nil && old != conn {
		_ = old.Close()
	}
	r.scope.Event(obs.EventSubflowRejoin,
		fmt.Sprintf("subflow %d rejoined (epoch %d)", idx, epoch))
	go r.readLoop(conn, idx, epoch)
	return nil
}

// readLoop consumes frames from one incarnation of subflow slot i.
func (r *Receiver) readLoop(conn net.Conn, i int, epoch uint64) {
	defer r.wg.Done()
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			r.subflowDied(i, epoch)
			return
		}
		switch hdr[0] {
		case frameData:
			seq := binary.BigEndian.Uint64(hdr[1:9])
			length := binary.BigEndian.Uint32(hdr[9:13])
			// The 32-bit wire length is attacker-controlled; it must be
			// validated BEFORE any buffer is fetched, or a 13-byte frame
			// claiming 4 GiB would cost a 4 GiB allocation.
			if int64(length) > int64(r.cfg.MaxSegBytes) {
				_ = conn.Close()
				r.subflowDied(i, epoch)
				return
			}
			data := pipe.Get(int(length))
			if _, err := io.ReadFull(conn, data); err != nil {
				pipe.Put(data)
				r.subflowDied(i, epoch)
				return
			}
			r.ingest(i, epoch, seq, data)
		case frameFin:
			seq := binary.BigEndian.Uint64(hdr[1:9])
			r.mu.Lock()
			r.finSeen = true
			r.finSeq = seq
			r.cond.Broadcast()
			r.mu.Unlock()
			// Final ACK so the sender's Close completes promptly.
			r.sendAck(i)
		default:
			_ = conn.Close()
			r.subflowDied(i, epoch)
			return
		}
	}
}

// ingest stores a segment, advances the in-order point, and acks: a
// subflow-level ack immediately (it keeps the subflow's window moving) and
// a connection-level cumulative ack every AckEvery deliveries — unless the
// application has stopped reading and delivered is over the buffer cap,
// in which case the cumulative ack is withheld until Read drains.
func (r *Receiver) ingest(i int, epoch uint64, seq uint64, data []byte) {
	r.mu.Lock()
	// Data frames are valid regardless of which incarnation carried them
	// (the sender retransmits anything unacked), but per-incarnation
	// sub-ack counts from a stale socket must not reach the fresh one.
	current := r.epoch[i] == epoch
	var subCount uint64
	if current {
		r.recvBy[i]++
		subCount = r.recvBy[i]
	}
	if seq >= r.expected {
		if _, dup := r.reorder[seq]; !dup {
			r.reorder[seq] = data
		} else {
			pipe.Put(data) // duplicate retransmit: drop and recycle
		}
	} else {
		pipe.Put(data) // already delivered: drop and recycle
	}
	advanced := false
	for {
		d, ok := r.reorder[r.expected]
		if !ok {
			break
		}
		delete(r.reorder, r.expected)
		// The pooled segment moves to the delivered queue as-is (no byte
		// copy); Read recycles it once consumed.
		r.delivered = append(r.delivered, d)
		r.deliveredBytes += len(d)
		r.span.MarkFirstByte()
		r.span.AddBytes(int64(len(d)))
		r.expected++
		r.sinceAck++
		advanced = true
	}
	// Ack on cadence, and additionally whenever the reorder buffer drains
	// completely — the tail of a transfer would otherwise never be
	// cumulatively acknowledged and the sender's Close would hang.
	needAck := r.sinceAck >= r.cfg.AckEvery || (advanced && len(r.reorder) == 0)
	if needAck && r.deliveredBytes > r.cfg.MaxBufferedBytes {
		r.ackHeld = true
		r.ackHeldOn = i
		needAck = false
	}
	if needAck {
		r.sinceAck = 0
	}
	if advanced {
		r.cond.Broadcast()
	}
	r.reorderDepth.Set(int64(len(r.reorder)))
	r.mu.Unlock()
	if current {
		r.sendSubAck(i, subCount)
	}
	if needAck {
		r.sendAck(i)
	}
}

// sendSubAck reports how many segments have arrived on subflow i, on that
// subflow.
func (r *Receiver) sendSubAck(i int, count uint64) {
	r.mu.Lock()
	conn := r.conns[i]
	r.mu.Unlock()
	_ = r.writeAck(i, conn, frameSubAck, count)
}

// sendAck emits a cumulative ACK on subflow i (falling back to any other
// subflow if that write fails).
func (r *Receiver) sendAck(i int) {
	r.mu.Lock()
	cum := r.expected
	conn := r.conns[i]
	n := len(r.conns)
	r.mu.Unlock()
	if r.writeAck(i, conn, frameAck, cum) == nil {
		return
	}
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		r.mu.Lock()
		c := r.conns[j]
		r.mu.Unlock()
		if r.writeAck(j, c, frameAck, cum) == nil {
			return
		}
	}
}

// writeAck fills subflow i's reusable ACK frame and writes it under the
// slot's write lock.
func (r *Receiver) writeAck(i int, conn net.Conn, frameType byte, value uint64) error {
	r.wmu[i].Lock()
	defer r.wmu[i].Unlock()
	ack := r.ackBuf[i]
	ack[0] = frameType
	binary.BigEndian.PutUint64(ack[1:9], value)
	binary.BigEndian.PutUint32(ack[9:13], 0)
	_, err := conn.Write(ack)
	return err
}

// subflowDied records a reader failure for one incarnation; stale
// incarnations (already superseded by a Join) are ignored, orderly
// teardown (Close, or FIN satisfied) is not a failure, and the stream
// fails only when every subflow is gone.
func (r *Receiver) subflowDied(i int, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch[i] != epoch || !r.alive[i] {
		return
	}
	r.alive[i] = false
	r.deadN++
	if r.closed || (r.finSeen && r.expected >= r.finSeq) {
		r.cond.Broadcast()
		return
	}
	r.scope.Event(obs.EventSubflowDown,
		"receive side, "+strconv.Itoa(len(r.conns)-r.deadN)+" alive")
	if r.deadN >= len(r.conns) && r.failed == nil {
		r.failed = ErrAllSubflowsDead
	}
	r.cond.Broadcast()
}
