package multipath

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strconv"
	"sync"

	"cronets/internal/obs"
)

// Receiver reassembles a multipath stream. It implements io.Reader; Read
// returns io.EOF after the FIN's sequence is fully delivered.
type Receiver struct {
	cfg   Config
	conns []net.Conn
	// wmu serializes ACK writes per subflow.
	wmu []sync.Mutex

	mu        sync.Mutex
	cond      *sync.Cond
	reorder   map[uint64][]byte
	recvBy    []uint64 // segments received per subflow (for sub-acks)
	expected  uint64   // next in-order sequence to deliver
	delivered []byte   // in-order bytes awaiting Read
	finSeq    uint64
	finSeen   bool
	sinceAck  int
	deadN     int
	failed    error
	closed    bool
	wg        sync.WaitGroup

	reorderDepth *obs.Gauge
	scope        *obs.Scope
}

// NewReceiver builds the receiving side over the subflow connections and
// starts its per-subflow readers.
func NewReceiver(conns []net.Conn, cfg Config) (*Receiver, error) {
	if len(conns) == 0 {
		return nil, errors.New("multipath: need at least one subflow")
	}
	cfg.applyDefaults()
	r := &Receiver{
		cfg:     cfg,
		conns:   conns,
		wmu:     make([]sync.Mutex, len(conns)),
		reorder: make(map[uint64][]byte),
		recvBy:  make([]uint64, len(conns)),
	}
	r.cond = sync.NewCond(&r.mu)
	r.scope = cfg.Obs.Scope("multipath")
	r.reorderDepth = cfg.Obs.Gauge("cronets_multipath_reorder_depth",
		"Segments parked in the receiver's reassembly queue.")
	for i := range conns {
		r.wg.Add(1)
		go r.readLoop(i)
	}
	return r, nil
}

// Read returns reassembled, in-order bytes.
func (r *Receiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.delivered) == 0 {
		if r.finSeen && r.expected >= r.finSeq {
			return 0, io.EOF
		}
		if r.failed != nil {
			return 0, r.failed
		}
		if r.closed {
			return 0, net.ErrClosed
		}
		r.cond.Wait()
	}
	n := copy(p, r.delivered)
	r.delivered = r.delivered[n:]
	return n, nil
}

// Close tears the receiver down.
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, c := range r.conns {
		_ = c.Close()
	}
	r.wg.Wait()
	return nil
}

// readLoop consumes frames from subflow i.
func (r *Receiver) readLoop(i int) {
	defer r.wg.Done()
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r.conns[i], hdr); err != nil {
			r.subflowDied(err)
			return
		}
		switch hdr[0] {
		case frameData:
			seq := binary.BigEndian.Uint64(hdr[1:9])
			length := binary.BigEndian.Uint32(hdr[9:13])
			data := make([]byte, length)
			if _, err := io.ReadFull(r.conns[i], data); err != nil {
				r.subflowDied(err)
				return
			}
			r.ingest(i, seq, data)
		case frameFin:
			seq := binary.BigEndian.Uint64(hdr[1:9])
			r.mu.Lock()
			r.finSeen = true
			r.finSeq = seq
			r.cond.Broadcast()
			r.mu.Unlock()
			// Final ACK so the sender's Close completes promptly.
			r.sendAck(i)
		default:
			r.subflowDied(errors.New("multipath: unexpected frame type"))
			return
		}
	}
}

// ingest stores a segment, advances the in-order point, and acks: a
// subflow-level ack immediately (it keeps the subflow's window moving) and
// a connection-level cumulative ack every AckEvery deliveries.
func (r *Receiver) ingest(i int, seq uint64, data []byte) {
	r.mu.Lock()
	r.recvBy[i]++
	subCount := r.recvBy[i]
	if seq >= r.expected {
		if _, dup := r.reorder[seq]; !dup {
			r.reorder[seq] = data
		}
	}
	advanced := false
	for {
		d, ok := r.reorder[r.expected]
		if !ok {
			break
		}
		delete(r.reorder, r.expected)
		r.delivered = append(r.delivered, d...)
		r.expected++
		r.sinceAck++
		advanced = true
	}
	// Ack on cadence, and additionally whenever the reorder buffer drains
	// completely — the tail of a transfer would otherwise never be
	// cumulatively acknowledged and the sender's Close would hang.
	needAck := r.sinceAck >= r.cfg.AckEvery || (advanced && len(r.reorder) == 0)
	if needAck {
		r.sinceAck = 0
	}
	if advanced {
		r.cond.Broadcast()
	}
	r.reorderDepth.Set(int64(len(r.reorder)))
	r.mu.Unlock()
	r.sendSubAck(i, subCount)
	if needAck {
		r.sendAck(i)
	}
}

// sendSubAck reports how many segments have arrived on subflow i, on that
// subflow.
func (r *Receiver) sendSubAck(i int, count uint64) {
	ack := make([]byte, headerSize)
	ack[0] = frameSubAck
	binary.BigEndian.PutUint64(ack[1:9], count)
	r.wmu[i].Lock()
	_, _ = r.conns[i].Write(ack)
	r.wmu[i].Unlock()
}

// sendAck emits a cumulative ACK on subflow i (falling back to any other
// subflow if that write fails).
func (r *Receiver) sendAck(i int) {
	r.mu.Lock()
	cum := r.expected
	r.mu.Unlock()
	ack := make([]byte, headerSize)
	ack[0] = frameAck
	binary.BigEndian.PutUint64(ack[1:9], cum)
	r.wmu[i].Lock()
	_, err := r.conns[i].Write(ack)
	r.wmu[i].Unlock()
	if err == nil {
		return
	}
	for j, c := range r.conns {
		if j == i {
			continue
		}
		r.wmu[j].Lock()
		_, werr := c.Write(ack)
		r.wmu[j].Unlock()
		if werr == nil {
			return
		}
	}
}

// subflowDied records a reader failure; the stream fails only when every
// subflow is gone and the FIN has not been satisfied.
func (r *Receiver) subflowDied(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deadN++
	r.scope.Event(obs.EventSubflowDown,
		"receive side, "+strconv.Itoa(len(r.conns)-r.deadN)+" alive")
	if r.deadN >= len(r.conns) && !(r.finSeen && r.expected >= r.finSeq) {
		if r.failed == nil {
			r.failed = ErrAllSubflowsDead
		}
		_ = err
	}
	r.cond.Broadcast()
}
