package multipath

import (
	"io"
	"net"
	"testing"
)

// benchPairs builds n loopback TCP connection pairs for a channel.
func benchPairs(b *testing.B, n int) (senderSide, receiverSide []net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, n)
	go func() {
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		senderSide = append(senderSide, c)
		receiverSide = append(receiverSide, <-accepted)
	}
	return senderSide, receiverSide
}

// BenchmarkMultipathReceive measures one full channel lifecycle per
// iteration: stripe 4 MiB over two subflows and reassemble it at the far
// end. The receiver's per-segment buffer handling dominates allocations —
// 128 segments of 32 KiB per op.
func BenchmarkMultipathReceive(b *testing.B) {
	const total = 4 << 20
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss, rs := benchPairs(b, 2)
		s, err := NewSender(ss, Config{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewReceiver(rs, Config{})
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan int64, 1)
		go func() {
			n, _ := io.Copy(io.Discard, r)
			done <- n
		}()
		var sent int
		for sent < total {
			n, err := s.Write(payload)
			if err != nil {
				b.Fatal(err)
			}
			sent += n
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		if got := <-done; got != total {
			b.Fatalf("received %d bytes, want %d", got, total)
		}
		_ = r.Close()
	}
}
