package multipath

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// pipes builds n in-process subflow pairs.
func pipes(n int) (sender, receiver []net.Conn) {
	for i := 0; i < n; i++ {
		a, b := net.Pipe()
		sender = append(sender, a)
		receiver = append(receiver, b)
	}
	return sender, receiver
}

// tcpPairs builds n real-socket subflow pairs over loopback.
func tcpPairs(t *testing.T, n int) (sender, receiver []net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, n)
	go func() {
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		sender = append(sender, c)
		receiver = append(receiver, <-accepted)
	}
	return sender, receiver
}

// transfer pushes payload through a channel with the given subflows and
// returns what the receiver reassembled.
func transfer(t *testing.T, senderConns, receiverConns []net.Conn, payload []byte, cfg Config) []byte {
	t.Helper()
	s, err := NewSender(senderConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(receiverConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var (
		got     []byte
		readErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, readErr = io.ReadAll(r)
	}()
	if _, err := s.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	return got
}

func randomPayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	rng.Read(p)
	return p
}

func TestSingleSubflowIdentity(t *testing.T) {
	s, r := pipes(1)
	payload := randomPayload(1, 200<<10)
	got := transfer(t, s, r, payload, Config{})
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted over one subflow")
	}
}

func TestFourSubflowsIdentity(t *testing.T) {
	s, r := pipes(4)
	payload := randomPayload(2, 1<<20)
	got := transfer(t, s, r, payload, Config{MaxSegBytes: 8 << 10})
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted over four subflows")
	}
}

func TestRealSocketsIdentity(t *testing.T) {
	s, r := tcpPairs(t, 3)
	payload := randomPayload(3, 2<<20)
	got := transfer(t, s, r, payload, Config{})
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted over TCP subflows")
	}
}

// TestManySizesIdentity: reassembly is the identity for a sweep of sizes,
// including empty, sub-segment and non-segment-aligned payloads.
func TestManySizesIdentity(t *testing.T) {
	sizes := []int{0, 1, 100, 32<<10 - 1, 32 << 10, 32<<10 + 1, 333333}
	for _, size := range sizes {
		s, r := pipes(2)
		payload := randomPayload(int64(size)+7, size)
		got := transfer(t, s, r, payload, Config{})
		if !bytes.Equal(got, payload) {
			t.Errorf("size %d corrupted (got %d bytes)", size, len(got))
		}
	}
}

func TestEmptyCloseOnly(t *testing.T) {
	s, r := pipes(2)
	got := transfer(t, s, r, nil, Config{})
	if len(got) != 0 {
		t.Errorf("got %d bytes from empty stream", len(got))
	}
}

func TestWriteAfterClose(t *testing.T) {
	sConns, rConns := pipes(1)
	s, err := NewSender(sConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	go func() { _, _ = io.Copy(io.Discard, r) }()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("late")); !errors.Is(err, ErrSenderClosed) {
		t.Errorf("err = %v, want ErrSenderClosed", err)
	}
}

// TestSubflowFailover: killing one subflow mid-transfer must not lose or
// corrupt data — its unacknowledged segments are retransmitted on the
// survivor.
func TestSubflowFailover(t *testing.T) {
	sConns, rConns := tcpPairs(t, 2)
	cfg := Config{MaxSegBytes: 4 << 10}
	s, err := NewSender(sConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	payload := randomPayload(9, 3<<20)
	var (
		got     []byte
		readErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, readErr = io.ReadAll(r)
	}()

	half := len(payload) / 2
	if _, err := s.Write(payload[:half]); err != nil {
		t.Fatal(err)
	}
	// Kill subflow 0 on both ends (a path failure).
	_ = sConns[0].Close()
	_ = rConns[0].Close()
	if _, err := s.Write(payload[half:]); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if alive := s.AliveSubflows(); alive > 1 {
		t.Errorf("alive subflows = %d after killing one, want <= 1", alive)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after failover: %v", err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted after failover: got %d want %d bytes", len(got), len(payload))
	}
}

// TestAllSubflowsDead: with every path gone and data outstanding, Write
// reports the failure.
func TestAllSubflowsDead(t *testing.T) {
	sConns, rConns := tcpPairs(t, 2)
	s, err := NewSender(sConns, Config{CloseTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, c := range sConns {
		_ = c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Write(randomPayload(1, 64<<10)); err != nil {
			if !errors.Is(err, ErrAllSubflowsDead) {
				t.Fatalf("err = %v, want ErrAllSubflowsDead", err)
			}
			return
		}
	}
	t.Fatal("writes kept succeeding with all subflows dead")
}

func TestValidation(t *testing.T) {
	if _, err := NewSender(nil, Config{}); err == nil {
		t.Error("expected error for no subflows")
	}
	if _, err := NewReceiver(nil, Config{}); err == nil {
		t.Error("expected error for no subflows")
	}
}

func TestCumAckedProgress(t *testing.T) {
	sConns, rConns := pipes(1)
	s, err := NewSender(sConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	go func() { _, _ = io.Copy(io.Discard, r) }()
	if _, err := s.Write(randomPayload(4, 500<<10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// 500 KiB / 32 KiB = 16 segments.
	if s.CumAcked() != 16 {
		t.Errorf("CumAcked = %d, want 16", s.CumAcked())
	}
}

func TestDoubleClose(t *testing.T) {
	sConns, rConns := pipes(1)
	s, err := NewSender(sConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	go func() { _, _ = io.Copy(io.Discard, r) }()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestConcurrentlyInterleavedSegments(t *testing.T) {
	// Tiny segments over many subflows maximize reordering pressure.
	s, r := pipes(8)
	payload := randomPayload(11, 512<<10)
	got := transfer(t, s, r, payload, Config{MaxSegBytes: 512, WindowSegs: 2048, SubflowInflight: 4})
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted under heavy interleaving")
	}
}
