package multipath

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"cronets/internal/obs"
)

// joinableReceiver starts a receiver whose listener routes the first n
// accepted connections to the initial subflow set and every later one
// through Join — the shape a proxy process would use.
func joinableReceiver(t *testing.T, n int, cfg Config) (*Receiver, []net.Conn, net.Listener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })

	var senderConns, receiverConns []net.Conn
	accepted := make(chan net.Conn)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		senderConns = append(senderConns, c)
		receiverConns = append(receiverConns, <-accepted)
	}
	r, err := NewReceiver(receiverConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	// Late arrivals are JOIN attempts.
	go func() {
		for c := range accepted {
			_ = r.Join(c)
		}
	}()
	return r, senderConns, ln
}

// TestSubflowRejoin: a subflow killed mid-transfer is redialed, rejoins
// via the JOIN handshake, and the transfer completes byte-identical with
// the subflow back in service.
func TestSubflowRejoin(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		MaxSegBytes:      4 << 10,
		ChannelID:        77,
		ReconnectBackoff: 5 * time.Millisecond,
		Obs:              reg,
	}
	r, senderConns, ln := joinableReceiver(t, 2, cfg)
	cfg.Dialer = func(int) (net.Conn, error) {
		return net.Dial("tcp", ln.Addr().String())
	}
	s, err := NewSender(senderConns, cfg)
	if err != nil {
		t.Fatal(err)
	}

	payload := randomPayload(21, 2<<20)
	var (
		got     []byte
		readErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, readErr = io.ReadAll(r)
	}()

	half := len(payload) / 2
	if _, err := s.Write(payload[:half]); err != nil {
		t.Fatal(err)
	}
	// Kill subflow 0's socket (path failure); the reconnect loop should
	// bring the slot back. Wait on the sender-side rejoin counter rather
	// than AliveSubflows: the death may not be detected yet at the first
	// check, so alive==2 alone cannot distinguish "already rejoined" from
	// "not yet noticed the kill".
	_ = senderConns[0].Close()
	rejoined := reg.Counter("cronets_multipath_rejoins_total", "")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rejoined.Value() < 1 {
		if _, err := s.Write(payload[half : half+1]); err != nil {
			t.Fatalf("write during failover: %v", err)
		}
		half++
		time.Sleep(time.Millisecond)
	}
	if s.AliveSubflows() != 2 {
		t.Fatalf("subflow never rejoined: alive = %d", s.AliveSubflows())
	}
	if _, err := s.Write(payload[half:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across rejoin: got %d want %d bytes", len(got), len(payload))
	}
	if v := reg.Counter("cronets_multipath_rejoins_total", "").Value(); v < 1 {
		t.Errorf("rejoins counter = %d, want >= 1", v)
	}
	rejoins := 0
	for _, e := range reg.Events().Snapshot() {
		if e.Type == obs.EventSubflowRejoin {
			rejoins++
		}
	}
	if rejoins < 2 { // one sender-side, one receiver-side
		t.Errorf("subflow-rejoin events = %d, want >= 2", rejoins)
	}
}

// TestReconnectGivesUp: when the dialer keeps failing, the sender retries
// its bounded attempts and then reports all subflows dead.
func TestReconnectGivesUp(t *testing.T) {
	sConns, rConns := tcpPairs(t, 1)
	cfg := Config{
		ChannelID:         1,
		ReconnectAttempts: 2,
		ReconnectBackoff:  time.Millisecond,
		CloseTimeout:      time.Second,
	}
	cfg.Dialer = func(int) (net.Conn, error) {
		return nil, errors.New("no route")
	}
	s, err := NewSender(sConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_ = sConns[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Write(randomPayload(1, 64<<10)); err != nil {
			if !errors.Is(err, ErrAllSubflowsDead) {
				t.Fatalf("err = %v, want ErrAllSubflowsDead", err)
			}
			return
		}
	}
	t.Fatal("writes kept succeeding with the only subflow dead and redials failing")
}

// TestJoinRejectsWrongChannel: a JOIN for a different channel ID is
// refused and the socket closed.
func TestJoinRejectsWrongChannel(t *testing.T) {
	_, rConns := pipes(1)
	r, err := NewReceiver(rConns, Config{ChannelID: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, b := net.Pipe()
	defer a.Close()
	go func() {
		hdr := make([]byte, headerSize)
		hdr[0] = frameJoin
		binary.BigEndian.PutUint64(hdr[1:9], 99) // wrong channel
		binary.BigEndian.PutUint32(hdr[9:13], 0)
		_, _ = a.Write(hdr)
	}()
	if err := r.Join(b); !errors.Is(err, ErrJoinRejected) {
		t.Errorf("Join = %v, want ErrJoinRejected", err)
	}
	// The socket must be closed after rejection.
	_ = a.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := a.Read(make([]byte, 1)); err == nil {
		t.Error("rejected join left the socket open")
	}
}

// TestJoinRejectsBadIndex: a JOIN naming a subflow slot that does not
// exist is refused.
func TestJoinRejectsBadIndex(t *testing.T) {
	_, rConns := pipes(1)
	r, err := NewReceiver(rConns, Config{ChannelID: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, b := net.Pipe()
	defer a.Close()
	go func() {
		hdr := make([]byte, headerSize)
		hdr[0] = frameJoin
		binary.BigEndian.PutUint64(hdr[1:9], 7)
		binary.BigEndian.PutUint32(hdr[9:13], 5) // slot 5 of a 1-subflow channel
		_, _ = a.Write(hdr)
	}()
	if err := r.Join(b); !errors.Is(err, ErrJoinRejected) {
		t.Errorf("Join = %v, want ErrJoinRejected", err)
	}
}

// TestOversizedFrameRejected (regression): a data frame advertising a
// 4 GiB-scale length must be rejected against MaxSegBytes, not allocated.
// Pre-fix the receiver did make([]byte, length) straight off the wire.
func TestOversizedFrameRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	r, err := NewReceiver([]net.Conn{b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	go func() {
		hdr := make([]byte, headerSize)
		hdr[0] = frameData
		binary.BigEndian.PutUint64(hdr[1:9], 0)
		binary.BigEndian.PutUint32(hdr[9:13], 0xfffffff0) // ~4 GiB claim
		_, _ = a.Write(hdr)
	}()
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(r)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("oversized frame should fail the stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver hung on an oversized frame instead of rejecting it")
	}
}

// TestReceiverBackpressure (regression): with the application not
// reading, the receiver's delivered buffer must stay near
// MaxBufferedBytes (cap + one sender window) instead of absorbing the
// whole transfer; once the application reads, the withheld ACKs resume
// and the full payload arrives intact.
func TestReceiverBackpressure(t *testing.T) {
	sConns, rConns := tcpPairs(t, 1)
	cfg := Config{
		MaxSegBytes:      4 << 10,
		WindowSegs:       4,
		AckEvery:         1,
		MaxBufferedBytes: 32 << 10,
	}
	s, err := NewSender(sConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	payload := randomPayload(31, 1<<20)
	writeDone := make(chan error, 1)
	go func() {
		if _, err := s.Write(payload); err != nil {
			writeDone <- err
			return
		}
		writeDone <- s.Close()
	}()

	// Without a reader, the buffer must plateau at cap + window, far
	// below the 1 MiB payload. Pre-fix it absorbed everything.
	limit := cfg.MaxBufferedBytes + cfg.WindowSegs*cfg.MaxSegBytes + cfg.MaxSegBytes
	time.Sleep(300 * time.Millisecond)
	if buf := r.Buffered(); buf > limit {
		t.Fatalf("unread delivered buffer = %d bytes, want <= %d (flow control missing)", buf, limit)
	}
	select {
	case err := <-writeDone:
		t.Fatalf("sender finished against a non-reading receiver (err=%v); no backpressure", err)
	default:
	}

	// Start reading: ACKs resume and the stream completes intact.
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted under backpressure: got %d want %d bytes", len(got), len(payload))
	}
	if err := <-writeDone; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// TestCleanCloseNoSpuriousFailover (regression): a clean transfer must
// not record subflow deaths or retransmits when Close tears the conns
// down after the FIN — pre-fix every ackLoop's read error fired
// subflowDied.
func TestCleanCloseNoSpuriousFailover(t *testing.T) {
	reg := obs.NewRegistry()
	sConns, rConns := tcpPairs(t, 2)
	cfg := Config{Obs: reg}
	s, err := NewSender(sConns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(rConns, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = io.Copy(io.Discard, r)
	}()
	if _, err := s.Write(randomPayload(41, 512<<10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	wg.Wait()
	_ = r.Close()

	if v := reg.Counter("cronets_multipath_retransmits_total", "").Value(); v != 0 {
		t.Errorf("retransmits after clean close = %d, want 0", v)
	}
	for _, e := range reg.Events().Snapshot() {
		if e.Type == obs.EventSubflowDown {
			t.Errorf("spurious subflow-down event after clean close: %s", e.Detail)
		}
	}
}
