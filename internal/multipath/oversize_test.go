package multipath

import (
	"encoding/binary"
	"runtime"
	"testing"
	"time"

	"cronets/internal/pipe"
)

// TestOversizedFrameAllocatesNothing: a malicious data frame claiming a
// 0xFFFFFFFF-byte payload must kill the subflow BEFORE any buffer is
// fetched — no pool Get, and no multi-gigabyte heap allocation.
func TestOversizedFrameAllocatesNothing(t *testing.T) {
	sConns, rConns := tcpPairs(t, 1)
	r, err := NewReceiver(rConns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	before := pipe.Stats()
	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	hdr := make([]byte, headerSize)
	hdr[0] = frameData
	binary.BigEndian.PutUint64(hdr[1:9], 0)
	binary.BigEndian.PutUint32(hdr[9:13], 0xFFFFFFFF)
	if _, err := sConns[0].Write(hdr); err != nil {
		t.Fatal(err)
	}

	// The receiver must reject the frame and tear the subflow down; with a
	// single subflow the channel reports all-dead to Read.
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := r.Read(buf)
		readErr <- err
	}()
	select {
	case err := <-readErr:
		if err != ErrAllSubflowsDead {
			t.Fatalf("Read = %v, want ErrAllSubflowsDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not reject the oversized frame")
	}
	// The sender-side socket sees the receiver's close.
	_ = sConns[0].SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := sConns[0].Read(make([]byte, 1)); err == nil {
		t.Fatal("subflow still open after oversized frame")
	}

	after := pipe.Stats()
	if gets := (after.Hits + after.Misses) - (before.Hits + before.Misses); gets != 0 {
		t.Errorf("pool served %d Gets for an oversized frame, want 0", gets)
	}
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if delta := msAfter.TotalAlloc - msBefore.TotalAlloc; delta > 1<<20 {
		t.Errorf("oversized frame cost %d heap bytes, want < 1 MiB", delta)
	}
}
