package topology

import (
	"testing"
	"time"

	"cronets/internal/netsim"
)

// smallConfig keeps topology tests fast.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.ClientStubs = 10
	cfg.ServerStubs = 4
	return cfg
}

func generate(t *testing.T, seed int64) *Internet {
	t.Helper()
	in, err := Generate(smallConfig(seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return in
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.NumTier1 = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for too few tier-1 ASes")
	}
	cfg = DefaultConfig(1)
	cfg.CloudDCCities = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for no DC cities")
	}
	cfg = DefaultConfig(1)
	cfg.CloudDCCities = []string{"Gotham"}
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for unknown DC city")
	}
}

func TestGenerateInventory(t *testing.T) {
	in := generate(t, 42)
	if len(in.Clients) != 10 || len(in.Servers) != 4 {
		t.Errorf("hosts: %d clients, %d servers", len(in.Clients), len(in.Servers))
	}
	if len(in.DCs) != 5 || len(in.DCOrder) != 5 {
		t.Errorf("DCs: %d (%v)", len(in.DCs), in.DCOrder)
	}
	cloud, err := in.AS(in.CloudASN)
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Tier != TierCloud {
		t.Errorf("cloud AS tier = %v", cloud.Tier)
	}
	if len(cloud.Routers) != 5 {
		t.Errorf("cloud routers = %d", len(cloud.Routers))
	}
	for _, h := range in.Clients {
		if h.Role != RoleClient {
			t.Errorf("client %s has role %v", h.Name, h.Role)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, 7)
	b := generate(t, 7)
	if a.Net.NumNodes() != b.Net.NumNodes() || a.Net.NumLinks() != b.Net.NumLinks() {
		t.Fatalf("same seed, different graphs: %d/%d nodes, %d/%d links",
			a.Net.NumNodes(), b.Net.NumNodes(), a.Net.NumLinks(), b.Net.NumLinks())
	}
	pa, err := a.RouterPath(a.Servers[0], a.Clients[0])
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.RouterPath(b.Servers[0], b.Clients[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Nodes) != len(pb.Nodes) {
		t.Fatalf("same seed, different paths: %v vs %v", pa.Nodes, pb.Nodes)
	}
	for i := range pa.Nodes {
		if pa.Nodes[i] != pb.Nodes[i] {
			t.Fatalf("same seed, different paths at hop %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := generate(t, 1)
	b := generate(t, 2)
	// Link parameters should differ even if counts happen to match.
	la := a.Net.Links()
	lb := b.Net.Links()
	if len(la) == len(lb) {
		same := true
		for i := range la {
			if la[i].BaseUtilization != lb[i].BaseUtilization {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical link parameters")
		}
	}
}

// TestAllPairsRouted: every (server, client) and (DC, client) pair must
// have a valid default route whose consecutive nodes are linked.
func TestAllPairsRouted(t *testing.T) {
	in := generate(t, 42)
	check := func(from, to Host) {
		t.Helper()
		p, err := in.RouterPath(from, to)
		if err != nil {
			t.Fatalf("route %s -> %s: %v", from.Name, to.Name, err)
		}
		if len(p.Nodes) < 3 {
			t.Fatalf("route %s -> %s too short: %v", from.Name, to.Name, p.Nodes)
		}
		if p.Nodes[0] != from.Node || p.Nodes[len(p.Nodes)-1] != to.Node {
			t.Fatalf("route endpoints wrong: %v", p.Nodes)
		}
		for i := 1; i < len(p.Nodes); i++ {
			if _, ok := in.Net.Link(p.Nodes[i-1], p.Nodes[i]); !ok {
				t.Fatalf("route %s -> %s has no link %d-%d",
					from.Name, to.Name, p.Nodes[i-1], p.Nodes[i])
			}
		}
		if _, err := in.Net.PathMetrics(p, 0); err != nil {
			t.Fatalf("metrics for %s -> %s: %v", from.Name, to.Name, err)
		}
	}
	for _, s := range in.Servers {
		for _, c := range in.Clients {
			check(s, c)
		}
	}
	for _, dc := range in.DCOrder {
		for _, c := range in.Clients {
			check(in.DCs[dc], c)
			check(c, in.DCs[dc])
		}
	}
}

// TestValleyFree: every default AS path respects Gao-Rexford export rules.
func TestValleyFree(t *testing.T) {
	in := generate(t, 42)
	for _, s := range in.Servers {
		for _, c := range in.Clients {
			asPath, err := in.ASPath(s.ASN, c.ASN)
			if err != nil {
				t.Fatalf("AS path %s -> %s: %v", s.Name, c.Name, err)
			}
			if !in.IsValleyFree(asPath) {
				t.Errorf("AS path %s -> %s not valley-free: %v", s.Name, c.Name, asPath)
			}
		}
	}
}

func TestASPathSelf(t *testing.T) {
	in := generate(t, 42)
	p, err := in.ASPath(in.CloudASN, in.CloudASN)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0] != in.CloudASN {
		t.Errorf("self AS path = %v", p)
	}
}

func TestOverlayRoute(t *testing.T) {
	in := generate(t, 42)
	src, dst := in.Servers[0], in.Clients[0]
	route, err := in.OverlayRoute(src, dst, in.DCOrder[0])
	if err != nil {
		t.Fatal(err)
	}
	if route.ToDC.Nodes[0] != src.Node {
		t.Error("ToDC does not start at source")
	}
	if route.FromDC.Nodes[len(route.FromDC.Nodes)-1] != dst.Node {
		t.Error("FromDC does not end at destination")
	}
	dcNode := in.DCs[in.DCOrder[0]].Node
	if route.ToDC.Nodes[len(route.ToDC.Nodes)-1] != dcNode || route.FromDC.Nodes[0] != dcNode {
		t.Error("segments do not meet at the DC")
	}
	full, err := route.FullPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Nodes) != len(route.ToDC.Nodes)+len(route.FromDC.Nodes)-1 {
		t.Errorf("full path length %d", len(full.Nodes))
	}
	if _, err := in.OverlayRoute(src, dst, "Gotham"); err == nil {
		t.Error("expected error for unknown DC")
	}
}

func TestTracerouteExcludesHosts(t *testing.T) {
	in := generate(t, 42)
	p, err := in.RouterPath(in.Servers[0], in.Clients[0])
	if err != nil {
		t.Fatal(err)
	}
	tr := in.Traceroute(p)
	if len(tr) != len(p.Nodes)-2 {
		t.Errorf("traceroute length %d, path %d (both endpoints are hosts)", len(tr), len(p.Nodes))
	}
	for _, id := range tr {
		if in.Net.MustNode(id).Kind != netsim.KindRouter {
			t.Errorf("non-router %v in traceroute", id)
		}
	}
}

// TestOverlayDiffersFromDirect: overlay routes should not all be identical
// to the direct route — the premise of the whole paper.
func TestOverlayDiffersFromDirect(t *testing.T) {
	in := generate(t, 42)
	src, dst := in.Servers[0], in.Clients[0]
	direct, err := in.RouterPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for _, dc := range in.DCOrder {
		route, err := in.OverlayRoute(src, dst, dc)
		if err != nil {
			t.Fatal(err)
		}
		full, err := route.FullPath()
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Nodes) != len(direct.Nodes) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("every overlay route matches the direct route length; no diversity")
	}
}

func TestStubsAreAttachedToTier2(t *testing.T) {
	in := generate(t, 42)
	for _, c := range in.Clients {
		stub, err := in.AS(c.ASN)
		if err != nil {
			t.Fatal(err)
		}
		if stub.Tier != TierStub {
			t.Errorf("client %s in non-stub AS", c.Name)
		}
		if len(stub.Providers) == 0 {
			t.Errorf("stub %s has no provider", stub.Name)
		}
		for _, p := range stub.Providers {
			prov, err := in.AS(p)
			if err != nil {
				t.Fatal(err)
			}
			if prov.Tier != Tier2 {
				t.Errorf("stub %s homed to %v AS", stub.Name, prov.Tier)
			}
		}
	}
}

func TestCloudBackboneConnectedAndClean(t *testing.T) {
	in := generate(t, 42)
	cloud, err := in.AS(in.CloudASN)
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := in.intraASDijkstra(in.CloudASN, cloud.Routers[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cloud.Routers {
		d, ok := dist[r]
		if !ok || d > 1 { // seconds; any finite backbone path is far below this
			t.Errorf("DC router %d unreachable over the backbone", r)
		}
	}
	// Backbone links are well provisioned: low loss, low utilization.
	for i, a := range cloud.Routers {
		for j := i + 1; j < len(cloud.Routers); j++ {
			l, ok := in.Net.Link(a, cloud.Routers[j])
			if !ok {
				continue
			}
			if l.BaseLossRate > 1e-4 {
				t.Errorf("backbone link loss = %v", l.BaseLossRate)
			}
			if l.UtilizationAt(0) > 0.3 {
				t.Errorf("backbone link utilization = %v", l.UtilizationAt(0))
			}
		}
	}
}

func TestLinkParameterRanges(t *testing.T) {
	in := generate(t, 42)
	for _, l := range in.Net.Links() {
		if l.CapacityMbps <= 0 {
			t.Fatalf("link %d-%d has capacity %v", l.A, l.B, l.CapacityMbps)
		}
		if l.BaseLossRate < 0 || l.BaseLossRate > 0.05 {
			t.Fatalf("link %d-%d has loss %v", l.A, l.B, l.BaseLossRate)
		}
		if u := l.UtilizationAt(0); u < 0 || u > 0.98 {
			t.Fatalf("link %d-%d has utilization %v", l.A, l.B, u)
		}
		if l.Delay < 0 || l.Delay > 200*time.Millisecond {
			t.Fatalf("link %d-%d has delay %v", l.A, l.B, l.Delay)
		}
	}
}

func TestRouterPathToSelfFails(t *testing.T) {
	in := generate(t, 42)
	if _, err := in.RouterPath(in.Clients[0], in.Clients[0]); err == nil {
		t.Error("expected error for self route")
	}
}

func TestIntraASConnected(t *testing.T) {
	in := generate(t, 42)
	for _, a := range in.ASes {
		if len(a.Routers) < 2 {
			continue
		}
		dist, _, err := in.intraASDijkstra(a.ASN, a.Routers[0])
		if err != nil {
			t.Fatalf("dijkstra in %s: %v", a.Name, err)
		}
		for _, r := range a.Routers {
			if d, ok := dist[r]; !ok || d < 0 || d > 1e9 {
				t.Fatalf("router %d unreachable inside %s", r, a.Name)
			}
		}
	}
}

func TestIsValleyFreeRejectsValleys(t *testing.T) {
	in := generate(t, 42)
	// Build a deliberate valley: provider -> customer -> provider.
	var stub *AS
	for _, a := range in.ASes {
		if a.Tier == TierStub && len(a.Providers) >= 2 {
			stub = a
			break
		}
	}
	if stub == nil {
		t.Skip("no multi-homed stub in this topology")
	}
	valley := []int{stub.Providers[0], stub.ASN, stub.Providers[1]}
	if in.IsValleyFree(valley) {
		t.Errorf("path %v descends into a stub and climbs out; should not be valley-free", valley)
	}
}
