package topology

import (
	"testing"
)

// TestBGPTiesAreRecorded: destinations reachable over several equally-good
// next hops must expose all of them (the hot-potato candidates).
func TestBGPTiesAreRecorded(t *testing.T) {
	in := generate(t, 42)
	multi := 0
	for _, c := range in.Clients {
		routes, err := in.routesFor(c.ASN)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := routes[in.CloudASN]
		if !ok {
			t.Fatalf("cloud has no route to %s", c.Name)
		}
		if len(e.nexts) == 0 {
			t.Fatalf("route to %s has empty candidate set", c.Name)
		}
		// The deterministic next must be the smallest candidate.
		for _, n := range e.nexts {
			if n < e.next {
				t.Fatalf("next %d is not the smallest of %v", e.next, e.nexts)
			}
		}
		if len(e.nexts) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no destination has tied BGP candidates; hot-potato divergence impossible")
	}
}

// TestTiedCandidatesShareClass: every tied next hop must yield the same
// route kind and length when followed.
func TestTiedCandidatesShareClass(t *testing.T) {
	in := generate(t, 42)
	for _, c := range in.Clients[:5] {
		routes, err := in.routesFor(c.ASN)
		if err != nil {
			t.Fatal(err)
		}
		for asn, e := range routes {
			if len(e.nexts) < 2 || e.kind == routeSelf {
				continue
			}
			for _, n := range e.nexts {
				ne, ok := routes[n]
				if !ok {
					t.Fatalf("AS%d candidate %d has no route", asn, n)
				}
				if ne.length != e.length-1 {
					t.Fatalf("AS%d candidate %d has length %d, want %d",
						asn, n, ne.length, e.length-1)
				}
			}
		}
	}
}

// TestRouterPathRespectsValleyFreedom: the hot-potato expansion must only
// walk valley-free AS sequences.
func TestRouterPathValleyFree(t *testing.T) {
	in := generate(t, 42)
	for _, s := range in.Servers {
		for _, c := range in.Clients[:5] {
			p, err := in.RouterPath(s, c)
			if err != nil {
				t.Fatal(err)
			}
			var asSeq []int
			for _, id := range p.Nodes {
				asn := in.Net.MustNode(id).ASN
				if len(asSeq) == 0 || asSeq[len(asSeq)-1] != asn {
					asSeq = append(asSeq, asn)
				}
			}
			if !in.IsValleyFree(asSeq) {
				t.Errorf("router path %s->%s AS sequence %v not valley-free", s.Name, c.Name, asSeq)
			}
		}
	}
}

func TestInsertSorted(t *testing.T) {
	xs := insertSorted(nil, 5)
	xs = insertSorted(xs, 2)
	xs = insertSorted(xs, 9)
	xs = insertSorted(xs, 5) // duplicate
	want := []int{2, 5, 9}
	if len(xs) != len(want) {
		t.Fatalf("insertSorted = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", xs, want)
		}
	}
}

func TestRouteKindPreference(t *testing.T) {
	if !(routeSelf.preference() < routeCustomer.preference() &&
		routeCustomer.preference() < routePeer.preference() &&
		routePeer.preference() < routeProvider.preference()) {
		t.Error("Gao-Rexford preference order broken")
	}
}
