package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cronets/internal/geo"
	"cronets/internal/netsim"
)

// Config parameterizes topology generation. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal seeds produce equal topologies.
	Seed int64

	// NumTier1 is the number of Tier-1 (transit-free) providers.
	NumTier1 int
	// NumTier2 is the number of regional Tier-2 providers.
	NumTier2 int
	// ClientStubs and ServerStubs are the number of stub ASes hosting one
	// client (resp. server) each.
	ClientStubs int
	ServerStubs int

	// CloudDCCities names the catalog cities hosting cloud data centers.
	CloudDCCities []string

	// Core link parameters (Tier-1 backbone and Tier-1 peering). These
	// links are the congested middle of the Internet. Link quality is
	// bimodal: with probability CoreHotProb a link is a "hot" bottleneck
	// (utilization 0.80-0.95, loss log-uniform up to CoreLossMax);
	// otherwise it is cool (utilization in [CoreUtilMin, CoreUtilMax],
	// loss log-uniform up to CoreCoolLossMax). The bimodality produces the
	// paper's polarity: most default paths are fine, a minority cross a
	// bottleneck and are hugely improvable.
	CoreCapacityMbps float64
	CoreHotProb      float64
	CoreUtilMin      float64
	CoreUtilMax      float64
	CoreLossMax      float64
	CoreCoolLossMax  float64
	CoreQueueMax     time.Duration

	// Regional (Tier-2) link parameters, with the same hot/cool split.
	RegionalCapacityMbps float64
	RegionalHotProb      float64
	RegionalUtilMin      float64
	RegionalUtilMax      float64
	RegionalLossMax      float64
	RegionalCoolLossMax  float64
	RegionalQueueMax     time.Duration

	// Access link parameters (stub <-> Tier-2 and host <-> stub router).
	ClientAccessMbps float64
	ServerAccessMbps float64
	AccessUtilMax    float64
	AccessLossMax    float64
	AccessQueueMax   time.Duration

	// Cloud parameters.
	CloudNICMbps         float64       // DC VM virtual NIC (paper: 100 Mbps)
	CloudBackboneMbps    float64       // private DC-to-DC backbone
	CloudBackboneUtil    float64       // background load on the backbone
	CloudBackboneLossMax float64       // heavy-tail loss cap on backbone links
	CloudPeeringMbps     float64       // IXP peering link capacity
	CloudPeeringUtil     float64       // background load on peering links
	CloudLoss            float64       // loss rate on cloud peering/NIC links
	CloudQueueMax        time.Duration // queueing cap on cloud-owned links

	// RelayOverhead is the per-packet processing delay added by an overlay
	// node (decapsulation, NAT rewrite, re-encapsulation).
	RelayOverhead time.Duration

	// Tier2PeerProb is the probability that two same-continent Tier-2 ASes
	// peer directly at an IXP.
	Tier2PeerProb float64
	// StubSecondHomingProb is the probability a stub is multi-homed to a
	// second provider.
	StubSecondHomingProb float64
	// CloudTier2PeerProb is the probability the cloud AS peers with a
	// Tier-2 AS sharing a continent with one of its DCs (aggressive IXP
	// peering is a core premise of the paper).
	CloudTier2PeerProb float64
}

// DefaultConfig returns the configuration used by the paper-scale
// experiments. The link parameters are calibrated so that (a) core links are
// the dominant bottleneck, (b) direct transcontinental paths show the
// 10-250 ms RTT spread of the paper's Figure 9 bins, and (c) access links
// rarely bottleneck below the 100 Mbps NIC.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		NumTier1:    8,
		NumTier2:    24,
		ClientStubs: 110,
		ServerStubs: 10,
		CloudDCCities: []string{
			"WashingtonDC", "SanJose", "Dallas", "Amsterdam", "Tokyo",
		},

		CoreCapacityMbps: 40000,
		CoreHotProb:      0.09,
		CoreUtilMin:      0.25,
		CoreUtilMax:      0.65,
		CoreLossMax:      0.0004,
		CoreCoolLossMax:  0.001,
		CoreQueueMax:     110 * time.Millisecond,

		RegionalCapacityMbps: 10000,
		RegionalHotProb:      0.10,
		RegionalUtilMin:      0.10,
		RegionalUtilMax:      0.45,
		RegionalLossMax:      0.0004,
		RegionalCoolLossMax:  0.00004,
		RegionalQueueMax:     25 * time.Millisecond,

		ClientAccessMbps: 100,
		ServerAccessMbps: 15,
		AccessUtilMax:    0.25,
		AccessLossMax:    0.00005,
		AccessQueueMax:   8 * time.Millisecond,

		CloudNICMbps:         100,
		CloudBackboneMbps:    40000,
		CloudBackboneUtil:    0.15,
		CloudBackboneLossMax: 0.00005,
		CloudPeeringMbps:     10000,
		CloudPeeringUtil:     0.15,
		CloudLoss:            0.000002,
		CloudQueueMax:        8 * time.Millisecond,

		RelayOverhead: 250 * time.Microsecond,

		Tier2PeerProb:        0.30,
		StubSecondHomingProb: 0.50,
		CloudTier2PeerProb:   0.20,
	}
}

// Internet is a generated topology: the node/link graph plus the AS-level
// structure and host inventory needed for routing and experiments.
type Internet struct {
	Net *netsim.Network
	// ASes is indexed by ASN.
	ASes []*AS
	// CloudASN is the cloud provider's ASN.
	CloudASN int
	// Clients and Servers are the endpoint hosts.
	Clients []Host
	Servers []Host
	// DCs maps a data-center city name to its VM host.
	DCs map[string]Host
	// DCOrder lists DC city names in creation order (deterministic).
	DCOrder []string

	cfg      Config
	peerings map[asPairKey][]peeringPoint
	routes   map[int]map[int]routeEntry // dest ASN -> src ASN -> entry
	asIndex  map[int]*AS
}

// Config returns the configuration the Internet was generated with.
func (in *Internet) Config() Config { return in.cfg }

// AS returns the AS with the given ASN.
func (in *Internet) AS(asn int) (*AS, error) {
	a, ok := in.asIndex[asn]
	if !ok {
		return nil, fmt.Errorf("topology: no AS %d", asn)
	}
	return a, nil
}

// Generate builds an Internet from the configuration.
func Generate(cfg Config) (*Internet, error) {
	if cfg.NumTier1 < 2 || cfg.NumTier2 < 2 {
		return nil, fmt.Errorf("topology: need at least 2 tier-1 and 2 tier-2 ASes, got %d/%d",
			cfg.NumTier1, cfg.NumTier2)
	}
	if len(cfg.CloudDCCities) == 0 {
		return nil, fmt.Errorf("topology: need at least one cloud DC city")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &Internet{
		Net:      netsim.New(),
		DCs:      make(map[string]Host),
		cfg:      cfg,
		peerings: make(map[asPairKey][]peeringPoint),
		routes:   make(map[int]map[int]routeEntry),
		asIndex:  make(map[int]*AS),
	}
	catalog := geo.Catalog()
	majors := catalog[:20] // cities big enough to host core PoPs

	// Tier-1 providers: global footprint — at least one PoP per continent
	// (so inter-AS peering stays local and the long-haul segments live
	// inside the provider's own backbone, as in real transit networks),
	// plus extra PoPs in major cities.
	continentsAll := []string{"NA", "EU", "AS", "SA", "OC"}
	for i := 0; i < cfg.NumTier1; i++ {
		a := in.newAS(fmt.Sprintf("T1-%d", i), Tier1)
		seen := make(map[string]bool)
		for _, cont := range continentsAll {
			regional := citiesOn(catalog, cont)
			for _, city := range pickCities(rng, regional, 1+rng.Intn(2)) {
				if !seen[city.Name] {
					seen[city.Name] = true
					in.addRouter(a, city)
				}
			}
		}
		for _, city := range pickCities(rng, majors, 4+rng.Intn(3)) {
			if !seen[city.Name] {
				seen[city.Name] = true
				in.addRouter(a, city)
			}
		}
	}

	// Tier-2 providers: regional, 2-5 cities on one continent.
	continents := []string{"NA", "EU", "AS", "SA", "OC"}
	for i := 0; i < cfg.NumTier2; i++ {
		cont := continents[i%len(continents)]
		regional := citiesOn(catalog, cont)
		if len(regional) == 0 {
			continue
		}
		a := in.newAS(fmt.Sprintf("T2-%d-%s", i, cont), Tier2)
		n := 4 + rng.Intn(4)
		for _, city := range pickCities(rng, regional, n) {
			in.addRouter(a, city)
		}
	}

	// Cloud provider AS with one router + one VM host per DC city.
	cloud := in.newAS("CloudProvider", TierCloud)
	in.CloudASN = cloud.ASN
	for _, cityName := range cfg.CloudDCCities {
		city, ok := geo.FindLocation(cityName)
		if !ok {
			return nil, fmt.Errorf("topology: unknown DC city %q", cityName)
		}
		router := in.addRouter(cloud, city)
		vm := in.Net.AddNode(netsim.Node{
			Name: "dc-" + cityName, Kind: netsim.KindCloudDC, ASN: cloud.ASN, Loc: city,
		})
		// The VM's virtual NIC: the paper's 100 Mbps cap lives here.
		if err := in.Net.AddLink(netsim.Link{
			A: vm, B: router,
			Delay:           200 * time.Microsecond,
			CapacityMbps:    cfg.CloudNICMbps,
			BaseLossRate:    cfg.CloudLoss,
			BaseUtilization: 0.02,
			MaxQueueDelay:   cfg.CloudQueueMax,
		}); err != nil {
			return nil, err
		}
		h := Host{Node: vm, Access: router, ASN: cloud.ASN, Loc: city,
			Role: RoleCloudDC, Name: "dc-" + cityName}
		in.DCs[cityName] = h
		in.DCOrder = append(in.DCOrder, cityName)
	}

	// Intra-AS backbones: full mesh among each AS's routers.
	for _, a := range in.ASes {
		if err := in.meshAS(rng, a); err != nil {
			return nil, err
		}
	}

	// Tier-1 clique: every pair of Tier-1 ASes peers.
	t1s := in.byTier(Tier1)
	for i := 0; i < len(t1s); i++ {
		for j := i + 1; j < len(t1s); j++ {
			if err := in.connectASes(rng, t1s[i], t1s[j], relPeer, linkCore); err != nil {
				return nil, err
			}
		}
	}

	// Tier-2: customer of 2-3 Tier-1s (regional providers multi-home for
	// resilience, which is also what gives BGP equally-good routes to
	// tie-break hot-potato style); peer with same-continent Tier-2s.
	t2s := in.byTier(Tier2)
	for _, t2 := range t2s {
		nProv := 2 + rng.Intn(2)
		for _, t1 := range pickASes(rng, t1s, nProv) {
			if err := in.connectASes(rng, t2, t1, relCustomer, linkCore); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < len(t2s); i++ {
		for j := i + 1; j < len(t2s); j++ {
			if sameContinent(t2s[i], t2s[j]) && rng.Float64() < cfg.Tier2PeerProb {
				if err := in.connectASes(rng, t2s[i], t2s[j], relPeer, linkRegional); err != nil {
					return nil, err
				}
			}
		}
	}

	// Cloud peering: with every Tier-1, and aggressively with Tier-2s that
	// share a continent with a DC.
	for _, t1 := range t1s {
		if err := in.connectASes(rng, cloud, t1, relPeer, linkCloudPeering); err != nil {
			return nil, err
		}
	}
	for _, t2 := range t2s {
		if in.cloudSharesContinent(t2) && rng.Float64() < cfg.CloudTier2PeerProb {
			if err := in.connectASes(rng, cloud, t2, relPeer, linkCloudPeering); err != nil {
				return nil, err
			}
		}
	}

	// Client and server stubs. Client cities follow the PlanetLab
	// distribution the paper measured from (Section II-A: 48 Europe, 45
	// America, 14 Asia, 3 Australia of ~110 nodes) — Europe- and
	// North-America-heavy with a thin tail elsewhere.
	clientContinents := []struct {
		cont   string
		weight float64
	}{
		{"EU", 0.42}, {"NA", 0.38}, {"AS", 0.12}, {"SA", 0.05}, {"OC", 0.03},
	}
	for i := 0; i < cfg.ClientStubs; i++ {
		r := rng.Float64()
		cont := clientContinents[len(clientContinents)-1].cont
		for _, cw := range clientContinents {
			if r < cw.weight {
				cont = cw.cont
				break
			}
			r -= cw.weight
		}
		regional := citiesOn(catalog, cont)
		city := regional[rng.Intn(len(regional))]
		h, err := in.addStubHost(rng, fmt.Sprintf("client-%s-%d", city.Name, i),
			city, RoleClient, cfg.ClientAccessMbps)
		if err != nil {
			return nil, err
		}
		in.Clients = append(in.Clients, h)
	}
	serverCities := []string{
		"Toronto", "Portland", "Atlanta", "Munich", "Zurich",
		"Osaka", "Seoul", "Beijing", "NewYork", "Chicago",
	}
	for i := 0; i < cfg.ServerStubs; i++ {
		name := serverCities[i%len(serverCities)]
		city, ok := geo.FindLocation(name)
		if !ok {
			return nil, fmt.Errorf("topology: unknown server city %q", name)
		}
		h, err := in.addStubHost(rng, fmt.Sprintf("server-%s-%d", city.Name, i),
			city, RoleServer, cfg.ServerAccessMbps)
		if err != nil {
			return nil, err
		}
		in.Servers = append(in.Servers, h)
	}
	return in, nil
}

func (in *Internet) newAS(name string, tier Tier) *AS {
	a := &AS{ASN: len(in.ASes) + 1, Name: name, Tier: tier}
	in.ASes = append(in.ASes, a)
	in.asIndex[a.ASN] = a
	return a
}

func (in *Internet) addRouter(a *AS, city geo.Location) netsim.NodeID {
	id := in.Net.AddNode(netsim.Node{
		Name: fmt.Sprintf("%s.%s", a.Name, city.Name),
		Kind: netsim.KindRouter, ASN: a.ASN, Loc: city,
	})
	a.Routers = append(a.Routers, id)
	a.Presence = append(a.Presence, city)
	return id
}

// linkClass selects the parameter family for a generated link.
type linkClass int

const (
	linkCore linkClass = iota + 1
	linkRegional
	linkAccess
	linkStubUplink
	linkCloudPeering
	linkCloudBackbone
)

// makeLink draws link parameters from the class's configured ranges.
func (in *Internet) makeLink(rng *rand.Rand, a, b netsim.NodeID, class linkClass) netsim.Link {
	cfg := in.cfg
	na, nb := in.Net.MustNode(a), in.Net.MustNode(b)
	delay := geo.PropagationDelay(na.Loc, nb.Loc)
	l := netsim.Link{A: a, B: b, Delay: delay}
	switch class {
	case linkCore:
		l.CapacityMbps = cfg.CoreCapacityMbps
		hot := rng.Float64() < cfg.CoreHotProb
		if hot {
			l.BaseUtilization = uniform(rng, 0.80, 0.92)
			l.BaseLossRate = logUniform(rng, 1e-4, cfg.CoreLossMax)
		} else {
			l.BaseUtilization = uniform(rng, cfg.CoreUtilMin, cfg.CoreUtilMax)
			l.BaseLossRate = logUniform(rng, 1e-6, cfg.CoreCoolLossMax)
		}
		l.MaxQueueDelay = cfg.CoreQueueMax
		// Day-night load swing on ordinary links; chronic bottlenecks are
		// saturated around the clock, so their badness persists (the
		// stability behind Figure 6's longitudinal gains).
		amp := rng.Float64() * 0.03
		l.DiurnalPhase = rng.Float64()
		if !hot {
			l.DiurnalAmplitude = amp
		}
	case linkRegional:
		l.CapacityMbps = cfg.RegionalCapacityMbps
		hot := rng.Float64() < cfg.RegionalHotProb
		if hot {
			l.BaseUtilization = uniform(rng, 0.70, 0.90)
			l.BaseLossRate = logUniform(rng, 1e-4, cfg.RegionalLossMax)
		} else {
			l.BaseUtilization = uniform(rng, cfg.RegionalUtilMin, cfg.RegionalUtilMax)
			l.BaseLossRate = logUniform(rng, 1e-7, cfg.RegionalCoolLossMax)
		}
		l.MaxQueueDelay = cfg.RegionalQueueMax
		amp := rng.Float64() * 0.02
		l.DiurnalPhase = rng.Float64()
		if !hot {
			l.DiurnalAmplitude = amp
		}
	case linkAccess:
		l.CapacityMbps = cfg.ClientAccessMbps
		l.BaseUtilization = rng.Float64() * cfg.AccessUtilMax
		l.BaseLossRate = logUniform(rng, 1e-8, cfg.AccessLossMax)
		l.MaxQueueDelay = cfg.AccessQueueMax
	case linkStubUplink:
		// Stub-to-provider uplinks are provisioned cleanly: the paper's
		// premise (after Akella et al.) is that bottlenecks live in the
		// core, not on the first ISP hop.
		l.CapacityMbps = cfg.RegionalCapacityMbps
		l.BaseUtilization = uniform(rng, 0.05, 0.35)
		l.BaseLossRate = logUniform(rng, 1e-7, cfg.AccessLossMax)
		l.MaxQueueDelay = 10 * time.Millisecond
	case linkCloudPeering:
		l.CapacityMbps = cfg.CloudPeeringMbps
		l.BaseUtilization = rng.Float64() * cfg.CloudPeeringUtil
		l.BaseLossRate = cfg.CloudLoss
		l.MaxQueueDelay = cfg.CloudQueueMax
	case linkCloudBackbone:
		l.CapacityMbps = cfg.CloudBackboneMbps
		l.BaseUtilization = cfg.CloudBackboneUtil
		l.BaseLossRate = logUniform(rng, 1e-7, cfg.CloudBackboneLossMax)
		l.MaxQueueDelay = cfg.CloudQueueMax
	}
	return l
}

// meshAS builds an AS's internal backbone. All backbones are sparse —
// each router links to its nearest already-placed router (a spanning
// tree) plus one extra nearest neighbor for redundancy — so transit
// traffic hops through intermediate PoPs. For ISPs that traversal
// accumulates stretch, queueing and bottleneck exposure; the cloud
// provider's backbone takes the same waypoint hops (as Softlayer's ring
// topology did) but over clean, well-provisioned links, which is also why
// overlay paths show up longer in traceroutes than the default paths they
// beat (the paper's Section V-B hop-count observation).
func (in *Internet) meshAS(rng *rand.Rand, a *AS) error {
	class := linkRegional
	switch a.Tier {
	case Tier1:
		class = linkCore
	case TierCloud:
		class = linkCloudBackbone
	}
	addLink := func(i, j int) error {
		if _, exists := in.Net.Link(a.Routers[i], a.Routers[j]); exists {
			return nil
		}
		return in.Net.AddLink(in.makeLink(rng, a.Routers[i], a.Routers[j], class))
	}
	for i := 1; i < len(a.Routers); i++ {
		// Spanning link: nearest already-placed router.
		if j := nearestRouter(a, i, i); j >= 0 {
			if err := addLink(i, j); err != nil {
				return fmt.Errorf("topology: backbone %s: %w", a.Name, err)
			}
		}
	}
	for i := 0; i < len(a.Routers); i++ {
		// Redundancy link: nearest router overall.
		if j := nearestRouter(a, i, len(a.Routers)); j >= 0 {
			if err := addLink(i, j); err != nil {
				return fmt.Errorf("topology: backbone %s: %w", a.Name, err)
			}
		}
	}
	if a.Tier == Tier1 && len(a.Routers) > 3 {
		// Tier-1 backbones are dense: real transit providers run multiple
		// parallel long-haul crossings, so traversals entering at
		// different PoPs take genuinely different router sequences. Add a
		// random extra link per router; without these, every transit
		// through the AS funnels over one spanning path and overlay
		// paths lose their router-level diversity (Figure 8).
		for i := range a.Routers {
			j := rng.Intn(len(a.Routers))
			if j == i {
				continue
			}
			if err := addLink(i, j); err != nil {
				return fmt.Errorf("topology: backbone %s: %w", a.Name, err)
			}
		}
	}
	return nil
}

// nearestRouter returns the index of the router geographically closest to
// router i among indexes [0, limit) excluding i, or -1 if none.
func nearestRouter(a *AS, i, limit int) int {
	best := -1
	bestDist := 0.0
	for j := 0; j < limit && j < len(a.Routers); j++ {
		if j == i {
			continue
		}
		d := geo.DistanceKm(a.Presence[i], a.Presence[j])
		if best < 0 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// relKind is the business relationship direction for connectASes.
type relKind int

const (
	relCustomer relKind = iota + 1 // first AS is customer of second
	relPeer
)

// connectASes records the business relationship and creates 1-2 physical
// peering links at the geographically closest presence pairs.
func (in *Internet) connectASes(rng *rand.Rand, x, y *AS, rel relKind, class linkClass) error {
	var pairs []peeringPoint
	if x.Tier == TierCloud || y.Tier == TierCloud {
		// Aggressive IXP peering: the cloud provider peers near every one
		// of its data centers, so overlay traffic can enter and exit the
		// provider network close to the endpoints.
		cloud, other := x, y
		if y.Tier == TierCloud {
			cloud, other = y, x
		}
		pairs = perRouterPairs(cloud, other)
		if cloud != x {
			for i, p := range pairs {
				pairs[i] = peeringPoint{a: p.b, b: p.a}
			}
		}
	} else {
		pairs = sampledRouterPairs(rng, x, y, 2+rng.Intn(2))
	}
	if len(pairs) == 0 {
		return fmt.Errorf("topology: no router pair between %s and %s", x.Name, y.Name)
	}
	// Record the business relationship only once a physical interconnect
	// exists; BGP must never select an adjacency with no link.
	switch rel {
	case relCustomer:
		x.Providers = append(x.Providers, y.ASN)
		y.Customers = append(y.Customers, x.ASN)
	case relPeer:
		x.Peers = append(x.Peers, y.ASN)
		y.Peers = append(y.Peers, x.ASN)
	}
	key := asPair(x.ASN, y.ASN)
	for _, p := range pairs {
		if err := in.Net.AddLink(in.makeLink(rng, p.a, p.b, class)); err != nil {
			return fmt.Errorf("topology: peer %s-%s: %w", x.Name, y.Name, err)
		}
		pp := peeringPoint{a: p.a, b: p.b}
		if x.ASN > y.ASN {
			pp = peeringPoint{a: p.b, b: p.a}
		}
		in.peerings[key] = append(in.peerings[key], pp)
	}
	return nil
}

// addStubHost creates a single-router stub AS in the city, homes it to the
// nearest Tier-2 provider(s), and attaches a host via an access link.
func (in *Internet) addStubHost(rng *rand.Rand, name string, city geo.Location,
	role HostRole, accessMbps float64) (Host, error) {

	stub := in.newAS("stub-"+name, TierStub)
	router := in.addRouter(stub, city)

	// Home to the 1-2 nearest Tier-2 providers (same continent preferred).
	providers := in.nearestTier2(city, 3)
	if len(providers) == 0 {
		return Host{}, fmt.Errorf("topology: no tier-2 provider for %s", name)
	}
	if err := in.connectASes(rng, stub, providers[0], relCustomer, linkStubUplink); err != nil {
		return Host{}, err
	}
	if len(providers) > 1 && rng.Float64() < in.cfg.StubSecondHomingProb {
		if err := in.connectASes(rng, stub, providers[1], relCustomer, linkStubUplink); err != nil {
			return Host{}, err
		}
	}

	host := in.Net.AddNode(netsim.Node{
		Name: name, Kind: netsim.KindHost, ASN: stub.ASN, Loc: city,
	})
	access := in.makeLink(rng, host, router, linkAccess)
	access.CapacityMbps = accessMbps
	if err := in.Net.AddLink(access); err != nil {
		return Host{}, err
	}
	return Host{Node: host, Access: router, ASN: stub.ASN, Loc: city, Role: role, Name: name}, nil
}

// nearestTier2 returns up to n Tier-2 ASes ordered by distance of their
// closest presence to the city.
func (in *Internet) nearestTier2(city geo.Location, n int) []*AS {
	type cand struct {
		as   *AS
		dist float64
	}
	var cands []cand
	for _, a := range in.byTier(Tier2) {
		best := -1.0
		for _, p := range a.Presence {
			d := geo.DistanceKm(city, p)
			if best < 0 || d < best {
				best = d
			}
		}
		if best >= 0 {
			cands = append(cands, cand{a, best})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].as.ASN < cands[j].as.ASN
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]*AS, len(cands))
	for i, c := range cands {
		out[i] = c.as
	}
	return out
}

func (in *Internet) byTier(t Tier) []*AS {
	var out []*AS
	for _, a := range in.ASes {
		if a.Tier == t {
			out = append(out, a)
		}
	}
	return out
}

func (in *Internet) cloudSharesContinent(a *AS) bool {
	cloud := in.asIndex[in.CloudASN]
	for _, cp := range cloud.Presence {
		for _, p := range a.Presence {
			if cp.Continent == p.Continent {
				return true
			}
		}
	}
	return false
}

// perRouterPairs returns one peering point per cloud router: the nearest
// router of the other AS, with duplicates removed. Points are oriented with
// .a on the cloud side.
func perRouterPairs(cloud, other *AS) []peeringPoint {
	seen := make(map[peeringPoint]bool)
	var out []peeringPoint
	for i, cr := range cloud.Routers {
		best := -1
		bestDist := 0.0
		for j := range other.Routers {
			d := geo.DistanceKm(cloud.Presence[i], other.Presence[j])
			if best < 0 || d < bestDist {
				best, bestDist = j, d
			}
		}
		if best < 0 {
			continue
		}
		p := peeringPoint{a: cr, b: other.Routers[best]}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// sampledRouterPairs picks n peering points among the 2n+2 geographically
// closest router pairs: real IXP interconnects cluster near the shortest
// geographic pairings but are not exactly the minimum, and the spread is
// what lets paths entering an AS at different points take different
// internal routes.
func sampledRouterPairs(rng *rand.Rand, x, y *AS, n int) []peeringPoint {
	cands := closestRouterPairs(x, y, 2*n+2)
	if len(cands) <= n {
		return cands
	}
	idx := rng.Perm(len(cands))[:n]
	sort.Ints(idx)
	out := make([]peeringPoint, 0, n)
	for _, i := range idx {
		out = append(out, cands[i])
	}
	return out
}

// maxPeeringKm bounds how far apart two routers can be and still
// interconnect directly: peering happens at shared IXPs/metros, so the
// long-haul distance lives inside AS backbones, never on a peering link.
// Without this cap, hot-potato early exit would jump continents over a
// single "peering" hop.
const maxPeeringKm = 800

// closestRouterPairs returns up to n router pairs between the two ASes,
// ordered by geographic distance (the natural IXP locations), keeping only
// co-located pairs when any exist. Points are oriented with .a on x's side.
func closestRouterPairs(x, y *AS, n int) []peeringPoint {
	type cand struct {
		p    peeringPoint
		dist float64
	}
	var cands []cand
	for i, rx := range x.Routers {
		for j, ry := range y.Routers {
			d := geo.DistanceKm(x.Presence[i], y.Presence[j])
			cands = append(cands, cand{peeringPoint{a: rx, b: ry}, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		if cands[i].p.a != cands[j].p.a {
			return cands[i].p.a < cands[j].p.a
		}
		return cands[i].p.b < cands[j].p.b
	})
	// Keep co-located pairs only; if the ASes share no metro, allow the
	// single closest pair (a rural long-haul interconnect).
	local := cands
	for i, c := range cands {
		if c.dist > maxPeeringKm {
			local = cands[:i]
			break
		}
	}
	if len(local) == 0 && len(cands) > 0 {
		local = cands[:1]
	}
	// Spread the interconnects across distinct metros where possible:
	// peering at two routers of the same IXP adds no path diversity.
	seenA := make(map[netsim.NodeID]bool)
	out := make([]peeringPoint, 0, n)
	for _, c := range local {
		if len(out) >= n {
			break
		}
		if seenA[c.p.a] {
			continue
		}
		seenA[c.p.a] = true
		out = append(out, c.p)
	}
	for _, c := range local {
		if len(out) >= n {
			break
		}
		dup := false
		for _, o := range out {
			if o == c.p {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c.p)
		}
	}
	return out
}

func pickCities(rng *rand.Rand, from []geo.Location, n int) []geo.Location {
	idx := rng.Perm(len(from))
	if n > len(from) {
		n = len(from)
	}
	out := make([]geo.Location, 0, n)
	for _, i := range idx[:n] {
		out = append(out, from[i])
	}
	return out
}

func pickASes(rng *rand.Rand, from []*AS, n int) []*AS {
	idx := rng.Perm(len(from))
	if n > len(from) {
		n = len(from)
	}
	out := make([]*AS, 0, n)
	for _, i := range idx[:n] {
		out = append(out, from[i])
	}
	return out
}

// sameContinent reports whether the two ASes have presence on a shared
// continent.
func sameContinent(a, b *AS) bool {
	for _, pa := range a.Presence {
		for _, pb := range b.Presence {
			if pa.Continent == pb.Continent {
				return true
			}
		}
	}
	return false
}

func citiesOn(catalog []geo.Location, continent string) []geo.Location {
	var out []geo.Location
	for _, c := range catalog {
		if c.Continent == continent {
			out = append(out, c)
		}
	}
	return out
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// logUniform draws a value log-uniformly in [lo, hi], the heavy-tailed
// distribution observed for per-link loss rates: most links are nearly
// lossless, a few are bad.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}
