// Package topology generates Internet-like topologies for the CRONets
// reproduction and computes the default (BGP-style) and overlay routes over
// them.
//
// The generated Internet has the tiered structure the paper's analysis
// relies on: a small clique of Tier-1 transit providers whose backbone and
// peering links carry heavy background load (per Akella et al. 2003 and
// Kang & Gligor 2014, most wide-area bottlenecks are in or near the core),
// regional Tier-2 providers, stub ASes hosting clients and servers, and a
// cloud provider AS whose data centers are interconnected by a
// well-provisioned private backbone and aggressively peered at IXPs.
//
// Default paths follow Gao-Rexford (valley-free) route selection with
// hot-potato egress choice at the router level; overlay paths are the
// concatenation of the default paths to and from a cloud data center.
package topology

import (
	"fmt"

	"cronets/internal/geo"
	"cronets/internal/netsim"
)

// Tier classifies autonomous systems.
type Tier int

// AS tiers.
const (
	Tier1     Tier = iota + 1 // transit-free core provider
	Tier2                     // regional provider
	TierStub                  // edge network hosting endpoints
	TierCloud                 // the cloud provider
)

// String returns a short name for the tier.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case TierStub:
		return "stub"
	case TierCloud:
		return "cloud"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// AS is an autonomous system: a set of routers under one administrative
// domain, with business relationships to other ASes.
type AS struct {
	ASN  int
	Name string
	Tier Tier

	// Routers are the AS's router node IDs, one per presence city.
	Routers []netsim.NodeID
	// Presence lists the cities the AS has routers in, parallel to Routers.
	Presence []geo.Location

	// Providers, Customers and Peers hold the ASNs of business neighbors.
	Providers []int
	Customers []int
	Peers     []int
}

// Host is an endpoint attached to a stub AS: a PlanetLab-like client, a
// web server, or a cloud data-center VM.
type Host struct {
	// Node is the host's node ID in the network.
	Node netsim.NodeID
	// Access is the stub router the host attaches to.
	Access netsim.NodeID
	// ASN is the AS the host lives in.
	ASN int
	// Loc is the host's city.
	Loc geo.Location
	// Role distinguishes clients, servers and cloud DCs.
	Role HostRole
	// Name is a human-readable identifier ("client-paris-3", "dc-tokyo").
	Name string
}

// HostRole classifies hosts.
type HostRole int

// Host roles.
const (
	RoleClient HostRole = iota + 1
	RoleServer
	RoleCloudDC
)

// String returns a short name for the role.
func (r HostRole) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleServer:
		return "server"
	case RoleCloudDC:
		return "cloud-dc"
	default:
		return fmt.Sprintf("HostRole(%d)", int(r))
	}
}

// peeringPoint records the concrete router pair implementing an AS
// adjacency. The routing expansion picks among these with hot-potato logic.
type peeringPoint struct {
	// a belongs to the AS with the smaller ASN of the pair; b to the other.
	a, b netsim.NodeID
}

// asPairKey canonicalizes an unordered ASN pair.
type asPairKey struct{ lo, hi int }

func asPair(x, y int) asPairKey {
	if x > y {
		x, y = y, x
	}
	return asPairKey{x, y}
}
