package topology

import (
	"fmt"
	"math"

	"cronets/internal/netsim"
)

// RouterPath expands the BGP AS-level route between two hosts into a
// router-level path through the network. Inside each AS the path follows
// the AS's internal backbone (shortest propagation delay between PoPs), and
// at each AS boundary the egress is chosen hot-potato style: among the
// peering points toward the next AS, the one closest (in intra-AS delay) to
// the ingress router wins, regardless of what that does to the total path.
// This early-exit behaviour is the mechanism the paper (citing Kang &
// Gligor) blames for routing bottlenecks, and it is why default paths here
// are frequently not performance-optimal.
func (in *Internet) RouterPath(from, to Host) (netsim.Path, error) {
	if from.Node == to.Node {
		return netsim.Path{}, fmt.Errorf("topology: router path from host to itself (%s)", from.Name)
	}
	routes, err := in.routesFor(to.ASN)
	if err != nil {
		return netsim.Path{}, err
	}
	nodes := []netsim.NodeID{from.Node, from.Access}
	ingress := from.Access
	cur := from.ASN
	for steps := 0; cur != to.ASN; steps++ {
		if steps > len(in.ASes)+1 {
			return netsim.Path{}, fmt.Errorf("topology: routing loop from %s to %s", from.Name, to.Name)
		}
		e, ok := routes[cur]
		if !ok {
			return netsim.Path{}, fmt.Errorf("topology: AS %d has no route to %d", cur, to.ASN)
		}
		dist, prev, err := in.intraASDijkstra(cur, ingress)
		if err != nil {
			return netsim.Path{}, err
		}
		// Hot-potato across the tied BGP candidates: among every peering
		// point toward every equally-good next AS, exit at the one
		// closest (in intra-AS delay) to where the traffic entered.
		nextAS, egress, nextIngress, err := in.pickPeeringMulti(cur, e.nexts, dist)
		if err != nil {
			return netsim.Path{}, err
		}
		seg, err := reconstruct(prev, ingress, egress)
		if err != nil {
			return netsim.Path{}, fmt.Errorf("topology: inside AS%d: %w", cur, err)
		}
		nodes = append(nodes, seg[1:]...)
		nodes = append(nodes, nextIngress)
		ingress = nextIngress
		cur = nextAS
	}
	if ingress != to.Access {
		dist, prev, err := in.intraASDijkstra(to.ASN, ingress)
		if err != nil {
			return netsim.Path{}, err
		}
		if math.IsInf(dist[to.Access], 1) {
			return netsim.Path{}, fmt.Errorf("topology: AS%d backbone cannot reach egress", to.ASN)
		}
		seg, err := reconstruct(prev, ingress, to.Access)
		if err != nil {
			return netsim.Path{}, fmt.Errorf("topology: inside AS%d: %w", to.ASN, err)
		}
		nodes = append(nodes, seg[1:]...)
	}
	nodes = append(nodes, to.Node)
	return netsim.Path{Nodes: dedupeConsecutive(nodes)}, nil
}

// pickPeeringMulti returns the (next AS, egress router, ingress router)
// choice minimizing intra-AS delay from the current ingress (dist is the
// Dijkstra result from it), across every peering point toward every tied
// next-hop AS. Ties break deterministically on (ASN, egress, ingress).
func (in *Internet) pickPeeringMulti(curAS int, candidates []int, dist map[netsim.NodeID]float64) (int, netsim.NodeID, netsim.NodeID, error) {
	bestAS := -1
	var bestEg, bestIn netsim.NodeID
	bestDist := math.Inf(1)
	for _, nextAS := range candidates {
		for _, p := range in.peerings[asPair(curAS, nextAS)] {
			// peeringPoint.a belongs to the lower-ASN side.
			eg, ig := p.a, p.b
			if curAS > nextAS {
				eg, ig = p.b, p.a
			}
			d, ok := dist[eg]
			if !ok {
				continue
			}
			if d < bestDist ||
				(d == bestDist && (nextAS < bestAS ||
					(nextAS == bestAS && (eg < bestEg || (eg == bestEg && ig < bestIn))))) {
				bestAS, bestEg, bestIn, bestDist = nextAS, eg, ig, d
			}
		}
	}
	if bestAS < 0 {
		return 0, 0, 0, fmt.Errorf("topology: no reachable egress from AS%d toward %v", curAS, candidates)
	}
	return bestAS, bestEg, bestIn, nil
}

// intraASDijkstra computes shortest-delay distances from src over the AS's
// internal backbone (links whose endpoints both belong to the AS).
func (in *Internet) intraASDijkstra(asn int, src netsim.NodeID) (map[netsim.NodeID]float64, map[netsim.NodeID]netsim.NodeID, error) {
	a, err := in.AS(asn)
	if err != nil {
		return nil, nil, err
	}
	dist := make(map[netsim.NodeID]float64, len(a.Routers))
	prev := make(map[netsim.NodeID]netsim.NodeID, len(a.Routers))
	for _, r := range a.Routers {
		dist[r] = math.Inf(1)
	}
	if _, ok := dist[src]; !ok {
		return nil, nil, fmt.Errorf("topology: router %d not in AS%d", src, asn)
	}
	dist[src] = 0
	// The backbones are tiny (<= ~12 routers); a simple O(V^2) scan is
	// clearer than a heap and plenty fast.
	visited := make(map[netsim.NodeID]bool, len(a.Routers))
	for range a.Routers {
		cur, curDist := netsim.NodeID(-1), math.Inf(1)
		for _, r := range a.Routers {
			if !visited[r] && dist[r] < curDist {
				cur, curDist = r, dist[r]
			}
		}
		if cur < 0 {
			break
		}
		visited[cur] = true
		for _, nb := range in.Net.Neighbors(cur) {
			if _, inAS := dist[nb]; !inAS {
				continue
			}
			l, ok := in.Net.Link(cur, nb)
			if !ok {
				continue
			}
			if d := curDist + l.Delay.Seconds(); d < dist[nb] {
				dist[nb] = d
				prev[nb] = cur
			}
		}
	}
	return dist, prev, nil
}

// reconstruct walks the Dijkstra predecessor map from dst back to src.
func reconstruct(prev map[netsim.NodeID]netsim.NodeID, src, dst netsim.NodeID) ([]netsim.NodeID, error) {
	if src == dst {
		return []netsim.NodeID{src}, nil
	}
	var rev []netsim.NodeID
	cur := dst
	for cur != src {
		rev = append(rev, cur)
		p, ok := prev[cur]
		if !ok {
			return nil, fmt.Errorf("topology: node %d unreachable from %d", dst, src)
		}
		cur = p
		if len(rev) > len(prev)+1 {
			return nil, fmt.Errorf("topology: predecessor loop at node %d", cur)
		}
	}
	rev = append(rev, src)
	sortReverse(rev)
	return rev, nil
}

func sortReverse(s []netsim.NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func dedupeConsecutive(nodes []netsim.NodeID) []netsim.NodeID {
	out := nodes[:0]
	for i, n := range nodes {
		if i > 0 && out[len(out)-1] == n {
			continue
		}
		out = append(out, n)
	}
	return out
}

// OverlayRoute is a one-hop overlay path through a cloud data center,
// keeping the two segments separate so callers can measure them discretely
// (the paper's "discrete overlay" upper bound) or concatenated.
type OverlayRoute struct {
	// DC is the overlay node (cloud VM host) the route reflects off.
	DC Host
	// ToDC is the default path from the source to the DC.
	ToDC netsim.Path
	// FromDC is the default path from the DC to the destination.
	FromDC netsim.Path
}

// FullPath returns the concatenated source->DC->destination node sequence.
func (o OverlayRoute) FullPath() (netsim.Path, error) {
	return netsim.Concat(o.ToDC, o.FromDC)
}

// OverlayRoute computes the one-hop overlay route from src to dst through
// the data center in the named city.
func (in *Internet) OverlayRoute(src, dst Host, dcCity string) (OverlayRoute, error) {
	dc, ok := in.DCs[dcCity]
	if !ok {
		return OverlayRoute{}, fmt.Errorf("topology: no data center in %q", dcCity)
	}
	toDC, err := in.RouterPath(src, dc)
	if err != nil {
		return OverlayRoute{}, fmt.Errorf("topology: overlay leg %s->%s: %w", src.Name, dc.Name, err)
	}
	fromDC, err := in.RouterPath(dc, dst)
	if err != nil {
		return OverlayRoute{}, fmt.Errorf("topology: overlay leg %s->%s: %w", dc.Name, dst.Name, err)
	}
	return OverlayRoute{DC: dc, ToDC: toDC, FromDC: fromDC}, nil
}

// Traceroute returns the router-level hops of a path, excluding host and
// cloud-VM endpoints — the view a traceroute from inside the transfer would
// produce, and the input to the diversity-score analysis of Section V-A.
func (in *Internet) Traceroute(p netsim.Path) []netsim.NodeID {
	var out []netsim.NodeID
	for _, id := range p.Nodes {
		if in.Net.MustNode(id).Kind == netsim.KindRouter {
			out = append(out, id)
		}
	}
	return out
}

// Hop identifies one traceroute hop the way raw traceroute output does: by
// the router's *inbound interface*, i.e. the (router, previous hop) pair.
// The paper's Section V-A analysis identifies routers "from the traceroute
// output" without alias resolution, so two paths crossing the same
// physical router over different links observe different IP addresses and
// count them as different routers; this type reproduces that measurement
// semantics.
type Hop struct {
	Router netsim.NodeID
	// From is the node the packet arrived from (the interface's far end).
	From netsim.NodeID
}

// TracerouteHops returns the interface-level hops of a path.
func (in *Internet) TracerouteHops(p netsim.Path) []Hop {
	var out []Hop
	for i, id := range p.Nodes {
		if in.Net.MustNode(id).Kind != netsim.KindRouter {
			continue
		}
		var from netsim.NodeID = -1
		if i > 0 {
			from = p.Nodes[i-1]
		}
		out = append(out, Hop{Router: id, From: from})
	}
	return out
}
