package topology

import (
	"container/heap"
	"fmt"
)

// routeKind records how an AS learned its best route to a destination. The
// Gao-Rexford preference order is customer > peer > provider.
type routeKind int

const (
	routeSelf routeKind = iota + 1
	routeCustomer
	routePeer
	routeProvider
)

// preference returns a smaller value for more preferred route kinds.
func (k routeKind) preference() int {
	switch k {
	case routeSelf:
		return 0
	case routeCustomer:
		return 1
	case routePeer:
		return 2
	case routeProvider:
		return 3
	default:
		return 4
	}
}

// routeEntry is an AS's best route toward a destination. nexts holds every
// next-hop ASN tied on (kind, length): real BGP breaks such ties per
// router by IGP distance to the egress (hot-potato), which RouterPath
// implements; the deterministic single next hop used by ASPath is next.
type routeEntry struct {
	next   int // lowest tied next-hop ASN (0 for the destination itself)
	kind   routeKind
	length int   // AS-path length in hops
	nexts  []int // all next hops tied on (kind, length), sorted
}

// sameClass reports whether two routes tie under BGP selection before the
// final deterministic tie-break.
func (a routeEntry) sameClass(b routeEntry) bool {
	return a.kind.preference() == b.kind.preference() && a.length == b.length
}

// better reports whether a beats b under BGP-like selection: route kind
// first, then shorter AS path, then lower next-hop ASN (deterministic
// tiebreak standing in for router-ID comparison).
func (a routeEntry) better(b routeEntry) bool {
	if a.kind.preference() != b.kind.preference() {
		return a.kind.preference() < b.kind.preference()
	}
	if a.length != b.length {
		return a.length < b.length
	}
	return a.next < b.next
}

// routesFor returns (computing and caching on first use) the best route of
// every AS toward destination dst, following the Gao-Rexford export rules:
//
//   - routes learned from customers are exported to everyone;
//   - routes learned from peers or providers are exported only to customers.
//
// The resulting AS paths are therefore valley-free: an uphill
// (customer->provider) prefix, at most one peer edge, then a downhill
// (provider->customer) suffix.
func (in *Internet) routesFor(dst int) (map[int]routeEntry, error) {
	if r, ok := in.routes[dst]; ok {
		return r, nil
	}
	if _, ok := in.asIndex[dst]; !ok {
		return nil, fmt.Errorf("topology: routesFor: no AS %d", dst)
	}
	best := make(map[int]routeEntry, len(in.ASes))
	best[dst] = routeEntry{next: 0, kind: routeSelf, length: 0}

	// consider merges a candidate next hop into the table: strictly better
	// classes replace; ties on (kind, length) accumulate into nexts (the
	// hot-potato candidates). It reports whether the class improved.
	consider := func(asn int, cand routeEntry) bool {
		old, ok := best[asn]
		switch {
		case !ok || betterClass(cand, old):
			cand.nexts = []int{cand.next}
			best[asn] = cand
			return true
		case old.sameClass(cand):
			old.nexts = insertSorted(old.nexts, cand.next)
			if cand.next < old.next {
				old.next = cand.next
			}
			best[asn] = old
		}
		return false
	}

	// Phase 1: customer routes climb provider edges. An AS that reaches dst
	// through a customer chain prefers the shortest such chain.
	frontier := []int{dst}
	for len(frontier) > 0 {
		var next []int
		for _, asn := range frontier {
			cur := best[asn]
			for _, prov := range in.asIndex[asn].Providers {
				cand := routeEntry{next: asn, kind: routeCustomer, length: cur.length + 1}
				if consider(prov, cand) {
					next = append(next, prov)
				}
			}
		}
		frontier = next
	}

	// Phase 2: ASes holding customer (or self) routes advertise them across
	// peering edges. Peer routes do not propagate further sideways.
	type peerCand struct {
		asn  int
		cand routeEntry
	}
	var peerCands []peerCand
	for asn, e := range best {
		if e.kind != routeCustomer && e.kind != routeSelf {
			continue
		}
		for _, peer := range in.asIndex[asn].Peers {
			peerCands = append(peerCands, peerCand{
				asn:  peer,
				cand: routeEntry{next: asn, kind: routePeer, length: e.length + 1},
			})
		}
	}
	for _, pc := range peerCands {
		consider(pc.asn, pc.cand)
	}

	// Phase 3: provider routes descend customer edges. Use a priority queue
	// on path length so each AS settles on its shortest provider route.
	pq := &entryQueue{}
	heap.Init(pq)
	for asn, e := range best {
		heap.Push(pq, queued{asn: asn, entry: e})
	}
	for pq.Len() > 0 {
		q, ok := heap.Pop(pq).(queued)
		if !ok {
			break
		}
		if cur, exists := best[q.asn]; !exists || !cur.sameClass(q.entry) {
			continue // stale queue entry
		}
		for _, cust := range in.asIndex[q.asn].Customers {
			cand := routeEntry{next: q.asn, kind: routeProvider, length: q.entry.length + 1}
			if consider(cust, cand) {
				heap.Push(pq, queued{asn: cust, entry: cand})
			}
		}
	}

	in.routes[dst] = best
	return best, nil
}

// betterClass reports whether a's (kind, length) class strictly beats b's.
func betterClass(a, b routeEntry) bool {
	if a.kind.preference() != b.kind.preference() {
		return a.kind.preference() < b.kind.preference()
	}
	return a.length < b.length
}

// insertSorted adds v to a sorted slice without duplicates.
func insertSorted(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return xs
		}
		if x > v {
			xs = append(xs, 0)
			copy(xs[i+1:], xs[i:])
			xs[i] = v
			return xs
		}
	}
	return append(xs, v)
}

type queued struct {
	asn   int
	entry routeEntry
}

type entryQueue []queued

func (q entryQueue) Len() int { return len(q) }
func (q entryQueue) Less(i, j int) bool {
	if q[i].entry.length != q[j].entry.length {
		return q[i].entry.length < q[j].entry.length
	}
	return q[i].asn < q[j].asn
}
func (q entryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *entryQueue) Push(x any) {
	item, ok := x.(queued)
	if !ok {
		return
	}
	*q = append(*q, item)
}
func (q *entryQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ASPath returns the AS-level default route from src to dst (inclusive of
// both), as selected by the valley-free decision process.
func (in *Internet) ASPath(src, dst int) ([]int, error) {
	if src == dst {
		return []int{src}, nil
	}
	routes, err := in.routesFor(dst)
	if err != nil {
		return nil, err
	}
	path := []int{src}
	cur := src
	for cur != dst {
		e, ok := routes[cur]
		if !ok {
			return nil, fmt.Errorf("topology: AS %d has no route to %d", src, dst)
		}
		cur = e.next
		path = append(path, cur)
		if len(path) > len(in.ASes)+1 {
			return nil, fmt.Errorf("topology: routing loop from %d to %d", src, dst)
		}
	}
	return path, nil
}

// IsValleyFree reports whether the AS path respects Gao-Rexford export
// rules given the business relationships in the topology: some uphill
// customer->provider hops, at most one peer hop, then downhill.
func (in *Internet) IsValleyFree(asPath []int) bool {
	const (
		stageUp = iota
		stageDown
	)
	stage := stageUp
	peersUsed := 0
	for i := 1; i < len(asPath); i++ {
		rel, ok := in.relationship(asPath[i-1], asPath[i])
		if !ok {
			return false
		}
		switch rel {
		case hopUp:
			if stage != stageUp || peersUsed > 0 {
				return false
			}
		case hopPeer:
			peersUsed++
			if stage != stageUp || peersUsed > 1 {
				return false
			}
			stage = stageDown
		case hopDown:
			stage = stageDown
		}
	}
	return true
}

type hopRel int

const (
	hopUp   hopRel = iota + 1 // customer -> provider
	hopDown                   // provider -> customer
	hopPeer
)

func (in *Internet) relationship(from, to int) (hopRel, bool) {
	a, ok := in.asIndex[from]
	if !ok {
		return 0, false
	}
	for _, p := range a.Providers {
		if p == to {
			return hopUp, true
		}
	}
	for _, c := range a.Customers {
		if c == to {
			return hopDown, true
		}
	}
	for _, p := range a.Peers {
		if p == to {
			return hopPeer, true
		}
	}
	return 0, false
}
