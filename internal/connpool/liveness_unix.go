//go:build unix

package connpool

import (
	"net"
	"syscall"
)

// rawAlive liveness-checks a socket with a non-blocking MSG_PEEK: a
// pending FIN (recv returns 0), a pending error (RST), or a readable
// byte all mean the warm leg is unusable; EAGAIN means the socket is
// quiet and healthy. checked is false when the conn does not expose a
// raw descriptor (wrapped conns in tests) — the caller falls back to the
// deadline probe.
func rawAlive(c net.Conn) (alive, checked bool) {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return false, false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false, false
	}
	if err := rc.Read(func(fd uintptr) bool {
		var b [1]byte
		n, _, errno := syscall.Recvfrom(int(fd), b[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case errno == syscall.EAGAIN || errno == syscall.EWOULDBLOCK:
			alive = true
		case errno == nil && n > 0:
			alive = false // relay spoke before CONNECT: poisoned
		default:
			alive = false // EOF (n==0) or a hard error
		}
		return true // never park: this probe must not block
	}); err != nil {
		return false, true
	}
	return alive, true
}
