//go:build !unix

package connpool

import "net"

// rawAlive is unavailable off-Unix; the deadline probe handles liveness.
func rawAlive(net.Conn) (alive, checked bool) { return false, false }
