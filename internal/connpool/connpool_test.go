package connpool

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

// acceptServer accepts and holds connections like a CONNECT-mode relay
// waiting for a preamble, exposing them so tests can kill the relay side.
type acceptServer struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func newAcceptServer(t *testing.T) *acceptServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &acceptServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
	})
	return s
}

func (s *acceptServer) addr() string { return s.ln.Addr().String() }

// closeAll closes every accepted connection — the relay restarting out
// from under its warm legs.
func (s *acceptServer) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
	s.conns = nil
}

// fakeRanker is a mutable synthetic control-plane view.
type fakeRanker struct {
	mu     sync.Mutex
	best   pathmon.Route
	chosen bool
	table  []pathmon.RouteStatus
	subs   []chan struct{}
}

func (f *fakeRanker) Best() (pathmon.Route, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.best, f.chosen
}

func (f *fakeRanker) Ranked() []pathmon.RouteStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]pathmon.RouteStatus(nil), f.table...)
}

func (f *fakeRanker) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	f.mu.Lock()
	f.subs = append(f.subs, ch)
	f.mu.Unlock()
	return ch, func() {}
}

// set swaps the ranking and wakes subscribers, like integrate does.
func (f *fakeRanker) set(best pathmon.Route, chosen bool, table []pathmon.RouteStatus) {
	f.mu.Lock()
	f.best, f.chosen, f.table = best, chosen, table
	subs := append([]chan struct{}(nil), f.subs...)
	f.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func relayStatus(addr string, down bool) pathmon.RouteStatus {
	return pathmon.RouteStatus{Route: pathmon.MakeRoute(addr), Down: down}
}

// waitIdle polls until relayAddr has exactly want warm connections.
func waitIdle(t *testing.T, p *Pool, relayAddr string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Idle(relayAddr) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("idle(%s) = %d, want %d", relayAddr, p.Idle(relayAddr), want)
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name, "").Value()
}

func TestStaticWarmAndCheckout(t *testing.T) {
	srv := newAcceptServer(t)
	reg := obs.NewRegistry()
	p := New(Config{Relays: []string{srv.addr()}, SizePerRelay: 2, Obs: reg})
	defer p.Close()
	waitIdle(t, p, srv.addr(), 2)

	conn, ok := p.Get(srv.addr())
	if !ok {
		t.Fatal("checkout missed on a warmed pool")
	}
	defer conn.Close()
	if got := counter(reg, "cronets_connpool_hits_total"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	// The checkout kicked the filler: the pool re-warms to target.
	waitIdle(t, p, srv.addr(), 2)
}

func TestMissOnEmptyPool(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Config{Relays: []string{"127.0.0.1:1"}, Obs: reg,
		FillInterval: time.Hour, DialTimeout: 100 * time.Millisecond})
	defer p.Close()

	if _, ok := p.Get("127.0.0.1:9"); ok {
		t.Fatal("checkout hit on a relay the pool never warmed")
	}
	if got := counter(reg, "cronets_connpool_misses_total"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	// The dead static relay's failed warm dials are counted.
	deadline := time.Now().Add(5 * time.Second)
	for counter(reg, "cronets_connpool_fill_errors_total") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if counter(reg, "cronets_connpool_fill_errors_total") == 0 {
		t.Error("no fill_errors recorded for an unreachable relay")
	}
}

func TestExpiryRetiresOldConns(t *testing.T) {
	srv := newAcceptServer(t)
	reg := obs.NewRegistry()
	p := New(Config{Relays: []string{srv.addr()}, SizePerRelay: 1,
		IdleTTL: 50 * time.Millisecond, FillInterval: 10 * time.Millisecond, Obs: reg})
	defer p.Close()
	waitIdle(t, p, srv.addr(), 1)

	// The filler must rotate conns out at TTL and replace them.
	deadline := time.Now().Add(5 * time.Second)
	for counter(reg, "cronets_connpool_expired_total") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if counter(reg, "cronets_connpool_expired_total") == 0 {
		t.Fatal("no conns expired past IdleTTL")
	}
	waitIdle(t, p, srv.addr(), 1)
}

func TestExpiryAtCheckout(t *testing.T) {
	srv := newAcceptServer(t)
	reg := obs.NewRegistry()
	// FillInterval huge: only Get's own TTL check can retire the conn.
	p := New(Config{Relays: []string{srv.addr()}, SizePerRelay: 1,
		IdleTTL: 30 * time.Millisecond, FillInterval: time.Hour, Obs: reg})
	defer p.Close()
	waitIdle(t, p, srv.addr(), 1)

	time.Sleep(60 * time.Millisecond)
	if _, ok := p.Get(srv.addr()); ok {
		t.Fatal("checkout handed out a conn past its IdleTTL")
	}
	if got := counter(reg, "cronets_connpool_expired_total"); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
}

func TestDeadConnDetectedAtCheckout(t *testing.T) {
	srv := newAcceptServer(t)
	reg := obs.NewRegistry()
	p := New(Config{Relays: []string{srv.addr()}, SizePerRelay: 2,
		FillInterval: time.Hour, Obs: reg})
	defer p.Close()
	waitIdle(t, p, srv.addr(), 2)

	// Relay restarts: every warm leg is dead, but the FINs are still in
	// flight from the pool's point of view.
	srv.closeAll()
	time.Sleep(20 * time.Millisecond)

	if _, ok := p.Get(srv.addr()); ok {
		t.Fatal("checkout handed out a dead connection")
	}
	if got := counter(reg, "cronets_connpool_expired_total"); got != 2 {
		t.Errorf("expired = %d, want 2 (both dead conns retired)", got)
	}
	if got := counter(reg, "cronets_connpool_hits_total"); got != 0 {
		t.Errorf("hits = %d, want 0", got)
	}
}

func TestRankingDrivenResize(t *testing.T) {
	srvA := newAcceptServer(t)
	srvB := newAcceptServer(t)
	rk := &fakeRanker{}
	rk.set(pathmon.MakeRoute(srvA.addr()), true, []pathmon.RouteStatus{
		relayStatus(srvA.addr(), false),
		relayStatus(srvB.addr(), false),
	})
	p := New(Config{Ranker: rk, SizePerRelay: 2, TopK: 1,
		FillInterval: time.Hour})
	defer p.Close()

	// Only the top-1 relay (A) is warmed.
	waitIdle(t, p, srvA.addr(), 2)
	waitIdle(t, p, srvB.addr(), 0)

	// The ranking flips: B leads, A demoted out of the top-K. The
	// subscription wakes the filler — A's idle conns drain, B warms.
	rk.set(pathmon.MakeRoute(srvB.addr()), true, []pathmon.RouteStatus{
		relayStatus(srvB.addr(), false),
		relayStatus(srvA.addr(), false),
	})
	waitIdle(t, p, srvB.addr(), 2)
	waitIdle(t, p, srvA.addr(), 0)
}

func TestBestPathAlwaysWarmedEvenIfDownRanked(t *testing.T) {
	srv := newAcceptServer(t)
	rk := &fakeRanker{}
	// Pinned best relay that the ranking calls Down (no probe samples
	// yet): the pool still warms it — traffic is about to use it.
	rk.set(pathmon.MakeRoute(srv.addr()), true, []pathmon.RouteStatus{
		relayStatus(srv.addr(), true),
	})
	p := New(Config{Ranker: rk, SizePerRelay: 1, FillInterval: time.Hour})
	defer p.Close()
	waitIdle(t, p, srv.addr(), 1)
}

func TestConcurrentCheckout(t *testing.T) {
	srv := newAcceptServer(t)
	reg := obs.NewRegistry()
	const size = 8
	p := New(Config{Relays: []string{srv.addr()}, SizePerRelay: size,
		FillInterval: time.Hour, Obs: reg})
	defer p.Close()
	waitIdle(t, p, srv.addr(), size)

	// 4x more checkouts than warm conns, all at once: every warm conn is
	// handed out exactly once (no double-checkout), the rest miss.
	var wg sync.WaitGroup
	var hits, misses int64
	var mu sync.Mutex
	conns := make([]net.Conn, 0, size)
	for i := 0; i < 4*size; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, ok := p.Get(srv.addr())
			mu.Lock()
			defer mu.Unlock()
			if ok {
				hits++
				conns = append(conns, conn)
			} else {
				misses++
			}
		}()
	}
	wg.Wait()
	for _, c := range conns {
		_ = c.Close()
	}
	if hits != size {
		t.Errorf("hits = %d, want %d", hits, size)
	}
	if misses != 3*size {
		t.Errorf("misses = %d, want %d", misses, 3*size)
	}
	if got := counter(reg, "cronets_connpool_hits_total"); got != size {
		t.Errorf("hits counter = %d, want %d", got, size)
	}
}

func TestCloseRetiresEverything(t *testing.T) {
	srv := newAcceptServer(t)
	p := New(Config{Relays: []string{srv.addr()}, SizePerRelay: 3,
		FillInterval: time.Hour})
	waitIdle(t, p, srv.addr(), 3)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.TotalIdle(); got != 0 {
		t.Errorf("TotalIdle = %d after Close, want 0", got)
	}
	if _, ok := p.Get(srv.addr()); ok {
		t.Error("checkout succeeded on a closed pool")
	}
	// Idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// slowClockDialer advances a fake clock inside every dial, simulating a
// warm dial that takes `delay` of simulated time to connect.
type slowClockDialer struct {
	inner   relay.Dialer
	advance func(time.Duration)
	delay   time.Duration
}

func (d *slowClockDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.advance(d.delay)
	return d.inner.DialContext(ctx, network, addr)
}

// TestIdleTTLMeasuredFromParkTime pins the IdleTTL semantics: expiry is
// measured from the instant a connection is parked in the pool, not from
// when its warm dial started — a slow dial must not hand the pool a
// connection that is already half-expired. (Checkouts never return
// connections to the pool, so park age and idle age are the same thing;
// this test is the contract for that equivalence.)
func TestIdleTTLMeasuredFromParkTime(t *testing.T) {
	srv := newAcceptServer(t)
	reg := obs.NewRegistry()

	now := time.Unix(1000, 0)
	adv := func(d time.Duration) { now = now.Add(d) }
	p := newPool(Config{
		Relays: []string{srv.addr()}, SizePerRelay: 1, IdleTTL: time.Minute,
		Dialer: &slowClockDialer{inner: &net.Dialer{}, advance: adv, delay: 45 * time.Second},
		Obs:    reg,
	})
	defer p.Close()
	p.now = func() time.Time { return now }

	// The warm dial "takes" 45 simulated seconds before the conn parks.
	p.Fill()
	if got := p.Idle(srv.addr()); got != 1 {
		t.Fatalf("idle = %d after fill, want 1", got)
	}

	// 30 s of idleness: well under the 60 s TTL, even though 75 s have
	// passed since the dial started. Dial-start-age expiry would wrongly
	// retire the conn here.
	adv(30 * time.Second)
	conn, ok := p.Get(srv.addr())
	if !ok {
		t.Fatal("checkout expired a conn idle only 30s (TTL 60s) — expiry counted dial time")
	}
	_ = conn.Close()

	// Refill and idle past the TTL: now checkout must retire it.
	p.Fill()
	adv(61 * time.Second)
	if _, ok := p.Get(srv.addr()); ok {
		t.Fatal("checkout handed out a conn idle past IdleTTL")
	}
	if got := counter(reg, "cronets_connpool_expired_total"); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}

	// The filler's own pass expires by the same park-time rule.
	p.Fill() // parks a fresh conn (deficit of 1)
	adv(61 * time.Second)
	p.Fill()
	if got := counter(reg, "cronets_connpool_expired_total"); got != 2 {
		t.Errorf("expired = %d after fill-pass TTL sweep, want 2", got)
	}
}
