// Package connpool keeps a per-relay pool of pre-established,
// health-checked TCP connections so a gateway can send the CONNECT
// preamble on an already-open socket. Cold overlay connection setup costs
// two sequential round trips on the client->relay leg (TCP handshake,
// then CONNECT -> OK); a warm checkout pays only the second — the
// dominant term in short-flow TTFB, which is exactly where CRONets'
// split-TCP gains show up (PAPER.md Fig. 9).
//
// The pool follows the control plane: a background filler keeps the
// top-K ranked relays (plus the committed best path) warmed, re-warms a
// relay after every checkout, and lets a demoted relay's idle
// connections drain. Every pooled connection is liveness-checked with an
// expired-deadline zero-byte read before handout, so a relay restart
// costs a pool miss, never a broken flow. With no pool (or an empty
// one) callers fall back to a cold dial — behaviour is byte-identical,
// just one round trip slower.
package connpool

import (
	"context"
	"errors"
	"net"
	"strconv"
	"sync"
	"time"

	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

// Ranker supplies the control-plane view the filler follows. It is
// satisfied by *pathmon.Monitor; tests substitute synthetic rankings.
type Ranker interface {
	// Best returns the committed best route (false before the first
	// usable round).
	Best() (pathmon.Route, bool)
	// Ranked returns the current route table sorted best-first.
	Ranked() []pathmon.RouteStatus
	// Subscribe returns a coalesced ranking-change wakeup channel and an
	// unsubscribe func.
	Subscribe() (<-chan struct{}, func())
}

// Config parameterizes a Pool.
type Config struct {
	// SizePerRelay is the warm-connection target per warmed relay
	// (default 2).
	SizePerRelay int
	// TopK is how many of the top-ranked usable relays stay warmed
	// (default 2). The committed best path's relay is always warmed,
	// pinned or ranked.
	TopK int
	// IdleTTL is the maximum idle age of a pooled connection before the
	// pool retires it (default 60 s). Idle age is measured from the
	// moment the connection was parked in the pool (not from when the
	// dial started), and a checkout permanently removes the connection
	// from the pool — there is no put-back path, so a connection idles
	// exactly once and idle age equals pool-resident age. Keep the TTL
	// under the relay fleet's pre-CONNECT tolerance (the relay side
	// allows its IdleTimeout, 5 min by default).
	IdleTTL time.Duration
	// FillInterval is the background filler period — the TTL-expiry and
	// re-warm cadence between ranking wakeups (default 1 s).
	FillInterval time.Duration
	// DialTimeout bounds each warm dial (default 5 s).
	DialTimeout time.Duration
	// Ranker supplies relay rankings (usually the *pathmon.Monitor).
	// With a nil Ranker the static Relays list below is warmed instead.
	Ranker Ranker
	// Relays is the static warm set used when Ranker is nil: the first
	// TopK entries are kept warm.
	Relays []string
	// Dialer overrides the relay dialer (tests).
	Dialer relay.Dialer
	// Obs receives the pool's metrics and events (nil disables
	// instrumentation).
	Obs *obs.Registry
}

// Pool is a per-relay warm-connection pool. All methods are safe for
// concurrent use.
type Pool struct {
	cfg Config
	// now is the clock, injectable by TTL tests.
	now func() time.Time

	hits       *obs.Counter
	misses     *obs.Counter
	expired    *obs.Counter
	fillErrors *obs.Counter
	scope      *obs.Scope

	mu     sync.Mutex
	idle   map[string][]*pooledConn // per-relay LIFO stacks, newest last
	closed bool

	fillc chan struct{} // coalesced filler kicks (checkout, miss)
	stopc chan struct{}
	wg    sync.WaitGroup
}

// pooledConn is one warm socket plus the instant it was parked in the
// pool, from which IdleTTL expiry is measured. Checkouts remove the
// connection for good (flows own their sockets; nothing is put back), so
// time-since-parkedAt is both the idle age and the total pool-resident
// age — one timestamp serves both readings.
type pooledConn struct {
	conn     net.Conn
	parkedAt time.Time
}

// New creates a Pool and starts its background filler (which immediately
// runs one warming pass). Close releases everything.
func New(cfg Config) *Pool {
	p := newPool(cfg)
	p.wg.Add(1)
	go p.filler()
	return p
}

// newPool builds a Pool without starting the background filler — tests
// drive Fill directly under an injected clock.
func newPool(cfg Config) *Pool {
	if cfg.SizePerRelay <= 0 {
		cfg.SizePerRelay = 2
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 2
	}
	if cfg.IdleTTL <= 0 {
		cfg.IdleTTL = 60 * time.Second
	}
	if cfg.FillInterval <= 0 {
		cfg.FillInterval = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{}
	}
	p := &Pool{
		cfg:   cfg,
		now:   time.Now,
		idle:  make(map[string][]*pooledConn),
		fillc: make(chan struct{}, 1),
		stopc: make(chan struct{}),
	}
	p.instrument(cfg.Obs)
	return p
}

func (p *Pool) instrument(reg *obs.Registry) {
	p.scope = reg.Scope("connpool")
	p.hits = reg.Counter("cronets_connpool_hits_total",
		"Checkouts served from a warm pooled connection.")
	p.misses = reg.Counter("cronets_connpool_misses_total",
		"Checkouts that found no usable pooled connection (cold-dial fallback).")
	p.expired = reg.Counter("cronets_connpool_expired_total",
		"Pooled connections retired: TTL expiry, failed liveness check, or drain of a demoted relay.")
	p.fillErrors = reg.Counter("cronets_connpool_fill_errors_total",
		"Warm dials that failed during a fill pass.")
	reg.GaugeFunc("cronets_connpool_size",
		"Warm connections currently pooled across all relays.",
		func() int64 { return int64(p.TotalIdle()) })
}

// Get checks out one warm connection to relayAddr, health-checking each
// candidate before handout (newest first) and retiring expired or dead
// ones. ok is false when nothing usable is pooled — the caller cold-dials
// and the filler is kicked so the next flow finds a warm leg.
func (p *Pool) Get(relayAddr string) (net.Conn, bool) {
	for {
		p.mu.Lock()
		stack := p.idle[relayAddr]
		if len(stack) == 0 {
			p.mu.Unlock()
			p.misses.Inc()
			p.kick()
			return nil, false
		}
		pc := stack[len(stack)-1]
		stack[len(stack)-1] = nil
		p.idle[relayAddr] = stack[:len(stack)-1]
		p.mu.Unlock()

		if p.now().Sub(pc.parkedAt) > p.cfg.IdleTTL || !alive(pc.conn) {
			_ = pc.conn.Close()
			p.expired.Inc()
			continue
		}
		p.hits.Inc()
		p.kick()
		return pc.conn, true
	}
}

// Idle returns the number of warm connections pooled for relayAddr.
func (p *Pool) Idle(relayAddr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[relayAddr])
}

// TotalIdle returns the number of warm connections pooled across relays.
func (p *Pool) TotalIdle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, stack := range p.idle {
		n += len(stack)
	}
	return n
}

// Close retires every pooled connection and stops the filler.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var all []*pooledConn
	for _, stack := range p.idle {
		all = append(all, stack...)
	}
	p.idle = make(map[string][]*pooledConn)
	p.mu.Unlock()
	close(p.stopc)
	for _, pc := range all {
		_ = pc.conn.Close()
	}
	p.wg.Wait()
	return nil
}

// kick wakes the filler without blocking (coalesced).
func (p *Pool) kick() {
	select {
	case p.fillc <- struct{}{}:
	default:
	}
}

// filler is the background warming loop: it re-fills on checkout kicks,
// ranking-change wakeups, and a steady FillInterval tick (which also
// drives TTL expiry of untouched connections).
func (p *Pool) filler() {
	defer p.wg.Done()
	var rankc <-chan struct{}
	if p.cfg.Ranker != nil {
		ch, unsub := p.cfg.Ranker.Subscribe()
		defer unsub()
		rankc = ch
	}
	t := time.NewTicker(p.cfg.FillInterval)
	defer t.Stop()
	p.Fill()
	for {
		select {
		case <-p.stopc:
			return
		case <-t.C:
		case <-p.fillc:
		case <-rankc:
		}
		p.Fill()
	}
}

// Fill runs one synchronous warming pass: compute the target set from
// the ranking, drain demoted relays and expired connections, then dial
// the deficits. Exported for deterministic warm-up (tests, benchmarks,
// pre-serving warm-up); the background filler calls it on its own
// cadence.
func (p *Pool) Fill() {
	targets := p.targets()

	// Phase 1 (under the lock): expire by TTL and drain relays that fell
	// out of the target set. Connections are closed outside the lock.
	var retire []*pooledConn
	now := p.now()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	for addr, stack := range p.idle {
		keep := stack[:0]
		_, wanted := targets[addr]
		for _, pc := range stack {
			if !wanted || now.Sub(pc.parkedAt) > p.cfg.IdleTTL {
				retire = append(retire, pc)
			} else {
				keep = append(keep, pc)
			}
		}
		if len(keep) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = keep
		}
	}
	deficits := make(map[string]int, len(targets))
	for addr, want := range targets {
		if have := len(p.idle[addr]); have < want {
			deficits[addr] = want - have
		}
	}
	p.mu.Unlock()
	for _, pc := range retire {
		_ = pc.conn.Close()
		p.expired.Inc()
	}
	if len(retire) > 0 {
		p.scope.Event(obs.EventPoolDrain,
			"retired "+strconv.Itoa(len(retire))+" conn(s)")
	}

	// Phase 2 (no lock): dial the deficits. One failure per relay per
	// pass — a down relay costs one probe, not SizePerRelay timeouts.
	for addr, n := range deficits {
		for i := 0; i < n; i++ {
			conn, err := p.warmDial(addr)
			if err != nil {
				p.fillErrors.Inc()
				p.scope.Event(obs.EventPoolWarm, "fail "+addr+": "+err.Error())
				break
			}
			if !p.put(addr, conn, targets) {
				return
			}
		}
	}
}

// warmDial opens one raw TCP connection to a relay (no preamble — the
// CONNECT handshake happens at checkout, on the flow's behalf).
func (p *Pool) warmDial(addr string) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.DialTimeout)
	defer cancel()
	return p.cfg.Dialer.DialContext(ctx, "tcp", addr)
}

// put parks a freshly dialed connection, re-validating that the pool is
// still open and the relay still wanted (the ranking may have moved while
// the dial was in flight). Returns false when the pool has closed.
func (p *Pool) put(addr string, conn net.Conn, targets map[string]int) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return false
	}
	if want := targets[addr]; len(p.idle[addr]) >= want {
		p.mu.Unlock()
		_ = conn.Close()
		return true
	}
	p.idle[addr] = append(p.idle[addr], &pooledConn{conn: conn, parkedAt: p.now()})
	p.mu.Unlock()
	p.scope.Event(obs.EventPoolWarm, "ok "+addr)
	return true
}

// targets computes the warm set: the committed best path's relay plus
// the top-K usable ranked relays, each at SizePerRelay — so pool sizes
// follow the ranking and a demoted relay's idle connections drain.
// Without a Ranker, the first TopK static Relays are warmed.
func (p *Pool) targets() map[string]int {
	out := make(map[string]int)
	if p.cfg.Ranker == nil {
		for i, addr := range p.cfg.Relays {
			if i >= p.cfg.TopK {
				break
			}
			out[addr] = p.cfg.SizePerRelay
		}
		return out
	}
	if best, ok := p.cfg.Ranker.Best(); ok && !best.IsDirect() {
		// Warming a route's first hop makes a pooled dial pay only the
		// per-hop CONNECT round trips, whatever the route's depth.
		out[best.First()] = p.cfg.SizePerRelay
	}
	ranked := 0
	seen := make(map[string]bool)
	for _, st := range p.cfg.Ranker.Ranked() {
		if ranked >= p.cfg.TopK {
			break
		}
		if st.Route.IsDirect() || st.Down {
			continue
		}
		if seen[st.Route.First()] {
			// Routes sharing a first hop (a single-hop path and the chains
			// extending it, or two chains through the same entry relay)
			// warm one endpoint; don't let the duplicate burn a second
			// TopK slot.
			continue
		}
		seen[st.Route.First()] = true
		out[st.Route.First()] = p.cfg.SizePerRelay
		ranked++
	}
	return out
}

// alive liveness-checks a pooled connection before handout. A healthy
// pre-CONNECT socket has nothing to send, so a pending FIN/RST (a
// restarted relay) or any readable byte (a protocol violation) retires
// it. On Unix the check is a non-blocking MSG_PEEK — zero added latency.
// Elsewhere it degrades to a zero-byte read under a near-expired
// deadline: Go short-circuits reads under an already-expired deadline
// before the syscall (verified empirically — a pending FIN goes unseen),
// so the deadline must sit just far enough ahead that the read syscall
// actually runs.
func alive(c net.Conn) bool {
	if ok, checked := rawAlive(c); checked {
		return ok
	}
	return deadlineAlive(c)
}

// deadlineAlive is the portable liveness fallback: a 1-byte read under a
// 1 ms deadline. Healthy sockets pay the full 1 ms (the read parks until
// the deadline), which is noise against a WAN RTT but real on loopback —
// hence the MSG_PEEK fast path above.
func deadlineAlive(c net.Conn) bool {
	if err := c.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		return false
	}
	var b [1]byte
	n, err := c.Read(b[:])
	if n > 0 || !isTimeout(err) {
		return false
	}
	return c.SetReadDeadline(time.Time{}) == nil
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
