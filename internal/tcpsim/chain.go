package tcpsim

import (
	"errors"
	"math"
	"math/rand"
	"time"
)

// RunSplitChain simulates a multi-hop split-TCP transfer: the connection is
// terminated and re-originated at every relay, giving n segments each with
// its own congestion-control loop, coupled through finite relay buffers.
// With two segments it is equivalent to RunSplit; with more it answers the
// paper's Section VII-B question (can multi-hop overlay paths with several
// TCP splits help further?).
func RunSplitChain(rng *rand.Rand, segments []PathFunc, cfg SplitConfig, spec Spec) (Result, error) {
	if len(segments) == 0 {
		return Result{}, errors.New("tcpsim: split chain needs at least one segment")
	}
	if spec.Duration <= 0 && spec.TransferBytes <= 0 {
		return Result{}, ErrSpec
	}
	if len(segments) == 1 {
		return Run(rng, segments[0], cfg.Flow, spec)
	}
	if cfg.RelayBufferBytes <= 0 {
		cfg.RelayBufferBytes = 4 << 20
	}
	n := len(segments)
	mss := int64(cfg.Flow.MSSBytes)

	flows := make([]*flow, n)
	times := make([]time.Duration, n)
	for i := range flows {
		flows[i] = newFlow(cfg.Flow)
	}
	// buffers[i] holds bytes relayed from segment i awaiting segment i+1.
	buffers := make([]int64, n-1)
	var (
		srcSent   int64
		delivered int64
		rounds    int
	)
	done := func() bool {
		if spec.TransferBytes > 0 && delivered >= spec.TransferBytes {
			return true
		}
		if spec.Duration > 0 {
			for _, t := range times {
				if t < spec.Duration {
					return false
				}
			}
			return true
		}
		return false
	}
	// idleBump advances an idle segment's clock to the earliest other
	// segment ahead of it (or by a millisecond when it already leads).
	idleBump := func(i int) {
		var ahead time.Duration = -1
		for j, t := range times {
			if j != i && t > times[i] && (ahead < 0 || t < ahead) {
				ahead = t
			}
		}
		if ahead > times[i] {
			times[i] = ahead
		} else {
			times[i] += time.Millisecond
		}
	}
	for !done() {
		rounds++
		if rounds > 20_000_000 {
			return Result{}, errors.New("tcpsim: split chain did not terminate")
		}
		// Advance the segment earliest in simulated time.
		i := 0
		for j := 1; j < n; j++ {
			if times[j] < times[i] {
				i = j
			}
		}
		if spec.Duration > 0 && times[i] >= spec.Duration {
			times[i] += time.Millisecond
			continue
		}
		limit := math.Inf(1)
		if i > 0 {
			// Middle/last segments draw from the upstream buffer.
			avail := math.Floor(float64(buffers[i-1]) / float64(mss))
			if avail < 1 {
				idleBump(i)
				continue
			}
			limit = avail
		}
		if i < n-1 {
			// All but the last segment push into a downstream buffer.
			free := math.Floor(float64(cfg.RelayBufferBytes-buffers[i]) / float64(mss))
			if free < 1 {
				idleBump(i)
				continue
			}
			limit = math.Min(limit, free)
		}
		if i == 0 && spec.TransferBytes > 0 {
			remaining := math.Ceil(float64(spec.TransferBytes-srcSent) / float64(mss))
			if remaining <= 0 {
				idleBump(i)
				continue
			}
			limit = math.Min(limit, remaining)
		}
		lim := -1.0
		if !math.IsInf(limit, 1) {
			lim = limit
		}
		out := flows[i].step(rng, segments[i](times[i]), times[i], lim)
		got := int64(out.delivered) * mss
		if i > 0 {
			buffers[i-1] -= got
			if buffers[i-1] < 0 {
				buffers[i-1] = 0
			}
		} else {
			srcSent += got
		}
		if i < n-1 {
			buffers[i] += got
		} else {
			delivered += got
		}
		times[i] += out.rtt
		if out.timeout {
			times[i] += rtoFor(out.rtt, cfg.Flow.MinRTO)
		}
	}
	elapsed := times[n-1]
	if spec.Duration > 0 && elapsed > spec.Duration {
		elapsed = spec.Duration
	}
	res := Result{Bytes: delivered, Elapsed: elapsed, Rounds: rounds}
	if elapsed > 0 {
		res.ThroughputMbps = float64(delivered) * 8 / elapsed.Seconds() / 1e6
	}
	var sent, lost, rttSum, rttW float64
	for _, f := range flows {
		sent += f.sentPkts
		lost += f.lostPkts
		res.Timeouts += f.timeouts
		if f.rttWeight > 0 {
			rttSum += f.rttSum / f.rttWeight
			rttW++
		}
	}
	if sent > 0 {
		res.RetransRate = lost / sent
	}
	res.AvgRTT = time.Duration(rttSum * float64(time.Second))
	return res, nil
}
