package tcpsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cronets/internal/netsim"
)

func metrics(rttMs float64, loss, availMbps float64) netsim.Metrics {
	return netsim.Metrics{
		BaseRTT:        time.Duration(rttMs * float64(time.Millisecond)),
		LossRate:       loss,
		BottleneckMbps: availMbps,
		AvailableMbps:  availMbps,
		Hops:           5,
	}
}

func runOnce(t *testing.T, m netsim.Metrics, seed int64) Result {
	t.Helper()
	res, err := Run(rand.New(rand.NewSource(seed)), StaticPath(m), DefaultConfig(),
		Spec{Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpecRequired(t *testing.T) {
	_, err := Run(rand.New(rand.NewSource(1)), StaticPath(metrics(50, 0, 100)), DefaultConfig(), Spec{})
	if err != ErrSpec {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}

func TestCleanPathApproachesCapacity(t *testing.T) {
	res := runOnce(t, metrics(20, 0, 100), 1)
	if res.ThroughputMbps < 70 || res.ThroughputMbps > 105 {
		t.Errorf("clean 100 Mbps path at 20ms: %v Mbps", res.ThroughputMbps)
	}
	if res.RetransRate > 1e-3 {
		t.Errorf("clean path retx = %v", res.RetransRate)
	}
}

// TestMathisLossScaling: throughput should fall roughly as 1/sqrt(p).
func TestMathisLossScaling(t *testing.T) {
	lo := runOnce(t, metrics(100, 1e-4, 1000), 1)
	hi := runOnce(t, metrics(100, 4e-4, 1000), 1)
	ratio := lo.ThroughputMbps / hi.ThroughputMbps
	// 4x loss -> ~2x lower throughput; allow generous tolerance.
	if ratio < 1.4 || ratio > 3.0 {
		t.Errorf("1e-4 vs 4e-4 loss: ratio %v (lo=%v hi=%v), want ~2",
			ratio, lo.ThroughputMbps, hi.ThroughputMbps)
	}
}

// TestMathisRTTScaling: with Reno, at fixed loss, throughput falls roughly
// as 1/RTT (the Mathis model). CUBIC is deliberately less RTT-sensitive, so
// this test pins the algorithm.
func TestMathisRTTScaling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alg = Reno
	spec := Spec{Duration: 30 * time.Second}
	fast, err := Run(rand.New(rand.NewSource(3)), StaticPath(metrics(50, 2e-4, 1000)), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(rand.New(rand.NewSource(3)), StaticPath(metrics(200, 2e-4, 1000)), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	ratio := fast.ThroughputMbps / slow.ThroughputMbps
	if ratio < 2.0 || ratio > 8.0 {
		t.Errorf("50ms vs 200ms RTT: ratio %v (fast=%v slow=%v), want ~4",
			ratio, fast.ThroughputMbps, slow.ThroughputMbps)
	}
}

func TestReceiveWindowCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCwnd = 100 // 100 pkts x 1460 B at 100ms -> ~11.7 Mbps
	res, err := Run(rand.New(rand.NewSource(1)), StaticPath(metrics(100, 0, 1000)), cfg,
		Spec{Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cap := 100 * 1460 * 8 / 0.1 / 1e6
	if res.ThroughputMbps > cap*1.05 {
		t.Errorf("throughput %v exceeds rwnd cap %v", res.ThroughputMbps, cap)
	}
	if res.ThroughputMbps < cap*0.7 {
		t.Errorf("throughput %v far below rwnd cap %v", res.ThroughputMbps, cap)
	}
}

func TestTransferSpec(t *testing.T) {
	const size = 10 << 20
	res, err := Run(rand.New(rand.NewSource(1)), StaticPath(metrics(30, 1e-5, 100)),
		DefaultConfig(), Spec{TransferBytes: size})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes < size {
		t.Errorf("transferred %d bytes, want >= %d", res.Bytes, size)
	}
	// Should not overshoot by more than a window's worth of data.
	if res.Bytes > size+(1<<21) {
		t.Errorf("transferred %d bytes, overshoot too large", res.Bytes)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestDurationSpecElapsed(t *testing.T) {
	res := runOnce(t, metrics(50, 1e-4, 100), 9)
	if res.Elapsed < 30*time.Second {
		t.Errorf("elapsed = %v, want >= 30s", res.Elapsed)
	}
	if res.Elapsed > 40*time.Second {
		t.Errorf("elapsed = %v, way past the duration limit", res.Elapsed)
	}
}

func TestHighLossCausesTimeouts(t *testing.T) {
	res := runOnce(t, metrics(100, 0.3, 100), 5)
	if res.Timeouts == 0 {
		t.Error("30% loss should cause timeouts")
	}
	if res.ThroughputMbps > 1 {
		t.Errorf("throughput at 30%% loss = %v Mbps, should be tiny", res.ThroughputMbps)
	}
}

func TestAvgRTTIncludesQueueing(t *testing.T) {
	m := metrics(50, 0, 10) // thin path: self-queueing expected
	res := runOnce(t, m, 2)
	if res.AvgRTT < 50*time.Millisecond {
		t.Errorf("AvgRTT = %v below propagation RTT", res.AvgRTT)
	}
}

func TestRenoVsCubicBothWork(t *testing.T) {
	for _, alg := range []Algorithm{Reno, Cubic} {
		cfg := DefaultConfig()
		cfg.Alg = alg
		res, err := Run(rand.New(rand.NewSource(1)), StaticPath(metrics(50, 1e-4, 100)), cfg,
			Spec{Duration: 20 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.ThroughputMbps <= 0 {
			t.Errorf("%v: zero throughput", alg)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := runOnce(t, metrics(80, 2e-4, 100), 42)
	b := runOnce(t, metrics(80, 2e-4, 100), 42)
	if a.ThroughputMbps != b.ThroughputMbps || a.RetransRate != b.RetransRate {
		t.Error("same seed produced different results")
	}
}

func TestSplitBeatsEndToEndOnLongLossyPath(t *testing.T) {
	// Two 100ms segments with moderate loss: one end-to-end loop sees
	// 200ms RTT and composed loss; split halves both.
	seg := StaticPath(metrics(100, 2e-4, 1000))
	whole := StaticPath(metrics(200, 1-(1-2e-4)*(1-2e-4), 1000))
	spec := Spec{Duration: 30 * time.Second}

	e2e, err := Run(rand.New(rand.NewSource(1)), whole, DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunSplit(rand.New(rand.NewSource(1)), seg, seg, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if split.ThroughputMbps < e2e.ThroughputMbps*1.3 {
		t.Errorf("split = %v, e2e = %v: split should clearly win", split.ThroughputMbps, e2e.ThroughputMbps)
	}
}

func TestSplitBoundedByWorstSegment(t *testing.T) {
	good := StaticPath(metrics(20, 0, 1000))
	bad := StaticPath(metrics(100, 5e-3, 1000))
	spec := Spec{Duration: 30 * time.Second}
	split, err := RunSplit(rand.New(rand.NewSource(2)), good, bad, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	badAlone, err := Run(rand.New(rand.NewSource(2)), bad, DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if split.ThroughputMbps > badAlone.ThroughputMbps*1.5 {
		t.Errorf("split = %v exceeds worst segment %v by too much",
			split.ThroughputMbps, badAlone.ThroughputMbps)
	}
}

func TestSplitTransferCompletes(t *testing.T) {
	seg := StaticPath(metrics(50, 1e-4, 100))
	res, err := RunSplit(rand.New(rand.NewSource(3)), seg, seg, DefaultSplitConfig(),
		Spec{TransferBytes: 5 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes < 5<<20 {
		t.Errorf("delivered %d bytes, want >= %d", res.Bytes, 5<<20)
	}
}

func TestSplitSpecRequired(t *testing.T) {
	seg := StaticPath(metrics(50, 0, 100))
	if _, err := RunSplit(rand.New(rand.NewSource(1)), seg, seg, DefaultSplitConfig(), Spec{}); err != ErrSpec {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}

func TestConcatPath(t *testing.T) {
	a := StaticPath(metrics(50, 0.01, 100))
	b := StaticPath(metrics(30, 0.02, 50))
	m := ConcatPath(a, b, time.Millisecond)(0)
	if m.BaseRTT != 82*time.Millisecond {
		t.Errorf("BaseRTT = %v", m.BaseRTT)
	}
	if m.AvailableMbps != 50 {
		t.Errorf("AvailableMbps = %v", m.AvailableMbps)
	}
}

func TestSimulateRoundConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for i := 0; i < 200; i++ {
		send := float64(1 + rng.Intn(5000))
		m := metrics(50, rng.Float64()*0.05, 50)
		out := SimulateRound(rng, m, cfg, send)
		if out.Delivered < 0 || out.Lost < 0 {
			t.Fatalf("negative counts: %+v", out)
		}
		if math.Abs(out.Delivered+out.Lost-out.Sent) > 1e-6 {
			t.Fatalf("delivered+lost != sent: %+v", out)
		}
		if out.RTT < m.BaseRTT {
			t.Fatalf("RTT %v below base %v", out.RTT, m.BaseRTT)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},    // exact branch
		{5000, 5e-4}, // poisson branch
		{5000, 0.4},  // normal branch
	}
	for _, c := range cases {
		var sum float64
		const trials = 3000
		for i := 0; i < trials; i++ {
			k := binomial(rng, c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("binomial out of range: %d", k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-want) > 4*sd/math.Sqrt(trials)+0.05*want+0.1 {
			t.Errorf("binomial(%d, %v) mean = %v, want %v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if binomial(rng, 0, 0.5) != 0 {
		t.Error("n=0 should give 0")
	}
	if binomial(rng, 10, 0) != 0 {
		t.Error("p=0 should give 0")
	}
	if binomial(rng, 10, 1) != 10 {
		t.Error("p=1 should give n")
	}
}

func TestNetworkPathTimeOffset(t *testing.T) {
	n := netsim.New()
	a := n.AddNode(netsim.Node{Name: "a", Kind: netsim.KindHost})
	b := n.AddNode(netsim.Node{Name: "b", Kind: netsim.KindHost})
	l := netsim.Link{A: a, B: b, Delay: 10 * time.Millisecond, CapacityMbps: 100, MaxQueueDelay: time.Millisecond}
	if err := n.AddLink(l); err != nil {
		t.Fatal(err)
	}
	ll, _ := n.Link(a, b)
	ll.AddEvent(netsim.CongestionEvent{Start: time.Hour, End: 2 * time.Hour, ExtraLoss: 0.5})

	pf, err := NetworkPath(n, netsim.Path{Nodes: []netsim.NodeID{a, b}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := pf(0).LossRate; got < 0.4 {
		t.Errorf("start offset not applied: loss = %v", got)
	}
	pf2, err := NetworkPath(n, netsim.Path{Nodes: []netsim.NodeID{a, b}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := pf2(0).LossRate; got > 0.1 {
		t.Errorf("loss before event = %v", got)
	}
}

func TestNetworkPathInvalid(t *testing.T) {
	n := netsim.New()
	a := n.AddNode(netsim.Node{Name: "a"})
	if _, err := NetworkPath(n, netsim.Path{Nodes: []netsim.NodeID{a}}, 0); err == nil {
		t.Error("expected error for invalid path")
	}
}
