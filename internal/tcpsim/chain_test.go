package tcpsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestChainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RunSplitChain(rng, nil, DefaultSplitConfig(), Spec{Duration: time.Second}); err == nil {
		t.Error("expected error for no segments")
	}
	seg := StaticPath(metrics(50, 0, 100))
	if _, err := RunSplitChain(rng, []PathFunc{seg}, DefaultSplitConfig(), Spec{}); err != ErrSpec {
		t.Errorf("err = %v, want ErrSpec", err)
	}
}

func TestChainSingleSegmentEqualsRun(t *testing.T) {
	seg := StaticPath(metrics(80, 2e-4, 100))
	spec := Spec{Duration: 20 * time.Second}
	chain, err := RunSplitChain(rand.New(rand.NewSource(4)), []PathFunc{seg}, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(rand.New(rand.NewSource(4)), seg, DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if chain.ThroughputMbps != direct.ThroughputMbps {
		t.Errorf("single-segment chain %v != Run %v", chain.ThroughputMbps, direct.ThroughputMbps)
	}
}

func TestChainTwoSegmentsMatchesSplitApprox(t *testing.T) {
	seg := StaticPath(metrics(100, 2e-4, 1000))
	spec := Spec{Duration: 30 * time.Second}
	chain, err := RunSplitChain(rand.New(rand.NewSource(5)), []PathFunc{seg, seg}, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunSplit(rand.New(rand.NewSource(5)), seg, seg, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ratio := chain.ThroughputMbps / split.ThroughputMbps
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("chain(2) %v vs RunSplit %v diverge", chain.ThroughputMbps, split.ThroughputMbps)
	}
}

// TestChainThreeSegmentsBeatsEndToEnd: splitting a long lossy path twice
// should beat the single end-to-end loop (each loop sees a third of the
// RTT), the paper's Section VII-B hypothesis.
func TestChainThreeSegmentsBeatsEndToEnd(t *testing.T) {
	seg := StaticPath(metrics(100, 2e-4, 1000))
	e2e := StaticPath(metrics(300, 1-(1-2e-4)*(1-2e-4)*(1-2e-4), 1000))
	spec := Spec{Duration: 30 * time.Second}
	chain, err := RunSplitChain(rand.New(rand.NewSource(6)), []PathFunc{seg, seg, seg}, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(rand.New(rand.NewSource(6)), e2e, DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if chain.ThroughputMbps < direct.ThroughputMbps*1.5 {
		t.Errorf("3-split chain %v vs end-to-end %v: expected a clear win",
			chain.ThroughputMbps, direct.ThroughputMbps)
	}
}

func TestChainBoundedByWorstSegment(t *testing.T) {
	good := StaticPath(metrics(20, 0, 1000))
	bad := StaticPath(metrics(100, 5e-3, 1000))
	spec := Spec{Duration: 30 * time.Second}
	chain, err := RunSplitChain(rand.New(rand.NewSource(7)), []PathFunc{good, bad, good}, DefaultSplitConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	badAlone, err := Run(rand.New(rand.NewSource(7)), bad, DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if chain.ThroughputMbps > badAlone.ThroughputMbps*1.5 {
		t.Errorf("chain %v exceeds its worst segment %v", chain.ThroughputMbps, badAlone.ThroughputMbps)
	}
}

func TestChainTransferCompletes(t *testing.T) {
	seg := StaticPath(metrics(40, 1e-4, 100))
	res, err := RunSplitChain(rand.New(rand.NewSource(8)), []PathFunc{seg, seg, seg},
		DefaultSplitConfig(), Spec{TransferBytes: 3 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes < 3<<20 {
		t.Errorf("delivered %d bytes", res.Bytes)
	}
}
