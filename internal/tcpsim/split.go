package tcpsim

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"cronets/internal/netsim"
)

// SplitConfig parameterizes a split-TCP (proxy) run: the overlay node
// terminates the sender's TCP connection and opens a second connection to
// the receiver, relaying payload through a finite buffer. Each half runs its
// own congestion-control loop over roughly half the end-to-end RTT, which is
// the mechanism behind the paper's split-overlay gains (Section II,
// Mathis model: halving RTT doubles achievable rate).
type SplitConfig struct {
	// Flow is the per-segment TCP configuration.
	Flow Config
	// RelayBufferBytes is the proxy's relay buffer (flow control between
	// the two halves). Zero selects the 4 MiB default.
	RelayBufferBytes int64
}

// DefaultSplitConfig returns a split configuration with standard flow
// parameters and a 4 MiB relay buffer.
func DefaultSplitConfig() SplitConfig {
	return SplitConfig{Flow: DefaultConfig(), RelayBufferBytes: 4 << 20}
}

// RunSplit simulates a split-TCP transfer: sender -> relay over first,
// relay -> receiver over second. The result reports end-to-end goodput
// (bytes delivered to the receiver), combined retransmission statistics,
// and the sum of segment RTTs as the end-to-end latency estimate.
func RunSplit(rng *rand.Rand, first, second PathFunc, cfg SplitConfig, spec Spec) (Result, error) {
	if spec.Duration <= 0 && spec.TransferBytes <= 0 {
		return Result{}, ErrSpec
	}
	if cfg.RelayBufferBytes <= 0 {
		cfg.RelayBufferBytes = 4 << 20
	}
	var (
		f1, f2    = newFlow(cfg.Flow), newFlow(cfg.Flow)
		t1, t2    time.Duration
		buffered  int64 // bytes sitting in the relay buffer
		srcSent   int64 // bytes the sender has pushed into the relay
		delivered int64 // bytes the receiver has acknowledged
		rounds    int
	)
	mss := int64(cfg.Flow.MSSBytes)
	done := func() bool {
		if spec.TransferBytes > 0 && delivered >= spec.TransferBytes {
			return true
		}
		if spec.Duration > 0 && t1 >= spec.Duration && t2 >= spec.Duration {
			return true
		}
		return false
	}
	for !done() {
		rounds++
		if rounds > 10_000_000 {
			return Result{}, errors.New("tcpsim: split flow did not terminate")
		}
		// Advance whichever half is earlier in simulated time; ties go to
		// the first half so the pipeline fills before it drains.
		if t1 <= t2 {
			if spec.Duration > 0 && t1 >= spec.Duration {
				t1 = t2 + 1 // first half done; only drain remains
				continue
			}
			free := cfg.RelayBufferBytes - buffered
			limit := math.Floor(float64(free) / float64(mss))
			if spec.TransferBytes > 0 {
				remaining := math.Ceil(float64(spec.TransferBytes-srcSent) / float64(mss))
				if remaining <= 0 {
					t1 = t2 + 1 // source exhausted; only drain remains
					continue
				}
				limit = math.Min(limit, remaining)
			}
			if limit < 1 {
				// Buffer full: the sender is flow-controlled. Idle until
				// the drain side catches up.
				if t2 > t1 {
					t1 = t2
				} else {
					t1 += time.Millisecond
				}
				continue
			}
			out := f1.step(rng, first(t1), t1, limit)
			got := int64(out.delivered) * mss
			buffered += got
			srcSent += got
			t1 += out.rtt
			if out.timeout {
				t1 += rtoFor(out.rtt, cfg.Flow.MinRTO)
			}
		} else {
			if spec.Duration > 0 && t2 >= spec.Duration {
				t2 = t1 + 1
				continue
			}
			avail := math.Floor(float64(buffered) / float64(mss))
			if avail < 1 {
				// Nothing to relay yet: wait for the fill side.
				if t1 > t2 {
					t2 = t1
				} else {
					t2 += time.Millisecond
				}
				continue
			}
			out := f2.step(rng, second(t2), t2, avail)
			got := int64(out.delivered) * mss
			buffered -= got
			if buffered < 0 {
				buffered = 0
			}
			delivered += got
			t2 += out.rtt
			if out.timeout {
				t2 += rtoFor(out.rtt, cfg.Flow.MinRTO)
			}
		}
	}
	elapsed := t2
	if spec.Duration > 0 && elapsed > spec.Duration {
		elapsed = spec.Duration
	}
	res := Result{
		Bytes:    delivered,
		Elapsed:  elapsed,
		Rounds:   rounds,
		Timeouts: f1.timeouts + f2.timeouts,
	}
	if elapsed > 0 {
		res.ThroughputMbps = float64(delivered) * 8 / elapsed.Seconds() / 1e6
	}
	if sent := f1.sentPkts + f2.sentPkts; sent > 0 {
		res.RetransRate = (f1.lostPkts + f2.lostPkts) / sent
	}
	var rtt float64
	if f1.rttWeight > 0 {
		rtt += f1.rttSum / f1.rttWeight
	}
	if f2.rttWeight > 0 {
		rtt += f2.rttSum / f2.rttWeight
	}
	res.AvgRTT = time.Duration(rtt * float64(time.Second))
	return res, nil
}

func rtoFor(rtt, minRTO time.Duration) time.Duration {
	rto := rtt * 2
	if rto < minRTO {
		rto = minRTO
	}
	return rto
}

// RoundOutcome reports what one simulated RTT round did, for callers (the
// MPTCP simulator) that drive their own window dynamics.
type RoundOutcome struct {
	// Sent is the number of segments transmitted (including ones dropped
	// at the bottleneck buffer).
	Sent float64
	// Delivered is the number of segments acknowledged.
	Delivered float64
	// Lost is the number of segments lost (random plus buffer overflow).
	Lost float64
	// RTT is the effective round-trip time, including self-queueing.
	RTT time.Duration
}

// SimulateRound performs the path half of a TCP round — self-queueing,
// buffer-overflow drops and random loss — for a window of sendPkts segments
// over metrics m, without touching any congestion-control state. MPTCP
// subflows use it with their own coupled window rules.
func SimulateRound(rng *rand.Rand, m netsim.Metrics, cfg Config, sendPkts float64) RoundOutcome {
	mssBits := float64(cfg.MSSBytes) * 8
	baseRTT := m.BaseRTT + m.QueueDelayRTT
	if baseRTT <= 0 {
		baseRTT = time.Millisecond
	}
	bdp := m.AvailableMbps * 1e6 * baseRTT.Seconds() / mssBits
	if bdp < 1 {
		bdp = 1
	}
	buffer := bdp * cfg.BufferBDP

	send := sendPkts
	if send < 1 {
		send = 1
	}
	var congLost float64
	rtt := baseRTT
	if send > bdp {
		queued := math.Min(send-bdp, buffer)
		rtt += time.Duration(queued * mssBits / (m.AvailableMbps * 1e6) * float64(time.Second))
		if send > bdp+buffer {
			congLost = send - (bdp + buffer)
			send = bdp + buffer
		}
	}
	randomLost := float64(binomial(rng, int(send), m.LossRate))
	lost := congLost + randomLost
	delivered := send + congLost - lost
	if delivered < 0 {
		delivered = 0
	}
	return RoundOutcome{Sent: send + congLost, Delivered: delivered, Lost: lost, RTT: rtt}
}
