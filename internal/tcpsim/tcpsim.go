// Package tcpsim simulates TCP data transfers over paths described by
// netsim metrics. The model is round-based: each iteration represents one
// round-trip in which the congestion window's worth of segments is sent,
// per-packet losses are drawn from the path's composed loss rate, and the
// congestion window reacts (Reno AIMD or CUBIC). Self-induced queueing and
// drops appear when the window exceeds the path's bandwidth-delay product
// plus buffer, so a lossless fat path still converges to link rate instead
// of growing without bound.
//
// The simulator reproduces the macroscopic TCP behaviour the paper's
// analysis is built on (Mathis et al.: BW ~ MSS/(RTT*sqrt(p))), which is
// what makes split-TCP at an overlay node profitable: halving the RTT seen
// by each congestion-control loop roughly doubles the achievable rate.
package tcpsim

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"cronets/internal/netsim"
)

// Algorithm selects the congestion-control algorithm of a simulated flow.
type Algorithm int

// Supported congestion-control algorithms.
const (
	Reno Algorithm = iota + 1
	Cubic
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Reno:
		return "reno"
	case Cubic:
		return "cubic"
	default:
		return "unknown"
	}
}

// PathFunc supplies the metrics of a path at a given simulation time,
// letting callers express time-varying congestion.
type PathFunc func(at time.Duration) netsim.Metrics

// StaticPath wraps fixed metrics as a PathFunc.
func StaticPath(m netsim.Metrics) PathFunc {
	return func(time.Duration) netsim.Metrics { return m }
}

// NetworkPath builds a PathFunc sampling the live metrics of path p in n,
// offset by start (so longitudinal samples taken at different wall times see
// different transient-event states).
func NetworkPath(n *netsim.Network, p netsim.Path, start time.Duration) (PathFunc, error) {
	if _, err := n.PathMetrics(p, start); err != nil {
		return nil, err
	}
	return func(at time.Duration) netsim.Metrics {
		m, err := n.PathMetrics(p, start+at)
		if err != nil {
			// The path was validated above; composition cannot fail later.
			return netsim.Metrics{}
		}
		return m
	}, nil
}

// ConcatPath builds a PathFunc for a one-hop overlay path: the two segment
// PathFuncs composed with the relay's per-packet overhead.
func ConcatPath(a, b PathFunc, relayOverhead time.Duration) PathFunc {
	return func(at time.Duration) netsim.Metrics {
		return netsim.ConcatMetrics(a(at), b(at), relayOverhead)
	}
}

// Config holds the per-flow simulation parameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Alg is the congestion-control algorithm.
	Alg Algorithm
	// MSSBytes is the maximum segment size.
	MSSBytes int
	// InitCwnd is the initial congestion window in segments.
	InitCwnd float64
	// MaxCwnd caps the window in segments (receive-window stand-in).
	MaxCwnd float64
	// BufferBDP is the bottleneck buffer size as a multiple of the path
	// bandwidth-delay product.
	BufferBDP float64
	// MinRTO is the minimum retransmission timeout.
	MinRTO time.Duration
}

// DefaultConfig returns the standard flow parameters (Linux-like defaults
// of the paper's era: 1460-byte MSS, IW10, one-BDP buffers, 1 s minimum
// RTO, CUBIC, and a ~1.5 MB receive window). The receive-window cap is
// load-bearing: it makes throughput proportional to 1/RTT on clean paths,
// which is why the plain tunnel's RTT detour often loses while split-TCP's
// RTT halving wins (the paper's Section II analysis).
func DefaultConfig() Config {
	return Config{
		Alg:       Cubic,
		MSSBytes:  1460,
		InitCwnd:  10,
		MaxCwnd:   1024,
		BufferBDP: 0.4,
		MinRTO:    time.Second,
	}
}

// Spec describes what to run: a timed transfer (the paper's 30 s iperf
// runs), a fixed-size transfer (the 100 MB file downloads), or both limits.
type Spec struct {
	// Duration stops the flow after this much simulated time (0 = no limit).
	Duration time.Duration
	// TransferBytes stops the flow after this many acknowledged bytes
	// (0 = no limit). At least one limit must be set.
	TransferBytes int64
}

// Result summarizes a simulated flow: the three metrics the paper measures
// (throughput via iperf, retransmission rate and average RTT via tstat).
type Result struct {
	// ThroughputMbps is acknowledged payload bits over elapsed time.
	ThroughputMbps float64
	// RetransRate is retransmitted segments over total segments sent,
	// tstat's retransmission-rate estimate.
	RetransRate float64
	// AvgRTT is the packet-weighted average round-trip time, including
	// background and self-induced queueing.
	AvgRTT time.Duration
	// Bytes is the total acknowledged payload.
	Bytes int64
	// Elapsed is the simulated duration of the flow.
	Elapsed time.Duration
	// Rounds is the number of simulated RTT rounds.
	Rounds int
	// Timeouts counts retransmission timeouts.
	Timeouts int
}

// ErrSpec is returned when a Spec has neither a duration nor a byte limit.
var ErrSpec = errors.New("tcpsim: spec needs a duration or transfer size")

// flow holds the mutable per-flow state shared by Run and the split/MPTCP
// simulators.
type flow struct {
	cfg  Config
	cwnd float64
	ssth float64

	// CUBIC state.
	wMax       float64
	epochStart time.Duration
	epochSet   bool

	// Accounting.
	sentPkts  float64
	lostPkts  float64
	ackedPkts float64
	rttWeight float64
	rttSum    float64 // seconds * packets
	timeouts  int
}

func newFlow(cfg Config) *flow {
	return &flow{cfg: cfg, cwnd: cfg.InitCwnd, ssth: math.Inf(1)}
}

// cubicBeta and cubicC are the standard CUBIC constants.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// onLoss applies the multiplicative decrease for a loss round.
func (f *flow) onLoss(now time.Duration) {
	switch f.cfg.Alg {
	case Cubic:
		f.wMax = f.cwnd
		f.cwnd *= cubicBeta
		f.epochStart = now
		f.epochSet = true
	default: // Reno
		f.cwnd /= 2
	}
	if f.cwnd < 1 {
		f.cwnd = 1
	}
	f.ssth = f.cwnd
}

// onTimeout collapses the window after an RTO.
func (f *flow) onTimeout() {
	f.ssth = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.epochSet = false
	f.timeouts++
}

// grow applies one round's congestion-window growth for a loss-free round.
func (f *flow) grow(now time.Duration, rtt time.Duration) {
	if f.cwnd < f.ssth {
		// Slow start: the window doubles every RTT.
		f.cwnd *= 2
		if f.cwnd > f.ssth {
			f.cwnd = f.ssth
		}
	} else {
		switch f.cfg.Alg {
		case Cubic:
			if !f.epochSet {
				f.wMax = f.cwnd
				f.epochStart = now
				f.epochSet = true
			}
			t := (now + rtt - f.epochStart).Seconds()
			k := math.Cbrt(f.wMax * (1 - cubicBeta) / cubicC)
			target := cubicC*math.Pow(t-k, 3) + f.wMax
			if target > f.cwnd {
				// Don't grow faster than slow start.
				if target > f.cwnd*2 {
					target = f.cwnd * 2
				}
				f.cwnd = target
			} else {
				// TCP-friendly region: at least Reno's growth.
				f.cwnd++
			}
		default: // Reno congestion avoidance
			f.cwnd++
		}
	}
	if f.cwnd > f.cfg.MaxCwnd {
		f.cwnd = f.cfg.MaxCwnd
	}
}

// roundOutcome is what happened to one RTT round's worth of segments.
type roundOutcome struct {
	sent      float64
	delivered float64
	lost      float64
	rtt       time.Duration
	timeout   bool
}

// step simulates one round of the flow over the given path metrics, sending
// at most limitPkts segments (limitPkts < 0 means no external limit).
// External limits model receive-side backpressure (split relay buffers).
func (f *flow) step(rng *rand.Rand, m netsim.Metrics, now time.Duration, limitPkts float64) roundOutcome {
	mssBits := float64(f.cfg.MSSBytes) * 8
	baseRTT := m.BaseRTT + m.QueueDelayRTT
	if baseRTT <= 0 {
		baseRTT = time.Millisecond
	}

	// Path capacity in packets per RTT (the BDP) and the buffer on top.
	bdp := m.AvailableMbps * 1e6 * baseRTT.Seconds() / mssBits
	if bdp < 1 {
		bdp = 1
	}
	buffer := bdp * f.cfg.BufferBDP

	send := f.cwnd
	if limitPkts >= 0 && send > limitPkts {
		send = limitPkts
	}
	if send < 1 {
		send = 1
	}

	// HyStart-like slow-start exit: once the window reaches the path BDP,
	// queueing delay starts building; leave slow start before the
	// exponential growth blows through the buffer in one burst.
	if f.cwnd < f.ssth && send >= bdp {
		f.ssth = f.cwnd
	}

	// Self-induced queueing: window beyond the BDP sits in the bottleneck
	// buffer; beyond BDP+buffer it is dropped.
	var congLost float64
	rtt := baseRTT
	if send > bdp {
		queued := math.Min(send-bdp, buffer)
		rtt += time.Duration(queued * mssBits / (m.AvailableMbps * 1e6) * float64(time.Second))
		if send > bdp+buffer {
			congLost = send - (bdp + buffer)
			send = bdp + buffer
		}
	}

	randomLost := float64(binomial(rng, int(send), m.LossRate))
	lost := congLost + randomLost
	delivered := send + congLost - lost
	if delivered < 0 {
		delivered = 0
	}

	out := roundOutcome{sent: send + congLost, delivered: delivered, lost: lost, rtt: rtt}
	f.sentPkts += out.sent
	f.lostPkts += lost
	f.ackedPkts += delivered
	f.rttSum += rtt.Seconds() * math.Max(delivered, 1)
	f.rttWeight += math.Max(delivered, 1)

	if delivered == 0 {
		out.timeout = true
		f.onTimeout()
	} else if lost > 0 {
		f.onLoss(now)
	} else {
		f.grow(now, rtt)
	}
	return out
}

// Run simulates a single TCP flow over the path until the spec's limit.
func Run(rng *rand.Rand, path PathFunc, cfg Config, spec Spec) (Result, error) {
	if spec.Duration <= 0 && spec.TransferBytes <= 0 {
		return Result{}, ErrSpec
	}
	f := newFlow(cfg)
	var (
		now   time.Duration
		bytes int64
		round int
	)
	mss := int64(cfg.MSSBytes)
	for {
		if spec.Duration > 0 && now >= spec.Duration {
			break
		}
		if spec.TransferBytes > 0 && bytes >= spec.TransferBytes {
			break
		}
		m := path(now)
		limit := -1.0
		if spec.TransferBytes > 0 {
			remaining := float64(spec.TransferBytes-bytes) / float64(mss)
			limit = math.Ceil(remaining)
		}
		out := f.step(rng, m, now, limit)
		bytes += int64(out.delivered) * mss
		if out.timeout {
			rto := out.rtt * 2
			if rto < cfg.MinRTO {
				rto = cfg.MinRTO
			}
			now += rto
		} else {
			now += out.rtt
		}
		round++
		if round > 5_000_000 {
			return Result{}, errors.New("tcpsim: flow did not terminate")
		}
	}
	return f.result(bytes, now, round), nil
}

func (f *flow) result(bytes int64, elapsed time.Duration, rounds int) Result {
	res := Result{
		Bytes:    bytes,
		Elapsed:  elapsed,
		Rounds:   rounds,
		Timeouts: f.timeouts,
	}
	if elapsed > 0 {
		res.ThroughputMbps = float64(bytes) * 8 / elapsed.Seconds() / 1e6
	}
	if f.sentPkts > 0 {
		res.RetransRate = f.lostPkts / f.sentPkts
	}
	if f.rttWeight > 0 {
		res.AvgRTT = time.Duration(f.rttSum / f.rttWeight * float64(time.Second))
	}
	return res
}

// binomial draws the number of successes in n Bernoulli(p) trials. Exact
// sampling for small n, normal approximation for large n*p, Poisson
// approximation for large n with small p.
func binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	switch {
	case n <= 64:
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	case float64(n)*p < 12:
		// Poisson approximation with lambda = n*p.
		lambda := float64(n) * p
		l := math.Exp(-lambda)
		k := 0
		prod := rng.Float64()
		for prod > l {
			k++
			prod *= rng.Float64()
			if k > n {
				return n
			}
		}
		return k
	default:
		// Normal approximation.
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		k := int(math.Round(rng.NormFloat64()*sd + mean))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
}
