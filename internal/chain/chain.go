// Package chain composes multi-hop overlay paths for the real data
// plane: an ordered list of relay CONNECT endpoints is dialed as one
// socket by issuing the CONNECT preamble hop by hop — relay N's upstream
// target is relay N+1's CONNECT endpoint, and the last relay's target is
// the destination. Each additional hop costs one preamble round trip
// through the already-established prefix of the chain, after which the
// flow is an ordinary spliced connection: every relay runs its own
// split-TCP loop over its own segment, which is exactly how the paper's
// §VII-B two-hop configuration composes backbone path diversity.
//
// The wire format is the iterated single-hop CONNECT handshake from
// internal/relay — relays need no code or protocol change to serve as a
// middle hop; they see a perfectly normal CONNECT whose target happens
// to be another relay.
package chain

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/relay"
)

// DefaultPerHopTimeout bounds one hop's CONNECT exchange when Options
// leaves PerHopTimeout unset and the caller's context carries no
// deadline of its own.
const DefaultPerHopTimeout = 10 * time.Second

// Options parameterizes a chain dial. The zero value is usable.
type Options struct {
	// Dialer opens the TCP leg to the first hop (default net.Dialer).
	Dialer relay.Dialer
	// PerHopTimeout bounds each hop's CONNECT exchange (and the first
	// hop's TCP dial). 0 defaults to DefaultPerHopTimeout unless the
	// caller's context already carries a deadline, which then governs
	// alone; negative disables the per-hop bound entirely.
	PerHopTimeout time.Duration
	// Tracer records one chain.hop span per relay, each parented under
	// the previous hop's span (hop 0 parents under the context carried
	// in ctx), so a trace shows the preamble walking down the chain. Nil
	// disables tracing at zero cost.
	Tracer *flowtrace.Tracer
}

// HopError reports which hop of a chain dial failed. Unwrap exposes the
// underlying cause (relay.ErrRefused, a dial error, a context error), so
// callers can classify with errors.Is/As while still seeing the hop.
type HopError struct {
	// Hop is the 0-based index of the failing hop.
	Hop int
	// Relay is the CONNECT endpoint of the relay serving that hop.
	Relay string
	// Target is what that hop was asked to connect to (the next relay,
	// or the final destination).
	Target string
	// Err is the underlying failure.
	Err error
}

func (e *HopError) Error() string {
	return fmt.Sprintf("chain: hop %d (%s -> %s): %v", e.Hop, e.Relay, e.Target, e.Err)
}

func (e *HopError) Unwrap() error { return e.Err }

// String renders a hop list as a display name ("a>b>c").
func String(hops []string) string { return strings.Join(hops, ">") }

// Dial establishes one connection to target through the ordered relay
// chain: a TCP dial to hops[0], then one CONNECT per hop. A single-hop
// chain is exactly relay.DialVia. The returned connection is the
// client's end of the fully spliced chain; per-hop failures return a
// *HopError and leave nothing open.
func Dial(ctx context.Context, hops []string, target string, opts Options) (net.Conn, error) {
	if len(hops) == 0 {
		return nil, errors.New("chain: no hops")
	}
	d := opts.Dialer
	if d == nil {
		d = &net.Dialer{}
	}
	dialCtx, cancel := hopContext(ctx, opts)
	conn, err := d.DialContext(dialCtx, "tcp", hops[0])
	cancel()
	if err != nil {
		return nil, &HopError{Hop: 0, Relay: hops[0], Target: hops[0],
			Err: fmt.Errorf("dial first hop: %w", err)}
	}
	return Connect(ctx, conn, hops, target, opts)
}

// Connect walks the CONNECT preamble down an already-open socket to the
// relay serving hops[0] — the warm-pool path: the gateway checks a
// pre-established first-hop leg out of its pool and pays only the
// preamble round trips. Each hop's exchange gets its own deadline, one
// chain.hop span, and a typed *HopError on failure; the socket is closed
// on any error (relay.Connect owns that).
func Connect(ctx context.Context, conn net.Conn, hops []string, target string, opts Options) (net.Conn, error) {
	if len(hops) == 0 {
		_ = conn.Close()
		return nil, errors.New("chain: no hops")
	}
	parent := flowtrace.FromGoContext(ctx)
	for i, hop := range hops {
		next := target
		if i+1 < len(hops) {
			next = hops[i+1]
		}
		span := opts.Tracer.Continue("chain.hop", parent)
		hopCtx, cancel := hopContext(ctx, opts)
		if span != nil {
			hopCtx = flowtrace.NewGoContext(hopCtx, span.Context())
		}
		relayed, err := relay.Connect(hopCtx, conn, next)
		cancel()
		if err != nil {
			span.SetDetail(fmt.Sprintf("fail %s -> %s", hop, next))
			span.End()
			return nil, &HopError{Hop: i, Relay: hop, Target: next, Err: err}
		}
		span.SetDetail(fmt.Sprintf("%s -> %s", hop, next))
		span.End()
		if span != nil {
			// The next hop's preamble travels through this hop's splice:
			// parent it under this hop's span so the trace nests the way
			// the bytes do.
			parent = span.Context()
		}
		conn = relayed
	}
	return conn, nil
}

// hopContext derives one hop's deadline-bounded context per the Options
// rules documented on PerHopTimeout.
func hopContext(ctx context.Context, opts Options) (context.Context, context.CancelFunc) {
	switch {
	case opts.PerHopTimeout > 0:
		return context.WithTimeout(ctx, opts.PerHopTimeout)
	case opts.PerHopTimeout < 0:
		return ctx, func() {}
	default:
		if _, ok := ctx.Deadline(); ok {
			return ctx, func() {}
		}
		return context.WithTimeout(ctx, DefaultPerHopTimeout)
	}
}
