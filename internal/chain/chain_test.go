package chain

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/relay"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// startRelay runs a real CONNECT-mode relay and returns its address.
func startRelay(t *testing.T, cfg relay.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := relay.New(ln, cfg)
	go r.Serve() //nolint:errcheck // closed in cleanup
	t.Cleanup(func() { _ = r.Close() })
	return ln.Addr().String()
}

func roundtrip(t *testing.T, conn net.Conn, msg string) string {
	t.Helper()
	if _, err := io.WriteString(conn, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestChainDialOneHop(t *testing.T) {
	dest := echoServer(t)
	r := startRelay(t, relay.Config{})
	conn, err := Dial(testCtx(t), []string{r}, dest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "one hop"); got != "one hop" {
		t.Errorf("echo = %q", got)
	}
}

func TestChainDialTwoHops(t *testing.T) {
	dest := echoServer(t)
	r1 := startRelay(t, relay.Config{})
	r2 := startRelay(t, relay.Config{})
	conn, err := Dial(testCtx(t), []string{r1, r2}, dest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "two real split-TCP hops"); got != "two real split-TCP hops" {
		t.Errorf("echo = %q", got)
	}
}

func TestChainDialNoHops(t *testing.T) {
	if _, err := Dial(testCtx(t), nil, "192.0.2.1:9", Options{}); err == nil {
		t.Fatal("Dial accepted an empty chain")
	}
}

func TestChainDialFirstHopUnreachable(t *testing.T) {
	// A closed listener port: the TCP dial to hop 0 fails and the error
	// names that hop.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()
	_, err = Dial(testCtx(t), []string{dead}, "192.0.2.1:9", Options{})
	var he *HopError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HopError", err)
	}
	if he.Hop != 0 || he.Relay != dead {
		t.Errorf("HopError = %+v, want hop 0 at %s", he, dead)
	}
}

func TestChainSecondHopRefused(t *testing.T) {
	// Relay 2's ACL forbids the destination: hop 0 (the CONNECT to relay
	// 1 targeting relay 2) succeeds, hop 1 is refused — the error names
	// hop 1 and unwraps to relay.ErrRefused.
	acl, err := relay.NewACL([]string{"10.0.0.0/8"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1 := startRelay(t, relay.Config{})
	r2 := startRelay(t, relay.Config{ACL: acl})
	_, err = Dial(testCtx(t), []string{r1, r2}, "192.0.2.1:9", Options{})
	var he *HopError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HopError", err)
	}
	if he.Hop != 1 || he.Relay != r2 {
		t.Errorf("HopError = %+v, want hop 1 at %s", he, r2)
	}
	if !errors.Is(err, relay.ErrRefused) {
		t.Errorf("err = %v, want to unwrap to relay.ErrRefused", err)
	}
}

func TestChainPerHopTimeout(t *testing.T) {
	// A fake hop-1 relay that swallows the CONNECT and never answers
	// (okHops = 0: the only preamble it ever sees is hop 1's — hop 0's
	// goes to the real relay in front of it): the per-hop deadline fires
	// and the error names hop 1 as a timeout.
	stall := newStallRelay(t, 0)
	r1 := startRelay(t, relay.Config{})
	start := time.Now()
	_, err := Dial(context.Background(), []string{r1, stall}, "192.0.2.1:9",
		Options{PerHopTimeout: 100 * time.Millisecond})
	var he *HopError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HopError", err)
	}
	if he.Hop != 1 {
		t.Errorf("HopError hop = %d, want 1", he.Hop)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("chain dial took %v to honor the per-hop timeout", waited)
	}
}

// newStallRelay runs a single-socket fake relay that answers okHops
// CONNECT preambles with OK and then swallows everything (a hop that
// accepted the splice but whose next CONNECT never completes).
func newStallRelay(t *testing.T, okHops int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		for i := 0; i < okHops; i++ {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			if _, err := io.WriteString(c, "OK\n"); err != nil {
				return
			}
		}
		_, _ = io.Copy(io.Discard, br) // stall until the client gives up
	}()
	return ln.Addr().String()
}

func TestChainTraceParentage(t *testing.T) {
	// A sampled flow dialing a 2-hop chain records one chain.hop span per
	// hop, nested the way the bytes travel: hop 0 parents under the flow
	// span, hop 1 under hop 0 (its preamble rides hop 0's splice).
	dest := echoServer(t)
	r1 := startRelay(t, relay.Config{})
	r2 := startRelay(t, relay.Config{})
	tracer := flowtrace.New(flowtrace.Config{Node: "client", SampleRate: 1})
	root := tracer.Start("flow", flowtrace.Context{})
	ctx := flowtrace.NewGoContext(testCtx(t), root.Context())
	conn, err := Dial(ctx, []string{r1, r2}, dest, Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	root.End()

	var hops []*flowtrace.Span
	for _, s := range tracer.Snapshot() {
		if s.Name == "chain.hop" {
			hops = append(hops, s)
		}
	}
	if len(hops) != 2 {
		t.Fatalf("chain.hop spans = %d, want 2", len(hops))
	}
	// Snapshot order is ring order; identify hops by parentage.
	if hops[0].Parent == root.ID && hops[1].Parent == hops[0].ID {
		// hop 0 then hop 1.
	} else if hops[1].Parent == root.ID && hops[0].Parent == hops[1].ID {
		hops[0], hops[1] = hops[1], hops[0]
	} else {
		t.Fatalf("span parentage broken: root=%d hop spans %d<-%d, %d<-%d",
			root.ID, hops[0].ID, hops[0].Parent, hops[1].ID, hops[1].Parent)
	}
	if hops[0].Trace != root.Trace || hops[1].Trace != root.Trace {
		t.Error("hop spans left the flow's trace")
	}
	if !strings.Contains(hops[0].Detail, r1) || !strings.Contains(hops[1].Detail, r2) {
		t.Errorf("hop details %q / %q don't name relays %s / %s",
			hops[0].Detail, hops[1].Detail, r1, r2)
	}
}

func TestChainConnectClosesOnEmptyHops(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	if _, err := Connect(testCtx(t), a, nil, "192.0.2.1:9", Options{}); err == nil {
		t.Fatal("Connect accepted an empty chain")
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("Connect left the socket open on the empty-hops error")
	}
}

// TestChainSpliceAllocs is the bench-smoke guard from ISSUE 8: once a
// chain is established, the client-side conn must not allocate per
// write/read roundtrip — the splice path is the same zero-alloc pooled
// forwarding as a single hop, and the chain package must not wrap the
// conn in anything that allocates.
func TestChainSpliceAllocs(t *testing.T) {
	// A single-socket fake two-hop chain: both CONNECTs answered on one
	// conn, then a preallocated echo loop — so the measurement sees only
	// the client side's work.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		for i := 0; i < 2; i++ {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			if _, err := io.WriteString(c, "OK\n"); err != nil {
				return
			}
		}
		buf := make([]byte, 64)
		for {
			n, err := br.Read(buf)
			if n > 0 {
				if _, werr := c.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()

	conn, err := Dial(testCtx(t), []string{ln.Addr().String(), "fake-hop-2:9"},
		"192.0.2.1:9", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	msg := []byte("0123456789abcdef")
	reply := make([]byte, len(msg))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, reply); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("established chain flow allocates %.1f allocs per roundtrip, want 0", allocs)
	}
}
