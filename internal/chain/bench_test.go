package chain

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"cronets/internal/relay"
)

// benchChainDial measures one full chain dial per iteration — TCP to the
// first hop plus one CONNECT round trip per hop, verified with a 16-byte
// echo — so the 1-hop vs 2-hop delta is exactly the incremental cost of
// one preamble exchange through the established prefix.
func benchChainDial(b *testing.B, nHops int) {
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer echoLn.Close()
	go func() {
		for {
			c, err := echoLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()

	hops := make([]string, 0, nHops)
	for i := 0; i < nHops; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		r := relay.New(ln, relay.Config{})
		go r.Serve() //nolint:errcheck
		defer r.Close()
		hops = append(hops, ln.Addr().String())
	}

	msg := []byte("0123456789abcdef")
	reply := make([]byte, len(msg))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := Dial(ctx, hops, echoLn.Addr().String(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, reply); err != nil {
			b.Fatal(err)
		}
		_ = conn.Close()
	}
}

func BenchmarkChainDial1Hop(b *testing.B) { benchChainDial(b, 1) }
func BenchmarkChainDial2Hop(b *testing.B) { benchChainDial(b, 2) }
func BenchmarkChainDial3Hop(b *testing.B) { benchChainDial(b, 3) }
