// Package mptcpsim simulates Multipath TCP (RFC 6824) connections over a
// set of simulated paths: one direct path plus N overlay paths in the
// CRONets setting. Its purpose is the paper's Section VI claim: with a
// coupled congestion controller (LIA from NSDI'11, or OLIA from Khalili et
// al.), the aggregate MPTCP throughput converges to that of a single-path
// TCP connection on the best available path — so the sender never has to
// probe and pick the best overlay node — while an uncoupled controller
// (per-subflow CUBIC) sums the subflows and saturates the endpoint NIC.
package mptcpsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cronets/internal/tcpsim"
)

// Coupling selects the congestion-control coupling across subflows.
type Coupling int

// Coupling modes.
const (
	// LIA is the Linked-Increases Algorithm of RFC 6356 / Wischik et al.
	LIA Coupling = iota + 1
	// OLIA is the Opportunistic LIA of Khalili et al.
	OLIA
	// Uncoupled runs an independent congestion controller per subflow;
	// the aggregate is the sum of the per-path rates (the modified
	// configuration of the paper's Figure 13).
	Uncoupled
)

// String returns the coupling name.
func (c Coupling) String() string {
	switch c {
	case LIA:
		return "lia"
	case OLIA:
		return "olia"
	case Uncoupled:
		return "uncoupled"
	default:
		return fmt.Sprintf("Coupling(%d)", int(c))
	}
}

// Config parameterizes an MPTCP run.
type Config struct {
	// Flow holds the per-subflow TCP parameters. For coupled modes the
	// algorithm field governs only the decrease (Reno-style halving is
	// standard); for Uncoupled it selects the full per-subflow controller.
	Flow tcpsim.Config
	// Coupling selects the cross-subflow congestion coupling.
	Coupling Coupling
	// SharedAccessMbps is the endpoint NIC rate all subflows share (the
	// paper's 100 Mbps virtual NICs). Zero disables the shared cap.
	SharedAccessMbps float64
	// ConnRwndPkts is the connection-level receive window in segments,
	// shared by all subflows (MPTCP's data-level flow control): when the
	// sum of subflow windows exceeds it, each subflow's effective send
	// window is scaled down proportionally. Zero disables the cap.
	ConnRwndPkts float64
}

// DefaultConfig returns an OLIA configuration with standard flow parameters
// and the paper's 100 Mbps endpoint NIC.
func DefaultConfig() Config {
	flow := tcpsim.DefaultConfig()
	return Config{
		Flow:             flow,
		Coupling:         OLIA,
		SharedAccessMbps: 100,
		ConnRwndPkts:     2 * flow.MaxCwnd,
	}
}

// Result summarizes an MPTCP run.
type Result struct {
	// TotalThroughputMbps is the aggregate goodput across subflows.
	TotalThroughputMbps float64
	// SubflowMbps is the per-subflow goodput, parallel to the input paths.
	SubflowMbps []float64
	// RetransRate is the aggregate retransmission rate.
	RetransRate float64
	// Elapsed is the simulated duration.
	Elapsed time.Duration
}

// subflow is the per-path MPTCP state.
type subflow struct {
	path     tcpsim.PathFunc
	cwnd     float64
	ssth     float64
	now      time.Duration
	lastRTT  time.Duration
	rateMbps float64 // smoothed delivery rate, for the shared NIC cap

	sent, lost, acked float64
	bytes             int64

	// CUBIC state (uncoupled mode).
	wMax       float64
	epochStart time.Duration
	epochSet   bool
}

// Run simulates one MPTCP connection across the given paths for the spec's
// duration. Transfer-size specs are not supported (the paper's MPTCP
// validation uses 1-minute iperf runs); use a Duration.
func Run(rng *rand.Rand, paths []tcpsim.PathFunc, cfg Config, spec tcpsim.Spec) (Result, error) {
	if len(paths) == 0 {
		return Result{}, errors.New("mptcpsim: need at least one path")
	}
	if spec.Duration <= 0 {
		return Result{}, errors.New("mptcpsim: spec needs a duration")
	}
	flows := make([]*subflow, len(paths))
	for i, p := range paths {
		m := p(0)
		flows[i] = &subflow{
			path:    p,
			cwnd:    cfg.Flow.InitCwnd,
			ssth:    math.Inf(1),
			lastRTT: m.BaseRTT + m.QueueDelayRTT,
		}
		if flows[i].lastRTT <= 0 {
			flows[i].lastRTT = time.Millisecond
		}
	}
	mss := int64(cfg.Flow.MSSBytes)
	steps := 0
	for {
		// Advance the subflow that is earliest in simulated time.
		f := flows[0]
		for _, g := range flows[1:] {
			if g.now < f.now {
				f = g
			}
		}
		if f.now >= spec.Duration {
			break
		}
		steps++
		if steps > 20_000_000 {
			return Result{}, errors.New("mptcpsim: connection did not terminate")
		}

		m := f.path(f.now)
		// All subflows exit through the same NIC: what the others are
		// using is unavailable to this one.
		if cfg.SharedAccessMbps > 0 {
			var others float64
			for _, g := range flows {
				if g != f {
					others += g.rateMbps
				}
			}
			avail := math.Min(m.AvailableMbps, cfg.SharedAccessMbps-others)
			if avail < 0.5 {
				avail = 0.5
			}
			m.AvailableMbps = avail
		}

		// Connection-level flow control: the shared receive window bounds
		// the total in-flight data across subflows.
		sendWnd := f.cwnd
		if cfg.ConnRwndPkts > 0 {
			var totalW float64
			for _, g := range flows {
				totalW += g.cwnd
			}
			if totalW > cfg.ConnRwndPkts {
				sendWnd = f.cwnd * cfg.ConnRwndPkts / totalW
			}
		}
		out := tcpsim.SimulateRound(rng, m, cfg.Flow, sendWnd)
		f.sent += out.Sent
		f.lost += out.Lost
		f.acked += out.Delivered
		f.bytes += int64(out.Delivered) * mss
		f.lastRTT = out.RTT

		// Exponentially smoothed delivery rate for the NIC-sharing model.
		inst := out.Delivered * float64(mss) * 8 / out.RTT.Seconds() / 1e6
		f.rateMbps = 0.8*f.rateMbps + 0.2*inst

		switch {
		case out.Delivered == 0:
			// Timeout: collapse and back off.
			f.ssth = math.Max(f.cwnd/2, 2)
			f.cwnd = 1
			f.epochSet = false
			rto := out.RTT * 2
			if rto < cfg.Flow.MinRTO {
				rto = cfg.Flow.MinRTO
			}
			f.now += out.RTT + rto
			f.rateMbps *= 0.5
		case out.Lost > 0:
			decrease(f, cfg)
			f.now += out.RTT
		default:
			increase(f, flows, cfg, out.RTT)
			f.now += out.RTT
		}
		if f.cwnd > cfg.Flow.MaxCwnd {
			f.cwnd = cfg.Flow.MaxCwnd
		}
	}

	res := Result{SubflowMbps: make([]float64, len(flows)), Elapsed: spec.Duration}
	var totalBytes int64
	var sent, lost float64
	for i, f := range flows {
		res.SubflowMbps[i] = float64(f.bytes) * 8 / spec.Duration.Seconds() / 1e6
		totalBytes += f.bytes
		sent += f.sent
		lost += f.lost
	}
	res.TotalThroughputMbps = float64(totalBytes) * 8 / spec.Duration.Seconds() / 1e6
	if sent > 0 {
		res.RetransRate = lost / sent
	}
	return res, nil
}

// decrease applies the multiplicative decrease after a loss round.
func decrease(f *subflow, cfg Config) {
	if cfg.Coupling == Uncoupled && cfg.Flow.Alg == tcpsim.Cubic {
		f.wMax = f.cwnd
		f.cwnd *= 0.7
		f.epochStart = f.now
		f.epochSet = true
	} else {
		// RFC 6356: each subflow halves on loss, like Reno.
		f.cwnd /= 2
	}
	if f.cwnd < 1 {
		f.cwnd = 1
	}
	f.ssth = f.cwnd
}

// increase applies one loss-free round's window growth.
func increase(f *subflow, flows []*subflow, cfg Config, rtt time.Duration) {
	if f.cwnd < f.ssth {
		f.cwnd = math.Min(f.cwnd*2, f.ssth)
		return
	}
	switch cfg.Coupling {
	case LIA:
		f.cwnd += liaRoundIncrease(f, flows)
	case OLIA:
		f.cwnd += oliaRoundIncrease(f, flows)
	default:
		if cfg.Flow.Alg == tcpsim.Cubic {
			f.cwnd = cubicTarget(f, rtt)
		} else {
			f.cwnd++
		}
	}
}

// liaRoundIncrease computes one round's window increase under the
// Linked-Increases Algorithm (RFC 6356): per ACK the window grows by
// min(alpha/cwnd_total, 1/cwnd_r) with
//
//	alpha = cwnd_total * max_r(cwnd_r/rtt_r^2) / (sum_r cwnd_r/rtt_r)^2,
//
// which caps the aggregate at a single-path TCP flow on the best path.
// Multiplying the per-ACK increase by the cwnd_r ACKs of one round gives
// min(alpha*cwnd_r/cwnd_total, 1).
func liaRoundIncrease(f *subflow, flows []*subflow) float64 {
	var total, sumRate, maxTerm float64
	for _, g := range flows {
		rtt := g.lastRTT.Seconds()
		if rtt <= 0 {
			rtt = 1e-3
		}
		total += g.cwnd
		sumRate += g.cwnd / rtt
		if term := g.cwnd / (rtt * rtt); term > maxTerm {
			maxTerm = term
		}
	}
	if total <= 0 || sumRate <= 0 {
		return 1
	}
	alpha := total * maxTerm / (sumRate * sumRate)
	return math.Min(alpha*f.cwnd/total, 1)
}

// oliaRoundIncrease computes one round's increase under OLIA (Khalili et
// al.): per ACK the window grows by (cwnd_r/rtt_r^2) / (sum_k cwnd_k/rtt_k)^2
// plus a load-balancing term beta_r/cwnd_r that shifts traffic toward the
// best paths. We implement the rate-matching first term exactly; the beta
// term only redistributes load among equally good paths and is omitted,
// which does not change the aggregate-throughput behaviour validated here.
func oliaRoundIncrease(f *subflow, flows []*subflow) float64 {
	var sumRate float64
	for _, g := range flows {
		rtt := g.lastRTT.Seconds()
		if rtt <= 0 {
			rtt = 1e-3
		}
		sumRate += g.cwnd / rtt
	}
	if sumRate <= 0 {
		return 1
	}
	rtt := f.lastRTT.Seconds()
	perAck := (f.cwnd / (rtt * rtt)) / (sumRate * sumRate)
	return math.Min(perAck*f.cwnd, 1)
}

// cubicTarget advances a subflow's window along the CUBIC curve.
func cubicTarget(f *subflow, rtt time.Duration) float64 {
	const (
		beta = 0.7
		c    = 0.4
	)
	if !f.epochSet {
		f.wMax = f.cwnd
		f.epochStart = f.now
		f.epochSet = true
	}
	t := (f.now + rtt - f.epochStart).Seconds()
	k := math.Cbrt(f.wMax * (1 - beta) / c)
	target := c*math.Pow(t-k, 3) + f.wMax
	if target < f.cwnd+1 {
		return f.cwnd + 1
	}
	if target > f.cwnd*2 {
		return f.cwnd * 2
	}
	return target
}
