package mptcpsim

import (
	"math/rand"
	"testing"
	"time"

	"cronets/internal/netsim"
	"cronets/internal/tcpsim"
)

func path(rttMs, loss, availMbps float64) tcpsim.PathFunc {
	return tcpsim.StaticPath(netsim.Metrics{
		BaseRTT:        time.Duration(rttMs * float64(time.Millisecond)),
		LossRate:       loss,
		BottleneckMbps: availMbps,
		AvailableMbps:  availMbps,
		Hops:           4,
	})
}

func run(t *testing.T, paths []tcpsim.PathFunc, cfg Config) Result {
	t.Helper()
	res, err := Run(rand.New(rand.NewSource(1)), paths, cfg, tcpsim.Spec{Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func singlePath(t *testing.T, p tcpsim.PathFunc, alg tcpsim.Algorithm) float64 {
	t.Helper()
	cfg := tcpsim.DefaultConfig()
	cfg.Alg = alg
	res, err := tcpsim.Run(rand.New(rand.NewSource(1)), p, cfg,
		tcpsim.Spec{Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return res.ThroughputMbps
}

func TestValidation(t *testing.T) {
	if _, err := Run(rand.New(rand.NewSource(1)), nil, DefaultConfig(), tcpsim.Spec{Duration: time.Second}); err == nil {
		t.Error("expected error for no paths")
	}
	if _, err := Run(rand.New(rand.NewSource(1)), []tcpsim.PathFunc{path(50, 0, 100)},
		DefaultConfig(), tcpsim.Spec{}); err == nil {
		t.Error("expected error for missing duration")
	}
}

// TestCoupledTracksBestPath: with OLIA/LIA coupling, the aggregate should
// be at least the best single path's throughput and well below the sum of
// all paths.
func TestCoupledTracksBestPath(t *testing.T) {
	paths := []tcpsim.PathFunc{
		path(200, 2e-3, 100), // bad
		path(120, 1e-4, 100), // best
		path(250, 1e-3, 100), // mediocre
	}
	// LIA/OLIA target the throughput of a single Reno-style TCP flow on
	// the best available path; compare against that baseline.
	best := singlePath(t, paths[1], tcpsim.Reno)
	for _, coupling := range []Coupling{LIA, OLIA} {
		cfg := DefaultConfig()
		cfg.Coupling = coupling
		cfg.Flow.Alg = tcpsim.Reno
		res := run(t, paths, cfg)
		if res.TotalThroughputMbps < best*0.8 {
			t.Errorf("%v: total %v below best path %v", coupling, res.TotalThroughputMbps, best)
		}
		if res.TotalThroughputMbps > 100 {
			t.Errorf("%v: total %v exceeds NIC", coupling, res.TotalThroughputMbps)
		}
	}
}

// TestUncoupledAggregates: uncoupled subflows should sum well past the
// best single path, up to the shared NIC.
func TestUncoupledAggregates(t *testing.T) {
	paths := []tcpsim.PathFunc{
		path(100, 1e-4, 100),
		path(120, 1e-4, 100),
		path(140, 1e-4, 100),
	}
	best := singlePath(t, paths[0], tcpsim.Cubic)
	cfg := DefaultConfig()
	cfg.Coupling = Uncoupled
	cfg.Flow.Alg = tcpsim.Cubic
	cfg.ConnRwndPkts = 0
	res := run(t, paths, cfg)
	if res.TotalThroughputMbps < best*1.3 {
		t.Errorf("uncoupled total %v should clearly exceed best path %v", res.TotalThroughputMbps, best)
	}
	if res.TotalThroughputMbps > 105 {
		t.Errorf("uncoupled total %v exceeds the 100 Mbps NIC", res.TotalThroughputMbps)
	}
}

// TestNICSharing: the shared access cap binds the aggregate.
func TestNICSharing(t *testing.T) {
	paths := []tcpsim.PathFunc{
		path(30, 0, 1000), path(40, 0, 1000), path(50, 0, 1000),
	}
	cfg := DefaultConfig()
	cfg.Coupling = Uncoupled
	cfg.Flow.Alg = tcpsim.Cubic
	cfg.SharedAccessMbps = 50
	cfg.ConnRwndPkts = 0
	res := run(t, paths, cfg)
	if res.TotalThroughputMbps > 60 {
		t.Errorf("total %v exceeds 50 Mbps shared NIC", res.TotalThroughputMbps)
	}
}

// TestFailover: a path that dies (100% loss) must not sink the connection;
// the survivors carry it.
func TestFailover(t *testing.T) {
	good := path(80, 1e-4, 100)
	dead := tcpsim.StaticPath(netsim.Metrics{
		BaseRTT:        80 * time.Millisecond,
		LossRate:       1.0,
		BottleneckMbps: 100,
		AvailableMbps:  100,
	})
	res := run(t, []tcpsim.PathFunc{good, dead}, DefaultConfig())
	aloneRes := singlePath(t, good, tcpsim.Cubic)
	if res.TotalThroughputMbps < aloneRes*0.6 {
		t.Errorf("with one dead path: %v, good path alone: %v", res.TotalThroughputMbps, aloneRes)
	}
	if res.SubflowMbps[1] > 0.5 {
		t.Errorf("dead subflow carried %v Mbps", res.SubflowMbps[1])
	}
}

// TestConnRwndCapsAggregate: the connection-level receive window bounds
// total in-flight data across subflows.
func TestConnRwndCapsAggregate(t *testing.T) {
	paths := []tcpsim.PathFunc{path(100, 0, 1000), path(100, 0, 1000)}
	cfg := DefaultConfig()
	cfg.Coupling = Uncoupled
	cfg.Flow.Alg = tcpsim.Cubic
	cfg.SharedAccessMbps = 0
	cfg.ConnRwndPkts = 200 // 200 pkts at 100ms -> ~23 Mbps
	res := run(t, paths, cfg)
	if res.TotalThroughputMbps > 30 {
		t.Errorf("total %v exceeds the connection rwnd cap (~23 Mbps)", res.TotalThroughputMbps)
	}
}

func TestSubflowBreakdownSums(t *testing.T) {
	paths := []tcpsim.PathFunc{path(60, 1e-4, 100), path(90, 1e-4, 100)}
	res := run(t, paths, DefaultConfig())
	var sum float64
	for _, s := range res.SubflowMbps {
		if s < 0 {
			t.Fatalf("negative subflow rate: %v", res.SubflowMbps)
		}
		sum += s
	}
	if diff := sum - res.TotalThroughputMbps; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("subflow sum %v != total %v", sum, res.TotalThroughputMbps)
	}
}

func TestCouplingString(t *testing.T) {
	if LIA.String() != "lia" || OLIA.String() != "olia" || Uncoupled.String() != "uncoupled" {
		t.Error("coupling names wrong")
	}
	if Coupling(99).String() == "" {
		t.Error("unknown coupling should still render")
	}
}

func TestDeterminism(t *testing.T) {
	paths := []tcpsim.PathFunc{path(60, 1e-4, 100), path(90, 2e-4, 100)}
	a, err := Run(rand.New(rand.NewSource(7)), paths, DefaultConfig(), tcpsim.Spec{Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rand.New(rand.NewSource(7)), paths, DefaultConfig(), tcpsim.Spec{Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalThroughputMbps != b.TotalThroughputMbps {
		t.Error("same seed produced different results")
	}
}
