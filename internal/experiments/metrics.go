package experiments

import (
	"cronets/internal/stats"
)

// RetransResult holds the Figure 4 data: the retransmission-rate
// distributions of the direct paths and of the best (lowest-retx) overlay
// tunnel per pair.
type RetransResult struct {
	Direct  []float64
	Overlay []float64
}

// DirectCDF returns the direct-path retransmission CDF (Figure 4, dotted).
func (r RetransResult) DirectCDF() *stats.CDF { return stats.NewCDF(r.Direct) }

// OverlayCDF returns the best-overlay retransmission CDF (Figure 4, solid).
func (r RetransResult) OverlayCDF() *stats.CDF { return stats.NewCDF(r.Overlay) }

// MedianDirect returns the median direct retransmission rate (paper:
// 2.69e-4).
func (r RetransResult) MedianDirect() float64 { return stats.Median(r.Direct) }

// MedianOverlay returns the median best-overlay retransmission rate
// (paper: 1.66e-5, an order of magnitude below direct).
func (r RetransResult) MedianOverlay() float64 { return stats.Median(r.Overlay) }

// RetransFrom derives the Figure 4 distributions from a controlled-
// experiment result.
func RetransFrom(res PrevalenceResult) RetransResult {
	var out RetransResult
	for _, pr := range res.Pairs {
		out.Direct = append(out.Direct, pr.Direct.RetransRate)
		if best, ok := pr.MinOverlayRetrans(); ok {
			out.Overlay = append(out.Overlay, best)
		}
	}
	return out
}

// RTTRatioResult holds the Figure 5 data: per pair, the ratio of the
// minimum overlay-tunnel average RTT to the direct path's average RTT.
type RTTRatioResult struct {
	Ratios []float64
	// DirectRTTMs records each pair's direct average RTT in milliseconds,
	// parallel to Ratios, for the >=100 ms / >=150 ms breakdowns.
	DirectRTTMs []float64
}

// CDF returns the RTT-ratio CDF (Figure 5).
func (r RTTRatioResult) CDF() *stats.CDF { return stats.NewCDF(r.Ratios) }

// FracReduced returns the fraction of pairs whose best overlay tunnel has a
// lower average RTT than the direct path (paper: 52%).
func (r RTTRatioResult) FracReduced() float64 {
	if len(r.Ratios) == 0 {
		return 0
	}
	n := 0
	for _, x := range r.Ratios {
		if x < 1 {
			n++
		}
	}
	return float64(n) / float64(len(r.Ratios))
}

// FracReducedAboveRTT returns the fraction of pairs with direct RTT of at
// least minMs milliseconds whose RTT the overlay reduces (paper: 68% at
// 100 ms, 90% at 150 ms).
func (r RTTRatioResult) FracReducedAboveRTT(minMs float64) float64 {
	n, reduced := 0, 0
	for i, x := range r.Ratios {
		if r.DirectRTTMs[i] < minMs {
			continue
		}
		n++
		if x < 1 {
			reduced++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(reduced) / float64(n)
}

// RTTRatiosFrom derives the Figure 5 distribution from a controlled-
// experiment result.
func RTTRatiosFrom(res PrevalenceResult) RTTRatioResult {
	var out RTTRatioResult
	for _, pr := range res.Pairs {
		best, ok := pr.MinOverlayRTT()
		if !ok || pr.Direct.AvgRTT <= 0 {
			continue
		}
		out.Ratios = append(out.Ratios, float64(best)/float64(pr.Direct.AvgRTT))
		out.DirectRTTMs = append(out.DirectRTTMs, float64(pr.Direct.AvgRTT.Milliseconds()))
	}
	return out
}
