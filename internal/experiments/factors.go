package experiments

import (
	"fmt"
	"math"

	"cronets/internal/c45"
	"cronets/internal/core"
	"cronets/internal/stats"
)

// BinRow is one bar of Figures 9 and 10: a bin of direct paths by RTT or
// loss rate, with the median throughput-improvement ratio, its median
// absolute deviation, the fraction of paths improved, and the bin size.
type BinRow struct {
	Label        string
	N            int
	MedianRatio  float64
	MAD          float64
	FracImproved float64
}

// String renders the row as a fixed-width table line.
func (b BinRow) String() string {
	return fmt.Sprintf("%-14s n=%-4d median=%5.2f mad=%5.2f improved=%3.0f%%",
		b.Label, b.N, b.MedianRatio, b.MAD, b.FracImproved*100)
}

// pairRatio is the per-pair record feeding the Section V analyses: the
// direct path's attributes and the best split-overlay improvement ratio.
type pairRatio struct {
	directRTTms float64
	directLoss  float64
	directThr   float64
	ratio       float64
}

func pairRatios(res PrevalenceResult) []pairRatio {
	var out []pairRatio
	for _, pr := range res.Pairs {
		best, ok := pr.BestOverlay(core.SplitOverlay)
		if !ok || pr.Direct.ThroughputMbps <= 0 {
			continue
		}
		out = append(out, pairRatio{
			directRTTms: float64(pr.Direct.AvgRTT.Milliseconds()),
			directLoss:  pr.Direct.RetransRate,
			directThr:   pr.Direct.ThroughputMbps,
			ratio:       best.ThroughputMbps / pr.Direct.ThroughputMbps,
		})
	}
	return out
}

// RTTBins reproduces Figure 9: direct paths binned by average RTT
// ([0,70), [70,140), [140,210), [210,280), [280,inf) ms) against the
// median improvement ratio of the best overlay path.
func RTTBins(res PrevalenceResult) []BinRow {
	return binRows(pairRatios(res), []float64{0, 70, 140, 210, 280},
		func(p pairRatio) float64 { return p.directRTTms })
}

// LossBins reproduces Figure 10: direct paths binned by loss rate
// ({0}, (0,0.0025), [0.0025,0.005), [0.005,inf)).
func LossBins(res PrevalenceResult) []BinRow {
	prs := pairRatios(res)
	// The zero-loss bin is exact in the paper; make the first edge a
	// degenerate bin by splitting at the smallest positive loss.
	var zero, rest []pairRatio
	for _, p := range prs {
		if p.directLoss == 0 {
			zero = append(zero, p)
		} else {
			rest = append(rest, p)
		}
	}
	rows := []BinRow{rowFromSamples("[0]", ratios(zero))}
	rows = append(rows, binRows(rest, []float64{0, 0.0025, 0.005},
		func(p pairRatio) float64 { return p.directLoss })...)
	// Relabel the first non-zero bin to the paper's open interval.
	if len(rows) > 1 {
		rows[1].Label = "(0,0.0025)"
	}
	return rows
}

func binRows(prs []pairRatio, edges []float64, key func(pairRatio) float64) []BinRow {
	bins := stats.BinBy(prs, edges, key, func(p pairRatio) float64 { return p.ratio })
	rows := make([]BinRow, 0, len(bins))
	for _, b := range bins {
		rows = append(rows, rowFromSamples(b.Label(), b.Samples))
	}
	return rows
}

func rowFromSamples(label string, samples []float64) BinRow {
	return BinRow{
		Label:        label,
		N:            len(samples),
		MedianRatio:  stats.Median(samples),
		MAD:          stats.MedianAbsDev(samples),
		FracImproved: stats.FractionAbove(samples, 1),
	}
}

func ratios(prs []pairRatio) []float64 {
	out := make([]float64, len(prs))
	for i, p := range prs {
		out[i] = p.ratio
	}
	return out
}

// ScatterPoint is one point of Figure 11: direct throughput on X, the
// throughput increase ratio (T_overlay - T_direct)/T_direct on Y.
type ScatterPoint struct {
	DirectMbps    float64
	IncreaseRatio float64
}

// Scatter reproduces Figure 11 from the controlled experiment.
func Scatter(res PrevalenceResult) []ScatterPoint {
	var out []ScatterPoint
	for _, p := range pairRatios(res) {
		out = append(out, ScatterPoint{
			DirectMbps:    p.directThr,
			IncreaseRatio: p.ratio - 1,
		})
	}
	return out
}

// ScatterSummary condenses Figure 11's headline observation: almost all
// direct paths under 10 Mbps improve, and most of them more than double.
type ScatterSummary struct {
	// FracSlowImproved is the fraction of sub-10 Mbps direct paths with a
	// positive increase ratio.
	FracSlowImproved float64
	// FracSlowDoubled is the fraction of sub-10 Mbps direct paths whose
	// increase ratio exceeds 1 (throughput more than doubled).
	FracSlowDoubled float64
	// SlowN is the number of sub-10 Mbps direct paths.
	SlowN int
}

// SummarizeScatter computes the Figure 11 headline statistics.
func SummarizeScatter(points []ScatterPoint) ScatterSummary {
	var s ScatterSummary
	for _, p := range points {
		if p.DirectMbps >= 10 {
			continue
		}
		s.SlowN++
		if p.IncreaseRatio > 0 {
			s.FracSlowImproved++
		}
		if p.IncreaseRatio > 1 {
			s.FracSlowDoubled++
		}
	}
	if s.SlowN > 0 {
		s.FracSlowImproved /= float64(s.SlowN)
		s.FracSlowDoubled /= float64(s.SlowN)
	}
	return s
}

// ThresholdResult reports the C4.5 analysis of Section V-B: the loss and
// RTT conditions under which an overlay path has a high likelihood of
// improving throughput. The paper finds that simultaneous reductions of
// 12.1% (loss) and 10.5% (RTT) suffice. On this substrate the tree learns
// the same structure with a near-identical loss threshold; the RTT
// condition comes out as an upper bound on the *relative RTT change*
// (receive-window-limited transfers tolerate modest RTT increases when
// loss drops, so the split point can sit above zero).
type ThresholdResult struct {
	// LossReductionPct is the learned loss-reduction threshold as a
	// positive percentage (paper: 12.1).
	LossReductionPct float64
	// RTTChangeMaxPct is the learned upper bound on the relative RTT
	// change, in percent: negative values demand a reduction (the paper's
	// -10.5%), positive values tolerate up to that much increase.
	RTTChangeMaxPct float64
	// Accuracy is the tree's training-set accuracy.
	Accuracy float64
	// Rules are the extracted decision rules.
	Rules []c45.Rule
	// Samples is the training-set size.
	Samples int
}

// C45Thresholds trains a C4.5 tree on (relative RTT change, relative loss
// change) -> improved? samples drawn from every overlay path of the
// controlled experiment, then extracts the reduction thresholds from the
// learned split points, mirroring the paper's analysis.
func C45Thresholds(res PrevalenceResult) (ThresholdResult, error) {
	var samples []c45.Sample
	for _, pr := range res.Pairs {
		if pr.Direct.ThroughputMbps <= 0 || pr.Direct.AvgRTT <= 0 {
			continue
		}
		for _, o := range pr.Overlays {
			dRTT := float64(o.Plain.AvgRTT-pr.Direct.AvgRTT) / float64(pr.Direct.AvgRTT)
			dLoss := 0.0
			if pr.Direct.RetransRate > 0 {
				dLoss = (o.Plain.RetransRate - pr.Direct.RetransRate) / pr.Direct.RetransRate
			} else if o.Plain.RetransRate > 0 {
				dLoss = 1
			}
			label := "not-improved"
			if o.Plain.ThroughputMbps > pr.Direct.ThroughputMbps {
				label = "improved"
			}
			samples = append(samples, c45.Sample{Attrs: []float64{dRTT, dLoss}, Label: label})
		}
	}
	tree, err := c45.Train(samples, []string{"dRTT", "dLoss"}, c45.DefaultConfig())
	if err != nil {
		return ThresholdResult{}, fmt.Errorf("experiments: c4.5: %w", err)
	}
	out := ThresholdResult{
		Accuracy: tree.Accuracy(samples),
		Rules:    tree.Rules(),
		Samples:  len(samples),
	}
	// The paper's thresholds describe the outer boundary of the
	// "improved" region: the loosest conditions that still predict a
	// gain. Among well-supported improved rules (>= 5% of the improved
	// mass), pick the one with the least demanding loss bound and report
	// its conditions.
	var improvedSupport int
	for _, r := range out.Rules {
		if r.Label == "improved" {
			improvedSupport += r.Support
		}
	}
	bestLoss := math.Inf(-1)
	for _, r := range out.Rules {
		if r.Label != "improved" || r.Support*10 < improvedSupport {
			continue
		}
		rtt, rttOK, loss, lossOK := ruleThresholds(r)
		if !lossOK || loss <= bestLoss {
			continue
		}
		bestLoss = loss
		if loss < 0 {
			out.LossReductionPct = -loss * 100
		} else {
			out.LossReductionPct = 0
		}
		if rttOK {
			out.RTTChangeMaxPct = rtt * 100
		} else {
			out.RTTChangeMaxPct = 0
		}
	}
	return out, nil
}

// ruleThresholds extracts the tightest "attr <= t" thresholds from a
// rule's conditions for dRTT and dLoss.
func ruleThresholds(r c45.Rule) (dRTT float64, rttOK bool, dLoss float64, lossOK bool) {
	dRTT, dLoss = math.Inf(1), math.Inf(1)
	for _, cond := range r.Conds {
		var name string
		var thr float64
		if n, err := fmt.Sscanf(cond, "%s <= %g", &name, &thr); err == nil && n == 2 {
			switch name {
			case "dRTT":
				if thr < dRTT {
					dRTT, rttOK = thr, true
				}
			case "dLoss":
				if thr < dLoss {
					dLoss, lossOK = thr, true
				}
			}
		}
	}
	if !rttOK {
		dRTT = 0
	}
	if !lossOK {
		dLoss = 0
	}
	return dRTT, rttOK, dLoss, lossOK
}
