package experiments

import (
	"fmt"
	"sort"
	"time"

	"cronets/internal/core"
	"cronets/internal/stats"
	"cronets/internal/topology"
)

// LongitudinalConfig parameterizes the Section IV experiment. Defaults
// match the paper: the 30 most-improved paths, 50 samples at a 3-hour
// interval over a week.
type LongitudinalConfig struct {
	TopPaths     int
	Samples      int
	Interval     time.Duration
	Start        time.Duration // first sample time (after the transient event)
	TolerancePct float64       // "as good as the best" tolerance for Figure 7
}

// DefaultLongitudinalConfig returns the paper's setup.
func DefaultLongitudinalConfig() LongitudinalConfig {
	return LongitudinalConfig{
		TopPaths:     30,
		Samples:      50,
		Interval:     3 * time.Hour,
		Start:        transientEventEnd + time.Hour,
		TolerancePct: 5,
	}
}

// LongitudinalPath is one of the tracked paths with its per-sample
// measurements.
type LongitudinalPath struct {
	// Index is the paper's path index (1 = largest improvement in the
	// original controlled measurement).
	Index int
	// Src and Dst identify the pair.
	Src, Dst topology.Host
	// DirectMbps holds one direct-path throughput per sample.
	DirectMbps []float64
	// OverlayMbps[dc][sample] holds the split-overlay throughput through
	// each overlay DC, per sample.
	OverlayMbps map[string][]float64
	// DCs lists the overlay DC cities in a deterministic order.
	DCs []string
}

// MaxOverlayPerSample returns, per sample, the maximum split-overlay
// throughput across the DCs (the right bars of Figure 6).
func (p LongitudinalPath) MaxOverlayPerSample() []float64 {
	out := make([]float64, len(p.DirectMbps))
	for _, dc := range p.DCs {
		for i, v := range p.OverlayMbps[dc] {
			if i < len(out) && v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// Fig6Row is one bar pair of Figure 6.
type Fig6Row struct {
	Index          int
	DirectMean     float64
	DirectStd      float64
	OverlayMean    float64
	OverlayStd     float64
	AvgImprovement float64 // mean over samples of max-overlay/direct
}

// LongitudinalResult holds the Section IV outputs.
type LongitudinalResult struct {
	Paths []LongitudinalPath
	// Rows are the Figure 6 bars, ordered by path index.
	Rows []Fig6Row
	// MinOverlayNodes is Figure 7: per path index, the minimum number of
	// overlay nodes needed to stay within tolerance of the best observed
	// throughput in every sample.
	MinOverlayNodes []int
	// NodeCountRows is Table I: for each overlay-node budget k, the mean
	// and median (across paths) of the per-path average improvement
	// factors achievable with the best k-subset of overlay nodes.
	NodeCountRows []NodeCountRow
}

// NodeCountRow is one row of Table I.
type NodeCountRow struct {
	Nodes        int
	MeanFactor   float64
	MedianFactor float64
}

// FracImproved returns the fraction of tracked paths whose average
// improvement exceeds 1 (paper: 90% of the 30 paths).
func (r LongitudinalResult) FracImproved() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.AvgImprovement > 1 {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// ImprovementStats returns the mean and median of the per-path average
// improvement ratios over the improved paths (paper: 8.39 and 7.58).
func (r LongitudinalResult) ImprovementStats() (mean, median float64) {
	var xs []float64
	for _, row := range r.Rows {
		if row.AvgImprovement > 1 {
			xs = append(xs, row.AvgImprovement)
		}
	}
	m, _ := stats.MeanFinite(xs)
	return m, stats.Median(xs)
}

// FracNeedingAtMost returns the fraction of paths needing at most k
// overlay nodes (paper: 70% with k=2).
func (r LongitudinalResult) FracNeedingAtMost(k int) float64 {
	if len(r.MinOverlayNodes) == 0 {
		return 0
	}
	n := 0
	for _, m := range r.MinOverlayNodes {
		if m <= k {
			n++
		}
	}
	return float64(n) / float64(len(r.MinOverlayNodes))
}

// RunLongitudinal reproduces Section IV: select the TopPaths controlled
// pairs with the highest split-overlay improvement, then resample direct
// and per-DC split-overlay throughput Samples times at Interval spacing,
// starting after the transient event window (so the event-affected paths
// saturate, as the paper observed for its indexes 1, 2 and 4).
func (s *Suite) RunLongitudinal(controlled PrevalenceResult, cfg LongitudinalConfig) (LongitudinalResult, error) {
	if cfg.TopPaths <= 0 || cfg.Samples <= 0 {
		return LongitudinalResult{}, fmt.Errorf("experiments: longitudinal config needs paths and samples")
	}
	type ranked struct {
		pr    core.PairResult
		ratio float64
	}
	var cands []ranked
	for _, pr := range controlled.Pairs {
		best, ok := pr.BestOverlay(core.SplitOverlay)
		if !ok || pr.Direct.ThroughputMbps <= 0 {
			continue
		}
		cands = append(cands, ranked{pr, best.ThroughputMbps / pr.Direct.ThroughputMbps})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].ratio > cands[j].ratio })
	if len(cands) > cfg.TopPaths {
		cands = cands[:cfg.TopPaths]
	}

	spec := defaultControlledSpec()
	var out LongitudinalResult
	for idx, c := range cands {
		src, dst := c.pr.Src, c.pr.Dst
		dcs := make([]string, 0, len(c.pr.Overlays))
		for _, o := range c.pr.Overlays {
			dcs = append(dcs, o.DC)
		}
		lp := LongitudinalPath{
			Index:       idx + 1,
			Src:         src,
			Dst:         dst,
			OverlayMbps: make(map[string][]float64, len(dcs)),
			DCs:         dcs,
		}
		for sample := 0; sample < cfg.Samples; sample++ {
			at := cfg.Start + time.Duration(sample)*cfg.Interval
			rng := s.rngFor("longitudinal", idx*10_000+sample)
			direct, _, err := s.CN.MeasureDirect(rng, src, dst, spec, at)
			if err != nil {
				return LongitudinalResult{}, fmt.Errorf("experiments: longitudinal direct %d: %w", idx, err)
			}
			lp.DirectMbps = append(lp.DirectMbps, direct.ThroughputMbps)
			for _, dc := range dcs {
				om, err := s.CN.MeasureOverlay(rng, src, dst, dc, spec, at)
				if err != nil {
					return LongitudinalResult{}, fmt.Errorf("experiments: longitudinal overlay %d via %s: %w", idx, dc, err)
				}
				lp.OverlayMbps[dc] = append(lp.OverlayMbps[dc], om.Split.ThroughputMbps)
			}
		}
		out.Paths = append(out.Paths, lp)
		out.Rows = append(out.Rows, fig6Row(lp))
		out.MinOverlayNodes = append(out.MinOverlayNodes, minOverlayNodes(lp, cfg.TolerancePct))
	}
	out.NodeCountRows = nodeCountRows(out.Paths)
	return out, nil
}

func fig6Row(p LongitudinalPath) Fig6Row {
	maxOv := p.MaxOverlayPerSample()
	var ratios []float64
	for i := range p.DirectMbps {
		ratios = append(ratios, stats.ImprovementRatio(maxOv[i], p.DirectMbps[i]))
	}
	mean, _ := stats.MeanFinite(ratios)
	return Fig6Row{
		Index:          p.Index,
		DirectMean:     stats.Mean(p.DirectMbps),
		DirectStd:      stats.StdDev(p.DirectMbps),
		OverlayMean:    stats.Mean(maxOv),
		OverlayStd:     stats.StdDev(maxOv),
		AvgImprovement: mean,
	}
}

// minOverlayNodes finds the smallest subset of overlay DCs that achieves,
// in every sample, at least (1 - tolerancePct/100) of the best observed
// throughput across all DCs for that sample. Subsets are enumerated
// exhaustively (there are at most 2^8 of them).
func minOverlayNodes(p LongitudinalPath, tolerancePct float64) int {
	nDC := len(p.DCs)
	if nDC == 0 {
		return 0
	}
	samples := len(p.DirectMbps)
	best := make([]float64, samples)
	perDC := make([][]float64, nDC)
	for d, dc := range p.DCs {
		perDC[d] = p.OverlayMbps[dc]
		for i, v := range perDC[d] {
			if i < samples && v > best[i] {
				best[i] = v
			}
		}
	}
	tol := 1 - tolerancePct/100
	for size := 1; size <= nDC; size++ {
		for mask := 1; mask < 1<<nDC; mask++ {
			if popcount(mask) != size {
				continue
			}
			ok := true
			for i := 0; i < samples && ok; i++ {
				subsetBest := 0.0
				for d := 0; d < nDC; d++ {
					if mask&(1<<d) != 0 && i < len(perDC[d]) && perDC[d][i] > subsetBest {
						subsetBest = perDC[d][i]
					}
				}
				if subsetBest < best[i]*tol {
					ok = false
				}
			}
			if ok {
				return size
			}
		}
	}
	return nDC
}

// nodeCountRows builds Table I: for k = 1..#DCs, pick for each path the
// k-subset of overlay nodes with the highest average of per-sample subset
// maxima, compute that path's average improvement factor, then report the
// mean and median across paths.
func nodeCountRows(paths []LongitudinalPath) []NodeCountRow {
	if len(paths) == 0 {
		return nil
	}
	nDC := len(paths[0].DCs)
	rows := make([]NodeCountRow, 0, nDC)
	for k := 1; k <= nDC; k++ {
		var factors []float64
		for _, p := range paths {
			factors = append(factors, bestSubsetFactor(p, k))
		}
		mean, _ := stats.MeanFinite(factors)
		rows = append(rows, NodeCountRow{Nodes: k, MeanFactor: mean, MedianFactor: stats.Median(factors)})
	}
	return rows
}

func bestSubsetFactor(p LongitudinalPath, k int) float64 {
	nDC := len(p.DCs)
	samples := len(p.DirectMbps)
	perDC := make([][]float64, nDC)
	for d, dc := range p.DCs {
		perDC[d] = p.OverlayMbps[dc]
	}
	bestAvg := 0.0
	bestFactor := 0.0
	for mask := 1; mask < 1<<nDC; mask++ {
		if popcount(mask) != k {
			continue
		}
		var sum float64
		var ratios []float64
		for i := 0; i < samples; i++ {
			subsetBest := 0.0
			for d := 0; d < nDC; d++ {
				if mask&(1<<d) != 0 && i < len(perDC[d]) && perDC[d][i] > subsetBest {
					subsetBest = perDC[d][i]
				}
			}
			sum += subsetBest
			ratios = append(ratios, stats.ImprovementRatio(subsetBest, p.DirectMbps[i]))
		}
		if sum > bestAvg {
			bestAvg = sum
			mean, _ := stats.MeanFinite(ratios)
			bestFactor = mean
		}
	}
	return bestFactor
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
