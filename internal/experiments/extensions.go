package experiments

import (
	"fmt"
	"sort"

	"cronets/internal/core"
	"cronets/internal/cost"
	"cronets/internal/placement"
	"cronets/internal/stats"
)

// The runners in this file cover the paper's Section VII future-work
// items: multi-hop overlay paths (VII-B), overlay node selection (VII-A),
// higher-bandwidth overlay nodes (VII-C), and the cost comparison (VII-D
// and the abstract's "a tenth of the cost" claim).

// MultiHopRow compares, for one pair, the best one-hop split overlay with
// the best two-hop split overlay.
type MultiHopRow struct {
	Src, Dst   string
	DirectMbps float64
	OneHopMbps float64
	OneHopVia  string
	TwoHopMbps float64
	TwoHopVia  string
}

// MultiHopResult holds the Section VII-B study.
type MultiHopResult struct {
	Rows []MultiHopRow
}

// FracTwoHopBetter is the fraction of pairs where some two-hop overlay
// beats the best one-hop overlay by more than 5%.
func (r MultiHopResult) FracTwoHopBetter() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.TwoHopMbps > row.OneHopMbps*1.05 {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// MedianTwoHopGain is the median of two-hop/one-hop throughput ratios.
func (r MultiHopResult) MedianTwoHopGain() float64 {
	var ratios []float64
	for _, row := range r.Rows {
		if row.OneHopMbps > 0 {
			ratios = append(ratios, row.TwoHopMbps/row.OneHopMbps)
		}
	}
	return stats.Median(ratios)
}

// RunMultiHop measures, for the first nPairs controlled pairs, every
// one-hop overlay and every ordered two-hop DC combination, comparing the
// best of each (Section VII-B).
func (s *Suite) RunMultiHop(controlled PrevalenceResult, nPairs int) (MultiHopResult, error) {
	if nPairs <= 0 || nPairs > len(controlled.Pairs) {
		nPairs = len(controlled.Pairs)
	}
	spec := defaultControlledSpec()
	var out MultiHopResult
	for i := 0; i < nPairs; i++ {
		pr := controlled.Pairs[i]
		row := MultiHopRow{
			Src: pr.Src.Name, Dst: pr.Dst.Name,
			DirectMbps: pr.Direct.ThroughputMbps,
		}
		if best, ok := pr.BestOverlay(core.SplitOverlay); ok {
			row.OneHopMbps = best.ThroughputMbps
			row.OneHopVia = best.DC
		}
		dcs := make([]string, 0, len(pr.Overlays))
		for _, o := range pr.Overlays {
			dcs = append(dcs, o.DC)
		}
		idx := 0
		for _, dc1 := range dcs {
			for _, dc2 := range dcs {
				if dc1 == dc2 {
					continue
				}
				rng := s.rngFor("multihop", i*10_000+idx)
				idx++
				m, err := s.CN.MeasureTwoHop(rng, pr.Src, pr.Dst, dc1, dc2, spec, 0)
				if err != nil {
					return MultiHopResult{}, fmt.Errorf("experiments: two-hop %s,%s: %w", dc1, dc2, err)
				}
				if m.Split.ThroughputMbps > row.TwoHopMbps {
					row.TwoHopMbps = m.Split.ThroughputMbps
					row.TwoHopVia = m.Split.DC
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// PlacementResult holds the Section VII-A node-selection study: greedy
// placement quality as a function of the node budget k.
type PlacementResult struct {
	// Chosen[k] is the greedy choice with budget k+1.
	Chosen [][]string
	// ObjectiveFrac[k] is the greedy objective as a fraction of the
	// all-DCs objective for budget k+1.
	ObjectiveFrac []float64
	// Coverage[k] is the fraction of pairs within 5% of their all-DCs
	// throughput under budget k+1.
	Coverage []float64
}

// RunPlacement converts the controlled measurement into placement samples
// (split-overlay throughput per DC) and evaluates greedy budgets 1..max.
func RunPlacement(controlled PrevalenceResult, maxBudget int) (PlacementResult, error) {
	var pairs []placement.PairSamples
	for _, pr := range controlled.Pairs {
		ps := placement.PairSamples{
			Name:        pr.Src.Name + "->" + pr.Dst.Name,
			DirectMbps:  pr.Direct.ThroughputMbps,
			OverlayMbps: make(map[string]float64, len(pr.Overlays)),
		}
		for _, o := range pr.Overlays {
			ps.OverlayMbps[o.DC] = o.Split.ThroughputMbps
		}
		pairs = append(pairs, ps)
	}
	all := placement.Candidates(pairs)
	allObjective := placement.Objective(pairs, all)
	if maxBudget <= 0 || maxBudget > len(all) {
		maxBudget = len(all)
	}
	var out PlacementResult
	for k := 1; k <= maxBudget; k++ {
		chosen, err := placement.Greedy(pairs, k)
		if err != nil {
			return PlacementResult{}, err
		}
		out.Chosen = append(out.Chosen, chosen)
		frac := 1.0
		if allObjective > 0 {
			frac = placement.Objective(pairs, chosen) / allObjective
		}
		out.ObjectiveFrac = append(out.ObjectiveFrac, frac)
		out.Coverage = append(out.Coverage, placement.Coverage(pairs, chosen, 0.05))
	}
	return out, nil
}

// CostRow is one line of the Section VII-D cost table.
type CostRow struct {
	Scenario      string
	Nodes         int
	Spec          cost.NodeSpec
	AchievedMbps  float64
	OverlayUSD    float64
	LeasedUSD     float64
	SavingsFactor float64
}

// String renders the row.
func (r CostRow) String() string {
	return fmt.Sprintf("%-28s nodes=%d port=%dMbps traffic=%dGB  overlay=$%.0f/mo  leased=$%.0f/mo  savings=%.1fx",
		r.Scenario, r.Nodes, int(r.Spec.Port), r.Spec.MonthlyTrafficGB,
		r.OverlayUSD, r.LeasedUSD, r.SavingsFactor)
}

// CostTable prices the deployment options of Section VII-D against leased
// lines, using the achieved throughput of the controlled experiment's
// median improved pair as the comparable committed rate.
func CostTable(controlled PrevalenceResult) ([]CostRow, error) {
	// Achieved throughput: median best-split across improved pairs.
	var achieved []float64
	for _, pr := range controlled.Pairs {
		if best, ok := pr.BestOverlay(core.SplitOverlay); ok && best.ThroughputMbps > pr.Direct.ThroughputMbps {
			achieved = append(achieved, best.ThroughputMbps)
		}
	}
	sort.Float64s(achieved)
	rate := stats.Median(achieved)
	if rate <= 0 {
		rate = 50
	}
	pricing := cost.DefaultPricing()
	traffic := cost.TrafficGBForRate(rate, 0.3) // 30% duty cycle
	scenarios := []struct {
		name  string
		nodes int
		spec  cost.NodeSpec
	}{
		{"virtual 100Mbps x2", 2, cost.NodeSpec{Class: cost.Virtual, Port: cost.Port100Mbps, MonthlyTrafficGB: traffic}},
		{"virtual 1Gbps x2", 2, cost.NodeSpec{Class: cost.Virtual, Port: cost.Port1Gbps, MonthlyTrafficGB: traffic}},
		{"virtual 100Mbps x4", 4, cost.NodeSpec{Class: cost.Virtual, Port: cost.Port100Mbps, MonthlyTrafficGB: traffic}},
		{"bare-metal 10Gbps x2", 2, cost.NodeSpec{Class: cost.BareMetal, Port: cost.Port10Gbps, MonthlyTrafficGB: 0}},
	}
	rows := make([]CostRow, 0, len(scenarios))
	for _, sc := range scenarios {
		cmp, err := pricing.Compare(sc.nodes, sc.spec, rate)
		if err != nil {
			return nil, fmt.Errorf("experiments: cost table: %w", err)
		}
		rows = append(rows, CostRow{
			Scenario:      sc.name,
			Nodes:         sc.nodes,
			Spec:          sc.spec,
			AchievedMbps:  cmp.AchievedMbps,
			OverlayUSD:    cmp.OverlayUSD,
			LeasedUSD:     cmp.LeasedLineUSD,
			SavingsFactor: cmp.SavingsFactor,
		})
	}
	return rows, nil
}

// HighBandwidthResult compares overlay gains with 100 Mbps vs 1 Gbps
// overlay-node NICs (Section VII-C): with the NIC cap lifted, split
// overlays on fat paths keep scaling.
type HighBandwidthResult struct {
	Split100  RatioSummary
	Split1000 RatioSummary
}

// RunHighBandwidth reruns the controlled experiment with 1 Gbps overlay
// NICs on a fresh suite and compares the split-overlay summaries.
func RunHighBandwidth(seed int64, scale Scale) (HighBandwidthResult, error) {
	base, err := NewSuite(seed, scale)
	if err != nil {
		return HighBandwidthResult{}, err
	}
	res100, err := base.RunControlled()
	if err != nil {
		return HighBandwidthResult{}, err
	}

	cfg := suiteTopologyConfig(seed, scale)
	cfg.CloudNICMbps = 1000
	fat, err := newSuite(seed, cfg)
	if err != nil {
		return HighBandwidthResult{}, err
	}
	res1000, err := fat.RunControlled()
	if err != nil {
		return HighBandwidthResult{}, err
	}
	return HighBandwidthResult{
		Split100:  res100.SplitSummary(),
		Split1000: res1000.SplitSummary(),
	}, nil
}
