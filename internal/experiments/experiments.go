// Package experiments contains one runner per table and figure of the
// paper's evaluation, driving the simulation substrate with the same
// workloads (scaled to the paper's sizes) and producing the same rows and
// series. cmd/cronets-bench and the repository benchmarks call into this
// package.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cronets/internal/core"
	"cronets/internal/netsim"
	"cronets/internal/stats"
	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

// Scale selects the workload size: Full reproduces the paper's numbers;
// Small keeps unit tests fast.
type Scale int

// Workload scales.
const (
	ScaleFull Scale = iota + 1
	ScaleSmall
)

// Suite binds a generated Internet, the CRONet on top of it, and the
// experiment seed. All experiment runners hang off it.
type Suite struct {
	In   *topology.Internet
	CN   *core.CRONet
	Seed int64

	// eventClient is the client whose direct paths suffer a transient
	// intermediate-ISP congestion event during the controlled measurement
	// window (the mechanism the paper invokes for longitudinal path
	// indexes 1, 2 and 4).
	eventClient topology.Host
}

// transientEventEnd is when the injected intermediate-ISP event clears.
// Controlled measurements run at time 0 (inside the event); longitudinal
// samples start after it.
const transientEventEnd = 2 * time.Hour

// NewSuite generates the topology and CRONet for the experiments.
func NewSuite(seed int64, scale Scale) (*Suite, error) {
	return newSuite(seed, suiteTopologyConfig(seed, scale))
}

// NewSuiteFromTopology builds a suite over a custom topology configuration
// (ablation studies tweak link parameters and rerun the experiments).
func NewSuiteFromTopology(seed int64, cfg topology.Config) (*Suite, error) {
	return newSuite(seed, cfg)
}

// suiteTopologyConfig returns the standard experiment topology at the
// given scale, for runners that need to tweak it (e.g. the Section VII-C
// high-bandwidth study).
func suiteTopologyConfig(seed int64, scale Scale) topology.Config {
	cfg := topology.DefaultConfig(seed)
	if scale == ScaleSmall {
		cfg.ClientStubs = 16
		cfg.ServerStubs = 4
	}
	return cfg
}

// NewMPTCPSuite generates the 9-data-center topology of the paper's
// Section VI validation.
func NewMPTCPSuite(seed int64, scale Scale) (*Suite, error) {
	cfg := topology.DefaultConfig(seed)
	cfg.CloudDCCities = []string{
		"WashingtonDC", "SanJose", "Dallas", "Amsterdam", "Tokyo",
		"London", "Singapore", "Sydney", "SaoPaulo",
	}
	if scale == ScaleSmall {
		cfg.ClientStubs = 8
		cfg.ServerStubs = 2
		cfg.CloudDCCities = cfg.CloudDCCities[:5]
	}
	return newSuite(seed, cfg)
}

func newSuite(seed int64, cfg topology.Config) (*Suite, error) {
	in, err := topology.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate topology: %w", err)
	}
	s := &Suite{
		In:   in,
		CN:   core.New(in, core.DefaultConfig()),
		Seed: seed,
	}
	s.injectTransientEvent()
	return s, nil
}

// injectTransientEvent puts a strong congestion event, active only during
// the controlled-measurement window, on the provider-side links of one
// deterministic client. Direct paths toward that client measure terribly at
// time 0 and recover afterwards — reproducing the paper's observation that
// its largest-improvement paths were transient victims.
func (s *Suite) injectTransientEvent() {
	if len(s.In.Clients) == 0 {
		return
	}
	s.eventClient = s.In.Clients[len(s.In.Clients)/3]
	// Congest the middle link of the default route from each sender
	// toward the event client: an intermediate-ISP event the overlay
	// detours around, exactly the scenario the paper describes.
	seen := make(map[[2]netsim.NodeID]bool)
	// Only the cloud senders' routes: the longitudinal experiment tracks
	// controlled (DC-sender) pairs, and hitting more routes would bleed
	// the event into unrelated pairs' middles.
	senders := make([]topology.Host, 0, len(s.In.DCOrder))
	for _, city := range s.In.DCOrder {
		senders = append(senders, s.In.DCs[city])
	}
	for _, from := range senders {
		p, err := s.In.RouterPath(from, s.eventClient)
		if err != nil || len(p.Nodes) < 6 {
			continue
		}
		// Hit the provider-internal link two hops before the client's stub
		// router: far enough in that overlays entering the region
		// elsewhere bypass it, close enough out that few other pairs'
		// routes share it.
		i := len(p.Nodes) - 4
		a, b := p.Nodes[i], p.Nodes[i+1]
		if a > b {
			a, b = b, a
		}
		if seen[[2]netsim.NodeID{a, b}] {
			continue
		}
		seen[[2]netsim.NodeID{a, b}] = true
		if l, ok := s.In.Net.Link(a, b); ok {
			l.AddEvent(netsim.CongestionEvent{
				Start:            0,
				End:              transientEventEnd,
				ExtraUtilization: 0.18,
				ExtraLoss:        0.004,
			})
		}
	}
}

// EventClient returns the client targeted by the injected transient event.
func (s *Suite) EventClient() topology.Host { return s.eventClient }

// RatioSummary condenses a set of improvement ratios into the statistics
// the paper reports for each CDF curve.
type RatioSummary struct {
	// N is the number of pairs summarized.
	N int
	// FracImproved is the fraction of ratios > 1.
	FracImproved float64
	// FracAtLeast25 is the fraction of ratios >= 1.25.
	FracAtLeast25 float64
	// Mean is the mean ratio over finite samples.
	Mean float64
	// Median is the median ratio.
	Median float64
}

// SummarizeRatios computes the summary of a ratio sample.
func SummarizeRatios(rs []float64) RatioSummary {
	mean, _ := stats.MeanFinite(rs)
	finite := make([]float64, 0, len(rs))
	for _, r := range rs {
		if !math.IsInf(r, 0) && !math.IsNaN(r) {
			finite = append(finite, r)
		}
	}
	return RatioSummary{
		N:             len(rs),
		FracImproved:  stats.FractionAbove(rs, 1),
		FracAtLeast25: 1 - stats.NewCDF(rs).At(1.25) + fracEqual(rs, 1.25),
		Mean:          mean,
		Median:        stats.Median(finite),
	}
}

func fracEqual(rs []float64, v float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	n := 0
	for _, r := range rs {
		if r == v {
			n++
		}
	}
	return float64(n) / float64(len(rs))
}

// String renders the summary as a one-line report.
func (r RatioSummary) String() string {
	return fmt.Sprintf("n=%d improved=%.0f%% >=1.25x=%.0f%% mean=%.2f median=%.2f",
		r.N, r.FracImproved*100, r.FracAtLeast25*100, r.Mean, r.Median)
}

// rngFor derives a deterministic per-measurement RNG from the suite seed
// and a measurement index, so experiments are reproducible regardless of
// the order runners execute in.
func (s *Suite) rngFor(stream string, idx int) *rand.Rand {
	h := int64(1469598103934665603)
	for _, b := range []byte(stream) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(s.Seed ^ h ^ int64(idx)*0x5851F42D4C957F2D))
}

// defaultControlledSpec is the paper's 30-second iperf run.
func defaultControlledSpec() tcpsim.Spec {
	return tcpsim.Spec{Duration: 30 * time.Second}
}

// defaultRealLifeSpec is the paper's 100 MB file download, capped at two
// minutes of simulated time so pathological paths terminate.
func defaultRealLifeSpec() tcpsim.Spec {
	return tcpsim.Spec{TransferBytes: 100 << 20, Duration: 2 * time.Minute}
}
