package experiments

import (
	"cronets/internal/netsim"
	"cronets/internal/stats"
	"cronets/internal/trace"
)

// DiversityClass buckets overlay paths by improvement ratio as in
// Figure 8's legend.
type DiversityClass int

// Figure 8's improvement-ratio classes.
const (
	ClassAll      DiversityClass = iota + 1 // every overlay path
	ClassAbove125                           // ratio > 1.25
	Class100To125                           // 1.0 < ratio <= 1.25
	Class050To100                           // 0.5 < ratio <= 1.0
	ClassBelow050                           // ratio <= 0.5
)

// String returns the legend label from the paper's Figure 8.
func (c DiversityClass) String() string {
	switch c {
	case ClassAll:
		return "All Overlays"
	case ClassAbove125:
		return "Improvement Ratio > 1.25"
	case Class100To125:
		return "1.0 < Improvement Ratio <= 1.25"
	case Class050To100:
		return "0.5 < Improvement Ratio <= 1.0"
	case ClassBelow050:
		return "Improvement Ratio <= 0.5"
	default:
		return "unknown"
	}
}

// DiversityResult holds the Section V-A analyses: diversity-score samples
// per improvement class (Figure 8), the location of shared routers, and
// the hop-count comparison of Section V-B.
type DiversityResult struct {
	// Scores maps each class to its diversity-score samples.
	Scores map[DiversityClass][]float64
	// EndCommon and MiddleCommon count the shared routers falling in the
	// direct paths' end segments versus middle segment (paper: 87% / 13%).
	EndCommon, MiddleCommon int
	// HopRatios holds overlay/direct router-hop-count ratios for overlay
	// paths improving throughput by more than 25% (paper: 96% of them are
	// longer than the direct path; 45% at least 1.5x).
	HopRatios []float64
	// ASHopRatios holds the same comparison at the AS level (the paper
	// examined AS-level hop counts for a subset and found the same trend).
	ASHopRatios []float64
}

// CDF returns the diversity-score CDF for one class (a Figure 8 curve).
func (d DiversityResult) CDF(c DiversityClass) *stats.CDF {
	return stats.NewCDF(d.Scores[c])
}

// EndFraction is the fraction of shared routers in the end segments.
func (d DiversityResult) EndFraction() float64 {
	total := d.EndCommon + d.MiddleCommon
	if total == 0 {
		return 0
	}
	return float64(d.EndCommon) / float64(total)
}

// FracScoreAtLeast returns, for a class, the fraction of overlay paths
// with a diversity score of at least s (the paper quotes 60% >= 0.38 and
// 25% >= 0.55 for all overlays).
func (d DiversityResult) FracScoreAtLeast(c DiversityClass, s float64) float64 {
	xs := d.Scores[c]
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= s {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FracLonger returns the fraction of >25%-improved overlay paths with more
// router hops than their direct path, and the fraction at least 1.5x.
func (d DiversityResult) FracLonger() (longer, atLeast150 float64) {
	if len(d.HopRatios) == 0 {
		return 0, 0
	}
	var l, h int
	for _, r := range d.HopRatios {
		if r > 1 {
			l++
		}
		if r >= 1.5 {
			h++
		}
	}
	n := float64(len(d.HopRatios))
	return float64(l) / n, float64(h) / n
}

// Diversity runs the Section V-A/V-B traceroute analyses over a controlled
// experiment's measurements. Improvement classes use the plain-overlay
// throughput ratio of each individual overlay path (not the best path),
// matching the paper's per-overlay-path treatment. Hops are identified at
// the interface level (topology.Hop), the same semantics raw traceroute
// output gives the paper's analysis.
func (s *Suite) Diversity(res PrevalenceResult) DiversityResult {
	out := DiversityResult{Scores: make(map[DiversityClass][]float64)}
	for _, pr := range res.Pairs {
		if pr.Direct.ThroughputMbps <= 0 {
			continue
		}
		directTrace := s.In.TracerouteHops(pr.DirectPath)
		for _, o := range pr.Overlays {
			full, err := o.Route.FullPath()
			if err != nil {
				continue
			}
			overlayTrace := s.In.TracerouteHops(full)
			score := trace.DiversityScore(directTrace, overlayTrace)
			ratio := o.Plain.ThroughputMbps / pr.Direct.ThroughputMbps

			out.Scores[ClassAll] = append(out.Scores[ClassAll], score)
			out.Scores[classFor(ratio)] = append(out.Scores[classFor(ratio)], score)

			seg := trace.CommonBySegment(directTrace, overlayTrace)
			out.EndCommon += seg.EndCommon
			out.MiddleCommon += seg.MiddleCommon

			if ratio >= 1.25 {
				out.HopRatios = append(out.HopRatios, trace.HopRatio(directTrace, overlayTrace))
				out.ASHopRatios = append(out.ASHopRatios,
					trace.HopRatio(s.asSequence(pr.DirectPath), s.asSequence(full)))
			}
		}
	}
	return out
}

// FracASLonger returns the fraction of >25%-improved overlay paths whose
// AS-level path is at least as long as the direct one, and the fraction
// strictly longer (Section V-B: "the same trend seems to hold").
func (d DiversityResult) FracASLonger() (atLeast, longer float64) {
	if len(d.ASHopRatios) == 0 {
		return 0, 0
	}
	var ge, gt int
	for _, r := range d.ASHopRatios {
		if r >= 1 {
			ge++
		}
		if r > 1 {
			gt++
		}
	}
	n := float64(len(d.ASHopRatios))
	return float64(ge) / n, float64(gt) / n
}

// asSequence collapses a router path into its AS-level sequence.
func (s *Suite) asSequence(p netsim.Path) []int {
	var out []int
	for _, id := range p.Nodes {
		asn := s.In.Net.MustNode(id).ASN
		if asn == 0 {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

func classFor(ratio float64) DiversityClass {
	switch {
	case ratio > 1.25:
		return ClassAbove125
	case ratio > 1.0:
		return Class100To125
	case ratio > 0.5:
		return Class050To100
	default:
		return ClassBelow050
	}
}
