package experiments

import (
	"testing"
	"time"
)

// These tests run the paper's experiments at full scale and assert the
// *shape* of every reported result: who wins, in which direction, and
// roughly by how much. Absolute equality with the paper's testbed numbers
// is not expected (see EXPERIMENTS.md); the bounds below encode the
// qualitative claims. They are skipped under -short.

func fullSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-scale reproduction runs are skipped in -short mode")
	}
	s, err := NewSuite(42, ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func controlled(t *testing.T, s *Suite) PrevalenceResult {
	t.Helper()
	res, err := s.RunControlled()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFig2RealLife: 6,600 paths; split overlay improves the large majority
// with a median factor near the paper's 1.67, and plain overlay is clearly
// weaker than split.
func TestFig2RealLife(t *testing.T) {
	s := fullSuite(t)
	res, err := s.RunRealLife()
	if err != nil {
		t.Fatal(err)
	}
	if res.PathsSampled != 6600 {
		t.Errorf("paths sampled = %d, want 6600", res.PathsSampled)
	}
	plain, split := res.PlainSummary(), res.SplitSummary()
	if split.FracImproved < 0.60 || split.FracImproved > 0.90 {
		t.Errorf("split improved = %.2f, paper 0.78", split.FracImproved)
	}
	if split.Median < 1.2 || split.Median > 3.5 {
		t.Errorf("split median = %.2f, paper 1.67", split.Median)
	}
	if plain.FracImproved >= split.FracImproved {
		t.Errorf("plain (%.2f) should improve fewer paths than split (%.2f)",
			plain.FracImproved, split.FracImproved)
	}
	if plain.Median >= split.Median {
		t.Errorf("plain median %.2f should be below split median %.2f", plain.Median, split.Median)
	}
}

// TestFig3Controlled: 1,250 paths; the ordering plain < split ~= discrete
// holds, and the split stats sit near the paper's.
func TestFig3Controlled(t *testing.T) {
	s := fullSuite(t)
	res := controlled(t, s)
	if res.PathsSampled != 1250 {
		t.Errorf("paths sampled = %d, want 1250", res.PathsSampled)
	}
	plain, split, disc := res.PlainSummary(), res.SplitSummary(), res.DiscreteSummary()
	if split.FracImproved < 0.65 || split.FracImproved > 0.90 {
		t.Errorf("split improved = %.2f, paper 0.74", split.FracImproved)
	}
	if split.Median < 1.3 || split.Median > 2.4 {
		t.Errorf("split median = %.2f, paper 1.66", split.Median)
	}
	if split.Mean < 5 || split.Mean > 30 {
		t.Errorf("split mean = %.2f, paper 9.26 (heavy tail expected)", split.Mean)
	}
	if plain.FracImproved >= split.FracImproved {
		t.Errorf("plain improved %.2f should be below split %.2f", plain.FracImproved, split.FracImproved)
	}
	// Discrete is the upper bound measured separately: it should track the
	// split results closely (the paper's conclusion that proxy processing
	// does not hurt).
	if d := disc.Median / split.Median; d < 0.7 || d > 1.4 {
		t.Errorf("discrete median %.2f vs split %.2f diverge", disc.Median, split.Median)
	}
}

// TestFig4Retransmissions: the best overlay tunnel's retransmission rate
// is several times below the direct path's.
func TestFig4Retransmissions(t *testing.T) {
	s := fullSuite(t)
	r := RetransFrom(controlled(t, s))
	if len(r.Direct) == 0 || len(r.Overlay) == 0 {
		t.Fatal("no samples")
	}
	md, mo := r.MedianDirect(), r.MedianOverlay()
	if mo >= md {
		t.Errorf("overlay median retx %.2g not below direct %.2g", mo, md)
	}
	if md/mo < 2 {
		t.Errorf("retx contrast %.1fx, paper reports an order of magnitude", md/mo)
	}
	if md < 5e-5 || md > 5e-3 {
		t.Errorf("direct median retx = %.2g, paper 2.69e-4", md)
	}
}

// TestFig5RTT: overlays reduce the average RTT for roughly half the pairs,
// and for most high-RTT pairs.
func TestFig5RTT(t *testing.T) {
	s := fullSuite(t)
	r := RTTRatiosFrom(controlled(t, s))
	// Our synthetic intra-continental default routes are more RTT-optimal
	// than the real Internet's circuitous ones, so fewer short-haul pairs
	// see reductions than the paper's 52% — see EXPERIMENTS.md. The
	// directional claims still hold: a large fraction of pairs benefit,
	// and long-RTT pairs benefit more.
	all := r.FracReduced()
	if all < 0.30 || all > 0.80 {
		t.Errorf("RTT reduced for %.2f of pairs, paper 0.52", all)
	}
	high := r.FracReducedAboveRTT(150)
	if high <= all {
		t.Errorf("high-RTT pairs should benefit more: %.2f vs %.2f overall", high, all)
	}
	if high < 0.40 {
		t.Errorf("RTT reduced for %.2f of >=150ms pairs, paper 0.90", high)
	}
}

// TestFig6And7Longitudinal: gains persist over the week; a small number of
// overlay nodes suffices; Table I saturates by k=2.
func TestFig6And7Longitudinal(t *testing.T) {
	s := fullSuite(t)
	res, err := s.RunLongitudinal(controlled(t, s), DefaultLongitudinalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("tracked %d paths, want 30", len(res.Rows))
	}
	if got := res.FracImproved(); got < 0.80 {
		t.Errorf("only %.2f of paths kept their gains, paper 0.90", got)
	}
	mean, median := res.ImprovementStats()
	if mean < 4 || mean > 40 {
		t.Errorf("avg improvement = %.2f, paper 8.39", mean)
	}
	if median < 3 || median > 40 {
		t.Errorf("median improvement = %.2f, paper 7.58", median)
	}
	// Figure 7: one or two overlay nodes suffice for most paths.
	if got := res.FracNeedingAtMost(2); got < 0.6 {
		t.Errorf("<=2 nodes suffice for %.2f of paths, paper 0.70", got)
	}
	// Table I: monotone non-decreasing in k, saturating.
	rows := res.NodeCountRows
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanFactor+1e-9 < rows[i-1].MeanFactor {
			t.Errorf("Table I mean not monotone at k=%d: %.2f -> %.2f",
				rows[i].Nodes, rows[i-1].MeanFactor, rows[i].MeanFactor)
		}
	}
	if gain := rows[3].MeanFactor - rows[0].MeanFactor; gain > rows[0].MeanFactor*0.15 {
		t.Errorf("k=1 captures too little: %.2f vs %.2f at k=4 (paper: one or two nodes give most of the benefit)",
			rows[0].MeanFactor, rows[3].MeanFactor)
	}
}

// TestFig8Diversity: overlay paths are substantially different from direct
// paths, more-improved paths are more diverse, and shared routers sit near
// the endpoints.
func TestFig8Diversity(t *testing.T) {
	s := fullSuite(t)
	d := s.Diversity(controlled(t, s))
	if n := len(d.Scores[ClassAll]); n == 0 {
		t.Fatal("no diversity samples")
	}
	for _, score := range d.Scores[ClassAll] {
		if score < 0 || score > 1 {
			t.Fatalf("diversity score %v outside [0,1]", score)
		}
	}
	if got := d.FracScoreAtLeast(ClassAll, 0.38); got < 0.35 {
		t.Errorf("%.2f of overlays have score >= 0.38, paper 0.60", got)
	}
	improved := d.CDF(ClassAbove125).Quantile(0.5)
	worsened := d.CDF(ClassBelow050).Quantile(0.5)
	if len(d.Scores[ClassAbove125]) > 10 && len(d.Scores[ClassBelow050]) > 10 && improved < worsened {
		t.Errorf("improved paths median diversity %.2f below worsened %.2f", improved, worsened)
	}
	if got := d.EndFraction(); got < 0.6 {
		t.Errorf("end-segment share of common routers = %.2f, paper 0.87", got)
	}
	longer, _ := d.FracLonger()
	if longer < 0.5 {
		t.Errorf("only %.2f of well-improved overlay paths are longer, paper 0.96", longer)
	}
	// AS-level: the overlay path never shrinks the AS sequence (the
	// paper's "same trend" observation; with cloud senders the first leg
	// is intra-provider so equality dominates).
	if asAtLeast, _ := d.FracASLonger(); asAtLeast < 0.99 {
		t.Errorf("AS-level paths shrank for %.2f of improved overlays", 1-asAtLeast)
	}
}

// TestFig9And10Bins: improvement grows with direct-path RTT and loss.
func TestFig9And10Bins(t *testing.T) {
	s := fullSuite(t)
	res := controlled(t, s)

	rtt := RTTBins(res)
	if len(rtt) != 5 {
		t.Fatalf("RTT bins = %d, want 5", len(rtt))
	}
	// The >=280ms bin's median should be at least the <70ms bin's, and
	// high-RTT bins should mostly improve.
	if rtt[4].N > 3 && rtt[0].N > 3 && rtt[4].MedianRatio < rtt[0].MedianRatio {
		t.Errorf("RTT bins not increasing: %v -> %v", rtt[0], rtt[4])
	}
	var high *BinRow
	for i := range rtt {
		if rtt[i].Label == "[140,210)" {
			high = &rtt[i]
		}
	}
	if high != nil && high.N > 5 && high.FracImproved < 0.6 {
		t.Errorf(">=140ms bin improved only %.2f, paper >= 0.84", high.FracImproved)
	}

	loss := LossBins(res)
	if len(loss) != 4 {
		t.Fatalf("loss bins = %d, want 4", len(loss))
	}
	last := loss[len(loss)-1]
	if last.N > 3 && last.FracImproved < 0.7 {
		t.Errorf("high-loss bin improved %.2f, paper >= 0.86", last.FracImproved)
	}
}

// TestFig11Scatter: nearly all sub-10 Mbps direct paths improve, and most
// more than double.
func TestFig11Scatter(t *testing.T) {
	s := fullSuite(t)
	sum := SummarizeScatter(Scatter(controlled(t, s)))
	if sum.SlowN < 20 {
		t.Fatalf("only %d slow paths; workload degenerate", sum.SlowN)
	}
	if sum.FracSlowImproved < 0.85 {
		t.Errorf("%.2f of sub-10 Mbps paths improved, paper: almost all", sum.FracSlowImproved)
	}
	if sum.FracSlowDoubled < 0.5 {
		t.Errorf("%.2f of sub-10 Mbps paths doubled, paper: majority", sum.FracSlowDoubled)
	}
}

// TestC45Thresholds: the decision tree finds that simultaneous RTT and
// loss reductions predict improvement, with thresholds in the tens of
// percent at most.
func TestC45Thresholds(t *testing.T) {
	s := fullSuite(t)
	res, err := C45Thresholds(controlled(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 500 {
		t.Fatalf("only %d samples", res.Samples)
	}
	if res.Accuracy < 0.7 {
		t.Errorf("tree accuracy = %.2f", res.Accuracy)
	}
	// The loss-reduction threshold is the paper's headline number (12.1%);
	// ours should land in the same band.
	if res.LossReductionPct < 3 || res.LossReductionPct > 40 {
		t.Errorf("loss-reduction threshold = %.1f%%, paper 12.1%%", res.LossReductionPct)
	}
	// The RTT condition must exist; its split point is the noisiest part
	// of the tree (see EXPERIMENTS.md), so only require that it rules out
	// unbounded RTT growth.
	if res.RTTChangeMaxPct == 0 {
		t.Error("no RTT condition learned (paper: -10.5%)")
	}
	if res.RTTChangeMaxPct > 300 {
		t.Errorf("RTT change bound %.1f%% implausibly loose", res.RTTChangeMaxPct)
	}
}

// TestFig12MPTCPOlia: coupled MPTCP reaches at least the best of
// direct/plain-overlay on (almost) every worst path, with low variance.
func TestFig12MPTCPOlia(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale reproduction runs are skipped in -short mode")
	}
	s, err := NewMPTCPSuite(42, ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunMPTCP(DefaultMPTCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsMeasured != 72 {
		t.Errorf("pairs measured = %d, want 72", res.PairsMeasured)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(res.Rows))
	}
	if got := res.FracMPTCPAtLeastBestOverlay(0.1); got < 0.85 {
		t.Errorf("MPTCP matched the best path for only %.2f of rows", got)
	}
	for _, r := range res.Rows {
		if r.MPTCPMean > 0 && r.MPTCPStd/r.MPTCPMean > 0.35 {
			t.Errorf("row %d: MPTCP variance too high (%.1f +- %.1f)", r.Index, r.MPTCPMean, r.MPTCPStd)
		}
	}
}

// TestFig13MPTCPUncoupled: per-subflow CUBIC saturates the 100 Mbps NIC.
func TestFig13MPTCPUncoupled(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale reproduction runs are skipped in -short mode")
	}
	s, err := NewMPTCPSuite(42, ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunMPTCP(UncoupledMPTCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanMPTCP(); got < 85 || got > 102 {
		t.Errorf("uncoupled mean = %.1f Mbps, paper: ~100 (NIC-limited)", got)
	}
}

// TestLongitudinalDeterministic: rerunning the suite reproduces the same
// headline statistics.
func TestControlledDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale reproduction runs are skipped in -short mode")
	}
	run := func() RatioSummary {
		s, err := NewSuite(42, ScaleFull)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunControlled()
		if err != nil {
			t.Fatal(err)
		}
		return res.SplitSummary()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed gave different summaries: %v vs %v", a, b)
	}
}

// TestTransientEventRecovers: the injected intermediate-ISP event degrades
// direct paths during the controlled window and clears afterwards.
func TestTransientEventRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale reproduction runs are skipped in -short mode")
	}
	s, err := NewSuite(42, ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	client := s.EventClient()
	sender := s.In.DCs[s.In.DCOrder[0]]
	spec := defaultControlledSpec()

	during, _, err := s.CN.MeasureDirect(s.rngFor("event-test", 0), sender, client, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := s.CN.MeasureDirect(s.rngFor("event-test", 0), sender, client, spec, transientEventEnd+time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if after.ThroughputMbps < during.ThroughputMbps*2 {
		t.Errorf("event client direct: during=%v after=%v, expected clear recovery",
			during.ThroughputMbps, after.ThroughputMbps)
	}
}

// TestDiurnalVariationPlaceholder documents that longitudinal variance
// comes from measurement stochasticity; the persistence claim (small std
// dev in Figure 6) is asserted here.
func TestLongitudinalVarianceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale reproduction runs are skipped in -short mode")
	}
	s := fullSuite(t)
	cfg := DefaultLongitudinalConfig()
	cfg.TopPaths = 10
	cfg.Samples = 20
	res, err := s.RunLongitudinal(controlled(t, s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stable := 0
	for _, r := range res.Rows {
		if r.OverlayMean > 0 && r.OverlayStd/r.OverlayMean < 0.35 {
			stable++
		}
	}
	if frac := float64(stable) / float64(len(res.Rows)); frac < 0.7 {
		t.Errorf("only %.2f of paths have stable overlay throughput (paper: small std devs)", frac)
	}
}
