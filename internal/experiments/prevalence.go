package experiments

import (
	"fmt"

	"cronets/internal/core"
	"cronets/internal/stats"
)

// PrevalenceResult holds the large-scale path-prevalence measurement: every
// pair's full measurement plus the derived improvement-ratio samples.
type PrevalenceResult struct {
	// Pairs holds the per-pair measurements.
	Pairs []core.PairResult
	// PlainRatios and SplitRatios are max-overlay/direct throughput ratios
	// per pair, for the plain tunnel and split-TCP configurations.
	PlainRatios []float64
	SplitRatios []float64
	// DiscreteRatios is only populated by the controlled experiment.
	DiscreteRatios []float64
	// PathsSampled counts every measured path (direct plus overlays).
	PathsSampled int
}

// PlainSummary returns the Figure 2/3 statistics for the plain tunnel.
func (r PrevalenceResult) PlainSummary() RatioSummary { return SummarizeRatios(r.PlainRatios) }

// SplitSummary returns the Figure 2/3 statistics for the split overlay.
func (r PrevalenceResult) SplitSummary() RatioSummary { return SummarizeRatios(r.SplitRatios) }

// DiscreteSummary returns the Figure 3 statistics for the discrete bound.
func (r PrevalenceResult) DiscreteSummary() RatioSummary { return SummarizeRatios(r.DiscreteRatios) }

// PlainCDF returns the empirical CDF of plain-overlay improvement ratios
// (the solid curve of Figure 2).
func (r PrevalenceResult) PlainCDF() *stats.CDF { return stats.NewCDF(finiteOnly(r.PlainRatios)) }

// SplitCDF returns the empirical CDF of split-overlay improvement ratios
// (the dashed curve of Figure 2).
func (r PrevalenceResult) SplitCDF() *stats.CDF { return stats.NewCDF(finiteOnly(r.SplitRatios)) }

// DiscreteCDF returns the CDF of discrete-overlay ratios (Figure 3).
func (r PrevalenceResult) DiscreteCDF() *stats.CDF {
	return stats.NewCDF(finiteOnly(r.DiscreteRatios))
}

// RunRealLife reproduces the Section III-A experiment behind Figure 2:
// every client downloads a 100 MB file from every real-life server, over
// the direct path and through each of the overlay data centers (plain and
// split). With the paper's full scale (110 clients x 10 servers x (1 direct
// + 5 overlay paths)) this samples 6,600 paths.
func (s *Suite) RunRealLife() (PrevalenceResult, error) {
	spec := defaultRealLifeSpec()
	dcs := s.CN.DCCities()
	var out PrevalenceResult
	idx := 0
	for _, server := range s.In.Servers {
		for _, client := range s.In.Clients {
			pr, err := s.CN.MeasurePair(s.rngFor("real-life", idx), server, client, dcs, spec, 0)
			if err != nil {
				return PrevalenceResult{}, fmt.Errorf("experiments: real-life %s->%s: %w",
					server.Name, client.Name, err)
			}
			idx++
			out.addPair(pr, false)
		}
	}
	return out, nil
}

// RunControlled reproduces the Section III-B experiment behind Figures 3-5
// and the Section V analyses: each cloud data center acts as the TCP sender
// toward every client, with the remaining data centers as overlay nodes,
// using 30-second iperf-style runs. With the paper's full scale this
// samples 50 clients x 5 senders x (1 direct + 4 overlay) = 1,250 paths.
func (s *Suite) RunControlled() (PrevalenceResult, error) {
	spec := defaultControlledSpec()
	dcs := s.CN.DCCities()
	var out PrevalenceResult
	idx := 0
	// The paper uses 50 of the PlanetLab clients for the controlled stage.
	clients := s.In.Clients
	if len(clients) > 50 {
		clients = clients[:50]
	}
	for _, senderCity := range dcs {
		sender := s.In.DCs[senderCity]
		overlays := otherDCs(dcs, senderCity)
		for _, client := range clients {
			pr, err := s.CN.MeasurePair(s.rngFor("controlled", idx), sender, client, overlays, spec, 0)
			if err != nil {
				return PrevalenceResult{}, fmt.Errorf("experiments: controlled %s->%s: %w",
					sender.Name, client.Name, err)
			}
			idx++
			out.addPair(pr, true)
		}
	}
	return out, nil
}

func (r *PrevalenceResult) addPair(pr core.PairResult, withDiscrete bool) {
	r.Pairs = append(r.Pairs, pr)
	r.PathsSampled += 1 + len(pr.Overlays)
	if plain, ok := pr.BestOverlay(core.Overlay); ok {
		r.PlainRatios = append(r.PlainRatios,
			stats.ImprovementRatio(plain.ThroughputMbps, pr.Direct.ThroughputMbps))
	}
	if split, ok := pr.BestOverlay(core.SplitOverlay); ok {
		r.SplitRatios = append(r.SplitRatios,
			stats.ImprovementRatio(split.ThroughputMbps, pr.Direct.ThroughputMbps))
	}
	if withDiscrete {
		if disc, ok := pr.BestOverlay(core.DiscreteOverlay); ok {
			r.DiscreteRatios = append(r.DiscreteRatios,
				stats.ImprovementRatio(disc.ThroughputMbps, pr.Direct.ThroughputMbps))
		}
	}
}

func otherDCs(dcs []string, exclude string) []string {
	out := make([]string, 0, len(dcs)-1)
	for _, dc := range dcs {
		if dc != exclude {
			out = append(out, dc)
		}
	}
	return out
}

func finiteOnly(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !isInfOrNaN(x) {
			out = append(out, x)
		}
	}
	return out
}

func isInfOrNaN(x float64) bool {
	return x != x || x > 1e308 || x < -1e308
}
