package experiments

import (
	"testing"
)

// smallControlled builds a small-scale suite and controlled run shared by
// the extension tests.
func smallControlled(t *testing.T) (*Suite, PrevalenceResult) {
	t.Helper()
	s, err := NewSuite(7, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunControlled()
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestRunMultiHop(t *testing.T) {
	s, res := smallControlled(t)
	mh, err := s.RunMultiHop(res, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(mh.Rows) != 6 {
		t.Fatalf("rows = %d", len(mh.Rows))
	}
	for _, row := range mh.Rows {
		if row.OneHopMbps <= 0 || row.TwoHopMbps <= 0 {
			t.Errorf("row %s->%s has zero throughput: %+v", row.Src, row.Dst, row)
		}
	}
	// Two-hop should not be wildly better than one-hop on average (the
	// paper's one-hop focus is justified); it may win occasionally.
	if gain := mh.MedianTwoHopGain(); gain < 0.3 || gain > 2.5 {
		t.Errorf("median two-hop gain = %v, expected near 1", gain)
	}
}

func TestRunPlacement(t *testing.T) {
	_, res := smallControlled(t)
	pl, err := RunPlacement(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.ObjectiveFrac) != 4 {
		t.Fatalf("budgets = %d", len(pl.ObjectiveFrac))
	}
	prev := 0.0
	for k, frac := range pl.ObjectiveFrac {
		if frac < prev-1e-9 {
			t.Errorf("objective fraction decreased at budget %d", k+1)
		}
		if frac < 0 || frac > 1+1e-9 {
			t.Errorf("objective fraction %v out of range", frac)
		}
		prev = frac
	}
	// A budget of 4 of the 5 DCs must recover nearly the all-DCs value.
	if pl.ObjectiveFrac[3] < 0.97 {
		t.Errorf("budget-4 objective fraction = %v", pl.ObjectiveFrac[3])
	}
	// The paper's Table I story: one or two nodes capture most of the value.
	if pl.ObjectiveFrac[1] < 0.85 {
		t.Errorf("two-node objective fraction = %v, expected most of the value", pl.ObjectiveFrac[1])
	}
}

func TestCostTable(t *testing.T) {
	_, res := smallControlled(t)
	rows, err := CostTable(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The abstract's claim: the basic virtual deployment saves ~10x over
	// leased lines of comparable performance.
	if rows[0].SavingsFactor < 5 {
		t.Errorf("savings factor = %.1f for %s, paper claims ~10x",
			rows[0].SavingsFactor, rows[0].Scenario)
	}
	for _, r := range rows {
		if r.OverlayUSD <= 0 || r.LeasedUSD <= 0 {
			t.Errorf("row %s has non-positive cost: %+v", r.Scenario, r)
		}
	}
}

func TestRunHighBandwidth(t *testing.T) {
	res, err := RunHighBandwidth(7, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if res.Split100.N == 0 || res.Split1000.N == 0 {
		t.Fatal("empty summaries")
	}
	// Lifting the overlay NIC cap must not hurt; the mean improvement
	// should be at least comparable.
	if res.Split1000.Mean < res.Split100.Mean*0.8 {
		t.Errorf("1 Gbps NIC mean %v below 100 Mbps mean %v",
			res.Split1000.Mean, res.Split100.Mean)
	}
}
