package experiments

import (
	"math"
	"testing"
	"time"

	"cronets/internal/core"
)

// fakePair builds a PairResult with a direct measurement and one overlay.
func fakePair(directMbps, overlayMbps float64, directRTT, overlayRTT time.Duration,
	directRetx, overlayRetx float64) core.PairResult {
	return core.PairResult{
		Direct: core.Measurement{
			Kind:           core.Direct,
			ThroughputMbps: directMbps,
			AvgRTT:         directRTT,
			RetransRate:    directRetx,
		},
		Overlays: []core.OverlayMeasurements{{
			DC: "TestDC",
			Plain: core.Measurement{Kind: core.Overlay, DC: "TestDC",
				ThroughputMbps: overlayMbps, AvgRTT: overlayRTT, RetransRate: overlayRetx},
			Split: core.Measurement{Kind: core.SplitOverlay, DC: "TestDC",
				ThroughputMbps: overlayMbps * 1.2, AvgRTT: overlayRTT, RetransRate: overlayRetx},
			Discrete: core.Measurement{Kind: core.DiscreteOverlay, DC: "TestDC",
				ThroughputMbps: overlayMbps * 1.25, AvgRTT: overlayRTT, RetransRate: overlayRetx},
		}},
	}
}

func TestSummarizeRatios(t *testing.T) {
	rs := []float64{0.5, 1.0, 1.3, 2.0, math.Inf(1)}
	sum := SummarizeRatios(rs)
	if sum.N != 5 {
		t.Errorf("N = %d", sum.N)
	}
	// Strictly greater than 1: 1.3, 2.0, +Inf.
	if math.Abs(sum.FracImproved-0.6) > 1e-9 {
		t.Errorf("FracImproved = %v, want 0.6", sum.FracImproved)
	}
	// Mean over finite values: (0.5+1+1.3+2)/4 = 1.2.
	if math.Abs(sum.Mean-1.2) > 1e-9 {
		t.Errorf("Mean = %v, want 1.2", sum.Mean)
	}
	if math.Abs(sum.FracAtLeast25-0.6) > 1e-9 {
		t.Errorf("FracAtLeast25 = %v, want 0.6 (1.3, 2.0 and Inf all count)", sum.FracAtLeast25)
	}
}

func TestRetransFrom(t *testing.T) {
	res := PrevalenceResult{Pairs: []core.PairResult{
		fakePair(10, 20, 100*time.Millisecond, 80*time.Millisecond, 1e-3, 1e-5),
		fakePair(50, 40, 50*time.Millisecond, 90*time.Millisecond, 2e-4, 3e-5),
	}}
	r := RetransFrom(res)
	if len(r.Direct) != 2 || len(r.Overlay) != 2 {
		t.Fatalf("lengths: %d/%d", len(r.Direct), len(r.Overlay))
	}
	if r.MedianOverlay() >= r.MedianDirect() {
		t.Error("overlay median should be lower")
	}
}

func TestRTTRatiosFrom(t *testing.T) {
	res := PrevalenceResult{Pairs: []core.PairResult{
		fakePair(10, 20, 200*time.Millisecond, 100*time.Millisecond, 0, 0), // reduced
		fakePair(10, 20, 100*time.Millisecond, 150*time.Millisecond, 0, 0), // increased
	}}
	r := RTTRatiosFrom(res)
	if len(r.Ratios) != 2 {
		t.Fatalf("ratios = %v", r.Ratios)
	}
	if got := r.FracReduced(); got != 0.5 {
		t.Errorf("FracReduced = %v", got)
	}
	if got := r.FracReducedAboveRTT(150); got != 1.0 {
		t.Errorf("FracReducedAboveRTT(150) = %v (only the 200ms pair qualifies, and it reduced)", got)
	}
}

func TestRTTBinsAndLossBins(t *testing.T) {
	var res PrevalenceResult
	// One pair per RTT bin, all improving by 2x.
	for _, rtt := range []time.Duration{30, 100, 170, 240, 320} {
		res.Pairs = append(res.Pairs,
			fakePair(10, 20, rtt*time.Millisecond, rtt*time.Millisecond, 1e-4, 1e-5))
	}
	rows := RTTBins(res)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, row := range rows {
		if row.N != 1 {
			t.Errorf("bin %d has %d samples", i, row.N)
		}
		// Split overlay is 1.2x the plain overlay: ratio = 24/10.
		if math.Abs(row.MedianRatio-2.4) > 1e-9 {
			t.Errorf("bin %d median = %v", i, row.MedianRatio)
		}
	}

	// Loss bins: zero-loss pair goes to the [0] bin.
	res2 := PrevalenceResult{Pairs: []core.PairResult{
		fakePair(10, 20, 100*time.Millisecond, 100*time.Millisecond, 0, 0),
		fakePair(10, 20, 100*time.Millisecond, 100*time.Millisecond, 0.001, 0),
		fakePair(10, 20, 100*time.Millisecond, 100*time.Millisecond, 0.004, 0),
		fakePair(10, 20, 100*time.Millisecond, 100*time.Millisecond, 0.02, 0),
	}}
	lossRows := LossBins(res2)
	if len(lossRows) != 4 {
		t.Fatalf("loss rows = %d", len(lossRows))
	}
	for i, row := range lossRows {
		if row.N != 1 {
			t.Errorf("loss bin %d (%s) has %d samples", i, row.Label, row.N)
		}
	}
	if lossRows[0].Label != "[0]" {
		t.Errorf("first label = %q", lossRows[0].Label)
	}
}

func TestScatterSummary(t *testing.T) {
	points := []ScatterPoint{
		{DirectMbps: 5, IncreaseRatio: 3},    // slow, doubled
		{DirectMbps: 8, IncreaseRatio: 0.5},  // slow, improved
		{DirectMbps: 9, IncreaseRatio: -0.2}, // slow, worse
		{DirectMbps: 50, IncreaseRatio: 4},   // fast (ignored)
	}
	s := SummarizeScatter(points)
	if s.SlowN != 3 {
		t.Fatalf("SlowN = %d", s.SlowN)
	}
	if math.Abs(s.FracSlowImproved-2.0/3) > 1e-9 {
		t.Errorf("FracSlowImproved = %v", s.FracSlowImproved)
	}
	if math.Abs(s.FracSlowDoubled-1.0/3) > 1e-9 {
		t.Errorf("FracSlowDoubled = %v", s.FracSlowDoubled)
	}
}

func TestMinOverlayNodes(t *testing.T) {
	p := LongitudinalPath{
		DirectMbps: []float64{1, 1, 1},
		DCs:        []string{"A", "B"},
		OverlayMbps: map[string][]float64{
			"A": {10, 2, 10},
			"B": {2, 10, 2},
		},
	}
	// Neither DC alone reaches the per-sample max everywhere; both needed.
	if got := minOverlayNodes(p, 5); got != 2 {
		t.Errorf("minOverlayNodes = %d, want 2", got)
	}
	// With one dominant DC, one suffices.
	p.OverlayMbps["A"] = []float64{10, 10, 10}
	p.OverlayMbps["B"] = []float64{2, 2, 2}
	if got := minOverlayNodes(p, 5); got != 1 {
		t.Errorf("minOverlayNodes = %d, want 1", got)
	}
}

func TestBestSubsetFactor(t *testing.T) {
	p := LongitudinalPath{
		DirectMbps: []float64{10, 10},
		DCs:        []string{"A", "B"},
		OverlayMbps: map[string][]float64{
			"A": {40, 20},
			"B": {20, 40},
		},
	}
	// k=1: best single subset averages (40+20)/2=30 -> factor 3.
	if got := bestSubsetFactor(p, 1); math.Abs(got-3) > 1e-9 {
		t.Errorf("k=1 factor = %v, want 3", got)
	}
	// k=2: max per sample is 40 -> factor 4.
	if got := bestSubsetFactor(p, 2); math.Abs(got-4) > 1e-9 {
		t.Errorf("k=2 factor = %v, want 4", got)
	}
}

func TestClassFor(t *testing.T) {
	tests := []struct {
		ratio float64
		want  DiversityClass
	}{
		{2.0, ClassAbove125}, {1.26, ClassAbove125},
		{1.1, Class100To125}, {1.25, Class100To125},
		{0.8, Class050To100}, {1.0, Class050To100},
		{0.5, ClassBelow050}, {0.1, ClassBelow050},
	}
	for _, tt := range tests {
		if got := classFor(tt.ratio); got != tt.want {
			t.Errorf("classFor(%v) = %v, want %v", tt.ratio, got, tt.want)
		}
	}
}

// TestSmallScaleSuite: the reduced workload exercises every runner quickly
// (this is the test the -short mode relies on for coverage).
func TestSmallScaleSuite(t *testing.T) {
	s, err := NewSuite(7, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunControlled()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs measured")
	}
	if res.PathsSampled != len(res.Pairs)*5 {
		t.Errorf("paths sampled = %d for %d pairs", res.PathsSampled, len(res.Pairs))
	}
	cfg := DefaultLongitudinalConfig()
	cfg.TopPaths = 4
	cfg.Samples = 5
	long, err := s.RunLongitudinal(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Rows) != 4 {
		t.Errorf("longitudinal rows = %d", len(long.Rows))
	}
	d := s.Diversity(res)
	if len(d.Scores[ClassAll]) == 0 {
		t.Error("no diversity scores")
	}
	if _, err := C45Thresholds(res); err != nil {
		t.Errorf("c4.5: %v", err)
	}

	ms, err := NewMPTCPSuite(7, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := DefaultMPTCPConfig()
	mcfg.WorstPaths = 3
	mcfg.Iterations = 2
	mres, err := ms.RunMPTCP(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.Rows) != 3 {
		t.Errorf("mptcp rows = %d", len(mres.Rows))
	}
}

func TestLongitudinalConfigValidation(t *testing.T) {
	s, err := NewSuite(7, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunLongitudinal(PrevalenceResult{}, LongitudinalConfig{}); err == nil {
		t.Error("expected error for zero config")
	}
}
