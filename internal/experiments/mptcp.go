package experiments

import (
	"fmt"
	"sort"
	"time"

	"cronets/internal/core"
	"cronets/internal/mptcpsim"
	"cronets/internal/stats"
	"cronets/internal/tcpsim"
	"cronets/internal/topology"
)

// MPTCPConfig parameterizes the Section VI validation. Defaults match the
// paper: 9 servers, 72 ordered pairs, focus on the 15 worst direct paths,
// 1-minute iperf runs, 5 iterations at 6-hour intervals.
type MPTCPConfig struct {
	WorstPaths int
	Iterations int
	Interval   time.Duration
	RunLength  time.Duration
	// Coupling selects the congestion coupling (OLIA for Figure 12,
	// Uncoupled for Figure 13).
	Coupling mptcpsim.Coupling
	// Alg is the per-subflow algorithm (Cubic for the uncoupled runs).
	Alg tcpsim.Algorithm
	// NICMbps is the endpoint NIC all subflows share.
	NICMbps float64
}

// DefaultMPTCPConfig returns the Figure 12 setup (OLIA).
func DefaultMPTCPConfig() MPTCPConfig {
	return MPTCPConfig{
		WorstPaths: 15,
		Iterations: 5,
		Interval:   6 * time.Hour,
		RunLength:  time.Minute,
		Coupling:   mptcpsim.OLIA,
		Alg:        tcpsim.Reno,
		NICMbps:    100,
	}
}

// UncoupledMPTCPConfig returns the Figure 13 setup (per-subflow CUBIC).
func UncoupledMPTCPConfig() MPTCPConfig {
	cfg := DefaultMPTCPConfig()
	cfg.Coupling = mptcpsim.Uncoupled
	cfg.Alg = tcpsim.Cubic
	return cfg
}

// MPTCPRow is one path index of Figures 12/13: the four bars with their
// across-iteration means and standard deviations.
type MPTCPRow struct {
	Index    int
	Src, Dst string

	DirectMean, DirectStd   float64
	OverlayMean, OverlayStd float64 // max plain overlay across DCs
	SplitMean, SplitStd     float64 // max split overlay across DCs
	MPTCPMean, MPTCPStd     float64
}

// MPTCPResult holds the Section VI outputs.
type MPTCPResult struct {
	Rows []MPTCPRow
	// PairsMeasured is the number of server pairs measured to pick the
	// worst paths (paper: 72).
	PairsMeasured int
}

// FracMPTCPAtLeastBestOverlay returns the fraction of rows where the mean
// MPTCP throughput reaches at least (1-tol) of the max plain-overlay mean —
// the paper's claim that coupled MPTCP tracks the best available path
// without probing.
func (r MPTCPResult) FracMPTCPAtLeastBestOverlay(tol float64) float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		ref := row.OverlayMean
		if row.DirectMean > ref {
			ref = row.DirectMean
		}
		if row.MPTCPMean >= ref*(1-tol) {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// MeanMPTCP returns the mean MPTCP throughput across rows (for Figure 13
// this should approach the NIC rate).
func (r MPTCPResult) MeanMPTCP() float64 {
	var xs []float64
	for _, row := range r.Rows {
		xs = append(xs, row.MPTCPMean)
	}
	return stats.Mean(xs)
}

// RunMPTCP reproduces Figures 12/13 on an MPTCP suite (9 data centers):
// measure all ordered DC pairs' direct throughput, keep the WorstPaths
// lowest, and for each run the four configurations per iteration.
func (s *Suite) RunMPTCP(cfg MPTCPConfig) (MPTCPResult, error) {
	dcs := s.CN.DCCities()
	if len(dcs) < 3 {
		return MPTCPResult{}, fmt.Errorf("experiments: mptcp needs at least 3 DCs, got %d", len(dcs))
	}
	spec := tcpsim.Spec{Duration: cfg.RunLength}

	// Rank ordered pairs by direct throughput at the first sample time.
	type pair struct {
		src, dst topology.Host
		direct   float64
	}
	var pairs []pair
	idx := 0
	for _, a := range dcs {
		for _, b := range dcs {
			if a == b {
				continue
			}
			src, dst := s.In.DCs[a], s.In.DCs[b]
			m, _, err := s.CN.MeasureDirect(s.rngFor("mptcp-rank", idx), src, dst, spec, transientEventEnd)
			if err != nil {
				return MPTCPResult{}, fmt.Errorf("experiments: mptcp rank %s->%s: %w", a, b, err)
			}
			idx++
			pairs = append(pairs, pair{src, dst, m.ThroughputMbps})
		}
	}
	out := MPTCPResult{PairsMeasured: len(pairs)}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].direct < pairs[j].direct })
	if len(pairs) > cfg.WorstPaths {
		pairs = pairs[:cfg.WorstPaths]
	}

	for pi, p := range pairs {
		overlayDCs := make([]string, 0, len(dcs)-2)
		for _, dc := range dcs {
			if s.In.DCs[dc].Node != p.src.Node && s.In.DCs[dc].Node != p.dst.Node {
				overlayDCs = append(overlayDCs, dc)
			}
		}
		var direct, overlay, split, mptcp []float64
		for it := 0; it < cfg.Iterations; it++ {
			at := transientEventEnd + time.Duration(it)*cfg.Interval
			rng := s.rngFor("mptcp-run", pi*1000+it)
			pr, err := s.CN.MeasurePair(rng, p.src, p.dst, overlayDCs, spec, at)
			if err != nil {
				return MPTCPResult{}, fmt.Errorf("experiments: mptcp pair %s->%s: %w", p.src.Name, p.dst.Name, err)
			}
			direct = append(direct, pr.Direct.ThroughputMbps)
			if m, ok := pr.BestOverlay(core.Overlay); ok {
				overlay = append(overlay, m.ThroughputMbps)
			}
			if m, ok := pr.BestOverlay(core.SplitOverlay); ok {
				split = append(split, m.ThroughputMbps)
			}
			mp, err := s.CN.MeasureMPTCP(rng, p.src, p.dst, overlayDCs,
				cfg.Coupling, cfg.Alg, cfg.NICMbps, spec, at)
			if err != nil {
				return MPTCPResult{}, fmt.Errorf("experiments: mptcp run %s->%s: %w", p.src.Name, p.dst.Name, err)
			}
			mptcp = append(mptcp, mp.TotalMbps)
		}
		out.Rows = append(out.Rows, MPTCPRow{
			Index: pi + 1, Src: p.src.Name, Dst: p.dst.Name,
			DirectMean: stats.Mean(direct), DirectStd: stats.StdDev(direct),
			OverlayMean: stats.Mean(overlay), OverlayStd: stats.StdDev(overlay),
			SplitMean: stats.Mean(split), SplitStd: stats.StdDev(split),
			MPTCPMean: stats.Mean(mptcp), MPTCPStd: stats.StdDev(mptcp),
		})
	}
	return out, nil
}
