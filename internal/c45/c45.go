// Package c45 implements a C4.5-style decision-tree classifier (Quinlan,
// 1993): information-gain-ratio splits over continuous attributes with
// midpoint thresholds, and pessimistic-error pruning. The paper uses C4.5
// to characterize when an overlay path is likely to improve throughput,
// finding that a simultaneous RTT reduction of at least 10.5% and loss
// reduction of at least 12.1% predicts a gain; the reproduction applies
// this package to the same derived features (Section V-B).
package c45

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is one training example: continuous attribute values plus a class
// label.
type Sample struct {
	// Attrs holds the attribute values, indexed consistently across the
	// data set.
	Attrs []float64
	// Label is the class (e.g. "improved" / "not-improved").
	Label string
}

// Config controls tree induction.
type Config struct {
	// MinLeaf is the minimum number of samples in a leaf (default 2).
	MinLeaf int
	// MaxDepth caps tree depth (default 12).
	MaxDepth int
	// Prune enables pessimistic-error pruning (default on via DefaultConfig).
	Prune bool
	// PruneCF is the pruning confidence factor (C4.5's default 0.25).
	PruneCF float64
}

// DefaultConfig returns C4.5's standard settings.
func DefaultConfig() Config {
	return Config{MinLeaf: 2, MaxDepth: 12, Prune: true, PruneCF: 0.25}
}

// Tree is a trained decision tree.
type Tree struct {
	root      *node
	attrNames []string
}

// node is an internal or leaf node.
type node struct {
	// Leaf fields.
	leaf  bool
	label string
	n     int // training samples reaching this node
	errs  int // training misclassifications at this node's majority label

	// Split fields (attr <= threshold goes left).
	attr      int
	threshold float64
	left      *node
	right     *node
}

// ErrNoData is returned when training data is empty or degenerate.
var ErrNoData = errors.New("c45: no training data")

// Train builds a tree from the samples. attrNames names the attribute
// columns (used by Rules and String); its length must match the samples'
// attribute count.
func Train(samples []Sample, attrNames []string, cfg Config) (*Tree, error) {
	if len(samples) == 0 {
		return nil, ErrNoData
	}
	for i, s := range samples {
		if len(s.Attrs) != len(attrNames) {
			return nil, fmt.Errorf("c45: sample %d has %d attrs, want %d", i, len(s.Attrs), len(attrNames))
		}
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	root := build(samples, cfg, 0)
	if cfg.Prune {
		prune(root, cfg.PruneCF)
	}
	return &Tree{root: root, attrNames: append([]string(nil), attrNames...)}, nil
}

// Classify returns the predicted label for the attribute vector.
func (t *Tree) Classify(attrs []float64) (string, error) {
	if len(attrs) != len(t.attrNames) {
		return "", fmt.Errorf("c45: got %d attrs, want %d", len(attrs), len(t.attrNames))
	}
	n := t.root
	for !n.leaf {
		if attrs[n.attr] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

// Accuracy returns the fraction of samples the tree classifies correctly.
func (t *Tree) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if lbl, err := t.Classify(s.Attrs); err == nil && lbl == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Rule is one root-to-leaf path: a conjunction of threshold conditions
// implying a label.
type Rule struct {
	// Conds are rendered conditions like "dRTT <= -0.105".
	Conds []string
	// Label is the predicted class.
	Label string
	// Support is the number of training samples reaching the leaf.
	Support int
}

// String renders the rule as "cond AND cond => label (n=support)".
func (r Rule) String() string {
	if len(r.Conds) == 0 {
		return fmt.Sprintf("true => %s (n=%d)", r.Label, r.Support)
	}
	return fmt.Sprintf("%s => %s (n=%d)", strings.Join(r.Conds, " AND "), r.Label, r.Support)
}

// Rules extracts every root-to-leaf path as a rule, most-supported first.
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(n *node, conds []string)
	walk = func(n *node, conds []string) {
		if n.leaf {
			out = append(out, Rule{
				Conds:   append([]string(nil), conds...),
				Label:   n.label,
				Support: n.n,
			})
			return
		}
		name := t.attrNames[n.attr]
		walk(n.left, append(conds, fmt.Sprintf("%s <= %.4g", name, n.threshold)))
		walk(n.right, append(conds, fmt.Sprintf("%s > %.4g", name, n.threshold)))
	}
	walk(t.root, nil)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support > out[j].Support })
	return out
}

// Depth returns the tree depth (a single leaf has depth 1).
func (t *Tree) Depth() int {
	var d func(*node) int
	d = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		l, r := d(n.left), d(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return d(t.root)
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	var c func(*node) int
	c = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return c(n.left) + c(n.right)
	}
	return c(t.root)
}

// build grows the tree recursively.
func build(samples []Sample, cfg Config, depth int) *node {
	label, count := majority(samples)
	leaf := &node{leaf: true, label: label, n: len(samples), errs: len(samples) - count}
	if count == len(samples) || depth >= cfg.MaxDepth || len(samples) < 2*cfg.MinLeaf {
		return leaf
	}
	attr, threshold, gain := bestSplit(samples, cfg.MinLeaf)
	if attr < 0 || gain <= 0 {
		return leaf
	}
	var left, right []Sample
	for _, s := range samples {
		if s.Attrs[attr] <= threshold {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return leaf
	}
	return &node{
		attr:      attr,
		threshold: threshold,
		n:         len(samples),
		label:     label,
		errs:      leaf.errs,
		left:      build(left, cfg, depth+1),
		right:     build(right, cfg, depth+1),
	}
}

// bestSplit scans every attribute and candidate threshold, returning the
// split with the highest gain ratio (C4.5's criterion, which normalizes
// information gain by the split's intrinsic information to avoid biasing
// toward fragmenting splits). Gain ratio is only considered for splits
// whose raw gain is at least the average positive gain, per Quinlan.
func bestSplit(samples []Sample, minLeaf int) (int, float64, float64) {
	if len(samples) == 0 {
		return -1, 0, 0
	}
	baseEntropy := entropy(samples)
	nAttrs := len(samples[0].Attrs)

	type cand struct {
		attr      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []cand
	var gainSum float64

	values := make([]float64, len(samples))
	for attr := 0; attr < nAttrs; attr++ {
		for i, s := range samples {
			values[i] = s.Attrs[attr]
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)

		// Candidate thresholds: midpoints between distinct consecutive
		// values.
		prevDistinct := sorted[0]
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == prevDistinct {
				continue
			}
			thr := (prevDistinct + sorted[i]) / 2
			prevDistinct = sorted[i]
			gain, ratio, nl, nr := splitGain(samples, attr, thr, baseEntropy)
			if nl < minLeaf || nr < minLeaf || gain <= 0 {
				continue
			}
			cands = append(cands, cand{attr, thr, gain, ratio})
			gainSum += gain
		}
	}
	if len(cands) == 0 {
		return -1, 0, 0
	}
	avgGain := gainSum / float64(len(cands))
	best := cand{attr: -1}
	for _, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if best.attr < 0 || c.ratio > best.ratio {
			best = c
		}
	}
	if best.attr < 0 {
		// Fall back to the highest raw gain.
		for _, c := range cands {
			if best.attr < 0 || c.gain > best.gain {
				best = c
			}
		}
	}
	return best.attr, best.threshold, best.gain
}

// splitGain returns (information gain, gain ratio, left size, right size)
// for splitting at attr <= thr.
func splitGain(samples []Sample, attr int, thr, baseEntropy float64) (float64, float64, int, int) {
	var left, right []Sample
	for _, s := range samples {
		if s.Attrs[attr] <= thr {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	n := float64(len(samples))
	pl, pr := float64(len(left))/n, float64(len(right))/n
	gain := baseEntropy - pl*entropy(left) - pr*entropy(right)
	split := 0.0
	if pl > 0 {
		split -= pl * math.Log2(pl)
	}
	if pr > 0 {
		split -= pr * math.Log2(pr)
	}
	ratio := 0.0
	if split > 0 {
		ratio = gain / split
	}
	return gain, ratio, len(left), len(right)
}

func entropy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	counts := make(map[string]int)
	for _, s := range samples {
		counts[s.Label]++
	}
	e := 0.0
	n := float64(len(samples))
	for _, c := range counts {
		p := float64(c) / n
		e -= p * math.Log2(p)
	}
	return e
}

func majority(samples []Sample) (string, int) {
	counts := make(map[string]int)
	for _, s := range samples {
		counts[s.Label]++
	}
	best, bestN := "", -1
	// Deterministic tie-break: lexicographically smallest label.
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return best, bestN
}

// prune applies C4.5's pessimistic subtree-replacement pruning: replace a
// subtree with a leaf when the leaf's estimated error (upper confidence
// bound on the training error) is no worse than the subtree's.
func prune(n *node, cf float64) {
	if n == nil || n.leaf {
		return
	}
	prune(n.left, cf)
	prune(n.right, cf)
	subtreeErr := estimatedErrors(n.left, cf) + estimatedErrors(n.right, cf)
	leafErr := ucbErrors(n.n, n.errs, cf)
	if leafErr <= subtreeErr+1e-9 {
		n.leaf = true
		n.left, n.right = nil, nil
	}
}

// estimatedErrors sums the pessimistic error estimates over a subtree's
// leaves.
func estimatedErrors(n *node, cf float64) float64 {
	if n == nil {
		return 0
	}
	if n.leaf {
		return ucbErrors(n.n, n.errs, cf)
	}
	return estimatedErrors(n.left, cf) + estimatedErrors(n.right, cf)
}

// ucbErrors is C4.5's upper confidence bound on the error count of a leaf
// with n samples and e training errors, using the normal approximation to
// the binomial (the standard U_cf(e, n) estimate).
func ucbErrors(n, e int, cf float64) float64 {
	if n == 0 {
		return 0
	}
	z := normalQuantile(1 - cf)
	f := float64(e) / float64(n)
	nn := float64(n)
	num := f + z*z/(2*nn) + z*math.Sqrt(f/nn-f*f/nn+z*z/(4*nn*nn))
	den := 1 + z*z/nn
	return nn * num / den
}

// normalQuantile returns the standard normal quantile via the
// Beasley-Springer-Moro rational approximation.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
