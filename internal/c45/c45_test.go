package c45

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// axisData builds a linearly separable one-attribute data set split at
// threshold.
func axisData(n int, threshold float64, rng *rand.Rand) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64()*2 - 1
		label := "neg"
		if x > threshold {
			label = "pos"
		}
		out = append(out, Sample{Attrs: []float64{x}, Label: label})
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, []string{"x"}, DefaultConfig()); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	bad := []Sample{{Attrs: []float64{1, 2}, Label: "a"}}
	if _, err := Train(bad, []string{"x"}, DefaultConfig()); err == nil {
		t.Error("expected attr-count mismatch error")
	}
}

func TestSeparableRecoversThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := axisData(400, 0.25, rng)
	tree, err := Train(data, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(data); acc < 0.99 {
		t.Errorf("training accuracy = %v on separable data", acc)
	}
	// The root split should sit near 0.25.
	rules := tree.Rules()
	found := false
	for _, r := range rules {
		for _, c := range r.Conds {
			var name string
			var thr float64
			if _, err := parseCond(c, &name, &thr); err == nil && name == "x" {
				if math.Abs(thr-0.25) < 0.1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("no rule near the true threshold; rules: %v", rules)
	}
}

func parseCond(cond string, name *string, thr *float64) (int, error) {
	if strings.Contains(cond, "<=") {
		return fmt.Sscanf(cond, "%s <= %g", name, thr)
	}
	return fmt.Sscanf(cond, "%s > %g", name, thr)
}

func TestTwoAttributeConjunction(t *testing.T) {
	// Label "yes" iff x <= -0.1 AND y <= -0.2: the paper's simultaneous
	// RTT+loss reduction structure.
	rng := rand.New(rand.NewSource(2))
	var data []Sample
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*2 - 1
		y := rng.Float64()*2 - 1
		label := "no"
		if x <= -0.1 && y <= -0.2 {
			label = "yes"
		}
		data = append(data, Sample{Attrs: []float64{x, y}, Label: label})
	}
	tree, err := Train(data, []string{"x", "y"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(data); acc < 0.97 {
		t.Errorf("accuracy = %v", acc)
	}
	// The highest-support "yes" rule should bound both attributes below
	// negative thresholds.
	for _, r := range tree.Rules() {
		if r.Label != "yes" {
			continue
		}
		hasX, hasY := false, false
		for _, c := range r.Conds {
			if strings.HasPrefix(c, "x <= -") {
				hasX = true
			}
			if strings.HasPrefix(c, "y <= -") {
				hasY = true
			}
		}
		if !hasX || !hasY {
			t.Errorf("yes-rule misses a bound: %v", r)
		}
		break
	}
}

func TestClassifyUnseen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := axisData(300, 0.0, rng)
	tree, err := Train(train, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := axisData(300, 0.0, rng)
	if acc := tree.Accuracy(test); acc < 0.95 {
		t.Errorf("held-out accuracy = %v", acc)
	}
}

func TestClassifyValidation(t *testing.T) {
	tree, err := Train(axisData(50, 0, rand.New(rand.NewSource(1))), []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Classify([]float64{1, 2}); err == nil {
		t.Error("expected attr-count error")
	}
}

func TestSingleClassIsLeaf(t *testing.T) {
	data := []Sample{
		{Attrs: []float64{1}, Label: "a"},
		{Attrs: []float64{2}, Label: "a"},
		{Attrs: []float64{3}, Label: "a"},
	}
	tree, err := Train(data, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 || tree.Leaves() != 1 {
		t.Errorf("pure data should yield a single leaf: depth=%d leaves=%d", tree.Depth(), tree.Leaves())
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Pure noise: labels independent of the attribute.
	var data []Sample
	for i := 0; i < 300; i++ {
		label := "a"
		if rng.Intn(2) == 0 {
			label = "b"
		}
		data = append(data, Sample{Attrs: []float64{rng.Float64()}, Label: label})
	}
	pruned, err := Train(data, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Prune = false
	unpruned, err := Train(data, []string{"x"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() > unpruned.Leaves() {
		t.Errorf("pruning grew the tree: %d -> %d leaves", unpruned.Leaves(), pruned.Leaves())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	cfg.Prune = false
	var data []Sample
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		label := "a"
		if int(x*16)%2 == 0 { // needs depth > 3 to separate fully
			label = "b"
		}
		data = append(data, Sample{Attrs: []float64{x}, Label: label})
	}
	tree, err := Train(data, []string{"x"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 4 { // depth counts leaves; 3 splits -> depth 4
		t.Errorf("depth = %d exceeds configured max", tree.Depth())
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Conds: []string{"x <= 1", "y > 2"}, Label: "pos", Support: 7}
	want := "x <= 1 AND y > 2 => pos (n=7)"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	empty := Rule{Label: "pos", Support: 3}
	if got := empty.String(); got != "true => pos (n=3)" {
		t.Errorf("String = %q", got)
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0}, {0.975, 1.96}, {0.025, -1.96}, {0.75, 0.674},
	}
	for _, tt := range tests {
		if got := normalQuantile(tt.p); math.Abs(got-tt.want) > 0.01 {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("quantile at bounds should be infinite")
	}
}
