// Package stats provides the small statistical toolkit used throughout the
// CRONets reproduction: empirical CDFs, percentiles, robust location/scale
// estimates, and histogram binning helpers matching the figures in the paper.
//
// All functions are pure and operate on copies of their inputs; callers never
// observe their slices being reordered.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful result
// for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median (the 50th percentile, with linear
// interpolation between the two middle order statistics for even-sized
// samples). It returns 0 for an empty sample.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile of xs, p in [0, 100], using linear
// interpolation between closest ranks. It returns 0 for an empty sample and
// clamps p into [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// StdDev returns the population standard deviation of xs. It returns 0 for
// samples of size < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MedianAbsDev returns the median absolute deviation from the median, the
// robust spread estimate used for the error bars of Figure 9 and 10.
func MedianAbsDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// FractionAbove returns the fraction of samples strictly greater than
// threshold. It returns 0 for an empty sample.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDF is an empirical cumulative distribution function over a finite sample.
// The zero value is an empty CDF; use NewCDF to build one from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the number of samples in the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples less than or equal to x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of values <= x, so search for the first value > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) of the sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Min returns the smallest sample, or 0 for an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample, or 0 for an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns n evenly spaced (x, P(X<=x)) pairs spanning the sample
// range, suitable for plotting the CDF curves of Figures 2-5 and 8.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	lo, hi := c.Min(), c.Max()
	if n == 1 || lo == hi {
		return []Point{{X: hi, Y: 1}}
	}
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// LogPoints returns n (x, P(X<=x)) pairs spaced evenly in log10(x) between
// the smallest positive sample and the maximum, matching the paper's
// logarithmic X axes. Non-positive samples contribute to the Y values but
// generate no X points.
func (c *CDF) LogPoints(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	var lo float64
	for _, v := range c.sorted {
		if v > 0 {
			lo = v
			break
		}
	}
	hi := c.Max()
	if lo <= 0 || hi <= lo {
		return c.Points(n)
	}
	if n == 1 {
		return []Point{{X: hi, Y: 1}}
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	step := (logHi - logLo) / float64(n-1)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		x := math.Pow(10, logLo+float64(i)*step)
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is a single (x, y) sample of a curve.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Bin is a half-open interval [Lo, Hi) with the samples that fell into it.
// Hi = +Inf denotes an unbounded final bin.
type Bin struct {
	Lo, Hi  float64
	Samples []float64
}

// Label renders the bin bounds in the paper's interval notation, e.g.
// "[70,140)" or "[280,inf)".
func (b Bin) Label() string {
	if math.IsInf(b.Hi, 1) {
		return fmt.Sprintf("[%g,inf)", b.Lo)
	}
	return fmt.Sprintf("[%g,%g)", b.Lo, b.Hi)
}

// BinBy partitions the samples into bins delimited by the sorted edge values.
// Edges {e0, e1, ..., ek} produce bins [e0,e1), [e1,e2), ..., [ek, +Inf).
// key extracts the binning value for a sample; value extracts the number
// stored in the bin. Samples below e0 are dropped.
func BinBy[T any](items []T, edges []float64, key, value func(T) float64) []Bin {
	if len(edges) == 0 {
		return nil
	}
	bins := make([]Bin, len(edges))
	for i := range edges {
		bins[i].Lo = edges[i]
		if i+1 < len(edges) {
			bins[i].Hi = edges[i+1]
		} else {
			bins[i].Hi = math.Inf(1)
		}
	}
	for _, it := range items {
		k := key(it)
		if k < edges[0] {
			continue
		}
		// Find the last edge <= k.
		idx := sort.SearchFloat64s(edges, k)
		if idx == len(edges) || edges[idx] > k {
			idx--
		}
		bins[idx].Samples = append(bins[idx].Samples, value(it))
	}
	return bins
}

// ImprovementRatio returns overlay/direct, the throughput improvement ratio
// used throughout the paper. A zero or negative direct value yields +Inf when
// the overlay value is positive, and 1 when both are non-positive (no
// meaningful comparison).
func ImprovementRatio(overlay, direct float64) float64 {
	if direct <= 0 {
		if overlay > 0 {
			return math.Inf(1)
		}
		return 1
	}
	return overlay / direct
}

// IncreaseRatio returns (overlay-direct)/direct, the quantity plotted on the
// Y axis of Figure 11. A non-positive direct value yields +Inf when overlay
// is larger and 0 otherwise.
func IncreaseRatio(overlay, direct float64) float64 {
	if direct <= 0 {
		if overlay > direct {
			return math.Inf(1)
		}
		return 0
	}
	return (overlay - direct) / direct
}

// MeanFinite returns the mean over the finite elements of xs, guarding the
// "average improvement factor" statistics against infinite ratios produced by
// zero-throughput direct paths. The second return is the number of finite
// samples used.
func MeanFinite(xs []float64) (float64, int) {
	var sum float64
	n := 0
	for _, x := range xs {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
