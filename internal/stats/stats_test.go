package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	tests := []struct {
		name      string
		xs        []float64
		mean, med float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 3},
		{"odd", []float64{1, 3, 2}, 2, 2},
		{"even", []float64{1, 2, 3, 4}, 2.5, 2.5},
		{"skewed", []float64{1, 1, 1, 97}, 25, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Median(tt.xs); math.Abs(got-tt.med) > 1e-12 {
				t.Errorf("Median = %v, want %v", got, tt.med)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {-5, 10}, {110, 50},
		{10, 14}, // interpolated
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constant = %v, want 0", got)
	}
	// Population sd of {1, 3} is 1.
	if got := StdDev([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev = %v, want 1", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of singleton = %v, want 0", got)
	}
}

func TestMedianAbsDev(t *testing.T) {
	// Median 3; deviations {2,1,0,1,2} -> MAD 1.
	if got := MedianAbsDev([]float64{1, 2, 3, 4, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAD = %v, want 1", got)
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{0.5, 1, 1.5, 2}
	if got := FractionAbove(xs, 1); got != 0.5 {
		t.Errorf("FractionAbove(1) = %v, want 0.5 (strictly greater)", got)
	}
	if got := FractionAbove(nil, 1); got != 0 {
		t.Errorf("FractionAbove(empty) = %v", got)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	tests := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Len() != 0 {
		t.Error("empty CDF should return zeros")
	}
	if pts := c.Points(5); pts != nil {
		t.Errorf("empty CDF points = %v", pts)
	}
}

// TestCDFMonotonic is the core CDF invariant: At is non-decreasing and
// bounded in [0, 1].
func TestCDFMonotonic(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		c := NewCDF(clean)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		ya, yb := c.At(lo), c.At(hi)
		return ya >= 0 && yb <= 1 && ya <= yb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuantileInverse: for any sample, At(Quantile(q)) covers q up to the
// resolution of one order statistic (Quantile interpolates linearly
// between order statistics, so the step CDF can lag by at most 1/n).
func TestQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(xs)
		q := rng.Float64()
		if got := c.At(c.Quantile(q)); got < q-1.0/float64(n)-1e-9 {
			t.Fatalf("At(Quantile(%v)) = %v < q - 1/n (n=%d)", q, got, n)
		}
	}
}

func TestPointsCoverRange(t *testing.T) {
	c := NewCDF([]float64{1, 5, 9})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[4].X != 9 {
		t.Errorf("points do not span range: %v", pts)
	}
	if pts[4].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[4].Y)
	}
}

func TestLogPoints(t *testing.T) {
	c := NewCDF([]float64{0.01, 0.1, 1, 10, 100})
	pts := c.LogPoints(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	// X values should be logarithmically spaced: ratios roughly constant.
	r1 := pts[1].X / pts[0].X
	r2 := pts[2].X / pts[1].X
	if math.Abs(r1-r2) > 1e-6 {
		t.Errorf("log spacing broken: %v vs %v", r1, r2)
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last Y = %v", pts[len(pts)-1].Y)
	}
}

func TestBinLabel(t *testing.T) {
	if got := (Bin{Lo: 70, Hi: 140}).Label(); got != "[70,140)" {
		t.Errorf("Label = %q", got)
	}
	if got := (Bin{Lo: 280, Hi: math.Inf(1)}).Label(); got != "[280,inf)" {
		t.Errorf("Label = %q", got)
	}
}

func TestBinBy(t *testing.T) {
	type item struct{ k, v float64 }
	items := []item{{10, 1}, {75, 2}, {139, 3}, {140, 4}, {500, 5}, {-3, 6}}
	bins := BinBy(items, []float64{0, 70, 140},
		func(i item) float64 { return i.k }, func(i item) float64 { return i.v })
	if len(bins) != 3 {
		t.Fatalf("got %d bins", len(bins))
	}
	if len(bins[0].Samples) != 1 || bins[0].Samples[0] != 1 {
		t.Errorf("bin0 = %v", bins[0].Samples)
	}
	if len(bins[1].Samples) != 2 {
		t.Errorf("bin1 = %v", bins[1].Samples)
	}
	if len(bins[2].Samples) != 2 {
		t.Errorf("bin2 = %v (140 and 500 belong here; -3 dropped)", bins[2].Samples)
	}
}

// TestBinByPartition: every sample >= first edge lands in exactly one bin.
func TestBinByPartition(t *testing.T) {
	f := func(keys []float64) bool {
		edges := []float64{0, 10, 100}
		clean := make([]float64, 0, len(keys))
		for _, k := range keys {
			if !math.IsNaN(k) && !math.IsInf(k, 0) {
				clean = append(clean, math.Abs(k))
			}
		}
		bins := BinBy(clean, edges, func(x float64) float64 { return x },
			func(x float64) float64 { return x })
		total := 0
		for _, b := range bins {
			total += len(b.Samples)
			for _, s := range b.Samples {
				if s < b.Lo || (!math.IsInf(b.Hi, 1) && s >= b.Hi) {
					return false
				}
			}
		}
		return total == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestImprovementRatio(t *testing.T) {
	if got := ImprovementRatio(10, 5); got != 2 {
		t.Errorf("ratio = %v", got)
	}
	if got := ImprovementRatio(10, 0); !math.IsInf(got, 1) {
		t.Errorf("ratio with zero direct = %v, want +Inf", got)
	}
	if got := ImprovementRatio(0, 0); got != 1 {
		t.Errorf("ratio with both zero = %v, want 1", got)
	}
}

func TestIncreaseRatio(t *testing.T) {
	if got := IncreaseRatio(15, 5); got != 2 {
		t.Errorf("increase = %v, want 2", got)
	}
	if got := IncreaseRatio(5, 0); !math.IsInf(got, 1) {
		t.Errorf("increase with zero direct = %v", got)
	}
}

func TestMeanFinite(t *testing.T) {
	mean, n := MeanFinite([]float64{1, 2, math.Inf(1), math.NaN(), 3})
	if n != 3 || mean != 2 {
		t.Errorf("MeanFinite = %v over %d", mean, n)
	}
	if _, n := MeanFinite(nil); n != 0 {
		t.Errorf("MeanFinite(nil) n = %d", n)
	}
}

// TestPercentileOrderStatistics: percentiles are monotone in p and bounded
// by the sample extremes.
func TestPercentileOrderStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				t.Fatalf("percentile not monotone at p=%v", p)
			}
			if v < sorted[0]-1e-9 || v > sorted[n-1]+1e-9 {
				t.Fatalf("percentile %v outside sample range", v)
			}
			prev = v
		}
	}
}
