package flowtrace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testContext() Context {
	var c Context
	for i := range c.Trace {
		c.Trace[i] = byte(i + 1)
	}
	c.Span = 0x1234_5678_9ABC_DEF0 &^ sampledBit
	c.Sampled = true
	return c
}

func TestContextBinaryRoundTrip(t *testing.T) {
	c := testContext()
	var wire [WireSize]byte
	if n := c.EncodeBinary(wire[:]); n != WireSize {
		t.Fatalf("EncodeBinary = %d, want %d", n, WireSize)
	}
	got, ok := DecodeBinary(wire[:])
	if !ok || got != c {
		t.Fatalf("DecodeBinary = %+v, %v; want %+v, true", got, ok, c)
	}

	c.Sampled = false
	c.EncodeBinary(wire[:])
	got, ok = DecodeBinary(wire[:])
	if !ok || got.Sampled {
		t.Fatalf("unsampled context decoded as %+v, %v", got, ok)
	}
}

func TestContextBinaryRejects(t *testing.T) {
	if _, ok := DecodeBinary(make([]byte, WireSize-1)); ok {
		t.Error("short buffer decoded ok")
	}
	// A zero trace ID is not a valid wire context.
	if _, ok := DecodeBinary(make([]byte, WireSize)); ok {
		t.Error("zero trace ID decoded ok")
	}
}

func TestContextTextRoundTrip(t *testing.T) {
	c := testContext()
	s := c.EncodeText()
	if len(s) != TextSize {
		t.Fatalf("EncodeText length = %d, want %d", len(s), TextSize)
	}
	got, ok := DecodeText(s)
	if !ok || got != c {
		t.Fatalf("DecodeText = %+v, %v; want %+v, true", got, ok, c)
	}
	got, ok = DecodeTextBytes([]byte(s))
	if !ok || got != c {
		t.Fatalf("DecodeTextBytes = %+v, %v; want %+v, true", got, ok, c)
	}
	// Uppercase hex decodes too.
	if _, ok := DecodeText(strings.ToUpper(s)); !ok {
		t.Error("uppercase hex rejected")
	}
}

func TestContextTextRejects(t *testing.T) {
	c := testContext()
	s := c.EncodeText()
	for _, bad := range []string{"", s[:TextSize-1], s + "00", strings.Replace(s, s[:1], "x", 1)} {
		if _, ok := DecodeText(bad); ok {
			t.Errorf("DecodeText(%q) ok, want rejection", bad)
		}
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if s := tr.Start("x", Context{}); s != nil {
		t.Fatalf("nil tracer Start = %v, want nil", s)
	}
	if s := tr.Continue("x", testContext()); s != nil {
		t.Fatalf("nil tracer Continue = %v, want nil", s)
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", got)
	}
	var s *Span
	s.AddBytes(10)
	s.MarkFirstByte()
	s.SetDetail("d")
	s.End()
	if s.Ended() || s.Bytes() != 0 || s.Duration() != 0 {
		t.Error("nil span reported state")
	}
	if _, ok := s.FirstByte(); ok {
		t.Error("nil span reported a first byte")
	}
	if c := s.Context(); !c.IsZero() || c.Sampled {
		t.Errorf("nil span Context = %+v, want zero", c)
	}
}

func TestSamplingRates(t *testing.T) {
	zero := New(Config{SampleRate: 0, Seed: 1})
	for i := 0; i < 100; i++ {
		if zero.Start("f", Context{}) != nil {
			t.Fatal("rate 0 sampled a root")
		}
	}
	one := New(Config{SampleRate: 1, Seed: 1})
	for i := 0; i < 100; i++ {
		if one.Start("f", Context{}) == nil {
			t.Fatal("rate 1 skipped a root")
		}
	}
	// rate 0.25 -> deterministic 1-in-4.
	quarter := New(Config{SampleRate: 0.25, Seed: 1})
	sampledN := 0
	for i := 0; i < 100; i++ {
		if s := quarter.Start("f", Context{}); s != nil {
			sampledN++
			s.End()
		}
	}
	if sampledN != 25 {
		t.Errorf("rate 0.25 sampled %d of 100, want 25", sampledN)
	}
}

func TestStartContinueSemantics(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1, Seed: 7})
	root := tr.Start("root", Context{})
	if root == nil {
		t.Fatal("root not sampled at rate 1")
	}
	if root.Parent != 0 || root.Trace.IsZero() {
		t.Fatalf("root span = %+v, want parentless with a trace ID", root)
	}
	child := tr.Start("child", root.Context())
	if child == nil || child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatalf("child = %+v, want trace %s parent %x", child, root.Trace, root.ID)
	}

	// Continue never originates: zero and unsampled contexts return nil,
	// even on a tracer whose rate would sample a fresh root.
	if s := tr.Continue("hop", Context{}); s != nil {
		t.Error("Continue minted a root from the zero context")
	}
	un := root.Context()
	un.Sampled = false
	if s := tr.Continue("hop", un); s != nil {
		t.Error("Continue followed an unsampled context")
	}
	hop := tr.Continue("hop", root.Context())
	if hop == nil || hop.Parent != root.ID {
		t.Fatalf("Continue = %+v, want child of root", hop)
	}

	// An unsampled parent passed to Start is also not recorded.
	if s := tr.Start("child", un); s != nil {
		t.Error("Start followed an unsampled parent")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1, Seed: 3})
	s := tr.Start("op", Context{})
	s.AddBytes(100)
	s.AddBytes(28)
	s.MarkFirstByte()
	first, ok := s.FirstByte()
	if !ok || first < 0 {
		t.Fatalf("FirstByte = %v, %v", first, ok)
	}
	s.MarkFirstByte() // only the first call counts
	again, _ := s.FirstByte()
	if again != first {
		t.Errorf("second MarkFirstByte moved the mark: %v != %v", again, first)
	}
	s.SetDetail("d")
	if s.Ended() {
		t.Error("Ended before End")
	}
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("ring has %d spans before End", got)
	}
	s.End()
	s.End() // idempotent
	if !s.Ended() || s.Bytes() != 128 || s.Duration() <= 0 {
		t.Fatalf("after End: ended=%v bytes=%d dur=%v", s.Ended(), s.Bytes(), s.Duration())
	}
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("ring has %d spans after End, want 1", got)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingSize: 8, Seed: 9})
	for i := 0; i < 20; i++ {
		tr.Start("op", Context{}).End()
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
}

func TestTracesAssembly(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1, Seed: 11})
	root := tr.Start("gateway.flow", Context{})
	child := tr.Start("gateway.dial", root.Context())
	grand := tr.Start("relay.splice", child.Context())
	grand.End()
	child.End()
	time.Sleep(time.Millisecond)
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("Traces = %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.TraceID != root.Trace.String() || got.Root != "gateway.flow" {
		t.Fatalf("trace = %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(got.Spans))
	}
	if got.Spans[0].Name != "gateway.flow" || got.Spans[0].ParentID != "" {
		t.Errorf("first span = %+v, want the root", got.Spans[0])
	}
	if got.DurationMS <= 0 {
		t.Errorf("DurationMS = %v, want > 0", got.DurationMS)
	}
}

func decodeTraces(t *testing.T, h http.Handler, url string) ([]Trace, *httptest.ResponseRecorder) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		return nil, rec
	}
	var out []Trace
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return out, rec
}

func TestHandlerFilters(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 13})
	a := tr.Start("a", Context{})
	a.End()
	b := tr.Start("b", Context{})
	b.End()
	h := tr.Handler()

	all, _ := decodeTraces(t, h, "/debug/traces")
	if len(all) != 2 {
		t.Fatalf("unfiltered = %d traces, want 2", len(all))
	}
	one, _ := decodeTraces(t, h, "/debug/traces?trace="+a.Trace.String())
	if len(one) != 1 || one[0].TraceID != a.Trace.String() {
		t.Fatalf("?trace= returned %+v", one)
	}
	none, _ := decodeTraces(t, h, "/debug/traces?trace="+strings.Repeat("0", 32))
	if len(none) != 0 {
		t.Fatalf("bogus trace ID returned %d traces", len(none))
	}
	long, _ := decodeTraces(t, h, "/debug/traces?min_dur=1h")
	if len(long) != 0 {
		t.Fatalf("min_dur=1h returned %d traces", len(long))
	}
	if _, rec := decodeTraces(t, h, "/debug/traces?min_dur=banana"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad min_dur status = %d, want 400", rec.Code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

// TestUnsampledPathAllocs is the CI gate on the instrumented data path:
// an unsampled flow must not allocate in Start or in any no-op span
// method.
func TestUnsampledPathAllocs(t *testing.T) {
	tr := New(Config{SampleRate: 0, Seed: 5})
	remote := testContext()
	remote.Sampled = false
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("gateway.flow", Context{})
		s.MarkFirstByte()
		s.AddBytes(4096)
		s.End()
		h := tr.Continue("relay.splice", remote)
		h.AddBytes(4096)
		h.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %.1f per op, want 0", allocs)
	}
}

func TestGoContextRoundTrip(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 17})
	s := tr.Start("f", Context{})
	ctx := NewGoContext(t.Context(), s.Context())
	if got := FromGoContext(ctx); got != s.Context() {
		t.Fatalf("FromGoContext = %+v, want %+v", got, s.Context())
	}
	// Unsampled contexts are not stashed.
	if ctx2 := NewGoContext(t.Context(), Context{}); FromGoContext(ctx2).Sampled {
		t.Error("zero context survived NewGoContext")
	}
	if got := FromGoContext(nil); !got.IsZero() {
		t.Errorf("FromGoContext(nil) = %+v", got)
	}
}
