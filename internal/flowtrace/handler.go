package flowtrace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"cronets/internal/obs"
)

// SpanRecord is a completed span's JSON form.
type SpanRecord struct {
	TraceID     string    `json:"trace_id"`
	SpanID      string    `json:"span_id"`
	ParentID    string    `json:"parent_id,omitempty"`
	Name        string    `json:"name"`
	Node        string    `json:"node"`
	Detail      string    `json:"detail,omitempty"`
	Start       time.Time `json:"start"`
	DurationMS  float64   `json:"duration_ms"`
	Bytes       int64     `json:"bytes,omitempty"`
	FirstByteMS float64   `json:"first_byte_ms,omitempty"`
}

// Trace is an assembled trace: every completed span sharing one trace
// ID, start-ordered.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Root is the root span's name ("" when the root has not ended yet
	// or was overwritten in the ring).
	Root  string    `json:"root,omitempty"`
	Start time.Time `json:"start"`
	// DurationMS is the root span's duration when present, otherwise
	// the envelope of the known spans.
	DurationMS float64      `json:"duration_ms"`
	Spans      []SpanRecord `json:"spans"`
}

// record converts a completed span.
func record(s *Span) SpanRecord {
	r := SpanRecord{
		TraceID:    s.Trace.String(),
		SpanID:     strconv.FormatUint(s.ID, 16),
		Name:       s.Name,
		Node:       s.NodeName,
		Detail:     s.Detail,
		Start:      s.StartTime,
		DurationMS: s.Duration().Seconds() * 1e3,
		Bytes:      s.Bytes(),
	}
	if s.Parent != 0 {
		r.ParentID = strconv.FormatUint(s.Parent, 16)
	}
	if fb, ok := s.FirstByte(); ok {
		r.FirstByteMS = fb.Seconds() * 1e3
	}
	return r
}

// Traces assembles the ring's completed spans into traces, most recent
// trace first. Nil-safe.
func (t *Tracer) Traces() []Trace {
	spans := t.Snapshot()
	byTrace := make(map[TraceID][]*Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]Trace, 0, len(byTrace))
	for id, group := range byTrace {
		sort.SliceStable(group, func(i, j int) bool {
			return group[i].StartTime.Before(group[j].StartTime)
		})
		tr := Trace{TraceID: id.String(), Start: group[0].StartTime}
		var envelopeEnd time.Time
		for _, s := range group {
			tr.Spans = append(tr.Spans, record(s))
			if s.Parent == 0 {
				tr.Root = s.Name
				tr.DurationMS = s.Duration().Seconds() * 1e3
			}
			if end := s.StartTime.Add(s.Duration()); end.After(envelopeEnd) {
				envelopeEnd = end
			}
		}
		if tr.Root == "" {
			tr.DurationMS = envelopeEnd.Sub(tr.Start).Seconds() * 1e3
		}
		out = append(out, tr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Handler serves assembled traces as a JSON array on /debug/traces.
// Query parameters: ?trace=<32-hex trace ID> keeps one trace,
// ?min_dur=<Go duration> drops traces shorter than the bound. GET only;
// responses are uncacheable.
func (t *Tracer) Handler() http.Handler {
	return obs.GETOnly(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var minDur time.Duration
		if v := q.Get("min_dur"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min_dur: "+err.Error(), http.StatusBadRequest)
				return
			}
			minDur = d
		}
		wantTrace := q.Get("trace")
		traces := t.Traces()
		filtered := make([]Trace, 0, len(traces))
		for _, tr := range traces {
			if wantTrace != "" && tr.TraceID != wantTrace {
				continue
			}
			if minDur > 0 && time.Duration(tr.DurationMS*float64(time.Millisecond)) < minDur {
				continue
			}
			filtered = append(filtered, tr)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(filtered)
	}))
}
