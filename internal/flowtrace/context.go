package flowtrace

import "encoding/hex"

// TraceID identifies one end-to-end flow trace.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the ID as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// Context is the trace state propagated across overlay hops: which trace
// a flow belongs to, which span the next hop should parent under, and
// whether the flow is sampled. An unsampled (or zero) Context is never
// put on the wire — hops only see contexts worth recording.
type Context struct {
	Trace   TraceID
	Span    uint64
	Sampled bool
}

// WireSize is the binary encoding length: 16-byte trace ID plus an
// 8-byte span word whose top bit carries the sampling flag (span IDs are
// generated with that bit clear).
const WireSize = 24

// TextSize is the hex text encoding length (2 chars per wire byte).
const TextSize = 2 * WireSize

// sampledBit is bit 63 of the wire span word.
const sampledBit = uint64(1) << 63

// IsZero reports whether the context carries no trace.
func (c Context) IsZero() bool { return c.Trace.IsZero() }

// EncodeBinary writes the 24-byte wire form into dst, which must hold at
// least WireSize bytes, and returns WireSize.
func (c Context) EncodeBinary(dst []byte) int {
	_ = dst[WireSize-1]
	copy(dst[:16], c.Trace[:])
	word := c.Span &^ sampledBit
	if c.Sampled {
		word |= sampledBit
	}
	putUint64(dst[16:24], word)
	return WireSize
}

// DecodeBinary parses a 24-byte wire context. ok is false if b is short
// or the trace ID is zero.
func DecodeBinary(b []byte) (c Context, ok bool) {
	if len(b) < WireSize {
		return Context{}, false
	}
	copy(c.Trace[:], b[:16])
	word := getUint64(b[16:24])
	c.Span = word &^ sampledBit
	c.Sampled = word&sampledBit != 0
	return c, !c.Trace.IsZero()
}

// EncodeText returns the 48-hex-character text form used in the relay
// CONNECT preamble.
func (c Context) EncodeText() string {
	var wire [WireSize]byte
	c.EncodeBinary(wire[:])
	return hex.EncodeToString(wire[:])
}

// DecodeText parses the text form produced by EncodeText.
func DecodeText(s string) (Context, bool) {
	if len(s) != TextSize {
		return Context{}, false
	}
	return decodeHex([]byte(s))
}

// DecodeTextBytes is DecodeText over a byte slice. It allocates nothing,
// so transparent middleboxes (netem) can sniff passing handshakes at
// zero cost when no context is present.
func DecodeTextBytes(b []byte) (Context, bool) {
	if len(b) != TextSize {
		return Context{}, false
	}
	return decodeHex(b)
}

func decodeHex(b []byte) (Context, bool) {
	var wire [WireSize]byte
	for i := 0; i < WireSize; i++ {
		hi, ok1 := hexNibble(b[2*i])
		lo, ok2 := hexNibble(b[2*i+1])
		if !ok1 || !ok2 {
			return Context{}, false
		}
		wire[i] = hi<<4 | lo
	}
	return DecodeBinary(wire[:])
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
