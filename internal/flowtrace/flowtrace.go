// Package flowtrace is lightweight distributed tracing for overlay
// flows: a trace starts at the gateway, a compact 24-byte context (trace
// ID, parent span ID, sampling bit) rides the relay CONNECT preamble and
// the tunnel frame header across hops, and each hop — gateway path
// selection, relay dial and splice, multipath send/receive, netem
// shaping — records spans with wall-clock timestamps, byte counts, and
// first-byte latency into a bounded lock-free per-node span ring.
//
// Design rules, matching internal/obs:
//
//   - Sampling is decided once, at the root. The unsampled path is
//     allocation-free: Start returns a nil *Span and every Span method
//     is a nil-safe no-op, so data-plane code records unconditionally.
//   - Completed spans are published into the ring with one atomic
//     pointer store; readers (the /debug/traces assembler) only ever see
//     fully-ended spans.
//   - A nil *Tracer is a valid no-op: components take an optional
//     *Tracer and never branch on it.
package flowtrace

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"cronets/internal/obs"
)

// Config parameterizes a Tracer. The zero value samples nothing.
type Config struct {
	// Node names this tracer's node in span records (e.g. "gateway",
	// "relay-fra"). Defaults to "node".
	Node string
	// SampleRate is the fraction of root Start calls that begin a
	// recorded trace: <= 0 never samples, >= 1 samples every flow, and
	// anything between samples deterministically 1-in-round(1/rate).
	// Spans continuing a remote context follow the context's sampling
	// bit and ignore this rate.
	SampleRate float64
	// RingSize bounds the completed-span ring (default 4096). Oldest
	// spans are overwritten first.
	RingSize int
	// Seed perturbs trace/span ID generation; 0 derives one from the
	// clock. Fix it for reproducible IDs in tests.
	Seed uint64
	// Obs receives tracer metrics and flow-trace completion events (nil
	// disables instrumentation).
	Obs *obs.Registry
}

// DefaultRingSize is the span-ring capacity used when Config.RingSize
// is unset.
const DefaultRingSize = 4096

// Tracer makes sampling decisions, mints IDs, and owns the node's
// completed-span ring. A nil *Tracer is a valid no-op.
type Tracer struct {
	node   string
	period uint64 // sample 1-in-period roots; 0 = never
	seq    atomic.Uint64
	ids    atomic.Uint64 // splitmix64 state

	slots  []atomic.Pointer[Span]
	cursor atomic.Uint64

	scope     *obs.Scope
	spans     *obs.Counter
	sampled   *obs.Counter
	unsampled *obs.Counter
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	if cfg.Node == "" {
		cfg.Node = "node"
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	var period uint64
	switch {
	case cfg.SampleRate >= 1:
		period = 1
	case cfg.SampleRate > 0:
		period = uint64(1/cfg.SampleRate + 0.5)
		if period == 0 {
			period = 1
		}
	}
	t := &Tracer{
		node:   cfg.Node,
		period: period,
		slots:  make([]atomic.Pointer[Span], cfg.RingSize),
		scope:  cfg.Obs.Scope("flowtrace"),
		spans: cfg.Obs.Counter("cronets_flowtrace_spans_total",
			"Completed spans published into the span ring."),
		sampled: cfg.Obs.Counter("cronets_flowtrace_traces_sampled_total",
			"Root Start calls that began a recorded trace."),
		unsampled: cfg.Obs.Counter("cronets_flowtrace_traces_unsampled_total",
			"Root Start calls skipped by the sampling rate."),
	}
	t.ids.Store(seed)
	return t
}

// Node returns the tracer's node name ("" on nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// rnd draws the next ID word (splitmix64 over an atomic state — no
// locks, no allocation).
func (t *Tracer) rnd() uint64 {
	x := t.ids.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// sampleRoot decides whether a new root trace is recorded.
func (t *Tracer) sampleRoot() bool {
	switch t.period {
	case 0:
		return false
	case 1:
		return true
	}
	return (t.seq.Add(1)-1)%t.period == 0
}

// Start opens a span. With a zero parent it begins a new trace, applying
// the sampling rate; with a non-zero parent it continues that trace,
// following the parent's sampling bit. Unsampled either way returns nil
// — a valid no-op span — without allocating.
func (t *Tracer) Start(name string, parent Context) *Span {
	if t == nil {
		return nil
	}
	// The sampling decision comes before any allocation so the unsampled
	// path stays allocation-free (gated by TestUnsampledPathAllocs).
	root := parent.IsZero()
	if root {
		if !t.sampleRoot() {
			t.unsampled.Inc()
			return nil
		}
		t.sampled.Inc()
	} else if !parent.Sampled {
		return nil
	}
	s := &Span{}
	if root {
		putUint64(s.Trace[:8], t.rnd())
		putUint64(s.Trace[8:], t.rnd())
	} else {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	}
	s.tracer = t
	s.ID = t.rnd() &^ sampledBit
	if s.ID == 0 {
		s.ID = 1
	}
	s.Name = name
	s.NodeName = t.node
	s.StartTime = time.Now()
	return s
}

// Continue opens a span only when parent is a sampled remote context —
// the hop-side counterpart of Start for components (relay, netem) that
// never originate traces, only join ones arriving on the wire. Nil-safe
// and allocation-free when parent is unsampled.
func (t *Tracer) Continue(name string, parent Context) *Span {
	if t == nil || !parent.Sampled || parent.IsZero() {
		return nil
	}
	return t.Start(name, parent)
}

// publish stores a completed span into the ring.
func (t *Tracer) publish(s *Span) {
	i := t.cursor.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(s)
	t.spans.Inc()
}

// Snapshot returns the completed spans currently in the ring, oldest
// first (best effort under concurrent writes). Nil-safe.
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	n := uint64(len(t.slots))
	cur := t.cursor.Load()
	out := make([]*Span, 0, n)
	for off := uint64(0); off < n; off++ {
		if s := t.slots[(cur+off)%n].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Span is one timed hop-local operation within a trace. Fields are
// written by the owning goroutine before End; AddBytes and MarkFirstByte
// are atomic and may be called from data-plane goroutines while the span
// is live. All methods are nil-safe no-ops, so unsampled flows carry nil
// spans for free.
type Span struct {
	tracer *Tracer

	Trace    TraceID
	ID       uint64
	Parent   uint64 // 0 for a root span
	Name     string
	NodeName string
	// Detail is a free-form annotation (chosen path, CONNECT target).
	// Set it from the owning goroutine before End; not synchronized.
	Detail    string
	StartTime time.Time

	endNanos  atomic.Int64
	bytes     atomic.Int64
	firstByte atomic.Int64 // UnixNano of the first payload byte
	ended     atomic.Bool
}

// Context returns the propagation context naming this span as parent.
// A nil span returns the zero (unsampled) Context.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.Trace, Span: s.ID, Sampled: true}
}

// AddBytes adds payload bytes to the span's byte count.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.bytes.Add(n)
}

// MarkFirstByte records the first-payload-byte instant; only the first
// call counts.
func (s *Span) MarkFirstByte() {
	if s == nil {
		return
	}
	s.firstByte.CompareAndSwap(0, time.Now().UnixNano())
}

// SetDetail annotates the span. Call from the owning goroutine only.
func (s *Span) SetDetail(d string) {
	if s == nil {
		return
	}
	s.Detail = d
}

// End completes the span, publishing it into the tracer's ring. A root
// span's End also emits a flow-trace completion event. Idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.endNanos.Store(time.Now().UnixNano())
	s.tracer.publish(s)
	if s.Parent == 0 {
		s.tracer.scope.Event(obs.EventFlowTrace, fmt.Sprintf(
			"trace=%s root=%s dur=%s bytes=%d",
			s.Trace, s.Name, s.Duration().Round(time.Microsecond), s.Bytes()))
	}
}

// Ended reports whether End ran (false for nil).
func (s *Span) Ended() bool { return s != nil && s.ended.Load() }

// Duration returns the span's wall-clock length (0 while running or nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	end := s.endNanos.Load()
	if end == 0 {
		return 0
	}
	return time.Duration(end - s.StartTime.UnixNano())
}

// Bytes returns the recorded payload byte count (0 for nil).
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes.Load()
}

// FirstByte returns the latency from span start to the first payload
// byte, and whether one was recorded.
func (s *Span) FirstByte() (time.Duration, bool) {
	if s == nil {
		return 0, false
	}
	fb := s.firstByte.Load()
	if fb == 0 {
		return 0, false
	}
	return time.Duration(fb - s.StartTime.UnixNano()), true
}

// ctxKey keys a Context inside a context.Context.
type ctxKey struct{}

// NewGoContext returns ctx carrying tc, so trace state can ride the
// standard context plumbing into dial helpers (relay.DialVia). An
// unsampled tc returns ctx unchanged.
func NewGoContext(ctx context.Context, tc Context) context.Context {
	if !tc.Sampled || tc.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromGoContext extracts the trace context stashed by NewGoContext, or
// the zero Context.
func FromGoContext(ctx context.Context) Context {
	if ctx == nil {
		return Context{}
	}
	tc, _ := ctx.Value(ctxKey{}).(Context)
	return tc
}
