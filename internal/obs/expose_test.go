package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// getJSONEvents runs the events handler and decodes the response array.
func getJSONEvents(t *testing.T, r *Registry, url string) ([]Event, *httptest.ResponseRecorder) {
	t.Helper()
	rec := httptest.NewRecorder()
	r.EventsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		return nil, rec
	}
	var events []Event
	if err := json.NewDecoder(rec.Body).Decode(&events); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return events, rec
}

func TestEventsHandlerTypeFilter(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("relay")
	s.Event(EventConnect, "a")
	s.Event(EventDial, "b")
	s.Event(EventConnect, "c")

	all, _ := getJSONEvents(t, r, "/debug/events")
	if len(all) != 3 {
		t.Fatalf("unfiltered = %d events, want 3", len(all))
	}
	connects, _ := getJSONEvents(t, r, "/debug/events?type=connect")
	if len(connects) != 2 {
		t.Fatalf("?type=connect = %d events, want 2", len(connects))
	}
	for _, e := range connects {
		if e.Type != EventConnect {
			t.Errorf("filtered event has type %s", e.Type)
		}
	}
	none, _ := getJSONEvents(t, r, "/debug/events?type=flow-trace")
	if len(none) != 0 {
		t.Fatalf("?type=flow-trace = %d events, want 0", len(none))
	}
	if _, rec := getJSONEvents(t, r, "/debug/events?type=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown type status = %d, want 400", rec.Code)
	}
}

func TestEventsHandlerSinceFilter(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("relay")
	s.Event(EventConnect, "old")
	cut := time.Now()
	time.Sleep(2 * time.Millisecond)
	s.Event(EventDial, "new")

	recent, _ := getJSONEvents(t, r, "/debug/events?since="+cut.Format(time.RFC3339Nano))
	if len(recent) != 1 || recent[0].Detail != "new" {
		t.Fatalf("?since=<timestamp> = %+v, want just the new event", recent)
	}
	// A duration means "the last D".
	last, _ := getJSONEvents(t, r, "/debug/events?since=1h")
	if len(last) != 2 {
		t.Fatalf("?since=1h = %d events, want 2", len(last))
	}
	zero, _ := getJSONEvents(t, r, "/debug/events?since=0s")
	if len(zero) != 0 {
		t.Fatalf("?since=0s = %d events, want 0", len(zero))
	}
	if _, rec := getJSONEvents(t, r, "/debug/events?since=yesterday"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad since status = %d, want 400", rec.Code)
	}
}

func TestParseEventTypeCoversAll(t *testing.T) {
	for et := EventConnect; et <= EventFlowTrace; et++ {
		got, ok := ParseEventType(et.String())
		if !ok || got != et {
			t.Errorf("ParseEventType(%q) = %v, %v; want %v", et.String(), got, ok, et)
		}
	}
	if _, ok := ParseEventType("unknown"); ok {
		t.Error("ParseEventType accepted the unknown sentinel")
	}
}

func TestGETOnlyRejectsAndMarksNoStore(t *testing.T) {
	r := NewRegistry()
	r.Counter("cronets_test_total", "t").Inc()
	handlers := map[string]http.Handler{
		"metrics": r.MetricsHandler(),
		"json":    r.JSONHandler(),
		"events":  r.EventsHandler(),
	}
	for name, h := range handlers {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s: GET status = %d", name, rec.Code)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", name, cc)
		}
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, "/", nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s: %s status = %d, want 405", name, method, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s: Allow = %q", name, allow)
			}
		}
	}
}

// expositionLines returns the text exposition's lines for one metric name
// prefix.
func expositionLines(t *testing.T, r *Registry, prefix string) []string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			out = append(out, line)
		}
	}
	return out
}

func TestHistogramExpositionZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.Histogram("cronets_empty_seconds", "empty", []float64{0.1, 1})
	lines := expositionLines(t, r, "cronets_empty_seconds")
	want := []string{
		`cronets_empty_seconds_bucket{le="0.1"} 0`,
		`cronets_empty_seconds_bucket{le="1"} 0`,
		`cronets_empty_seconds_bucket{le="+Inf"} 0`,
		`cronets_empty_seconds_sum 0`,
		`cronets_empty_seconds_count 0`,
	}
	if len(lines) != len(want) {
		t.Fatalf("exposition = %q, want %d lines", lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestHistogramExpositionSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cronets_one_seconds", "one bucket", []float64{0.5})
	h.Observe(0.1)
	h.Observe(0.2)
	lines := expositionLines(t, r, "cronets_one_seconds")
	want := []string{
		`cronets_one_seconds_bucket{le="0.5"} 2`,
		`cronets_one_seconds_bucket{le="+Inf"} 2`,
		`cronets_one_seconds_sum 0.30000000000000004`,
		`cronets_one_seconds_count 2`,
	}
	if len(lines) != len(want) {
		t.Fatalf("exposition = %q, want %d lines", lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestHistogramExpositionAboveTopBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cronets_top_seconds", "overflow", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(50) // beyond every finite bound: only +Inf counts it
	lines := expositionLines(t, r, "cronets_top_seconds")
	want := []string{
		`cronets_top_seconds_bucket{le="0.1"} 1`,
		`cronets_top_seconds_bucket{le="1"} 1`,
		`cronets_top_seconds_bucket{le="+Inf"} 2`,
		`cronets_top_seconds_sum 50.05`,
		`cronets_top_seconds_count 2`,
	}
	if len(lines) != len(want) {
		t.Fatalf("exposition = %q, want %d lines", lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestStartRuntime(t *testing.T) {
	if stop := StartRuntime(nil, time.Second); stop == nil {
		t.Fatal("nil registry returned nil stop")
	} else {
		stop()
	}

	r := NewRegistry()
	runtime.GC() // ensure at least one pause is in the MemStats ring
	stop := StartRuntime(r, time.Hour)
	defer stop()
	snap := r.Snapshot()
	if g, ok := snap["cronets_runtime_goroutines"].(int64); !ok || g < 1 {
		t.Errorf("goroutines = %v", snap["cronets_runtime_goroutines"])
	}
	if g, ok := snap["cronets_runtime_gomaxprocs"].(int64); !ok || g < 1 {
		t.Errorf("gomaxprocs = %v", snap["cronets_runtime_gomaxprocs"])
	}
	if h, ok := snap["cronets_runtime_heap_bytes"].(int64); !ok || h <= 0 {
		t.Errorf("heap_bytes = %v", snap["cronets_runtime_heap_bytes"])
	}
	if hs, ok := snap["cronets_runtime_gc_pause_seconds"].(HistogramSnapshot); !ok || hs.Count < 1 {
		t.Errorf("gc_pause_seconds = %+v", snap["cronets_runtime_gc_pause_seconds"])
	}
	stop()
	stop() // stop is safe to call twice
}
