package obs

import (
	"runtime"
	"time"
)

// RuntimeBuckets is the histogram scale for GC pauses: 10 µs to ~1 s.
var RuntimeBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// StartRuntime registers Go runtime telemetry under cronets_runtime_*
// and samples it every interval (default 10 s) until the returned stop
// function is called:
//
//   - cronets_runtime_goroutines and cronets_runtime_gomaxprocs are
//     gauges read live at scrape time;
//   - cronets_runtime_heap_bytes and cronets_runtime_gc_total are
//     sampled from runtime.MemStats on each tick;
//   - cronets_runtime_gc_pause_seconds is a histogram fed each tick with
//     the GC pauses that completed since the previous one (from the
//     MemStats pause ring, so pauses are never double-counted).
//
// A nil registry returns a no-op stop function.
func StartRuntime(r *Registry, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	r.GaugeFunc("cronets_runtime_goroutines",
		"Live goroutine count.", func() int64 { return int64(runtime.NumGoroutine()) })
	r.GaugeFunc("cronets_runtime_gomaxprocs",
		"GOMAXPROCS at scrape time.", func() int64 { return int64(runtime.GOMAXPROCS(0)) })
	heap := r.Gauge("cronets_runtime_heap_bytes",
		"Heap bytes in use (MemStats.HeapAlloc), sampled periodically.")
	gcs := r.Gauge("cronets_runtime_gc_total",
		"Completed GC cycles, sampled periodically.")
	pauses := r.Histogram("cronets_runtime_gc_pause_seconds",
		"Stop-the-world GC pause durations.", RuntimeBuckets)

	var lastGC uint32
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(int64(ms.HeapAlloc))
		gcs.Set(int64(ms.NumGC))
		// Observe each pause completed since the previous sample. The
		// pause ring holds the last 256; if more than 256 GCs ran
		// between samples the overwritten ones are lost, which a 10 s
		// cadence makes vanishingly unlikely.
		n := ms.NumGC - lastGC
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			pause := ms.PauseNs[(ms.NumGC-i+uint32(len(ms.PauseNs))-1)%uint32(len(ms.PauseNs))]
			pauses.Observe(float64(pause) / 1e9)
		}
		lastGC = ms.NumGC
	}
	sample()

	stopc := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-stopc:
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(stopc)
		}
	}
}
