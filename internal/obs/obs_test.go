package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Error("Counter should return the same instrument for the same name")
	}

	g := r.Gauge("test_depth", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "a histogram", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() < 5.5 || h.Sum() > 5.56 {
		t.Errorf("sum = %g, want ~5.555", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		"test_latency_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRecordPathAllocationFree is the acceptance-criteria gate: the hot
// record path must not allocate.
func TestRecordPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_hist", "", LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(42)
		h.Observe(0.017)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v times per op, want 0", allocs)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", LatencyBuckets)
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.CounterFunc("y", "", func() int64 { return 0 })
	r.GaugeFunc("y", "", func() int64 { return 0 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments should read zero")
	}
	s := r.Scope("relay")
	s.Event(EventDial, "ok")
	s.Logger().Info("should be discarded")
	if err := r.WriteMetrics(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if got := r.Events().Snapshot(); got != nil {
		t.Errorf("nil ring snapshot = %v, want nil", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a gauge should panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestFuncMetricsAndLabels(t *testing.T) {
	r := NewRegistry()
	var n int64 = 5
	r.CounterFunc("fn_total", "reads a func", func() int64 { return n })
	r.GaugeFunc(Label("sub_bytes_total", "subflow", "0"), "", func() int64 { return 7 })
	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "fn_total 5") {
		t.Errorf("missing fn_total:\n%s", text)
	}
	if !strings.Contains(text, `sub_bytes_total{subflow="0"} 7`) {
		t.Errorf("missing labeled series:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE sub_bytes_total gauge") {
		t.Errorf("labeled series should get a base-name TYPE header:\n%s", text)
	}
}

func TestEventRingWrapsAndSnapshots(t *testing.T) {
	ring := NewEventRing(3)
	for i := 0; i < 5; i++ {
		ring.Record("relay", EventDial, string(rune('a'+i)))
	}
	if ring.Total() != 5 {
		t.Errorf("total = %d, want 5", ring.Total())
	}
	events := ring.Snapshot()
	if len(events) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(events))
	}
	if events[0].Detail != "c" || events[2].Detail != "e" {
		t.Errorf("ring order wrong: %v", events)
	}
	if events[0].Type.String() != "dial" {
		t.Errorf("type = %q, want dial", events[0].Type)
	}
}

func TestScopeRecordsToRing(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("multipath")
	s.Event(EventSubflowDown, "subflow 2 died")
	events := r.Events().Snapshot()
	if len(events) != 1 || events[0].Component != "multipath" ||
		events[0].Type != EventSubflowDown {
		t.Errorf("events = %+v", events)
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "").Add(9)
	r.Scope("relay").Event(EventConnect, "127.0.0.1:1")

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 9") {
		t.Errorf("metrics body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap["h_total"].(float64) != 9 {
		t.Errorf("json snapshot = %v", snap)
	}

	rec = httptest.NewRecorder()
	r.EventsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0]["type"] != "connect" {
		t.Errorf("events json = %v", events)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total", "").Add(1)
	if !r.PublishExpvar("obs_test_registry") {
		t.Fatal("first publish should succeed")
	}
	if r.PublishExpvar("obs_test_registry") {
		t.Error("second publish should be a no-op")
	}
}

// TestConcurrentRecording exercises the record path from many goroutines;
// meaningful under -race.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	h := r.Histogram("race_hist", "", LatencyBuckets)
	ring := r.Events()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				if j%100 == 0 {
					ring.Record("race", EventDial, "x")
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("hist count = %d, want 8000", h.Count())
	}
}
