package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WriteMetrics writes every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name. Labeled series
// (created via Label) are grouped under their base name's HELP/TYPE
// header. Histograms emit cumulative _bucket{le=...} series plus _sum and
// _count.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	snapshot := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		snapshot[name] = e
	}
	r.mu.Unlock()
	sort.Strings(names)

	lastHeader := ""
	for _, name := range names {
		e := snapshot[name]
		base := baseName(name)
		if base != lastHeader {
			lastHeader = base
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind.promType()); err != nil {
				return err
			}
		}
		if err := writeEntry(w, name, e); err != nil {
			return err
		}
	}
	return nil
}

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// baseName strips a trailing {label} block.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func writeEntry(w io.Writer, name string, e *entry) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", name, e.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", name, e.g.Value())
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %d\n", name, e.fn())
		return err
	case kindHistogram:
		h := e.h
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum); err != nil {
				return err
			}
		}
		count := h.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n",
			name, strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
		return err
	}
	return nil
}

// HistogramSnapshot is a histogram's JSON form.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound -> cumulative count
}

// Snapshot returns all metric values as a JSON-encodable map: counters and
// gauges as int64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	entries := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		entries[name] = e
	}
	r.mu.Unlock()
	for name, e := range entries {
		switch e.kind {
		case kindCounter:
			out[name] = e.c.Value()
		case kindGauge:
			out[name] = e.g.Value()
		case kindCounterFunc, kindGaugeFunc:
			out[name] = e.fn()
		case kindHistogram:
			h := e.h
			hs := HistogramSnapshot{
				Count:   h.Count(),
				Sum:     h.Sum(),
				Buckets: make(map[string]int64, len(h.bounds)+1),
			}
			var cum int64
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				hs.Buckets[strconv.FormatFloat(bound, 'g', -1, 64)] = cum
			}
			hs.Buckets["+Inf"] = h.Count()
			out[name] = hs
		}
	}
	return out
}

// MetricsHandler serves the Prometheus text exposition.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteMetrics(w)
	})
}

// JSONHandler serves the metric snapshot as a JSON object.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// EventsHandler serves the flow-event ring as a JSON array, oldest first.
func (r *Registry) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := r.Events().Snapshot()
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
}

// expvarMu guards against double-publishing (expvar.Publish panics on a
// duplicate name, e.g. across tests).
var expvarMu sync.Mutex

// PublishExpvar exposes the registry's snapshot as a single expvar
// variable, making it visible on /debug/vars alongside the runtime's
// memstats. If the name is already published (by this or an earlier
// registry) the existing binding is kept and false is returned.
func (r *Registry) PublishExpvar(name string) bool {
	if r == nil {
		return false
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
