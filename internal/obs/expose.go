package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WriteMetrics writes every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name. Labeled series
// (created via Label) are grouped under their base name's HELP/TYPE
// header. Histograms emit cumulative _bucket{le=...} series plus _sum and
// _count.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	snapshot := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		snapshot[name] = e
	}
	r.mu.Unlock()
	sort.Strings(names)

	lastHeader := ""
	for _, name := range names {
		e := snapshot[name]
		base := baseName(name)
		if base != lastHeader {
			lastHeader = base
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind.promType()); err != nil {
				return err
			}
		}
		if err := writeEntry(w, name, e); err != nil {
			return err
		}
	}
	return nil
}

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// baseName strips a trailing {label} block.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func writeEntry(w io.Writer, name string, e *entry) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", name, e.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", name, e.g.Value())
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %d\n", name, e.fn())
		return err
	case kindHistogram:
		h := e.h
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum); err != nil {
				return err
			}
		}
		count := h.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n",
			name, strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
		return err
	}
	return nil
}

// HistogramSnapshot is a histogram's JSON form.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound -> cumulative count
}

// Snapshot returns all metric values as a JSON-encodable map: counters and
// gauges as int64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	entries := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		entries[name] = e
	}
	r.mu.Unlock()
	for name, e := range entries {
		switch e.kind {
		case kindCounter:
			out[name] = e.c.Value()
		case kindGauge:
			out[name] = e.g.Value()
		case kindCounterFunc, kindGaugeFunc:
			out[name] = e.fn()
		case kindHistogram:
			h := e.h
			hs := HistogramSnapshot{
				Count:   h.Count(),
				Sum:     h.Sum(),
				Buckets: make(map[string]int64, len(h.bounds)+1),
			}
			var cum int64
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				hs.Buckets[strconv.FormatFloat(bound, 'g', -1, 64)] = cum
			}
			hs.Buckets["+Inf"] = h.Count()
			out[name] = hs
		}
	}
	return out
}

// GETOnly wraps an observability handler so that non-GET/HEAD methods
// get 405 and every response carries Cache-Control: no-store — debug and
// metrics surfaces are live views that must never be cached or written
// to.
func GETOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Cache-Control", "no-store")
		h.ServeHTTP(w, req)
	})
}

// MetricsHandler serves the Prometheus text exposition.
func (r *Registry) MetricsHandler() http.Handler {
	return GETOnly(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteMetrics(w)
	}))
}

// JSONHandler serves the metric snapshot as a JSON object.
func (r *Registry) JSONHandler() http.Handler {
	return GETOnly(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	}))
}

// EventsHandler serves the flow-event ring as a JSON array, oldest
// first. Query parameters: ?type=<event name> keeps one event type
// (unknown names are 400), and ?since= keeps events after a bound given
// either as an RFC 3339 timestamp or as a Go duration meaning "the last
// D" — so a single path switch can be tailed without client-side
// filtering.
func (r *Registry) EventsHandler() http.Handler {
	return GETOnly(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var wantType EventType
		if name := q.Get("type"); name != "" {
			t, ok := ParseEventType(name)
			if !ok {
				http.Error(w, "unknown event type "+strconv.Quote(name), http.StatusBadRequest)
				return
			}
			wantType = t
		}
		var since time.Time
		if v := q.Get("since"); v != "" {
			if ts, err := time.Parse(time.RFC3339Nano, v); err == nil {
				since = ts
			} else if d, derr := time.ParseDuration(v); derr == nil && d >= 0 {
				since = time.Now().Add(-d)
			} else {
				http.Error(w, "bad since: want RFC 3339 timestamp or duration", http.StatusBadRequest)
				return
			}
		}
		events := r.Events().Snapshot()
		filtered := make([]Event, 0, len(events))
		for _, e := range events {
			if wantType != 0 && e.Type != wantType {
				continue
			}
			if !since.IsZero() && !e.Time.After(since) {
				continue
			}
			filtered = append(filtered, e)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(filtered)
	}))
}

// expvarMu guards against double-publishing (expvar.Publish panics on a
// duplicate name, e.g. across tests).
var expvarMu sync.Mutex

// PublishExpvar exposes the registry's snapshot as a single expvar
// variable, making it visible on /debug/vars alongside the runtime's
// memstats. If the name is already published (by this or an earlier
// registry) the existing binding is kept and false is returned.
func (r *Registry) PublishExpvar(name string) bool {
	if r == nil {
		return false
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
