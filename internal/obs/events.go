package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// EventType classifies flow events across the overlay stack.
type EventType uint8

// Flow-event types.
const (
	// EventConnect is a CONNECT handshake accepted by a split proxy.
	EventConnect EventType = iota + 1
	// EventDial is an upstream dial attempt (detail carries the outcome).
	EventDial
	// EventSubflowUp is a multipath subflow entering service.
	EventSubflowUp
	// EventSubflowDown is a multipath subflow death / failover.
	EventSubflowDown
	// EventRetransmit is a batch of segments requeued onto surviving
	// subflows.
	EventRetransmit
	// EventACLReject is a CONNECT target refused by the relay ACL.
	EventACLReject
	// EventIdleClose is a connection reaped by the idle timeout.
	EventIdleClose
	// EventFaultInjected is a netem fault firing (kill, blackhole, or
	// refused connect).
	EventFaultInjected
	// EventSubflowRejoin is a reconnected subflow rejoining its multipath
	// channel via the JOIN handshake.
	EventSubflowRejoin
	// EventDialRetry is a transient upstream dial failure being retried
	// with backoff.
	EventDialRetry
	// EventProbe is a pathmon probe outcome (detail carries path + result).
	EventProbe
	// EventRankChange is the pathmon ranked table's leader changing
	// (before hysteresis commits a switch).
	EventRankChange
	// EventPathSwitch is pathmon committing traffic to a new best path.
	EventPathSwitch
	// EventFallback is a gateway dial falling back to the next-ranked path
	// after the preferred one failed.
	EventFallback
	// EventImpairmentChange is a netem proxy's shaping being swapped at
	// runtime (SetImpairment).
	EventImpairmentChange
	// EventFlowTrace is a sampled flow's trace completing (root span
	// ended); detail carries the trace ID, duration, and byte count.
	EventFlowTrace
	// EventPoolWarm is a connection pool warming a relay leg (detail
	// carries the relay and outcome).
	EventPoolWarm
	// EventPoolDrain is a connection pool retiring idle legs (TTL
	// expiry, failed liveness check, or a demoted relay draining).
	EventPoolDrain
	// EventChainCandidates is pathmon's two-hop chain candidate set
	// changing (detail carries counts: enumerated, from, pruned).
	EventChainCandidates
	// EventChainDial is a gateway dial riding a multi-hop chain (detail
	// carries the hop list).
	EventChainDial
	// EventBurst is a pathmon throughput-burst outcome (detail carries
	// the route and the Mbps result or failure cause).
	EventBurst
)

// String returns the event type's wire name.
func (t EventType) String() string {
	switch t {
	case EventConnect:
		return "connect"
	case EventDial:
		return "dial"
	case EventSubflowUp:
		return "subflow-up"
	case EventSubflowDown:
		return "subflow-down"
	case EventRetransmit:
		return "retransmit"
	case EventACLReject:
		return "acl-reject"
	case EventIdleClose:
		return "idle-close"
	case EventFaultInjected:
		return "fault-injected"
	case EventSubflowRejoin:
		return "subflow-rejoin"
	case EventDialRetry:
		return "dial-retry"
	case EventProbe:
		return "probe"
	case EventRankChange:
		return "rank-change"
	case EventPathSwitch:
		return "path-switch"
	case EventFallback:
		return "fallback"
	case EventImpairmentChange:
		return "impairment-change"
	case EventFlowTrace:
		return "flow-trace"
	case EventPoolWarm:
		return "pool-warm"
	case EventPoolDrain:
		return "pool-drain"
	case EventChainCandidates:
		return "chain-candidates"
	case EventChainDial:
		return "chain-dial"
	case EventBurst:
		return "burst"
	default:
		return "unknown"
	}
}

// ParseEventType resolves a wire name back to its EventType (for the
// /debug/events ?type= filter). ok is false for unknown names.
func ParseEventType(name string) (EventType, bool) {
	for t := EventConnect; t <= EventBurst; t++ {
		if t.String() == name {
			return t, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the type as its string name.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back to its EventType, so clients of
// /debug/events can round-trip the JSON.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	parsed, ok := ParseEventType(name)
	if !ok {
		return fmt.Errorf("obs: unknown event type %q", name)
	}
	*t = parsed
	return nil
}

// Event is one entry in the flow-event ring.
type Event struct {
	Time      time.Time `json:"time"`
	Component string    `json:"component"`
	Type      EventType `json:"type"`
	Detail    string    `json:"detail,omitempty"`
}

// DefaultEventCapacity is the ring size used by NewRegistry.
const DefaultEventCapacity = 1024

// EventRing is a fixed-capacity ring buffer of flow events. Recording is
// cheap (one mutexed slot write); the ring overwrites oldest-first. A nil
// *EventRing is a valid no-op sink.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewEventRing creates a ring holding up to capacity events (minimum 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, 0, capacity)}
}

// Record appends an event, overwriting the oldest once full. No-op on nil.
func (r *EventRing) Record(component string, t EventType, detail string) {
	if r == nil {
		return
	}
	e := Event{Time: time.Now(), Component: component, Type: t, Detail: detail}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the buffered events, oldest first.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many events were ever recorded (including overwritten
// ones).
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Scope is a per-component handle combining the event ring with a slog
// logger carrying the component attribute. A nil *Scope is a valid no-op.
type Scope struct {
	component string
	ring      *EventRing
	log       *slog.Logger
}

// Scope returns a scoped event recorder + logger for a component. Returns
// nil (a no-op scope) on a nil registry.
func (r *Registry) Scope(component string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{
		component: component,
		ring:      r.events,
		log:       slog.Default().With("component", component),
	}
}

// Event records a flow event in the ring and emits it at debug level.
func (s *Scope) Event(t EventType, detail string) {
	if s == nil {
		return
	}
	s.ring.Record(s.component, t, detail)
	s.log.Debug("flow event", "type", t.String(), "detail", detail)
}

// Logger returns the scope's component-tagged logger. On a nil scope it
// returns a logger that discards everything, so callers can log
// unconditionally.
func (s *Scope) Logger() *slog.Logger {
	if s == nil {
		return discardLogger
	}
	return s.log
}

var discardLogger = slog.New(discardHandler{})

// discardHandler drops every record (slog.DiscardHandler needs go1.24;
// go.mod pins 1.23).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
