// Package obs is the stdlib-only observability layer of the real-socket
// overlay stack: a concurrent metrics registry (counters, gauges,
// fixed-bucket histograms) cheap enough for per-segment hot paths, a
// Prometheus-text and JSON exposition surface (see expose.go), and a
// flow-event ring with per-component scoped loggers (see events.go).
//
// Design rules:
//
//   - The record path (Counter.Add, Gauge.Set, Histogram.Observe) is
//     allocation-free and lock-free — atomic operations only.
//   - Every instrument and the Registry itself are nil-safe: a nil
//     *Registry hands out nil instruments whose methods are no-ops, so
//     components take an optional *Registry and never branch on it.
//   - Instrument handles are resolved once at setup (that path may lock
//     and allocate) and then used forever.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Buckets are defined by their
// inclusive upper bounds; one implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample. Allocation-free; no-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples recorded (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBuckets is the default histogram scale for latencies in seconds:
// 1 ms to ~30 s, roughly doubling.
var LatencyBuckets = []float64{
	0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets is the default histogram scale for byte sizes: 256 B to
// 16 MiB, quadrupling.
var SizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// metricKind discriminates registered instruments.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// entry is one registered metric.
type entry struct {
	kind metricKind
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() int64
}

// Registry holds named metrics plus the flow-event ring. The zero value is
// not usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: every method returns a nil (no-op) instrument or does nothing.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	events  *EventRing
}

// NewRegistry creates an empty registry with a default-capacity event ring.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		events:  NewEventRing(DefaultEventCapacity),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry; panics if the name is already
// registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	e := r.get(name, help, kindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.get(name, help, kindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (which must be sorted ascending; a copy is
// kept). Bounds are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	e := r.get(name, help, kindHistogram)
	if e.h == nil {
		b := append([]float64(nil), bounds...)
		e.h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	}
	return e.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for mirroring counters a component already keeps (e.g.
// relay.Stats atomics) without touching its hot path. Re-registering
// replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	e := r.get(name, help, kindCounterFunc)
	e.fn = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	e := r.get(name, help, kindGaugeFunc)
	e.fn = fn
}

// get returns the entry for name, creating it with the given kind and
// help. Caller must not hold r.mu.
func (r *Registry) get(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return e
	}
	e := &entry{kind: kind, help: help}
	r.entries[name] = e
	return e
}

// Events returns the registry's flow-event ring (nil on a nil registry).
func (r *Registry) Events() *EventRing {
	if r == nil {
		return nil
	}
	return r.events
}

// Label formats a single-label series name: Label("x_total", "dir", "up")
// is `x_total{dir="up"}`. Exposition groups series by base name, so
// labeled siblings share one HELP/TYPE header.
func Label(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}
