// Package placement answers the question the paper defers to future work
// in Section VII-A: given a budget of k overlay nodes, which data centers
// should a CRONets customer rent? The objective — the aggregate best-path
// throughput over the customer's site pairs, where each pair uses the best
// of the direct path and the chosen overlays — is monotone submodular
// (adding a node never hurts, and helps less the more nodes are already
// chosen), so the classic greedy algorithm carries the (1 - 1/e)
// approximation guarantee; Exact is provided for small instances and for
// validating Greedy in tests.
package placement

import (
	"errors"
	"math"
	"sort"
)

// PairSamples is one site pair's measurements: the direct-path throughput
// and the overlay throughput through each candidate data center.
type PairSamples struct {
	// Name identifies the pair (diagnostics only).
	Name string
	// DirectMbps is the default-path throughput.
	DirectMbps float64
	// OverlayMbps maps candidate DC city -> achieved overlay throughput.
	OverlayMbps map[string]float64
}

// best returns the pair's throughput when the chosen set of DCs (plus the
// direct path) is available.
func (p PairSamples) best(chosen map[string]bool) float64 {
	best := p.DirectMbps
	for dc, thr := range p.OverlayMbps {
		if chosen[dc] && thr > best {
			best = thr
		}
	}
	return best
}

// Objective is the aggregate throughput across pairs for a chosen DC set.
func Objective(pairs []PairSamples, chosen []string) float64 {
	set := make(map[string]bool, len(chosen))
	for _, dc := range chosen {
		set[dc] = true
	}
	var sum float64
	for _, p := range pairs {
		sum += p.best(set)
	}
	return sum
}

// Candidates returns the sorted union of candidate DCs across the pairs.
func Candidates(pairs []PairSamples) []string {
	seen := make(map[string]bool)
	for _, p := range pairs {
		for dc := range p.OverlayMbps {
			seen[dc] = true
		}
	}
	out := make([]string, 0, len(seen))
	for dc := range seen {
		out = append(out, dc)
	}
	sort.Strings(out)
	return out
}

// ErrNoPairs is returned when there is nothing to optimize over.
var ErrNoPairs = errors.New("placement: no pairs")

// Greedy selects up to k data centers by repeatedly adding the candidate
// with the largest marginal gain in Objective. Ties break on the
// lexicographically smallest city, making the result deterministic. It
// stops early when no candidate adds value.
func Greedy(pairs []PairSamples, k int) ([]string, error) {
	if len(pairs) == 0 {
		return nil, ErrNoPairs
	}
	cands := Candidates(pairs)
	chosen := make([]string, 0, k)
	chosenSet := make(map[string]bool, k)
	current := Objective(pairs, nil)
	for len(chosen) < k && len(chosen) < len(cands) {
		bestDC := ""
		bestVal := current
		for _, dc := range cands {
			if chosenSet[dc] {
				continue
			}
			chosenSet[dc] = true
			v := objectiveSet(pairs, chosenSet)
			chosenSet[dc] = false
			if v > bestVal+1e-12 || (bestDC != "" && v > bestVal-1e-12 && dc < bestDC) {
				bestDC, bestVal = dc, v
			}
		}
		if bestDC == "" {
			break
		}
		chosen = append(chosen, bestDC)
		chosenSet[bestDC] = true
		current = bestVal
	}
	return chosen, nil
}

// Exact enumerates every k-subset and returns the best (for validation and
// small candidate sets; cost is C(n, k)).
func Exact(pairs []PairSamples, k int) ([]string, error) {
	if len(pairs) == 0 {
		return nil, ErrNoPairs
	}
	cands := Candidates(pairs)
	if k > len(cands) {
		k = len(cands)
	}
	var best []string
	bestVal := math.Inf(-1)
	subset := make([]string, 0, k)
	var walk func(start int)
	walk = func(start int) {
		if len(subset) == k {
			if v := Objective(pairs, subset); v > bestVal {
				bestVal = v
				best = append([]string(nil), subset...)
			}
			return
		}
		for i := start; i < len(cands); i++ {
			subset = append(subset, cands[i])
			walk(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	walk(0)
	sort.Strings(best)
	return best, nil
}

func objectiveSet(pairs []PairSamples, set map[string]bool) float64 {
	var sum float64
	for _, p := range pairs {
		sum += p.best(set)
	}
	return sum
}

// Coverage reports, for a chosen set, the fraction of pairs whose best
// available path is within (1 - tolerance) of what the full candidate set
// would give them — the Figure 7 question generalized to a shared
// deployment.
func Coverage(pairs []PairSamples, chosen []string, tolerance float64) float64 {
	if len(pairs) == 0 {
		return 0
	}
	all := Candidates(pairs)
	allSet := make(map[string]bool, len(all))
	for _, dc := range all {
		allSet[dc] = true
	}
	set := make(map[string]bool, len(chosen))
	for _, dc := range chosen {
		set[dc] = true
	}
	covered := 0
	for _, p := range pairs {
		if p.best(set) >= p.best(allSet)*(1-tolerance) {
			covered++
		}
	}
	return float64(covered) / float64(len(pairs))
}
