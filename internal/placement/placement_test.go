package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func pair(name string, direct float64, overlays map[string]float64) PairSamples {
	return PairSamples{Name: name, DirectMbps: direct, OverlayMbps: overlays}
}

func TestGreedyBasics(t *testing.T) {
	pairs := []PairSamples{
		pair("a", 10, map[string]float64{"X": 50, "Y": 20}),
		pair("b", 10, map[string]float64{"X": 15, "Y": 60}),
		pair("c", 10, map[string]float64{"X": 12, "Y": 11}),
	}
	got, err := Greedy(pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Y gives 20+60+11 = 91; X gives 50+15+12 = 77. Y wins.
	if len(got) != 1 || got[0] != "Y" {
		t.Errorf("Greedy(1) = %v, want [Y]", got)
	}
	got2, err := Greedy(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 {
		t.Errorf("Greedy(2) = %v", got2)
	}
}

func TestGreedyStopsWhenNoGain(t *testing.T) {
	pairs := []PairSamples{
		pair("a", 100, map[string]float64{"X": 10, "Y": 20}),
	}
	got, err := Greedy(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Greedy should pick nothing when the direct path dominates, got %v", got)
	}
}

func TestGreedyErrNoPairs(t *testing.T) {
	if _, err := Greedy(nil, 2); !errors.Is(err, ErrNoPairs) {
		t.Errorf("err = %v", err)
	}
	if _, err := Exact(nil, 2); !errors.Is(err, ErrNoPairs) {
		t.Errorf("err = %v", err)
	}
}

func TestExactMatchesBruteForceObjective(t *testing.T) {
	pairs := []PairSamples{
		pair("a", 5, map[string]float64{"X": 50, "Y": 20, "Z": 30}),
		pair("b", 5, map[string]float64{"X": 10, "Y": 60, "Z": 30}),
	}
	got, err := Exact(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// {X, Y} gives 50+60 = 110; any Z-set is worse.
	if len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Errorf("Exact = %v, want [X Y]", got)
	}
}

// TestGreedyNearOptimal: greedy must achieve at least (1 - 1/e) of the
// exact optimum on random instances (submodularity guarantee); in practice
// it is usually optimal or near-optimal.
func TestGreedyNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nPairs := 2 + rng.Intn(8)
		nDCs := 2 + rng.Intn(5)
		var pairs []PairSamples
		for i := 0; i < nPairs; i++ {
			ov := make(map[string]float64, nDCs)
			for d := 0; d < nDCs; d++ {
				ov[fmt.Sprintf("DC%d", d)] = rng.Float64() * 100
			}
			pairs = append(pairs, pair(fmt.Sprintf("p%d", i), rng.Float64()*50, ov))
		}
		k := 1 + rng.Intn(nDCs)
		g, err := Greedy(pairs, k)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Exact(pairs, k)
		if err != nil {
			t.Fatal(err)
		}
		gv, ev := Objective(pairs, g), Objective(pairs, e)
		if gv < ev*(1-1/2.718281828)-1e-9 {
			t.Fatalf("greedy %v=%.1f below guarantee vs exact %v=%.1f", g, gv, e, ev)
		}
	}
}

// TestObjectiveMonotone: adding a DC never decreases the objective.
func TestObjectiveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		var pairs []PairSamples
		for i := 0; i < 5; i++ {
			pairs = append(pairs, pair(fmt.Sprintf("p%d", i), rng.Float64()*50, map[string]float64{
				"A": rng.Float64() * 100, "B": rng.Float64() * 100, "C": rng.Float64() * 100,
			}))
		}
		base := Objective(pairs, []string{"A"})
		more := Objective(pairs, []string{"A", "B"})
		if more < base-1e-12 {
			t.Fatal("objective decreased when adding a DC")
		}
	}
}

func TestCoverage(t *testing.T) {
	pairs := []PairSamples{
		pair("a", 10, map[string]float64{"X": 50, "Y": 20}),
		pair("b", 10, map[string]float64{"X": 15, "Y": 60}),
	}
	if got := Coverage(pairs, []string{"X", "Y"}, 0); got != 1 {
		t.Errorf("full set coverage = %v", got)
	}
	// X alone covers pair a exactly but pair b only at 15 vs 60.
	if got := Coverage(pairs, []string{"X"}, 0.05); got != 0.5 {
		t.Errorf("partial coverage = %v, want 0.5", got)
	}
	if got := Coverage(nil, nil, 0); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
}

func TestCandidatesSortedUnion(t *testing.T) {
	pairs := []PairSamples{
		pair("a", 1, map[string]float64{"Z": 1, "A": 1}),
		pair("b", 1, map[string]float64{"M": 1, "A": 1}),
	}
	got := Candidates(pairs)
	want := []string{"A", "M", "Z"}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}
