package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cronets/internal/netsim"
)

func ids(xs ...int) []netsim.NodeID {
	out := make([]netsim.NodeID, len(xs))
	for i, x := range xs {
		out[i] = netsim.NodeID(x)
	}
	return out
}

func TestDiversityScore(t *testing.T) {
	tests := []struct {
		name            string
		direct, overlay []netsim.NodeID
		want            float64
	}{
		{"identical", ids(1, 2, 3), ids(1, 2, 3), 0},
		{"disjoint", ids(1, 2, 3), ids(4, 5, 6), 1},
		{"half", ids(1, 2, 3, 4), ids(1, 2, 9, 9), 0.5},
		{"empty direct", nil, ids(1), 0},
		{"empty overlay", ids(1, 2), nil, 1},
		{"superset overlay", ids(1, 2), ids(1, 2, 3, 4), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DiversityScore(tt.direct, tt.overlay); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DiversityScore = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestDiversityScoreRange: the score is always within [0, 1].
func TestDiversityScoreRange(t *testing.T) {
	f := func(direct, overlay []uint8) bool {
		d := make([]netsim.NodeID, len(direct))
		for i, x := range direct {
			d[i] = netsim.NodeID(x)
		}
		o := make([]netsim.NodeID, len(overlay))
		for i, x := range overlay {
			o[i] = netsim.NodeID(x)
		}
		s := DiversityScore(d, o)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCommonBySegment(t *testing.T) {
	// Direct path of 9 routers: segments are [0..2], [3..5], [6..8].
	direct := ids(0, 1, 2, 3, 4, 5, 6, 7, 8)
	overlay := ids(0, 1, 4, 8, 100)
	seg := CommonBySegment(direct, overlay)
	if seg.EndCommon != 3 { // 0, 1 (first third) and 8 (last third)
		t.Errorf("EndCommon = %d, want 3", seg.EndCommon)
	}
	if seg.MiddleCommon != 1 { // 4
		t.Errorf("MiddleCommon = %d, want 1", seg.MiddleCommon)
	}
	if got := seg.EndFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("EndFraction = %v, want 0.75", got)
	}
}

func TestCommonBySegmentNoCommon(t *testing.T) {
	seg := CommonBySegment(ids(1, 2, 3), ids(7, 8))
	if seg.Total() != 0 || seg.EndFraction() != 0 {
		t.Errorf("no-common case: %+v", seg)
	}
}

func TestCommonBySegmentShortPath(t *testing.T) {
	// A 2-router path has no middle third; both routers are end-segment.
	seg := CommonBySegment(ids(1, 2), ids(1, 2))
	if seg.MiddleCommon != 0 || seg.EndCommon != 2 {
		t.Errorf("short path: %+v", seg)
	}
}

// TestSegmentPartition: every common router is counted exactly once.
func TestSegmentPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		direct := make([]netsim.NodeID, n)
		for i := range direct {
			direct[i] = netsim.NodeID(i)
		}
		overlay := make([]netsim.NodeID, 0, n)
		common := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				overlay = append(overlay, netsim.NodeID(i))
				common++
			}
		}
		seg := CommonBySegment(direct, overlay)
		if seg.Total() != common {
			t.Fatalf("counted %d common, want %d", seg.Total(), common)
		}
	}
}

func TestHopRatio(t *testing.T) {
	if got := HopRatio(ids(1, 2, 3, 4), ids(1, 2, 3, 4, 5, 6)); got != 1.5 {
		t.Errorf("HopRatio = %v, want 1.5", got)
	}
	if got := HopRatio(nil, ids(1)); got != 0 {
		t.Errorf("HopRatio with empty direct = %v", got)
	}
}
