// Package trace implements the traceroute-derived path analyses of the
// paper's Section V: the diversity score of an overlay path relative to the
// corresponding default path, the location of shared routers along the
// default path (three equal segments), and router-level hop-count
// comparisons.
//
// The functions are generic over the hop identity type: node-level
// analyses pass netsim.NodeID, while the paper-faithful interface-level
// analyses pass topology.Hop (raw traceroute output identifies routers by
// inbound interface address, without alias resolution).
package trace

// DiversityScore returns 1 - |common hops| / |direct path hops|, the
// paper's Section V-A metric. A score of 1 means the overlay path shares
// no hop with the direct path; 0 means it contains every hop of the direct
// path. An empty direct trace yields 0.
func DiversityScore[T comparable](direct, overlay []T) float64 {
	if len(direct) == 0 {
		return 0
	}
	inOverlay := make(map[T]bool, len(overlay))
	for _, r := range overlay {
		inOverlay[r] = true
	}
	common := 0
	for _, r := range direct {
		if inOverlay[r] {
			common++
		}
	}
	return 1 - float64(common)/float64(len(direct))
}

// SegmentShare reports where the hops common to the direct and overlay
// paths sit along the direct path, after dividing the direct path into
// three equal-length segments: the two segments containing the endpoints
// versus the middle segment. The paper finds 87% of common routers in the
// end segments, confirming that overlays mostly diverge in the middle
// (the congested core).
type SegmentShare struct {
	// EndCommon is the number of common hops in the first and last
	// thirds of the direct path.
	EndCommon int
	// MiddleCommon is the number of common hops in the middle third.
	MiddleCommon int
}

// Total returns the total number of common hops.
func (s SegmentShare) Total() int { return s.EndCommon + s.MiddleCommon }

// EndFraction returns the fraction of common hops in the end segments,
// or 0 when there are none.
func (s SegmentShare) EndFraction() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.EndCommon) / float64(s.Total())
}

// CommonBySegment classifies each hop shared by the direct and overlay
// traces according to its position on the direct path.
func CommonBySegment[T comparable](direct, overlay []T) SegmentShare {
	if len(direct) == 0 {
		return SegmentShare{}
	}
	inOverlay := make(map[T]bool, len(overlay))
	for _, r := range overlay {
		inOverlay[r] = true
	}
	var out SegmentShare
	n := len(direct)
	for i, r := range direct {
		if !inOverlay[r] {
			continue
		}
		// Fractional position along the path: the middle third is
		// (1/3, 2/3); a single-hop path counts as an end segment.
		pos := 0.0
		if n > 1 {
			pos = float64(i) / float64(n-1)
		}
		if pos > 1.0/3 && pos < 2.0/3 {
			out.MiddleCommon++
		} else {
			out.EndCommon++
		}
	}
	return out
}

// HopRatio returns the overlay hop count divided by the direct hop count
// (Section V-B's hop-count analysis), or 0 when the direct trace is empty.
func HopRatio[T comparable](direct, overlay []T) float64 {
	if len(direct) == 0 {
		return 0
	}
	return float64(len(overlay)) / float64(len(direct))
}
