package gateway

// Table-driven coverage for the Dial fallback ladder using a scripted
// in-memory dialer — no sockets, no netem, no timing. Each case scripts
// which endpoints fail, and asserts the exact walk order over the ranked
// candidates, the route the dial lands on, and the termination rules:
// direct stays inside the MaxAttempts truncation as the last resort, and
// context cancellation stops the walk instead of burning the remaining
// candidates.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"cronets/internal/pathmon"
)

// scriptedRanker is a static Ranker: a fixed best route and ranked table.
type scriptedRanker struct {
	best   pathmon.Route
	chosen bool
	table  []pathmon.RouteStatus
}

func (r *scriptedRanker) Best() (pathmon.Route, bool)   { return r.best, r.chosen }
func (r *scriptedRanker) Ranked() []pathmon.RouteStatus { return r.table }
func (r *scriptedRanker) Subscribe() (<-chan struct{}, func()) {
	return make(chan struct{}), func() {}
}

// scriptedDialer hands out in-memory pipes whose far end speaks the
// relay CONNECT protocol (one "OK" per preamble line, so chains of any
// depth succeed), fails the endpoints it is scripted to fail, and
// records the dial order.
type scriptedDialer struct {
	mu     sync.Mutex
	dialed []string
	fail   map[string]bool
	onDial func(addr string) // runs after recording, before the verdict
}

func (d *scriptedDialer) DialContext(_ context.Context, _, addr string) (net.Conn, error) {
	d.mu.Lock()
	d.dialed = append(d.dialed, addr)
	fail := d.fail[addr]
	d.mu.Unlock()
	if d.onDial != nil {
		d.onDial(addr)
	}
	if fail {
		return nil, errors.New("scripted dial failure: " + addr)
	}
	client, server := net.Pipe()
	go answerConnects(server)
	return client, nil
}

func (d *scriptedDialer) order() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.dialed...)
}

// answerConnects acks every CONNECT preamble line on the pipe's far end,
// standing in for an arbitrarily deep relay chain.
func answerConnects(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		if !strings.HasPrefix(line, "CONNECT ") {
			return
		}
		if _, err := io.WriteString(c, "OK\n"); err != nil {
			return
		}
	}
}

func TestDialFallbackLadder(t *testing.T) {
	const (
		directAddr = "direct.test:1"
		relayA     = "relay-a.test:9000"
		relayB     = "relay-b.test:9000"
		relayC     = "relay-c.test:9000"
	)
	up := func(r pathmon.Route) pathmon.RouteStatus { return pathmon.RouteStatus{Route: r} }

	cases := []struct {
		name        string
		maxAttempts int
		best        pathmon.Route
		chosen      bool
		table       []pathmon.RouteStatus
		fail        []string // endpoints whose dials fail
		cancelOn    string   // cancel the dial context after this endpoint's attempt
		wantDialed  []string // exact endpoint walk (first hops + direct addr)
		wantRoute   pathmon.Route
		wantErr     bool
	}{
		{
			name:       "best route wins without fallback",
			best:       pathmon.MakeRoute(relayA),
			chosen:     true,
			table:      []pathmon.RouteStatus{up(pathmon.MakeRoute(relayA)), up(pathmon.Direct)},
			wantDialed: []string{relayA},
			wantRoute:  pathmon.MakeRoute(relayA),
		},
		{
			name:   "ranked candidates fail in order until one answers",
			best:   pathmon.MakeRoute(relayA, relayB),
			chosen: true,
			table: []pathmon.RouteStatus{
				up(pathmon.MakeRoute(relayA, relayB)),
				up(pathmon.MakeRoute(relayC)),
				up(pathmon.Direct),
			},
			fail:       []string{relayA, relayC},
			wantDialed: []string{relayA, relayC, directAddr},
			wantRoute:  pathmon.Direct,
		},
		{
			name:        "direct survives MaxAttempts truncation",
			maxAttempts: 2,
			best:        pathmon.MakeRoute(relayA),
			chosen:      true,
			table: []pathmon.RouteStatus{
				up(pathmon.MakeRoute(relayA)),
				up(pathmon.MakeRoute(relayB)),
				up(pathmon.MakeRoute(relayC)),
			},
			fail:       []string{relayA},
			wantDialed: []string{relayA, directAddr},
			wantRoute:  pathmon.Direct,
		},
		{
			name:   "three-hop chain dials only its first hop",
			best:   pathmon.MakeRoute(relayA, relayB, relayC),
			chosen: true,
			table: []pathmon.RouteStatus{
				up(pathmon.MakeRoute(relayA, relayB, relayC)),
				up(pathmon.Direct),
			},
			wantDialed: []string{relayA},
			wantRoute:  pathmon.MakeRoute(relayA, relayB, relayC),
		},
		{
			name:   "context cancellation stops the walk",
			best:   pathmon.MakeRoute(relayA),
			chosen: true,
			table: []pathmon.RouteStatus{
				up(pathmon.MakeRoute(relayA)),
				up(pathmon.MakeRoute(relayB)),
				up(pathmon.Direct),
			},
			fail:       []string{relayA, relayB, directAddr},
			cancelOn:   relayA,
			wantDialed: []string{relayA},
			wantErr:    true,
		},
		{
			name:       "every candidate dead",
			best:       pathmon.MakeRoute(relayA),
			chosen:     true,
			table:      []pathmon.RouteStatus{up(pathmon.MakeRoute(relayA))},
			fail:       []string{relayA, directAddr},
			wantDialed: []string{relayA, directAddr},
			wantErr:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			dialer := &scriptedDialer{fail: make(map[string]bool)}
			for _, addr := range tc.fail {
				dialer.fail[addr] = true
			}
			if tc.cancelOn != "" {
				dialer.onDial = func(addr string) {
					if addr == tc.cancelOn {
						cancel()
					}
				}
			}
			gw, err := New(Config{
				Dest:        "dest.test:7",
				DirectAddr:  directAddr,
				Monitor:     &scriptedRanker{best: tc.best, chosen: tc.chosen, table: tc.table},
				MaxAttempts: tc.maxAttempts,
				Dialer:      dialer,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer gw.Close()

			conn, route, err := gw.Dial(ctx)
			if tc.wantErr {
				if err == nil {
					conn.Close()
					t.Fatalf("Dial succeeded on %v, want error", route)
				}
			} else {
				if err != nil {
					t.Fatalf("Dial: %v", err)
				}
				conn.Close()
				if route != tc.wantRoute {
					t.Errorf("landed on %v, want %v", route, tc.wantRoute)
				}
			}
			got := dialer.order()
			if len(got) != len(tc.wantDialed) {
				t.Fatalf("dialed %v, want %v", got, tc.wantDialed)
			}
			for i := range got {
				if got[i] != tc.wantDialed[i] {
					t.Fatalf("dialed %v, want %v", got, tc.wantDialed)
				}
			}
		})
	}
}
