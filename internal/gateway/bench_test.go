package gateway

import (
	"context"
	"net"
	"testing"
	"time"

	"cronets/internal/pathmon"
)

// benchHandshakeRTT emulates the client→relay TCP-handshake round trip
// that loopback hides. A cold relay dial pays it on every Dial; a pooled
// dial paid it off the critical path when the filler warmed the socket.
const benchHandshakeRTT = time.Millisecond

// delayDialer sleeps for delay before every dial — a stand-in for the
// SYN/SYN-ACK round trip to a WAN relay.
type delayDialer struct {
	net.Dialer
	delay time.Duration
}

func (d *delayDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.Dialer.DialContext(ctx, network, addr)
}

// newBenchGateway builds a relay + pinned monitor + gateway whose relay
// leg costs benchHandshakeRTT to establish. poolSize 0 = pooling off.
func newBenchGateway(b *testing.B, poolSize int) (*Gateway, string) {
	b.Helper()
	dest := echoServer(b).String()
	rl := liveRelay(b)
	relayAddr := rl.Addr().String()

	mon, err := pathmon.New(pathmon.Config{Dest: dest, Fleet: []string{relayAddr}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = mon.Close() })
	mon.Pin(pathmon.MakeRoute(relayAddr))

	g, err := New(Config{
		Dest:             dest,
		Monitor:          mon,
		Dialer:           &delayDialer{delay: benchHandshakeRTT},
		PoolSize:         poolSize,
		PoolFillInterval: time.Hour, // warm-up is explicit via Fill
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = g.Close() })
	return g, relayAddr
}

// BenchmarkGatewayDialPooled measures relay dials riding warm pooled
// sockets: the handshake RTT is prepaid by the filler (off-timer), so
// each Dial costs one CONNECT round trip.
func BenchmarkGatewayDialPooled(b *testing.B) {
	g, relayAddr := newBenchGateway(b, 4)
	g.Pool().Fill()
	if g.Pool().Idle(relayAddr) == 0 {
		b.Fatal("pool failed to warm")
	}

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Pool().Idle(relayAddr) == 0 {
			b.StopTimer()
			g.Pool().Fill()
			b.StartTimer()
		}
		conn, _, err := g.Dial(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = conn.Close()
		b.StartTimer()
	}
	b.StopTimer()
	if cold := g.Stats().DialsRelayCold.Load(); cold != 0 {
		b.Fatalf("%d dials fell back to cold; benchmark did not measure the pooled path", cold)
	}
}

// BenchmarkGatewayDialCold is the baseline: pooling off, every relay
// dial pays the handshake RTT plus the CONNECT round trip.
func BenchmarkGatewayDialCold(b *testing.B) {
	g, _ := newBenchGateway(b, 0)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, _, err := g.Dial(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = conn.Close()
		b.StartTimer()
	}
}
