package gateway

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"cronets/internal/measure"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/pipe"
	"cronets/internal/relay"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = pipe.CopyMetered(c, c, pipe.CopyOptions{})
				if tc, ok := c.(*net.TCPConn); ok {
					_ = tc.CloseWrite()
				}
			}()
		}
	}()
	return ln.Addr()
}

func liveRelay(t *testing.T) *relay.Relay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := relay.New(ln, relay.Config{})
	go func() { _ = r.Serve() }()
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func TestDialDirectWithoutMonitor(t *testing.T) {
	dest := echoServer(t)
	g, err := New(Config{Dest: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !path.IsDirect() {
		t.Fatalf("path = %v, want direct", path)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	if g.Stats().DialsDirect.Load() != 1 {
		t.Fatalf("DialsDirect = %d, want 1", g.Stats().DialsDirect.Load())
	}
}

func TestDialFollowsMonitorBestPath(t *testing.T) {
	destSrvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	destSrv := measure.NewServer(destSrvLn)
	go func() { _ = destSrv.Serve() }()
	defer destSrv.Close()
	dest := destSrvLn.Addr().String()

	rl := liveRelay(t)
	mon, err := pathmon.New(pathmon.Config{
		Dest:  dest,
		Fleet: []string{rl.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.Path{Relay: rl.Addr().String()})

	g, err := New(Config{Dest: dest, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if path.IsDirect() {
		t.Fatal("dialed direct; monitor's best path is the relay")
	}
	if got := rl.Stats().Accepted.Load(); got != 1 {
		t.Fatalf("relay accepted %d connections, want 1", got)
	}
	// The relayed connection reaches a live measure server: probe it.
	if _, err := measure.ProbeRTT(conn, 2); err != nil {
		t.Fatalf("probe through gateway-dialed relay path: %v", err)
	}
}

func TestDialFallsBackWhenBestPathDead(t *testing.T) {
	destSrvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	destSrv := measure.NewServer(destSrvLn)
	go func() { _ = destSrv.Serve() }()
	defer destSrv.Close()
	dest := destSrvLn.Addr().String()

	deadRelay := "127.0.0.1:1"
	mon, err := pathmon.New(pathmon.Config{Dest: dest, Fleet: []string{deadRelay}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.Path{Relay: deadRelay})

	reg := obs.NewRegistry()
	g, err := New(Config{Dest: dest, Monitor: mon, DialTimeout: time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatalf("Dial with a dead best path must fall back: %v", err)
	}
	defer conn.Close()
	if !path.IsDirect() {
		t.Fatalf("fallback path = %v, want direct", path)
	}
	if g.Stats().Fallbacks.Load() != 1 {
		t.Fatalf("Fallbacks = %d, want 1", g.Stats().Fallbacks.Load())
	}
	var sawFallback bool
	for _, e := range reg.Events().Snapshot() {
		if e.Type == obs.EventFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("no fallback flow event recorded")
	}
}

func TestServeListenerMode(t *testing.T) {
	dest := echoServer(t)
	g, err := New(Config{Dest: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Serve(gwLn) }()

	payload := bytes.Repeat([]byte("overlay"), 1000)
	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if !bytes.Equal(got, payload) {
		t.Fatalf("echoed %d bytes through gateway, want %d", len(got), len(payload))
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrGatewayClosed {
		t.Fatalf("Serve returned %v, want ErrGatewayClosed", err)
	}
	st := g.Stats()
	if st.Accepted.Load() != 1 || st.BytesUp.Load() != int64(len(payload)) {
		t.Fatalf("stats: accepted=%d bytes_up=%d", st.Accepted.Load(), st.BytesUp.Load())
	}
}

func TestDialAllPathsDead(t *testing.T) {
	g, err := New(Config{Dest: "127.0.0.1:1", DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, _, err := g.Dial(context.Background()); err == nil {
		t.Fatal("Dial succeeded with no live path")
	}
	if g.Stats().DialFailures.Load() != 1 {
		t.Fatalf("DialFailures = %d, want 1", g.Stats().DialFailures.Load())
	}
}

// TestIdleTimeoutClosesDeadFlow: a listener-mode flow with a silent peer
// is torn down by the idle timeout instead of holding the gateway slot
// forever, and the flow-duration histogram records the finished flow.
func TestIdleTimeoutClosesDeadFlow(t *testing.T) {
	dest := echoServer(t)
	reg := obs.NewRegistry()
	g, err := New(Config{
		Dest:        dest.String(),
		IdleTimeout: 100 * time.Millisecond,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write once so the flow establishes, then go silent.
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Active.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := g.Stats().Active.Load(); got != 0 {
		t.Fatalf("idle flow still active after timeout: Active = %d", got)
	}
	if g.flowDur.Count() == 0 {
		t.Error("flow-duration histogram recorded no samples")
	}
	if up := g.Stats().BytesUp.Load(); up != 5 {
		t.Errorf("BytesUp = %d, want 5", up)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrGatewayClosed {
		t.Fatalf("Serve returned %v, want ErrGatewayClosed", err)
	}
}
