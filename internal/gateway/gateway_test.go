package gateway

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"cronets/internal/measure"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/pipe"
	"cronets/internal/relay"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t testing.TB) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = pipe.CopyMetered(c, c, pipe.CopyOptions{})
				if tc, ok := c.(*net.TCPConn); ok {
					_ = tc.CloseWrite()
				}
			}()
		}
	}()
	return ln.Addr()
}

func liveRelay(t testing.TB) *relay.Relay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := relay.New(ln, relay.Config{})
	go func() { _ = r.Serve() }()
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func TestDialDirectWithoutMonitor(t *testing.T) {
	dest := echoServer(t)
	g, err := New(Config{Dest: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !path.IsDirect() {
		t.Fatalf("path = %v, want direct", path)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	if g.Stats().DialsDirect.Load() != 1 {
		t.Fatalf("DialsDirect = %d, want 1", g.Stats().DialsDirect.Load())
	}
}

func TestDialFollowsMonitorBestPath(t *testing.T) {
	destSrvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	destSrv := measure.NewServer(destSrvLn)
	go func() { _ = destSrv.Serve() }()
	defer destSrv.Close()
	dest := destSrvLn.Addr().String()

	rl := liveRelay(t)
	mon, err := pathmon.New(pathmon.Config{
		Dest:  dest,
		Fleet: []string{rl.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.MakeRoute(rl.Addr().String()))

	g, err := New(Config{Dest: dest, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if path.IsDirect() {
		t.Fatal("dialed direct; monitor's best path is the relay")
	}
	if got := rl.Stats().Accepted.Load(); got != 1 {
		t.Fatalf("relay accepted %d connections, want 1", got)
	}
	// The relayed connection reaches a live measure server: probe it.
	if _, err := measure.ProbeRTT(conn, 2); err != nil {
		t.Fatalf("probe through gateway-dialed relay path: %v", err)
	}
}

func TestDialFallsBackWhenBestPathDead(t *testing.T) {
	destSrvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	destSrv := measure.NewServer(destSrvLn)
	go func() { _ = destSrv.Serve() }()
	defer destSrv.Close()
	dest := destSrvLn.Addr().String()

	deadRelay := "127.0.0.1:1"
	mon, err := pathmon.New(pathmon.Config{Dest: dest, Fleet: []string{deadRelay}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.MakeRoute(deadRelay))

	reg := obs.NewRegistry()
	g, err := New(Config{Dest: dest, Monitor: mon, DialTimeout: time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatalf("Dial with a dead best path must fall back: %v", err)
	}
	defer conn.Close()
	if !path.IsDirect() {
		t.Fatalf("fallback path = %v, want direct", path)
	}
	if g.Stats().Fallbacks.Load() != 1 {
		t.Fatalf("Fallbacks = %d, want 1", g.Stats().Fallbacks.Load())
	}
	var sawFallback bool
	for _, e := range reg.Events().Snapshot() {
		if e.Type == obs.EventFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("no fallback flow event recorded")
	}
}

func TestServeListenerMode(t *testing.T) {
	dest := echoServer(t)
	g, err := New(Config{Dest: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Serve(gwLn) }()

	payload := bytes.Repeat([]byte("overlay"), 1000)
	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if !bytes.Equal(got, payload) {
		t.Fatalf("echoed %d bytes through gateway, want %d", len(got), len(payload))
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrGatewayClosed {
		t.Fatalf("Serve returned %v, want ErrGatewayClosed", err)
	}
	st := g.Stats()
	if st.Accepted.Load() != 1 || st.BytesUp.Load() != int64(len(payload)) {
		t.Fatalf("stats: accepted=%d bytes_up=%d", st.Accepted.Load(), st.BytesUp.Load())
	}
}

func TestDialAllPathsDead(t *testing.T) {
	g, err := New(Config{Dest: "127.0.0.1:1", DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, _, err := g.Dial(context.Background()); err == nil {
		t.Fatal("Dial succeeded with no live path")
	}
	if g.Stats().DialFailures.Load() != 1 {
		t.Fatalf("DialFailures = %d, want 1", g.Stats().DialFailures.Load())
	}
}

// TestIdleTimeoutClosesDeadFlow: a listener-mode flow with a silent peer
// is torn down by the idle timeout instead of holding the gateway slot
// forever, and the flow-duration histogram records the finished flow.
func TestIdleTimeoutClosesDeadFlow(t *testing.T) {
	dest := echoServer(t)
	reg := obs.NewRegistry()
	g, err := New(Config{
		Dest:        dest.String(),
		IdleTimeout: 100 * time.Millisecond,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write once so the flow establishes, then go silent.
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Active.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := g.Stats().Active.Load(); got != 0 {
		t.Fatalf("idle flow still active after timeout: Active = %d", got)
	}
	if g.flowDur.Count() == 0 {
		t.Error("flow-duration histogram recorded no samples")
	}
	if up := g.Stats().BytesUp.Load(); up != 5 {
		t.Errorf("BytesUp = %d, want 5", up)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrGatewayClosed {
		t.Fatalf("Serve returned %v, want ErrGatewayClosed", err)
	}
}

// flakyListener injects n temporary accept errors before delegating to
// the real listener — EMFILE/ECONNABORTED bursts under load.
type flakyListener struct {
	net.Listener
	remaining int
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: transient resource exhaustion" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (f *flakyListener) Accept() (net.Conn, error) {
	if f.remaining > 0 {
		f.remaining--
		return nil, tempErr{}
	}
	return f.Listener.Accept()
}

// TestServeRetriesTemporaryAcceptErrors: transient Accept failures must
// not kill the gateway — Serve backs off, retries, counts them, and the
// flow that arrives after the burst is served normally. Pre-fix, the
// first temporary error returned from Serve and the gateway went dark.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	dest := echoServer(t)
	g, err := New(Config{Dest: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const bursts = 3
	done := make(chan error, 1)
	go func() { done <- g.Serve(&flakyListener{Listener: ln, remaining: bursts}) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo after accept-error burst = %q, %v", buf, err)
	}
	_ = conn.Close()

	if got := g.Stats().AcceptErrors.Load(); got != bursts {
		t.Errorf("AcceptErrors = %d, want %d", got, bursts)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrGatewayClosed {
		t.Fatalf("Serve returned %v, want ErrGatewayClosed", err)
	}
}

// TestDialDirectStaysInsideAttemptCap: with a committed (dead) relay best
// path and MaxAttempts small enough that truncation kicks in, the direct
// last resort must survive the cut. Pre-fix, cands[:MaxAttempts] sliced
// direct off and the dial failed outright.
func TestDialDirectStaysInsideAttemptCap(t *testing.T) {
	dest := echoServer(t)
	deadRelay := "127.0.0.1:1"
	mon, err := pathmon.New(pathmon.Config{Dest: dest.String(), Fleet: []string{deadRelay}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.MakeRoute(deadRelay))

	g, err := New(Config{
		Dest:        dest.String(),
		Monitor:     mon,
		MaxAttempts: 1,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatalf("Dial must keep direct inside the attempt cap: %v", err)
	}
	defer conn.Close()
	if !path.IsDirect() {
		t.Fatalf("path = %v, want direct", path)
	}
}

// TestTrackAfterCloseClosesConn: a conn that loses the race with Close —
// accepted or dialed after the shutdown sweep ran — must be closed by
// track instead of silently registered, where it would dangle past
// Close's wg.Wait with nothing left to reap it.
func TestTrackAfterCloseClosesConn(t *testing.T) {
	dest := echoServer(t)
	g, err := New(Config{Dest: dest.String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	local, remote := net.Pipe()
	defer remote.Close()
	if g.track(local) {
		t.Fatal("track registered a conn after Close")
	}
	// track must have closed the conn: the peer sees EOF promptly.
	_ = remote.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := remote.Read(make([]byte, 1)); err == nil {
		t.Fatal("conn tracked after Close was left open")
	}
}

// TestDialUsesWarmPool: with pooling on, a relay dial rides a
// pre-established pooled socket — the relay sees no new TCP connection at
// dial time, and the dial is attributed to the pooled counter.
func TestDialUsesWarmPool(t *testing.T) {
	dest := echoServer(t)
	rl := liveRelay(t)
	mon, err := pathmon.New(pathmon.Config{
		Dest:  dest.String(),
		Fleet: []string{rl.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.MakeRoute(rl.Addr().String()))

	g, err := New(Config{
		Dest:             dest.String(),
		Monitor:          mon,
		PoolSize:         2,
		PoolFillInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Pool() == nil {
		t.Fatal("pool not created with PoolSize > 0")
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Pool().Idle(rl.Addr().String()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := g.Pool().Idle(rl.Addr().String()); got < 2 {
		t.Fatalf("pool warmed %d conns, want 2", got)
	}

	conn, path, err := g.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if path.IsDirect() {
		t.Fatal("dial went direct; pinned best is the relay")
	}
	if got := g.Stats().DialsRelayPooled.Load(); got != 1 {
		t.Fatalf("DialsRelayPooled = %d, want 1", got)
	}
	if got := g.Stats().DialsRelayCold.Load(); got != 0 {
		t.Fatalf("DialsRelayCold = %d, want 0", got)
	}
	// The pooled leg really reaches the destination.
	if _, err := conn.Write([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "warm" {
		t.Fatalf("echo over pooled leg = %q, %v", buf, err)
	}
}
