// Package gateway is the overlay control plane's forwarding half: a
// client-side entry point that consults pathmon on every new connection
// and dials the destination either directly or through the chosen relay
// (the split-TCP CONNECT protocol from internal/relay). Dial failures
// fall back to the next-ranked path, and re-ranking is live: established
// flows stay pinned to the path they were dialed on, only new
// connections follow the table — the CRONets client gateway of Fig. 1.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cronets/internal/chain"
	"cronets/internal/connpool"
	"cronets/internal/flowtrace"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/pipe"
	"cronets/internal/relay"
)

// Ranker supplies the control-plane route ranking a Gateway follows. It
// is satisfied by *pathmon.Monitor and by *pathmon.View, so the routing
// objective is chosen per listener: hand a bulk listener
// mon.View(pathmon.ObjectiveThroughput) and an interactive listener the
// monitor itself, and both share one probe budget while committing to
// their own best routes (the warm pool follows whichever ranking its
// gateway was given). Tests substitute scripted rankings to exercise the
// dial fallback ladder without sockets.
type Ranker interface {
	// Best returns the hysteresis-committed best route (false before the
	// first usable round).
	Best() (pathmon.Route, bool)
	// Ranked returns the current route table sorted best-first.
	Ranked() []pathmon.RouteStatus
	// Subscribe returns a coalesced ranking-change wakeup channel and an
	// unsubscribe func (the warm pool's filler follows it).
	Subscribe() (<-chan struct{}, func())
}

// Config parameterizes a Gateway. Dest is required.
type Config struct {
	// Dest is the destination address as reachable from the relays — the
	// CONNECT target sent through the overlay.
	Dest string
	// DirectAddr is the client's direct route to Dest (defaults to Dest;
	// emulations point it at a netem proxy).
	DirectAddr string
	// Monitor supplies route rankings: usually the *pathmon.Monitor
	// itself, or one objective's *pathmon.View of it when several
	// listeners share a monitor. With a nil Monitor the gateway always
	// dials direct.
	Monitor Ranker
	// DialTimeout bounds each path attempt (default 10 s).
	DialTimeout time.Duration
	// IdleTimeout closes listener-mode flows with no traffic in either
	// direction (default 5 min; negative disables). Without it a dead
	// peer holds a gateway flow — and its relay slot — forever.
	IdleTimeout time.Duration
	// BufferBytes sizes each direction's pooled copy buffer in listener
	// mode (default pipe.DefaultBufferBytes).
	BufferBytes int
	// MaxAttempts caps how many ranked paths one Dial tries before
	// giving up (default 3). The direct path always stays inside the
	// cap as the guaranteed last resort.
	MaxAttempts int
	// PoolSize enables the warm relay-connection pool when > 0: each
	// warmed relay keeps PoolSize pre-established TCP connections, and
	// relay dials send the CONNECT preamble on a pooled socket —
	// collapsing overlay connection setup from two round trips to one.
	// 0 disables the pool; every relay dial is cold and wire behaviour
	// is unchanged. The pool needs a Monitor (relays come from its
	// ranking).
	PoolSize int
	// PoolIdleTTL bounds the idle age of a pooled connection (default
	// 60 s — keep it under the relay fleet's pre-CONNECT IdleTimeout).
	PoolIdleTTL time.Duration
	// PoolRelays is how many top-ranked relays the pool keeps warm
	// (default 2); the committed best path is always warmed.
	PoolRelays int
	// PoolFillInterval overrides the pool's background re-warm cadence
	// (default 1 s; tests and benchmarks shorten it).
	PoolFillInterval time.Duration
	// Dialer overrides the underlying dialer (tests).
	Dialer relay.Dialer
	// Obs receives gateway metrics and flow events (nil disables
	// instrumentation).
	Obs *obs.Registry
	// Tracer makes the gateway a trace origin: sampled flows get a root
	// span, a path-selection dial span, and their context is propagated
	// to relays in the CONNECT preamble. Nil disables tracing; unsampled
	// flows stay allocation-free.
	Tracer *flowtrace.Tracer
}

// Stats are cumulative gateway counters, safe to read concurrently.
type Stats struct {
	// Accepted counts downstream connections accepted in listener mode.
	Accepted atomic.Int64
	// Active is the number of flows currently being piped.
	Active atomic.Int64
	// DialsDirect counts successful direct-path dials.
	DialsDirect atomic.Int64
	// DialsRelayPooled and DialsRelayCold split successful relay dials
	// by whether the connection came from the warm pool or a cold TCP
	// dial (their sum is the total relay dial count).
	DialsRelayPooled atomic.Int64
	DialsRelayCold   atomic.Int64
	// DialsChain counts successful multi-hop chain dials (the first hop
	// may still have come from the warm pool; chain dials are not split
	// pooled/cold).
	DialsChain atomic.Int64
	// Fallbacks counts dials that succeeded only on a non-first-choice
	// path.
	Fallbacks atomic.Int64
	// DialFailures counts Dial calls that exhausted every candidate.
	DialFailures atomic.Int64
	// AcceptErrors counts transient listener Accept failures survived
	// with backoff in listener mode.
	AcceptErrors atomic.Int64
	// BytesUp and BytesDown count piped bytes in listener mode.
	BytesUp   atomic.Int64
	BytesDown atomic.Int64
}

// Gateway dials (and optionally fronts) a fixed destination over the
// current best overlay path.
type Gateway struct {
	cfg     Config
	stats   *Stats
	scope   *obs.Scope
	flowDur *obs.Histogram
	pool    *connpool.Pool // nil when pooling is disabled

	mu     sync.Mutex
	closed bool
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ErrGatewayClosed is returned by Serve after Close.
var ErrGatewayClosed = errors.New("gateway: closed")

// New creates a Gateway.
func New(cfg Config) (*Gateway, error) {
	if cfg.Dest == "" {
		return nil, errors.New("gateway: Config.Dest is required")
	}
	if cfg.DirectAddr == "" {
		cfg.DirectAddr = cfg.Dest
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout < 0 {
		cfg.IdleTimeout = 0
	} else if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{}
	}
	g := &Gateway{
		cfg:   cfg,
		stats: &Stats{},
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.PoolSize > 0 && cfg.Monitor != nil {
		g.pool = connpool.New(connpool.Config{
			SizePerRelay: cfg.PoolSize,
			TopK:         cfg.PoolRelays,
			IdleTTL:      cfg.PoolIdleTTL,
			FillInterval: cfg.PoolFillInterval,
			DialTimeout:  cfg.DialTimeout,
			Ranker:       cfg.Monitor,
			Dialer:       cfg.Dialer,
			Obs:          cfg.Obs,
		})
	}
	g.instrument(cfg.Obs)
	return g, nil
}

// Pool returns the gateway's warm relay-connection pool, or nil when
// pooling is disabled.
func (g *Gateway) Pool() *connpool.Pool { return g.pool }

func (g *Gateway) instrument(reg *obs.Registry) {
	g.scope = reg.Scope("gateway")
	g.flowDur = reg.Histogram("cronets_gateway_flow_duration_seconds",
		"Wall-clock lifetime of finished listener-mode flows.", obs.LatencyBuckets)
	reg.CounterFunc("cronets_gateway_accepted_total",
		"Downstream connections accepted in listener mode.", g.stats.Accepted.Load)
	reg.GaugeFunc("cronets_gateway_active",
		"Flows currently being piped.", g.stats.Active.Load)
	reg.CounterFunc(obs.Label("cronets_gateway_dials_total", "path", "direct"),
		"Successful destination dials by path kind.", g.stats.DialsDirect.Load)
	reg.CounterFunc(obs.Label("cronets_gateway_dials_total", "path", "relay_pooled"),
		"Successful destination dials by path kind.", g.stats.DialsRelayPooled.Load)
	reg.CounterFunc(obs.Label("cronets_gateway_dials_total", "path", "relay_cold"),
		"Successful destination dials by path kind.", g.stats.DialsRelayCold.Load)
	reg.CounterFunc(obs.Label("cronets_gateway_dials_total", "path", "chain"),
		"Successful destination dials by path kind.", g.stats.DialsChain.Load)
	reg.CounterFunc("cronets_gateway_fallbacks_total",
		"Dials that succeeded only on a non-first-choice path.", g.stats.Fallbacks.Load)
	reg.CounterFunc("cronets_gateway_dial_failures_total",
		"Dials that exhausted every candidate path.", g.stats.DialFailures.Load)
	reg.CounterFunc("cronets_gateway_accept_errors_total",
		"Transient listener accept failures survived with backoff.", g.stats.AcceptErrors.Load)
	reg.CounterFunc(obs.Label("cronets_gateway_bytes_total", "dir", "up"),
		"Piped bytes by direction (up = client to destination).", g.stats.BytesUp.Load)
	reg.CounterFunc(obs.Label("cronets_gateway_bytes_total", "dir", "down"),
		"Piped bytes by direction (up = client to destination).", g.stats.BytesDown.Load)
}

// Stats returns the gateway's counters.
func (g *Gateway) Stats() *Stats { return g.stats }

// candidates returns the ordered list of routes a dial should try: the
// hysteresis-committed best route first, then the remaining usable routes
// score-ordered. Without a monitor (or before its first round) it is the
// direct route alone.
func (g *Gateway) candidates() []pathmon.Route {
	if g.cfg.Monitor == nil {
		return []pathmon.Route{pathmon.Direct}
	}
	best, ok := g.cfg.Monitor.Best()
	if !ok {
		return []pathmon.Route{pathmon.Direct}
	}
	out := []pathmon.Route{best}
	haveDirect := best.IsDirect()
	for _, st := range g.cfg.Monitor.Ranked() {
		if st.Route == best || st.Down {
			continue
		}
		out = append(out, st.Route)
		haveDirect = haveDirect || st.Route.IsDirect()
	}
	if !haveDirect {
		// The direct Internet path needs no overlay cooperation; keep it
		// as the last resort even when probes call it down.
		out = append(out, pathmon.Direct)
	}
	return out
}

// Dial opens one connection to the destination over the current best
// route, falling back to the next-ranked routes on dial failure. It
// returns the connection and the route it actually took.
//
// Tracing: with a Tracer configured, Dial records a gateway.dial span
// covering route selection and every attempt. The span parents under the
// flow context carried in ctx (flowtrace.NewGoContext) or, absent one,
// starts a new trace subject to the sampling rate; relay attempts
// propagate the span's context in the CONNECT preamble.
func (g *Gateway) Dial(ctx context.Context) (net.Conn, pathmon.Route, error) {
	span := g.cfg.Tracer.Start("gateway.dial", flowtrace.FromGoContext(ctx))
	defer span.End()
	if span != nil {
		ctx = flowtrace.NewGoContext(ctx, span.Context())
	}
	cands := g.candidates()
	if len(cands) > g.cfg.MaxAttempts {
		// Truncate to the attempt cap, but never slice off the direct
		// path: candidates() appends it as the guaranteed last resort,
		// and with >= MaxAttempts ranked relay paths a plain cut would
		// silently drop it — a relay-fleet outage would then fail flows
		// that direct would have served.
		kept := cands[:g.cfg.MaxAttempts:g.cfg.MaxAttempts]
		hasDirect := false
		for _, p := range kept {
			if p.IsDirect() {
				hasDirect = true
				break
			}
		}
		if !hasDirect {
			kept[len(kept)-1] = pathmon.Direct
		}
		cands = kept
	}
	var lastErr error
	for i, p := range cands {
		conn, pooled, err := g.dialRoute(ctx, p)
		if err != nil {
			lastErr = err
			g.scope.Event(obs.EventDial, fmt.Sprintf("fail %s: %v", p, err))
			if ctx.Err() != nil {
				break
			}
			continue
		}
		detail := p.String()
		if p.IsDirect() {
			g.stats.DialsDirect.Add(1)
		} else if p.IsChain() {
			g.stats.DialsChain.Add(1)
			if pooled {
				detail += " (pooled)"
			}
			g.scope.Event(obs.EventChainDial, detail)
		} else if pooled {
			g.stats.DialsRelayPooled.Add(1)
			detail += " (pooled)"
		} else {
			g.stats.DialsRelayCold.Add(1)
		}
		if i > 0 {
			g.stats.Fallbacks.Add(1)
			g.scope.Event(obs.EventFallback,
				fmt.Sprintf("%s after %d failed path(s)", p, i))
		} else {
			g.scope.Event(obs.EventDial, "ok "+detail)
		}
		if span != nil {
			span.SetDetail(detail)
		}
		return conn, p, nil
	}
	g.stats.DialFailures.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no candidate paths")
	}
	if span != nil {
		span.SetDetail(fmt.Sprintf("failed after %d route(s)", len(cands)))
	}
	return nil, pathmon.Route{}, fmt.Errorf("gateway: all %d route(s) failed: %w", len(cands), lastErr)
}

// dialRoute opens one connection over a specific route — the single dial
// seam for every depth. The zero-hop route is a plain direct dial; any
// deeper route walks its hop list with one CONNECT per hop (one hop is
// exactly the classic single-relay path). Overlay routes first try a
// warm pooled socket to the first hop — sending the CONNECT preamble on
// an already-open connection skips the TCP-handshake round trip — and
// cold dial when the pool misses (or a checked-out socket dies mid
// handshake), so behaviour degrades to exactly the unpooled route.
func (g *Gateway) dialRoute(ctx context.Context, r pathmon.Route) (conn net.Conn, pooled bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.DialTimeout)
	defer cancel()
	hops := r.Hops()
	if len(hops) == 0 {
		conn, err = g.cfg.Dialer.DialContext(ctx, "tcp", g.cfg.DirectAddr)
		return conn, false, err
	}
	copts := chain.Options{Dialer: g.cfg.Dialer, Tracer: g.cfg.Tracer}
	if g.pool != nil {
		if warm, ok := g.pool.Get(hops[0]); ok {
			if conn, err = chain.Connect(ctx, warm, hops, g.cfg.Dest, copts); err == nil {
				return conn, true, nil
			}
			// The warm leg died between health check and handshake: fall
			// through to a cold dial rather than failing the flow.
			g.scope.Event(obs.EventDial,
				fmt.Sprintf("pooled leg to %s died, cold dialing: %v", hops[0], err))
		}
	}
	conn, err = chain.Dial(ctx, hops, g.cfg.Dest, copts)
	return conn, false, err
}

// Serve runs listener mode: every accepted connection is dialed through
// Dial and piped to the destination. Established flows keep their path;
// re-ranking only steers subsequent accepts. It always returns a non-nil
// error (ErrGatewayClosed after a clean shutdown).
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrGatewayClosed
	}
	g.ln = ln
	g.mu.Unlock()
	var acceptDelay time.Duration
	for {
		down, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return ErrGatewayClosed
			}
			// Transient accept failures (ECONNABORTED, EMFILE under
			// load) must not kill the whole gateway: retry with bounded
			// exponential backoff, net/http.Server-style.
			if ne, ok := err.(net.Error); ok && ne.Temporary() { //nolint:staticcheck // the net/http.Server accept-retry idiom
				g.stats.AcceptErrors.Add(1)
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				g.scope.Logger().Warn("gateway accept failed, retrying",
					"err", err, "backoff", acceptDelay.String())
				time.Sleep(acceptDelay)
				continue
			}
			return fmt.Errorf("gateway: accept: %w", err)
		}
		acceptDelay = 0
		g.stats.Accepted.Add(1)
		if !g.track(down) {
			// Lost the race with Close: the conn is already closed, and
			// starting a handler would outlive the Close's wg.Wait.
			return ErrGatewayClosed
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer g.untrack(down)
			g.handle(down)
		}()
	}
}

// Addr returns the listener address ("" outside listener mode).
func (g *Gateway) Addr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return nil
	}
	return g.ln.Addr()
}

// Close stops the listener (if any), closes live flows, and retires the
// warm connection pool.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	ln := g.ln
	for c := range g.conns {
		_ = c.Close()
	}
	g.mu.Unlock()
	if g.pool != nil {
		_ = g.pool.Close()
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	g.wg.Wait()
	return err
}

// track registers a conn for Close's sweep. A conn that arrives
// concurrently with Close — after the sweep ran — is closed on the spot
// and not registered (reported as false): pre-fix it missed the sweep
// and Close blocked on wg.Wait until the idle timeout reaped the flow.
func (g *Gateway) track(c net.Conn) bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = c.Close()
		return false
	}
	g.conns[c] = struct{}{}
	g.mu.Unlock()
	return true
}

func (g *Gateway) untrack(c net.Conn) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.conns, c)
	_ = c.Close()
}

// handle pipes one accepted connection to the destination. Each flow is
// a trace root: the sampling decision happens here, and every downstream
// hop's spans parent (transitively) under this flow span.
func (g *Gateway) handle(down net.Conn) {
	flow := g.cfg.Tracer.Start("gateway.flow", flowtrace.Context{})
	defer flow.End()
	ctx := flowtrace.NewGoContext(context.Background(), flow.Context())

	up, route, err := g.Dial(ctx)
	if err != nil {
		flow.SetDetail("dial failed")
		g.scope.Logger().Warn("gateway dial failed", "err", err)
		return
	}
	if !g.track(up) {
		// The gateway closed while we were dialing: the upstream leg was
		// closed by track; drop the flow.
		flow.SetDetail("closed during dial")
		return
	}
	defer g.untrack(up)
	if flow != nil {
		// Route.String() already carries the "via" prefix for overlay
		// routes ("direct", "via a", "via a>b>c").
		flow.SetDetail(route.String())
	}

	g.stats.Active.Add(1)
	defer g.stats.Active.Add(-1)

	// The shared data-plane loop: pooled buffers, live byte counters,
	// half-close propagation, and the idle timeout a dead peer would
	// otherwise evade forever.
	opts := pipe.Options{
		BufferBytes: g.cfg.BufferBytes,
		IdleTimeout: g.cfg.IdleTimeout,
		OnIdle: func() {
			g.scope.Event(obs.EventIdleClose, down.RemoteAddr().String())
		},
		CountAToB: &g.stats.BytesUp,
		CountBToA: &g.stats.BytesDown,
	}
	if flow != nil {
		// TTFB at the gateway: the first byte the destination sends back
		// toward the client, measured from flow start (which includes
		// path selection and the overlay dial).
		opts.OnFirstByte = func(dir pipe.Dir) {
			if dir == pipe.BToA {
				flow.MarkFirstByte()
			}
		}
	}
	res, err := pipe.Bidirectional(context.Background(), down, up, opts)
	flow.AddBytes(res.AToB + res.BToA)
	g.flowDur.ObserveDuration(res.Duration)
	if err != nil {
		g.scope.Logger().Debug("gateway flow ended with error", "err", err)
	}
	_ = down.Close()
	_ = up.Close()
}
