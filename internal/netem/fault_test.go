package netem

import (
	"io"
	"net"
	"testing"
	"time"

	"cronets/internal/obs"
)

// sinkServer counts bytes it receives per connection and reports them.
func sinkServer(t *testing.T) (net.Listener, chan int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	counts := make(chan int, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				n, _ := io.Copy(io.Discard, conn)
				counts <- int(n)
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln, counts
}

// TestFaultKillAtByteOffset: the shaper cuts the connection after
// forwarding exactly AfterBytes upstream — the server sees the prefix and
// nothing more, and the fault is observable in metrics and events.
func TestFaultKillAtByteOffset(t *testing.T) {
	const offset = 64 << 10
	reg := obs.NewRegistry()
	sink, counts := sinkServer(t)
	p := startProxy(t, sink.Addr().String(), Config{
		Obs: reg,
		Faults: FaultPlan{Rules: []FaultRule{
			{Conn: 0, Dir: DirUp, AfterBytes: offset, Action: FaultKill},
		}},
	})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, 256<<10)
	for {
		if _, err := conn.Write(payload); err != nil {
			break // the kill severed the path
		}
	}
	select {
	case got := <-counts:
		if got != offset {
			t.Errorf("server received %d bytes, want exactly %d", got, offset)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the connection end")
	}
	if v := reg.Counter("cronets_netem_faults_total", "").Value(); v != 1 {
		t.Errorf("faults counter = %d, want 1", v)
	}
	found := false
	for _, e := range reg.Events().Snapshot() {
		if e.Type == obs.EventFaultInjected {
			found = true
		}
	}
	if !found {
		t.Error("no fault-injected event recorded")
	}
}

// TestFaultKillAfterDuration: a duration trigger severs an otherwise idle
// connection.
func TestFaultKillAfterDuration(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{
		Faults: FaultPlan{Rules: []FaultRule{
			{Conn: -1, After: 50 * time.Millisecond, Action: FaultKill},
		}},
	})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection survived the duration kill")
	}
}

// TestFaultBlackhole: a blackholed direction stalls without closing — the
// client's read times out rather than seeing EOF.
func TestFaultBlackhole(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{
		Faults: FaultPlan{Rules: []FaultRule{
			{Conn: -1, Dir: DirDown, AfterBytes: 4, Action: FaultBlackhole},
		}},
	})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "ping-pong"); err != nil {
		t.Fatal(err)
	}
	// The first 4 echoed bytes arrive; the rest are swallowed silently.
	buf := make([]byte, 4)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("prefix before blackhole: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	_, err = conn.Read(make([]byte, 1))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Errorf("read after blackhole = %v, want timeout (stall, not close)", err)
	}
}

// TestFaultRefuseConns: the first N connects are refused (immediate close,
// no upstream dial), then service resumes; RefuseNext re-arms at runtime.
func TestFaultRefuseConns(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{
		Faults: FaultPlan{RefuseConns: 2},
	})
	dialAndProbe := func() error {
		conn, err := net.Dial("tcp", p.Addr().String())
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := io.WriteString(conn, "hi"); err != nil {
			return err
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, err = io.ReadFull(conn, make([]byte, 2))
		return err
	}
	for i := 0; i < 2; i++ {
		if err := dialAndProbe(); err == nil {
			t.Errorf("connect %d should have been refused", i)
		}
	}
	if err := dialAndProbe(); err != nil {
		t.Errorf("connect after refuse budget spent: %v", err)
	}
	p.RefuseNext(1)
	if err := dialAndProbe(); err == nil {
		t.Error("connect after RefuseNext(1) should have been refused")
	}
	if err := dialAndProbe(); err != nil {
		t.Errorf("connect after runtime budget spent: %v", err)
	}
}

// TestFaultProbabilityReproducible: with the same seed, sequential
// connections arm probabilistic rules identically across proxies.
func TestFaultProbabilityReproducible(t *testing.T) {
	outcomes := func(seed int64) []bool {
		echo := echoServer(t)
		p := startProxy(t, echo.Addr().String(), Config{
			Seed: seed,
			Faults: FaultPlan{Rules: []FaultRule{
				{Conn: -1, Probability: 0.5, Action: FaultKill},
			}},
		})
		var out []bool
		for i := 0; i < 8; i++ {
			conn, err := net.Dial("tcp", p.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := io.WriteString(conn, "x"); err != nil {
				out = append(out, true)
				_ = conn.Close()
				continue
			}
			_, err = io.ReadFull(conn, make([]byte, 1))
			out = append(out, err != nil)
			_ = conn.Close()
		}
		return out
	}
	a, b := outcomes(99), outcomes(99)
	killed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at conn %d: %v != %v", i, a[i], b[i])
		}
		if a[i] {
			killed++
		}
	}
	if killed == 0 || killed == len(a) {
		t.Errorf("probability 0.5 killed %d/%d conns; want a mix", killed, len(a))
	}
}
