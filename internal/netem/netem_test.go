package netem

import (
	"io"
	"net"
	"testing"
	"time"
)

// echoServer echoes bytes back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln
}

func startProxy(t *testing.T, target string, cfg Config) *Proxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(ln, target, cfg)
	go p.Serve() //nolint:errcheck // closed in cleanup
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestPassThrough(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := "unimpaired"
	if _, err := io.WriteString(conn, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Errorf("echo = %q", buf)
	}
}

func TestLatencyAdded(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{
		Up:   Impairment{Latency: 30 * time.Millisecond},
		Down: Impairment{Latency: 30 * time.Millisecond},
	})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping")
	buf := make([]byte, len(msg))
	start := time.Now()
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 55*time.Millisecond {
		t.Errorf("RTT = %v, want >= ~60ms with 30ms each way", rtt)
	}
}

func TestRateLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("timed shaping test is skipped in -short mode")
	}
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{
		Up: Impairment{RateMbps: 20},
	})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send 2 MB upstream; at 20 Mbps that takes ~0.8 s.
	const total = 2 << 20
	go func() {
		chunk := make([]byte, 64<<10)
		sent := 0
		for sent < total {
			n, err := conn.Write(chunk)
			if err != nil {
				return
			}
			sent += n
		}
	}()
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	mbps := float64(total) * 8 / elapsed.Seconds() / 1e6
	if mbps > 26 {
		t.Errorf("measured %v Mbps through a 20 Mbps shaper", mbps)
	}
	// The cap is the contract; the floor only guards against a stuck
	// shaper and must tolerate heavily loaded CI machines, where the
	// sleep-based pacing overshoots.
	if mbps < 1 {
		t.Errorf("measured %v Mbps, shaper appears stuck", mbps)
	}
}

func TestCloseUnblocksServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(ln, "127.0.0.1:1", Config{})
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	time.Sleep(20 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != ErrProxyClosed {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestDeadTargetDropsClient(t *testing.T) {
	p := startProxy(t, "127.0.0.1:1", Config{})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection to dead target should close")
	}
}

// TestJitterReproducible: proxies built with the same seed draw identical
// jitter sequences from their per-proxy source, and a different seed
// diverges — impairment runs are replayable.
func TestJitterReproducible(t *testing.T) {
	mk := func(seed int64) *Proxy {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ln.Close() })
		return New(ln, "127.0.0.1:1", Config{Seed: seed})
	}
	draw := func(p *Proxy) []time.Duration {
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = p.jitter(10 * time.Millisecond)
		}
		return out
	}
	a, b, c := draw(mk(42)), draw(mk(42)), draw(mk(7))
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v != %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical jitter sequences")
	}
	if z := mk(1).jitter(0); z != 0 {
		t.Errorf("jitter(0) = %v, want 0", z)
	}
}

func TestSetImpairmentLive(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{})

	rtt := func() time.Duration {
		conn, err := net.Dial("tcp", p.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		msg := []byte("ping")
		buf := make([]byte, len(msg))
		start := time.Now()
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	before := rtt()
	if before > 40*time.Millisecond {
		t.Fatalf("unimpaired RTT = %v on loopback; environment too noisy", before)
	}
	p.SetImpairment(
		Impairment{Latency: 40 * time.Millisecond},
		Impairment{Latency: 40 * time.Millisecond},
	)
	if up, down := p.Impairments(); up.Latency != 40*time.Millisecond || down.Latency != 40*time.Millisecond {
		t.Fatalf("Impairments() = %v/%v after SetImpairment", up, down)
	}
	after := rtt()
	if after < 75*time.Millisecond {
		t.Errorf("RTT after live degradation = %v, want >= ~80ms", after)
	}
}

// TestSetImpairmentAffectsInFlightConn verifies an established connection
// picks up a mid-run impairment change at its next chunk.
func TestSetImpairmentAffectsInFlightConn(t *testing.T) {
	echo := echoServer(t)
	p := startProxy(t, echo.Addr().String(), Config{})
	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	roundTrip := func() time.Duration {
		msg := []byte("ping")
		buf := make([]byte, len(msg))
		start := time.Now()
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	if before := roundTrip(); before > 40*time.Millisecond {
		t.Fatalf("unimpaired RTT = %v; environment too noisy", before)
	}
	p.SetImpairment(
		Impairment{Latency: 40 * time.Millisecond},
		Impairment{Latency: 40 * time.Millisecond},
	)
	if after := roundTrip(); after < 75*time.Millisecond {
		t.Errorf("in-flight RTT after degradation = %v, want >= ~80ms", after)
	}
}
