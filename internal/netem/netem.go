// Package netem provides a network-emulation TCP proxy for tests and
// examples: per-direction one-way latency, jitter, and rate limiting over
// real sockets, standing in for the wide-area path conditions (long RTTs,
// thin links) that the paper's overlays route around. It shapes the byte
// stream; packet loss is exercised at the simulation layer (internal/
// tcpsim) where TCP dynamics are modeled.
package netem

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/obs"
	"cronets/internal/pipe"
)

// Impairment describes one direction's shaping.
type Impairment struct {
	// Latency is the added one-way delay.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) to each chunk's delay.
	Jitter time.Duration
	// RateMbps caps the direction's throughput (0 = unlimited).
	RateMbps float64
}

// Config shapes both directions of a proxied connection.
type Config struct {
	// Up shapes client -> target; Down shapes target -> client.
	Up, Down Impairment
	// ChunkBytes is the shaping granularity (default 16 KiB). Smaller
	// chunks emulate latency more faithfully at more CPU cost.
	ChunkBytes int
	// Seed drives jitter and probabilistic fault arming; 0 uses a fixed
	// default. All connections through a proxy share one seeded source,
	// so an impairment run is reproducible end to end.
	Seed int64
	// Faults scripts path failures (kills, blackholes, refused
	// connects); the zero value injects nothing.
	Faults FaultPlan
	// Obs receives shaping metrics and fault events (nil disables
	// instrumentation).
	Obs *obs.Registry
	// Tracer records a netem.shape span per connection whose first
	// upstream bytes carry a relay CONNECT preamble with a sampled trace
	// context — the shaper is a transparent middlebox, so it sniffs the
	// passing handshake instead of being handed a context. Nil disables
	// tracing; untraced connections cost one prefix check.
	Tracer *flowtrace.Tracer
}

// Proxy is a shaping TCP proxy with a fixed target.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	// impMu guards the live impairment pair, which SetImpairment may swap
	// mid-run; shaping goroutines re-read it at every chunk.
	impMu    sync.RWMutex
	up, down Impairment

	// rng is the proxy's single jitter source: seedable for reproducible
	// impairment runs, mutex-guarded because every shaping goroutine
	// draws from it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// connSeq numbers accepted connections so fault rules can target
	// "the Nth connection"; refuseN is the remaining refuse budget.
	connSeq atomic.Int64
	refuseN atomic.Int64

	shapedUp   *obs.Counter
	shapedDown *obs.Counter
	delayHist  *obs.Histogram
	faults     *obs.Counter
	refused    *obs.Counter
	scope      *obs.Scope

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	// stopc releases blackholed directions on Close.
	stopc chan struct{}
	wg    sync.WaitGroup
}

// ErrProxyClosed is returned by Serve after Close.
var ErrProxyClosed = errors.New("netem: closed")

// New creates a shaping proxy listening on ln and forwarding to target.
func New(ln net.Listener, target string, cfg Config) *Proxy {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 16 << 10
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Proxy{
		cfg:    cfg,
		target: target,
		ln:     ln,
		up:     cfg.Up,
		down:   cfg.Down,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
		stopc:  make(chan struct{}),
	}
	p.refuseN.Store(int64(cfg.Faults.RefuseConns))
	p.shapedUp = cfg.Obs.Counter(obs.Label("cronets_netem_shaped_bytes_total", "dir", "up"),
		"Bytes forwarded through the shaper by direction.")
	p.shapedDown = cfg.Obs.Counter(obs.Label("cronets_netem_shaped_bytes_total", "dir", "down"),
		"Bytes forwarded through the shaper by direction.")
	p.delayHist = cfg.Obs.Histogram("cronets_netem_added_delay_seconds",
		"Artificial delay (latency + jitter) added per forwarded chunk.",
		obs.LatencyBuckets)
	p.faults = cfg.Obs.Counter("cronets_netem_faults_total",
		"Faults injected (kills, blackholes, refused connects).")
	p.refused = cfg.Obs.Counter("cronets_netem_refused_total",
		"Inbound connections refused by the fault plan.")
	p.scope = cfg.Obs.Scope("netem")
	return p
}

// SetImpairment replaces both directions' shaping at runtime — a live
// "path degrades mid-run" lever for tests and demos. In-flight
// connections pick up the new impairment at their next chunk; nothing is
// reconnected.
func (p *Proxy) SetImpairment(up, down Impairment) {
	p.impMu.Lock()
	p.up, p.down = up, down
	p.impMu.Unlock()
	p.scope.Event(obs.EventImpairmentChange,
		fmt.Sprintf("up{lat=%v jit=%v rate=%g} down{lat=%v jit=%v rate=%g}",
			up.Latency, up.Jitter, up.RateMbps, down.Latency, down.Jitter, down.RateMbps))
}

// Impairments returns the current shaping pair.
func (p *Proxy) Impairments() (up, down Impairment) {
	p.impMu.RLock()
	defer p.impMu.RUnlock()
	return p.up, p.down
}

// impairment returns one direction's current shaping.
func (p *Proxy) impairment(isUp bool) Impairment {
	p.impMu.RLock()
	defer p.impMu.RUnlock()
	if isUp {
		return p.up
	}
	return p.down
}

// jitter draws a uniform [0, max) duration from the proxy's seeded source.
func (p *Proxy) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return time.Duration(p.rng.Int63n(int64(max)))
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Serve accepts and shapes connections until Close.
func (p *Proxy) Serve() error {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return ErrProxyClosed
			}
			return fmt.Errorf("netem: accept: %w", err)
		}
		idx := p.connSeq.Add(1) - 1
		if p.tryRefuse(idx) {
			_ = conn.Close()
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(idx, conn)
		}()
	}
}

// Close stops the proxy and closes live connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stopc)
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) handle(idx int64, down net.Conn) {
	defer down.Close()
	up, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return
	}
	defer up.Close()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[down] = struct{}{}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, down)
		delete(p.conns, up)
		p.mu.Unlock()
	}()

	upRules, downRules, all := p.armFaults(idx, down, up)
	defer func() {
		for _, a := range all {
			a.stop()
		}
	}()

	// The shared data-plane loop carries the bytes; shaping, rate pacing,
	// and fault triggers ride the per-chunk hook so netem no longer forks
	// its own copy loop. Each direction keeps its own shaper state.
	upShape := &shaper{p: p, isUp: true, shaped: p.shapedUp, rules: upRules}
	downShape := &shaper{p: p, isUp: false, shaped: p.shapedDown, rules: downRules}
	var sniff traceSniff
	res, _ := pipe.Bidirectional(context.Background(), down, up, pipe.Options{
		BufferBytes: p.cfg.ChunkBytes,
		Hook: func(dir pipe.Dir, chunk []byte, write pipe.WriteFunc) error {
			if dir == pipe.AToB {
				sniff.onUpChunk(p.cfg.Tracer, chunk)
				return upShape.shape(chunk, write)
			}
			sniff.span.MarkFirstByte()
			return downShape.shape(chunk, write)
		},
	})
	sniff.span.AddBytes(res.AToB + res.BToA)
	sniff.span.End()
}

// traceSniff extracts a trace context from the first upstream chunk of a
// shaped connection, if it opens with a relay CONNECT preamble carrying
// one. The shaper is a transparent middlebox: it joins traces it can see
// on the wire and stays silent otherwise.
type traceSniff struct {
	tried bool
	span  *flowtrace.Span
}

// connectPrefix is the relay handshake verb a sniffable preamble opens
// with; traceToken introduces the trace context on that line.
var (
	connectPrefix = []byte("CONNECT ")
	traceToken    = []byte(" TP=")
)

// onUpChunk inspects the first client->target chunk only; every later
// chunk costs a single boolean check. It allocates nothing unless a
// sampled context is found.
func (s *traceSniff) onUpChunk(tracer *flowtrace.Tracer, chunk []byte) {
	if s.tried {
		return
	}
	s.tried = true
	if tracer == nil || !bytes.HasPrefix(chunk, connectPrefix) {
		return
	}
	nl := bytes.IndexByte(chunk, '\n')
	if nl < 0 {
		return
	}
	line := chunk[:nl]
	i := bytes.Index(line, traceToken)
	if i < 0 {
		return
	}
	tok := bytes.TrimSpace(line[i+len(traceToken):])
	tc, ok := flowtrace.DecodeTextBytes(tok)
	if !ok {
		return
	}
	s.span = tracer.Continue("netem.shape", tc)
	s.span.SetDetail(string(line[len(connectPrefix):i]))
}

// errBlackholed aborts a parked direction once the proxy shuts down.
var errBlackholed = errors.New("netem: blackholed direction released at shutdown")

// shaper is one direction's impairment state over the shared loop.
type shaper struct {
	p      *Proxy
	isUp   bool
	shaped *obs.Counter
	rules  []*armedRule

	budget time.Time // rate-limit pacing horizon
	fwd    int64     // bytes forwarded in this direction
}

// shape applies the direction's impairment to one chunk (re-reading the
// live impairment per piece so SetImpairment takes effect mid-flow),
// drawing jitter from the proxy's seeded source and recording shaped
// bytes + added delay. Byte-offset fault triggers are enforced exactly
// (the chunk is split at the offset) and a blackholed direction parks
// here, keeping the sockets open, until the proxy closes.
func (s *shaper) shape(chunk []byte, write pipe.WriteFunc) error {
	p := s.p
	for len(chunk) > 0 {
		// A blackholed direction parks until the proxy closes, keeping
		// both sockets open — the silent-failure mode.
		for _, a := range s.rules {
			if a.blackhole.Load() {
				<-p.stopc
				return errBlackholed
			}
		}
		imp := p.impairment(s.isUp)
		// Split the chunk at the nearest pending byte-offset trigger
		// so the fault lands exactly on its offset.
		n := len(chunk)
		for _, a := range s.rules {
			if a.rule.AfterBytes > s.fwd && a.rule.AfterBytes < s.fwd+int64(n) {
				n = int(a.rule.AfterBytes - s.fwd)
			}
		}
		delay := imp.Latency + p.jitter(imp.Jitter)
		if imp.RateMbps > 0 {
			cost := time.Duration(float64(n*8) / (imp.RateMbps * 1e6) * float64(time.Second))
			now := time.Now()
			if s.budget.Before(now) {
				s.budget = now
			}
			s.budget = s.budget.Add(cost)
			if wait := time.Until(s.budget); wait > 0 {
				time.Sleep(wait)
			}
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		p.delayHist.Observe(delay.Seconds())
		if err := write(chunk[:n]); err != nil {
			return err
		}
		s.shaped.Add(int64(n))
		s.fwd += int64(n)
		chunk = chunk[n:]
		for _, a := range s.rules {
			if a.rule.AfterBytes > 0 && s.fwd >= a.rule.AfterBytes {
				a.fire(fmt.Sprintf("at %d bytes", s.fwd))
			}
		}
	}
	return nil
}
