package netem

// Fault injection: a scriptable per-proxy FaultPlan that breaks proxied
// connections on cue — kill at a byte offset or after a duration,
// blackhole a direction (stall without closing), refuse inbound connects.
// Rules with a Probability are armed per connection from the proxy's
// seeded RNG, so a fault run is as reproducible as a jitter run.

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cronets/internal/obs"
)

// Direction selects which way(s) of a proxied connection a rule watches.
type Direction int

// Directions. Up is client -> target (matching Config.Up); Down is the
// reverse.
const (
	DirBoth Direction = iota
	DirUp
	DirDown
)

// String returns the direction's display name.
func (d Direction) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return "both"
	}
}

// FaultAction is what a triggered rule does to the connection.
type FaultAction int

const (
	// FaultKill closes both sides of the connection immediately — a path
	// failure with a RST-like signature.
	FaultKill FaultAction = iota
	// FaultBlackhole stalls forwarding in the rule's direction without
	// closing either socket — a silent path (routing loop, dropped
	// forwarding state) that only timeouts can detect.
	FaultBlackhole
)

// String returns the action's display name.
func (a FaultAction) String() string {
	if a == FaultBlackhole {
		return "blackhole"
	}
	return "kill"
}

// FaultRule triggers one fault on matching connections.
type FaultRule struct {
	// Conn is the 0-based index of the accepted connection the rule
	// matches (refused connects consume indices too); -1 matches every
	// connection.
	Conn int
	// Dir is the direction whose byte count triggers the rule and, for
	// blackholes, the direction that stalls. Kills tear down the whole
	// connection regardless.
	Dir Direction
	// AfterBytes triggers once the matched direction has forwarded
	// exactly this many bytes; the shaper splits chunks so the cut lands
	// on the offset.
	AfterBytes int64
	// After triggers this long after the connection is established.
	// With AfterBytes also zero, the rule fires immediately on connect.
	After time.Duration
	// Probability arms the rule on a matching connection with this
	// chance, drawn from the proxy's seeded RNG (<= 0 or >= 1 always
	// arms). Sequential connections draw in order, so a seeded run
	// replays the same faults.
	Probability float64
	// Action is what happens when the rule fires.
	Action FaultAction
}

// FaultPlan scripts a proxy's faults.
type FaultPlan struct {
	// RefuseConns refuses the first N inbound connections: each is
	// closed at accept, before the upstream dial. Proxy.RefuseNext arms
	// more at runtime.
	RefuseConns int
	// Rules are evaluated per accepted connection.
	Rules []FaultRule
}

// armedRule is one rule bound to a live connection. The fired guard makes
// a DirBoth rule (present in both directions' watch lists) fire once.
type armedRule struct {
	p        *Proxy
	rule     FaultRule
	connIdx  int64
	down, up net.Conn

	mu        sync.Mutex
	fired     bool
	timer     *time.Timer
	blackhole atomic.Bool
}

// fire applies the rule's action once; cause describes the trigger.
func (a *armedRule) fire(cause string) {
	a.mu.Lock()
	if a.fired {
		a.mu.Unlock()
		return
	}
	a.fired = true
	a.mu.Unlock()
	a.p.faults.Inc()
	a.p.scope.Event(obs.EventFaultInjected,
		fmt.Sprintf("%s conn %d dir %s %s", a.rule.Action, a.connIdx, a.rule.Dir, cause))
	switch a.rule.Action {
	case FaultKill:
		_ = a.down.Close()
		_ = a.up.Close()
	case FaultBlackhole:
		a.blackhole.Store(true)
	}
}

// stop cancels a pending duration trigger (the connection ended first).
func (a *armedRule) stop() {
	a.mu.Lock()
	if a.timer != nil {
		a.timer.Stop()
	}
	a.mu.Unlock()
}

// armFaults binds the plan's rules to connection idx and returns the
// per-direction watch lists (nil when no rule matches).
func (p *Proxy) armFaults(idx int64, down, up net.Conn) (upRules, downRules, all []*armedRule) {
	for _, rule := range p.cfg.Faults.Rules {
		if rule.Conn >= 0 && int64(rule.Conn) != idx {
			continue
		}
		if rule.Probability > 0 && rule.Probability < 1 && p.randFloat() >= rule.Probability {
			continue
		}
		a := &armedRule{p: p, rule: rule, connIdx: idx, down: down, up: up}
		all = append(all, a)
		if rule.Dir == DirUp || rule.Dir == DirBoth {
			upRules = append(upRules, a)
		}
		if rule.Dir == DirDown || rule.Dir == DirBoth {
			downRules = append(downRules, a)
		}
		switch {
		case rule.After > 0:
			a.mu.Lock()
			a.timer = time.AfterFunc(rule.After, func() {
				a.fire(fmt.Sprintf("after %v", rule.After))
			})
			a.mu.Unlock()
		case rule.AfterBytes <= 0:
			// No trigger condition at all: fire on connect.
			a.fire("on connect")
		}
	}
	return upRules, downRules, all
}

// RefuseNext arms the proxy to refuse its next n inbound connections, on
// top of any remaining FaultPlan.RefuseConns budget.
func (p *Proxy) RefuseNext(n int) {
	if n > 0 {
		p.refuseN.Add(int64(n))
	}
}

// tryRefuse consumes one unit of refuse budget, reporting whether the
// connection at idx should be refused.
func (p *Proxy) tryRefuse(idx int64) bool {
	for {
		n := p.refuseN.Load()
		if n <= 0 {
			return false
		}
		if p.refuseN.CompareAndSwap(n, n-1) {
			p.faults.Inc()
			p.refused.Inc()
			p.scope.Event(obs.EventFaultInjected,
				fmt.Sprintf("refuse conn %d", idx))
			return true
		}
	}
}

// randFloat draws a uniform [0, 1) from the proxy's seeded source.
func (p *Proxy) randFloat() float64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Float64()
}
