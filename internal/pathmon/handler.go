package pathmon

// The /debug/paths exposition: the monitor's ranked table as JSON, one
// row per candidate path (direct, each relay, each live chain
// candidate), score-ordered best-first — what an operator checks to
// answer "why is traffic where it is?".

import (
	"encoding/json"
	"math"
	"net/http"
	"time"
)

// PathRow is one row of the /debug/paths JSON document.
type PathRow struct {
	// Path is the display name ("direct", "via a", "via a>b").
	Path string `json:"path"`
	// Kind is "direct", "relay", or "chain".
	Kind string `json:"kind"`
	// Hops lists the relay endpoints in order (absent for direct).
	Hops []string `json:"hops,omitempty"`
	// SRTTMs and RTTVarMs are the smoothed RTT estimate and its
	// deviation, in milliseconds.
	SRTTMs   float64 `json:"srtt_ms"`
	RTTVarMs float64 `json:"rttvar_ms"`
	// ScoreMs is the routing metric in milliseconds; null while the
	// path is down (the in-memory score is +Inf, which JSON cannot
	// carry).
	ScoreMs *float64 `json:"score_ms"`
	// Mbps is the smoothed throughput estimate after staleness decay
	// (absent if no burst has completed, or the estimate fully aged out).
	Mbps float64 `json:"mbps,omitempty"`
	// LastBurstAgeMs is how long ago the throughput estimate last
	// absorbed a completed burst; null if never — with Mbps it answers
	// "is this bandwidth number current?".
	LastBurstAgeMs *float64 `json:"last_burst_age_ms"`
	// Samples and Fails mirror the estimate's history: successful
	// rounds absorbed and the current consecutive-failure streak.
	Samples int `json:"samples"`
	Fails   int `json:"fails"`
	// State is "best" (carrying new flows), "up", or "down".
	State string `json:"state"`
	// LastProbeAgeMs is how long ago the path last answered a probe;
	// null before the first success.
	LastProbeAgeMs *float64 `json:"last_probe_age_ms"`
}

// PathsHandler serves the ranked path table as JSON, best-first. Mount
// it behind obs.GETOnly next to the other observability endpoints.
func (m *Monitor) PathsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		now := time.Now()
		ranked := m.Ranked()
		rows := make([]PathRow, 0, len(ranked))
		for _, st := range ranked {
			row := PathRow{
				Path:     st.Route.String(),
				Kind:     st.Route.Kind(),
				Hops:     st.Route.Hops(),
				SRTTMs:   ms(st.SRTT),
				RTTVarMs: ms(st.RTTVar),
				Mbps:     st.Mbps,
				Samples:  st.Samples,
				Fails:    st.Fails,
				State:    pathStateName(st),
			}
			if !math.IsInf(st.Score, 1) {
				score := st.Score * 1e3
				row.ScoreMs = &score
			}
			if !st.LastSample.IsZero() {
				age := ms(now.Sub(st.LastSample))
				row.LastProbeAgeMs = &age
			}
			if !st.LastBurst.IsZero() {
				age := ms(now.Sub(st.LastBurst))
				row.LastBurstAgeMs = &age
			}
			rows = append(rows, row)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rows)
	})
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// pathStateName collapses a row's status flags into one state word.
func pathStateName(st RouteStatus) string {
	switch {
	case st.Best:
		return "best"
	case st.Down:
		return "down"
	default:
		return "up"
	}
}
