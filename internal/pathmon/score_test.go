package pathmon

import (
	"context"
	"math"
	"testing"
	"time"

	"cronets/internal/measure"
)

// feedRound feeds one synthetic probe round with optional burst results.
// rtts maps route -> RTT (negative = probe failure); bursts maps route ->
// Mbps (negative = burst failure). Bursts on failed-RTT routes are
// dropped, mirroring probeRoute (a burst only runs after its RTT probes
// succeed).
func feedRound(m *Monitor, now time.Time, rtts map[Route]time.Duration, bursts map[Route]float64) {
	var results []probeResult
	for p, rtt := range rtts {
		r := probeResult{route: p}
		if rtt < 0 {
			r.err = context.DeadlineExceeded
		} else {
			r.rtt = rtt
			if mbps, ok := bursts[p]; ok {
				r.burst = true
				if mbps < 0 {
					r.burstErr = measure.ErrTruncatedBurst
				} else {
					r.mbps = mbps
				}
			}
		}
		results = append(results, r)
	}
	m.integrate(results, now)
}

func TestObjectiveParseRoundTrip(t *testing.T) {
	for _, obj := range []Objective{ObjectiveLatency, ObjectiveThroughput, ObjectiveComposite} {
		got, err := ParseObjective(obj.String())
		if err != nil || got != obj {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", obj.String(), got, err, obj)
		}
	}
	if _, err := ParseObjective("bandwidth"); err == nil {
		t.Error("ParseObjective accepted an unknown name")
	}
	if def := *new(Objective); def != ObjectiveLatency {
		t.Errorf("zero-value objective = %v, want latency", def)
	}
}

func TestObjectiveScoresTable(t *testing.T) {
	a, b, c := MakeRoute("a:1"), MakeRoute("b:1"), MakeRoute("c:1")
	// Score carries the latency metric (seconds) on entry, as rankForLocked
	// builds it.
	mkRows := func() []RouteStatus {
		return []RouteStatus{
			{Route: a, Score: 0.010, Mbps: 10},  // fastest RTT, thin
			{Route: b, Score: 0.100, Mbps: 100}, // slowest RTT, fat
			{Route: c, Score: 0.020, Mbps: 80},  // near-best on both axes
		}
	}
	rank := func(rows []RouteStatus) []Route {
		order := make([]Route, 0, len(rows))
		for range rows {
			best := -1
			for i := range rows {
				if containsRoute(order, rows[i].Route) {
					continue
				}
				if best < 0 || rows[i].Score < rows[best].Score {
					best = i
				}
			}
			order = append(order, rows[best].Route)
		}
		return order
	}

	t.Run("latency is untouched", func(t *testing.T) {
		rows := mkRows()
		objectiveScores(ObjectiveLatency, rows)
		for i, want := range []float64{0.010, 0.100, 0.020} {
			if rows[i].Score != want {
				t.Errorf("row %d score = %v, want %v (latency objective must not rewrite)", i, rows[i].Score, want)
			}
		}
	})

	t.Run("throughput ranks by Mbps", func(t *testing.T) {
		rows := mkRows()
		objectiveScores(ObjectiveThroughput, rows)
		if got := rank(rows); got[0] != b || got[1] != c || got[2] != a {
			t.Fatalf("throughput order = %v, want [b c a]", got)
		}
	})

	t.Run("throughput RTT tiebreak", func(t *testing.T) {
		rows := []RouteStatus{
			{Route: a, Score: 0.050, Mbps: 100},
			{Route: b, Score: 0.010, Mbps: 100},
		}
		objectiveScores(ObjectiveThroughput, rows)
		if got := rank(rows); got[0] != b {
			t.Fatalf("equal-Mbps order = %v, want the lower-RTT route first", got)
		}
	})

	t.Run("no burst data sorts after any data", func(t *testing.T) {
		rows := []RouteStatus{
			{Route: a, Score: 0.001, Mbps: 0},   // fastest RTT, never burst
			{Route: b, Score: 0.200, Mbps: 0.5}, // slow and thin, but measured
		}
		objectiveScores(ObjectiveThroughput, rows)
		if got := rank(rows); got[0] != b {
			t.Fatalf("order = %v: a route with burst data must outrank one without", got)
		}
	})

	t.Run("composite normalization", func(t *testing.T) {
		rows := mkRows()
		objectiveScores(ObjectiveComposite, rows)
		// bestLat = 10ms, bestMbps = 100: a = (1+10)/2, b = (10+1)/2,
		// c = (2+1.25)/2 — the balanced route wins.
		for i, want := range []float64{5.5, 5.5, 1.625} {
			if math.Abs(rows[i].Score-want) > 1e-9 {
				t.Errorf("composite row %d score = %v, want %v", i, rows[i].Score, want)
			}
		}
		if got := rank(rows); got[0] != c {
			t.Fatalf("composite order = %v, want c first", got)
		}
	})

	t.Run("composite degrades to latency without bursts", func(t *testing.T) {
		rows := []RouteStatus{
			{Route: a, Score: 0.010},
			{Route: b, Score: 0.100},
			{Route: c, Score: 0.020},
		}
		objectiveScores(ObjectiveComposite, rows)
		if got := rank(rows); got[0] != a || got[1] != c || got[2] != b {
			t.Fatalf("burst-less composite order = %v, want the latency order [a c b]", got)
		}
	})

	t.Run("down rows stay +Inf", func(t *testing.T) {
		for _, obj := range []Objective{ObjectiveThroughput, ObjectiveComposite} {
			rows := []RouteStatus{
				{Route: a, Score: math.Inf(1), Mbps: 500, Down: true},
				{Route: b, Score: 0.100, Mbps: 1},
			}
			objectiveScores(obj, rows)
			if !math.IsInf(rows[0].Score, 1) {
				t.Errorf("%v rewrote a down row's score to %v", obj, rows[0].Score)
			}
		}
	})
}

func containsRoute(rs []Route, r Route) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// TestStaleMbpsDecaysOutOfFirstPlace: a route whose bursts stop completing
// must not coast on its last good throughput — the estimate decays and the
// route falls out of first place under the throughput objective.
func TestStaleMbpsDecaysOutOfFirstPlace(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, _ := synthMonitor(t, Config{
		Fleet:         []string{relayA.First()},
		Alpha:         1,
		Objective:     ObjectiveThroughput,
		BurstDuration: 100 * time.Millisecond,
		Interval:      time.Second,
		StaleAfter:    3 * time.Second,
	})
	now := time.Unix(1000, 0)

	// Both routes burst once; the relay is 10x fatter and leads.
	feedRound(m, now,
		map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond},
		map[Route]float64{Direct: 10, relayA: 100})
	m.now = func() time.Time { return now }
	if ranked := m.Ranked(); ranked[0].Route != relayA {
		t.Fatalf("fat relay not first under throughput objective: %+v", ranked)
	}

	// RTT probes keep answering but only the direct path's bursts keep
	// completing; the relay's smoothed 100 Mbps must decay below the
	// direct path's fresh 10 Mbps.
	flipped := -1
	for i := 1; i <= 120; i++ {
		feedRound(m, now.Add(time.Duration(i)*time.Second),
			map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond},
			map[Route]float64{Direct: 10})
		m.now = func() time.Time { return now.Add(time.Duration(i) * time.Second) }
		if ranked := m.Ranked(); ranked[0].Route == Direct {
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Fatal("stale relay throughput never decayed out of first place")
	}
	// The decay is gradual: the relay must survive at least the staleness
	// horizon before losing the lead.
	if flipped < 3 {
		t.Fatalf("relay lost first place after %d rounds, inside the staleness horizon", flipped)
	}
}

// TestThroughputHysteresisHoldsMargin: the switch margin and K-round
// streak apply to the throughput objective exactly as to latency — a
// modest bandwidth lead must not flap traffic.
func TestThroughputHysteresisHoldsMargin(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, reg := synthMonitor(t, Config{
		Fleet:         []string{relayA.First()},
		Alpha:         1,
		Objective:     ObjectiveThroughput,
		BurstDuration: 100 * time.Millisecond,
		SwitchMargin:  0.1,
		SwitchRounds:  2,
	})
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }
	rtts := map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond}

	// Direct leads on throughput: it becomes the incumbent.
	feedRound(m, tick(), rtts, map[Route]float64{Direct: 100, relayA: 50})
	feedRound(m, tick(), rtts, map[Route]float64{Direct: 100, relayA: 50})
	if best, ok := m.Best(); !ok || best != Direct {
		t.Fatalf("initial best = %v (%v), want direct", best, ok)
	}

	// The relay pulls ahead, but within the 10% margin (1/105 vs 1/100):
	// no switch, however long it persists.
	for i := 0; i < 20; i++ {
		feedRound(m, tick(), rtts, map[Route]float64{Direct: 100, relayA: 105})
	}
	if best, _ := m.Best(); best != Direct {
		t.Fatalf("flapped to %v on a within-margin throughput lead", best)
	}
	if n := switches(reg); n != 0 {
		t.Fatalf("switches = %d inside the margin, want 0", n)
	}

	// A decisive lead (1.3x) sustained for K rounds: exactly one switch.
	for i := 0; i < 3; i++ {
		feedRound(m, tick(), rtts, map[Route]float64{Direct: 100, relayA: 130})
	}
	if best, _ := m.Best(); best != relayA {
		t.Fatalf("best = %v after a sustained 1.3x bandwidth lead, want %v", best, relayA)
	}
	if n := switches(reg); n != 1 {
		t.Fatalf("switches = %d, want exactly 1", n)
	}
}

// TestViewsDivergeByObjective: one Monitor, two objective views, two
// different committed routes over the same probe data — the per-listener
// objective seam.
func TestViewsDivergeByObjective(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, _ := synthMonitor(t, Config{
		Fleet:         []string{relayA.First()},
		Alpha:         1,
		BurstDuration: 100 * time.Millisecond,
	})
	tp := m.View(ObjectiveThroughput)
	if again := m.View(ObjectiveThroughput); again.v != tp.v {
		t.Fatal("repeated View(obj) did not share selection state")
	}
	if lat := m.View(ObjectiveLatency); lat.v != m.defView {
		t.Fatal("View(configured objective) is not the monitor's own view")
	}

	// Direct: low RTT, thin. Relay: 4x the RTT, 10x the bandwidth.
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		feedRound(m, now.Add(time.Duration(i)*time.Second),
			map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond},
			map[Route]float64{Direct: 10, relayA: 100})
	}
	m.now = func() time.Time { return now.Add(2 * time.Second) }
	if best, ok := m.Best(); !ok || best != Direct {
		t.Fatalf("latency view best = %v (%v), want direct", best, ok)
	}
	if best, ok := tp.Best(); !ok || best != relayA {
		t.Fatalf("throughput view best = %v (%v), want %v", best, ok, relayA)
	}
	if ranked := tp.Ranked(); len(ranked) == 0 || !ranked[0].Best || ranked[0].Route != relayA {
		t.Fatalf("throughput view table does not mark its own best: %+v", ranked)
	}

	// Pin overrides every view at once.
	m.Pin(relayA)
	if best, _ := m.Best(); best != relayA {
		t.Fatalf("latency view best = %v after Pin, want %v", best, relayA)
	}
	if best, _ := tp.Best(); best != relayA {
		t.Fatalf("throughput view best = %v after Pin, want %v", best, relayA)
	}
}
