package pathmon

import (
	"context"
	"net"
	"testing"
	"time"

	"cronets/internal/obs"
)

// blackholeDialer parks every dial until its context is cancelled — a
// filtered middlebox that never answers a SYN.
type blackholeDialer struct {
	dialing chan struct{}
}

func (d *blackholeDialer) DialContext(ctx context.Context, _, _ string) (net.Conn, error) {
	select {
	case d.dialing <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCloseFastWithBlackholedProbe is the regression test for the Close
// stall: in-flight probe dials must observe the monitor-lifetime context
// the moment Close cancels it, not ride out their ProbeTimeout. With a
// 30 s probe budget and a dial that never returns, Close must still come
// back in milliseconds.
func TestCloseFastWithBlackholedProbe(t *testing.T) {
	d := &blackholeDialer{dialing: make(chan struct{}, 8)}
	m, _ := synthMonitor(t, Config{
		Fleet:        []string{"relay-a:9000"},
		Interval:     time.Hour,
		ProbeTimeout: 30 * time.Second,
		Dialer:       d,
	})
	m.Start()
	<-d.dialing // a probe dial is parked in the blackhole

	start := time.Now()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Close took %v with a blackholed probe in flight, want < 100ms", elapsed)
	}
}

// TestBurstSchedulingRoundRobin: with K burst slots per round, due routes
// share them round-robin — every route bursts on a fair cadence and no
// round pays more than K burst windows.
func TestBurstSchedulingRoundRobin(t *testing.T) {
	m, _ := synthMonitor(t, Config{
		Fleet:             []string{"r1:1", "r2:2", "r3:3"},
		BurstDuration:     100 * time.Millisecond,
		BurstEvery:        1,
		MaxBurstsPerRound: 2,
	})
	counts := make(map[Route]int)
	// 4 routes, 2 slots/round: over 4 rounds every route bursts exactly
	// twice.
	for r := 0; r < 4; r++ {
		m.mu.Lock()
		due := m.scheduleBurstsLocked(m.order)
		m.roundsDone++
		m.mu.Unlock()
		if len(due) != 2 {
			t.Fatalf("round %d scheduled %d bursts, want 2", r, len(due))
		}
		for p := range due {
			counts[p]++
		}
	}
	for _, p := range m.order {
		if counts[p] != 2 {
			t.Errorf("route %v burst %d time(s) over 4 rounds, want exactly 2", p, counts[p])
		}
	}
}

// TestBurstSchedulingCadence: BurstEvery spaces one route's bursts N
// rounds apart even when slots are free.
func TestBurstSchedulingCadence(t *testing.T) {
	m, _ := synthMonitor(t, Config{
		Fleet:             []string{"r1:1"},
		BurstDuration:     100 * time.Millisecond,
		BurstEvery:        3,
		MaxBurstsPerRound: 4,
	})
	var burstRounds []int64
	for r := int64(1); r <= 9; r++ {
		m.mu.Lock()
		due := m.scheduleBurstsLocked(m.order)
		m.roundsDone++
		m.mu.Unlock()
		if len(due) > 0 {
			burstRounds = append(burstRounds, r)
		}
	}
	// lastBurstRound starts at 0, so the first slot lands on round
	// BurstEvery and repeats every BurstEvery after.
	want := []int64{3, 6, 9}
	if len(burstRounds) != len(want) {
		t.Fatalf("burst rounds = %v, want %v", burstRounds, want)
	}
	for i := range want {
		if burstRounds[i] != want[i] {
			t.Fatalf("burst rounds = %v, want %v", burstRounds, want)
		}
	}
}

// TestBurstAccounting: integrate counts attempts and failures, folds
// successful bursts into the smoothed estimate, and exposes Mbps +
// LastBurst in the ranked table.
func TestBurstAccounting(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, reg := synthMonitor(t, Config{
		Fleet:         []string{relayA.First()},
		Alpha:         0.5,
		BurstDuration: 100 * time.Millisecond,
	})
	now := time.Unix(1000, 0)
	rtts := map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond}

	feedRound(m, now, rtts, map[Route]float64{Direct: 100, relayA: -1}) // relay burst truncated
	feedRound(m, now.Add(time.Second), rtts, map[Route]float64{Direct: 50})

	if got := reg.Counter("cronets_pathmon_bursts_total", "").Value(); got != 3 {
		t.Errorf("bursts_total = %d, want 3", got)
	}
	if got := reg.Counter("cronets_pathmon_burst_failures_total", "").Value(); got != 1 {
		t.Errorf("burst_failures_total = %d, want 1", got)
	}

	m.now = func() time.Time { return now.Add(time.Second) }
	for _, st := range m.Ranked() {
		switch st.Route {
		case Direct:
			// Alpha=0.5: 100 then 50 smooths to 75.
			if st.Mbps != 75 {
				t.Errorf("direct Mbps = %v, want 75 (EWMA of 100, 50)", st.Mbps)
			}
			if !st.LastBurst.Equal(now.Add(time.Second)) {
				t.Errorf("direct LastBurst = %v, want the second round's time", st.LastBurst)
			}
		case relayA:
			// Its only burst failed: no sample, no estimate, no timestamp.
			if st.Mbps != 0 || !st.LastBurst.IsZero() {
				t.Errorf("failed-burst relay advertises Mbps=%v LastBurst=%v", st.Mbps, st.LastBurst)
			}
		}
	}

	// The failure is visible in the event stream.
	var sawFail bool
	for _, e := range reg.Events().Snapshot() {
		if e.Type == obs.EventBurst && e.Component == "pathmon" {
			sawFail = sawFail || e.Detail != ""
		}
	}
	if !sawFail {
		t.Error("no burst event recorded")
	}
}
