package pathmon

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"cronets/internal/measure"
	"cronets/internal/obs"
	"cronets/internal/relay"
)

// synthMonitor builds a Monitor for synthetic-series tests: no sockets,
// a hand-cranked clock, Alpha=1 (estimate = last sample) unless the test
// overrides, and an obs registry so switch counts are assertable.
func synthMonitor(t *testing.T, cfg Config) (*Monitor, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Dest = "192.0.2.1:9"
	cfg.Obs = reg
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, reg
}

func switches(reg *obs.Registry) int64 {
	return reg.Counter("cronets_pathmon_switches_total", "").Value()
}

// round feeds one synthetic probe round. rtts maps path -> RTT; a
// negative RTT means the probe failed; absent paths are not probed.
func round(m *Monitor, now time.Time, rtts map[Route]time.Duration) {
	var results []probeResult
	for p, rtt := range rtts {
		if rtt < 0 {
			results = append(results, probeResult{route: p, err: context.DeadlineExceeded})
		} else {
			results = append(results, probeResult{route: p, rtt: rtt})
		}
	}
	m.integrate(results, now)
}

func TestHysteresisNoFlapAtMarginBoundary(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, reg := synthMonitor(t, Config{
		Fleet:        []string{relayA.First()},
		Alpha:        1,
		SwitchMargin: 0.1,
		SwitchRounds: 2,
	})
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }

	// Two warm-up rounds make direct the incumbent.
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 120 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 120 * time.Millisecond})
	if best, ok := m.Best(); !ok || best != Direct {
		t.Fatalf("initial best = %v (%v), want direct", best, ok)
	}
	if n := switches(reg); n != 0 {
		t.Fatalf("initial selection counted as %d switch(es)", n)
	}

	// The relay now leads, but inside the 10%% margin (91 vs 100): the
	// monitor must hold the incumbent no matter how long this persists.
	for i := 0; i < 25; i++ {
		round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 91 * time.Millisecond})
	}
	if best, _ := m.Best(); best != Direct {
		t.Fatalf("flapped to %v on a within-margin lead", best)
	}
	if n := switches(reg); n != 0 {
		t.Fatalf("switches = %d, want 0 inside the margin", n)
	}

	// Beat the margin for one round short of SwitchRounds, then regress:
	// still no switch. (With Alpha=1 the first round at a new value
	// carries a variance spike, so the streak only starts on the second
	// consecutive 70 ms round — one short of K=2 — before 95 ms resets it.)
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 70 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 70 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 95 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 95 * time.Millisecond})
	if n := switches(reg); n != 0 {
		t.Fatalf("switched after a below-K streak (switches = %d)", n)
	}
	if best, _ := m.Best(); best != Direct {
		t.Fatalf("best = %v after a below-K streak, want direct", best)
	}

	// Beat the margin for K consecutive rounds: exactly one switch.
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 70 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 70 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 100 * time.Millisecond, relayA: 70 * time.Millisecond})
	if best, _ := m.Best(); best != relayA {
		t.Fatalf("best = %v after a sustained margin beat, want %v", best, relayA)
	}
	if n := switches(reg); n != 1 {
		t.Fatalf("switches = %d, want exactly 1", n)
	}
}

func TestHysteresisBoundedConvergenceAfterStep(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, reg := synthMonitor(t, Config{
		Fleet:        []string{relayA.First()},
		Alpha:        0.3,
		SwitchMargin: 0.1,
		SwitchRounds: 3,
	})
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }

	// Steady state: direct clearly best.
	for i := 0; i < 5; i++ {
		round(m, tick(), map[Route]time.Duration{Direct: 20 * time.Millisecond, relayA: 50 * time.Millisecond})
	}
	if best, _ := m.Best(); best != Direct {
		t.Fatalf("steady-state best = %v, want direct", best)
	}

	// Step change: the direct path degrades 10x. The EWMA must converge
	// and hysteresis clear within a bounded number of rounds.
	const maxRounds = 10
	switched := -1
	for i := 1; i <= maxRounds; i++ {
		round(m, tick(), map[Route]time.Duration{Direct: 200 * time.Millisecond, relayA: 50 * time.Millisecond})
		if best, _ := m.Best(); best == relayA {
			switched = i
			break
		}
	}
	if switched < 0 {
		t.Fatalf("no switch within %d rounds of a 10x step degradation", maxRounds)
	}
	// K=3 rounds of streak are mandatory; EWMA lag may add a few more.
	if switched < 3 {
		t.Fatalf("switched after %d rounds, inside the K=3 hysteresis window", switched)
	}
	if n := switches(reg); n != 1 {
		t.Fatalf("switches = %d, want 1", n)
	}
}

func TestIncumbentDownSwitchesImmediately(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, reg := synthMonitor(t, Config{
		Fleet:         []string{relayA.First()},
		Alpha:         1,
		SwitchRounds:  5, // hysteresis must NOT delay a dead-incumbent switch
		FailThreshold: 2,
	})
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }

	round(m, tick(), map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond})
	if best, _ := m.Best(); best != Direct {
		t.Fatalf("best = %v, want direct", best)
	}

	// Two consecutive probe failures hit FailThreshold: immediate switch.
	round(m, tick(), map[Route]time.Duration{Direct: -1, relayA: 40 * time.Millisecond})
	round(m, tick(), map[Route]time.Duration{Direct: -1, relayA: 40 * time.Millisecond})
	if best, _ := m.Best(); best != relayA {
		t.Fatalf("best = %v after incumbent died, want %v", best, relayA)
	}
	if n := switches(reg); n != 1 {
		t.Fatalf("switches = %d, want 1", n)
	}

	// One success brings the direct path back into contention, but it
	// must re-earn the lead through hysteresis, not snap back.
	round(m, tick(), map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: 40 * time.Millisecond})
	if best, _ := m.Best(); best != relayA {
		t.Fatalf("snapped back to %v without hysteresis", best)
	}
}

func TestStalenessInflatesScore(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, _ := synthMonitor(t, Config{
		Fleet:      []string{relayA.First()},
		Alpha:      1,
		Interval:   time.Second,
		StaleAfter: 3 * time.Second,
	})
	now := time.Unix(1000, 0)

	// Relay measured once, slightly better than direct; then only the
	// direct path keeps answering.
	round(m, now, map[Route]time.Duration{Direct: 50 * time.Millisecond, relayA: 40 * time.Millisecond})
	for i := 1; i <= 30; i++ {
		round(m, now.Add(time.Duration(i)*time.Second), map[Route]time.Duration{Direct: 50 * time.Millisecond})
	}
	m.now = func() time.Time { return now.Add(30 * time.Second) }
	ranked := m.Ranked()
	if ranked[0].Route != Direct {
		t.Fatalf("fresh path ranked %v; stale relay still leads: %+v", ranked[0].Route, ranked)
	}
	if ranked[1].Route != relayA || ranked[1].Score <= ranked[0].Score {
		t.Fatalf("stale relay score did not inflate: %+v", ranked)
	}
}

func TestRankedMarksDownPaths(t *testing.T) {
	relayA := MakeRoute("relay-a:9000")
	m, _ := synthMonitor(t, Config{Fleet: []string{relayA.First()}, Alpha: 1, FailThreshold: 2})
	now := time.Unix(1000, 0)
	round(m, now, map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: -1})
	round(m, now.Add(time.Second), map[Route]time.Duration{Direct: 10 * time.Millisecond, relayA: -1})
	m.now = func() time.Time { return now.Add(time.Second) }
	ranked := m.Ranked()
	if ranked[0].Route != Direct || ranked[0].Down {
		t.Fatalf("direct should rank first and be up: %+v", ranked)
	}
	if !ranked[1].Down || !math.IsInf(ranked[1].Score, 1) {
		t.Fatalf("failed relay should be down with +Inf score: %+v", ranked[1])
	}
}

// TestLiveProbing exercises the real socket path: a measure server, one
// live relay, one dead relay. The round must complete despite the dead
// relay and produce estimates for both usable paths.
func TestLiveProbing(t *testing.T) {
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := measure.NewServer(srvLn)
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rl := relay.New(relayLn, relay.Config{})
	go func() { _ = rl.Serve() }()
	defer rl.Close()

	deadAddr := "127.0.0.1:1"
	reg := obs.NewRegistry()
	m, err := New(Config{
		Dest:         srvLn.Addr().String(),
		Fleet:        []string{relayLn.Addr().String(), deadAddr},
		Interval:     time.Second,
		ProbeTimeout: 2 * time.Second,
		ProbeCount:   3,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	start := time.Now()
	m.ProbeRound(context.Background())
	m.ProbeRound(context.Background())
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("2 probe rounds took %v; a dead relay stalled the round", elapsed)
	}

	if _, ok := m.Best(); !ok {
		t.Fatal("no best path selected after live rounds")
	}
	var sawDirect, sawRelay, sawDead bool
	for _, st := range m.Ranked() {
		switch {
		case st.Route == Direct:
			sawDirect = st.Samples > 0 && !st.Down
		case st.Route.First() == deadAddr:
			sawDead = st.Down
		default:
			sawRelay = st.Samples > 0 && !st.Down
		}
	}
	if !sawDirect || !sawRelay || !sawDead {
		t.Fatalf("ranked table wrong: direct up=%v relay up=%v dead down=%v\n%+v",
			sawDirect, sawRelay, sawDead, m.Ranked())
	}
	var failures int64
	for _, reason := range []string{"dial", "reject", "timeout"} {
		failures += reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", reason), "").Value()
	}
	if failures == 0 {
		t.Fatal("dead relay produced no probe failures")
	}
}

// TestSubscribeNotifiesOnRoundsAndPin: subscribers get a coalesced wakeup
// after every integrated round and every Pin, and none after
// unsubscribing.
func TestSubscribeNotifiesOnRoundsAndPin(t *testing.T) {
	m, _ := synthMonitor(t, Config{Fleet: []string{"r1:1"}})
	ch, unsub := m.Subscribe()
	now := time.Unix(0, 0)

	drain := func() bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}

	round(m, now, map[Route]time.Duration{Direct: 10 * time.Millisecond})
	if !drain() {
		t.Fatal("no notification after an integrated round")
	}
	if drain() {
		t.Fatal("more than one buffered notification (channel must coalesce)")
	}

	// Two quick rounds coalesce into at least one wakeup.
	round(m, now.Add(time.Second), map[Route]time.Duration{Direct: 10 * time.Millisecond})
	round(m, now.Add(2*time.Second), map[Route]time.Duration{Direct: 10 * time.Millisecond})
	if !drain() {
		t.Fatal("no notification after two rounds")
	}

	for drain() {
	}
	m.Pin(MakeRoute("r1:1"))
	if !drain() {
		t.Fatal("no notification after Pin")
	}

	unsub()
	round(m, now.Add(3*time.Second), map[Route]time.Duration{Direct: 10 * time.Millisecond})
	if drain() {
		t.Fatal("notification delivered after unsubscribe")
	}
}
