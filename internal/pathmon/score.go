package pathmon

// Route scoring: per-route smoothed RTT + variance in the style of a TCP
// RTO estimator (and of Jonglez et al.'s delay-based routing metric),
// plus a smoothed throughput estimate fed by the optional bulk bursts —
// CRONets' headline metric is throughput gain, so ranking can follow
// either axis (or a normalized blend) via the pluggable Objective.
// Staleness inflation keeps both estimates honest: a route that stops
// producing samples cannot coast on an old good score, and a
// consecutive-failure threshold takes a dead route out of contention
// entirely.

import (
	"fmt"
	"math"
	"time"
)

// Objective selects the routing metric that orders the ranked table and
// feeds the hysteresis margin test. The zero value is ObjectiveLatency —
// the delay-based metric that was previously the only behavior.
type Objective uint8

const (
	// ObjectiveLatency ranks by srtt + 4*rttvar with staleness inflation
	// — the interactive-traffic metric (Jonglez et al.).
	ObjectiveLatency Objective = iota
	// ObjectiveThroughput ranks by smoothed burst Mbps (staleness-decayed),
	// with the latency metric as a tiebreak — the bulk-transfer metric the
	// paper's ICR results are about. Routes with no burst data rank after
	// every route that has some; it needs Config.BurstDuration > 0 to be
	// meaningful.
	ObjectiveThroughput
	// ObjectiveComposite blends both axes, normalized across the current
	// table: each usable route scores (latency/bestLatency +
	// bestMbps/mbps)/2, so 1.0 is a route that is best on both axes.
	// With no burst data anywhere it degrades to the latency ranking.
	ObjectiveComposite
)

// String returns the objective's flag/wire name.
func (o Objective) String() string {
	switch o {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveThroughput:
		return "throughput"
	case ObjectiveComposite:
		return "composite"
	default:
		return fmt.Sprintf("objective(%d)", uint8(o))
	}
}

// ParseObjective resolves a flag/wire name back to its Objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "latency":
		return ObjectiveLatency, nil
	case "throughput":
		return ObjectiveThroughput, nil
	case "composite":
		return ObjectiveComposite, nil
	}
	return 0, fmt.Errorf("pathmon: unknown objective %q (want latency, throughput, or composite)", s)
}

// mbpsFloor is the smallest effective throughput the scorer
// distinguishes: a decayed estimate below it counts as "no data", which
// bounds the throughput objective's 1/Mbps term at noBurstScore.
const mbpsFloor = 1e-3

// noBurstScore is the throughput-objective base score of a route with no
// (or fully decayed) burst data — strictly worse than any route with a
// usable estimate, so data-less routes sort last among the usable and
// fall back to the latency tiebreak among themselves.
const noBurstScore = 1 / mbpsFloor

// tpTieWeight scales the latency metric's contribution to the
// throughput objective: ~1e-4 per second of latency score keeps it a
// pure tiebreak — it only orders routes whose bandwidth estimates are
// essentially equal, and can never outvote a real Mbps difference.
const tpTieWeight = 1e-4

// pathState is one candidate route's running estimate. All fields are
// guarded by the Monitor's mutex.
type pathState struct {
	route Route

	// srtt and rttvar are EWMA estimates of the route RTT and its mean
	// absolute deviation, in seconds.
	srtt, rttvar float64
	// samples counts successful probe rounds folded into the estimate.
	samples int
	// fails counts consecutive failed probe rounds; FailThreshold of them
	// mark the route down until the next success.
	fails int
	// lastSample is when the estimate last absorbed a success.
	lastSample time.Time
	// smoothedMbps is the EWMA throughput estimate fed by the periodic
	// bursts (0 until the first burst completes).
	smoothedMbps float64
	// mbpsSamples counts bursts folded into smoothedMbps.
	mbpsSamples int
	// lastBurst is when the throughput estimate last absorbed a
	// completed burst — the age /debug/paths shows and the staleness
	// decay runs on.
	lastBurst time.Time
	// lastBurstRound is the round number the route last spent a burst
	// slot (scheduled, whether or not it completed) — the BurstEvery
	// cadence counter.
	lastBurstRound int64
}

// observe folds one successful RTT sample into the estimate.
func (s *pathState) observe(rtt time.Duration, alpha float64, now time.Time) {
	v := rtt.Seconds()
	if s.samples == 0 {
		s.srtt = v
		s.rttvar = v / 2
	} else {
		dev := math.Abs(v - s.srtt)
		s.rttvar = (1-alpha)*s.rttvar + alpha*dev
		s.srtt = (1-alpha)*s.srtt + alpha*v
	}
	s.samples++
	s.fails = 0
	s.lastSample = now
}

// observeBurst folds one completed throughput burst into the smoothed
// estimate.
func (s *pathState) observeBurst(mbps, alpha float64, now time.Time) {
	if s.mbpsSamples == 0 {
		s.smoothedMbps = mbps
	} else {
		s.smoothedMbps = (1-alpha)*s.smoothedMbps + alpha*mbps
	}
	s.mbpsSamples++
	s.lastBurst = now
}

// observeFailure records one failed probe round.
func (s *pathState) observeFailure() { s.fails++ }

// down reports whether the route is out of contention: never successfully
// probed, or failing consecutively past the threshold.
func (s *pathState) down(failThreshold int) bool {
	return s.samples == 0 || s.fails >= failThreshold
}

// score is the route's latency metric in seconds — lower is better. The
// base is srtt + 4*rttvar (penalizing jittery routes like an RTO
// estimator); past staleAfter without a fresh sample the score inflates
// linearly with age, so a silent route decays out of first place instead
// of freezing its last good estimate.
func (s *pathState) score(now time.Time, staleAfter time.Duration, failThreshold int) float64 {
	if s.down(failThreshold) {
		return math.Inf(1)
	}
	base := s.srtt + 4*s.rttvar
	if staleAfter > 0 {
		if age := now.Sub(s.lastSample); age > staleAfter {
			base *= 1 + float64(age-staleAfter)/float64(staleAfter)
		}
	}
	return base
}

// effMbps is the route's effective throughput estimate: the smoothed
// burst Mbps, decayed past staleAfter by the same linear-age factor the
// latency score inflates by — a route whose bursts stop completing (the
// link died, the relay rate-limits, the burst budget keeps failing)
// stops advertising its last good number and decays out of first place.
// 0 means no usable data.
func (s *pathState) effMbps(now time.Time, staleAfter time.Duration) float64 {
	if s.mbpsSamples == 0 {
		return 0
	}
	v := s.smoothedMbps
	if staleAfter > 0 {
		if age := now.Sub(s.lastBurst); age > staleAfter {
			v /= 1 + float64(age-staleAfter)/float64(staleAfter)
		}
	}
	if v < mbpsFloor {
		return 0
	}
	return v
}

// objectiveScores rewrites each row's Score (currently the latency
// metric) in place for the given objective, using the whole table for
// the composite normalization. Down rows keep +Inf under every
// objective.
func objectiveScores(obj Objective, rows []RouteStatus) {
	switch obj {
	case ObjectiveLatency:
		return
	case ObjectiveThroughput:
		for i := range rows {
			if rows[i].Down {
				continue
			}
			lat := rows[i].Score
			if rows[i].Mbps > 0 {
				rows[i].Score = 1/rows[i].Mbps + lat*tpTieWeight
			} else {
				rows[i].Score = noBurstScore + lat*tpTieWeight
			}
		}
	case ObjectiveComposite:
		bestLat, bestMbps := math.Inf(1), 0.0
		for i := range rows {
			if rows[i].Down {
				continue
			}
			if rows[i].Score < bestLat {
				bestLat = rows[i].Score
			}
			if rows[i].Mbps > bestMbps {
				bestMbps = rows[i].Mbps
			}
		}
		for i := range rows {
			if rows[i].Down {
				continue
			}
			latNorm := 1.0
			if bestLat > 0 && !math.IsInf(bestLat, 1) {
				latNorm = rows[i].Score / bestLat
			}
			// No burst data anywhere: tpNorm is 1 for every route and the
			// composite degrades to the (normalized) latency ranking.
			tpNorm := 1.0
			if bestMbps > 0 {
				mbps := rows[i].Mbps
				if mbps < mbpsFloor {
					mbps = mbpsFloor
				}
				tpNorm = bestMbps / mbps
			}
			rows[i].Score = (latNorm + tpNorm) / 2
		}
	}
}

// RouteStatus is one row of the ranked route table.
type RouteStatus struct {
	Route Route
	// Score is the active objective's routing metric — lower is better,
	// +Inf when down. Latency: seconds. Throughput: 1/Mbps plus a latency
	// epsilon. Composite: a normalized blend with 1.0 = best on both axes.
	Score float64
	// SRTT and RTTVar are the smoothed RTT estimate and its deviation.
	SRTT, RTTVar time.Duration
	// Mbps is the smoothed throughput-burst estimate after staleness
	// decay (0 if no bursts have completed, or the estimate fully aged
	// out).
	Mbps float64
	// LastBurst is when the throughput estimate last absorbed a completed
	// burst (zero if never).
	LastBurst time.Time
	// Samples is how many successful probe rounds the estimate has seen.
	Samples int
	// Fails is the current consecutive-failure streak.
	Fails int
	// Down reports the route is out of contention.
	Down bool
	// Best marks the route currently carrying new connections.
	Best bool
	// LastSample is when the route last answered a probe.
	LastSample time.Time
}
