package pathmon

// Path scoring: per-path smoothed RTT + variance in the style of a TCP
// RTO estimator (and of Jonglez et al.'s delay-based routing metric),
// with staleness inflation so a path that stops producing samples cannot
// coast on an old good score, and a consecutive-failure threshold that
// takes a dead path out of contention entirely.

import (
	"math"
	"time"
)

// pathState is one candidate route's running estimate. All fields are
// guarded by the Monitor's mutex.
type pathState struct {
	route Route

	// srtt and rttvar are EWMA estimates of the path RTT and its mean
	// absolute deviation, in seconds.
	srtt, rttvar float64
	// samples counts successful probe rounds folded into the estimate.
	samples int
	// fails counts consecutive failed probe rounds; FailThreshold of them
	// mark the path down until the next success.
	fails int
	// lastSample is when the estimate last absorbed a success.
	lastSample time.Time
	// lastMbps is the most recent optional throughput-burst result
	// (0 when bursts are disabled or none has completed).
	lastMbps float64
}

// observe folds one successful RTT sample into the estimate.
func (s *pathState) observe(rtt time.Duration, alpha float64, now time.Time) {
	v := rtt.Seconds()
	if s.samples == 0 {
		s.srtt = v
		s.rttvar = v / 2
	} else {
		dev := math.Abs(v - s.srtt)
		s.rttvar = (1-alpha)*s.rttvar + alpha*dev
		s.srtt = (1-alpha)*s.srtt + alpha*v
	}
	s.samples++
	s.fails = 0
	s.lastSample = now
}

// observeFailure records one failed probe round.
func (s *pathState) observeFailure() { s.fails++ }

// down reports whether the path is out of contention: never successfully
// probed, or failing consecutively past the threshold.
func (s *pathState) down(failThreshold int) bool {
	return s.samples == 0 || s.fails >= failThreshold
}

// score is the path's routing metric in seconds — lower is better. The
// base is srtt + 4*rttvar (penalizing jittery paths like an RTO
// estimator); past staleAfter without a fresh sample the score inflates
// linearly with age, so a silent path decays out of first place instead
// of freezing its last good estimate.
func (s *pathState) score(now time.Time, staleAfter time.Duration, failThreshold int) float64 {
	if s.down(failThreshold) {
		return math.Inf(1)
	}
	base := s.srtt + 4*s.rttvar
	if staleAfter > 0 {
		if age := now.Sub(s.lastSample); age > staleAfter {
			base *= 1 + float64(age-staleAfter)/float64(staleAfter)
		}
	}
	return base
}

// RouteStatus is one row of the ranked route table.
type RouteStatus struct {
	Route Route
	// Score is the current routing metric in seconds (+Inf when down).
	Score float64
	// SRTT and RTTVar are the smoothed RTT estimate and its deviation.
	SRTT, RTTVar time.Duration
	// Mbps is the latest throughput-burst result (0 if none).
	Mbps float64
	// Samples is how many successful probe rounds the estimate has seen.
	Samples int
	// Fails is the current consecutive-failure streak.
	Fails int
	// Down reports the route is out of contention.
	Down bool
	// Best marks the route currently carrying new connections.
	Best bool
	// LastSample is when the route last answered a probe.
	LastSample time.Time
}
