package pathmon

import (
	"context"
	"net"
	"testing"
	"time"

	"cronets/internal/measure"
	"cronets/internal/relay"
)

// benchMonitor builds a monitor over a live loopback topology (one
// measure server, one relay) so ProbeRound exercises real sockets.
func benchMonitor(b *testing.B, burst time.Duration) *Monitor {
	b.Helper()
	destLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	b.Cleanup(func() { _ = dest.Close() })

	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	rl := relay.New(relayLn, relay.Config{})
	go rl.Serve() //nolint:errcheck
	b.Cleanup(func() { _ = rl.Close() })

	m, err := New(Config{
		Dest:          destLn.Addr().String(),
		Fleet:         []string{relayLn.Addr().String()},
		ProbeTimeout:  2 * time.Second,
		ProbeCount:    2,
		BurstDuration: burst,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = m.Close() })
	return m
}

// BenchmarkProbeRound prices one full probe round (direct + one relay,
// 2 echo probes each) with bursts off, and the same round paying its
// burst windows — the control plane's recurring cost, and the overhead
// the burst cadence adds to it. Bursts run concurrently with the other
// routes' probes, so the with-burst round costs roughly one burst window
// plus setup, not one window per route.
func BenchmarkProbeRound(b *testing.B) {
	b.Run("rtt-only", func(b *testing.B) {
		m := benchMonitor(b, 0)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ProbeRound(ctx)
		}
	})
	b.Run("with-burst-10ms", func(b *testing.B) {
		m := benchMonitor(b, 10*time.Millisecond)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ProbeRound(ctx)
		}
	})
}
