package pathmon

// Route is the one path representation every layer shares: an ordered
// list of relay CONNECT endpoints, canonicalized to a single interned
// key. The zero value is the direct Internet path; one hop is a plain
// relay path; two or more hops are a chain. Because the key is one
// string, Route is comparable and keys the monitor's state table, the
// gateway's dial attribution, and the pool's warm set without any
// per-kind special cases — depth is data, not type structure.

import (
	"strings"
	"sync"
)

// hopSep joins hop endpoints into the canonical route key. The unit
// separator cannot appear in a host:port, so the mapping between a hop
// list and its key is bijective.
const hopSep = "\x1f"

// hopLists interns each route key's decoded hop slice, so Hops() on a
// previously constructed Route returns a shared slice without
// re-splitting. Routes are combinations of a small relay fleet, so the
// table stays small for the life of the process.
var hopLists sync.Map // key (string) -> []string

// Route identifies one candidate route to the destination: zero hops
// (direct), one relay, or an N-hop relay chain. Route is comparable (it
// keys the monitor's state table); construct non-direct routes with
// MakeRoute. Callers must not mutate the slice returned by Hops — it is
// shared via the intern table.
type Route struct {
	key string
}

// Direct is the no-relay route.
var Direct = Route{}

// MakeRoute builds the route crossing the given relay endpoints in
// order. Empty hop strings are dropped; no hops at all yields Direct.
func MakeRoute(hops ...string) Route {
	n := 0
	for _, h := range hops {
		if h != "" {
			n++
		}
	}
	if n == 0 {
		return Route{}
	}
	clean := make([]string, 0, n)
	for _, h := range hops {
		if h != "" {
			clean = append(clean, h)
		}
	}
	key := strings.Join(clean, hopSep)
	hopLists.LoadOrStore(key, clean)
	return Route{key: key}
}

// IsDirect reports whether the route skips the overlay.
func (r Route) IsDirect() bool { return r.key == "" }

// IsChain reports whether the route crosses more than one relay.
func (r Route) IsChain() bool { return strings.Contains(r.key, hopSep) }

// NumHops returns how many relays the route crosses (0 for direct).
func (r Route) NumHops() int {
	if r.key == "" {
		return 0
	}
	return strings.Count(r.key, hopSep) + 1
}

// Hops returns the ordered relay endpoints the route crosses (nil for
// direct). The slice is shared — treat it as read-only.
func (r Route) Hops() []string {
	if r.key == "" {
		return nil
	}
	if hops, ok := hopLists.Load(r.key); ok {
		return hops.([]string)
	}
	hops := strings.Split(r.key, hopSep)
	actual, _ := hopLists.LoadOrStore(r.key, hops)
	return actual.([]string)
}

// First returns the route's first-hop relay endpoint ("" for direct) —
// the endpoint a warm connection pool pre-establishes TCP to.
func (r Route) First() string {
	if r.key == "" {
		return ""
	}
	if i := strings.IndexByte(r.key, hopSep[0]); i >= 0 {
		return r.key[:i]
	}
	return r.key
}

// Kind returns the route's class: "direct", "relay", or "chain".
func (r Route) Kind() string {
	switch r.NumHops() {
	case 0:
		return "direct"
	case 1:
		return "relay"
	default:
		return "chain"
	}
}

// String returns a display name: "direct", "via <relay>", or
// "via <relay>><relay>>..." for every hop in order.
func (r Route) String() string {
	if r.key == "" {
		return "direct"
	}
	return "via " + strings.Join(r.Hops(), ">")
}
