package pathmon

// Objective views: one Monitor, several rankings. A View is a cheap
// handle over the monitor's shared probe table that ranks it under its
// own objective with its own hysteresis state — so a bulk listener
// (throughput objective) and an interactive listener (latency objective)
// share one probe budget, one burst cadence, and one event stream, yet
// each commits to its own best route. A View satisfies the same
// Best/Ranked/Subscribe contract as the Monitor itself (the gateway's
// Ranker seam), so a gateway cannot tell which it was given.

// View is one objective's independently damped ranking over a Monitor's
// probe data.
type View struct {
	m *Monitor
	v *rankView
}

// View returns the monitor's ranking under obj, creating it on first
// use. The view for the monitor's configured objective is the monitor's
// own (Monitor.Best and a View of the same objective always agree).
// A view created mid-flight starts unselected and adopts its initial
// best on the next integrated round; creating it before Start avoids
// the gap. Repeated calls for one objective share selection state.
func (m *Monitor) View(obj Objective) *View {
	m.mu.Lock()
	defer m.mu.Unlock()
	rv, ok := m.viewByObj[obj]
	if !ok {
		rv = &rankView{obj: obj}
		m.viewByObj[obj] = rv
		m.views = append(m.views, rv)
	}
	return &View{m: m, v: rv}
}

// Objective returns the view's ranking objective.
func (vw *View) Objective() Objective { return vw.v.obj }

// Best returns the view's current best route under its objective and
// whether one has been selected yet.
func (vw *View) Best() (Route, bool) {
	vw.m.mu.Lock()
	defer vw.m.mu.Unlock()
	return vw.v.best, vw.v.chosen
}

// Ranked returns the route table sorted best-first under the view's
// objective. Down routes sort last (score +Inf).
func (vw *View) Ranked() []RouteStatus {
	vw.m.mu.Lock()
	defer vw.m.mu.Unlock()
	return vw.m.rankForLocked(vw.v, vw.m.now())
}

// Subscribe registers for the monitor's ranking-change wakeups (all
// views share the probe rounds, so they share the notification stream).
func (vw *View) Subscribe() (<-chan struct{}, func()) {
	return vw.m.Subscribe()
}
