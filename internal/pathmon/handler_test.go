package pathmon

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPathsHandlerJSON(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	b := MakeRoute("relay-b:9000")
	m, _ := synthMonitor(t, Config{
		Fleet:         []string{a.First(), b.First()},
		Alpha:         1,
		MaxHops:       2,
		FailThreshold: 1,
	})
	now := time.Unix(1000, 0)
	feedRound(m, now, map[Route]time.Duration{
		Direct: 10 * time.Millisecond,
		a:      30 * time.Millisecond,
		b:      -1, // down: its score is +Inf and must render as null
	}, map[Route]float64{a: 42})
	m.now = func() time.Time { return now }

	rec := httptest.NewRecorder()
	m.PathsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/paths", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var rows []PathRow
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	byPath := make(map[string]PathRow, len(rows))
	for _, r := range rows {
		byPath[r.Path] = r
	}
	direct, ok := byPath["direct"]
	if !ok {
		t.Fatalf("no direct row in %s", rec.Body.String())
	}
	if direct.Kind != "direct" || direct.State != "best" || direct.ScoreMs == nil {
		t.Errorf("direct row = %+v, want kind=direct state=best with a score", direct)
	}
	if direct.LastProbeAgeMs == nil {
		t.Error("direct row has no last-probe age after a successful round")
	}
	down, ok := byPath[b.String()]
	if !ok {
		t.Fatalf("no row for %s in %s", b, rec.Body.String())
	}
	if down.State != "down" || down.ScoreMs != nil {
		t.Errorf("down row = %+v, want state=down with null score", down)
	}
	relayRow, ok := byPath[a.String()]
	if !ok || relayRow.Kind != "relay" || len(relayRow.Hops) != 1 {
		t.Errorf("relay row = %+v (present=%v), want kind=relay with 1 hop", relayRow, ok)
	}
	if relayRow.Mbps != 42 || relayRow.LastBurstAgeMs == nil {
		t.Errorf("relay row = %+v, want mbps=42 with a last-burst age", relayRow)
	}
	if direct.LastBurstAgeMs != nil {
		t.Errorf("direct row advertises a burst age without any burst: %+v", direct)
	}
}
