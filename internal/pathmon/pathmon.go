// Package pathmon is the overlay control plane's measurement half: a
// background prober that, for one (client, destination) pair and a fleet
// of candidate relays, periodically measures the direct path and each
// overlay route with internal/measure echo probes (plus optional
// short throughput bursts), maintains per-route EWMA/variance scores with
// staleness decay, and publishes a ranked route table. Switching is damped
// by hysteresis: a challenger must beat the incumbent by a configurable
// margin for K consecutive rounds before traffic moves, so transient RTT
// wobble cannot flap the overlay — the CRONets provisioning service's
// "which cloud path beats the Internet right now?" loop (PAPER.md §3).
//
// Routes are uniform N-hop hop lists (Route): the direct path is the
// zero-hop route, a single relay is the one-hop route, and deeper chains
// are enumerated by a beam search over the ranked single-hop relays
// (MaxHops bounds the depth) — one representation, one dial seam
// (chain.Dial), one scoring table.
package pathmon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"cronets/internal/chain"
	"cronets/internal/measure"
	"cronets/internal/obs"
	"cronets/internal/relay"
)

// Config parameterizes a Monitor. Dest is required; everything else has
// serviceable defaults.
type Config struct {
	// Dest is the destination's probe endpoint (a measure.Server), as
	// reachable from the relays — the address sent in CONNECT.
	Dest string
	// DirectAddr is the client's direct route to Dest. It defaults to
	// Dest; tests and emulations point it at a netem proxy standing in
	// for the wide-area direct path.
	DirectAddr string
	// Fleet lists candidate relay CONNECT endpoints.
	Fleet []string
	// Interval is the probe round period (default 5 s).
	Interval time.Duration
	// ProbeTimeout bounds each route's dial + probes per round
	// (default Interval/2, capped at 2 s minimum 100 ms) so one dead
	// relay cannot stall a round.
	ProbeTimeout time.Duration
	// ProbeCount is how many echo probes each route gets per round
	// (default 4).
	ProbeCount int
	// Alpha is the EWMA weight of a new sample (default 0.3).
	Alpha float64
	// BurstDuration, when positive, adds a short throughput burst after
	// the RTT probes each round; the result is reported in the route
	// table but does not enter the delay score.
	BurstDuration time.Duration
	// SwitchMargin is the fraction by which a challenger's score must
	// beat the incumbent's to count toward a switch (default 0.1).
	SwitchMargin float64
	// SwitchRounds is how many consecutive qualifying rounds the same
	// challenger needs before traffic switches (default 3).
	SwitchRounds int
	// FailThreshold is how many consecutive failed rounds take a route
	// out of contention (default 2). The incumbent going down switches
	// immediately, ignoring hysteresis.
	FailThreshold int
	// StaleAfter is the estimate age past which a route's score inflates
	// (default 3×Interval; negative disables).
	StaleAfter time.Duration
	// MaxHops caps overlay route depth. 1 (the default) probes only the
	// direct path and single-relay routes; values >= 2 additionally
	// enumerate multi-hop chains up to that depth with a beam search
	// over the ranked single-hop relays, scored in the same table under
	// the same hysteresis.
	MaxHops int
	// ChainCandidates bounds chain enumeration when MaxHops >= 2: the
	// top-M usable single-hop relays by score form the extension set at
	// every beam depth, giving at most M*(M-1) two-hop chains (and
	// M*(M-1)*(M-2) three-hop chains, and so on) per round (default 3).
	// The committed best (or current challenger) chain is always kept in
	// the probe set even after it falls out of candidacy, so hysteresis
	// — not enumeration churn — decides when to leave it.
	ChainCandidates int
	// ChainPruneFactor prunes hopeless chains before they cost probes:
	// a candidate whose summed single-hop srtts exceed
	// ChainPruneFactor x the best current route score is skipped
	// (default 3). The sum of the access legs is a
	// triangle-inequality-flavored floor on what the chain must beat;
	// the generous slack matters because congestion and routing policy
	// violate the geometric triangle inequality routinely — that
	// violation is exactly the win CRONets chases — so only grossly
	// hopeless candidates are dropped. Negative disables pruning.
	ChainPruneFactor float64
	// Dialer overrides the probe dialer (tests).
	Dialer relay.Dialer
	// Obs receives probe metrics and path events (nil disables
	// instrumentation).
	Obs *obs.Registry
}

// Monitor continuously probes the candidate routes and publishes a ranked
// table plus a hysteresis-damped best route.
type Monitor struct {
	cfg Config
	// now is the clock, injectable by tests.
	now func() time.Time

	probes *obs.Counter
	// failDial/failReject/failTimeout split probe failures by reason:
	// an unreachable socket, a relay that answered but refused the
	// CONNECT (up but overloaded, ACL, dead upstream), and a deadline
	// expiry — three different kinds of path-down evidence.
	failDial    *obs.Counter
	failReject  *obs.Counter
	failTimeout *obs.Counter
	switches    *obs.Counter
	rounds      *obs.Counter
	rttHist     *obs.Histogram
	bestDirec   *obs.Gauge
	scope       *obs.Scope

	mu     sync.Mutex
	order  []Route        // stable probe order: direct, then fleet
	static map[Route]bool // membership set of order
	chains []Route        // dynamic probe set (beam candidates + pins), rebuilt each round
	states map[Route]*pathState
	best   Route
	chosen bool // a best route has been selected
	// challenger/streak implement switch hysteresis.
	challenger    Route
	streak        int
	roundsDone    int64
	lastRankFirst Route
	// subs are ranking-change subscribers (connection pools, dashboards):
	// each gets a coalesced wakeup after every integrated round or pin.
	subs map[chan struct{}]struct{}

	startOnce sync.Once
	stopOnce  sync.Once
	stopc     chan struct{}
	wg        sync.WaitGroup
}

// New creates a Monitor. Call Start to begin probing; Close to stop.
func New(cfg Config) (*Monitor, error) {
	if cfg.Dest == "" {
		return nil, errors.New("pathmon: Config.Dest is required")
	}
	if cfg.DirectAddr == "" {
		cfg.DirectAddr = cfg.Dest
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.Interval / 2
		if cfg.ProbeTimeout > 2*time.Second {
			cfg.ProbeTimeout = 2 * time.Second
		}
		if cfg.ProbeTimeout < 100*time.Millisecond {
			cfg.ProbeTimeout = 100 * time.Millisecond
		}
	}
	if cfg.ProbeCount <= 0 {
		cfg.ProbeCount = 4
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.SwitchMargin <= 0 {
		cfg.SwitchMargin = 0.1
	}
	if cfg.SwitchRounds <= 0 {
		cfg.SwitchRounds = 3
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	} else if cfg.StaleAfter < 0 {
		cfg.StaleAfter = 0
	}
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 1
	}
	if cfg.ChainCandidates <= 0 {
		cfg.ChainCandidates = 3
	}
	if cfg.ChainPruneFactor == 0 {
		cfg.ChainPruneFactor = 3
	} else if cfg.ChainPruneFactor < 0 {
		cfg.ChainPruneFactor = 0
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{}
	}
	m := &Monitor{
		cfg:    cfg,
		now:    time.Now,
		states: make(map[Route]*pathState),
		static: make(map[Route]bool),
		stopc:  make(chan struct{}),
		subs:   make(map[chan struct{}]struct{}),
	}
	m.order = append(m.order, Direct)
	for _, r := range cfg.Fleet {
		m.order = append(m.order, MakeRoute(r))
	}
	for _, p := range m.order {
		m.static[p] = true
		m.states[p] = &pathState{route: p}
	}
	m.instrument(cfg.Obs)
	return m, nil
}

func (m *Monitor) instrument(reg *obs.Registry) {
	m.probes = reg.Counter("cronets_pathmon_probes_total",
		"Per-path probe attempts across all rounds.")
	const failHelp = "Probe attempts that failed, by reason: dial = unreachable socket, " +
		"reject = relay up but CONNECT refused (overload, ACL, dead upstream), " +
		"timeout = deadline expiry."
	m.failDial = reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", "dial"), failHelp)
	m.failReject = reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", "reject"), failHelp)
	m.failTimeout = reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", "timeout"), failHelp)
	m.switches = reg.Counter("cronets_pathmon_switches_total",
		"Best-path switches committed after hysteresis.")
	m.rounds = reg.Counter("cronets_pathmon_rounds_total",
		"Probe rounds completed.")
	m.rttHist = reg.Histogram("cronets_pathmon_rtt_seconds",
		"Probed RTT across all candidate paths.", obs.LatencyBuckets)
	m.bestDirec = reg.Gauge("cronets_pathmon_best_is_direct",
		"1 when the current best path is direct, 0 when it is a relay.")
	m.scope = reg.Scope("pathmon")
}

// Start launches the background probe loop: one round immediately, then
// one per Interval. Repeated calls are no-ops.
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go m.loop()
	})
}

// Close stops the probe loop and waits for in-flight probes.
func (m *Monitor) Close() error {
	m.stopOnce.Do(func() { close(m.stopc) })
	m.wg.Wait()
	return nil
}

func (m *Monitor) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	m.ProbeRound(context.Background())
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			m.ProbeRound(context.Background())
		}
	}
}

// probeResult is one route's outcome in a round.
type probeResult struct {
	route Route
	rtt   time.Duration // round average on success
	mbps  float64       // optional burst result
	err   error
}

// ProbeRound measures every candidate route once, concurrently, and folds
// the results into the ranked table. Each route's dial + probes share one
// ProbeTimeout budget, so the round completes within roughly one timeout
// even if every relay is dead. With MaxHops >= 2 the round also probes
// the current multi-hop chain candidates (enumerated from the previous
// round's single-hop estimates — chains appear from the second round).
// Exported for on-demand probing (tests, warm-up before serving).
func (m *Monitor) ProbeRound(ctx context.Context) {
	m.mu.Lock()
	routes := make([]Route, 0, len(m.order)+len(m.chains))
	routes = append(routes, m.order...)
	routes = append(routes, m.chains...)
	m.mu.Unlock()
	results := make([]probeResult, len(routes))
	var wg sync.WaitGroup
	for i, p := range routes {
		wg.Add(1)
		go func(i int, p Route) {
			defer wg.Done()
			results[i] = m.probeRoute(ctx, p)
		}(i, p)
	}
	wg.Wait()
	select {
	case <-m.stopc:
		// Shut down between probe and integrate: drop the round.
		return
	default:
	}
	m.integrate(results, m.now())
}

// dialRoute opens one measurement connection over a route — the same
// seam for every depth: the zero-hop route is a plain direct dial, any
// deeper route is a chain dial (one CONNECT per hop; one hop is exactly
// the classic single-relay path). The context's deadline governs every
// leg.
func (m *Monitor) dialRoute(ctx context.Context, r Route) (net.Conn, error) {
	hops := r.Hops()
	if len(hops) == 0 {
		return m.cfg.Dialer.DialContext(ctx, "tcp", m.cfg.DirectAddr)
	}
	return chain.Dial(ctx, hops, m.cfg.Dest, chain.Options{Dialer: m.cfg.Dialer})
}

// probeRoute runs one route's round: dial, RTT echo probes, optional
// throughput burst.
func (m *Monitor) probeRoute(ctx context.Context, p Route) probeResult {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
	defer cancel()
	m.probes.Inc()

	conn, err := m.dialRoute(ctx, p)
	if err != nil {
		return probeResult{route: p, err: fmt.Errorf("dial: %w", err)}
	}
	defer conn.Close()

	stats, err := measure.ProbeRTTContext(ctx, conn, m.cfg.ProbeCount, m.rttHist)
	if err != nil {
		return probeResult{route: p, err: fmt.Errorf("probe: %w", err)}
	}
	res := probeResult{route: p, rtt: stats.Avg}
	if m.cfg.BurstDuration > 0 {
		// Burst on a fresh connection so echo-mode state does not leak
		// into sink mode; failure here degrades to "no burst data".
		if tp, err := m.burst(ctx, p); err == nil {
			res.mbps = tp
		}
	}
	return res
}

// burst runs the optional short throughput burst for a route.
func (m *Monitor) burst(ctx context.Context, p Route) (float64, error) {
	conn, err := m.dialRoute(ctx, p)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if _, err := measure.SinkClient(conn); err != nil {
		return 0, err
	}
	res, err := measure.ThroughputContext(ctx, conn, m.cfg.BurstDuration, 0)
	if err != nil {
		return 0, err
	}
	return res.Mbps, nil
}

// integrate folds one round of probe results into the table and applies
// the ranking + hysteresis rules. Split from the socket layer so tests
// can feed synthetic series.
func (m *Monitor) integrate(results []probeResult, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.notifyLocked()
	defer m.rebuildChainsLocked(now)
	m.roundsDone++
	m.rounds.Inc()

	for _, r := range results {
		st := m.states[r.route]
		if st == nil {
			continue
		}
		if r.err != nil {
			st.observeFailure()
			reason := failReason(r.err)
			m.failCounter(reason).Inc()
			m.scope.Event(obs.EventProbe, fmt.Sprintf("%s fail (%s): %v", r.route, reason, r.err))
			continue
		}
		st.observe(r.rtt, m.cfg.Alpha, now)
		if r.mbps > 0 {
			st.lastMbps = r.mbps
		}
	}

	ranked := m.rankLocked(now)
	if len(ranked) == 0 || ranked[0].Down {
		// Nothing usable: keep the incumbent (connections may still work
		// even if probes fail — don't thrash on a probe outage).
		return
	}
	leader := ranked[0].Route
	if leader != m.lastRankFirst {
		m.lastRankFirst = leader
		m.scope.Event(obs.EventRankChange,
			fmt.Sprintf("leader %s score %.4fs", leader, ranked[0].Score))
	}

	if !m.chosen {
		// First usable round: adopt the leader outright; this initial
		// selection is not counted as a switch.
		m.best = leader
		m.chosen = true
		m.setBestGauge()
		m.scope.Event(obs.EventPathSwitch, fmt.Sprintf("initial best %s", leader))
		return
	}

	incumbent := m.states[m.best]
	if incumbent == nil || incumbent.down(m.cfg.FailThreshold) {
		// Dead incumbent: switch immediately, hysteresis is for flap
		// damping, not for staying on a black hole.
		if leader != m.best {
			m.commitSwitch(leader, "incumbent down")
		}
		return
	}
	if leader == m.best {
		m.challenger, m.streak = Route{}, 0
		return
	}
	incScore := incumbent.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold)
	if ranked[0].Score >= incScore*(1-m.cfg.SwitchMargin) {
		// Leads, but not by enough margin to count toward a switch.
		m.challenger, m.streak = Route{}, 0
		return
	}
	if leader == m.challenger {
		m.streak++
	} else {
		m.challenger, m.streak = leader, 1
	}
	if m.streak >= m.cfg.SwitchRounds {
		m.commitSwitch(leader, fmt.Sprintf("beat incumbent by >%.0f%% for %d rounds",
			m.cfg.SwitchMargin*100, m.streak))
	}
}

// failReason classifies a probe failure for the reason-split failure
// counter: a relay that answered and refused ("reject" — it is up but
// won't carry the flow: overload, ACL, dead upstream) is different
// evidence than a deadline expiry ("timeout") or an unreachable socket
// ("dial"). The reject check comes first: a refusal that arrives just as
// the budget expires is still a refusal.
func failReason(err error) string {
	switch {
	case errors.Is(err, relay.ErrRefused):
		return "reject"
	case isTimeoutErr(err):
		return "timeout"
	default:
		return "dial"
	}
}

// isTimeoutErr reports whether err is a deadline expiry (net-level or
// context-level).
func isTimeoutErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// failCounter maps a failure reason to its labeled counter.
func (m *Monitor) failCounter(reason string) *obs.Counter {
	switch reason {
	case "reject":
		return m.failReject
	case "timeout":
		return m.failTimeout
	default:
		return m.failDial
	}
}

// rebuildChainsLocked recomputes the multi-hop candidate set from the
// round's single-hop estimates with a beam search over depth <= MaxHops:
// the top-ChainCandidates usable relays seed depth 1, and each deeper
// level extends every surviving candidate by one ranked relay it does
// not already cross. A candidate whose summed single-hop srtts already
// exceed ChainPruneFactor x the best current score is pruned — the
// triangle-inequality-flavored floor (a chain cannot undercut its access
// legs' combined propagation delay) with slack for the
// congestion-induced violations the overlay exists to exploit; each
// level is additionally capped at ChainCandidates^2 survivors (lowest
// srtt-sum first) so deep searches stay bounded. New candidates get
// fresh states; chains that fall out of candidacy are dropped unless
// they are the committed best route or the current challenger, which
// stay probed so hysteresis (not enumeration churn) decides their fate.
// Caller holds m.mu.
func (m *Monitor) rebuildChainsLocked(now time.Time) {
	want := make(map[Route]bool)
	var chains []Route
	pruned, nSingles := 0, 0
	if m.cfg.MaxHops >= 2 {
		type single struct {
			relay string
			score float64
			srtt  float64
		}
		best := math.Inf(1)
		singles := make([]single, 0, len(m.order))
		for _, p := range m.order {
			st := m.states[p]
			score := st.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold)
			if score < best {
				best = score
			}
			if p.IsDirect() || st.down(m.cfg.FailThreshold) {
				continue
			}
			singles = append(singles, single{relay: p.First(), score: score, srtt: st.srtt})
		}
		// Chains can themselves hold the best score; they only tighten the
		// pruning bound, never loosen it.
		for _, p := range m.chains {
			if st := m.states[p]; st != nil {
				if score := st.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold); score < best {
					best = score
				}
			}
		}
		sort.SliceStable(singles, func(i, j int) bool { return singles[i].score < singles[j].score })
		if len(singles) > m.cfg.ChainCandidates {
			singles = singles[:m.cfg.ChainCandidates]
		}
		nSingles = len(singles)

		// The beam: level d holds the surviving depth-d hop lists with
		// their srtt sums; level 1 is the ranked singles themselves.
		type cand struct {
			hops []string
			sum  float64
		}
		level := make([]cand, 0, len(singles))
		for _, s := range singles {
			level = append(level, cand{hops: []string{s.relay}, sum: s.srtt})
		}
		beamWidth := m.cfg.ChainCandidates * m.cfg.ChainCandidates
		for depth := 2; depth <= m.cfg.MaxHops && len(level) > 0; depth++ {
			next := make([]cand, 0, len(level)*len(singles))
			for _, c := range level {
				for _, s := range singles {
					if containsHop(c.hops, s.relay) {
						continue
					}
					sum := c.sum + s.srtt
					if m.cfg.ChainPruneFactor > 0 && !math.IsInf(best, 1) &&
						sum > m.cfg.ChainPruneFactor*best {
						pruned++
						continue
					}
					hops := make([]string, len(c.hops)+1)
					copy(hops, c.hops)
					hops[len(c.hops)] = s.relay
					next = append(next, cand{hops: hops, sum: sum})
				}
			}
			sort.SliceStable(next, func(i, j int) bool { return next[i].sum < next[j].sum })
			if len(next) > beamWidth {
				pruned += len(next) - beamWidth
				next = next[:beamWidth]
			}
			for _, c := range next {
				r := MakeRoute(c.hops...)
				if !want[r] {
					want[r] = true
					chains = append(chains, r)
				}
			}
			level = next
		}
	}
	// Never stop probing the incumbent or the challenger mid-hysteresis —
	// including pinned routes outside the static set, at any depth.
	for _, keep := range []Route{m.best, m.challenger} {
		if keep.IsDirect() || m.static[keep] || want[keep] {
			continue
		}
		want[keep] = true
		chains = append(chains, keep)
	}

	changed := len(chains) != len(m.chains)
	for _, c := range chains {
		if m.states[c] == nil {
			m.states[c] = &pathState{route: c}
			changed = true
		}
	}
	for p := range m.states {
		if !m.static[p] && !want[p] {
			delete(m.states, p)
			changed = true
		}
	}
	m.chains = chains
	if changed {
		m.scope.Event(obs.EventChainCandidates,
			fmt.Sprintf("%d chain(s) from %d single-hop candidate(s), %d pruned",
				len(chains), nSingles, pruned))
	}
}

// containsHop reports whether hops already crosses relay — beam
// extensions never revisit a relay.
func containsHop(hops []string, relay string) bool {
	for _, h := range hops {
		if h == relay {
			return true
		}
	}
	return false
}

// commitSwitch moves the best route. Caller holds m.mu.
func (m *Monitor) commitSwitch(to Route, why string) {
	from := m.best
	m.best = to
	m.challenger, m.streak = Route{}, 0
	m.switches.Inc()
	m.setBestGauge()
	m.scope.Event(obs.EventPathSwitch, fmt.Sprintf("%s -> %s (%s)", from, to, why))
}

// setBestGauge mirrors the best route's kind into the gauge. Caller
// holds m.mu.
func (m *Monitor) setBestGauge() {
	if m.best.IsDirect() {
		m.bestDirec.Set(1)
	} else {
		m.bestDirec.Set(0)
	}
}

// rankLocked builds the score-sorted table over every candidate — the
// static set (direct + fleet) and the current chain candidates. Caller
// holds m.mu.
func (m *Monitor) rankLocked(now time.Time) []RouteStatus {
	out := make([]RouteStatus, 0, len(m.order)+len(m.chains))
	for _, p := range append(append([]Route(nil), m.order...), m.chains...) {
		st := m.states[p]
		if st == nil {
			continue
		}
		out = append(out, RouteStatus{
			Route:      p,
			Score:      st.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold),
			SRTT:       time.Duration(st.srtt * float64(time.Second)),
			RTTVar:     time.Duration(st.rttvar * float64(time.Second)),
			Mbps:       st.lastMbps,
			Samples:    st.samples,
			Fails:      st.fails,
			Down:       st.down(m.cfg.FailThreshold),
			Best:       m.chosen && p == m.best,
			LastSample: st.lastSample,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out
}

// Pin forces the best route — an operator override (or test hook). Any
// depth is accepted, including routes outside the current candidate set:
// a pinned route gets a state and a probe-set slot, and the pin holds
// until a later round's hysteresis commits a switch away from it,
// exactly as if the monitor had chosen the route itself.
func (m *Monitor) Pin(p Route) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.best = p
	m.chosen = true
	m.challenger, m.streak = Route{}, 0
	if m.states[p] == nil {
		m.states[p] = &pathState{route: p}
		m.chains = append(m.chains, p)
	}
	m.setBestGauge()
	m.scope.Event(obs.EventPathSwitch, fmt.Sprintf("pinned %s", p))
	m.notifyLocked()
}

// Subscribe registers for ranking-change wakeups: the returned channel
// receives a (coalesced) notification after every integrated probe round
// and every Pin. Subscribers re-read Ranked()/Best() themselves — the
// channel carries no data, so a slow consumer misses nothing but
// intermediate states. The unsubscribe func releases the registration.
func (m *Monitor) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	m.mu.Lock()
	m.subs[ch] = struct{}{}
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		delete(m.subs, ch)
		m.mu.Unlock()
	}
}

// notifyLocked wakes every subscriber without blocking. Caller holds
// m.mu.
func (m *Monitor) notifyLocked() {
	for ch := range m.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Best returns the current best route and whether one has been selected
// yet (false until the first round with a usable result).
func (m *Monitor) Best() (Route, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.best, m.chosen
}

// Ranked returns the current route table sorted best-first. Down routes
// sort last (score +Inf).
func (m *Monitor) Ranked() []RouteStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rankLocked(m.now())
}

// Rounds returns how many probe rounds have been integrated.
func (m *Monitor) Rounds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.roundsDone
}
