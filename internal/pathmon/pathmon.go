// Package pathmon is the overlay control plane's measurement half: a
// background prober that, for one (client, destination) pair and a fleet
// of candidate relays, periodically measures the direct path and each
// overlay route with internal/measure echo probes plus cadenced
// throughput bursts, maintains per-route EWMA/variance scores with
// staleness decay, and publishes a ranked route table. Switching is damped
// by hysteresis: a challenger must beat the incumbent by a configurable
// margin for K consecutive rounds before traffic moves, so transient RTT
// wobble cannot flap the overlay — the CRONets provisioning service's
// "which cloud path beats the Internet right now?" loop (PAPER.md §3).
//
// Ranking is objective-driven: the delay metric (ObjectiveLatency, the
// default), the smoothed burst throughput (ObjectiveThroughput — the
// paper's headline axis), or a normalized blend (ObjectiveComposite).
// One Monitor can serve several objectives at once: View(obj) returns an
// independently hysteresis-damped ranking over the same probe data, so a
// bulk listener and an interactive listener share one probe budget.
//
// Routes are uniform N-hop hop lists (Route): the direct path is the
// zero-hop route, a single relay is the one-hop route, and deeper chains
// are enumerated by a beam search over the ranked single-hop relays
// (MaxHops bounds the depth) — one representation, one dial seam
// (chain.Dial), one scoring table.
package pathmon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"cronets/internal/chain"
	"cronets/internal/measure"
	"cronets/internal/obs"
	"cronets/internal/relay"
)

// Config parameterizes a Monitor. Dest is required; everything else has
// serviceable defaults.
type Config struct {
	// Dest is the destination's probe endpoint (a measure.Server), as
	// reachable from the relays — the address sent in CONNECT.
	Dest string
	// DirectAddr is the client's direct route to Dest. It defaults to
	// Dest; tests and emulations point it at a netem proxy standing in
	// for the wide-area direct path.
	DirectAddr string
	// Fleet lists candidate relay CONNECT endpoints.
	Fleet []string
	// Interval is the probe round period (default 5 s).
	Interval time.Duration
	// ProbeTimeout bounds each route's dial + RTT probes per round
	// (default Interval/2, capped at 2 s minimum 100 ms) so one dead
	// relay cannot stall a round. Throughput bursts do NOT share this
	// budget — each burst gets its own deadline of BurstDuration plus
	// one ProbeTimeout of setup headroom.
	ProbeTimeout time.Duration
	// ProbeCount is how many echo probes each route gets per round
	// (default 4).
	ProbeCount int
	// Alpha is the EWMA weight of a new sample (default 0.3), shared by
	// the RTT and throughput estimators.
	Alpha float64
	// Objective selects the metric that orders the monitor's own ranked
	// table and drives its hysteresis (default ObjectiveLatency — the
	// pre-objective behavior). Additional objectives ride the same probe
	// data through View.
	Objective Objective
	// BurstDuration, when positive, enables periodic throughput bursts:
	// a timed sink-mode upload on a fresh connection whose result feeds
	// each route's smoothed Mbps estimate (and, under
	// ObjectiveThroughput/ObjectiveComposite, its rank).
	BurstDuration time.Duration
	// BurstEvery is how many rounds elapse between one route's bursts
	// (default 1 — every round, subject to MaxBurstsPerRound).
	BurstEvery int
	// MaxBurstsPerRound caps how many routes burst in one round
	// (default 2). Due routes are served round-robin, so with N routes
	// every route still bursts within ceil(N/MaxBurstsPerRound) x
	// BurstEvery rounds — a round never pays more than K burst windows
	// of extra traffic, however big the fleet.
	MaxBurstsPerRound int
	// SwitchMargin is the fraction by which a challenger's score must
	// beat the incumbent's to count toward a switch (default 0.1).
	SwitchMargin float64
	// SwitchRounds is how many consecutive qualifying rounds the same
	// challenger needs before traffic switches (default 3).
	SwitchRounds int
	// FailThreshold is how many consecutive failed rounds take a route
	// out of contention (default 2). The incumbent going down switches
	// immediately, ignoring hysteresis.
	FailThreshold int
	// StaleAfter is the estimate age past which a route's latency score
	// inflates (default 3×Interval; negative disables). Throughput
	// estimates decay on the same curve, scaled by the burst cadence
	// (bursts are naturally BurstEvery or more rounds apart).
	StaleAfter time.Duration
	// MaxHops caps overlay route depth. 1 (the default) probes only the
	// direct path and single-relay routes; values >= 2 additionally
	// enumerate multi-hop chains up to that depth with a beam search
	// over the ranked single-hop relays, scored in the same table under
	// the same hysteresis.
	MaxHops int
	// ChainCandidates bounds chain enumeration when MaxHops >= 2: the
	// top-M usable single-hop relays by score form the extension set at
	// every beam depth, giving at most M*(M-1) two-hop chains (and
	// M*(M-1)*(M-2) three-hop chains, and so on) per round (default 3).
	// The committed best (or current challenger) chain is always kept in
	// the probe set even after it falls out of candidacy, so hysteresis
	// — not enumeration churn — decides when to leave it.
	ChainCandidates int
	// ChainPruneFactor prunes hopeless chains before they cost probes:
	// a candidate whose summed single-hop srtts exceed
	// ChainPruneFactor x the best current route score is skipped
	// (default 3). The sum of the access legs is a
	// triangle-inequality-flavored floor on what the chain must beat;
	// the generous slack matters because congestion and routing policy
	// violate the geometric triangle inequality routinely — that
	// violation is exactly the win CRONets chases — so only grossly
	// hopeless candidates are dropped. Negative disables pruning.
	ChainPruneFactor float64
	// Dialer overrides the probe dialer (tests).
	Dialer relay.Dialer
	// Obs receives probe metrics and path events (nil disables
	// instrumentation).
	Obs *obs.Registry
}

// rankView is one objective's independently hysteresis-damped selection
// state over the shared probe table. The Monitor always has one for its
// configured objective; View adds more. All fields are guarded by the
// Monitor's mutex.
type rankView struct {
	obj    Objective
	best   Route
	chosen bool // a best route has been selected
	// challenger/streak implement switch hysteresis.
	challenger    Route
	streak        int
	lastRankFirst Route
}

// Monitor continuously probes the candidate routes and publishes a ranked
// table plus a hysteresis-damped best route per objective.
type Monitor struct {
	cfg Config
	// now is the clock, injectable by tests.
	now func() time.Time

	probes *obs.Counter
	// failDial/failReject/failTimeout split probe failures by reason:
	// an unreachable socket, a relay that answered but refused the
	// CONNECT (up but overloaded, ACL, dead upstream), and a deadline
	// expiry — three different kinds of path-down evidence.
	failDial    *obs.Counter
	failReject  *obs.Counter
	failTimeout *obs.Counter
	bursts      *obs.Counter
	burstFails  *obs.Counter
	switches    *obs.Counter
	rounds      *obs.Counter
	rttHist     *obs.Histogram
	bestDirec   *obs.Gauge
	scope       *obs.Scope

	mu     sync.Mutex
	order  []Route        // stable probe order: direct, then fleet
	static map[Route]bool // membership set of order
	chains []Route        // dynamic probe set (beam candidates + pins), rebuilt each round
	states map[Route]*pathState
	// defView is the Config.Objective ranking; views holds it plus every
	// View-created objective, in creation order.
	defView   *rankView
	views     []*rankView
	viewByObj map[Objective]*rankView
	// burstCursor round-robins the per-round burst slots across routes.
	burstCursor int
	roundsDone  int64
	// subs are ranking-change subscribers (connection pools, dashboards):
	// each gets a coalesced wakeup after every integrated round or pin.
	subs map[chan struct{}]struct{}

	startOnce sync.Once
	stopOnce  sync.Once
	stopc     chan struct{}
	// runCtx is the monitor-lifetime context: every probe and burst the
	// background loop launches derives from it, so Close's cancel
	// reaches in-flight dials immediately instead of waiting out a full
	// ProbeTimeout.
	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
}

// New creates a Monitor. Call Start to begin probing; Close to stop.
func New(cfg Config) (*Monitor, error) {
	if cfg.Dest == "" {
		return nil, errors.New("pathmon: Config.Dest is required")
	}
	if cfg.DirectAddr == "" {
		cfg.DirectAddr = cfg.Dest
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.Interval / 2
		if cfg.ProbeTimeout > 2*time.Second {
			cfg.ProbeTimeout = 2 * time.Second
		}
		if cfg.ProbeTimeout < 100*time.Millisecond {
			cfg.ProbeTimeout = 100 * time.Millisecond
		}
	}
	if cfg.ProbeCount <= 0 {
		cfg.ProbeCount = 4
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.BurstEvery <= 0 {
		cfg.BurstEvery = 1
	}
	if cfg.MaxBurstsPerRound <= 0 {
		cfg.MaxBurstsPerRound = 2
	}
	if cfg.SwitchMargin <= 0 {
		cfg.SwitchMargin = 0.1
	}
	if cfg.SwitchRounds <= 0 {
		cfg.SwitchRounds = 3
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	} else if cfg.StaleAfter < 0 {
		cfg.StaleAfter = 0
	}
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 1
	}
	if cfg.ChainCandidates <= 0 {
		cfg.ChainCandidates = 3
	}
	if cfg.ChainPruneFactor == 0 {
		cfg.ChainPruneFactor = 3
	} else if cfg.ChainPruneFactor < 0 {
		cfg.ChainPruneFactor = 0
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{}
	}
	runCtx, runCancel := context.WithCancel(context.Background())
	m := &Monitor{
		cfg:       cfg,
		now:       time.Now,
		states:    make(map[Route]*pathState),
		static:    make(map[Route]bool),
		stopc:     make(chan struct{}),
		runCtx:    runCtx,
		runCancel: runCancel,
		subs:      make(map[chan struct{}]struct{}),
	}
	m.defView = &rankView{obj: cfg.Objective}
	m.views = []*rankView{m.defView}
	m.viewByObj = map[Objective]*rankView{cfg.Objective: m.defView}
	m.order = append(m.order, Direct)
	for _, r := range cfg.Fleet {
		m.order = append(m.order, MakeRoute(r))
	}
	for _, p := range m.order {
		m.static[p] = true
		m.states[p] = &pathState{route: p}
	}
	m.instrument(cfg.Obs)
	return m, nil
}

func (m *Monitor) instrument(reg *obs.Registry) {
	m.probes = reg.Counter("cronets_pathmon_probes_total",
		"Per-path probe attempts across all rounds.")
	const failHelp = "Probe attempts that failed, by reason: dial = unreachable socket, " +
		"reject = relay up but CONNECT refused (overload, ACL, dead upstream), " +
		"timeout = deadline expiry."
	m.failDial = reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", "dial"), failHelp)
	m.failReject = reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", "reject"), failHelp)
	m.failTimeout = reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", "timeout"), failHelp)
	m.bursts = reg.Counter("cronets_pathmon_bursts_total",
		"Throughput bursts attempted across all routes.")
	m.burstFails = reg.Counter("cronets_pathmon_burst_failures_total",
		"Throughput bursts that failed or were truncated short of the configured window.")
	m.switches = reg.Counter("cronets_pathmon_switches_total",
		"Best-path switches committed after hysteresis, across all objective views.")
	m.rounds = reg.Counter("cronets_pathmon_rounds_total",
		"Probe rounds completed.")
	m.rttHist = reg.Histogram("cronets_pathmon_rtt_seconds",
		"Probed RTT across all candidate paths.", obs.LatencyBuckets)
	m.bestDirec = reg.Gauge("cronets_pathmon_best_is_direct",
		"1 when the current best path is direct, 0 when it is a relay.")
	reg.GaugeFunc("cronets_pathmon_route_mbps",
		"Smoothed, staleness-decayed throughput estimate of the current best route, in whole Mbps (0 before any completed burst).",
		func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if !m.defView.chosen {
				return 0
			}
			st := m.states[m.defView.best]
			if st == nil {
				return 0
			}
			return int64(math.Round(st.effMbps(m.now(), m.burstStaleAfterLocked())))
		})
	m.scope = reg.Scope("pathmon")
}

// Start launches the background probe loop: one round immediately, then
// one per Interval. Repeated calls are no-ops.
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go m.loop()
	})
}

// Close stops the probe loop, cancels in-flight probes and bursts, and
// waits for them to unwind — it returns in milliseconds even with a
// blackholed dial mid-flight, not after a ProbeTimeout.
func (m *Monitor) Close() error {
	m.stopOnce.Do(func() {
		close(m.stopc)
		m.runCancel()
	})
	m.wg.Wait()
	return nil
}

func (m *Monitor) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	m.ProbeRound(m.runCtx)
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			m.ProbeRound(m.runCtx)
		}
	}
}

// probeResult is one route's outcome in a round.
type probeResult struct {
	route Route
	rtt   time.Duration // round average on success
	err   error
	// burst reports a throughput burst ran this round (mbps/burstErr
	// carry its outcome).
	burst    bool
	mbps     float64
	burstErr error
}

// ProbeRound measures every candidate route once, concurrently, and folds
// the results into the ranked table. Each route's dial + RTT probes share
// one ProbeTimeout budget, so the round completes within roughly one
// timeout even if every relay is dead; the routes due a throughput burst
// this round (at most MaxBurstsPerRound, round-robined on the BurstEvery
// cadence) additionally run one burst on its own time budget. With
// MaxHops >= 2 the round also probes the current multi-hop chain
// candidates (enumerated from the previous round's single-hop estimates
// — chains appear from the second round). Exported for on-demand probing
// (tests, warm-up before serving).
func (m *Monitor) ProbeRound(ctx context.Context) {
	m.mu.Lock()
	routes := make([]Route, 0, len(m.order)+len(m.chains))
	routes = append(routes, m.order...)
	routes = append(routes, m.chains...)
	burstDue := m.scheduleBurstsLocked(routes)
	m.mu.Unlock()
	results := make([]probeResult, len(routes))
	var wg sync.WaitGroup
	for i, p := range routes {
		wg.Add(1)
		go func(i int, p Route) {
			defer wg.Done()
			results[i] = m.probeRoute(ctx, p, burstDue[p])
		}(i, p)
	}
	wg.Wait()
	select {
	case <-m.stopc:
		// Shut down between probe and integrate: drop the round.
		return
	default:
	}
	m.integrate(results, m.now())
}

// scheduleBurstsLocked picks the routes that burst this round: every
// route whose last burst slot is BurstEvery or more rounds old is due,
// and up to MaxBurstsPerRound of them are served, round-robin from a
// rotating cursor so a large probe set shares the burst budget fairly.
// A route's slot is consumed at scheduling time — if its RTT probe then
// fails, the burst is forfeit until the route is due again. Caller holds
// m.mu.
func (m *Monitor) scheduleBurstsLocked(routes []Route) map[Route]bool {
	if m.cfg.BurstDuration <= 0 || len(routes) == 0 {
		return nil
	}
	round := m.roundsDone + 1
	due := make(map[Route]bool, m.cfg.MaxBurstsPerRound)
	n := len(routes)
	start := m.burstCursor % n
	for k := 0; k < n && len(due) < m.cfg.MaxBurstsPerRound; k++ {
		i := (start + k) % n
		st := m.states[routes[i]]
		if st == nil || due[routes[i]] {
			continue
		}
		if round-st.lastBurstRound < int64(m.cfg.BurstEvery) {
			continue
		}
		st.lastBurstRound = round
		due[routes[i]] = true
		m.burstCursor = i + 1
	}
	return due
}

// burstStaleAfterLocked scales the staleness horizon to the burst
// cadence: with N routes sharing MaxBurstsPerRound slots every
// BurstEvery rounds, consecutive bursts on one route are naturally
// max(BurstEvery, ceil(N/K)) rounds apart — the throughput estimate must
// not decay between two healthy bursts. Caller holds m.mu.
func (m *Monitor) burstStaleAfterLocked() time.Duration {
	if m.cfg.StaleAfter <= 0 {
		return 0
	}
	n := len(m.order) + len(m.chains)
	cadence := (n + m.cfg.MaxBurstsPerRound - 1) / m.cfg.MaxBurstsPerRound
	if m.cfg.BurstEvery > cadence {
		cadence = m.cfg.BurstEvery
	}
	if cadence < 1 {
		cadence = 1
	}
	return m.cfg.StaleAfter * time.Duration(cadence)
}

// dialRoute opens one measurement connection over a route — the same
// seam for every depth: the zero-hop route is a plain direct dial, any
// deeper route is a chain dial (one CONNECT per hop; one hop is exactly
// the classic single-relay path). The context's deadline governs every
// leg.
func (m *Monitor) dialRoute(ctx context.Context, r Route) (net.Conn, error) {
	hops := r.Hops()
	if len(hops) == 0 {
		return m.cfg.Dialer.DialContext(ctx, "tcp", m.cfg.DirectAddr)
	}
	return chain.Dial(ctx, hops, m.cfg.Dest, chain.Options{Dialer: m.cfg.Dialer})
}

// probeRoute runs one route's round: dial + RTT echo probes under the
// ProbeTimeout budget, then — when the route holds a burst slot this
// round — one throughput burst on its own budget.
func (m *Monitor) probeRoute(ctx context.Context, p Route, doBurst bool) probeResult {
	m.probes.Inc()
	res := probeResult{route: p}

	rttCtx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
	conn, err := m.dialRoute(rttCtx, p)
	if err != nil {
		cancel()
		res.err = fmt.Errorf("dial: %w", err)
		return res
	}
	stats, err := measure.ProbeRTTContext(rttCtx, conn, m.cfg.ProbeCount, m.rttHist)
	_ = conn.Close()
	cancel()
	if err != nil {
		res.err = fmt.Errorf("probe: %w", err)
		return res
	}
	res.rtt = stats.Avg
	if doBurst {
		res.burst = true
		res.mbps, res.burstErr = m.burst(ctx, p)
	}
	return res
}

// burst runs one throughput burst for a route, on a fresh connection
// (echo-mode state must not leak into sink mode) and on its own time
// budget: the full BurstDuration measurement window plus one
// ProbeTimeout of setup headroom for the dial, the per-hop CONNECT
// preambles, and the sink preamble. It must never inherit the residue of
// the RTT probes' budget — that silently shortened the measured window
// after a slow probe and systematically underestimated Mbps. A burst
// whose window still comes up short is an error (a failure counted in
// cronets_pathmon_burst_failures_total), not a sample.
func (m *Monitor) burst(ctx context.Context, p Route) (float64, error) {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.BurstDuration+m.cfg.ProbeTimeout)
	defer cancel()
	conn, err := m.dialRoute(ctx, p)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	res, err := measure.ThroughputBurst(ctx, conn, m.cfg.BurstDuration, 0)
	if err != nil {
		return 0, err
	}
	return res.Mbps, nil
}

// integrate folds one round of probe results into the table and applies
// the ranking + hysteresis rules to every objective view. Split from the
// socket layer so tests can feed synthetic series.
func (m *Monitor) integrate(results []probeResult, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.notifyLocked()
	defer m.rebuildChainsLocked(now)
	m.roundsDone++
	m.rounds.Inc()

	for _, r := range results {
		st := m.states[r.route]
		if st == nil {
			continue
		}
		if r.err != nil {
			st.observeFailure()
			reason := failReason(r.err)
			m.failCounter(reason).Inc()
			m.scope.Event(obs.EventProbe, fmt.Sprintf("%s fail (%s): %v", r.route, reason, r.err))
			continue
		}
		st.observe(r.rtt, m.cfg.Alpha, now)
		if r.burst {
			m.bursts.Inc()
			if r.burstErr != nil {
				m.burstFails.Inc()
				m.scope.Event(obs.EventBurst, fmt.Sprintf("%s fail: %v", r.route, r.burstErr))
			} else {
				st.observeBurst(r.mbps, m.cfg.Alpha, now)
				m.scope.Event(obs.EventBurst,
					fmt.Sprintf("%s %.1f Mbps (smoothed %.1f)", r.route, r.mbps, st.smoothedMbps))
			}
		}
	}

	for _, v := range m.views {
		m.applyRankingLocked(v, now)
	}
}

// applyRankingLocked runs one view's ranking + hysteresis over the
// freshly folded table. Caller holds m.mu.
func (m *Monitor) applyRankingLocked(v *rankView, now time.Time) {
	ranked := m.rankForLocked(v, now)
	if len(ranked) == 0 || ranked[0].Down {
		// Nothing usable: keep the incumbent (connections may still work
		// even if probes fail — don't thrash on a probe outage).
		return
	}
	leader := ranked[0].Route
	if leader != v.lastRankFirst {
		v.lastRankFirst = leader
		m.scope.Event(obs.EventRankChange,
			fmt.Sprintf("%sleader %s score %.4f", m.viewTag(v), leader, ranked[0].Score))
	}

	if !v.chosen {
		// First usable round: adopt the leader outright; this initial
		// selection is not counted as a switch.
		v.best = leader
		v.chosen = true
		m.syncBestLocked(v)
		m.scope.Event(obs.EventPathSwitch, fmt.Sprintf("%sinitial best %s", m.viewTag(v), leader))
		return
	}

	incumbent := m.states[v.best]
	if incumbent == nil || incumbent.down(m.cfg.FailThreshold) {
		// Dead incumbent: switch immediately, hysteresis is for flap
		// damping, not for staying on a black hole.
		if leader != v.best {
			m.commitSwitchLocked(v, leader, "incumbent down")
		}
		return
	}
	if leader == v.best {
		v.challenger, v.streak = Route{}, 0
		return
	}
	incScore, ok := rowScore(ranked, v.best)
	if !ok || ranked[0].Score >= incScore*(1-m.cfg.SwitchMargin) {
		// Leads, but not by enough margin to count toward a switch.
		v.challenger, v.streak = Route{}, 0
		return
	}
	if leader == v.challenger {
		v.streak++
	} else {
		v.challenger, v.streak = leader, 1
	}
	if v.streak >= m.cfg.SwitchRounds {
		m.commitSwitchLocked(v, leader, fmt.Sprintf("beat incumbent by >%.0f%% for %d rounds",
			m.cfg.SwitchMargin*100, v.streak))
	}
}

// rowScore finds a route's score in a ranked table.
func rowScore(rows []RouteStatus, r Route) (float64, bool) {
	for i := range rows {
		if rows[i].Route == r {
			return rows[i].Score, true
		}
	}
	return 0, false
}

// viewTag prefixes multi-view events with the objective, so one event
// stream stays readable when a latency view and a throughput view
// disagree. The monitor's own (default) view is untagged — single-view
// deployments read exactly as before. Caller holds m.mu.
func (m *Monitor) viewTag(v *rankView) string {
	if v == m.defView {
		return ""
	}
	return "[" + v.obj.String() + "] "
}

// failReason classifies a probe failure for the reason-split failure
// counter: a relay that answered and refused ("reject" — it is up but
// won't carry the flow: overload, ACL, dead upstream) is different
// evidence than a deadline expiry ("timeout") or an unreachable socket
// ("dial"). The reject check comes first: a refusal that arrives just as
// the budget expires is still a refusal.
func failReason(err error) string {
	switch {
	case errors.Is(err, relay.ErrRefused):
		return "reject"
	case isTimeoutErr(err):
		return "timeout"
	default:
		return "dial"
	}
}

// isTimeoutErr reports whether err is a deadline expiry (net-level or
// context-level).
func isTimeoutErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// failCounter maps a failure reason to its labeled counter.
func (m *Monitor) failCounter(reason string) *obs.Counter {
	switch reason {
	case "reject":
		return m.failReject
	case "timeout":
		return m.failTimeout
	default:
		return m.failDial
	}
}

// rebuildChainsLocked recomputes the multi-hop candidate set from the
// round's single-hop estimates with a beam search over depth <= MaxHops:
// the top-ChainCandidates usable relays seed depth 1, and each deeper
// level extends every surviving candidate by one ranked relay it does
// not already cross. A candidate whose summed single-hop srtts already
// exceed ChainPruneFactor x the best current score is pruned — the
// triangle-inequality-flavored floor (a chain cannot undercut its access
// legs' combined propagation delay) with slack for the
// congestion-induced violations the overlay exists to exploit; each
// level is additionally capped at ChainCandidates^2 survivors (lowest
// srtt-sum first) so deep searches stay bounded. Enumeration and pruning
// always run on the delay metric whatever the ranking objective — the
// srtt sum is a physical floor; the objective then ranks whatever
// survives. New candidates get fresh states; chains that fall out of
// candidacy are dropped unless some view holds them as its committed
// best route or current challenger, which stay probed so hysteresis (not
// enumeration churn) decides their fate. Caller holds m.mu.
func (m *Monitor) rebuildChainsLocked(now time.Time) {
	want := make(map[Route]bool)
	var chains []Route
	pruned, nSingles := 0, 0
	if m.cfg.MaxHops >= 2 {
		type single struct {
			relay string
			score float64
			srtt  float64
		}
		best := math.Inf(1)
		singles := make([]single, 0, len(m.order))
		for _, p := range m.order {
			st := m.states[p]
			score := st.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold)
			if score < best {
				best = score
			}
			if p.IsDirect() || st.down(m.cfg.FailThreshold) {
				continue
			}
			singles = append(singles, single{relay: p.First(), score: score, srtt: st.srtt})
		}
		// Chains can themselves hold the best score; they only tighten the
		// pruning bound, never loosen it.
		for _, p := range m.chains {
			if st := m.states[p]; st != nil {
				if score := st.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold); score < best {
					best = score
				}
			}
		}
		sort.SliceStable(singles, func(i, j int) bool { return singles[i].score < singles[j].score })
		if len(singles) > m.cfg.ChainCandidates {
			singles = singles[:m.cfg.ChainCandidates]
		}
		nSingles = len(singles)

		// The beam: level d holds the surviving depth-d hop lists with
		// their srtt sums; level 1 is the ranked singles themselves.
		type cand struct {
			hops []string
			sum  float64
		}
		level := make([]cand, 0, len(singles))
		for _, s := range singles {
			level = append(level, cand{hops: []string{s.relay}, sum: s.srtt})
		}
		beamWidth := m.cfg.ChainCandidates * m.cfg.ChainCandidates
		for depth := 2; depth <= m.cfg.MaxHops && len(level) > 0; depth++ {
			next := make([]cand, 0, len(level)*len(singles))
			for _, c := range level {
				for _, s := range singles {
					if containsHop(c.hops, s.relay) {
						continue
					}
					sum := c.sum + s.srtt
					if m.cfg.ChainPruneFactor > 0 && !math.IsInf(best, 1) &&
						sum > m.cfg.ChainPruneFactor*best {
						pruned++
						continue
					}
					hops := make([]string, len(c.hops)+1)
					copy(hops, c.hops)
					hops[len(c.hops)] = s.relay
					next = append(next, cand{hops: hops, sum: sum})
				}
			}
			sort.SliceStable(next, func(i, j int) bool { return next[i].sum < next[j].sum })
			if len(next) > beamWidth {
				pruned += len(next) - beamWidth
				next = next[:beamWidth]
			}
			for _, c := range next {
				r := MakeRoute(c.hops...)
				if !want[r] {
					want[r] = true
					chains = append(chains, r)
				}
			}
			level = next
		}
	}
	// Never stop probing any view's incumbent or challenger
	// mid-hysteresis — including pinned routes outside the static set, at
	// any depth.
	for _, v := range m.views {
		for _, keep := range []Route{v.best, v.challenger} {
			if keep.IsDirect() || m.static[keep] || want[keep] {
				continue
			}
			want[keep] = true
			chains = append(chains, keep)
		}
	}

	changed := len(chains) != len(m.chains)
	for _, c := range chains {
		if m.states[c] == nil {
			m.states[c] = &pathState{route: c}
			changed = true
		}
	}
	for p := range m.states {
		if !m.static[p] && !want[p] {
			delete(m.states, p)
			changed = true
		}
	}
	m.chains = chains
	if changed {
		m.scope.Event(obs.EventChainCandidates,
			fmt.Sprintf("%d chain(s) from %d single-hop candidate(s), %d pruned",
				len(chains), nSingles, pruned))
	}
}

// containsHop reports whether hops already crosses relay — beam
// extensions never revisit a relay.
func containsHop(hops []string, relay string) bool {
	for _, h := range hops {
		if h == relay {
			return true
		}
	}
	return false
}

// commitSwitchLocked moves one view's best route. Caller holds m.mu.
func (m *Monitor) commitSwitchLocked(v *rankView, to Route, why string) {
	from := v.best
	v.best = to
	v.challenger, v.streak = Route{}, 0
	m.switches.Inc()
	m.syncBestLocked(v)
	m.scope.Event(obs.EventPathSwitch, fmt.Sprintf("%s%s -> %s (%s)", m.viewTag(v), from, to, why))
}

// syncBestLocked mirrors the default view's best-route kind into the
// gauge (secondary views don't own the gauge). Caller holds m.mu.
func (m *Monitor) syncBestLocked(v *rankView) {
	if v != m.defView {
		return
	}
	if v.best.IsDirect() {
		m.bestDirec.Set(1)
	} else {
		m.bestDirec.Set(0)
	}
}

// rankForLocked builds one view's score-sorted table over every
// candidate — the static set (direct + fleet) and the current chain
// candidates — scored by the view's objective. Caller holds m.mu.
func (m *Monitor) rankForLocked(v *rankView, now time.Time) []RouteStatus {
	burstStale := m.burstStaleAfterLocked()
	out := make([]RouteStatus, 0, len(m.order)+len(m.chains))
	for _, p := range append(append([]Route(nil), m.order...), m.chains...) {
		st := m.states[p]
		if st == nil {
			continue
		}
		out = append(out, RouteStatus{
			Route:      p,
			Score:      st.score(now, m.cfg.StaleAfter, m.cfg.FailThreshold),
			SRTT:       time.Duration(st.srtt * float64(time.Second)),
			RTTVar:     time.Duration(st.rttvar * float64(time.Second)),
			Mbps:       st.effMbps(now, burstStale),
			LastBurst:  st.lastBurst,
			Samples:    st.samples,
			Fails:      st.fails,
			Down:       st.down(m.cfg.FailThreshold),
			Best:       v.chosen && p == v.best,
			LastSample: st.lastSample,
		})
	}
	objectiveScores(v.obj, out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out
}

// Pin forces the best route on every objective view — an operator
// override (or test hook). Any depth is accepted, including routes
// outside the current candidate set: a pinned route gets a state and a
// probe-set slot, and the pin holds until a later round's hysteresis
// commits a switch away from it, exactly as if the monitor had chosen
// the route itself.
func (m *Monitor) Pin(p Route) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range m.views {
		v.best = p
		v.chosen = true
		v.challenger, v.streak = Route{}, 0
	}
	if m.states[p] == nil {
		m.states[p] = &pathState{route: p}
		m.chains = append(m.chains, p)
	}
	m.syncBestLocked(m.defView)
	m.scope.Event(obs.EventPathSwitch, fmt.Sprintf("pinned %s", p))
	m.notifyLocked()
}

// Subscribe registers for ranking-change wakeups: the returned channel
// receives a (coalesced) notification after every integrated probe round
// and every Pin. Subscribers re-read Ranked()/Best() themselves — the
// channel carries no data, so a slow consumer misses nothing but
// intermediate states. The unsubscribe func releases the registration.
func (m *Monitor) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	m.mu.Lock()
	m.subs[ch] = struct{}{}
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		delete(m.subs, ch)
		m.mu.Unlock()
	}
}

// notifyLocked wakes every subscriber without blocking. Caller holds
// m.mu.
func (m *Monitor) notifyLocked() {
	for ch := range m.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Best returns the current best route under the monitor's configured
// objective and whether one has been selected yet (false until the first
// round with a usable result).
func (m *Monitor) Best() (Route, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.defView.best, m.defView.chosen
}

// Ranked returns the current route table sorted best-first under the
// monitor's configured objective. Down routes sort last (score +Inf).
func (m *Monitor) Ranked() []RouteStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rankForLocked(m.defView, m.now())
}

// Objective returns the monitor's configured (default-view) objective.
func (m *Monitor) Objective() Objective { return m.cfg.Objective }

// Rounds returns how many probe rounds have been integrated.
func (m *Monitor) Rounds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.roundsDone
}
