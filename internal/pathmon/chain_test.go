package pathmon

// Synthetic-series tests for two-hop chain enumeration, pruning, and
// ranking — the same harness as pathmon_test.go: no sockets, integrate()
// fed directly, a hand-cranked clock.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cronets/internal/obs"
	"cronets/internal/relay"
)

// chainSet snapshots the monitor's current chain candidates.
func chainSet(m *Monitor) map[Route]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Route]bool, len(m.chains))
	for _, c := range m.chains {
		out[c] = true
	}
	return out
}

func TestChainEnumerationTopM(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	b := MakeRoute("relay-b:9000")
	c := MakeRoute("relay-c:9000")
	m, _ := synthMonitor(t, Config{
		Fleet:           []string{a.First(), b.First(), c.First()},
		Alpha:           1,
		MaxHops:         2,
		ChainCandidates: 2,
	})
	now := time.Unix(1000, 0)

	// One good round: A and B are the top-2 singles, C trails badly.
	round(m, now, map[Route]time.Duration{
		Direct: 50 * time.Millisecond,
		a:      40 * time.Millisecond,
		b:      45 * time.Millisecond,
		c:      200 * time.Millisecond,
	})

	chains := chainSet(m)
	want := []Route{MakeRoute(a.First(), b.First()), MakeRoute(b.First(), a.First())}
	if len(chains) != len(want) {
		t.Fatalf("chains = %v, want exactly %v", chains, want)
	}
	for _, w := range want {
		if !chains[w] {
			t.Errorf("chain %v missing from candidate set %v", w, chains)
		}
	}
	// The candidates appear in the ranked table as probeable paths.
	kinds := map[string]int{}
	for _, st := range m.Ranked() {
		kinds[st.Route.Kind()]++
	}
	if kinds["chain"] != 2 {
		t.Errorf("ranked table has %d chain rows, want 2", kinds["chain"])
	}
}

func TestChainEnumerationOffByDefault(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	b := MakeRoute("relay-b:9000")
	m, _ := synthMonitor(t, Config{Fleet: []string{a.First(), b.First()}, Alpha: 1})
	round(m, time.Unix(1000, 0), map[Route]time.Duration{
		Direct: 50 * time.Millisecond,
		a:      10 * time.Millisecond,
		b:      10 * time.Millisecond,
	})
	if chains := chainSet(m); len(chains) != 0 {
		t.Fatalf("MaxHops 1 enumerated chains: %v", chains)
	}
}

func TestChainPruningDropsHopelessPairs(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	b := MakeRoute("relay-b:9000")
	m, _ := synthMonitor(t, Config{
		Fleet:            []string{a.First(), b.First()},
		Alpha:            1,
		MaxHops:          2,
		ChainPruneFactor: 1, // tight: no slack for triangle violations
	})
	// Direct is fast; each relay leg alone costs 100 ms, so any pair's
	// summed srtt (200 ms) is far beyond 1x the best score.
	round(m, time.Unix(1000, 0), map[Route]time.Duration{
		Direct: 10 * time.Millisecond,
		a:      100 * time.Millisecond,
		b:      100 * time.Millisecond,
	})
	if chains := chainSet(m); len(chains) != 0 {
		t.Fatalf("hopeless chains not pruned: %v", chains)
	}
}

func TestChainCanBecomeBestViaHysteresis(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	b := MakeRoute("relay-b:9000")
	ab := MakeRoute(a.First(), b.First())
	m, reg := synthMonitor(t, Config{
		Fleet:        []string{a.First(), b.First()},
		Alpha:        1,
		MaxHops:      2,
		SwitchRounds: 2,
	})
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }

	// Round 1: singles only; direct becomes the incumbent and chains are
	// enumerated for the next round.
	base := map[Route]time.Duration{
		Direct: 100 * time.Millisecond,
		a:      110 * time.Millisecond,
		b:      110 * time.Millisecond,
	}
	round(m, tick(), base)
	if best, _ := m.Best(); best != Direct {
		t.Fatalf("initial best = %v, want direct", best)
	}
	if !chainSet(m)[ab] {
		t.Fatalf("chain %v not enumerated after round 1 (chains: %v)", ab, chainSet(m))
	}

	// The chain routes around congestion both access legs share with the
	// direct path (the CRONets win): it probes far faster than anything
	// else, and after SwitchRounds qualifying rounds it takes traffic.
	for i := 0; i < 6; i++ {
		rtts := map[Route]time.Duration{ab: 20 * time.Millisecond}
		for p, d := range base {
			rtts[p] = d
		}
		round(m, tick(), rtts)
	}
	if best, _ := m.Best(); best != ab {
		t.Fatalf("best = %v after a sustained chain lead, want %v", best, ab)
	}
	if n := switches(reg); n != 1 {
		t.Errorf("switches = %d, want exactly 1", n)
	}
}

func TestChainIncumbentSurvivesCandidacyLoss(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	b := MakeRoute("relay-b:9000")
	ab := MakeRoute(a.First(), b.First())
	m, _ := synthMonitor(t, Config{
		Fleet:         []string{a.First(), b.First()},
		Alpha:         1,
		MaxHops:       2,
		SwitchRounds:  2,
		FailThreshold: 2,
	})
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }

	base := map[Route]time.Duration{
		Direct: 100 * time.Millisecond,
		a:      110 * time.Millisecond,
		b:      110 * time.Millisecond,
	}
	round(m, tick(), base)
	for i := 0; i < 4; i++ {
		rtts := map[Route]time.Duration{ab: 20 * time.Millisecond}
		for p, d := range base {
			rtts[p] = d
		}
		round(m, tick(), rtts)
	}
	if best, _ := m.Best(); best != ab {
		t.Fatalf("best = %v, want chain %v", best, ab)
	}

	// Both singles' probes start failing (their access probes time out)
	// while the established chain keeps answering — single-hop candidacy
	// collapses, but the incumbent chain must stay probed and stay best,
	// not vanish through enumeration churn.
	for i := 0; i < 4; i++ {
		round(m, tick(), map[Route]time.Duration{
			Direct: 100 * time.Millisecond,
			a:      -1,
			b:      -1,
			ab:     20 * time.Millisecond,
		})
	}
	if !chainSet(m)[ab] {
		t.Fatalf("incumbent chain dropped from the probe set (chains: %v)", chainSet(m))
	}
	if best, _ := m.Best(); best != ab {
		t.Fatalf("best = %v after single-hop candidacy loss, want %v", best, ab)
	}
}

func TestProbeFailureReasonSplit(t *testing.T) {
	a := MakeRoute("relay-a:9000")
	m, reg := synthMonitor(t, Config{Fleet: []string{a.First()}, Alpha: 1})
	now := time.Unix(1000, 0)
	m.integrate([]probeResult{
		{route: a, err: fmt.Errorf("dial: %w", relay.ErrRefused)},
	}, now)
	m.integrate([]probeResult{
		{route: a, err: fmt.Errorf("probe: %w", errTimeout{})},
	}, now.Add(time.Second))
	m.integrate([]probeResult{
		{route: a, err: errors.New("dial: connection refused")},
	}, now.Add(2*time.Second))

	for reason, want := range map[string]int64{"reject": 1, "timeout": 1, "dial": 1} {
		got := reg.Counter(obs.Label("cronets_pathmon_probe_failures_total", "reason", reason), "").Value()
		if got != want {
			t.Errorf("failures{reason=%q} = %d, want %d", reason, got, want)
		}
	}
}

// errTimeout satisfies net.Error with Timeout() true.
type errTimeout struct{}

func (errTimeout) Error() string   { return "i/o timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }
