// Package cost implements the deployment cost analysis the paper sketches
// in Section VII-D and quantifies in its abstract ("at a tenth of the cost
// of leasing private lines of comparable performance"): the monthly price
// of running a CRONet — virtual or bare-metal overlay nodes, traffic
// volume tiers, and port speeds — compared with leased private lines
// (MPLS) between the same sites.
//
// Prices are modeled on the public 2015-era rate cards the paper cites:
// Softlayer virtual servers from ~$20-25/month with a 100 Mbps port, and
// MPLS circuits at hundreds to thousands of dollars per Mbps-mile-free
// site pair per month (Gottlieb 2012, the paper's reference [16]).
package cost

import (
	"errors"
	"fmt"
	"math"
)

// ServerClass is the type of rented overlay node.
type ServerClass int

// Server classes.
const (
	// Virtual is a single-core virtual server (the paper's measurement
	// fleet).
	Virtual ServerClass = iota + 1
	// BareMetal is a dedicated server, for users who want the NIC to
	// themselves.
	BareMetal
)

// String returns the class name.
func (c ServerClass) String() string {
	switch c {
	case Virtual:
		return "virtual"
	case BareMetal:
		return "bare-metal"
	default:
		return fmt.Sprintf("ServerClass(%d)", int(c))
	}
}

// PortSpeed is the overlay node's network port, in Mbps.
type PortSpeed int

// Port speeds offered by the provider (the paper's Section VII-C/D list).
const (
	Port100Mbps PortSpeed = 100
	Port1Gbps   PortSpeed = 1000
	Port10Gbps  PortSpeed = 10000
)

// NodeSpec describes one overlay node to be priced.
type NodeSpec struct {
	Class ServerClass
	Port  PortSpeed
	// MonthlyTrafficGB is the expected relayed volume per month. The
	// paper's tiers: 1000, 5000, 10000, 20000 GB, or unlimited (<= 0).
	MonthlyTrafficGB int
}

// Pricing holds the rate card. The zero value is unusable; start from
// DefaultPricing.
type Pricing struct {
	// VirtualBaseUSD and BareMetalBaseUSD are the monthly base prices of a
	// node with a 100 Mbps port and the smallest bandwidth tier.
	VirtualBaseUSD   float64
	BareMetalBaseUSD float64
	// PortUpchargeUSD maps port speeds to their monthly upcharge.
	PortUpchargeUSD map[PortSpeed]float64
	// TrafficTiers lists (sizeGB, monthly USD) bandwidth bundles in
	// ascending size; traffic beyond the largest tier uses OverageUSDPerGB.
	TrafficTiers []TrafficTier
	// UnlimitedTrafficUSD is the flat price of the unmetered option.
	UnlimitedTrafficUSD float64
	// OverageUSDPerGB prices traffic beyond a chosen tier.
	OverageUSDPerGB float64

	// LeasedLineUSDPerMbps is the monthly MPLS price per committed Mbps
	// (the paper's reference point is roughly $100-300/Mbps/month for
	// mid-haul circuits; we use the low end to make the comparison
	// conservative).
	LeasedLineUSDPerMbps float64
	// LeasedLineBaseUSD is the per-circuit fixed monthly charge (local
	// loops, management).
	LeasedLineBaseUSD float64
}

// DefaultPricing returns a 2015-era rate card consistent with the paper's
// claims: a 100 Mbps virtual node from ~$20-25/month; MPLS at ~$100/Mbps
// plus fixed circuit costs.
func DefaultPricing() Pricing {
	return Pricing{
		VirtualBaseUSD:   25,
		BareMetalBaseUSD: 200,
		PortUpchargeUSD: map[PortSpeed]float64{
			Port100Mbps: 0,
			Port1Gbps:   100,
			Port10Gbps:  600,
		},
		TrafficTiers: []TrafficTier{
			{SizeGB: 1000, USD: 0}, // first TB bundled with the node
			{SizeGB: 5000, USD: 40},
			{SizeGB: 10000, USD: 90},
			{SizeGB: 20000, USD: 180},
		},
		UnlimitedTrafficUSD:  500,
		OverageUSDPerGB:      0.09,
		LeasedLineUSDPerMbps: 100,
		LeasedLineBaseUSD:    500,
	}
}

// TrafficTier is one bandwidth bundle.
type TrafficTier struct {
	SizeGB int
	USD    float64
}

// ErrUnknownPort is returned for a port speed missing from the rate card.
var ErrUnknownPort = errors.New("cost: unknown port speed")

// NodeMonthlyUSD prices one overlay node per month.
func (p Pricing) NodeMonthlyUSD(spec NodeSpec) (float64, error) {
	base := p.VirtualBaseUSD
	if spec.Class == BareMetal {
		base = p.BareMetalBaseUSD
	}
	up, ok := p.PortUpchargeUSD[spec.Port]
	if !ok {
		return 0, fmt.Errorf("%w: %d Mbps", ErrUnknownPort, spec.Port)
	}
	return base + up + p.trafficUSD(spec.MonthlyTrafficGB), nil
}

func (p Pricing) trafficUSD(gb int) float64 {
	if gb <= 0 {
		return p.UnlimitedTrafficUSD
	}
	for _, t := range p.TrafficTiers {
		if gb <= t.SizeGB {
			return t.USD
		}
	}
	last := p.TrafficTiers[len(p.TrafficTiers)-1]
	return last.USD + float64(gb-last.SizeGB)*p.OverageUSDPerGB
}

// OverlayMonthlyUSD prices a whole CRONet: n identical overlay nodes.
func (p Pricing) OverlayMonthlyUSD(n int, spec NodeSpec) (float64, error) {
	per, err := p.NodeMonthlyUSD(spec)
	if err != nil {
		return 0, err
	}
	return float64(n) * per, nil
}

// LeasedLineMonthlyUSD prices a private line of the given committed rate.
func (p Pricing) LeasedLineMonthlyUSD(committedMbps float64) float64 {
	if committedMbps <= 0 {
		return 0
	}
	return p.LeasedLineBaseUSD + committedMbps*p.LeasedLineUSDPerMbps
}

// Comparison is the paper's cost-per-performance comparison for one site
// pair: the overlay's achieved throughput at its monthly cost versus a
// leased line provisioned to the same committed rate.
type Comparison struct {
	AchievedMbps   float64
	OverlayUSD     float64
	LeasedLineUSD  float64
	OverlayPerMbps float64
	LeasedPerMbps  float64
	// SavingsFactor is leased / overlay (the abstract's "a tenth of the
	// cost" corresponds to a factor >= 10).
	SavingsFactor float64
}

// Compare prices an overlay of n nodes achieving achievedMbps against a
// leased line committed to the same rate.
func (p Pricing) Compare(n int, spec NodeSpec, achievedMbps float64) (Comparison, error) {
	overlay, err := p.OverlayMonthlyUSD(n, spec)
	if err != nil {
		return Comparison{}, err
	}
	leased := p.LeasedLineMonthlyUSD(achievedMbps)
	c := Comparison{
		AchievedMbps:  achievedMbps,
		OverlayUSD:    overlay,
		LeasedLineUSD: leased,
	}
	if achievedMbps > 0 {
		c.OverlayPerMbps = overlay / achievedMbps
		c.LeasedPerMbps = leased / achievedMbps
	}
	if overlay > 0 {
		c.SavingsFactor = leased / overlay
	}
	return c, nil
}

// TrafficGBForRate converts a sustained rate into the monthly traffic
// volume it produces (for picking a bandwidth tier): Mbps * seconds per
// month / 8 / 1e3.
func TrafficGBForRate(mbps float64, dutyCycle float64) int {
	if dutyCycle <= 0 || dutyCycle > 1 {
		dutyCycle = 1
	}
	const secondsPerMonth = 30 * 24 * 3600
	gb := mbps * dutyCycle * secondsPerMonth / 8 / 1000
	return int(math.Ceil(gb))
}
