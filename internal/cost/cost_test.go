package cost

import (
	"errors"
	"math"
	"testing"
)

func TestNodeMonthlyUSD(t *testing.T) {
	p := DefaultPricing()
	tests := []struct {
		name string
		spec NodeSpec
		want float64
	}{
		{"paper's $20-25 node", NodeSpec{Virtual, Port100Mbps, 1000}, 25},
		{"virtual 1G, 5TB", NodeSpec{Virtual, Port1Gbps, 5000}, 25 + 100 + 40},
		{"bare metal 10G unlimited", NodeSpec{BareMetal, Port10Gbps, 0}, 200 + 600 + 500},
		{"overage", NodeSpec{Virtual, Port100Mbps, 21000}, 25 + 180 + 1000*0.09},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := p.NodeMonthlyUSD(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("NodeMonthlyUSD = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUnknownPort(t *testing.T) {
	p := DefaultPricing()
	if _, err := p.NodeMonthlyUSD(NodeSpec{Virtual, PortSpeed(42), 1000}); !errors.Is(err, ErrUnknownPort) {
		t.Errorf("err = %v, want ErrUnknownPort", err)
	}
}

func TestLeasedLine(t *testing.T) {
	p := DefaultPricing()
	if got := p.LeasedLineMonthlyUSD(50); got != 500+50*100 {
		t.Errorf("leased = %v", got)
	}
	if got := p.LeasedLineMonthlyUSD(0); got != 0 {
		t.Errorf("zero-rate leased = %v", got)
	}
}

// TestAbstractClaim reproduces the paper's abstract: a CRONet with a
// handful of 100 Mbps overlay nodes achieving tens of Mbps costs about a
// tenth of leased lines of comparable performance.
func TestAbstractClaim(t *testing.T) {
	p := DefaultPricing()
	// Two overlay nodes (the paper's Table I: 1-2 nodes capture the
	// gains), 100 Mbps ports, ~5 TB/month, achieving 50 Mbps.
	cmp, err := p.Compare(2, NodeSpec{Virtual, Port100Mbps, 5000}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SavingsFactor < 10 {
		t.Errorf("savings factor = %.1f, paper claims >= ~10x", cmp.SavingsFactor)
	}
	if cmp.OverlayPerMbps >= cmp.LeasedPerMbps {
		t.Error("overlay should cost less per Mbps")
	}
}

func TestCompareZeroRate(t *testing.T) {
	p := DefaultPricing()
	cmp, err := p.Compare(1, NodeSpec{Virtual, Port100Mbps, 1000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OverlayPerMbps != 0 || cmp.LeasedPerMbps != 0 {
		t.Errorf("zero-rate per-Mbps should be 0: %+v", cmp)
	}
}

func TestTrafficGBForRate(t *testing.T) {
	// 10 Mbps sustained for a month: 10 * 2.592e6 s / 8 / 1000 = 3240 GB.
	if got := TrafficGBForRate(10, 1); got != 3240 {
		t.Errorf("TrafficGBForRate = %d, want 3240", got)
	}
	// 50% duty cycle halves it.
	if got := TrafficGBForRate(10, 0.5); got != 1620 {
		t.Errorf("TrafficGBForRate(duty 0.5) = %d, want 1620", got)
	}
	// Invalid duty cycle falls back to 1.
	if got := TrafficGBForRate(10, 2); got != 3240 {
		t.Errorf("TrafficGBForRate(duty 2) = %d", got)
	}
}

// TestTrafficTiersMonotone: paying for more traffic never costs less.
func TestTrafficTiersMonotone(t *testing.T) {
	p := DefaultPricing()
	prev := -1.0
	for gb := 100; gb <= 40000; gb += 500 {
		got := p.trafficUSD(gb)
		if got < prev {
			t.Fatalf("traffic pricing not monotone at %d GB: %v < %v", gb, got, prev)
		}
		prev = got
	}
}

func TestServerClassString(t *testing.T) {
	if Virtual.String() != "virtual" || BareMetal.String() != "bare-metal" {
		t.Error("class names wrong")
	}
}
