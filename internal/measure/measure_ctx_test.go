package measure

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"cronets/internal/netem"
)

// blackholedServer starts a measure server behind a netem proxy whose
// fault plan blackholes every connection on connect: bytes go in, nothing
// ever comes out, and neither socket closes — the hung-peer scenario that
// used to block ProbeRTT forever.
func blackholedServer(t *testing.T) net.Addr {
	t.Helper()
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(srvLn)
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })

	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := netem.New(proxyLn, srvLn.Addr().String(), netem.Config{
		Faults: netem.FaultPlan{Rules: []netem.FaultRule{
			{Conn: -1, Dir: netem.DirBoth, Action: netem.FaultBlackhole},
		}},
	})
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	return proxy.Addr()
}

func TestProbeRTTContextBlackholeTimeout(t *testing.T) {
	addr := blackholedServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = ProbeRTTContext(ctx, conn, 3, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ProbeRTTContext succeeded through a blackholed path")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("probe took %v through a blackhole; want prompt timeout", elapsed)
	}
}

func TestThroughputContextBlackholeTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("blackhole-drain test is skipped in -short mode")
	}
	addr := blackholedServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := SinkClient(conn); err != nil {
		t.Fatal(err)
	}

	// The blackhole never drains, so the kernel buffers fill and writes
	// block; the context must unblock them.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = ThroughputContext(ctx, conn, 5*time.Second, 256<<10)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ThroughputContext succeeded through a blackholed path")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("throughput took %v through a blackhole; want prompt timeout", elapsed)
	}
}

func TestProbeRTTContextCancel(t *testing.T) {
	addr := blackholedServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := ProbeRTTContext(ctx, conn, 3, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestProbeRTTContextHealthyPath(t *testing.T) {
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(srvLn)
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	conn, err := net.Dial("tcp", srvLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats, err := ProbeRTTContext(ctx, conn, 5, nil)
	if err != nil {
		t.Fatalf("ProbeRTTContext on a healthy path: %v", err)
	}
	if stats.Samples != 5 {
		t.Fatalf("samples = %d, want 5", stats.Samples)
	}
}
