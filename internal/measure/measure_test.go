package measure

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ln)
	go s.Serve() //nolint:errcheck // closed in cleanup
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestThroughputSink(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := SinkClient(conn); err != nil {
		t.Fatal(err)
	}
	res, err := Throughput(conn, 200*time.Millisecond, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps <= 0 || res.Bytes <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Elapsed < 200*time.Millisecond {
		t.Errorf("elapsed = %v", res.Elapsed)
	}
}

func TestProbeRTT(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stats, err := ProbeRTT(conn, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 5 {
		t.Errorf("samples = %d", stats.Samples)
	}
	if stats.Min <= 0 || stats.Avg < stats.Min || stats.Max < stats.Avg {
		t.Errorf("ordering broken: %+v", stats)
	}
	// Loopback RTT should be far below a millisecond-scale bound.
	if stats.Avg > 100*time.Millisecond {
		t.Errorf("loopback RTT = %v", stats.Avg)
	}
}

func TestProbeRTTDefaultCount(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stats, err := ProbeRTT(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 10 {
		t.Errorf("default samples = %d, want 10", stats.Samples)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ln)
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != ErrServerClosed {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestUnknownModeIgnored(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'?'}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("unknown mode should close the connection")
	}
}

// TestThroughputBurstFullWindow: a healthy path yields a full-duration
// measurement.
func TestThroughputBurstFullWindow(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := ThroughputBurst(ctx, conn, 150*time.Millisecond, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 150*time.Millisecond || res.Mbps <= 0 {
		t.Errorf("burst result = %+v, want a full >=150ms window with positive Mbps", res)
	}
}

// TestThroughputBurstTruncatedIsError: a deadline that expires inside the
// measurement window must yield ErrTruncatedBurst, never an Mbps number
// measured over a shorter interval than configured.
func TestThroughputBurstTruncatedIsError(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := ThroughputBurst(ctx, conn, 10*time.Second, 64<<10)
	if !errors.Is(err, ErrTruncatedBurst) {
		t.Fatalf("err = %v (result %+v), want ErrTruncatedBurst", err, res)
	}
	if res.Mbps != 0 {
		t.Errorf("truncated burst still reported Mbps = %v", res.Mbps)
	}
}
