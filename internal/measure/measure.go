// Package measure provides iperf-style throughput measurement and
// application-level RTT probing over real sockets — the measurement side
// of the real-socket overlay stack (the simulated experiments use
// internal/tcpsim's instrumentation instead).
//
// Protocol: the client sends a one-byte mode ('S' sink, 'E' echo). In sink
// mode the server discards everything it reads. In echo mode the server
// echoes fixed-size 16-byte probe frames back.
package measure

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cronets/internal/obs"
	"cronets/internal/pipe"
)

// Mode bytes of the measurement protocol.
const (
	modeSink = 'S'
	modeEcho = 'E'
)

// probeSize is the echo frame size.
const probeSize = 16

// Server is a measurement responder (sink + echo).
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("measure: server closed")

// NewServer wraps a listener as a measurement server.
func NewServer(ln net.Listener) *Server {
	return &Server{ln: ln, conns: make(map[net.Conn]struct{})}
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts and handles measurement connections until Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("measure: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				_ = conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops the server and closes live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	var mode [1]byte
	if _, err := io.ReadFull(conn, mode[:]); err != nil {
		return
	}
	switch mode[0] {
	case modeSink:
		buf := pipe.Get(256 << 10)
		defer pipe.Put(buf)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	case modeEcho:
		frame := pipe.Get(probeSize)
		defer pipe.Put(frame)
		for {
			if _, err := io.ReadFull(conn, frame); err != nil {
				return
			}
			if _, err := conn.Write(frame); err != nil {
				return
			}
		}
	}
}

// Result is one throughput measurement.
type Result struct {
	// Mbps is the achieved goodput in megabits per second.
	Mbps float64
	// Bytes is the payload volume sent.
	Bytes int64
	// Elapsed is the wall-clock measurement duration.
	Elapsed time.Duration
}

// Throughput runs an iperf-style timed upload over an established
// connection (which may pass through relays or a multipath channel):
// random-ish payload is written for the duration and the goodput reported.
//
// A stalled peer can block a Write indefinitely; callers that need a hard
// time bound should use ThroughputContext instead.
func Throughput(conn io.Writer, duration time.Duration, chunkBytes int) (Result, error) {
	if chunkBytes <= 0 {
		chunkBytes = 128 << 10
	}
	buf := pipe.Get(chunkBytes)
	defer pipe.Put(buf)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	start := time.Now()
	var sent int64
	for time.Since(start) < duration {
		n, err := conn.Write(buf)
		sent += int64(n)
		if err != nil {
			return Result{}, fmt.Errorf("measure: throughput write: %w", err)
		}
	}
	elapsed := time.Since(start)
	return Result{
		Mbps:    float64(sent) * 8 / elapsed.Seconds() / 1e6,
		Bytes:   sent,
		Elapsed: elapsed,
	}, nil
}

// ThroughputContext is Throughput with a hard time bound: the connection's
// deadline tracks the context, so a blackholed path (zero-window peer,
// silent middlebox) fails with a timeout instead of hanging the caller.
// The context error is surfaced when cancellation caused the failure.
func ThroughputContext(ctx context.Context, conn net.Conn, duration time.Duration, chunkBytes int) (Result, error) {
	stop := guardDeadline(ctx, conn)
	defer stop()
	res, err := Throughput(conn, duration, chunkBytes)
	return res, ctxError(ctx, err)
}

// ErrTruncatedBurst reports a throughput burst that could not sustain its
// full configured window — the deadline expired or the path failed
// mid-upload. A truncated window measures goodput over a shorter interval
// than configured (a systematic underestimate on slow-start-dominated
// windows), so it is a failure, never a sample.
var ErrTruncatedBurst = errors.New("measure: throughput burst truncated")

// ThroughputBurst runs one complete sink-mode throughput burst over an
// established connection to a measure.Server: the sink preamble, then a
// timed upload of exactly duration under the context's hard bound. Any
// upload error — including the context deadline expiring mid-window — is
// reported as ErrTruncatedBurst wrapping the cause; callers get a full
// window's Mbps or an error, never a number measured over less than
// duration.
func ThroughputBurst(ctx context.Context, conn net.Conn, duration time.Duration, chunkBytes int) (Result, error) {
	if _, err := SinkClient(conn); err != nil {
		return Result{}, err
	}
	res, err := ThroughputContext(ctx, conn, duration, chunkBytes)
	if err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrTruncatedBurst, err)
	}
	if res.Elapsed < duration {
		return Result{}, fmt.Errorf("%w: measured %v of %v window", ErrTruncatedBurst, res.Elapsed, duration)
	}
	return res, nil
}

// SinkClient prefixes the sink-mode byte on a connection to a
// measure.Server, returning the same connection ready for Throughput.
func SinkClient(conn net.Conn) (net.Conn, error) {
	if _, err := conn.Write([]byte{modeSink}); err != nil {
		return nil, fmt.Errorf("measure: sink preamble: %w", err)
	}
	return conn, nil
}

// RTTStats summarizes an RTT probe run.
type RTTStats struct {
	Min, Avg, Max time.Duration
	Samples       int
}

// ProbeRTT measures application-level round-trip time with count echo
// probes over a connection to a measure.Server.
//
// A hung peer can block a probe read indefinitely; callers that need a
// hard time bound should use ProbeRTTContext instead.
func ProbeRTT(conn net.Conn, count int) (RTTStats, error) {
	return ProbeRTTWith(conn, count, nil)
}

// ProbeRTTContext is ProbeRTTWith with a hard time bound: the connection's
// deadline tracks the context, so a dead or blackholed path fails within
// the context budget instead of blocking a probe round forever. The
// context error is surfaced when cancellation caused the failure.
func ProbeRTTContext(ctx context.Context, conn net.Conn, count int, hist *obs.Histogram) (RTTStats, error) {
	stop := guardDeadline(ctx, conn)
	defer stop()
	stats, err := ProbeRTTWith(conn, count, hist)
	return stats, ctxError(ctx, err)
}

// guardDeadline pins conn's deadline to the context: the deadline (if any)
// is applied immediately and early cancellation force-expires it. The
// returned stop function releases the watcher and clears the deadline.
func guardDeadline(ctx context.Context, conn net.Conn) (stop func()) {
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	donec := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Force any blocked Read/Write to return immediately.
			_ = conn.SetDeadline(time.Unix(1, 0))
		case <-donec:
		}
	}()
	return func() {
		close(donec)
		_ = conn.SetDeadline(time.Time{})
	}
}

// ctxError substitutes the context's error for a deadline-induced I/O
// error so callers see context.DeadlineExceeded/Canceled rather than a
// generic timeout.
func ctxError(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return fmt.Errorf("measure: %w", ctx.Err())
	}
	// guardDeadline pins the connection deadline to the context deadline,
	// and the netpoller can unblock the I/O a beat before the context's own
	// timer fires ctx.Done. A timeout observed at or past the context
	// deadline is therefore the context's doing even if ctx.Err() is still
	// nil at this instant.
	var ne net.Error
	if dl, ok := ctx.Deadline(); ok && errors.As(err, &ne) && ne.Timeout() && !time.Now().Before(dl) {
		return fmt.Errorf("measure: %w", context.DeadlineExceeded)
	}
	return err
}

// ProbeRTTWith is ProbeRTT recording each sample into an obs histogram
// (typically cronets_measure_probe_rtt_seconds); a nil histogram is
// ignored.
func ProbeRTTWith(conn net.Conn, count int, hist *obs.Histogram) (RTTStats, error) {
	if count <= 0 {
		count = 10
	}
	if _, err := conn.Write([]byte{modeEcho}); err != nil {
		return RTTStats{}, fmt.Errorf("measure: echo preamble: %w", err)
	}
	frame := make([]byte, probeSize)
	var stats RTTStats
	var total time.Duration
	for i := 0; i < count; i++ {
		frame[0] = byte(i)
		start := time.Now()
		if _, err := conn.Write(frame); err != nil {
			return RTTStats{}, fmt.Errorf("measure: probe write: %w", err)
		}
		if _, err := io.ReadFull(conn, frame); err != nil {
			return RTTStats{}, fmt.Errorf("measure: probe read: %w", err)
		}
		rtt := time.Since(start)
		hist.ObserveDuration(rtt)
		total += rtt
		if stats.Samples == 0 || rtt < stats.Min {
			stats.Min = rtt
		}
		if rtt > stats.Max {
			stats.Max = rtt
		}
		stats.Samples++
	}
	stats.Avg = total / time.Duration(stats.Samples)
	return stats, nil
}
