// Package geo models the geographic layer of the CRONets reproduction: a
// catalog of city locations spanning the five continents covered by the
// paper's measurement (North America, Europe, Asia, South America, and
// Australia), great-circle distances, and a fiber propagation-delay model.
package geo

import (
	"fmt"
	"math"
	"time"
)

// Location is a point on the Earth's surface.
type Location struct {
	Name      string  `json:"name"`
	Continent string  `json:"continent"`
	LatDeg    float64 `json:"latDeg"`
	LonDeg    float64 `json:"lonDeg"`
}

// String returns "name (continent)".
func (l Location) String() string {
	return fmt.Sprintf("%s (%s)", l.Name, l.Continent)
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between a and b in kilometers
// using the haversine formula.
func DistanceKm(a, b Location) float64 {
	lat1 := a.LatDeg * math.Pi / 180
	lat2 := b.LatDeg * math.Pi / 180
	dLat := (b.LatDeg - a.LatDeg) * math.Pi / 180
	dLon := (b.LonDeg - a.LonDeg) * math.Pi / 180

	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	c := 2 * math.Atan2(math.Sqrt(s), math.Sqrt(1-s))
	return earthRadiusKm * c
}

// Speed of light in fiber is roughly 2/3 of c, i.e. ~200 km/ms. Real paths
// are not geodesics: fiber routes detour through conduits and landing
// stations. The conventional fudge factor is ~1.5-2x the geodesic distance;
// we use 1.6.
const (
	fiberKmPerMs     = 200.0
	pathStretchRatio = 1.6
)

// PropagationDelay returns the modeled one-way propagation delay between two
// locations: great-circle distance, stretched by the fiber-route factor, at
// 2/3 c. A small floor (0.1 ms) accounts for local switching even at zero
// distance.
func PropagationDelay(a, b Location) time.Duration {
	km := DistanceKm(a, b) * pathStretchRatio
	ms := km / fiberKmPerMs
	if ms < 0.1 {
		ms = 0.1
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// Catalog returns the city catalog used by the topology generator. It
// includes the paper's cloud data-center locations (Washington DC, San Jose,
// Dallas, Amsterdam, Tokyo plus the four extra DCs used in the MPTCP
// validation), its Eclipse-mirror server locations (Canada, USA, Germany,
// Switzerland, Japan, Korea, China), and a spread of client cities matching
// the PlanetLab distribution (Europe-heavy, then the Americas, Asia,
// Australia).
func Catalog() []Location {
	return []Location{
		// Cloud data centers (paper: Softlayer).
		{Name: "WashingtonDC", Continent: "NA", LatDeg: 38.9, LonDeg: -77.0},
		{Name: "SanJose", Continent: "NA", LatDeg: 37.3, LonDeg: -121.9},
		{Name: "Dallas", Continent: "NA", LatDeg: 32.8, LonDeg: -96.8},
		{Name: "Amsterdam", Continent: "EU", LatDeg: 52.4, LonDeg: 4.9},
		{Name: "Tokyo", Continent: "AS", LatDeg: 35.7, LonDeg: 139.7},
		{Name: "London", Continent: "EU", LatDeg: 51.5, LonDeg: -0.1},
		{Name: "Singapore", Continent: "AS", LatDeg: 1.35, LonDeg: 103.8},
		{Name: "Sydney", Continent: "OC", LatDeg: -33.9, LonDeg: 151.2},
		{Name: "SaoPaulo", Continent: "SA", LatDeg: -23.5, LonDeg: -46.6},
		// Server cities (paper: Eclipse mirrors).
		{Name: "Toronto", Continent: "NA", LatDeg: 43.7, LonDeg: -79.4},
		{Name: "Portland", Continent: "NA", LatDeg: 45.5, LonDeg: -122.7},
		{Name: "Atlanta", Continent: "NA", LatDeg: 33.7, LonDeg: -84.4},
		{Name: "Munich", Continent: "EU", LatDeg: 48.1, LonDeg: 11.6},
		{Name: "Zurich", Continent: "EU", LatDeg: 47.4, LonDeg: 8.5},
		{Name: "Osaka", Continent: "AS", LatDeg: 34.7, LonDeg: 135.5},
		{Name: "Seoul", Continent: "AS", LatDeg: 37.6, LonDeg: 127.0},
		{Name: "Beijing", Continent: "AS", LatDeg: 39.9, LonDeg: 116.4},
		{Name: "NewYork", Continent: "NA", LatDeg: 40.7, LonDeg: -74.0},
		{Name: "Chicago", Continent: "NA", LatDeg: 41.9, LonDeg: -87.6},
		// Additional client cities.
		{Name: "Paris", Continent: "EU", LatDeg: 48.9, LonDeg: 2.4},
		{Name: "Madrid", Continent: "EU", LatDeg: 40.4, LonDeg: -3.7},
		{Name: "Rome", Continent: "EU", LatDeg: 41.9, LonDeg: 12.5},
		{Name: "Warsaw", Continent: "EU", LatDeg: 52.2, LonDeg: 21.0},
		{Name: "Stockholm", Continent: "EU", LatDeg: 59.3, LonDeg: 18.1},
		{Name: "Dublin", Continent: "EU", LatDeg: 53.3, LonDeg: -6.3},
		{Name: "Lisbon", Continent: "EU", LatDeg: 38.7, LonDeg: -9.1},
		{Name: "Athens", Continent: "EU", LatDeg: 38.0, LonDeg: 23.7},
		{Name: "Helsinki", Continent: "EU", LatDeg: 60.2, LonDeg: 24.9},
		{Name: "Vienna", Continent: "EU", LatDeg: 48.2, LonDeg: 16.4},
		{Name: "Seattle", Continent: "NA", LatDeg: 47.6, LonDeg: -122.3},
		{Name: "Denver", Continent: "NA", LatDeg: 39.7, LonDeg: -105.0},
		{Name: "Miami", Continent: "NA", LatDeg: 25.8, LonDeg: -80.2},
		{Name: "Boston", Continent: "NA", LatDeg: 42.4, LonDeg: -71.1},
		{Name: "LosAngeles", Continent: "NA", LatDeg: 34.1, LonDeg: -118.2},
		{Name: "MexicoCity", Continent: "NA", LatDeg: 19.4, LonDeg: -99.1},
		{Name: "Vancouver", Continent: "NA", LatDeg: 49.3, LonDeg: -123.1},
		{Name: "BuenosAires", Continent: "SA", LatDeg: -34.6, LonDeg: -58.4},
		{Name: "Santiago", Continent: "SA", LatDeg: -33.4, LonDeg: -70.7},
		{Name: "Bogota", Continent: "SA", LatDeg: 4.7, LonDeg: -74.1},
		{Name: "HongKong", Continent: "AS", LatDeg: 22.3, LonDeg: 114.2},
		{Name: "Taipei", Continent: "AS", LatDeg: 25.0, LonDeg: 121.6},
		{Name: "Mumbai", Continent: "AS", LatDeg: 19.1, LonDeg: 72.9},
		{Name: "Bangkok", Continent: "AS", LatDeg: 13.8, LonDeg: 100.5},
		{Name: "Melbourne", Continent: "OC", LatDeg: -37.8, LonDeg: 145.0},
		{Name: "Brisbane", Continent: "OC", LatDeg: -27.5, LonDeg: 153.0},
	}
}

// FindLocation returns the catalog entry with the given name.
func FindLocation(name string) (Location, bool) {
	for _, l := range Catalog() {
		if l.Name == name {
			return l, true
		}
	}
	return Location{}, false
}
