package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func loc(t *testing.T, name string) Location {
	t.Helper()
	l, ok := FindLocation(name)
	if !ok {
		t.Fatalf("catalog is missing %q", name)
	}
	return l
}

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		a, b   string
		wantKm float64
		tolKm  float64
	}{
		{"NewYork", "London", 5570, 300},
		{"Tokyo", "SanJose", 8300, 400},
		{"Amsterdam", "Sydney", 16650, 600},
		{"Dallas", "Chicago", 1290, 150},
	}
	for _, tt := range tests {
		got := DistanceKm(loc(t, tt.a), loc(t, tt.b))
		if got < tt.wantKm-tt.tolKm || got > tt.wantKm+tt.tolKm {
			t.Errorf("Distance(%s, %s) = %.0f km, want %.0f +- %.0f",
				tt.a, tt.b, got, tt.wantKm, tt.tolKm)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Location{LatDeg: wrap(lat1, 90), LonDeg: wrap(lon1, 180)}
		b := Location{LatDeg: wrap(lat2, 90), LonDeg: wrap(lon2, 180)}
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		// Symmetric, non-negative, bounded by half the circumference.
		return dab >= 0 && dab <= 20040 && abs(dab-dba) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceZero(t *testing.T) {
	a := loc(t, "Paris")
	if d := DistanceKm(a, a); d > 1e-9 {
		t.Errorf("self distance = %v", d)
	}
}

func TestPropagationDelay(t *testing.T) {
	// Transatlantic NY-London: geodesic ~5570 km, stretched 1.6x at
	// 200 km/ms -> ~45 ms one-way.
	d := PropagationDelay(loc(t, "NewYork"), loc(t, "London"))
	if d < 35*time.Millisecond || d > 60*time.Millisecond {
		t.Errorf("NY-London one-way delay = %v, want ~45ms", d)
	}
	// Delay floor for co-located nodes.
	a := loc(t, "Paris")
	if d := PropagationDelay(a, a); d < 100*time.Microsecond {
		t.Errorf("co-located delay = %v, want >= 0.1ms floor", d)
	}
}

func TestCatalogWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	continents := make(map[string]int)
	for _, l := range Catalog() {
		if seen[l.Name] {
			t.Errorf("duplicate catalog city %q", l.Name)
		}
		seen[l.Name] = true
		if l.LatDeg < -90 || l.LatDeg > 90 || l.LonDeg < -180 || l.LonDeg > 180 {
			t.Errorf("%s has invalid coordinates (%v, %v)", l.Name, l.LatDeg, l.LonDeg)
		}
		continents[l.Continent]++
	}
	// The paper's measurement spans five continents.
	for _, c := range []string{"NA", "EU", "AS", "SA", "OC"} {
		if continents[c] == 0 {
			t.Errorf("catalog has no city on continent %s", c)
		}
	}
}

func TestFindLocation(t *testing.T) {
	if _, ok := FindLocation("Tokyo"); !ok {
		t.Error("Tokyo not found")
	}
	if _, ok := FindLocation("Atlantis"); ok {
		t.Error("Atlantis should not exist")
	}
}

func TestLocationString(t *testing.T) {
	l := Location{Name: "Paris", Continent: "EU"}
	if got := l.String(); got != "Paris (EU)" {
		t.Errorf("String = %q", got)
	}
}

func wrap(x, lim float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	// Fold into [-lim, lim] in constant time (quick feeds huge values).
	x = math.Mod(x, 2*lim)
	if x > lim {
		x -= 2 * lim
	}
	if x < -lim {
		x += 2 * lim
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
