package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// buildLine creates a 4-node line network A-B-C-D with uniform links.
func buildLine(t *testing.T, mk func(a, b NodeID) Link) (*Network, []NodeID) {
	t.Helper()
	n := New()
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i] = n.AddNode(Node{Name: string(rune('A' + i)), Kind: KindRouter})
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := n.AddLink(mk(ids[i], ids[i+1])); err != nil {
			t.Fatalf("add link: %v", err)
		}
	}
	return n, ids
}

func simpleLink(a, b NodeID) Link {
	return Link{
		A: a, B: b,
		Delay:           10 * time.Millisecond,
		CapacityMbps:    100,
		BaseLossRate:    0.001,
		BaseUtilization: 0.2,
		MaxQueueDelay:   20 * time.Millisecond,
	}
}

func TestAddLinkValidation(t *testing.T) {
	n := New()
	a := n.AddNode(Node{Name: "a"})
	if err := n.AddLink(Link{A: a, B: 99}); err == nil {
		t.Error("expected error for unknown node")
	}
	if err := n.AddLink(Link{A: a, B: a}); err == nil {
		t.Error("expected error for self loop")
	}
}

func TestLinkLookupIsUndirected(t *testing.T) {
	n, ids := buildLine(t, simpleLink)
	if _, ok := n.Link(ids[0], ids[1]); !ok {
		t.Fatal("forward lookup failed")
	}
	if _, ok := n.Link(ids[1], ids[0]); !ok {
		t.Fatal("reverse lookup failed")
	}
	if _, ok := n.Link(ids[0], ids[2]); ok {
		t.Fatal("nonexistent link found")
	}
}

func TestNeighbors(t *testing.T) {
	n, ids := buildLine(t, simpleLink)
	if got := len(n.Neighbors(ids[1])); got != 2 {
		t.Errorf("middle node has %d neighbors, want 2", got)
	}
	if got := len(n.Neighbors(ids[0])); got != 1 {
		t.Errorf("end node has %d neighbors, want 1", got)
	}
}

func TestPathMetricsComposition(t *testing.T) {
	n, ids := buildLine(t, simpleLink)
	m, err := n.PathMetrics(Path{Nodes: ids}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Base RTT: 3 links x 10ms x 2 = 60ms.
	if m.BaseRTT != 60*time.Millisecond {
		t.Errorf("BaseRTT = %v, want 60ms", m.BaseRTT)
	}
	// Loss composes as 1-(1-p)^3.
	want := 1 - math.Pow(1-0.001, 3)
	if math.Abs(m.LossRate-want) > 1e-12 {
		t.Errorf("LossRate = %v, want %v", m.LossRate, want)
	}
	if m.BottleneckMbps != 100 {
		t.Errorf("Bottleneck = %v", m.BottleneckMbps)
	}
	if math.Abs(m.AvailableMbps-80) > 1e-9 {
		t.Errorf("Available = %v, want 80", m.AvailableMbps)
	}
	if m.Hops != 3 {
		t.Errorf("Hops = %d", m.Hops)
	}
}

func TestPathMetricsErrors(t *testing.T) {
	n, ids := buildLine(t, simpleLink)
	if _, err := n.PathMetrics(Path{Nodes: ids[:1]}, 0); err == nil {
		t.Error("expected error for single-node path")
	}
	if _, err := n.PathMetrics(Path{Nodes: []NodeID{ids[0], ids[2]}}, 0); err == nil {
		t.Error("expected error for missing link")
	}
}

func TestCongestionEvent(t *testing.T) {
	l := simpleLink(0, 1)
	l.AddEvent(CongestionEvent{
		Start: time.Hour, End: 2 * time.Hour,
		ExtraUtilization: 0.5, ExtraLoss: 0.01,
	})
	before := l.LossRateAt(30 * time.Minute)
	during := l.LossRateAt(90 * time.Minute)
	after := l.LossRateAt(3 * time.Hour)
	if during <= before || during <= after {
		t.Errorf("event did not raise loss: before=%v during=%v after=%v", before, during, after)
	}
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("loss differs outside event: %v vs %v", before, after)
	}
	if u := l.UtilizationAt(90 * time.Minute); u <= l.BaseUtilization {
		t.Errorf("event did not raise utilization: %v", u)
	}
}

func TestUtilizationClamped(t *testing.T) {
	l := simpleLink(0, 1)
	l.BaseUtilization = 0.9
	l.AddEvent(CongestionEvent{Start: 0, End: time.Hour, ExtraUtilization: 0.5})
	if u := l.UtilizationAt(time.Minute); u > 0.98 {
		t.Errorf("utilization above cap: %v", u)
	}
	l2 := simpleLink(0, 1)
	l2.BaseUtilization = -1
	if u := l2.UtilizationAt(0); u != 0 {
		t.Errorf("negative utilization not clamped: %v", u)
	}
}

// TestQueueDelayMonotonic: queueing delay grows with utilization.
func TestQueueDelayMonotonic(t *testing.T) {
	f := func(u1, u2 float64) bool {
		a, b := math.Abs(math.Mod(u1, 1)), math.Abs(math.Mod(u2, 1))
		if a > b {
			a, b = b, a
		}
		la := simpleLink(0, 1)
		la.BaseUtilization = a
		lb := simpleLink(0, 1)
		lb.BaseUtilization = b
		return la.QueueDelayAt(0) <= lb.QueueDelayAt(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLossMonotonicInUtil: congestion loss is non-decreasing in
// utilization above the knee.
func TestLossMonotonicInUtil(t *testing.T) {
	prev := -1.0
	for u := 0.0; u <= 0.98; u += 0.02 {
		l := simpleLink(0, 1)
		l.BaseUtilization = u
		loss := l.LossRateAt(0)
		if loss < prev-1e-12 {
			t.Fatalf("loss decreased at u=%v", u)
		}
		prev = loss
	}
}

func TestConcat(t *testing.T) {
	a := Path{Nodes: []NodeID{1, 2, 3}}
	b := Path{Nodes: []NodeID{3, 4}}
	got, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{1, 2, 3, 4}
	if len(got.Nodes) != len(want) {
		t.Fatalf("Concat = %v", got.Nodes)
	}
	for i := range want {
		if got.Nodes[i] != want[i] {
			t.Fatalf("Concat = %v, want %v", got.Nodes, want)
		}
	}
	if _, err := Concat(a, Path{Nodes: []NodeID{9, 10}}); err == nil {
		t.Error("expected pivot mismatch error")
	}
	if _, err := Concat(Path{}, b); err == nil {
		t.Error("expected empty-path error")
	}
}

func TestConcatMetrics(t *testing.T) {
	a := Metrics{BaseRTT: 100 * time.Millisecond, LossRate: 0.01, BottleneckMbps: 100, AvailableMbps: 80, Hops: 3}
	b := Metrics{BaseRTT: 50 * time.Millisecond, LossRate: 0.02, BottleneckMbps: 50, AvailableMbps: 40, Hops: 2}
	m := ConcatMetrics(a, b, time.Millisecond)
	if m.BaseRTT != 152*time.Millisecond {
		t.Errorf("BaseRTT = %v (relay overhead counted twice per round trip)", m.BaseRTT)
	}
	wantLoss := 1 - 0.99*0.98
	if math.Abs(m.LossRate-wantLoss) > 1e-12 {
		t.Errorf("LossRate = %v, want %v", m.LossRate, wantLoss)
	}
	if m.BottleneckMbps != 50 || m.AvailableMbps != 40 {
		t.Errorf("bandwidths = %v/%v", m.BottleneckMbps, m.AvailableMbps)
	}
	if m.Hops != 5 {
		t.Errorf("Hops = %d", m.Hops)
	}
}

func TestPathValid(t *testing.T) {
	n, ids := buildLine(t, simpleLink)
	if !(Path{Nodes: ids}).Valid(n) {
		t.Error("line path should be valid")
	}
	if (Path{Nodes: []NodeID{ids[0], ids[1], ids[0]}}).Valid(n) {
		t.Error("revisiting path should be invalid")
	}
	if (Path{Nodes: ids[:1]}).Valid(n) {
		t.Error("single-node path should be invalid")
	}
}

func TestReplaceLink(t *testing.T) {
	n, ids := buildLine(t, simpleLink)
	nl := simpleLink(ids[0], ids[1])
	nl.CapacityMbps = 999
	if err := n.AddLink(nl); err != nil {
		t.Fatal(err)
	}
	l, _ := n.Link(ids[0], ids[1])
	if l.CapacityMbps != 999 {
		t.Errorf("link not replaced: %v", l.CapacityMbps)
	}
	// Adjacency should not duplicate.
	if got := len(n.Neighbors(ids[0])); got != 1 {
		t.Errorf("neighbors after replace = %d", got)
	}
}

func TestMetricsRTT(t *testing.T) {
	m := Metrics{BaseRTT: 100 * time.Millisecond, QueueDelayRTT: 20 * time.Millisecond}
	if m.RTT() != 120*time.Millisecond {
		t.Errorf("RTT = %v", m.RTT())
	}
}
