// Package netsim provides the network substrate of the CRONets reproduction:
// a graph of routers and hosts connected by links with propagation delay,
// capacity, background utilization, and loss, plus time-varying congestion
// events. Path-level metrics (base RTT, queueing delay, composed loss rate,
// available bandwidth) are derived from the links a path traverses; the TCP
// and MPTCP simulators in internal/tcpsim and internal/mptcpsim consume those
// metrics.
//
// The model is a fluid one: individual background packets are not simulated.
// Each link carries a background utilization in [0, 1); utilization induces
// queueing delay (convex in utilization) and congestion loss (quadratic above
// a knee), which is how the reproduction realizes the paper's premise that
// most Internet bottlenecks live in the congested core (Akella et al. 2003,
// Kang & Gligor 2014).
package netsim

import (
	"fmt"
	"math"
	"time"

	"cronets/internal/geo"
)

// NodeID identifies a node within a Network.
type NodeID int

// NodeKind classifies nodes.
type NodeKind int

// Node kinds.
const (
	KindRouter NodeKind = iota + 1
	KindHost
	KindCloudDC
)

// String returns a short name for the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindHost:
		return "host"
	case KindCloudDC:
		return "cloud-dc"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a router, host, or cloud data-center node in the network.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
	// ASN is the autonomous system the node belongs to (0 if none).
	ASN int
	// Loc is the node's geographic location, used for propagation delays.
	Loc geo.Location
}

// CongestionEvent is a transient increase in a link's utilization and loss
// during [Start, End) of simulation time. The longitudinal experiment
// (Figure 6) injects these to reproduce the paper's observation that the
// largest-improvement paths were suffering a transient event in an
// intermediate ISP.
type CongestionEvent struct {
	Start, End       time.Duration
	ExtraUtilization float64
	ExtraLoss        float64
}

// Active reports whether the event covers simulation time t.
func (e CongestionEvent) Active(t time.Duration) bool {
	return t >= e.Start && t < e.End
}

// Link is an undirected network link. Utilization and loss are symmetric;
// this matches the paper's black-box treatment of paths.
type Link struct {
	// A and B are the endpoints; A < B canonically.
	A, B NodeID
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// CapacityMbps is the raw link capacity in megabits per second.
	CapacityMbps float64
	// BaseLossRate is the per-packet loss probability independent of
	// congestion (transmission errors, policers).
	BaseLossRate float64
	// BaseUtilization is the background traffic load in [0, 1).
	BaseUtilization float64
	// MaxQueueDelay is the queueing delay at full utilization (one-way).
	MaxQueueDelay time.Duration
	// DiurnalAmplitude adds a sinusoidal day-night swing to the
	// utilization: u(t) = base + A*sin(2*pi*(t/24h + phase)). Real
	// backbone load follows office hours; the longitudinal experiment's
	// 3-hour samples ride this curve.
	DiurnalAmplitude float64
	// DiurnalPhase shifts the swing, in fractions of a day.
	DiurnalPhase float64

	events []CongestionEvent
}

// linkKey canonicalizes the undirected pair.
type linkKey struct{ a, b NodeID }

func keyOf(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// AddEvent attaches a transient congestion event to the link.
func (l *Link) AddEvent(e CongestionEvent) {
	l.events = append(l.events, e)
}

// Events returns a copy of the link's congestion events.
func (l *Link) Events() []CongestionEvent {
	return append([]CongestionEvent(nil), l.events...)
}

const (
	// maxUtilization caps effective utilization so queueing stays finite.
	maxUtilization = 0.98
	// congLossKnee is the utilization above which congestion loss appears.
	congLossKnee = 0.70
	// congLossMax is the congestion-induced loss rate at full utilization.
	congLossMax = 0.008
)

// UtilizationAt returns the effective utilization at simulation time t,
// including transient events, clamped to [0, maxUtilization].
func (l *Link) UtilizationAt(t time.Duration) float64 {
	u := l.BaseUtilization
	if l.DiurnalAmplitude != 0 {
		day := t.Seconds() / (24 * 3600)
		u += l.DiurnalAmplitude * math.Sin(2*math.Pi*(day+l.DiurnalPhase))
	}
	for _, e := range l.events {
		if e.Active(t) {
			u += e.ExtraUtilization
		}
	}
	if u < 0 {
		u = 0
	}
	if u > maxUtilization {
		u = maxUtilization
	}
	return u
}

// LossRateAt returns the per-packet loss probability at time t: the base
// loss plus congestion loss, which grows quadratically once utilization
// exceeds the knee.
func (l *Link) LossRateAt(t time.Duration) float64 {
	loss := l.BaseLossRate
	u := l.UtilizationAt(t)
	if u > congLossKnee {
		x := (u - congLossKnee) / (1 - congLossKnee)
		loss += congLossMax * x * x
	}
	for _, e := range l.events {
		if e.Active(t) {
			loss += e.ExtraLoss
		}
	}
	if loss > 1 {
		loss = 1
	}
	return loss
}

// QueueDelayAt returns the one-way queueing delay at time t. It uses an
// M/M/1-flavored convex curve u/(1-u), scaled so that MaxQueueDelay is
// reached at the utilization cap.
func (l *Link) QueueDelayAt(t time.Duration) time.Duration {
	u := l.UtilizationAt(t)
	if u <= 0 {
		return 0
	}
	// Normalize u/(1-u) by its value at maxUtilization.
	norm := maxUtilization / (1 - maxUtilization)
	f := (u / (1 - u)) / norm
	return time.Duration(f * float64(l.MaxQueueDelay))
}

// AvailableMbps returns the capacity left for foreground traffic at time t.
func (l *Link) AvailableMbps(t time.Duration) float64 {
	return l.CapacityMbps * (1 - l.UtilizationAt(t))
}

// Network is a graph of nodes and undirected links.
type Network struct {
	nodes []Node
	links map[linkKey]*Link
	adj   map[NodeID][]NodeID
}

// New returns an empty network.
func New() *Network {
	return &Network{
		links: make(map[linkKey]*Link),
		adj:   make(map[NodeID][]NodeID),
	}
}

// AddNode adds a node and returns its ID. The Node's ID field is assigned by
// the network.
func (n *Network) AddNode(node Node) NodeID {
	node.ID = NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	return node.ID
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return Node{}, fmt.Errorf("netsim: no node %d", id)
	}
	return n.nodes[id], nil
}

// MustNode returns the node with the given ID and panics if it does not
// exist. It is intended for use with IDs the caller just created.
func (n *Network) MustNode(id NodeID) Node {
	node, err := n.Node(id)
	if err != nil {
		panic(err)
	}
	return node
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Nodes returns a copy of all nodes.
func (n *Network) Nodes() []Node {
	return append([]Node(nil), n.nodes...)
}

// AddLink inserts an undirected link between a and b. Adding a link between
// the same pair twice replaces the previous link.
func (n *Network) AddLink(l Link) error {
	if _, err := n.Node(l.A); err != nil {
		return fmt.Errorf("netsim: add link: %w", err)
	}
	if _, err := n.Node(l.B); err != nil {
		return fmt.Errorf("netsim: add link: %w", err)
	}
	if l.A == l.B {
		return fmt.Errorf("netsim: add link: self loop on node %d", l.A)
	}
	k := keyOf(l.A, l.B)
	if l.A > l.B {
		l.A, l.B = l.B, l.A
	}
	if _, exists := n.links[k]; !exists {
		n.adj[k.a] = append(n.adj[k.a], k.b)
		n.adj[k.b] = append(n.adj[k.b], k.a)
	}
	n.links[k] = &l
	return nil
}

// Link returns the link between a and b, if any.
func (n *Network) Link(a, b NodeID) (*Link, bool) {
	l, ok := n.links[keyOf(a, b)]
	return l, ok
}

// Neighbors returns the IDs adjacent to id. The returned slice is shared;
// callers must not modify it.
func (n *Network) Neighbors(id NodeID) []NodeID {
	return n.adj[id]
}

// NumLinks returns the number of links.
func (n *Network) NumLinks() int { return len(n.links) }

// Links returns all links. The pointers are live: mutating a returned link
// (e.g. adding a congestion event) affects the network.
func (n *Network) Links() []*Link {
	out := make([]*Link, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l)
	}
	return out
}

// Path is a loop-free sequence of node IDs with a link between each
// consecutive pair.
type Path struct {
	Nodes []NodeID
}

// Hops returns the number of links on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Valid reports whether every consecutive pair of nodes is connected in n
// and the path visits no node twice.
func (p Path) Valid(n *Network) bool {
	if len(p.Nodes) < 2 {
		return false
	}
	seen := make(map[NodeID]bool, len(p.Nodes))
	for i, id := range p.Nodes {
		if seen[id] {
			return false
		}
		seen[id] = true
		if i == 0 {
			continue
		}
		if _, ok := n.Link(p.Nodes[i-1], id); !ok {
			return false
		}
	}
	return true
}

// Metrics is the set of path-level quantities consumed by the TCP simulator.
type Metrics struct {
	// BaseRTT is the round-trip propagation delay (no queueing).
	BaseRTT time.Duration
	// QueueDelayRTT is the round-trip queueing delay contributed by
	// background utilization at the sampling time.
	QueueDelayRTT time.Duration
	// LossRate is the composed per-packet loss probability across links.
	LossRate float64
	// BottleneckMbps is the minimum raw capacity along the path.
	BottleneckMbps float64
	// AvailableMbps is the minimum capacity left by background traffic.
	AvailableMbps float64
	// Hops is the number of links on the path.
	Hops int
}

// RTT returns the effective round-trip time: base plus queueing.
func (m Metrics) RTT() time.Duration { return m.BaseRTT + m.QueueDelayRTT }

// PathMetrics composes the metrics of the links along p at simulation time t.
// Loss composes as 1 - prod(1 - loss_i); delays add; bandwidths take the min.
func (n *Network) PathMetrics(p Path, t time.Duration) (Metrics, error) {
	if len(p.Nodes) < 2 {
		return Metrics{}, fmt.Errorf("netsim: path needs at least 2 nodes, got %d", len(p.Nodes))
	}
	m := Metrics{BottleneckMbps: -1, AvailableMbps: -1, Hops: p.Hops()}
	survive := 1.0
	for i := 1; i < len(p.Nodes); i++ {
		l, ok := n.Link(p.Nodes[i-1], p.Nodes[i])
		if !ok {
			return Metrics{}, fmt.Errorf("netsim: no link %d-%d on path", p.Nodes[i-1], p.Nodes[i])
		}
		m.BaseRTT += 2 * l.Delay
		m.QueueDelayRTT += 2 * l.QueueDelayAt(t)
		survive *= 1 - l.LossRateAt(t)
		if m.BottleneckMbps < 0 || l.CapacityMbps < m.BottleneckMbps {
			m.BottleneckMbps = l.CapacityMbps
		}
		if avail := l.AvailableMbps(t); m.AvailableMbps < 0 || avail < m.AvailableMbps {
			m.AvailableMbps = avail
		}
	}
	m.LossRate = 1 - survive
	return m, nil
}

// Concat joins two paths sharing a pivot node (a ends where b begins). The
// result reuses the pivot once. Concat does not check loop-freedom: an
// overlay path may legitimately revisit routers near the shared endpoint.
func Concat(a, b Path) (Path, error) {
	if len(a.Nodes) == 0 || len(b.Nodes) == 0 {
		return Path{}, fmt.Errorf("netsim: concat of empty path")
	}
	if a.Nodes[len(a.Nodes)-1] != b.Nodes[0] {
		return Path{}, fmt.Errorf("netsim: concat pivot mismatch: %d vs %d",
			a.Nodes[len(a.Nodes)-1], b.Nodes[0])
	}
	nodes := make([]NodeID, 0, len(a.Nodes)+len(b.Nodes)-1)
	nodes = append(nodes, a.Nodes...)
	nodes = append(nodes, b.Nodes[1:]...)
	return Path{Nodes: nodes}, nil
}

// ConcatMetrics composes metrics of a concatenated (overlay) path from the
// two segment metrics, adding a per-hop relay overhead: the overlay node
// decapsulates, rewrites addresses (NAT) and re-encapsulates each packet.
func ConcatMetrics(a, b Metrics, relayOverhead time.Duration) Metrics {
	bn := a.BottleneckMbps
	if b.BottleneckMbps < bn {
		bn = b.BottleneckMbps
	}
	av := a.AvailableMbps
	if b.AvailableMbps < av {
		av = b.AvailableMbps
	}
	return Metrics{
		BaseRTT:        a.BaseRTT + b.BaseRTT + 2*relayOverhead,
		QueueDelayRTT:  a.QueueDelayRTT + b.QueueDelayRTT,
		LossRate:       1 - (1-a.LossRate)*(1-b.LossRate),
		BottleneckMbps: bn,
		AvailableMbps:  av,
		Hops:           a.Hops + b.Hops,
	}
}
