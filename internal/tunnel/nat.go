package tunnel

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"
)

// ErrPortsExhausted is returned when the NAT has no free ports.
var ErrPortsExhausted = errors.New("tunnel: NAT port range exhausted")

// natKey identifies an outbound flow before translation.
type natKey struct {
	proto Proto
	src   netip.AddrPort
	dst   netip.AddrPort
}

// natEntry is one live translation.
type natEntry struct {
	key      natKey
	mapped   uint16 // port on the NAT's external address
	lastSeen time.Time
}

// NAT implements the overlay node's IP-masquerade table: outbound packets
// get their source rewritten to the NAT's external address with an
// allocated port; inbound packets to an allocated port are rewritten back
// to the original internal source. Idle entries expire.
//
// The zero value is not usable; construct with NewNAT.
type NAT struct {
	external netip.Addr
	loPort   uint16
	hiPort   uint16
	idle     time.Duration
	now      func() time.Time

	mu      sync.Mutex
	byKey   map[natKey]*natEntry
	byPort  map[uint16]*natEntry
	nextTry uint16
}

// NATOption customizes a NAT.
type NATOption func(*NAT)

// WithPortRange sets the masquerade port range (default 40000-60000).
func WithPortRange(lo, hi uint16) NATOption {
	return func(n *NAT) { n.loPort, n.hiPort = lo, hi }
}

// WithIdleTimeout sets the entry idle expiry (default 5 minutes).
func WithIdleTimeout(d time.Duration) NATOption {
	return func(n *NAT) { n.idle = d }
}

// WithClock injects a time source for tests.
func WithClock(now func() time.Time) NATOption {
	return func(n *NAT) { n.now = now }
}

// NewNAT creates a masquerade table translating to the given external
// address.
func NewNAT(external netip.Addr, opts ...NATOption) *NAT {
	n := &NAT{
		external: external,
		loPort:   40000,
		hiPort:   60000,
		idle:     5 * time.Minute,
		now:      time.Now,
		byKey:    make(map[natKey]*natEntry),
		byPort:   make(map[uint16]*natEntry),
	}
	for _, o := range opts {
		o(n)
	}
	n.nextTry = n.loPort
	return n
}

// TranslateOutbound rewrites an outbound packet's source to the NAT's
// external address, allocating (or reusing) a port mapping.
func (n *NAT) TranslateOutbound(p Packet) (Packet, error) {
	key := natKey{proto: p.Proto, src: p.Src, dst: p.Dst}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	n.expireLocked(now)
	e, ok := n.byKey[key]
	if !ok {
		port, err := n.allocPortLocked()
		if err != nil {
			return Packet{}, err
		}
		e = &natEntry{key: key, mapped: port}
		n.byKey[key] = e
		n.byPort[port] = e
	}
	e.lastSeen = now
	out := p
	out.Src = netip.AddrPortFrom(n.external, e.mapped)
	return out, nil
}

// TranslateInbound rewrites an inbound packet addressed to a masqueraded
// port back to the original internal source, returning false if no mapping
// exists (the packet should be dropped, exactly as a Linux masquerade
// would).
func (n *NAT) TranslateInbound(p Packet) (Packet, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.expireLocked(n.now())
	e, ok := n.byPort[p.Dst.Port()]
	if !ok || e.key.proto != p.Proto || p.Dst.Addr() != n.external {
		return Packet{}, false
	}
	// Reverse direction must come from the flow's destination.
	if p.Src != e.key.dst {
		return Packet{}, false
	}
	e.lastSeen = n.now()
	out := p
	out.Dst = e.key.src
	return out, true
}

// Len returns the number of live translations.
func (n *NAT) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.expireLocked(n.now())
	return len(n.byKey)
}

// External returns the NAT's external address.
func (n *NAT) External() netip.Addr { return n.external }

func (n *NAT) allocPortLocked() (uint16, error) {
	span := int(n.hiPort) - int(n.loPort) + 1
	if span <= 0 {
		return 0, fmt.Errorf("tunnel: invalid NAT port range %d-%d", n.loPort, n.hiPort)
	}
	for i := 0; i < span; i++ {
		port := n.nextTry
		if n.nextTry == n.hiPort {
			n.nextTry = n.loPort
		} else {
			n.nextTry++
		}
		if _, used := n.byPort[port]; !used {
			return port, nil
		}
	}
	return 0, ErrPortsExhausted
}

func (n *NAT) expireLocked(now time.Time) {
	if n.idle <= 0 {
		return
	}
	for port, e := range n.byPort {
		if now.Sub(e.lastSeen) > n.idle {
			delete(n.byPort, port)
			delete(n.byKey, e.key)
		}
	}
}
