package tunnel

import (
	"bytes"
	"net"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cronets/internal/obs"
)

func TestFramerRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	f := NewFramer(&buf)
	payloads := [][]byte{[]byte("hello"), {}, []byte("world"), bytes.Repeat([]byte{7}, 10000)}
	for _, p := range payloads {
		if err := f.WriteFrame(p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := f.ReadFrame()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
	}
}

func TestFramerRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	f := NewFramer(&buf)
	if err := f.WriteFrame(make([]byte, MaxFrameSize+1)); err != ErrFrameTooLarge {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
	// A corrupted length header must be rejected on read.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := f.ReadFrame(); err != ErrFrameTooLarge {
		t.Errorf("read err = %v, want ErrFrameTooLarge", err)
	}
}

// TestFramerProperty: any payload within limits survives a roundtrip.
func TestFramerProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxFrameSize {
			payload = payload[:MaxFrameSize]
		}
		var buf bytes.Buffer
		fr := NewFramer(&buf)
		if err := fr.WriteFrame(payload); err != nil {
			return false
		}
		got, err := fr.ReadFrame()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func addrPort(s string) netip.AddrPort {
	return netip.MustParseAddrPort(s)
}

func TestPacketRoundtrip(t *testing.T) {
	p := Packet{
		Proto:   ProtoTCP,
		Src:     addrPort("10.1.2.3:4444"),
		Dst:     addrPort("192.0.2.7:443"),
		Payload: []byte("payload bytes"),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != p.Proto || got.Src != p.Src || got.Dst != p.Dst || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, p)
	}
}

func TestPacketRoundtripIPv6(t *testing.T) {
	p := Packet{
		Proto: ProtoUDP,
		Src:   addrPort("[2001:db8::1]:1000"),
		Dst:   addrPort("[2001:db8::2]:2000"),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst {
		t.Errorf("v6 roundtrip mismatch: %+v", got)
	}
}

func TestUnmarshalShortPacket(t *testing.T) {
	if _, err := UnmarshalPacket([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short packet")
	}
}

// TestPacketProperty: random addresses and payloads roundtrip.
func TestPacketProperty(t *testing.T) {
	f := func(a, b [4]byte, pa, pb uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		p := Packet{
			Proto:   ProtoTCP,
			Src:     netip.AddrPortFrom(netip.AddrFrom4(a), pa),
			Dst:     netip.AddrPortFrom(netip.AddrFrom4(b), pb),
			Payload: payload,
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalPacket(buf)
		return err == nil && got.Src == p.Src && got.Dst == p.Dst &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func natAddr() netip.Addr { return netip.MustParseAddr("198.51.100.1") }

func TestNATOutboundInbound(t *testing.T) {
	n := NewNAT(natAddr())
	orig := Packet{
		Proto: ProtoTCP,
		Src:   addrPort("10.0.0.5:3333"),
		Dst:   addrPort("192.0.2.9:80"),
	}
	out, err := n.TranslateOutbound(orig)
	if err != nil {
		t.Fatal(err)
	}
	if out.Src.Addr() != natAddr() {
		t.Errorf("outbound src = %v, want NAT external", out.Src)
	}
	if out.Dst != orig.Dst {
		t.Errorf("outbound dst changed: %v", out.Dst)
	}
	// Return traffic: from the flow's destination to the mapped port.
	reply := Packet{Proto: ProtoTCP, Src: orig.Dst, Dst: out.Src}
	in, ok := n.TranslateInbound(reply)
	if !ok {
		t.Fatal("inbound translation failed")
	}
	if in.Dst != orig.Src {
		t.Errorf("inbound dst = %v, want original src %v", in.Dst, orig.Src)
	}
}

func TestNATStableMapping(t *testing.T) {
	n := NewNAT(natAddr())
	p := Packet{Proto: ProtoTCP, Src: addrPort("10.0.0.5:3333"), Dst: addrPort("192.0.2.9:80")}
	a, err := n.TranslateOutbound(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.TranslateOutbound(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Src != b.Src {
		t.Errorf("same flow mapped to different ports: %v vs %v", a.Src, b.Src)
	}
	if n.Len() != 1 {
		t.Errorf("NAT has %d entries, want 1", n.Len())
	}
}

func TestNATDistinctFlowsDistinctPorts(t *testing.T) {
	n := NewNAT(natAddr())
	seen := make(map[uint16]bool)
	for port := uint16(1000); port < 1050; port++ {
		p := Packet{
			Proto: ProtoTCP,
			Src:   netip.AddrPortFrom(netip.MustParseAddr("10.0.0.5"), port),
			Dst:   addrPort("192.0.2.9:80"),
		}
		out, err := n.TranslateOutbound(p)
		if err != nil {
			t.Fatal(err)
		}
		if seen[out.Src.Port()] {
			t.Fatalf("port %d reused", out.Src.Port())
		}
		seen[out.Src.Port()] = true
	}
}

func TestNATRejectsStrangers(t *testing.T) {
	n := NewNAT(natAddr())
	p := Packet{Proto: ProtoTCP, Src: addrPort("10.0.0.5:3333"), Dst: addrPort("192.0.2.9:80")}
	out, err := n.TranslateOutbound(p)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong source: a third party probing the mapped port is dropped.
	stranger := Packet{Proto: ProtoTCP, Src: addrPort("203.0.113.99:80"), Dst: out.Src}
	if _, ok := n.TranslateInbound(stranger); ok {
		t.Error("NAT accepted a packet from the wrong remote")
	}
	// Wrong protocol.
	wrongProto := Packet{Proto: ProtoUDP, Src: p.Dst, Dst: out.Src}
	if _, ok := n.TranslateInbound(wrongProto); ok {
		t.Error("NAT accepted the wrong protocol")
	}
	// Unmapped port.
	unmapped := Packet{Proto: ProtoTCP, Src: p.Dst,
		Dst: netip.AddrPortFrom(natAddr(), 1)}
	if _, ok := n.TranslateInbound(unmapped); ok {
		t.Error("NAT accepted an unmapped port")
	}
}

func TestNATExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	n := NewNAT(natAddr(), WithIdleTimeout(time.Minute), WithClock(clock))
	p := Packet{Proto: ProtoTCP, Src: addrPort("10.0.0.5:3333"), Dst: addrPort("192.0.2.9:80")}
	if _, err := n.TranslateOutbound(p); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 1 {
		t.Fatal("entry missing")
	}
	now = now.Add(2 * time.Minute)
	if n.Len() != 0 {
		t.Error("idle entry not expired")
	}
}

func TestNATPortExhaustion(t *testing.T) {
	n := NewNAT(natAddr(), WithPortRange(50000, 50002))
	for i := 0; i < 3; i++ {
		p := Packet{
			Proto: ProtoTCP,
			Src:   netip.AddrPortFrom(netip.MustParseAddr("10.0.0.5"), uint16(1000+i)),
			Dst:   addrPort("192.0.2.9:80"),
		}
		if _, err := n.TranslateOutbound(p); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
	p := Packet{Proto: ProtoTCP, Src: addrPort("10.0.0.5:2000"), Dst: addrPort("192.0.2.9:80")}
	if _, err := n.TranslateOutbound(p); err != ErrPortsExhausted {
		t.Errorf("err = %v, want ErrPortsExhausted", err)
	}
}

// TestNATBijective: distinct live flows never share a mapped port, and
// reversing any mapping recovers the original flow (property test).
func TestNATBijective(t *testing.T) {
	f := func(flows []struct {
		SrcPort uint16
		DstOct  byte
	}) bool {
		if len(flows) > 100 {
			flows = flows[:100]
		}
		n := NewNAT(natAddr())
		seen := make(map[uint16]natFlow)
		for _, fl := range flows {
			orig := Packet{
				Proto: ProtoTCP,
				Src:   netip.AddrPortFrom(netip.MustParseAddr("10.0.0.8"), fl.SrcPort),
				Dst:   netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, fl.DstOct}), 80),
			}
			out, err := n.TranslateOutbound(orig)
			if err != nil {
				return false
			}
			key := out.Src.Port()
			if prev, dup := seen[key]; dup && prev != (natFlow{orig.Src, orig.Dst}) {
				return false // port collision across flows
			}
			seen[key] = natFlow{orig.Src, orig.Dst}
			reply := Packet{Proto: ProtoTCP, Src: orig.Dst, Dst: out.Src}
			back, ok := n.TranslateInbound(reply)
			if !ok || back.Dst != orig.Src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

type natFlow struct {
	src, dst netip.AddrPort
}

// TestOverlayNodeEndToEnd: a packet tunneled to the overlay node reaches
// the destination NATed, and the reply returns through the tunnel — the
// paper's Section II forwarding setup.
func TestOverlayNodeEndToEnd(t *testing.T) {
	overlayAddr := netip.MustParseAddr("198.51.100.1")
	serverAddr := netip.MustParseAddr("192.0.2.20")

	sw := NewSwitch()
	serverPort := sw.Attach(serverAddr)
	overlayPort := sw.Attach(overlayAddr)

	userSide, nodeSide := net.Pipe()
	node := NewOverlayNode(nodeSide, overlayAddr, overlayPort)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	user := NewEndpoint(userSide)
	defer user.Close()

	go func() {
		pkt, err := serverPort.RecvPacket()
		if err != nil {
			return
		}
		if pkt.Src.Addr() != overlayAddr {
			t.Errorf("server saw source %v, want NAT address", pkt.Src)
		}
		_ = serverPort.SendPacket(Packet{
			Proto: pkt.Proto, Src: pkt.Dst, Dst: pkt.Src,
			Payload: []byte("pong"),
		})
	}()

	req := Packet{
		Proto:   ProtoTCP,
		Src:     netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 5555),
		Dst:     netip.AddrPortFrom(serverAddr, 80),
		Payload: []byte("ping"),
	}
	if err := user.Send(req); err != nil {
		t.Fatal(err)
	}
	done := make(chan Packet, 1)
	go func() {
		p, err := user.Recv()
		if err == nil {
			done <- p
		}
	}()
	select {
	case reply := <-done:
		if string(reply.Payload) != "pong" {
			t.Errorf("payload = %q", reply.Payload)
		}
		if reply.Dst != req.Src {
			t.Errorf("reply dst = %v, want original src %v", reply.Dst, req.Src)
		}
		if reply.Src != req.Dst {
			t.Errorf("reply src = %v, want server %v", reply.Src, req.Dst)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply through the overlay node")
	}
	if node.NAT().Len() != 1 {
		t.Errorf("NAT entries = %d, want 1", node.NAT().Len())
	}
}

func TestOverlayNodeStartTwice(t *testing.T) {
	sw := NewSwitch()
	port := sw.Attach(netip.MustParseAddr("198.51.100.1"))
	_, nodeSide := net.Pipe()
	node := NewOverlayNode(nodeSide, netip.MustParseAddr("198.51.100.1"), port)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Start(); err == nil {
		t.Error("second Start should fail")
	}
}

func TestSwitchUnknownDestination(t *testing.T) {
	sw := NewSwitch()
	port := sw.Attach(netip.MustParseAddr("192.0.2.1"))
	err := port.SendPacket(Packet{Dst: addrPort("203.0.113.7:1")})
	if err == nil {
		t.Error("expected error for unknown destination")
	}
}

func TestSwitchPortClose(t *testing.T) {
	sw := NewSwitch()
	port := sw.Attach(netip.MustParseAddr("192.0.2.1"))
	go func() {
		time.Sleep(10 * time.Millisecond)
		_ = port.Close()
	}()
	if _, err := port.RecvPacket(); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestOverlayNodeInstrumented: a ping-pong through an instrumented node
// shows up in the decap/encap counters and the NAT gauge.
func TestOverlayNodeInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	overlayAddr := netip.MustParseAddr("198.51.100.1")
	serverAddr := netip.MustParseAddr("192.0.2.20")

	sw := NewSwitch()
	serverPort := sw.Attach(serverAddr)
	overlayPort := sw.Attach(overlayAddr)

	userSide, nodeSide := net.Pipe()
	node := NewOverlayNode(nodeSide, overlayAddr, overlayPort)
	node.Instrument(reg)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	user := NewEndpoint(userSide)
	defer user.Close()

	go func() {
		pkt, err := serverPort.RecvPacket()
		if err != nil {
			return
		}
		_ = serverPort.SendPacket(Packet{
			Proto: pkt.Proto, Src: pkt.Dst, Dst: pkt.Src,
			Payload: []byte("pong"),
		})
	}()
	if err := user.Send(Packet{
		Proto:   ProtoTCP,
		Src:     netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), 5555),
		Dst:     netip.AddrPortFrom(serverAddr, 80),
		Payload: []byte("ping"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Recv(); err != nil {
		t.Fatal(err)
	}
	// The encap counter ticks after the tunnel write completes; give the
	// pump a moment to get there.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) &&
		!strings.Contains(exposition(t, reg), "cronets_tunnel_frames_encap_total 1") {
		time.Sleep(time.Millisecond)
	}

	text := &strings.Builder{}
	if err := reg.WriteMetrics(text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cronets_tunnel_frames_decap_total 1",
		"cronets_tunnel_frames_encap_total 1",
		"cronets_tunnel_nat_entries 1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, text.String())
		}
	}
}

// exposition renders a registry's metrics as text.
func exposition(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
