package tunnel

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Proto is the transport protocol of an encapsulated packet.
type Proto uint8

// Supported protocols.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String returns the protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Packet is the simplified IP packet carried inside the tunnel: enough
// header to NAT (addresses and ports) plus an opaque payload.
type Packet struct {
	Proto   Proto
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Payload []byte
}

// packetHeaderSize is the fixed marshaled header size: proto (1) +
// 2 x (16-byte address + 2-byte port).
const packetHeaderSize = 1 + 2*(16+2)

// Marshal encodes the packet into a freshly allocated frame body.
func (p Packet) Marshal() ([]byte, error) {
	if len(p.Payload) > MaxFrameSize-packetHeaderSize {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, packetHeaderSize+len(p.Payload))
	if _, err := p.MarshalInto(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalInto encodes the packet into dst (which must hold at least
// packetHeaderSize + len(Payload) bytes) and returns the encoded length.
// It lets callers reuse a pooled buffer instead of allocating per packet.
func (p Packet) MarshalInto(dst []byte) (int, error) {
	if len(p.Payload) > MaxFrameSize-packetHeaderSize {
		return 0, ErrFrameTooLarge
	}
	n := packetHeaderSize + len(p.Payload)
	if len(dst) < n {
		return 0, fmt.Errorf("tunnel: marshal buffer too small: %d < %d", len(dst), n)
	}
	dst[0] = byte(p.Proto)
	src16 := p.Src.Addr().As16()
	dst16 := p.Dst.Addr().As16()
	copy(dst[1:17], src16[:])
	binary.BigEndian.PutUint16(dst[17:19], p.Src.Port())
	copy(dst[19:35], dst16[:])
	binary.BigEndian.PutUint16(dst[35:37], p.Dst.Port())
	copy(dst[packetHeaderSize:n], p.Payload)
	return n, nil
}

// UnmarshalPacket decodes a frame body into a packet. The payload aliases
// the input buffer.
func UnmarshalPacket(buf []byte) (Packet, error) {
	if len(buf) < packetHeaderSize {
		return Packet{}, fmt.Errorf("tunnel: packet too short: %d bytes", len(buf))
	}
	var src16, dst16 [16]byte
	copy(src16[:], buf[1:17])
	copy(dst16[:], buf[19:35])
	srcAddr := netip.AddrFrom16(src16).Unmap()
	dstAddr := netip.AddrFrom16(dst16).Unmap()
	return Packet{
		Proto:   Proto(buf[0]),
		Src:     netip.AddrPortFrom(srcAddr, binary.BigEndian.Uint16(buf[17:19])),
		Dst:     netip.AddrPortFrom(dstAddr, binary.BigEndian.Uint16(buf[35:37])),
		Payload: buf[packetHeaderSize:],
	}, nil
}
