package tunnel

import (
	"bytes"
	"net/netip"
	"testing"

	"cronets/internal/flowtrace"
)

func sampleCtx() flowtrace.Context {
	var c flowtrace.Context
	for i := range c.Trace {
		c.Trace[i] = byte(0xA0 + i)
	}
	c.Span = 0x0102_0304_0506_0708
	c.Sampled = true
	return c
}

// TestFramerTraceContextRoundTrip: a traced frame carries its context to
// the reader; untraced frames decode with the zero context; the two kinds
// interleave freely on one stream.
func TestFramerTraceContextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := NewFramer(&buf)
	tc := sampleCtx()

	if err := f.WriteFrameCtx([]byte("traced"), tc); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFrame([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	unsampled := tc
	unsampled.Sampled = false
	if err := f.WriteFrameCtx([]byte("unsampled"), unsampled); err != nil {
		t.Fatal(err)
	}

	body, got, err := f.ReadFrameCtx()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "traced" || got != tc {
		t.Fatalf("traced frame = %q ctx %+v, want %q ctx %+v", body, got, "traced", tc)
	}
	body, got, err = f.ReadFrameCtx()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "plain" || !got.IsZero() {
		t.Fatalf("plain frame = %q ctx %+v, want zero ctx", body, got)
	}
	// An unsampled context never goes on the wire.
	body, got, err = f.ReadFrameCtx()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "unsampled" || !got.IsZero() {
		t.Fatalf("unsampled frame = %q ctx %+v, want zero ctx", body, got)
	}
}

// TestFramerUntracedWireUnchanged: without a sampled context the wire
// bytes are identical to the pre-tracing format (4-byte length + body).
func TestFramerUntracedWireUnchanged(t *testing.T) {
	var buf bytes.Buffer
	f := NewFramer(&buf)
	if err := f.WriteFrame([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0, 3, 'a', 'b', 'c'}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("wire = %v, want %v", buf.Bytes(), want)
	}
}

// TestEndpointSendRecvCtx: the context survives packet encapsulation
// through Endpoint.SendCtx / RecvCtx.
func TestEndpointSendRecvCtx(t *testing.T) {
	var buf bytes.Buffer
	a := NewEndpoint(&buf)
	tc := sampleCtx()
	pkt := Packet{
		Src:     netip.MustParseAddrPort("10.0.0.1:1234"),
		Dst:     netip.MustParseAddrPort("10.0.0.2:80"),
		Payload: []byte("hello"),
	}
	if err := a.SendCtx(pkt, tc); err != nil {
		t.Fatal(err)
	}
	got, gotCtx, err := a.RecvCtx()
	if err != nil {
		t.Fatal(err)
	}
	if gotCtx != tc {
		t.Fatalf("ctx = %+v, want %+v", gotCtx, tc)
	}
	if got.Src != pkt.Src || got.Dst != pkt.Dst || !bytes.Equal(got.Payload, pkt.Payload) {
		t.Fatalf("packet = %+v, want %+v", got, pkt)
	}
}
