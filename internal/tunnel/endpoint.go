package tunnel

import (
	"fmt"
	"io"
	"net/netip"
	"sync"

	"cronets/internal/flowtrace"
	"cronets/internal/obs"
	"cronets/internal/pipe"
)

// Endpoint sends and receives encapsulated packets over a framed stream —
// one end of a GRE-like tunnel.
type Endpoint struct {
	f *Framer

	mu     sync.Mutex
	closed bool
	closer io.Closer
}

// NewEndpoint wraps a stream (typically a net.Conn) as a tunnel endpoint.
// If rw also implements io.Closer, Close will close it.
func NewEndpoint(rw io.ReadWriter) *Endpoint {
	e := &Endpoint{f: NewFramer(rw)}
	if c, ok := rw.(io.Closer); ok {
		e.closer = c
	}
	return e
}

// Send encapsulates and writes one packet. The marshal buffer comes from
// the data-plane pool, so a steady packet stream allocates nothing.
func (e *Endpoint) Send(p Packet) error {
	return e.SendCtx(p, flowtrace.Context{})
}

// SendCtx encapsulates and writes one packet whose frame header carries
// a trace context, so the far endpoint can parent its spans under the
// sending flow. An unsampled context sends a plain frame.
func (e *Endpoint) SendCtx(p Packet, tc flowtrace.Context) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if len(p.Payload) > MaxFrameSize-packetHeaderSize {
		return ErrFrameTooLarge
	}
	buf := pipe.Get(packetHeaderSize + len(p.Payload))
	n, err := p.MarshalInto(buf)
	if err != nil {
		pipe.Put(buf)
		return err
	}
	err = e.f.WriteFrameCtx(buf[:n], tc)
	pipe.Put(buf)
	return err
}

// Recv reads and decapsulates one packet, blocking until one arrives.
func (e *Endpoint) Recv() (Packet, error) {
	p, _, err := e.RecvCtx()
	return p, err
}

// RecvCtx reads one packet plus the trace context carried in its frame
// header (the zero Context for untraced frames).
func (e *Endpoint) RecvCtx() (Packet, flowtrace.Context, error) {
	buf, tc, err := e.f.ReadFrameCtx()
	if err != nil {
		return Packet{}, flowtrace.Context{}, err
	}
	p, err := UnmarshalPacket(buf)
	return p, tc, err
}

// Close marks the endpoint closed and closes the underlying stream if it
// is closable.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.closer != nil {
		return e.closer.Close()
	}
	return nil
}

// PacketNetwork is the overlay node's "wild side": where decapsulated,
// NAT-rewritten packets are sent, and where return traffic arrives. A real
// deployment backs this with raw sockets; tests and examples use Switch.
type PacketNetwork interface {
	// SendPacket emits a packet toward its destination.
	SendPacket(Packet) error
	// RecvPacket blocks for the next packet addressed to this attachment.
	RecvPacket() (Packet, error)
}

// OverlayNode is the paper's overlay relay: packets arriving through the
// tunnel are decapsulated, source-NATed to the node's own address, and
// forwarded; return traffic hitting the NAT is re-encapsulated back into
// the tunnel. The far endpoint needs no tunnel configuration — the NAT
// makes the node transparent, exactly like the Linux IP-masquerade setup
// in Section II.
type OverlayNode struct {
	tunnel *Endpoint
	nat    *NAT
	net    PacketNetwork

	encap *obs.Counter // packets re-encapsulated into the tunnel
	decap *obs.Counter // packets decapsulated out of the tunnel
	scope *obs.Scope

	stop chan struct{}
	done sync.WaitGroup

	mu       sync.Mutex
	started  bool
	errOnce  sync.Once
	firstErr error
}

// NewOverlayNode builds a relay with the given external address.
func NewOverlayNode(tunnelSide io.ReadWriter, external netip.Addr, network PacketNetwork, natOpts ...NATOption) *OverlayNode {
	return &OverlayNode{
		tunnel: NewEndpoint(tunnelSide),
		nat:    NewNAT(external, natOpts...),
		net:    network,
		stop:   make(chan struct{}),
	}
}

// NAT exposes the node's masquerade table (for inspection and tests).
func (o *OverlayNode) NAT() *NAT { return o.nat }

// Instrument wires the node's frame counters and NAT table gauge into an
// obs registry. Call before Start; a nil registry is a no-op.
func (o *OverlayNode) Instrument(reg *obs.Registry) {
	o.encap = reg.Counter("cronets_tunnel_frames_encap_total",
		"Return packets re-encapsulated into the tunnel.")
	o.decap = reg.Counter("cronets_tunnel_frames_decap_total",
		"Packets decapsulated out of the tunnel toward the network.")
	reg.GaugeFunc("cronets_tunnel_nat_entries",
		"Live NAT masquerade translations.",
		func() int64 { return int64(o.nat.Len()) })
	o.scope = reg.Scope("tunnel")
}

// Start launches the two forwarding pumps. It may be called once.
func (o *OverlayNode) Start() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return fmt.Errorf("tunnel: overlay node already started")
	}
	o.started = true
	o.done.Add(2)
	go o.pumpOutbound()
	go o.pumpInbound()
	return nil
}

// pumpOutbound moves tunnel -> NAT -> network.
func (o *OverlayNode) pumpOutbound() {
	defer o.done.Done()
	for {
		p, err := o.tunnel.Recv()
		if err != nil {
			o.recordErr(err)
			return
		}
		o.decap.Inc()
		out, err := o.nat.TranslateOutbound(p)
		if err != nil {
			// Port exhaustion drops the packet, as a router would.
			o.scope.Logger().Debug("outbound packet dropped", "err", err)
			continue
		}
		if err := o.net.SendPacket(out); err != nil {
			o.recordErr(err)
			return
		}
	}
}

// pumpInbound moves network -> NAT -> tunnel, dropping packets with no
// mapping.
func (o *OverlayNode) pumpInbound() {
	defer o.done.Done()
	for {
		p, err := o.net.RecvPacket()
		if err != nil {
			o.recordErr(err)
			return
		}
		in, ok := o.nat.TranslateInbound(p)
		if !ok {
			continue
		}
		if err := o.tunnel.Send(in); err != nil {
			o.recordErr(err)
			return
		}
		o.encap.Inc()
	}
}

func (o *OverlayNode) recordErr(err error) {
	o.errOnce.Do(func() { o.firstErr = err })
}

// Close shuts the node down and waits for the pumps to exit. It returns
// the first pump error, if any, once both pumps stopped.
func (o *OverlayNode) Close() error {
	close(o.stop)
	_ = o.tunnel.Close()
	if c, ok := o.net.(io.Closer); ok {
		_ = c.Close()
	}
	o.done.Wait()
	return o.firstErr
}

// Switch is an in-memory PacketNetwork hub: attachments register under
// addresses and packets are delivered to the attachment owning the
// destination address. It stands in for "the Internet" around an overlay
// node in tests and examples.
type Switch struct {
	mu    sync.Mutex
	ports map[netip.Addr]*SwitchPort
}

// NewSwitch creates an empty switch.
func NewSwitch() *Switch {
	return &Switch{ports: make(map[netip.Addr]*SwitchPort)}
}

// Attach registers an address and returns its port. Attaching an address
// twice replaces the previous port (the old one stops receiving).
func (s *Switch) Attach(addr netip.Addr) *SwitchPort {
	p := &SwitchPort{sw: s, addr: addr, in: make(chan Packet, 64), closed: make(chan struct{})}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ports[addr] = p
	return p
}

// deliver routes a packet to the port owning its destination address.
func (s *Switch) deliver(p Packet) error {
	s.mu.Lock()
	port, ok := s.ports[p.Dst.Addr()]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("tunnel: switch: no attachment for %s", p.Dst.Addr())
	}
	select {
	case port.in <- p:
		return nil
	default:
		// Queue full: drop, like a congested link.
		return nil
	}
}

// SwitchPort is one attachment to a Switch; it implements PacketNetwork.
type SwitchPort struct {
	sw   *Switch
	addr netip.Addr
	in   chan Packet

	closeOnce sync.Once
	closed    chan struct{}
}

var _ PacketNetwork = (*SwitchPort)(nil)

// Addr returns the attachment's address.
func (p *SwitchPort) Addr() netip.Addr { return p.addr }

// SendPacket routes the packet through the switch.
func (p *SwitchPort) SendPacket(pkt Packet) error { return p.sw.deliver(pkt) }

// RecvPacket blocks for the next packet addressed to this attachment.
func (p *SwitchPort) RecvPacket() (Packet, error) {
	select {
	case pkt := <-p.in:
		return pkt, nil
	case <-p.closed:
		return Packet{}, ErrClosed
	}
}

// Close stops RecvPacket.
func (p *SwitchPort) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}
