// Package tunnel implements the userspace analog of the paper's overlay
// node plumbing: GRE-like packet encapsulation over a byte stream, and the
// Linux-IP-masquerade-style NAT table an overlay node uses so that return
// traffic flows back through it without the far endpoint having any tunnel
// configured (Section II).
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"cronets/internal/flowtrace"
	"cronets/internal/pipe"
)

// MaxFrameSize bounds a single encapsulated packet (64 KiB payload plus
// header room).
const MaxFrameSize = 64*1024 + 64

var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("tunnel: frame too large")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("tunnel: endpoint closed")
)

// traceFlag is bit 31 of the frame length word. Frame bodies are capped
// at MaxFrameSize (~64 KiB), leaving the high bits of the 32-bit length
// free; when the flag is set, a 24-byte flowtrace context sits between
// the length word and the body. Untraced frames are byte-identical to
// the pre-tracing wire format.
const traceFlag = uint32(1) << 31

// Framer reads and writes length-prefixed frames over a byte stream. It is
// safe for one concurrent reader and one concurrent writer.
type Framer struct {
	rmu sync.Mutex
	wmu sync.Mutex
	rw  io.ReadWriter

	rbuf [4]byte
	cbuf [flowtrace.WireSize]byte
}

// NewFramer wraps the stream.
func NewFramer(rw io.ReadWriter) *Framer {
	return &Framer{rw: rw}
}

// WriteFrame writes one length-prefixed frame. Header and body go out in
// a single pooled write so a frame costs one syscall on a net.Conn and
// cannot interleave with another writer's header/body pair.
func (f *Framer) WriteFrame(p []byte) error {
	return f.WriteFrameCtx(p, flowtrace.Context{})
}

// WriteFrameCtx writes one frame carrying a trace context in its header,
// so the far tunnel endpoint can continue the flow's trace. An unsampled
// (or zero) context writes a plain frame.
func (f *Framer) WriteFrameCtx(p []byte, tc flowtrace.Context) error {
	if len(p) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	traced := tc.Sampled && !tc.IsZero()
	head := 4
	if traced {
		head += flowtrace.WireSize
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	buf := pipe.Get(head + len(p))
	word := uint32(len(p))
	if traced {
		word |= traceFlag
		tc.EncodeBinary(buf[4:head])
	}
	binary.BigEndian.PutUint32(buf[:4], word)
	copy(buf[head:], p)
	_, err := f.rw.Write(buf)
	pipe.Put(buf)
	if err != nil {
		return fmt.Errorf("tunnel: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame into a freshly allocated buffer, discarding
// any trace context in its header.
func (f *Framer) ReadFrame() ([]byte, error) {
	buf, _, err := f.ReadFrameCtx()
	return buf, err
}

// ReadFrameCtx reads one frame plus the trace context carried in its
// header (the zero Context for untraced frames).
func (f *Framer) ReadFrameCtx() ([]byte, flowtrace.Context, error) {
	f.rmu.Lock()
	defer f.rmu.Unlock()
	if _, err := io.ReadFull(f.rw, f.rbuf[:]); err != nil {
		return nil, flowtrace.Context{}, fmt.Errorf("tunnel: read frame header: %w", err)
	}
	word := binary.BigEndian.Uint32(f.rbuf[:])
	traced := word&traceFlag != 0
	word &^= traceFlag
	// Validate the length before consuming the trace context so a
	// corrupted header is rejected without reading further.
	if word > MaxFrameSize {
		return nil, flowtrace.Context{}, ErrFrameTooLarge
	}
	var tc flowtrace.Context
	if traced {
		if _, err := io.ReadFull(f.rw, f.cbuf[:]); err != nil {
			return nil, flowtrace.Context{}, fmt.Errorf("tunnel: read frame trace context: %w", err)
		}
		tc, _ = flowtrace.DecodeBinary(f.cbuf[:])
	}
	buf := make([]byte, word)
	if _, err := io.ReadFull(f.rw, buf); err != nil {
		return nil, flowtrace.Context{}, fmt.Errorf("tunnel: read frame body: %w", err)
	}
	return buf, tc, nil
}
