// Package tunnel implements the userspace analog of the paper's overlay
// node plumbing: GRE-like packet encapsulation over a byte stream, and the
// Linux-IP-masquerade-style NAT table an overlay node uses so that return
// traffic flows back through it without the far endpoint having any tunnel
// configured (Section II).
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"cronets/internal/pipe"
)

// MaxFrameSize bounds a single encapsulated packet (64 KiB payload plus
// header room).
const MaxFrameSize = 64*1024 + 64

var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("tunnel: frame too large")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("tunnel: endpoint closed")
)

// Framer reads and writes length-prefixed frames over a byte stream. It is
// safe for one concurrent reader and one concurrent writer.
type Framer struct {
	rmu sync.Mutex
	wmu sync.Mutex
	rw  io.ReadWriter

	rbuf [4]byte
}

// NewFramer wraps the stream.
func NewFramer(rw io.ReadWriter) *Framer {
	return &Framer{rw: rw}
}

// WriteFrame writes one length-prefixed frame. Header and body go out in
// a single pooled write so a frame costs one syscall on a net.Conn and
// cannot interleave with another writer's header/body pair.
func (f *Framer) WriteFrame(p []byte) error {
	if len(p) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	buf := pipe.Get(4 + len(p))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(p)))
	copy(buf[4:], p)
	_, err := f.rw.Write(buf)
	pipe.Put(buf)
	if err != nil {
		return fmt.Errorf("tunnel: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame into a freshly allocated buffer.
func (f *Framer) ReadFrame() ([]byte, error) {
	f.rmu.Lock()
	defer f.rmu.Unlock()
	if _, err := io.ReadFull(f.rw, f.rbuf[:]); err != nil {
		return nil, fmt.Errorf("tunnel: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(f.rbuf[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(f.rw, buf); err != nil {
		return nil, fmt.Errorf("tunnel: read frame body: %w", err)
	}
	return buf, nil
}
