package relay

import (
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
)

// ACL restricts which targets a CONNECT-mode relay will dial. A CRONets
// overlay node is otherwise an open proxy: anyone who can reach it could
// bounce traffic to arbitrary destinations, so production deployments pin
// the relay to the customer's own prefixes and service ports.
//
// The zero value permits everything; use NewACL to build a restrictive
// policy. ACL methods are safe for concurrent use.
type ACL struct {
	mu       sync.RWMutex
	prefixes []netip.Prefix
	ports    map[uint16]bool
	// denyAll is set when a restrictive policy exists (non-empty rules).
	restrictive bool
}

// NewACL builds an access-control list from CIDR prefixes and allowed
// ports. Empty prefixes means "any destination address"; empty ports means
// "any port" — but at least one restriction must be provided, otherwise
// use a nil *ACL (allow everything) explicitly.
func NewACL(cidrs []string, ports []uint16) (*ACL, error) {
	if len(cidrs) == 0 && len(ports) == 0 {
		return nil, fmt.Errorf("relay: ACL needs at least one rule; use a nil ACL to allow all")
	}
	a := &ACL{ports: make(map[uint16]bool, len(ports)), restrictive: true}
	for _, c := range cidrs {
		p, err := netip.ParsePrefix(c)
		if err != nil {
			return nil, fmt.Errorf("relay: ACL prefix %q: %w", c, err)
		}
		a.prefixes = append(a.prefixes, p)
	}
	for _, p := range ports {
		a.ports[p] = true
	}
	return a, nil
}

// Allow reports whether the ACL permits dialing the target ("host:port").
// Hostnames (non-IP targets) are rejected by restrictive ACLs with
// prefix rules, since the relay cannot verify where they resolve.
func (a *ACL) Allow(target string) bool {
	if a == nil {
		return true
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.restrictive {
		return true
	}
	host, portStr, err := net.SplitHostPort(target)
	if err != nil {
		return false
	}
	if len(a.ports) > 0 {
		port, err := strconv.ParseUint(portStr, 10, 16)
		if err != nil || !a.ports[uint16(port)] {
			return false
		}
	}
	if len(a.prefixes) > 0 {
		addr, err := netip.ParseAddr(strings.Trim(host, "[]"))
		if err != nil {
			return false // hostnames cannot be verified against prefixes
		}
		ok := false
		for _, p := range a.prefixes {
			if p.Contains(addr.Unmap()) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// AddPrefix inserts another allowed CIDR at runtime.
func (a *ACL) AddPrefix(cidr string) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return fmt.Errorf("relay: ACL prefix %q: %w", cidr, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prefixes = append(a.prefixes, p)
	a.restrictive = true
	return nil
}
