package relay

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

func TestACLNilAllowsAll(t *testing.T) {
	var a *ACL
	if !a.Allow("8.8.8.8:53") {
		t.Error("nil ACL should allow everything")
	}
}

func TestNewACLValidation(t *testing.T) {
	if _, err := NewACL(nil, nil); err == nil {
		t.Error("empty ACL should be rejected")
	}
	if _, err := NewACL([]string{"not-a-cidr"}, nil); err == nil {
		t.Error("bad CIDR should be rejected")
	}
}

func TestACLPrefixAndPort(t *testing.T) {
	a, err := NewACL([]string{"10.0.0.0/8", "192.0.2.0/24"}, []uint16{443, 9100})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		target string
		want   bool
	}{
		{"10.1.2.3:443", true},
		{"192.0.2.7:9100", true},
		{"10.1.2.3:80", false},     // port not allowed
		{"203.0.113.5:443", false}, // prefix not allowed
		{"example.com:443", false}, // hostname cannot be verified
		{"10.1.2.3", false},        // no port
		{"[2001:db8::1]:443", false},
	}
	for _, tt := range tests {
		if got := a.Allow(tt.target); got != tt.want {
			t.Errorf("Allow(%q) = %v, want %v", tt.target, got, tt.want)
		}
	}
}

func TestACLPortsOnly(t *testing.T) {
	a, err := NewACL(nil, []uint16{22})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Allow("198.51.100.9:22") {
		t.Error("port-only ACL should allow any address on 22")
	}
	if !a.Allow("corp.example:22") {
		t.Error("port-only ACL has no prefix rules; hostnames are fine")
	}
	if a.Allow("198.51.100.9:23") {
		t.Error("port 23 should be denied")
	}
}

func TestACLAddPrefix(t *testing.T) {
	a, err := NewACL([]string{"10.0.0.0/8"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Allow("172.16.0.1:80") {
		t.Fatal("172.16/12 should be denied initially")
	}
	if err := a.AddPrefix("172.16.0.0/12"); err != nil {
		t.Fatal(err)
	}
	if !a.Allow("172.16.0.1:80") {
		t.Error("172.16/12 should be allowed after AddPrefix")
	}
	if err := a.AddPrefix("nope"); err == nil {
		t.Error("bad prefix should be rejected")
	}
}

// TestRelayEnforcesACL: a CONNECT to a forbidden target is refused before
// any upstream dial.
func TestRelayEnforcesACL(t *testing.T) {
	echo := echoServer(t)
	acl, err := NewACL([]string{"203.0.113.0/24"}, nil) // does not cover loopback
	if err != nil {
		t.Fatal(err)
	}
	r := startRelay(t, Config{ACL: acl})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = DialVia(ctx, nil, r.Addr().String(), echo.Addr().String())
	if err == nil {
		t.Fatal("forbidden target should be refused")
	}
	if !strings.Contains(err.Error(), "forbidden") {
		t.Errorf("err = %v, want forbidden", err)
	}
	waitFor(t, func() bool { return r.Stats().Rejected.Load() > 0 })
	if r.Stats().Rejected.Load() == 0 {
		t.Error("rejected counter not incremented")
	}
	if r.Stats().Errors.Load() != 0 {
		t.Errorf("ACL rejection should not count as an error, got Errors=%d",
			r.Stats().Errors.Load())
	}
}

// TestRejectedCounterSeparateFromErrors: an ACL refusal increments only
// Rejected, while a failed upstream dial increments only Errors — open-relay
// probes and upstream trouble stay distinguishable.
func TestRejectedCounterSeparateFromErrors(t *testing.T) {
	echo := echoServer(t)
	acl, err := NewACL([]string{"127.0.0.0/8"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := startRelay(t, Config{ACL: acl, DialTimeout: 2 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Forbidden target: rejected, not an error.
	if _, err := DialVia(ctx, nil, r.Addr().String(), "203.0.113.9:80"); err == nil {
		t.Fatal("forbidden target should be refused")
	}
	// Allowed target that refuses the connection: an error, not a reject.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()
	if _, err := DialVia(ctx, nil, r.Addr().String(), deadAddr); err == nil {
		t.Fatal("dial to closed port should fail")
	}
	// A working connection for contrast.
	conn, err := DialVia(ctx, nil, r.Addr().String(), echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	waitFor(t, func() bool {
		return r.Stats().Rejected.Load() == 1 && r.Stats().Errors.Load() == 1
	})
	if got := r.Stats().Rejected.Load(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	if got := r.Stats().Errors.Load(); got != 1 {
		t.Errorf("Errors = %d, want 1", got)
	}
}

func TestRelayACLAllowsPermittedTarget(t *testing.T) {
	echo := echoServer(t)
	acl, err := NewACL([]string{"127.0.0.0/8"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := startRelay(t, Config{ACL: acl})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := DialVia(ctx, nil, r.Addr().String(), echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "permitted"); got != "permitted" {
		t.Errorf("echo = %q", got)
	}
}
