package relay

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cronets/internal/pipe"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = pipe.CopyMetered(conn, conn, pipe.CopyOptions{})
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln
}

func startRelay(t *testing.T, cfg Config) *Relay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := New(ln, cfg)
	go r.Serve() //nolint:errcheck // closed in cleanup
	t.Cleanup(func() { _ = r.Close() })
	return r
}

// waitFor polls cond until it holds or a 5 s deadline expires (counters
// are incremented by handler goroutines after the client sees a reply).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cond() {
		t.Error("condition not reached within deadline")
	}
}

func roundtrip(t *testing.T, conn net.Conn, msg string) string {
	t.Helper()
	if _, err := io.WriteString(conn, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestFixedTargetForward(t *testing.T) {
	echo := echoServer(t)
	r := startRelay(t, Config{Target: echo.Addr().String()})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "through the overlay"); got != "through the overlay" {
		t.Errorf("echo = %q", got)
	}
	if r.Stats().Accepted.Load() != 1 {
		t.Errorf("accepted = %d", r.Stats().Accepted.Load())
	}
	if r.Stats().BytesUp.Load() == 0 || r.Stats().BytesDown.Load() == 0 {
		t.Error("byte counters not updated")
	}
}

func TestConnectMode(t *testing.T) {
	echo := echoServer(t)
	r := startRelay(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := DialVia(ctx, nil, r.Addr().String(), echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "split tcp hop"); got != "split tcp hop" {
		t.Errorf("echo = %q", got)
	}
}

func TestConnectModeBadRequest(t *testing.T) {
	r := startRelay(t, Config{})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR") {
		t.Errorf("reply = %q, want ERR", line)
	}
}

func TestConnectModeDialFailure(t *testing.T) {
	r := startRelay(t, Config{DialTimeout: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Port 1 on localhost should refuse.
	_, err := DialVia(ctx, nil, r.Addr().String(), "127.0.0.1:1")
	if err == nil {
		t.Fatal("expected dial failure via relay")
	}
	if r.Stats().Errors.Load() == 0 {
		t.Error("error counter not incremented")
	}
}

func TestParseConnect(t *testing.T) {
	tests := []struct {
		line    string
		want    string
		wantErr bool
	}{
		{"CONNECT 10.0.0.1:80\n", "10.0.0.1:80", false},
		{"CONNECT example.com:443", "example.com:443", false},
		{"CONNECT [::1]:80\n", "[::1]:80", false},
		{"CONNECT nohost\n", "", true},
		{"CONNECT :80\n", "", true},
		{"FETCH 10.0.0.1:80\n", "", true},
		{"", "", true},
	}
	for _, tt := range tests {
		got, err := ParseConnect(tt.line)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseConnect(%q) err = %v", tt.line, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseConnect(%q) = %q, want %q", tt.line, got, tt.want)
		}
	}
}

func TestMaxConns(t *testing.T) {
	echo := echoServer(t)
	r := startRelay(t, Config{Target: echo.Addr().String(), MaxConns: 1})

	first, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if got := roundtrip(t, first, "hold"); got != "hold" {
		t.Fatal("first connection broken")
	}

	// Second connection should be dropped by the relay.
	second, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	_ = second.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	_, _ = io.WriteString(second, "x")
	if _, err := second.Read(buf); err == nil {
		t.Error("second connection should have been closed")
	}
}

func TestIdleTimeout(t *testing.T) {
	echo := echoServer(t)
	r := startRelay(t, Config{Target: echo.Addr().String(), IdleTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "warm"); got != "warm" {
		t.Fatal("initial echo failed")
	}
	// Stay idle past the timeout; the relay should cut the connection.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("idle connection not closed")
	}
}

func TestCloseUnblocksServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := New(ln, Config{Target: "127.0.0.1:1"})
	done := make(chan error, 1)
	go func() { done <- r.Serve() }()
	time.Sleep(20 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrRelayClosed) {
			t.Errorf("Serve returned %v, want ErrRelayClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestChainedRelays(t *testing.T) {
	// Two overlay hops in sequence (multi-hop overlay, Section VII-B).
	echo := echoServer(t)
	inner := startRelay(t, Config{Target: echo.Addr().String()})
	outer := startRelay(t, Config{Target: inner.Addr().String()})
	conn, err := net.Dial("tcp", outer.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "two hops"); got != "two hops" {
		t.Errorf("echo = %q", got)
	}
}

func TestDialViaRefused(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := DialVia(ctx, nil, "127.0.0.1:1", "10.0.0.1:80"); err == nil {
		t.Error("expected error dialing dead relay")
	}
}

func TestLargeTransferThroughRelay(t *testing.T) {
	echo := echoServer(t)
	r := startRelay(t, Config{Target: echo.Addr().String()})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const total = 4 << 20
	go func() {
		chunk := make([]byte, 64<<10)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		sent := 0
		for sent < total {
			n, err := conn.Write(chunk)
			if err != nil {
				return
			}
			sent += n
		}
	}()
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	got, err := io.ReadAll(io.LimitReader(conn, total))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Errorf("read %d bytes, want %d", len(got), total)
	}
	for i := 0; i < 64<<10; i++ {
		if got[i] != byte(i) {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestConnectModePipelinedData(t *testing.T) {
	// Data written immediately after the CONNECT line must not be lost.
	echo := echoServer(t)
	r := startRelay(t, Config{})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "CONNECT %s\nearly", echo.Addr().String()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "OK" {
		t.Fatalf("handshake: %q, %v", line, err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(br, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "early" {
		t.Errorf("pipelined data = %q", buf)
	}
}

// flakyDialer fails its first n dials with ECONNREFUSED, then delegates
// to a real dialer — a target that refuses until it finishes restarting.
type flakyDialer struct {
	mu       sync.Mutex
	failures int
	attempts int
	inner    net.Dialer
}

func (d *flakyDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.mu.Lock()
	d.attempts++
	refuse := d.attempts <= d.failures
	d.mu.Unlock()
	if refuse {
		return nil, &net.OpError{Op: "dial", Net: network, Err: syscall.ECONNREFUSED}
	}
	return d.inner.DialContext(ctx, network, addr)
}

// TestDialRetrySucceeds: a target refusing the first N connects is still
// reached once the bounded retry loop outlasts the refusals, and the
// retries are counted.
func TestDialRetrySucceeds(t *testing.T) {
	echo := echoServer(t)
	dialer := &flakyDialer{failures: 2}
	r := startRelay(t, Config{
		Target:           echo.Addr().String(),
		Dialer:           dialer,
		DialRetries:      3,
		DialRetryBackoff: 5 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "after restart"); got != "after restart" {
		t.Errorf("echo = %q", got)
	}
	if got := r.Stats().DialRetries.Load(); got != 2 {
		t.Errorf("dial retries = %d, want 2", got)
	}
	if got := r.Stats().Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0 (retries are not errors)", got)
	}
}

// TestDialRetryExhausted: when refusals outlast the retry budget the
// relay gives up and counts one error.
func TestDialRetryExhausted(t *testing.T) {
	echo := echoServer(t)
	dialer := &flakyDialer{failures: 10}
	r := startRelay(t, Config{
		Target:           echo.Addr().String(),
		Dialer:           dialer,
		DialRetries:      2,
		DialRetryBackoff: time.Millisecond,
	})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection should drop once retries are exhausted")
	}
	waitFor(t, func() bool { return r.Stats().Errors.Load() == 1 })
	if got := r.Stats().DialRetries.Load(); got != 2 {
		t.Errorf("dial retries = %d, want 2", got)
	}
}

// TestNonTransientDialNotRetried: an unreachable-network style failure
// fails fast even with retries configured.
func TestNonTransientDialNotRetried(t *testing.T) {
	if transientDialError(errors.New("no such host")) {
		t.Error("generic error classified transient")
	}
	if !transientDialError(&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}) {
		t.Error("ECONNREFUSED should be transient")
	}
	if !transientDialError(context.DeadlineExceeded) {
		t.Error("deadline exceeded should be transient")
	}
}

// holdServer accepts connections and holds them open without answering,
// so relayed connections stay Active for the duration of the test.
func holdServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, conn)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		mu.Lock()
		for _, c := range held {
			_ = c.Close()
		}
		mu.Unlock()
	})
	return ln
}

// TestMaxConnsAcceptBurst (regression): a burst of simultaneous connects
// must never overshoot MaxConns. Pre-fix, Serve checked Stats.Active —
// which the handler goroutine increments later — so a burst sailed
// through; capacity is now reserved atomically at accept time and the
// shed connections land in Stats.Overloaded, not Stats.Errors.
func TestMaxConnsAcceptBurst(t *testing.T) {
	const maxConns, burst = 4, 32
	hold := holdServer(t)
	r := startRelay(t, Config{Target: hold.Addr().String(), MaxConns: maxConns})

	var wg sync.WaitGroup
	conns := make([]net.Conn, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("tcp", r.Addr().String())
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()

	waitFor(t, func() bool {
		return r.Stats().Accepted.Load()+r.Stats().Overloaded.Load() == burst
	})
	st := r.Stats()
	if got := st.Accepted.Load(); got != maxConns {
		t.Errorf("accepted = %d, want exactly %d (cap overshot)", got, maxConns)
	}
	if got := st.Active.Load(); got > maxConns {
		t.Errorf("active = %d, want <= %d", got, maxConns)
	}
	if got := st.Overloaded.Load(); got != burst-maxConns {
		t.Errorf("overloaded = %d, want %d", got, burst-maxConns)
	}
	if got := st.Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0 (shedding is not an error)", got)
	}
}

// refuseDialer fails every dial with ECONNREFUSED (a transient error, so
// the retry schedule engages) and counts attempts.
type refuseDialer struct{ calls atomic.Int64 }

func (d *refuseDialer) DialContext(context.Context, string, string) (net.Conn, error) {
	d.calls.Add(1)
	return nil, &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}
}

// TestDialRetryBackoffAbortsOnClose (regression): Close must interrupt a
// handler parked in dial-retry backoff. Pre-fix, dialUpstream slept with
// time.Sleep, so Close blocked on wg.Wait for the rest of the schedule
// (here several seconds).
func TestDialRetryBackoffAbortsOnClose(t *testing.T) {
	d := &refuseDialer{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := New(ln, Config{
		Dialer:           d,
		DialRetries:      1000,
		DialRetryBackoff: 300 * time.Millisecond,
	})
	go r.Serve() //nolint:errcheck

	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "CONNECT 127.0.0.1:1\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.Stats().DialRetries.Load() >= 1 })

	start := time.Now()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v; handler slept through its retry backoff", elapsed)
	}
}

// TestDialRetryAbortsWhenClientHangsUp (regression): a client that gives
// up mid-retry-schedule must release the relay goroutine and its MaxConns
// slot immediately, not after the remaining backoff (several seconds
// here).
func TestDialRetryAbortsWhenClientHangsUp(t *testing.T) {
	d := &refuseDialer{}
	r := startRelay(t, Config{
		Dialer:           d,
		DialRetries:      1000,
		DialRetryBackoff: 300 * time.Millisecond,
	})

	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(conn, "CONNECT 127.0.0.1:1\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.Stats().Active.Load() == 1 })
	waitFor(t, func() bool { return r.Stats().DialRetries.Load() >= 1 })

	// Hang up. The abort watcher must cancel the dial context and the
	// handler must release its slot well inside waitFor's 5 s budget.
	_ = conn.Close()
	waitFor(t, func() bool { return r.Stats().Active.Load() == 0 })
	attempts := d.calls.Load()
	time.Sleep(50 * time.Millisecond)
	if got := d.calls.Load(); got != attempts {
		t.Errorf("dial attempts kept coming after the client hung up: %d -> %d", attempts, got)
	}
}

// TestIdlePreconnectDoesNotBurnSlot (regression): a connected socket that
// has not yet sent its CONNECT preamble — a gateway's warm pool leg —
// must not consume a MaxConns slot, and must be tolerated for longer than
// DialTimeout.
func TestIdlePreconnectDoesNotBurnSlot(t *testing.T) {
	echo := echoServer(t)
	r := startRelay(t, Config{MaxConns: 1, DialTimeout: 200 * time.Millisecond})

	// A warm, idle, pre-CONNECT socket...
	idle, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	waitFor(t, func() bool { return r.Stats().Accepted.Load() == 1 })

	// ...must leave the single MaxConns slot free for a real flow, and
	// must itself survive past DialTimeout (pre-fix the preamble read
	// deadline was DialTimeout, which would kill pooled sockets).
	time.Sleep(300 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := DialVia(ctx, nil, r.Addr().String(), echo.Addr().String())
	if err != nil {
		t.Fatalf("real flow blocked by an idle pre-CONNECT socket: %v", err)
	}
	defer conn.Close()
	if got := roundtrip(t, conn, "warm leg"); got != "warm leg" {
		t.Errorf("echo = %q", got)
	}

	// The idle socket is still usable: late preamble, same slot dance.
	_ = conn.Close()
	waitFor(t, func() bool { return r.Stats().Active.Load() == 0 })
	late, err := Connect(ctx, idle, echo.Addr().String())
	if err != nil {
		t.Fatalf("late CONNECT on the warm socket: %v", err)
	}
	if got := roundtrip(t, late, "late leg"); got != "late leg" {
		t.Errorf("echo = %q", got)
	}
}

// TestPreconnectEOFIsNotAnError: a warm socket closed before sending any
// preamble is normal pool churn and must not count as a relay error.
func TestPreconnectEOFIsNotAnError(t *testing.T) {
	r := startRelay(t, Config{})
	conn, err := net.Dial("tcp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.Stats().Accepted.Load() == 1 })
	_ = conn.Close()
	time.Sleep(50 * time.Millisecond)
	if got := r.Stats().Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0 (pre-preamble EOF is pool churn)", got)
	}
}

// TestConnectModeOverloadAtPreamble: with the MaxConns reservation
// deferred to preamble arrival, an over-capacity CONNECT is refused with
// ERR overloaded and counted in Stats.Overloaded.
func TestConnectModeOverloadAtPreamble(t *testing.T) {
	hold := holdServer(t)
	r := startRelay(t, Config{MaxConns: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	first, err := DialVia(ctx, nil, r.Addr().String(), hold.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	_, err = DialVia(ctx, nil, r.Addr().String(), hold.Addr().String())
	if err == nil {
		t.Fatal("second CONNECT succeeded past MaxConns=1")
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Errorf("err = %v, want ERR overloaded refusal", err)
	}
	if got := r.Stats().Overloaded.Load(); got != 1 {
		t.Errorf("overloaded = %d, want 1", got)
	}
	if got := r.Stats().Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0 (shedding is not an error)", got)
	}
}
