package relay

// Error-path coverage for the client half of the CONNECT handshake:
// preamble write failure, short/garbled replies, refusal classification,
// and context cancellation mid-preamble. Connect promises the socket is
// closed on every error — each test asserts that too.

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// failWriteConn fails every write; Close is observable.
type failWriteConn struct {
	net.Conn
	closed atomic.Bool
}

func (c *failWriteConn) Write([]byte) (int, error) {
	return 0, errors.New("wire cut")
}

func (c *failWriteConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

func TestConnectPreambleWriteFailure(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := &failWriteConn{Conn: a}
	_, err := Connect(context.Background(), conn, "192.0.2.1:9")
	if err == nil {
		t.Fatal("Connect succeeded through a dead writer")
	}
	if !strings.Contains(err.Error(), "send connect") {
		t.Errorf("err = %v, want a send-connect failure", err)
	}
	if !conn.closed.Load() {
		t.Error("Connect left the socket open after a write failure")
	}
}

// connectServer accepts one connection, reads the preamble line, and
// runs reply against the raw socket (sending a response, closing early,
// or stalling).
func connectServer(t *testing.T, reply func(c net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 1)
		for {
			if _, err := c.Read(buf); err != nil || buf[0] == '\n' {
				break
			}
		}
		reply(c)
	}()
	return ln.Addr().String()
}

func dialConnect(t *testing.T, ctx context.Context, addr string) (net.Conn, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return Connect(ctx, conn, "192.0.2.1:9")
}

func TestConnectShortReply(t *testing.T) {
	// The relay dies mid-reply: a partial line with no newline is a read
	// error (EOF before the terminator), not a refusal.
	addr := connectServer(t, func(c net.Conn) {
		_, _ = c.Write([]byte("O")) // short: no terminator
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := dialConnect(t, ctx, addr)
	if err == nil {
		t.Fatal("Connect succeeded on a truncated reply")
	}
	if !strings.Contains(err.Error(), "read connect reply") {
		t.Errorf("err = %v, want a read-reply failure", err)
	}
	if errors.Is(err, ErrRefused) {
		t.Errorf("truncated reply misclassified as refusal: %v", err)
	}
}

func TestConnectGarbledReply(t *testing.T) {
	// A complete line that is not "OK" is a refusal carrying the relay's
	// words, classifiable with errors.Is(err, ErrRefused).
	addr := connectServer(t, func(c net.Conn) {
		_, _ = io.WriteString(c, "ERR forbidden\n")
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := dialConnect(t, ctx, addr)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if !strings.Contains(err.Error(), "ERR forbidden") {
		t.Errorf("err = %v, want the relay's ERR line preserved", err)
	}
}

func TestConnectRefusedByRealRelay(t *testing.T) {
	// End-to-end refusal: a real relay whose ACL forbids the target
	// answers ERR, and the client error matches ErrRefused.
	acl, err := NewACL([]string{"10.0.0.0/8"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := startRelay(t, Config{ACL: acl})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = DialVia(ctx, nil, r.Addr().String(), "192.0.2.1:9")
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("ACL rejection err = %v, want ErrRefused", err)
	}
}

func TestConnectCancelMidPreamble(t *testing.T) {
	// The relay accepts, swallows the preamble, and never answers.
	// Cancelling the context must force-expire the socket so Connect
	// returns promptly with the context's error, not hang on the read.
	stall := make(chan struct{})
	defer close(stall)
	addr := connectServer(t, func(c net.Conn) { <-stall })
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := dialConnect(t, ctx, addr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("Connect took %v to honor cancellation", waited)
	}
}

func TestConnectDeadlineMidPreamble(t *testing.T) {
	// Same stall, but via a context deadline: the error surfaces as
	// context.DeadlineExceeded so pathmon classifies it as a timeout,
	// not a refusal.
	stall := make(chan struct{})
	defer close(stall)
	addr := connectServer(t, func(c net.Conn) { <-stall })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := dialConnect(t, ctx, addr)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrRefused) {
		t.Errorf("timeout misclassified as refusal: %v", err)
	}
}
