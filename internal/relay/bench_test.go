package relay

import (
	"net"
	"testing"
)

// BenchmarkRelayThroughput measures one full relayed connection per
// iteration: dial through a fixed-target relay to an echo server, push
// 1 MiB, half-close, and drain the echo. Per-connection buffer handling
// dominates the allocation profile, which is the point: the data plane
// must not allocate per flow.
func BenchmarkRelayThroughput(b *testing.B) {
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer echoLn.Close()
	go func() {
		for {
			c, err := echoLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 32<<10)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						if tc, ok := c.(*net.TCPConn); ok {
							_ = tc.CloseWrite()
						}
						return
					}
				}
			}(c)
		}
	}()

	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	r := New(relayLn, Config{Target: echoLn.Addr().String()})
	go func() { _ = r.Serve() }()
	defer r.Close()

	const total = 1 << 20
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	drain := make([]byte, 64<<10)

	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", relayLn.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		var sent, rcvd int
		done := make(chan error, 1)
		go func() {
			for rcvd < total {
				n, err := conn.Read(drain)
				rcvd += n
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			if _, err := conn.Write(payload[:n]); err != nil {
				b.Fatal(err)
			}
			sent += n
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		_ = conn.Close()
	}
}
