// Package relay implements the overlay node's stream-level services over
// real sockets: a fixed-target TCP forwarder and a split-TCP proxy with a
// one-line CONNECT handshake. The split proxy is the userspace equivalent
// of the paper's split-overlay configuration: it terminates the client's
// TCP connection and opens its own toward the destination, so each half
// runs an independent congestion-control loop over roughly half the RTT.
package relay

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/obs"
	"cronets/internal/pipe"
)

// Dialer abstracts net.Dialer for tests.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Config holds relay parameters. The zero value is usable; defaults are
// filled in by New.
type Config struct {
	// Target is the fixed destination for forward mode ("" enables the
	// CONNECT handshake instead).
	Target string
	// DialTimeout bounds each upstream dial attempt (default 10 s).
	DialTimeout time.Duration
	// DialRetries is how many extra upstream dial attempts follow a
	// transient failure (connection refused, timeout) before the relay
	// gives up (default 0: fail fast).
	DialRetries int
	// DialRetryBackoff is the pause before the first retry, doubling
	// each attempt (default 50 ms).
	DialRetryBackoff time.Duration
	// IdleTimeout closes connections with no traffic in either direction
	// (default 5 min; 0 disables).
	IdleTimeout time.Duration
	// BufferBytes sizes each direction's copy buffer (default 256 KiB) —
	// the relay buffer of a split-TCP proxy.
	BufferBytes int
	// MaxConns caps concurrent relayed connections (default 1024).
	MaxConns int
	// ACL restricts CONNECT-mode targets (nil allows everything; a relay
	// without an ACL is an open proxy).
	ACL *ACL
	// Dialer overrides the upstream dialer (tests).
	Dialer Dialer
	// Obs receives the relay's metrics and flow events (nil disables
	// instrumentation at zero cost).
	Obs *obs.Registry
	// Tracer records relay dial + splice spans for flows whose CONNECT
	// preamble carries a sampled trace context (nil disables tracing at
	// zero cost; unsampled flows cost one nil check).
	Tracer *flowtrace.Tracer
}

// Stats are cumulative relay counters, safe to read concurrently.
type Stats struct {
	// Accepted counts accepted downstream connections.
	Accepted atomic.Int64
	// Active is the number of connections currently being relayed.
	Active atomic.Int64
	// BytesUp and BytesDown count relayed bytes (client->target and back).
	BytesUp   atomic.Int64
	BytesDown atomic.Int64
	// Errors counts failed relay attempts (dial failures, broken pipes).
	Errors atomic.Int64
	// Rejected counts CONNECT attempts refused by the ACL, kept separate
	// from Errors so open-relay probing is distinguishable from upstream
	// trouble.
	Rejected atomic.Int64
	// Overloaded counts connections dropped at accept because MaxConns
	// capacity was exhausted — load shedding, not an error.
	Overloaded atomic.Int64
	// DialRetries counts upstream dial attempts retried after a
	// transient failure.
	DialRetries atomic.Int64
}

// Relay is a running overlay relay listening for downstream connections.
type Relay struct {
	cfg   Config
	ln    net.Listener
	stats *Stats

	dialLatency *obs.Histogram
	scope       *obs.Scope

	// baseCtx is cancelled by Close so handlers parked in dial-retry
	// backoff (or any other context-aware wait) unblock immediately
	// instead of sleeping out their schedule.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	// pending counts CONNECT-mode sockets accepted but still waiting for
	// their preamble. They do not burn a MaxConns slot (a warm
	// connection pool keeps idle pre-CONNECT sockets open), but they are
	// capped at 2x MaxConns themselves so an open-socket flood stays
	// bounded without idle warm legs starving fresh arrivals.
	pending atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ErrRelayClosed is returned by Serve after Close.
var ErrRelayClosed = errors.New("relay: closed")

// errACLRejected marks a CONNECT refusal so Serve can count it in
// Stats.Rejected rather than Stats.Errors.
var errACLRejected = errors.New("relay: target forbidden by ACL")

// New creates a relay on the listener. Close the relay to release it.
func New(ln net.Listener, cfg Config) *Relay {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.DialRetries < 0 {
		cfg.DialRetries = 0
	}
	if cfg.DialRetryBackoff <= 0 {
		cfg.DialRetryBackoff = 50 * time.Millisecond
	}
	if cfg.IdleTimeout < 0 {
		cfg.IdleTimeout = 0
	} else if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 256 << 10
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{}
	}
	r := &Relay{
		cfg:   cfg,
		ln:    ln,
		stats: &Stats{},
		conns: make(map[net.Conn]struct{}),
	}
	r.baseCtx, r.cancelAll = context.WithCancel(context.Background())
	r.instrument(cfg.Obs)
	return r
}

// instrument wires the relay's counters into an obs registry. All obs
// calls are nil-safe, so a nil registry disables instrumentation.
func (r *Relay) instrument(reg *obs.Registry) {
	r.scope = reg.Scope("relay")
	r.dialLatency = reg.Histogram("cronets_relay_dial_latency_seconds",
		"Upstream dial latency of successful dials.", obs.LatencyBuckets)
	reg.CounterFunc("cronets_relay_accepted_total",
		"Downstream connections accepted.", r.stats.Accepted.Load)
	reg.GaugeFunc("cronets_relay_active",
		"Connections currently being relayed.", r.stats.Active.Load)
	reg.CounterFunc(obs.Label("cronets_relay_bytes_total", "dir", "up"),
		"Relayed bytes by direction (up = client to target).", r.stats.BytesUp.Load)
	reg.CounterFunc(obs.Label("cronets_relay_bytes_total", "dir", "down"),
		"Relayed bytes by direction (up = client to target).", r.stats.BytesDown.Load)
	reg.CounterFunc("cronets_relay_errors_total",
		"Failed relay attempts (dials, broken pipes).", r.stats.Errors.Load)
	reg.CounterFunc("cronets_relay_rejected_total",
		"CONNECT attempts refused by the ACL.", r.stats.Rejected.Load)
	reg.CounterFunc("cronets_relay_overloaded_total",
		"Connections dropped at accept because MaxConns was reached.", r.stats.Overloaded.Load)
	reg.CounterFunc("cronets_relay_dial_retries_total",
		"Upstream dial attempts retried after a transient failure.", r.stats.DialRetries.Load)
}

// Addr returns the relay's listen address.
func (r *Relay) Addr() net.Addr { return r.ln.Addr() }

// Stats returns the relay's counters.
func (r *Relay) Stats() *Stats { return r.stats }

// Serve accepts and relays connections until Close. It always returns a
// non-nil error (ErrRelayClosed after a clean shutdown).
func (r *Relay) Serve() error {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return ErrRelayClosed
			}
			return fmt.Errorf("relay: accept: %w", err)
		}
		// Reserve capacity atomically at accept time: the handler
		// goroutine may not have run yet, so checking Active without
		// reserving would let an accept burst sail past the cap.
		//
		// CONNECT mode defers the MaxConns reservation until the
		// preamble arrives, so a warm connection pool can hold idle
		// pre-CONNECT sockets open without starving real flows; the
		// idle sockets are bounded by their own equal-sized pending cap.
		reserved := r.cfg.Target != ""
		if reserved {
			if !r.reserve() {
				_ = conn.Close()
				r.stats.Overloaded.Add(1)
				continue
			}
		} else if !r.reservePending() {
			_ = conn.Close()
			r.stats.Overloaded.Add(1)
			continue
		}
		r.track(conn)
		r.stats.Accepted.Add(1)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.untrack(conn)
			if err := r.handle(conn, reserved); err != nil {
				if errors.Is(err, errACLRejected) {
					r.stats.Rejected.Add(1)
				} else {
					r.stats.Errors.Add(1)
				}
			}
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for c := range r.conns {
		_ = c.Close()
	}
	r.mu.Unlock()
	r.cancelAll()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// reserve claims one unit of MaxConns capacity via compare-and-swap on
// the Active counter; the handler's deferred decrement releases it.
func (r *Relay) reserve() bool {
	for {
		cur := r.stats.Active.Load()
		if cur >= int64(r.cfg.MaxConns) {
			return false
		}
		if r.stats.Active.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// reservePending claims one unit of the pre-CONNECT pending cap (2x
// MaxConns — headroom so long-lived idle warm legs cannot starve fresh
// arrivals of their transient pending slot); releasePending returns it
// once the preamble arrives or the socket dies.
func (r *Relay) reservePending() bool {
	for {
		cur := r.pending.Load()
		if cur >= 2*int64(r.cfg.MaxConns) {
			return false
		}
		if r.pending.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (r *Relay) releasePending() { r.pending.Add(-1) }

func (r *Relay) track(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conns[c] = struct{}{}
}

func (r *Relay) untrack(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.conns, c)
	_ = c.Close()
}

// handle relays one downstream connection. In forward mode the caller
// has already reserved MaxConns capacity (Stats.Active); in CONNECT mode
// the caller reserved only a pending slot and the MaxConns reservation
// happens here, once the preamble arrives — an idle pre-CONNECT socket
// (a gateway's warm connection pool) does not burn a relay slot.
func (r *Relay) handle(down net.Conn, reserved bool) error {
	defer func() {
		if reserved {
			r.stats.Active.Add(-1)
		}
	}()

	target := r.cfg.Target
	var tc flowtrace.Context
	var br *bufio.Reader
	if target == "" {
		// CONNECT handshake: "CONNECT host:port [TP=<ctx>]\n" -> "OK\n".
		// The read deadline is the relay's IdleTimeout, not DialTimeout:
		// a pooled pre-CONNECT socket legitimately sits quiet until its
		// owner checks it out, and only then sends the preamble.
		br = bufio.NewReader(down)
		if r.cfg.IdleTimeout > 0 {
			_ = down.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout))
		}
		line, err := br.ReadString('\n')
		r.releasePending()
		if err != nil {
			if errors.Is(err, io.EOF) && line == "" {
				// A warm socket closed cleanly before sending any
				// preamble: normal pool churn (TTL expiry, pool
				// shutdown), not an error.
				return nil
			}
			return fmt.Errorf("relay: read connect line: %w", err)
		}
		_ = down.SetReadDeadline(time.Time{})
		t, lineCtx, err := ParseConnectTrace(line)
		if err != nil {
			_, _ = io.WriteString(down, "ERR bad request\n")
			return err
		}
		if !r.cfg.ACL.Allow(t) {
			_, _ = io.WriteString(down, "ERR forbidden\n")
			r.scope.Event(obs.EventACLReject, t)
			return fmt.Errorf("relay: ACL forbids %s: %w", t, errACLRejected)
		}
		// The preamble is in: this is a real flow now, so it must claim a
		// MaxConns slot like any forward-mode connection.
		if !r.reserve() {
			_, _ = io.WriteString(down, "ERR overloaded\n")
			r.stats.Overloaded.Add(1)
			return nil
		}
		reserved = true
		target = t
		tc = lineCtx
		r.scope.Event(obs.EventConnect, t)
	}

	// Dial under a context cancelled when the relay shuts down and — in
	// CONNECT mode — when the client hangs up mid-dial, so a caller that
	// gives up cannot pin this goroutine (and its MaxConns slot) through
	// the whole retry schedule.
	dialCtx, cancelDial := context.WithCancel(r.baseCtx)
	stopWatch := r.watchAbort(down, br, cancelDial)
	dialSpan := r.cfg.Tracer.Continue("relay.dial", tc)
	up, err := r.dialUpstream(dialCtx, target)
	stopWatch()
	cancelDial()
	if err != nil {
		dialSpan.SetDetail("fail " + target)
		dialSpan.End()
		if br != nil {
			_, _ = io.WriteString(down, "ERR dial failed\n")
		}
		r.scope.Event(obs.EventDial, "fail "+target)
		return fmt.Errorf("relay: dial %s: %w", target, err)
	}
	dialSpan.SetDetail(target)
	dialSpan.End()
	r.scope.Event(obs.EventDial, "ok "+target)
	defer up.Close()
	r.track(up)
	defer r.untrack(up)

	if br != nil {
		if _, err := io.WriteString(down, "OK\n"); err != nil {
			return fmt.Errorf("relay: write connect reply: %w", err)
		}
	}

	var downReader io.Reader = down
	if br != nil && br.Buffered() > 0 {
		downReader = io.MultiReader(io.LimitReader(br, int64(br.Buffered())), down)
	}
	return r.splice(down, downReader, up, tc)
}

// watchAbort watches a CONNECT-mode downstream for the client hanging up
// while the upstream dial (and its retry schedule) is in flight, calling
// cancel if it does. Peek never consumes: bytes a client pipelines ahead
// of the OK reply stay buffered for the splice. The returned stop func
// unblocks the watcher and waits for it to exit, so the caller regains
// exclusive use of the connection. In forward mode (nil br) there is
// nothing to watch and stop is a no-op.
func (r *Relay) watchAbort(down net.Conn, br *bufio.Reader, cancel context.CancelFunc) (stop func()) {
	if br == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := br.Peek(1); err != nil && !isTimeout(err) {
			// EOF / reset: the client is gone. A timeout is stop()
			// reclaiming the connection, not a hangup.
			cancel()
		}
	}()
	return func() {
		_ = down.SetReadDeadline(aLongTimeAgo)
		<-done
		_ = down.SetReadDeadline(time.Time{})
	}
}

// aLongTimeAgo is an expired deadline used to unblock in-flight reads.
var aLongTimeAgo = time.Unix(1, 0)

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dialUpstream dials the target, retrying transient failures (refused,
// timeout) up to DialRetries times with jittered exponential backoff —
// the cloud overlay's answer to a relay or destination that is briefly
// unreachable while it restarts or fails over. The jitter desynchronizes
// the retry schedules of the many flows a relay dials on behalf of, so
// they cannot storm a recovering upstream in lockstep. Cancelling ctx
// (relay shutdown, client hangup) aborts both the dial and the backoff
// sleep immediately.
func (r *Relay) dialUpstream(ctx context.Context, target string) (net.Conn, error) {
	backoff := r.cfg.DialRetryBackoff
	for attempt := 0; ; attempt++ {
		dialCtx, cancel := context.WithTimeout(ctx, r.cfg.DialTimeout)
		dialStart := time.Now()
		up, err := r.cfg.Dialer.DialContext(dialCtx, "tcp", target)
		cancel()
		if err == nil {
			r.dialLatency.ObserveDuration(time.Since(dialStart))
			return up, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("relay: dial abandoned: %w", ctx.Err())
		}
		if attempt >= r.cfg.DialRetries || !transientDialError(err) {
			return nil, err
		}
		r.stats.DialRetries.Add(1)
		r.scope.Event(obs.EventDialRetry,
			fmt.Sprintf("%s attempt %d: %v", target, attempt+1, err))
		wait := backoff + backoffJitter(backoff)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("relay: dial abandoned: %w", ctx.Err())
		case <-time.After(wait):
		}
		backoff *= 2
	}
}

// backoffJitter draws a uniform [0, d/2] jitter so concurrent retry
// schedules spread out instead of synchronizing.
func backoffJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d)/2 + 1))
}

// transientDialError reports whether a dial failure is worth retrying:
// timeouts and refused connections pass, everything else (unreachable
// network, bad address) fails fast.
func transientDialError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, context.DeadlineExceeded)
}

// splice runs the shared data-plane loop over the connection pair: pooled
// buffers, live byte counters, TCP half-close propagation, and the idle
// timeout, all from internal/pipe. For sampled flows it records a
// relay.splice span (bytes, first-byte latency); unsampled flows leave
// the loop's options exactly as before.
func (r *Relay) splice(down net.Conn, downReader io.Reader, up net.Conn, tc flowtrace.Context) error {
	a := down
	if downReader != io.Reader(down) {
		// Replay handshake bytes the CONNECT reader over-read.
		a = pipe.WithReader(down, downReader)
	}
	opts := pipe.Options{
		BufferBytes: r.cfg.BufferBytes,
		IdleTimeout: r.cfg.IdleTimeout,
		OnIdle: func() {
			r.scope.Event(obs.EventIdleClose, down.RemoteAddr().String())
		},
		CountAToB: &r.stats.BytesUp,
		CountBToA: &r.stats.BytesDown,
	}
	span := r.cfg.Tracer.Continue("relay.splice", tc)
	if span != nil {
		// TTFB at the relay: the first byte coming back from the
		// upstream toward the client.
		opts.OnFirstByte = func(dir pipe.Dir) {
			if dir == pipe.BToA {
				span.MarkFirstByte()
			}
		}
	}
	res, err := pipe.Bidirectional(context.Background(), a, up, opts)
	span.AddBytes(res.AToB + res.BToA)
	span.End()
	return err
}

// ParseConnect parses a "CONNECT host:port" request line, tolerating
// (and discarding) a trailing trace-context token.
func ParseConnect(line string) (string, error) {
	target, _, err := ParseConnectTrace(line)
	return target, err
}

// tracePrefix introduces the optional trace-context token on a CONNECT
// line: "CONNECT host:port TP=<48 hex chars>".
const tracePrefix = "TP="

// ParseConnectTrace parses a "CONNECT host:port [TP=<ctx>]" request
// line, returning the target and the propagated trace context (zero when
// absent or malformed — a bad trace token never fails the handshake,
// tracing is best-effort).
func ParseConnectTrace(line string) (string, flowtrace.Context, error) {
	line = strings.TrimSpace(line)
	const prefix = "CONNECT "
	if !strings.HasPrefix(line, prefix) {
		return "", flowtrace.Context{}, fmt.Errorf("relay: malformed request %q", line)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, prefix))
	target := rest
	var tc flowtrace.Context
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		target = rest[:i]
		if tok := strings.TrimSpace(rest[i+1:]); strings.HasPrefix(tok, tracePrefix) {
			tc, _ = flowtrace.DecodeText(strings.TrimPrefix(tok, tracePrefix))
		}
	}
	host, port, err := net.SplitHostPort(target)
	if err != nil || host == "" || port == "" {
		return "", flowtrace.Context{}, fmt.Errorf("relay: bad target %q", target)
	}
	return target, tc, nil
}

// DialVia connects to target through a CONNECT-mode relay and completes
// the handshake, returning the relayed connection. If ctx carries a
// sampled trace context (flowtrace.NewGoContext), it is propagated to
// the relay in the CONNECT preamble so the relay's spans join the trace.
func DialVia(ctx context.Context, d Dialer, relayAddr, target string) (net.Conn, error) {
	if d == nil {
		d = &net.Dialer{}
	}
	conn, err := d.DialContext(ctx, "tcp", relayAddr)
	if err != nil {
		return nil, fmt.Errorf("relay: dial relay %s: %w", relayAddr, err)
	}
	return Connect(ctx, conn, target)
}

// ErrRefused marks a CONNECT the relay answered with an ERR line: the
// relay's socket is alive but it declined the flow (ACL forbids the
// target, MaxConns overload, upstream dial failure). Callers classify it
// with errors.Is — it is path-down evidence of a different kind than a
// dead socket or a dial timeout, and pathmon counts it separately.
var ErrRefused = errors.New("relay: connect refused")

// Connect runs the client half of the CONNECT handshake for target on an
// already-open connection to a relay, returning the relayed connection —
// the warm-pool checkout path: a gateway that keeps pre-established relay
// sockets skips the TCP handshake leg and pays only this one round trip.
// ctx bounds the whole preamble exchange: its deadline covers both the
// request write and the reply read, and cancelling it mid-handshake
// force-expires the socket so the caller returns promptly. ctx also
// carries the optional trace context, exactly as in DialVia. On error the
// connection is closed.
func Connect(ctx context.Context, conn net.Conn, target string) (net.Conn, error) {
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	stopWatch := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(aLongTimeAgo) })
	defer stopWatch()
	var err error
	if tc := flowtrace.FromGoContext(ctx); tc.Sampled {
		_, err = fmt.Fprintf(conn, "CONNECT %s %s%s\n", target, tracePrefix, tc.EncodeText())
	} else {
		_, err = fmt.Fprintf(conn, "CONNECT %s\n", target)
	}
	if err != nil {
		_ = conn.Close()
		return nil, connectAbortErr(ctx, fmt.Errorf("relay: send connect: %w", err))
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		_ = conn.Close()
		return nil, connectAbortErr(ctx, fmt.Errorf("relay: read connect reply: %w", err))
	}
	_ = conn.SetDeadline(time.Time{})
	if strings.TrimSpace(line) != "OK" {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrRefused, strings.TrimSpace(line))
	}
	if br.Buffered() > 0 {
		return &bufferedConn{Conn: conn, r: br}, nil
	}
	return conn, nil
}

// connectAbortErr substitutes the context's error for the I/O error it
// induced: a cancellation-expired deadline surfaces as context.Canceled,
// not as a generic timeout.
func connectAbortErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("relay: connect aborted: %w", ctxErr)
	}
	// The socket deadline mirrors ctx's deadline, and the read can expire
	// a hair before the context's own timer fires: classify that as the
	// deadline too, so callers (pathmon) never see a raw I/O timeout for
	// a context-bounded handshake.
	if _, hasDL := ctx.Deadline(); hasDL && errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("relay: connect aborted: %w", context.DeadlineExceeded)
	}
	return err
}

// bufferedConn keeps bytes the handshake reader over-read.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }
