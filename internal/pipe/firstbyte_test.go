package pipe

import (
	"bytes"
	"io"
	"net"
	"sync/atomic"
	"testing"
)

// TestOnFirstByte: the callback fires exactly once per direction, before
// the stream finishes, and repeated chunks don't re-trigger it.
func TestOnFirstByte(t *testing.T) {
	echo := echoAccept(t)
	var firstUp, firstDown atomic.Int64
	opts := Options{
		BufferBytes: 1 << 10,
		OnFirstByte: func(dir Dir) {
			if dir == AToB {
				firstUp.Add(1)
			} else {
				firstDown.Add(1)
			}
		},
	}
	payload := bytes.Repeat([]byte("first-byte"), 2048)
	addr, done, errc := startSplice(t, echo.Addr().String(), opts)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		_, _ = conn.Write(payload)
		_ = conn.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	<-done
	if err := <-errc; err != nil {
		t.Fatalf("Bidirectional: %v", err)
	}
	if firstUp.Load() != 1 || firstDown.Load() != 1 {
		t.Errorf("OnFirstByte fired up=%d down=%d times, want 1 each", firstUp.Load(), firstDown.Load())
	}
}
