// Package pipe is the unified data-plane core of the real-socket overlay
// stack: a size-classed buffer pool and the one implementation of the
// bidirectional splice loop every forwarding layer (relay, gateway, netem,
// tunnel, measure, multipath) runs on. The paper's throughput gains hinge
// on the split-TCP relay path adding as little overhead as possible, so
// the hot path here is allocation-free in steady state: copy buffers,
// segment buffers, and frame scratch all come from the pool, and the loop
// itself is written once, with correct TCP half-close propagation, idle
// teardown, per-direction metering, and a per-chunk hook for shaping and
// rate limiting.
package pipe

import (
	"sync"
	"sync/atomic"

	"cronets/internal/obs"
)

// classSizes are the pool's buffer size classes: small (frame headers,
// probe frames), medium (the default copy buffer and multipath segment
// size), large (the split-TCP relay buffer). Requests above the largest
// class fall through to plain allocation.
var classSizes = [...]int{4 << 10, 32 << 10, 256 << 10}

// DefaultBufferBytes is the copy-buffer size Bidirectional and CopyMetered
// use when the caller does not specify one.
const DefaultBufferBytes = 32 << 10

var (
	// pools[i] holds *[]byte whose cap is exactly classSizes[i].
	pools [len(classSizes)]sync.Pool
	// headers recycles the *[]byte wrappers themselves so that a steady
	// Get/Put cycle allocates nothing: a wrapper freed by Get parks here
	// until the next Put needs one.
	headers sync.Pool

	poolHits     atomic.Int64
	poolMisses   atomic.Int64
	poolPuts     atomic.Int64
	poolDiscards atomic.Int64
)

// Get returns a buffer of length n, drawn from the smallest size class
// that fits (allocating a fresh class-sized buffer on pool miss). Requests
// larger than every class are plainly allocated. The contents are
// arbitrary — callers must not read bytes they did not write.
func Get(n int) []byte {
	for i, size := range classSizes {
		if n > size {
			continue
		}
		if w, _ := pools[i].Get().(*[]byte); w != nil {
			b := *w
			*w = nil
			headers.Put(w)
			poolHits.Add(1)
			return b[:n]
		}
		poolMisses.Add(1)
		return make([]byte, n, size)
	}
	poolMisses.Add(1)
	return make([]byte, n)
}

// Put returns a buffer obtained from Get to its size class. Buffers whose
// capacity matches no class (oversize Gets, foreign slices) are discarded.
// The caller must not retain any reference to b after Put.
func Put(b []byte) {
	if b == nil {
		return
	}
	for i, size := range classSizes {
		if cap(b) != size {
			continue
		}
		w, _ := headers.Get().(*[]byte)
		if w == nil {
			w = new([]byte)
		}
		*w = b[:size]
		pools[i].Put(w)
		poolPuts.Add(1)
		return
	}
	poolDiscards.Add(1)
}

// PoolStats is a snapshot of the pool's cumulative counters.
type PoolStats struct {
	// Hits and Misses count Get calls served from the pool vs freshly
	// allocated (misses include oversize requests).
	Hits, Misses int64
	// Puts counts buffers returned to a class; Discards counts Put calls
	// whose buffer matched no class and was dropped for the GC.
	Puts, Discards int64
}

// Stats returns the pool's cumulative counters. Gets = Hits + Misses and
// Returns = Puts + Discards; a leak-free workload drains to
// Gets == Returns once every buffer is released.
func Stats() PoolStats {
	return PoolStats{
		Hits:     poolHits.Load(),
		Misses:   poolMisses.Load(),
		Puts:     poolPuts.Load(),
		Discards: poolDiscards.Load(),
	}
}

// InstrumentPool registers the pool's counters on an obs registry (the
// pool is process-global, so call this once per exposed registry). A nil
// registry is a no-op.
func InstrumentPool(reg *obs.Registry) {
	reg.CounterFunc("cronets_pipe_pool_hits_total",
		"Buffer-pool Gets served from a size class.", poolHits.Load)
	reg.CounterFunc("cronets_pipe_pool_misses_total",
		"Buffer-pool Gets that allocated (cold class or oversize).", poolMisses.Load)
	reg.CounterFunc("cronets_pipe_pool_puts_total",
		"Buffers returned to a size class.", poolPuts.Load)
	reg.CounterFunc("cronets_pipe_pool_discards_total",
		"Put buffers matching no size class, dropped for the GC.", poolDiscards.Load)
}
