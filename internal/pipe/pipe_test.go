package pipe

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gets/returns deltas over a function, for leak accounting.
func poolDelta(t *testing.T, fn func()) (gets, returns int64) {
	t.Helper()
	before := Stats()
	fn()
	after := Stats()
	return (after.Hits + after.Misses) - (before.Hits + before.Misses),
		(after.Puts + after.Discards) - (before.Puts + before.Discards)
}

func TestPoolSizeClasses(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 4 << 10},
		{4 << 10, 4 << 10},
		{4<<10 + 1, 32 << 10},
		{32 << 10, 32 << 10},
		{200 << 10, 256 << 10},
		{256 << 10, 256 << 10},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("Get(%d): len=%d cap=%d, want len=%d cap=%d",
				c.n, len(b), cap(b), c.n, c.wantCap)
		}
		Put(b)
	}
	// Oversize requests allocate exactly and are discarded on Put.
	before := Stats()
	big := Get(300 << 10)
	if len(big) != 300<<10 {
		t.Fatalf("oversize Get: len=%d", len(big))
	}
	Put(big)
	after := Stats()
	if after.Discards != before.Discards+1 {
		t.Errorf("oversize Put should discard: discards %d -> %d",
			before.Discards, after.Discards)
	}
}

// TestPoolConcurrentNoBleed hammers the pool from many goroutines, each
// writing its own canary pattern and verifying it after a reschedule. A
// buffer handed to two goroutines at once shows up as a corrupted canary.
func TestPoolConcurrentNoBleed(t *testing.T) {
	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			sizes := []int{100, 4 << 10, 20 << 10, 256 << 10}
			for i := 0; i < rounds; i++ {
				buf := Get(sizes[i%len(sizes)])
				for j := range buf {
					buf[j] = id
				}
				if i%7 == 0 {
					time.Sleep(time.Microsecond)
				}
				for j := range buf {
					if buf[j] != id {
						errs <- fmt.Errorf("goroutine %d round %d: canary corrupted at %d: got %d",
							id, i, j, buf[j])
						return
					}
				}
				Put(buf)
			}
		}(byte(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// echoAccept starts a listener whose connections are echoed until client
// EOF, then half-closed server-side so the tail drains.
func echoAccept(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 8<<10)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						closeWrite(c)
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// splice dials target and splices an accepted downstream connection onto
// it via Bidirectional — a minimal relay for the half-close matrix.
func startSplice(t *testing.T, target string, opts Options) (addr string, done <-chan Result, errc <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	donec := make(chan Result, 1)
	errs := make(chan error, 1)
	go func() {
		down, err := ln.Accept()
		if err != nil {
			return
		}
		defer down.Close()
		up, err := net.Dial("tcp", target)
		if err != nil {
			errs <- err
			return
		}
		defer up.Close()
		res, perr := Bidirectional(context.Background(), down, up, opts)
		donec <- res
		errs <- perr
	}()
	return ln.Addr().String(), donec, errs
}

// TestHalfCloseClientCloses: the client writes, half-closes, and must
// still receive the full echo before EOF — in-flight data survives the
// client's FIN through the splice.
func TestHalfCloseClientCloses(t *testing.T) {
	echo := echoAccept(t)
	payload := bytes.Repeat([]byte("half-close-client "), 1000)

	gets, returns := poolDelta(t, func() {
		addr, done, errc := startSplice(t, echo.Addr().String(), Options{})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		_ = conn.(*net.TCPConn).CloseWrite()
		got, err := io.ReadAll(conn)
		if err != nil {
			t.Fatalf("read echo: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("echo mismatch: got %d bytes, want %d", len(got), len(payload))
		}
		res := <-done
		if err := <-errc; err != nil {
			t.Fatalf("Bidirectional: %v", err)
		}
		if res.AToB != int64(len(payload)) || res.BToA != int64(len(payload)) {
			t.Errorf("Result bytes = %d/%d, want %d both ways", res.AToB, res.BToA, len(payload))
		}
	})
	if gets != returns {
		t.Errorf("pool leak: %d gets, %d returns", gets, returns)
	}
}

// TestHalfCloseServerCloses: the far side writes a banner and closes; the
// client must see the banner then EOF, and the splice must finish.
func TestHalfCloseServerCloses(t *testing.T) {
	banner := []byte("greetings from upstream\n")
	srv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		c, err := srv.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write(banner)
		_ = c.Close()
	}()

	gets, returns := poolDelta(t, func() {
		addr, done, errc := startSplice(t, srv.Addr().String(), Options{})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		got, err := io.ReadAll(conn)
		if err != nil {
			t.Fatalf("read banner: %v", err)
		}
		if !bytes.Equal(got, banner) {
			t.Fatalf("banner mismatch: %q", got)
		}
		_ = conn.Close()
		<-done
		if err := <-errc; err != nil {
			t.Fatalf("Bidirectional: %v", err)
		}
	})
	if gets != returns {
		t.Errorf("pool leak: %d gets, %d returns", gets, returns)
	}
}

// TestHalfCloseBothSides: both peers half-close after writing; both tails
// must be delivered.
func TestHalfCloseBothSides(t *testing.T) {
	serverSays := []byte("server tail")
	clientSays := []byte("client tail")
	received := make(chan []byte, 1)
	srv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		c, err := srv.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write(serverSays)
		closeWrite(c)
		got, _ := io.ReadAll(c)
		received <- got
		_ = c.Close()
	}()

	addr, done, errc := startSplice(t, srv.Addr().String(), Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(clientSays); err != nil {
		t.Fatal(err)
	}
	_ = conn.(*net.TCPConn).CloseWrite()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serverSays) {
		t.Errorf("client read %q, want %q", got, serverSays)
	}
	if got := <-received; !bytes.Equal(got, clientSays) {
		t.Errorf("server read %q, want %q", got, clientSays)
	}
	<-done
	if err := <-errc; err != nil {
		t.Fatalf("Bidirectional: %v", err)
	}
}

// TestAbortTeardown: a mid-flight hard close must finish the splice
// promptly (no deadlock waiting on the other direction) and still return
// every pooled buffer.
func TestAbortTeardown(t *testing.T) {
	blackhole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blackhole.Close()
	go func() {
		for {
			c, err := blackhole.Accept()
			if err != nil {
				return
			}
			defer c.Close() // never reads, never writes
		}
	}()

	gets, returns := poolDelta(t, func() {
		addr, done, errc := startSplice(t, blackhole.Addr().String(), Options{})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte("doomed")); err != nil {
			t.Fatal(err)
		}
		// Hard abort: SO_LINGER 0 turns Close into a RST.
		_ = conn.(*net.TCPConn).SetLinger(0)
		_ = conn.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("splice did not finish after abort")
		}
		<-errc // RST surfaces as a hard error or as clean close; either is fine
	})
	if gets != returns {
		t.Errorf("pool leak after abort: %d gets, %d returns", gets, returns)
	}
}

// TestIdleTimeout: a silent pair is torn down, OnIdle fires, the result is
// flagged, and no error is reported.
func TestIdleTimeout(t *testing.T) {
	srv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		c, err := srv.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = io.ReadAll(c)
	}()

	var idleCalls atomic.Int64
	gets, returns := poolDelta(t, func() {
		addr, done, errc := startSplice(t, srv.Addr().String(), Options{
			IdleTimeout: 80 * time.Millisecond,
			OnIdle:      func() { idleCalls.Add(1) },
		})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		select {
		case res := <-done:
			if !res.IdleClosed {
				t.Error("Result.IdleClosed = false, want true")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("idle timeout never fired")
		}
		if err := <-errc; err != nil {
			t.Errorf("idle teardown reported error: %v", err)
		}
	})
	if got := idleCalls.Load(); got != 1 {
		t.Errorf("OnIdle called %d times, want 1", got)
	}
	if gets != returns {
		t.Errorf("pool leak after idle close: %d gets, %d returns", gets, returns)
	}
}

// TestIdleTimeoutTrafficKeepsAlive: steady traffic must hold the idle
// timer off.
func TestIdleTimeoutTrafficKeepsAlive(t *testing.T) {
	echo := echoAccept(t)
	addr, done, errc := startSplice(t, echo.Addr().String(), Options{
		IdleTimeout: 150 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 4)
	for i := 0; i < 8; i++ {
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		time.Sleep(60 * time.Millisecond) // under the timeout, but 8x over it in sum
	}
	_ = conn.(*net.TCPConn).CloseWrite()
	res := <-done
	if err := <-errc; err != nil {
		t.Fatalf("Bidirectional: %v", err)
	}
	if res.IdleClosed {
		t.Error("flow with steady traffic was idle-closed")
	}
}

// TestCountersAndHook: live per-direction counters count written bytes,
// and a chunk-splitting hook preserves the byte stream.
func TestCountersAndHook(t *testing.T) {
	echo := echoAccept(t)
	var up, down atomic.Int64
	var hookChunks atomic.Int64
	opts := Options{
		BufferBytes: 1 << 10,
		CountAToB:   &up,
		CountBToA:   &down,
		Hook: func(dir Dir, chunk []byte, write WriteFunc) error {
			hookChunks.Add(1)
			// Deliver in split pieces to exercise sub-chunk writes.
			for len(chunk) > 0 {
				n := len(chunk)/2 + 1
				if err := write(chunk[:n]); err != nil {
					return err
				}
				chunk = chunk[n:]
			}
			return nil
		},
	}
	payload := bytes.Repeat([]byte("hooked!"), 4096)
	addr, done, errc := startSplice(t, echo.Addr().String(), opts)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		_, _ = conn.Write(payload)
		_ = conn.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("hooked stream corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	res := <-done
	if err := <-errc; err != nil {
		t.Fatalf("Bidirectional: %v", err)
	}
	want := int64(len(payload))
	if up.Load() != want || down.Load() != want {
		t.Errorf("counters up=%d down=%d, want %d both", up.Load(), down.Load(), want)
	}
	if res.AToB != want || res.BToA != want {
		t.Errorf("result AToB=%d BToA=%d, want %d both", res.AToB, res.BToA, want)
	}
	if hookChunks.Load() == 0 {
		t.Error("hook was never called")
	}
}

// TestHookAbort: a hook error tears the pair down and surfaces from
// Bidirectional.
func TestHookAbort(t *testing.T) {
	echo := echoAccept(t)
	abortErr := fmt.Errorf("shaped to death")
	gets, returns := poolDelta(t, func() {
		addr, done, errc := startSplice(t, echo.Addr().String(), Options{
			Hook: func(dir Dir, chunk []byte, write WriteFunc) error { return abortErr },
		})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("trigger")); err != nil {
			t.Fatal(err)
		}
		<-done
		if err := <-errc; err == nil {
			t.Error("hook abort did not surface an error")
		}
	})
	if gets != returns {
		t.Errorf("pool leak after hook abort: %d gets, %d returns", gets, returns)
	}
}

// TestContextCancel: cancelling the context closes both connections and
// finishes the splice cleanly.
func TestContextCancel(t *testing.T) {
	srv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		c, err := srv.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = io.ReadAll(c)
	}()
	up, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	downA, downB := net.Pipe()
	defer downA.Close()
	defer downB.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Bidirectional(ctx, downB, up, Options{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("context cancel reported error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("splice did not finish after context cancel")
	}
}

// TestCopyMetered: pooled one-directional copy with a live counter, no
// leaks.
func TestCopyMetered(t *testing.T) {
	payload := bytes.Repeat([]byte("metered "), 10000)
	var count atomic.Int64
	var dst bytes.Buffer
	gets, returns := poolDelta(t, func() {
		n, err := CopyMetered(&dst, bytes.NewReader(payload), CopyOptions{
			BufferBytes: 2 << 10,
			Count:       &count,
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(payload)) || count.Load() != n {
			t.Errorf("n=%d count=%d, want %d", n, count.Load(), len(payload))
		}
	})
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Error("CopyMetered corrupted the stream")
	}
	if gets != returns {
		t.Errorf("pool leak: %d gets, %d returns", gets, returns)
	}
}

// TestWithReader: the wrapper replays a buffered prefix and still forwards
// TCP half-close to the underlying connection.
func TestWithReader(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := WithReader(a, io.MultiReader(bytes.NewReader([]byte("prefix-")), a))
	go func() {
		_, _ = b.Write([]byte("suffix"))
		_ = b.Close()
	}()
	got, err := io.ReadAll(wrapped)
	if err != nil && err != io.EOF && err != io.ErrClosedPipe {
		t.Fatal(err)
	}
	if want := "prefix-suffix"; string(got) != want {
		t.Errorf("read %q, want %q", got, want)
	}
	// net.Pipe has no CloseWrite/CloseRead; forwarding must be a no-op,
	// not a panic.
	if err := wrapped.(*readerConn).CloseWrite(); err != nil {
		t.Errorf("CloseWrite on pipe-backed wrapper: %v", err)
	}
	if err := wrapped.(*readerConn).CloseRead(); err != nil {
		t.Errorf("CloseRead on pipe-backed wrapper: %v", err)
	}
}
