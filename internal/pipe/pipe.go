package pipe

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dir identifies one direction of a bidirectional splice.
type Dir int

// Directions. AToB reads from the first connection and writes to the
// second; callers conventionally pass the client/downstream side as a, so
// AToB is "up" and BToA is "down".
const (
	AToB Dir = iota
	BToA
)

// String returns the direction's display name.
func (d Dir) String() string {
	if d == AToB {
		return "a->b"
	}
	return "b->a"
}

// WriteFunc delivers bytes toward the direction's destination, metering
// them into the direction's counters. It returns the destination's write
// error, if any.
type WriteFunc func(p []byte) error

// Hook intercepts every chunk read by Bidirectional before it is written.
// The hook owns delivery: it must call write zero or more times (netem
// splits chunks at fault offsets and sleeps between pieces; a rate
// limiter paces calls; a filter may drop bytes by not writing them).
// Returning a non-nil error aborts the connection pair. The chunk is only
// valid until the hook returns.
type Hook func(dir Dir, chunk []byte, write WriteFunc) error

// Options configures Bidirectional.
type Options struct {
	// BufferBytes sizes each direction's pooled copy buffer (default
	// DefaultBufferBytes).
	BufferBytes int
	// IdleTimeout tears the pair down when no byte moves in either
	// direction for this long (0 disables).
	IdleTimeout time.Duration
	// OnIdle, if set, is called once when the idle timeout fires, before
	// the connections are closed.
	OnIdle func()
	// CountAToB and CountBToA, if set, are incremented live with every
	// write in the respective direction, so metrics see bytes as they
	// move rather than when the flow ends.
	CountAToB, CountBToA *atomic.Int64
	// Hook, if set, intercepts every chunk (see Hook).
	Hook Hook
	// OnFirstByte, if set, is called once per direction when its first
	// chunk arrives, before the chunk is delivered — the hook point for
	// first-byte-latency (TTFB) measurement. Nil costs the splice loop
	// nothing.
	OnFirstByte func(dir Dir)
}

// Result reports what a finished Bidirectional moved.
type Result struct {
	// AToB and BToA are the bytes written in each direction.
	AToB, BToA int64
	// Duration is the wall-clock lifetime of the splice.
	Duration time.Duration
	// IdleClosed reports that the idle timeout (not the peers) ended the
	// flow.
	IdleClosed bool
}

// closeWriter and closeReader are the TCP half-close surfaces
// (*net.TCPConn implements both; wrappers forward them).
type closeWriter interface{ CloseWrite() error }
type closeReader interface{ CloseRead() error }

func closeWrite(c net.Conn) {
	if cw, ok := c.(closeWriter); ok {
		_ = cw.CloseWrite()
	}
}

func closeRead(c net.Conn) {
	if cr, ok := c.(closeReader); ok {
		_ = cr.CloseRead()
	}
}

// Bidirectional splices a and b together until both directions finish: the
// one shared implementation of the overlay's forwarding loop. A direction
// hitting clean EOF propagates the half-close (CloseWrite toward its
// destination, CloseRead on its source) and lets the opposite direction
// drain — the split-TCP teardown that keeps in-flight data alive; a read
// or write error closes both connections to unblock the peer direction.
// Context cancellation and the idle timeout also close both connections.
// Bidirectional does not close the connections on a clean finish — the
// caller owns them — but after a full bidirectional EOF both are
// half-closed in both directions and therefore dead.
//
// The returned error is nil for clean teardown (EOF, idle, context or
// caller-initiated close); otherwise it is the first hard error either
// direction hit.
func Bidirectional(ctx context.Context, a, b net.Conn, opts Options) (Result, error) {
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = DefaultBufferBytes
	}
	start := time.Now()

	var res Result
	var idleFired atomic.Bool
	idle := newIdleWatch(opts.IdleTimeout, func() {
		idleFired.Store(true)
		if opts.OnIdle != nil {
			opts.OnIdle()
		}
		_ = a.Close()
		_ = b.Close()
	})
	defer idle.stop()

	if ctx != nil && ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				_ = a.Close()
				_ = b.Close()
			case <-watchDone:
			}
		}()
	}

	errc := make(chan error, 2)
	go func() {
		n, err := copyHalf(b, a, AToB, &opts, idle)
		res.AToB = n
		if err != nil {
			_ = a.Close()
			_ = b.Close()
		}
		errc <- err
	}()
	go func() {
		n, err := copyHalf(a, b, BToA, &opts, idle)
		res.BToA = n
		if err != nil {
			_ = a.Close()
			_ = b.Close()
		}
		errc <- err
	}()

	err := firstErr(<-errc, <-errc)
	res.Duration = time.Since(start)
	res.IdleClosed = idleFired.Load()
	if res.IdleClosed || (ctx != nil && ctx.Err() != nil) {
		err = nil
	}
	return res, err
}

// copyHalf pumps one direction with a pooled buffer until EOF or error.
// The buffer is always returned to the pool, on every exit path.
func copyHalf(dst, src net.Conn, dir Dir, opts *Options, idle *idleWatch) (int64, error) {
	buf := Get(opts.BufferBytes)
	defer Put(buf)

	counter := opts.CountAToB
	if dir == BToA {
		counter = opts.CountBToA
	}
	var n int64
	write := func(p []byte) error {
		if len(p) == 0 {
			return nil
		}
		nw, err := dst.Write(p)
		n += int64(nw)
		if counter != nil {
			counter.Add(int64(nw))
		}
		return err
	}
	awaitingFirst := opts.OnFirstByte != nil
	for {
		rn, rerr := src.Read(buf)
		if rn > 0 {
			idle.touch()
			if awaitingFirst {
				awaitingFirst = false
				opts.OnFirstByte(dir)
			}
			var werr error
			if opts.Hook != nil {
				werr = opts.Hook(dir, buf[:rn], write)
			} else {
				werr = write(buf[:rn])
			}
			if werr != nil {
				return n, werr
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				// Propagate the half-close: the destination learns this
				// direction is done (FIN) while its own sending side stays
				// open for the opposite direction to drain.
				closeWrite(dst)
				closeRead(src)
				return n, nil
			}
			return n, rerr
		}
	}
}

// firstErr returns the first hard error, treating EOF and closed-connection
// errors as clean.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err == nil || err == io.EOF || errors.Is(err, net.ErrClosed) {
			continue
		}
		return err
	}
	return nil
}

// CopyOptions configures CopyMetered.
type CopyOptions struct {
	// BufferBytes sizes the pooled copy buffer (default
	// DefaultBufferBytes).
	BufferBytes int
	// Count, if set, is incremented live with every write.
	Count *atomic.Int64
}

// CopyMetered copies src to dst through a pooled buffer until EOF,
// returning the bytes written — the one-directional sibling of
// Bidirectional for metered single-direction paths (sinks, echo servers,
// drains). Like io.Copy, a clean source EOF is not an error.
func CopyMetered(dst io.Writer, src io.Reader, opts CopyOptions) (int64, error) {
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = DefaultBufferBytes
	}
	buf := Get(opts.BufferBytes)
	defer Put(buf)
	var n int64
	for {
		rn, rerr := src.Read(buf)
		if rn > 0 {
			nw, werr := dst.Write(buf[:rn])
			n += int64(nw)
			if opts.Count != nil {
				opts.Count.Add(int64(nw))
			}
			if werr != nil {
				return n, werr
			}
			if nw < rn {
				return n, io.ErrShortWrite
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return n, nil
			}
			return n, rerr
		}
	}
}

// WithReader returns a net.Conn that reads from r but otherwise behaves as
// conn, forwarding TCP half-close to the underlying connection. Callers
// that buffered bytes during a handshake (relay CONNECT) use it to hand
// Bidirectional a connection whose reads replay the buffered prefix.
func WithReader(conn net.Conn, r io.Reader) net.Conn {
	return &readerConn{Conn: conn, r: r}
}

type readerConn struct {
	net.Conn
	r io.Reader
}

func (c *readerConn) Read(p []byte) (int, error) { return c.r.Read(p) }

func (c *readerConn) CloseWrite() error {
	if cw, ok := c.Conn.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

func (c *readerConn) CloseRead() error {
	if cr, ok := c.Conn.(closeReader); ok {
		return cr.CloseRead()
	}
	return nil
}

// idleWatch fires a callback when touch is not called for the timeout.
type idleWatch struct {
	timeout time.Duration
	timer   *time.Timer

	mu      sync.Mutex
	stopped bool
}

func newIdleWatch(timeout time.Duration, onIdle func()) *idleWatch {
	w := &idleWatch{timeout: timeout}
	if timeout > 0 {
		w.timer = time.AfterFunc(timeout, onIdle)
	}
	return w
}

// touch resets the idle countdown. Nil-safe and cheap when no timeout is
// configured.
func (w *idleWatch) touch() {
	if w == nil || w.timer == nil {
		return
	}
	w.mu.Lock()
	if !w.stopped {
		w.timer.Reset(w.timeout)
	}
	w.mu.Unlock()
}

// stop cancels the watch.
func (w *idleWatch) stop() {
	if w == nil || w.timer == nil {
		return
	}
	w.mu.Lock()
	w.stopped = true
	w.timer.Stop()
	w.mu.Unlock()
}
