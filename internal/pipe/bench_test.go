package pipe

import (
	"context"
	"net"
	"testing"
)

// BenchmarkPipeBidirectional measures one spliced connection per
// iteration: dial a splice bridging to an echo server, push 1 MiB through
// both directions, tear down. The splice itself must not allocate per
// flow beyond fixed goroutine overhead — its buffers come from the pool.
func BenchmarkPipeBidirectional(b *testing.B) {
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer echoLn.Close()
	go func() {
		for {
			c, err := echoLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 32<<10)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						closeWrite(c)
						return
					}
				}
			}(c)
		}
	}()

	spliceLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer spliceLn.Close()
	go func() {
		for {
			down, err := spliceLn.Accept()
			if err != nil {
				return
			}
			go func(down net.Conn) {
				defer down.Close()
				up, err := net.Dial("tcp", echoLn.Addr().String())
				if err != nil {
					return
				}
				defer up.Close()
				_, _ = Bidirectional(context.Background(), down, up, Options{
					BufferBytes: 256 << 10,
				})
			}(down)
		}
	}()

	const total = 1 << 20
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	drain := make([]byte, 64<<10)

	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", spliceLn.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		var sent, rcvd int
		done := make(chan error, 1)
		go func() {
			for rcvd < total {
				n, err := conn.Read(drain)
				rcvd += n
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			if _, err := conn.Write(payload[:n]); err != nil {
				b.Fatal(err)
			}
			sent += n
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		_ = conn.Close()
	}
}
