package cronets_test

// Flow-tracing end-to-end test — the acceptance scenario for
// internal/flowtrace: a traced flow through gateway -> netem -> relay ->
// measure server must yield one assembled trace on /debug/traces whose
// span tree has the hops in order (gateway.flow at the root, gateway.dial
// under it, chain.hop — the unified dial seam records one per overlay
// hop, even at depth 1 — under the dial, and the netem.shape /
// relay.dial / relay.splice hop spans parented under chain.hop via the
// CONNECT-preamble context), with a first-byte latency shorter than the
// flow's total duration, plus a flow-trace completion event on
// /debug/events.

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

func TestFlowTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tracing e2e is skipped in -short mode")
	}
	reg := obs.NewRegistry()
	// One shared tracer stands in for each node's ring so the whole span
	// tree is assembled in one place.
	tracer := flowtrace.New(flowtrace.Config{Node: "e2e", SampleRate: 1, Obs: reg})

	// Destination: a measure server.
	destLn := mustListenCP(t)
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	// Relay in CONNECT mode, reached through a netem link (2 ms one-way)
	// that transparently sniffs the passing CONNECT preamble.
	relayLn := mustListenCP(t)
	rl := relay.New(relayLn, relay.Config{Obs: reg, Tracer: tracer})
	go rl.Serve() //nolint:errcheck
	defer rl.Close()

	linkLn := mustListenCP(t)
	link := netem.New(linkLn, relayLn.Addr().String(), netem.Config{
		Up:     netem.Impairment{Latency: 2 * time.Millisecond},
		Down:   netem.Impairment{Latency: 2 * time.Millisecond},
		Obs:    reg,
		Tracer: tracer,
	})
	go link.Serve() //nolint:errcheck
	defer link.Close()

	// An unstarted monitor pinned to the netem-fronted relay path makes
	// the gateway's choice deterministic: every flow rides
	// gateway -> netem -> relay -> dest.
	mon, err := pathmon.New(pathmon.Config{Dest: destAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Pin(pathmon.MakeRoute(link.Addr().String()))

	gw, err := gateway.New(gateway.Config{
		Dest:    destAddr,
		Monitor: mon,
		Obs:     reg,
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwLn := mustListenCP(t)
	go gw.Serve(gwLn) //nolint:errcheck

	// One client flow: a couple of RTT probes, then close.
	conn, err := net.Dial("tcp", gwLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := measure.ProbeRTT(conn, 2); err != nil {
		t.Fatalf("probe through traced path: %v", err)
	}
	_ = conn.Close()

	// The root span ends when the gateway's splice drains; the hop spans
	// end as their own splices notice the teardown.
	waitFor(t, 10*time.Second, "assembled trace with every hop span", func() bool {
		for _, tr := range tracer.Traces() {
			if tr.Root == "gateway.flow" && len(tr.Spans) >= 6 {
				return true
			}
		}
		return false
	})

	var trace flowtrace.Trace
	for _, tr := range tracer.Traces() {
		if tr.Root == "gateway.flow" {
			trace = tr
			break
		}
	}

	byName := make(map[string]flowtrace.SpanRecord)
	for _, s := range trace.Spans {
		byName[s.Name] = s
	}
	for _, name := range []string{"gateway.flow", "gateway.dial", "chain.hop", "netem.shape", "relay.dial", "relay.splice"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace is missing span %q; have %+v", name, trace.Spans)
		}
	}

	// Parentage: the dial under the root, the per-hop CONNECT span under
	// the dial, every remote hop under chain.hop (its context rode the
	// CONNECT preamble).
	flow, dial, hopSpan := byName["gateway.flow"], byName["gateway.dial"], byName["chain.hop"]
	if flow.ParentID != "" {
		t.Errorf("gateway.flow has parent %s, want root", flow.ParentID)
	}
	if dial.ParentID != flow.SpanID {
		t.Errorf("gateway.dial parent = %s, want gateway.flow (%s)", dial.ParentID, flow.SpanID)
	}
	if hopSpan.ParentID != dial.SpanID {
		t.Errorf("chain.hop parent = %s, want gateway.dial (%s)", hopSpan.ParentID, dial.SpanID)
	}
	for _, hop := range []string{"netem.shape", "relay.dial", "relay.splice"} {
		if got := byName[hop].ParentID; got != hopSpan.SpanID {
			t.Errorf("%s parent = %s, want chain.hop (%s)", hop, got, hopSpan.SpanID)
		}
	}

	// Hop order by start time: the flow opens first, then the dial and its
	// per-hop CONNECT; the netem link sees the CONNECT preamble before the
	// relay dials out.
	order := []string{"gateway.flow", "gateway.dial", "chain.hop", "netem.shape", "relay.dial"}
	for i := 1; i < len(order); i++ {
		prev, cur := byName[order[i-1]], byName[order[i]]
		if cur.Start.Before(prev.Start) {
			t.Errorf("%s started %v before %s", order[i], prev.Start.Sub(cur.Start), order[i-1])
		}
	}

	// First-byte latency: recorded on the root, positive, and shorter
	// than the whole flow.
	if flow.FirstByteMS <= 0 {
		t.Errorf("gateway.flow first byte = %vms, want > 0", flow.FirstByteMS)
	}
	if flow.FirstByteMS >= flow.DurationMS {
		t.Errorf("first byte %vms >= total %vms", flow.FirstByteMS, flow.DurationMS)
	}
	if flow.Bytes <= 0 {
		t.Errorf("gateway.flow bytes = %d, want > 0", flow.Bytes)
	}

	// The /debug/traces surface: the ?trace= filter isolates the flow, a
	// bogus ID and an absurd min_dur return empty arrays.
	tracesSrv := httptest.NewServer(tracer.Handler())
	defer tracesSrv.Close()
	var got []flowtrace.Trace
	if err := json.Unmarshal([]byte(scrape(t, tracesSrv, "/?trace="+trace.TraceID)), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TraceID != trace.TraceID {
		t.Fatalf("?trace= returned %d traces", len(got))
	}
	if err := json.Unmarshal([]byte(scrape(t, tracesSrv, "/?trace="+strings.Repeat("0", 32))), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("bogus trace ID returned %d traces", len(got))
	}
	if err := json.Unmarshal([]byte(scrape(t, tracesSrv, "/?min_dur=1h")), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("min_dur=1h returned %d traces", len(got))
	}

	// The completion event is on /debug/events, filterable by type.
	eventsSrv := httptest.NewServer(reg.EventsHandler())
	defer eventsSrv.Close()
	events := scrape(t, eventsSrv, "/?type=flow-trace")
	if !strings.Contains(events, trace.TraceID) {
		t.Errorf("/debug/events?type=flow-trace lacks trace %s:\n%s", trace.TraceID, events)
	}
}
