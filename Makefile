# CRONets reproduction — build/test gates.
#
#   make build   compile everything
#   make test    tier-1 gate: go build ./... && go test ./...
#   make race    race-detector pass over the full tree
#   make vet     static checks
#   make check   all of the above

GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet test race
