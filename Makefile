# CRONets reproduction — build/test gates.
#
#   make build        compile everything
#   make test         tier-1 gate: go build ./... && go test ./...
#   make test-short   fast inner-loop gate: go test -short ./... (skips
#                     the slow netem e2es in the repo root — control
#                     plane, warm pool, chains, tracing, failover, and
#                     objective routing — plus the experiment suite)
#   make race         race-detector pass over the full tree
#   make vet          static checks
#   make lint         go vet plus staticcheck/golangci-lint when installed
#   make fmt          gofmt diff gate (fails if any file needs formatting)
#   make check        all of the above
#   make bench        data-plane benchmarks (pipe, relay, multipath, gateway
#                     dial, chain dial)
#   make trace-smoke  flow-tracing gate: the tracing e2e under -race plus
#                     the unsampled-path zero-allocation check
#   make bench-smoke  chain gate: the chain failover e2e under -race plus
#                     the established-chain zero-allocation check

GO ?= go

.PHONY: build test test-short race vet lint fmt check bench trace-smoke bench-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Lint gate: go vet always runs; staticcheck and golangci-lint run when
# present on PATH (offline environments without them still pass).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v golangci-lint >/dev/null 2>&1; then \
		echo "golangci-lint run"; golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping"; \
	fi

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

check: fmt vet test race

bench:
	$(GO) test -run=NONE -bench='PipeBidirectional|RelayThroughput|MultipathReceive|GatewayDial|ChainDial|ProbeRound' -benchmem ./...

# The alloc gate runs without -race (the race runtime adds allocations of
# its own); the e2e runs with it.
trace-smoke:
	$(GO) test -race -run TestFlowTraceEndToEnd .
	$(GO) test -run TestUnsampledPathAllocs ./internal/flowtrace/

# Fails if chain dial allocates on the established-flow splice path: once
# the hop-by-hop preamble completes, a chained flow must be the same
# zero-alloc forwarding as a single hop.
bench-smoke:
	$(GO) test -race -run TestChainFailoverEndToEnd .
	$(GO) test -run TestChainSpliceAllocs ./internal/chain/
