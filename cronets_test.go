package cronets_test

import (
	"math/rand"
	"testing"
	"time"

	"cronets"
)

// TestFacadeEndToEnd drives the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	topo := cronets.DefaultTopology(42)
	topo.ClientStubs = 6
	topo.ServerStubs = 2
	in, err := cronets.GenerateInternet(topo)
	if err != nil {
		t.Fatal(err)
	}
	cn := cronets.New(in, cronets.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	pr, err := cn.MeasurePair(rng, in.Servers[0], in.Clients[0], cn.DCCities(),
		cronets.Spec{Duration: 10 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Direct.ThroughputMbps <= 0 {
		t.Error("no direct throughput")
	}
	if _, ok := pr.BestOverlay(cronets.SplitOverlay); !ok {
		t.Error("no split overlay measurement")
	}
	res, err := cronets.MeasureMPTCP(cn, rng, in.Servers[0], in.Clients[0], cn.DCCities(),
		cronets.Spec{Duration: 10 * time.Second}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps <= 0 {
		t.Error("no MPTCP throughput")
	}
}

func TestFacadeConstantsMatch(t *testing.T) {
	if cronets.Direct.String() != "direct" || cronets.SplitOverlay.String() != "split-overlay" {
		t.Error("path-kind re-exports broken")
	}
	if cronets.OLIA.String() != "olia" || cronets.Uncoupled.String() != "uncoupled" {
		t.Error("coupling re-exports broken")
	}
}
