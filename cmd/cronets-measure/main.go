// Command cronets-measure is an iperf-style measurement tool for the
// real-socket overlay stack: run a server at one site, then measure
// throughput and RTT from another — directly, or through a cronetsd relay
// to compare the direct and overlay paths.
//
// Usage:
//
//	cronets-measure server -listen :9100
//	cronets-measure client -connect host:9100 [-duration 10s]
//	cronets-measure client -connect host:9100 -relay relayhost:9000
//	cronets-measure rtt    -connect host:9100 [-relay relayhost:9000] [-count 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"cronets/internal/measure"
	"cronets/internal/relay"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "server":
		err = runServer(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "rtt":
		err = runRTT(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronets-measure:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cronets-measure server -listen ADDR
  cronets-measure client -connect ADDR [-relay ADDR] [-duration D]
  cronets-measure rtt    -connect ADDR [-relay ADDR] [-count N]`)
}

func runServer(args []string) error {
	fs := flag.NewFlagSet("server", flag.ExitOnError)
	listen := fs.String("listen", ":9100", "address to listen on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	srv := measure.NewServer(ln)
	log.Printf("measurement server on %s", srv.Addr())
	return srv.Serve()
}

func dialMaybeRelay(connect, relayAddr string, timeout time.Duration) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if relayAddr == "" {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", connect)
	}
	return relay.DialVia(ctx, nil, relayAddr, connect)
}

func runClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	connect := fs.String("connect", "", "measurement server address")
	relayAddr := fs.String("relay", "", "optional cronetsd relay to go through")
	duration := fs.Duration("duration", 10*time.Second, "measurement duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	conn, err := dialMaybeRelay(*connect, *relayAddr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := measure.SinkClient(conn); err != nil {
		return err
	}
	res, err := measure.Throughput(conn, *duration, 0)
	if err != nil {
		return err
	}
	via := "direct"
	if *relayAddr != "" {
		via = "via relay " + *relayAddr
	}
	fmt.Printf("%s: %.2f Mbps (%d bytes in %v)\n", via, res.Mbps, res.Bytes, res.Elapsed.Round(time.Millisecond))
	return nil
}

func runRTT(args []string) error {
	fs := flag.NewFlagSet("rtt", flag.ExitOnError)
	connect := fs.String("connect", "", "measurement server address")
	relayAddr := fs.String("relay", "", "optional cronetsd relay to go through")
	count := fs.Int("count", 10, "number of probes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	conn, err := dialMaybeRelay(*connect, *relayAddr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	stats, err := measure.ProbeRTT(conn, *count)
	if err != nil {
		return err
	}
	fmt.Printf("rtt min/avg/max = %v / %v / %v over %d probes\n",
		stats.Min.Round(time.Microsecond), stats.Avg.Round(time.Microsecond),
		stats.Max.Round(time.Microsecond), stats.Samples)
	return nil
}
