// Command cronets-measure is an iperf-style measurement tool for the
// real-socket overlay stack: run a server at one site, then measure
// throughput and RTT from another — directly, or through a cronetsd relay
// to compare the direct and overlay paths.
//
// Usage:
//
//	cronets-measure server -listen :9100
//	cronets-measure client -connect host:9100 [-duration 10s]
//	cronets-measure client -connect host:9100 -relay relayhost:9000
//	cronets-measure rtt    -connect host:9100 [-relay relayhost:9000] [-count 10]
//	cronets-measure trace  -connect host:9100 -relay relayhost:9000 \
//	    [-traces-url http://relayhost:9090/debug/traces] [-count 5]
//
// The trace subcommand (the "cronets-trace" inspection mode) runs one
// traced probe flow and prints a hop-by-hop latency waterfall. With
// -traces-url pointing at a cronetsd /debug/traces endpoint, the relay's
// server-side spans are fetched and merged into the waterfall.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/measure"
	"cronets/internal/relay"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "server":
		err = runServer(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "rtt":
		err = runRTT(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronets-measure:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cronets-measure server -listen ADDR
  cronets-measure client -connect ADDR [-relay ADDR] [-duration D]
  cronets-measure rtt    -connect ADDR [-relay ADDR] [-count N]
  cronets-measure trace  -connect ADDR [-relay ADDR] [-traces-url URL] [-count N]`)
}

func runServer(args []string) error {
	fs := flag.NewFlagSet("server", flag.ExitOnError)
	listen := fs.String("listen", ":9100", "address to listen on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	srv := measure.NewServer(ln)
	log.Printf("measurement server on %s", srv.Addr())
	return srv.Serve()
}

func dialMaybeRelay(ctx context.Context, connect, relayAddr string, timeout time.Duration) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if relayAddr == "" {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", connect)
	}
	return relay.DialVia(ctx, nil, relayAddr, connect)
}

func runClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	connect := fs.String("connect", "", "measurement server address")
	relayAddr := fs.String("relay", "", "optional cronetsd relay to go through")
	duration := fs.Duration("duration", 10*time.Second, "measurement duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	conn, err := dialMaybeRelay(context.Background(), *connect, *relayAddr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := measure.SinkClient(conn); err != nil {
		return err
	}
	res, err := measure.Throughput(conn, *duration, 0)
	if err != nil {
		return err
	}
	via := "direct"
	if *relayAddr != "" {
		via = "via relay " + *relayAddr
	}
	fmt.Printf("%s: %.2f Mbps (%d bytes in %v)\n", via, res.Mbps, res.Bytes, res.Elapsed.Round(time.Millisecond))
	return nil
}

func runRTT(args []string) error {
	fs := flag.NewFlagSet("rtt", flag.ExitOnError)
	connect := fs.String("connect", "", "measurement server address")
	relayAddr := fs.String("relay", "", "optional cronetsd relay to go through")
	count := fs.Int("count", 10, "number of probes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	conn, err := dialMaybeRelay(context.Background(), *connect, *relayAddr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	stats, err := measure.ProbeRTT(conn, *count)
	if err != nil {
		return err
	}
	fmt.Printf("rtt min/avg/max = %v / %v / %v over %d probes\n",
		stats.Min.Round(time.Microsecond), stats.Avg.Round(time.Microsecond),
		stats.Max.Round(time.Microsecond), stats.Samples)
	return nil
}

// runTrace is the cronets-trace inspection mode: one traced probe flow,
// then a hop-by-hop latency waterfall assembled from the client's local
// spans plus, with -traces-url, the server-side spans published on a
// cronetsd /debug/traces endpoint.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	connect := fs.String("connect", "", "measurement server address")
	relayAddr := fs.String("relay", "", "optional cronetsd relay to go through")
	tracesURL := fs.String("traces-url", "", "cronetsd /debug/traces endpoint to merge server-side spans from")
	count := fs.Int("count", 5, "number of RTT probes inside the traced flow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}

	tracer := flowtrace.New(flowtrace.Config{Node: "client", SampleRate: 1})
	flow := tracer.Start("client.flow", flowtrace.Context{})
	ctx := flowtrace.NewGoContext(context.Background(), flow.Context())

	dial := tracer.Start("client.dial", flow.Context())
	conn, err := dialMaybeRelay(flowtrace.NewGoContext(ctx, dial.Context()), *connect, *relayAddr, 10*time.Second)
	if err != nil {
		dial.SetDetail("fail " + *connect)
		dial.End()
		flow.End()
		return err
	}
	via := "direct"
	if *relayAddr != "" {
		via = "via relay " + *relayAddr
	}
	dial.SetDetail(via)
	dial.End()
	defer conn.Close()

	probe := tracer.Start("client.probe", flow.Context())
	// A first single probe isolates first-byte latency; the remaining
	// probes measure the steady-state path.
	first, err := measure.ProbeRTT(conn, 1)
	if err != nil {
		probe.End()
		flow.End()
		return err
	}
	probe.MarkFirstByte()
	flow.MarkFirstByte()
	stats := first
	if *count > 1 {
		stats, err = measure.ProbeRTT(conn, *count-1)
		if err != nil {
			probe.End()
			flow.End()
			return err
		}
	}
	probe.SetDetail(fmt.Sprintf("%d probes, avg %v", *count, stats.Avg.Round(time.Microsecond)))
	probe.End()
	flow.End()
	// Close before fetching remote spans: the relay's splice span only
	// ends once the connection tears down.
	_ = conn.Close()

	traceID := flow.Context().Trace.String()
	spans := localSpans(tracer, traceID)
	if *tracesURL != "" {
		time.Sleep(200 * time.Millisecond) // let hop spans drain into the remote ring
		remote, err := fetchRemoteSpans(*tracesURL, traceID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cronets-measure: fetch %s: %v\n", *tracesURL, err)
		} else {
			spans = append(spans, remote...)
		}
	}
	fmt.Printf("trace %s (%s): first byte %v, probe avg %v\n", traceID, via,
		first.Min.Round(time.Microsecond), stats.Avg.Round(time.Microsecond))
	printWaterfall(os.Stdout, spans)
	return nil
}

// localSpans converts the client tracer's assembled trace into records.
func localSpans(tracer *flowtrace.Tracer, traceID string) []flowtrace.SpanRecord {
	for _, tr := range tracer.Traces() {
		if tr.TraceID == traceID {
			return tr.Spans
		}
	}
	return nil
}

// fetchRemoteSpans pulls one trace's spans from a /debug/traces endpoint.
func fetchRemoteSpans(tracesURL, traceID string) ([]flowtrace.SpanRecord, error) {
	sep := "?"
	if strings.Contains(tracesURL, "?") {
		sep = "&"
	}
	resp, err := http.Get(tracesURL + sep + "trace=" + traceID)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var traces []flowtrace.Trace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return nil, err
	}
	var spans []flowtrace.SpanRecord
	for _, tr := range traces {
		spans = append(spans, tr.Spans...)
	}
	return spans, nil
}

// printWaterfall renders spans as an indented latency waterfall: offset
// from the trace start, name and node, duration, and per-span byte and
// first-byte annotations. Children indent under their parent.
func printWaterfall(w io.Writer, spans []flowtrace.SpanRecord) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "  (no spans)")
		return
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	depth := make(map[string]int, len(spans))
	parent := make(map[string]string, len(spans))
	for _, s := range spans {
		parent[s.SpanID] = s.ParentID
	}
	var depthOf func(id string) int
	depthOf = func(id string) int {
		if d, ok := depth[id]; ok {
			return d
		}
		depth[id] = 0 // breaks cycles from malformed input
		p := parent[id]
		if p == "" {
			return 0
		}
		d := depthOf(p) + 1
		depth[id] = d
		return d
	}
	start := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
	}
	for _, s := range spans {
		offset := s.Start.Sub(start)
		extras := ""
		if s.Bytes > 0 {
			extras += " " + strconv.FormatInt(s.Bytes, 10) + "B"
		}
		if s.FirstByteMS > 0 {
			extras += fmt.Sprintf(" ttfb=%.3fms", s.FirstByteMS)
		}
		if s.Detail != "" {
			extras += " (" + s.Detail + ")"
		}
		fmt.Fprintf(w, "  %8.3fms %s%s@%s %.3fms%s\n",
			float64(offset)/float64(time.Millisecond),
			strings.Repeat("  ", depthOf(s.SpanID)),
			s.Name, s.Node, s.DurationMS, extras)
	}
}
