// Command cronets-topo inspects the generated Internet topologies the
// experiments run on: AS inventory, link statistics, default and overlay
// routes between named hosts, and traceroutes.
//
// Usage:
//
//	cronets-topo -seed 42 summary
//	cronets-topo -seed 42 hosts
//	cronets-topo -seed 42 route -from server-Toronto-0 -to client-Paris-3
//	cronets-topo -seed 42 overlay -from server-Toronto-0 -to client-Paris-3 -via Amsterdam
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cronets/internal/netsim"
	"cronets/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 42, "topology seed")
	clients := flag.Int("clients", 110, "number of client stubs")
	servers := flag.Int("servers", 10, "number of server stubs")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "summary"
	}
	// Per-command flags follow the command word.
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	from := sub.String("from", "", "source host name (route/overlay)")
	to := sub.String("to", "", "destination host name (route/overlay)")
	via := sub.String("via", "", "overlay DC city (overlay)")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cronets-topo:", err)
		os.Exit(2)
	}
	if err := run(cmd, *seed, *clients, *servers, *from, *to, *via); err != nil {
		fmt.Fprintln(os.Stderr, "cronets-topo:", err)
		os.Exit(1)
	}
}

func run(cmd string, seed int64, clients, servers int, from, to, via string) error {
	cfg := topology.DefaultConfig(seed)
	cfg.ClientStubs = clients
	cfg.ServerStubs = servers
	in, err := topology.Generate(cfg)
	if err != nil {
		return err
	}
	switch cmd {
	case "summary":
		return summary(in)
	case "hosts":
		return hosts(in)
	case "route":
		return route(in, from, to)
	case "overlay":
		return overlay(in, from, to, via)
	default:
		return fmt.Errorf("unknown command %q (summary, hosts, route, overlay)", cmd)
	}
}

func summary(in *topology.Internet) error {
	tiers := map[topology.Tier]int{}
	routers := map[topology.Tier]int{}
	for _, a := range in.ASes {
		tiers[a.Tier]++
		routers[a.Tier] += len(a.Routers)
	}
	fmt.Printf("nodes: %d   links: %d   ASes: %d\n", in.Net.NumNodes(), in.Net.NumLinks(), len(in.ASes))
	for _, t := range []topology.Tier{topology.Tier1, topology.Tier2, topology.TierStub, topology.TierCloud} {
		fmt.Printf("  %-6v ASes: %-4d routers: %d\n", t, tiers[t], routers[t])
	}
	fmt.Printf("data centers: %v\n", in.DCOrder)

	// Link quality distribution.
	var hot, total int
	var lossSum float64
	for _, l := range in.Net.Links() {
		total++
		lossSum += l.BaseLossRate
		if l.UtilizationAt(0) > 0.7 {
			hot++
		}
	}
	fmt.Printf("links above 70%% utilization: %d of %d (%.1f%%); mean base loss %.2g\n",
		hot, total, float64(hot)/float64(total)*100, lossSum/float64(total))
	return nil
}

func hosts(in *topology.Internet) error {
	fmt.Println("servers:")
	for _, h := range in.Servers {
		fmt.Printf("  %-28s AS%-4d %s\n", h.Name, h.ASN, h.Loc)
	}
	fmt.Println("clients:")
	names := make([]string, 0, len(in.Clients))
	byName := make(map[string]topology.Host, len(in.Clients))
	for _, h := range in.Clients {
		names = append(names, h.Name)
		byName[h.Name] = h
	}
	sort.Strings(names)
	for _, n := range names {
		h := byName[n]
		fmt.Printf("  %-28s AS%-4d %s\n", h.Name, h.ASN, h.Loc)
	}
	return nil
}

func findHost(in *topology.Internet, name string) (topology.Host, error) {
	for _, h := range in.Servers {
		if h.Name == name {
			return h, nil
		}
	}
	for _, h := range in.Clients {
		if h.Name == name {
			return h, nil
		}
	}
	for _, h := range in.DCs {
		if h.Name == name {
			return h, nil
		}
	}
	return topology.Host{}, fmt.Errorf("no host %q (see `cronets-topo hosts`)", name)
}

func route(in *topology.Internet, from, to string) error {
	src, err := findHost(in, from)
	if err != nil {
		return err
	}
	dst, err := findHost(in, to)
	if err != nil {
		return err
	}
	p, err := in.RouterPath(src, dst)
	if err != nil {
		return err
	}
	return printPath(in, "default route", p)
}

func overlay(in *topology.Internet, from, to, via string) error {
	if via == "" {
		return fmt.Errorf("-via DC city is required (one of %v)", in.DCOrder)
	}
	src, err := findHost(in, from)
	if err != nil {
		return err
	}
	dst, err := findHost(in, to)
	if err != nil {
		return err
	}
	r, err := in.OverlayRoute(src, dst, via)
	if err != nil {
		return err
	}
	full, err := r.FullPath()
	if err != nil {
		return err
	}
	return printPath(in, "overlay route via "+via, full)
}

func printPath(in *topology.Internet, title string, p netsim.Path) error {
	m, err := in.Net.PathMetrics(p, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d hops, base RTT %v, queueing %v, loss %.2g, available %.0f Mbps\n",
		title, m.Hops, m.BaseRTT.Round(time.Millisecond), m.QueueDelayRTT.Round(time.Millisecond),
		m.LossRate, m.AvailableMbps)
	for i, id := range p.Nodes {
		n := in.Net.MustNode(id)
		line := fmt.Sprintf("  %2d  %-34s", i, n.Name)
		if i > 0 {
			if l, ok := in.Net.Link(p.Nodes[i-1], id); ok {
				line += fmt.Sprintf(" delay=%-8v util=%.2f loss=%.1e",
					l.Delay.Round(100*time.Microsecond), l.UtilizationAt(0), l.LossRateAt(0))
			}
		}
		fmt.Println(line)
	}
	return nil
}
