// Command cronetsd runs a CRONets overlay relay node over real sockets:
// either a fixed-target forwarder (one branch office pinned to another) or
// a CONNECT-mode split-TCP proxy that terminates the client's connection
// and opens its own toward the requested destination.
//
// Usage:
//
//	cronetsd -listen :9000                      # CONNECT-mode split proxy
//	cronetsd -listen :9000 -target 10.0.0.2:443 # fixed-target forwarder
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cronets/internal/relay"
)

func main() {
	var (
		listen  = flag.String("listen", ":9000", "address to listen on")
		target  = flag.String("target", "", "fixed forward target (empty = CONNECT mode)")
		idle    = flag.Duration("idle-timeout", 5*time.Minute, "idle connection timeout")
		maxConn = flag.Int("max-conns", 1024, "maximum concurrent relayed connections")
		bufKB   = flag.Int("buffer-kb", 256, "relay buffer per direction in KiB")
		allow   = flag.String("allow", "", "comma-separated CIDRs CONNECT targets must fall in (empty = open relay)")
	)
	flag.Parse()
	if err := run(*listen, *target, *idle, *maxConn, *bufKB, *allow); err != nil {
		fmt.Fprintln(os.Stderr, "cronetsd:", err)
		os.Exit(1)
	}
}

func run(listen, target string, idle time.Duration, maxConn, bufKB int, allow string) error {
	var acl *relay.ACL
	if allow != "" {
		var err error
		acl, err = relay.NewACL(strings.Split(allow, ","), nil)
		if err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", listen, err)
	}
	r := relay.New(ln, relay.Config{
		Target:      target,
		IdleTimeout: idle,
		MaxConns:    maxConn,
		BufferBytes: bufKB << 10,
		ACL:         acl,
	})
	mode := "split proxy (CONNECT mode)"
	if target != "" {
		mode = "forwarder -> " + target
	}
	log.Printf("cronetsd listening on %s as %s", r.Addr(), mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.Serve() }()

	select {
	case <-sig:
		log.Printf("cronetsd shutting down: accepted=%d relayed up/down = %d/%d bytes",
			r.Stats().Accepted.Load(), r.Stats().BytesUp.Load(), r.Stats().BytesDown.Load())
		return r.Close()
	case err := <-done:
		return err
	}
}
