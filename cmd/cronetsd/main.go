// Command cronetsd runs a CRONets overlay node over real sockets, in one
// of two roles:
//
// Relay (default): either a fixed-target forwarder (one branch office
// pinned to another) or a CONNECT-mode split-TCP proxy that terminates
// the client's connection and opens its own toward the requested
// destination.
//
// Gateway (-gateway-addr): the client-side control plane. A pathmon
// monitor continuously probes the direct path and every relay in -fleet
// toward -target, and the gateway listener fronts -target, steering each
// new connection onto the current best path (direct or via the best
// relay) with fallback to the next-ranked path on dial failure. The
// ranking objective is pluggable (-objective latency|throughput|composite;
// the throughput axis is fed by -burst-duration bursts on a -burst-every
// cadence), matching CRONets' bulk-transfer-first path selection.
//
// Usage:
//
//	cronetsd -listen :9000                      # CONNECT-mode split proxy
//	cronetsd -listen :9000 -target 10.0.0.2:443 # fixed-target forwarder
//	cronetsd -listen :9000 -metrics-addr :9090  # + observability endpoints
//	cronetsd -gateway-addr :8080 -target dst:7 -fleet r1:9000,r2:9000 \
//	    -probe-interval 5s                      # client gateway
//
// With -metrics-addr set, the node serves /metrics (Prometheus text),
// /metrics.json (JSON snapshot), /debug/vars (expvar JSON including the
// registry under "cronets"), /debug/events (flow-event ring),
// /debug/traces (assembled flow traces when -trace-sample-rate > 0),
// /debug/pprof/* (runtime profiles), and /healthz. Runtime telemetry
// (goroutines, heap, GC pauses) is sampled every 10 s into the
// cronets_runtime_* series.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/gateway"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/pipe"
	"cronets/internal/relay"
)

// options collects every flag; one struct instead of a dozen positional
// parameters.
type options struct {
	listen      string
	target      string
	idle        time.Duration
	maxConn     int
	bufKB       int
	allow       string
	metricsAddr string
	statsEvery  time.Duration
	dialRetries int
	dialBackoff time.Duration
	traceRate   float64

	// Gateway-mode flags.
	gatewayAddr   string
	fleet         string
	probeInterval time.Duration
	probeTarget   string
	objective     string
	burstDuration time.Duration
	burstEvery    int
	switchMargin  float64
	switchRounds  int
	poolSize      int
	poolIdleTTL   time.Duration
	poolRelays    int
	maxHops       int
	chainCands    int
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", ":9000", "relay address to listen on")
	flag.StringVar(&o.target, "target", "", "fixed forward target (relay: empty = CONNECT mode; gateway: the fronted destination, required)")
	flag.DurationVar(&o.idle, "idle-timeout", 5*time.Minute, "idle connection timeout")
	flag.IntVar(&o.maxConn, "max-conns", 1024, "maximum concurrent relayed connections")
	flag.IntVar(&o.bufKB, "buffer-kb", 256, "relay buffer per direction in KiB")
	flag.StringVar(&o.allow, "allow", "", "comma-separated CIDRs CONNECT targets must fall in (empty = open relay)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars, /healthz on this address (empty = disabled)")
	flag.DurationVar(&o.statsEvery, "stats-interval", 30*time.Second, "period of the stats summary log line (0 = disabled)")
	flag.IntVar(&o.dialRetries, "dial-retries", 2, "upstream dial retries on transient errors (refused/timeout)")
	flag.DurationVar(&o.dialBackoff, "dial-retry-backoff", 50*time.Millisecond, "initial backoff between upstream dial retries (doubles per attempt)")
	flag.Float64Var(&o.traceRate, "trace-sample-rate", 0, "fraction of flows to trace through internal/flowtrace (0 = tracing off, 1 = every flow)")
	flag.StringVar(&o.gatewayAddr, "gateway-addr", "", "run as a client gateway listening on this address (empty = relay mode)")
	flag.StringVar(&o.fleet, "fleet", "", "comma-separated relay CONNECT endpoints the gateway's monitor probes")
	flag.DurationVar(&o.probeInterval, "probe-interval", 5*time.Second, "gateway path-probe round period")
	flag.StringVar(&o.probeTarget, "probe-target", "", "destination probe endpoint, a measure server (default: -target)")
	flag.StringVar(&o.objective, "objective", "latency", "route-ranking objective: latency, throughput, or composite (throughput/composite need -burst-duration > 0)")
	flag.DurationVar(&o.burstDuration, "burst-duration", 0, "throughput-burst measurement window per route (0 = bursts off)")
	flag.IntVar(&o.burstEvery, "burst-every", 1, "rounds between one route's throughput bursts")
	flag.Float64Var(&o.switchMargin, "switch-margin", 0.1, "fraction a challenger path must beat the incumbent by")
	flag.IntVar(&o.switchRounds, "switch-rounds", 3, "consecutive qualifying rounds before a path switch")
	flag.IntVar(&o.poolSize, "pool-size", 0, "pre-warmed relay connections per relay the gateway keeps (0 = pooling off)")
	flag.DurationVar(&o.poolIdleTTL, "pool-idle-ttl", time.Minute, "retire warm relay connections idle longer than this")
	flag.IntVar(&o.poolRelays, "pool-relays", 2, "number of top-ranked relays the gateway keeps warm")
	flag.IntVar(&o.maxHops, "max-hops", 1, "maximum relay hops per overlay route (values >= 2 enumerate multi-hop chain candidates up to that depth)")
	flag.IntVar(&o.chainCands, "chain-candidates", 3, "top-ranked single-hop relays combined into chain candidates when -max-hops > 1")
	flag.Parse()

	var err error
	if o.gatewayAddr != "" {
		err = runGateway(o)
	} else {
		err = runRelay(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronetsd:", err)
		os.Exit(1)
	}
}

func runRelay(o options) error {
	var acl *relay.ACL
	if o.allow != "" {
		var err error
		acl, err = relay.NewACL(strings.Split(o.allow, ","), nil)
		if err != nil {
			return err
		}
	}
	reg := obs.NewRegistry()
	pipe.InstrumentPool(reg)
	tracer := newTracer(o, "relay", reg)
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", o.listen, err)
	}
	r := relay.New(ln, relay.Config{
		Target:      o.target,
		IdleTimeout: o.idle,
		MaxConns:    o.maxConn,
		BufferBytes: o.bufKB << 10,
		ACL:         acl,
		Obs:         reg,
		Tracer:      tracer,

		DialRetries:      o.dialRetries,
		DialRetryBackoff: o.dialBackoff,
	})
	mode := "split proxy (CONNECT mode)"
	if o.target != "" {
		mode = "forwarder -> " + o.target
	}
	slog.Info("cronetsd listening", "addr", r.Addr().String(), "mode", mode)

	if o.metricsAddr != "" {
		msrv, err := serveMetrics(o.metricsAddr, reg, tracer, nil)
		if err != nil {
			_ = r.Close()
			return err
		}
		defer msrv.Close()
		slog.Info("metrics listening", "addr", msrv.addr,
			"endpoints", "/metrics /metrics.json /debug/vars /debug/events /debug/traces /debug/pprof /healthz")
	}

	stopSummary := make(chan struct{})
	if o.statsEvery > 0 {
		go func() {
			t := time.NewTicker(o.statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logRelayStats(r, "stats")
				case <-stopSummary:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.Serve() }()

	select {
	case s := <-sig:
		close(stopSummary)
		slog.Info("cronetsd shutting down", "signal", s.String())
		logRelayStats(r, "final stats")
		return r.Close()
	case err := <-done:
		close(stopSummary)
		return err
	}
}

// runGateway runs the client-side control plane: pathmon probing the
// fleet plus a gateway listener fronting the destination.
func runGateway(o options) error {
	if o.target == "" {
		return fmt.Errorf("gateway mode requires -target (the fronted destination)")
	}
	probeTarget := o.probeTarget
	if probeTarget == "" {
		probeTarget = o.target
	}
	var fleet []string
	if o.fleet != "" {
		for _, f := range strings.Split(o.fleet, ",") {
			if f = strings.TrimSpace(f); f != "" {
				fleet = append(fleet, f)
			}
		}
	}
	objective, err := pathmon.ParseObjective(o.objective)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	pipe.InstrumentPool(reg)
	tracer := newTracer(o, "gateway", reg)

	mon, err := pathmon.New(pathmon.Config{
		Dest:            probeTarget,
		Fleet:           fleet,
		Interval:        o.probeInterval,
		Objective:       objective,
		BurstDuration:   o.burstDuration,
		BurstEvery:      o.burstEvery,
		SwitchMargin:    o.switchMargin,
		SwitchRounds:    o.switchRounds,
		MaxHops:         o.maxHops,
		ChainCandidates: o.chainCands,
		Obs:             reg,
	})
	if err != nil {
		return err
	}
	defer mon.Close()
	mon.Start()

	gw, err := gateway.New(gateway.Config{
		Dest:        o.target,
		Monitor:     mon,
		IdleTimeout: o.idle,
		BufferBytes: o.bufKB << 10,
		Obs:         reg,
		Tracer:      tracer,
		PoolSize:    o.poolSize,
		PoolIdleTTL: o.poolIdleTTL,
		PoolRelays:  o.poolRelays,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.gatewayAddr)
	if err != nil {
		return fmt.Errorf("gateway listen %s: %w", o.gatewayAddr, err)
	}
	slog.Info("cronetsd gateway listening", "addr", ln.Addr().String(),
		"dest", o.target, "probe_target", probeTarget,
		"fleet", strings.Join(fleet, ","), "probe_interval", o.probeInterval.String(),
		"objective", objective.String())

	if o.metricsAddr != "" {
		msrv, err := serveMetrics(o.metricsAddr, reg, tracer, mon)
		if err != nil {
			_ = gw.Close()
			_ = ln.Close()
			return err
		}
		defer msrv.Close()
		slog.Info("metrics listening", "addr", msrv.addr,
			"endpoints", "/metrics /metrics.json /debug/vars /debug/events /debug/traces /debug/paths /debug/pprof /healthz")
	}

	stopSummary := make(chan struct{})
	if o.statsEvery > 0 {
		go func() {
			t := time.NewTicker(o.statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logGatewayStats(gw, mon, "stats")
				case <-stopSummary:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- gw.Serve(ln) }()

	select {
	case s := <-sig:
		close(stopSummary)
		slog.Info("cronetsd shutting down", "signal", s.String())
		logGatewayStats(gw, mon, "final stats")
		return gw.Close()
	case err := <-done:
		close(stopSummary)
		return err
	}
}

// logRelayStats emits one slog summary line from the relay's counters.
func logRelayStats(r *relay.Relay, msg string) {
	st := r.Stats()
	slog.Info(msg,
		"accepted", st.Accepted.Load(),
		"active", st.Active.Load(),
		"bytes_up", st.BytesUp.Load(),
		"bytes_down", st.BytesDown.Load(),
		"errors", st.Errors.Load(),
		"rejected", st.Rejected.Load(),
		"overloaded", st.Overloaded.Load(),
		"dial_retries", st.DialRetries.Load(),
	)
}

// logGatewayStats emits one slog summary line from the gateway's counters
// plus the current best path.
func logGatewayStats(gw *gateway.Gateway, mon *pathmon.Monitor, msg string) {
	st := gw.Stats()
	best, chosen := mon.Best()
	bestName := "(none)"
	if chosen {
		bestName = best.String()
	}
	slog.Info(msg,
		"best_path", bestName,
		"accepted", st.Accepted.Load(),
		"active", st.Active.Load(),
		"dials_direct", st.DialsDirect.Load(),
		"dials_relay_pooled", st.DialsRelayPooled.Load(),
		"dials_relay_cold", st.DialsRelayCold.Load(),
		"dials_chain", st.DialsChain.Load(),
		"fallbacks", st.Fallbacks.Load(),
		"dial_failures", st.DialFailures.Load(),
		"bytes_up", st.BytesUp.Load(),
		"bytes_down", st.BytesDown.Load(),
	)
}

// newTracer builds the node's flow tracer, or nil when tracing is off
// (every instrumented component treats a nil tracer as a no-op).
func newTracer(o options, node string, reg *obs.Registry) *flowtrace.Tracer {
	if o.traceRate <= 0 {
		return nil
	}
	return flowtrace.New(flowtrace.Config{
		Node:       node,
		SampleRate: o.traceRate,
		Obs:        reg,
	})
}

// metricsServer is the observability HTTP listener.
type metricsServer struct {
	addr        string
	srv         *http.Server
	ln          net.Listener
	stopRuntime func()
}

// serveMetrics starts the observability endpoints on addr: metrics,
// events, flow traces, pprof profiles, and the sampled runtime-stats
// collector behind the cronets_runtime_* series. A non-nil mon
// additionally mounts its ranked path table at /debug/paths (gateway
// mode; relay mode has no monitor and passes nil).
func serveMetrics(addr string, reg *obs.Registry, tracer *flowtrace.Tracer, mon *pathmon.Monitor) (*metricsServer, error) {
	reg.PublishExpvar("cronets")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/events", reg.EventsHandler())
	mux.Handle("/debug/traces", tracer.Handler())
	if mon != nil {
		mux.Handle("/debug/paths", obs.GETOnly(mon.PathsHandler()))
	}
	// The binary never touches http.DefaultServeMux, so the pprof
	// endpoints are mounted explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	m := &metricsServer{
		addr:        ln.Addr().String(),
		srv:         &http.Server{Handler: mux},
		ln:          ln,
		stopRuntime: obs.StartRuntime(reg, 10*time.Second),
	}
	go func() {
		if err := m.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			slog.Error("metrics server failed", "err", err)
		}
	}()
	return m, nil
}

func (m *metricsServer) Close() {
	m.stopRuntime()
	_ = m.srv.Close()
}
