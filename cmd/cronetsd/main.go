// Command cronetsd runs a CRONets overlay relay node over real sockets:
// either a fixed-target forwarder (one branch office pinned to another) or
// a CONNECT-mode split-TCP proxy that terminates the client's connection
// and opens its own toward the requested destination.
//
// Usage:
//
//	cronetsd -listen :9000                      # CONNECT-mode split proxy
//	cronetsd -listen :9000 -target 10.0.0.2:443 # fixed-target forwarder
//	cronetsd -listen :9000 -metrics-addr :9090  # + observability endpoints
//
// With -metrics-addr set, the node serves /metrics (Prometheus text),
// /metrics.json (JSON snapshot), /debug/vars (expvar JSON including the
// registry under "cronets"), /debug/events (flow-event ring), and
// /healthz.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cronets/internal/obs"
	"cronets/internal/relay"
)

func main() {
	var (
		listen      = flag.String("listen", ":9000", "address to listen on")
		target      = flag.String("target", "", "fixed forward target (empty = CONNECT mode)")
		idle        = flag.Duration("idle-timeout", 5*time.Minute, "idle connection timeout")
		maxConn     = flag.Int("max-conns", 1024, "maximum concurrent relayed connections")
		bufKB       = flag.Int("buffer-kb", 256, "relay buffer per direction in KiB")
		allow       = flag.String("allow", "", "comma-separated CIDRs CONNECT targets must fall in (empty = open relay)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /healthz on this address (empty = disabled)")
		statsEvery  = flag.Duration("stats-interval", 30*time.Second, "period of the stats summary log line (0 = disabled)")
		dialRetries = flag.Int("dial-retries", 2, "upstream dial retries on transient errors (refused/timeout)")
		dialBackoff = flag.Duration("dial-retry-backoff", 50*time.Millisecond, "initial backoff between upstream dial retries (doubles per attempt)")
	)
	flag.Parse()
	if err := run(*listen, *target, *idle, *maxConn, *bufKB, *allow, *metricsAddr, *statsEvery, *dialRetries, *dialBackoff); err != nil {
		fmt.Fprintln(os.Stderr, "cronetsd:", err)
		os.Exit(1)
	}
}

func run(listen, target string, idle time.Duration, maxConn, bufKB int, allow, metricsAddr string, statsEvery time.Duration, dialRetries int, dialBackoff time.Duration) error {
	var acl *relay.ACL
	if allow != "" {
		var err error
		acl, err = relay.NewACL(strings.Split(allow, ","), nil)
		if err != nil {
			return err
		}
	}
	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", listen, err)
	}
	r := relay.New(ln, relay.Config{
		Target:      target,
		IdleTimeout: idle,
		MaxConns:    maxConn,
		BufferBytes: bufKB << 10,
		ACL:         acl,
		Obs:         reg,

		DialRetries:      dialRetries,
		DialRetryBackoff: dialBackoff,
	})
	mode := "split proxy (CONNECT mode)"
	if target != "" {
		mode = "forwarder -> " + target
	}
	slog.Info("cronetsd listening", "addr", r.Addr().String(), "mode", mode)

	if metricsAddr != "" {
		msrv, err := serveMetrics(metricsAddr, reg)
		if err != nil {
			_ = r.Close()
			return err
		}
		defer msrv.Close()
		slog.Info("metrics listening", "addr", msrv.addr,
			"endpoints", "/metrics /metrics.json /debug/vars /debug/events /healthz")
	}

	stopSummary := make(chan struct{})
	if statsEvery > 0 {
		go func() {
			t := time.NewTicker(statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logStats(r, "stats")
				case <-stopSummary:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.Serve() }()

	select {
	case s := <-sig:
		close(stopSummary)
		slog.Info("cronetsd shutting down", "signal", s.String())
		logStats(r, "final stats")
		return r.Close()
	case err := <-done:
		close(stopSummary)
		return err
	}
}

// logStats emits one slog summary line from the relay's counters.
func logStats(r *relay.Relay, msg string) {
	st := r.Stats()
	slog.Info(msg,
		"accepted", st.Accepted.Load(),
		"active", st.Active.Load(),
		"bytes_up", st.BytesUp.Load(),
		"bytes_down", st.BytesDown.Load(),
		"errors", st.Errors.Load(),
		"rejected", st.Rejected.Load(),
		"overloaded", st.Overloaded.Load(),
		"dial_retries", st.DialRetries.Load(),
	)
}

// metricsServer is the observability HTTP listener.
type metricsServer struct {
	addr string
	srv  *http.Server
	ln   net.Listener
}

// serveMetrics starts the observability endpoints on addr.
func serveMetrics(addr string, reg *obs.Registry) (*metricsServer, error) {
	reg.PublishExpvar("cronets")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/events", reg.EventsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	m := &metricsServer{addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() {
		if err := m.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			slog.Error("metrics server failed", "err", err)
		}
	}()
	return m, nil
}

func (m *metricsServer) Close() { _ = m.srv.Close() }
