// Command cronets-bench regenerates every table and figure of the CRONets
// paper on the simulation substrate and prints the measured rows and
// series next to the paper's reported values.
//
// Usage:
//
//	cronets-bench [-seed N] [-scale full|small] [-experiment all|fig2|fig3|
//	    fig4|fig5|fig6|fig7|table1|fig8|fig9|fig10|fig11|c45|fig12|fig13]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cronets/internal/experiments"
	"cronets/internal/stats"
)

func main() {
	var (
		seed  = flag.Int64("seed", 42, "experiment seed")
		scale = flag.String("scale", "full", "workload scale: full or small")
		exp   = flag.String("experiment", "all",
			"experiment to run (all, fig2..fig13, table1, c45, multihop, placement, cost, highbw)")
	)
	flag.Parse()
	if err := run(*seed, *scale, strings.ToLower(*exp)); err != nil {
		fmt.Fprintln(os.Stderr, "cronets-bench:", err)
		os.Exit(1)
	}
}

func run(seed int64, scaleName, exp string) error {
	scale := experiments.ScaleFull
	if scaleName == "small" {
		scale = experiments.ScaleSmall
	} else if scaleName != "full" {
		return fmt.Errorf("unknown scale %q", scaleName)
	}

	want := func(names ...string) bool {
		if exp == "all" {
			return true
		}
		for _, n := range names {
			if exp == n {
				return true
			}
		}
		return false
	}

	var (
		suite      *experiments.Suite
		controlled *experiments.PrevalenceResult
	)
	getSuite := func() (*experiments.Suite, error) {
		if suite == nil {
			s, err := experiments.NewSuite(seed, scale)
			if err != nil {
				return nil, err
			}
			suite = s
		}
		return suite, nil
	}
	getControlled := func() (*experiments.Suite, *experiments.PrevalenceResult, error) {
		s, err := getSuite()
		if err != nil {
			return nil, nil, err
		}
		if controlled == nil {
			res, err := s.RunControlled()
			if err != nil {
				return nil, nil, err
			}
			controlled = &res
		}
		return s, controlled, nil
	}

	if want("fig2") {
		s, err := getSuite()
		if err != nil {
			return err
		}
		if err := printFig2(s); err != nil {
			return err
		}
	}
	if want("fig3", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "c45", "fig6", "fig7", "table1",
		"multihop", "placement", "cost") {
		s, res, err := getControlled()
		if err != nil {
			return err
		}
		if want("fig3") {
			printFig3(*res)
		}
		if want("fig4") {
			printFig4(*res)
		}
		if want("fig5") {
			printFig5(*res)
		}
		if want("fig8") {
			printFig8(s, *res)
		}
		if want("fig9") {
			printFig9(*res)
		}
		if want("fig10") {
			printFig10(*res)
		}
		if want("fig11") {
			printFig11(*res)
		}
		if want("c45") {
			if err := printC45(*res); err != nil {
				return err
			}
		}
		if want("multihop") {
			n := 20
			if scale == experiments.ScaleSmall {
				n = 6
			}
			mh, err := s.RunMultiHop(*res, n)
			if err != nil {
				return err
			}
			printMultiHop(mh)
		}
		if want("placement") {
			pl, err := experiments.RunPlacement(*res, 0)
			if err != nil {
				return err
			}
			printPlacement(pl)
		}
		if want("cost") {
			rows, err := experiments.CostTable(*res)
			if err != nil {
				return err
			}
			printCost(rows)
		}
		if want("fig6", "fig7", "table1") {
			cfg := experiments.DefaultLongitudinalConfig()
			if scale == experiments.ScaleSmall {
				cfg.TopPaths = 8
				cfg.Samples = 10
			}
			long, err := s.RunLongitudinal(*res, cfg)
			if err != nil {
				return err
			}
			if want("fig6") {
				printFig6(long)
			}
			if want("fig7") {
				printFig7(long)
			}
			if want("table1") {
				printTable1(long)
			}
		}
	}
	if want("highbw") {
		res, err := experiments.RunHighBandwidth(seed, scale)
		if err != nil {
			return err
		}
		header("Section VII-C — overlay nodes with 1 Gbps NICs")
		fmt.Printf("  split overlay, 100 Mbps NICs: %v\n", res.Split100)
		fmt.Printf("  split overlay,   1 Gbps NICs: %v\n", res.Split1000)
		fmt.Println("  (paper: CRONets often saturated the 100 Mbps port; faster ports lift the cap)")
		fmt.Println()
	}
	if want("fig12", "fig13") {
		ms, err := experiments.NewMPTCPSuite(seed, scale)
		if err != nil {
			return err
		}
		if want("fig12") {
			res, err := ms.RunMPTCP(experiments.DefaultMPTCPConfig())
			if err != nil {
				return err
			}
			printMPTCP("Figure 12 — MPTCP (OLIA) vs direct / overlay / split", res)
			fmt.Printf("  MPTCP >= best(direct, plain overlay) within 10%% for %.0f%% of paths "+
				"(paper: MPTCP reliably achieves the max overlay throughput)\n\n",
				res.FracMPTCPAtLeastBestOverlay(0.1)*100)
		}
		if want("fig13") {
			res, err := ms.RunMPTCP(experiments.UncoupledMPTCPConfig())
			if err != nil {
				return err
			}
			printMPTCP("Figure 13 — MPTCP (uncoupled CUBIC) saturates the NIC", res)
			fmt.Printf("  mean MPTCP throughput %.1f Mbps (paper: consistently close to the 100 Mbps NIC)\n\n",
				res.MeanMPTCP())
		}
	}
	return nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func printFig2(s *experiments.Suite) error {
	res, err := s.RunRealLife()
	if err != nil {
		return err
	}
	header("Figure 2 — real-life web servers: CDF of max-overlay/direct throughput ratio")
	fmt.Printf("  paths sampled: %d (paper: 6,600)\n", res.PathsSampled)
	fmt.Printf("  plain overlay: %v\n                 (paper: improved=49%%, avg factor 1.29)\n", res.PlainSummary())
	fmt.Printf("  split overlay: %v\n                 (paper: improved=78%%, avg=3.27, median=1.67, >=1.25x=67%%)\n", res.SplitSummary())
	printCurve("  plain CDF", res.PlainCDF().LogPoints(9))
	printCurve("  split CDF", res.SplitCDF().LogPoints(9))
	fmt.Println()
	return nil
}

func printFig3(res experiments.PrevalenceResult) {
	header("Figure 3 — controlled senders: CDF of throughput improvement ratios")
	fmt.Printf("  paths sampled: %d (paper: 1,250)\n", res.PathsSampled)
	fmt.Printf("  plain:    %v  (paper: improved=45%%, avg 6.53)\n", res.PlainSummary())
	fmt.Printf("  split:    %v  (paper: improved=74%%, avg 9.26, median 1.66, >=1.25x=59%%)\n", res.SplitSummary())
	fmt.Printf("  discrete: %v  (paper: improved=76%%, avg 8.14, median 1.74)\n", res.DiscreteSummary())
	printCurve("  split CDF", res.SplitCDF().LogPoints(9))
	fmt.Println()
}

func printFig4(res experiments.PrevalenceResult) {
	r := experiments.RetransFrom(res)
	header("Figure 4 — TCP retransmission rates: direct vs best overlay tunnel")
	fmt.Printf("  median direct:  %.3g   (paper: 2.69e-4)\n", r.MedianDirect())
	fmt.Printf("  median overlay: %.3g   (paper: 1.66e-5, an order of magnitude lower)\n", r.MedianOverlay())
	printCurve("  direct CDF", r.DirectCDF().LogPoints(7))
	printCurve("  overlay CDF", r.OverlayCDF().LogPoints(7))
	fmt.Println()
}

func printFig5(res experiments.PrevalenceResult) {
	r := experiments.RTTRatiosFrom(res)
	header("Figure 5 — overlay/direct average RTT ratio")
	fmt.Printf("  RTT reduced for %.0f%% of pairs (paper: 52%%)\n", r.FracReduced()*100)
	fmt.Printf("  ... for %.0f%% of pairs with direct RTT >= 100 ms (paper: 68%%)\n", r.FracReducedAboveRTT(100)*100)
	fmt.Printf("  ... for %.0f%% of pairs with direct RTT >= 150 ms (paper: 90%%)\n", r.FracReducedAboveRTT(150)*100)
	printCurve("  ratio CDF", r.CDF().LogPoints(7))
	fmt.Println()
}

func printFig6(long experiments.LongitudinalResult) {
	header("Figure 6 — one-week longitudinal throughput (top improved paths)")
	fmt.Printf("  %-5s %-22s %-22s %s\n", "idx", "direct (Mbps)", "max split overlay", "avg ratio")
	for _, r := range long.Rows {
		fmt.Printf("  %-5d %8.1f +- %-10.1f %8.1f +- %-10.1f %8.2f\n",
			r.Index, r.DirectMean, r.DirectStd, r.OverlayMean, r.OverlayStd, r.AvgImprovement)
	}
	mean, median := long.ImprovementStats()
	fmt.Printf("  improved for %.0f%% of paths (paper: 90%%); avg ratio %.2f (paper 8.39), median %.2f (paper 7.58)\n\n",
		long.FracImproved()*100, mean, median)
}

func printFig7(long experiments.LongitudinalResult) {
	header("Figure 7 — minimum overlay nodes needed per path")
	fmt.Printf("  per-path minimum: %v\n", long.MinOverlayNodes)
	fmt.Printf("  <=2 nodes suffice for %.0f%% of paths (paper: 70%%)\n\n", long.FracNeedingAtMost(2)*100)
}

func printTable1(long experiments.LongitudinalResult) {
	header("Table I — overlay node count vs mean/median of avg improvement factors")
	fmt.Printf("  %-6s %-12s %-12s %s\n", "nodes", "mean", "median", "(paper: 8.19/7.51, 8.36/7.58, 8.38/7.58, 8.39/7.58)")
	for _, row := range long.NodeCountRows {
		fmt.Printf("  %-6d %-12.2f %-12.2f\n", row.Nodes, row.MeanFactor, row.MedianFactor)
	}
	fmt.Println()
}

func printFig8(s *experiments.Suite, res experiments.PrevalenceResult) {
	d := s.Diversity(res)
	header("Figure 8 — diversity scores by improvement class")
	classes := []experiments.DiversityClass{
		experiments.ClassAll, experiments.ClassAbove125, experiments.Class100To125,
		experiments.Class050To100, experiments.ClassBelow050,
	}
	for _, c := range classes {
		cdf := d.CDF(c)
		fmt.Printf("  %-34s n=%-5d median=%.2f  >=0.4: %.0f%%\n",
			c, cdf.Len(), cdf.Quantile(0.5), d.FracScoreAtLeast(c, 0.4)*100)
	}
	fmt.Printf("  all overlays: %.0f%% score >= 0.38 (paper: 60%%), %.0f%% >= 0.55 (paper: 25%%)\n",
		d.FracScoreAtLeast(experiments.ClassAll, 0.38)*100,
		d.FracScoreAtLeast(experiments.ClassAll, 0.55)*100)
	fmt.Printf("  common routers in end segments: %.0f%% (paper: 87%%)\n", d.EndFraction()*100)
	longer, atLeast150 := d.FracLonger()
	fmt.Printf("  >25%%-improved overlay paths longer than direct: %.0f%% (paper: 96%%), >=1.5x hops: %.0f%% (paper: 45%%)\n",
		longer*100, atLeast150*100)
	asAtLeast, asLonger := d.FracASLonger()
	fmt.Printf("  AS-level: %.0f%% at least as long, %.0f%% strictly longer\n", asAtLeast*100, asLonger*100)
	fmt.Println("  (with cloud senders the overlay's first leg stays inside the provider AS, so the AS path")
	fmt.Println("   cannot shrink but rarely grows; the paper reports the same non-shrinking trend)")
	fmt.Println()
}

func printFig9(res experiments.PrevalenceResult) {
	header("Figure 9 — median improvement ratio by direct-path RTT bin")
	for _, row := range experiments.RTTBins(res) {
		fmt.Printf("  %v\n", row)
	}
	fmt.Println("  (paper: >2x median for >=140 ms, >3x for >=280 ms; >=84% improved above 140 ms)")
	fmt.Println()
}

func printFig10(res experiments.PrevalenceResult) {
	header("Figure 10 — median improvement ratio by direct-path loss bin")
	for _, row := range experiments.LossBins(res) {
		fmt.Printf("  %v\n", row)
	}
	fmt.Println("  (paper: >=86% improved above 0.25% loss; zero-loss paths polarized)")
	fmt.Println()
}

func printFig11(res experiments.PrevalenceResult) {
	points := experiments.Scatter(res)
	s := experiments.SummarizeScatter(points)
	header("Figure 11 — throughput increase ratio vs direct throughput")
	fmt.Printf("  %d direct paths under 10 Mbps: %.0f%% improved (paper: almost all), %.0f%% more than doubled (paper: majority)\n",
		s.SlowN, s.FracSlowImproved*100, s.FracSlowDoubled*100)
	// Print a compact binned view of the scatter.
	sort.Slice(points, func(i, j int) bool { return points[i].DirectMbps < points[j].DirectMbps })
	const cols = 6
	if len(points) >= cols {
		for c := 0; c < cols; c++ {
			chunk := points[c*len(points)/cols : (c+1)*len(points)/cols]
			var sumX, sumY float64
			for _, p := range chunk {
				sumX += p.DirectMbps
				sumY += p.IncreaseRatio
			}
			fmt.Printf("  direct ~%5.1f Mbps -> mean increase ratio %6.2f (n=%d)\n",
				sumX/float64(len(chunk)), sumY/float64(len(chunk)), len(chunk))
		}
	}
	fmt.Println()
}

func printC45(res experiments.PrevalenceResult) error {
	t, err := experiments.C45Thresholds(res)
	if err != nil {
		return err
	}
	header("Section V-B — C4.5 thresholds for throughput gain")
	fmt.Printf("  samples: %d   training accuracy: %.0f%%\n", t.Samples, t.Accuracy*100)
	fmt.Printf("  learned thresholds: loss reduction >= %.1f%%, RTT change <= %+.1f%%\n",
		t.LossReductionPct, t.RTTChangeMaxPct)
	fmt.Println("  (paper: RTT -10.5% and loss -12.1% together imply a high likelihood of gain)")
	max := 5
	if len(t.Rules) < max {
		max = len(t.Rules)
	}
	for _, r := range t.Rules[:max] {
		fmt.Printf("  rule: %v\n", r)
	}
	fmt.Println()
	return nil
}

func printMPTCP(title string, res experiments.MPTCPResult) {
	header(title)
	fmt.Printf("  pairs measured: %d (paper: 72); showing the %d worst direct paths\n",
		res.PairsMeasured, len(res.Rows))
	fmt.Printf("  %-4s %-30s %8s %8s %8s %8s\n", "idx", "pair", "direct", "overlay", "split", "mptcp")
	for _, r := range res.Rows {
		fmt.Printf("  %-4d %-30s %8.1f %8.1f %8.1f %8.1f\n",
			r.Index, r.Src+"->"+r.Dst, r.DirectMean, r.OverlayMean, r.SplitMean, r.MPTCPMean)
	}
}

func printMultiHop(mh experiments.MultiHopResult) {
	header("Section VII-B — one-hop vs two-hop split overlays")
	fmt.Printf("  %-34s %8s %8s %8s\n", "pair", "direct", "1-hop", "2-hop")
	for _, r := range mh.Rows {
		fmt.Printf("  %-34s %8.1f %8.1f %8.1f  (best 2-hop via %s)\n",
			r.Src+"->"+r.Dst, r.DirectMbps, r.OneHopMbps, r.TwoHopMbps, r.TwoHopVia)
	}
	fmt.Printf("  two-hop beats one-hop by >5%% on %.0f%% of pairs; median 2-hop/1-hop ratio %.2f\n",
		mh.FracTwoHopBetter()*100, mh.MedianTwoHopGain())
	fmt.Println("  (paper: left to future work; one hop captures most of the benefit)")
	fmt.Println()
}

func printPlacement(pl experiments.PlacementResult) {
	header("Section VII-A — greedy overlay node placement")
	for k := range pl.Chosen {
		fmt.Printf("  budget %d: %v  objective %.1f%% of all-DCs, coverage %.0f%%\n",
			k+1, pl.Chosen[k], pl.ObjectiveFrac[k]*100, pl.Coverage[k]*100)
	}
	fmt.Println("  (greedy carries the (1-1/e) submodular guarantee; cf. Table I's saturation at 2 nodes)")
	fmt.Println()
}

func printCost(rows []experiments.CostRow) {
	header("Section VII-D — overlay vs leased-line monthly cost")
	if len(rows) > 0 {
		fmt.Printf("  committed rate: %.0f Mbps (median improved pair's split-overlay throughput)\n",
			rows[0].AchievedMbps)
	}
	for _, r := range rows {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println("  (paper's abstract: overlay at a tenth of the cost of comparable private lines)")
	fmt.Println()
}

// printCurve renders a CDF as (x, P(X<=x)) pairs on one line.
func printCurve(name string, pts []stats.Point) {
	fmt.Printf("%s:", name)
	for _, p := range pts {
		fmt.Printf(" (%.3g, %.2f)", p.X, p.Y)
	}
	fmt.Println()
}
