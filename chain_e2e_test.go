package cronets_test

// Multi-hop chain end-to-end test — the acceptance scenario for ISSUE 8:
// a topology where the direct path and every single-relay path cross an
// impaired link, but the two-hop chain client -> A -> B -> dest rides
// clean segments end to end (each single path's bottleneck is on a leg
// the chain avoids — the CRONets observation that pairing cloud regions
// composes backbone path diversity no single hop has). When the direct
// path degrades, pathmon must commit the 2-hop chain, the gateway's next
// flow must ride it byte-identically through both real relays, and the
// switch must be visible in /debug/paths, in
// cronets_gateway_dials_total{path="chain"}, and as one chain.hop trace
// span per hop with correct parentage.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"cronets/internal/flowtrace"
	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

// rewriteDialer rewrites chosen target addresses before dialing — the
// per-node routing table of the emulated topology: relay A's egress
// toward the destination is congested (rewritten through a netem link)
// while its backbone leg toward relay B is clean.
type rewriteDialer struct {
	d       net.Dialer
	rewrite map[string]string
}

func (r *rewriteDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if to, ok := r.rewrite[address]; ok {
		address = to
	}
	return r.d.DialContext(ctx, network, address)
}

func TestChainFailoverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("netem e2e is skipped in -short mode")
	}
	reg := obs.NewRegistry()

	// Destination: a measure server (probe endpoint + echo application).
	destLn := mustListenCP(t)
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	// Relay B: clean egress to the destination. Clients reach it only
	// through an impaired access link (netemB) — B's bottleneck is its
	// ingress.
	relayBLn := mustListenCP(t)
	relayB := relay.New(relayBLn, relay.Config{})
	go relayB.Serve() //nolint:errcheck
	defer relayB.Close()

	netemBLn := mustListenCP(t)
	netemB := netem.New(netemBLn, relayBLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: 40 * time.Millisecond},
		Down: netem.Impairment{Latency: 40 * time.Millisecond},
	})
	go netemB.Serve() //nolint:errcheck
	defer netemB.Close()

	// A's congested egress toward the destination.
	netemADLn := mustListenCP(t)
	netemAD := netem.New(netemADLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: 40 * time.Millisecond},
		Down: netem.Impairment{Latency: 40 * time.Millisecond},
	})
	go netemAD.Serve() //nolint:errcheck
	defer netemAD.Close()

	// A's backbone leg toward relay B: initially congested too (the
	// chain has nothing to offer yet), clearing in phase 2.
	netemABLn := mustListenCP(t)
	netemAB := netem.New(netemABLn, relayBLn.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: 60 * time.Millisecond},
		Down: netem.Impairment{Latency: 60 * time.Millisecond},
	})
	go netemAB.Serve() //nolint:errcheck
	defer netemAB.Close()

	// Relay A: clean client access, but every route out is shaped — its
	// dialer is the emulated routing table. The fleet names netemB as
	// relay B's address, so A reaching "netemB" hops the backbone link.
	relayALn := mustListenCP(t)
	relayA := relay.New(relayALn, relay.Config{
		Dialer: &rewriteDialer{rewrite: map[string]string{
			destAddr:                 netemADLn.Addr().String(),
			netemBLn.Addr().String(): netemABLn.Addr().String(),
		}},
	})
	go relayA.Serve() //nolint:errcheck
	defer relayA.Close()

	// Direct path: clean at first, degraded in phase 2.
	netemDLn := mustListenCP(t)
	netemD := netem.New(netemDLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: 2 * time.Millisecond},
		Down: netem.Impairment{Latency: 2 * time.Millisecond},
		Obs:  reg,
	})
	go netemD.Serve() //nolint:errcheck
	defer netemD.Close()

	fleet := []string{relayALn.Addr().String(), netemBLn.Addr().String()}
	aAddr, bAddr := fleet[0], fleet[1]

	const probeInterval = 300 * time.Millisecond
	mon, err := pathmon.New(pathmon.Config{
		Dest:         destAddr,
		DirectAddr:   netemDLn.Addr().String(),
		Fleet:        fleet,
		Interval:     probeInterval,
		ProbeTimeout: 2 * time.Second,
		ProbeCount:   2,
		Alpha:        0.5,
		SwitchMargin: 0.2,
		SwitchRounds: 2,
		MaxHops:      2,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	tracer := flowtrace.New(flowtrace.Config{Node: "client", SampleRate: 1, Obs: reg})
	gw, err := gateway.New(gateway.Config{
		Dest:             destAddr,
		DirectAddr:       netemDLn.Addr().String(),
		Monitor:          mon,
		Obs:              reg,
		Tracer:           tracer,
		PoolSize:         1,
		PoolRelays:       2,
		PoolFillInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	metricsSrv := httptest.NewServer(reg.MetricsHandler())
	defer metricsSrv.Close()
	pathsSrv := httptest.NewServer(obs.GETOnly(mon.PathsHandler()))
	defer pathsSrv.Close()

	mon.Start()

	// Phase 1: the direct path is clean and wins; the chain exists as a
	// candidate but its backbone leg is congested.
	waitFor(t, 10*time.Second, "initial best path", func() bool {
		best, ok := mon.Best()
		return ok && best.IsDirect() && mon.Rounds() >= 2
	})
	conn, path, err := gw.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !path.IsDirect() {
		t.Fatalf("healthy-phase dial took %v, want direct", path)
	}
	_ = conn.Close()

	// Phase 2: the direct path degrades to 50 ms one-way while the A->B
	// backbone congestion clears. Every 1-hop path still crosses a 40 ms
	// impaired leg; only the chain client -> A -> B -> dest is clean end
	// to end. Pathmon must commit the chain.
	netemD.SetImpairment(
		netem.Impairment{Latency: 50 * time.Millisecond},
		netem.Impairment{Latency: 50 * time.Millisecond},
	)
	netemAB.SetImpairment(netem.Impairment{}, netem.Impairment{})
	degradeStart := time.Now()
	wantChain := pathmon.MakeRoute(aAddr, bAddr)
	waitFor(t, 20*time.Second, "switch to the 2-hop chain", func() bool {
		best, ok := mon.Best()
		return ok && best == wantChain
	})
	t.Logf("chain switch %v after degradation (interval %v)", time.Since(degradeStart), probeInterval)

	// The gateway's next flow rides the chain, through both real relays,
	// byte-identically: a 64 KiB random payload echoed frame-by-frame by
	// the destination must come back exactly.
	conn, path, err = gw.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if path != wantChain {
		t.Fatalf("post-degradation dial took %v, want chain %v", path, wantChain)
	}
	payload := make([]byte, 64<<10) // 4096 echo frames of 16 bytes
	rnd := rand.New(rand.NewSource(8))
	rnd.Read(payload)
	if _, err := conn.Write([]byte{'E'}); err != nil { // measure echo mode
		t.Fatal(err)
	}
	writeErr := make(chan error, 1)
	go func() {
		_, err := conn.Write(payload)
		writeErr <- err
	}()
	got := make([]byte, len(payload))
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("reading echoed payload over the chain: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatal("payload corrupted crossing the 2-hop chain")
	}
	if relayA.Stats().Accepted.Load() == 0 || relayB.Stats().Accepted.Load() == 0 {
		t.Fatalf("chain flow bypassed a relay: A accepted %d, B accepted %d",
			relayA.Stats().Accepted.Load(), relayB.Stats().Accepted.Load())
	}

	// The switch is visible to operators: the chain dial counter in
	// /metrics and a best-state chain row in /debug/paths.
	metrics := scrape(t, metricsSrv, "/")
	if !metricsCounterAtLeast(metrics, `cronets_gateway_dials_total{path="chain"}`, 1) {
		t.Fatalf("cronets_gateway_dials_total{path=\"chain\"} missing or zero:\n%s", metrics)
	}
	var rows []pathmon.PathRow
	if err := json.Unmarshal([]byte(scrape(t, pathsSrv, "/")), &rows); err != nil {
		t.Fatalf("/debug/paths is not valid JSON: %v", err)
	}
	var chainRow *pathmon.PathRow
	for i := range rows {
		if rows[i].Kind == "chain" && rows[i].State == "best" {
			chainRow = &rows[i]
		}
	}
	if chainRow == nil {
		t.Fatalf("/debug/paths has no best chain row: %+v", rows)
	}
	if len(chainRow.Hops) != 2 || chainRow.Hops[0] != aAddr || chainRow.Hops[1] != bAddr {
		t.Fatalf("/debug/paths chain hops = %v, want [%s %s]", chainRow.Hops, aAddr, bAddr)
	}
	if chainRow.ScoreMs == nil || chainRow.LastProbeAgeMs == nil {
		t.Fatalf("/debug/paths chain row missing score or probe age: %+v", chainRow)
	}

	// The chain dial left one chain.hop span per hop, nested the way the
	// preamble traveled: hop 0 under the gateway.dial span, hop 1 under
	// hop 0.
	spans := tracer.Snapshot()
	byID := make(map[uint64]*flowtrace.Span, len(spans))
	var hops []*flowtrace.Span
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "chain.hop" {
			hops = append(hops, s)
		}
	}
	if len(hops) != 2 {
		t.Fatalf("chain.hop spans = %d, want 2 (one per hop)", len(hops))
	}
	var hop0, hop1 *flowtrace.Span
	if hops[1].Parent == hops[0].ID {
		hop0, hop1 = hops[0], hops[1]
	} else if hops[0].Parent == hops[1].ID {
		hop0, hop1 = hops[1], hops[0]
	} else {
		t.Fatalf("chain.hop spans are not parent/child: %d<-%d and %d<-%d",
			hops[0].ID, hops[0].Parent, hops[1].ID, hops[1].Parent)
	}
	dialSpan := byID[hop0.Parent]
	if dialSpan == nil || dialSpan.Name != "gateway.dial" {
		t.Fatalf("hop 0 parents under %+v, want the gateway.dial span", dialSpan)
	}
	if hop0.Trace != dialSpan.Trace || hop1.Trace != dialSpan.Trace {
		t.Fatal("chain.hop spans left the dial's trace")
	}
}
