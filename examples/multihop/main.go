// Multi-hop relay chaining: the paper's §VII-B two-hop configuration on
// localhost. A destination sits behind three candidate routes — the
// direct Internet path, two single cloud relays, and the two-hop chain
// through both relays — where every single-hop route crosses a congested
// leg the chain avoids: relay A has clean client access but a congested
// egress toward the destination, relay B has a clean egress but a
// congested access link, and the A->B backbone is clean. Pathmon probes
// and ranks all of them (MaxHops: 2 enumerates the chains), and the
// demo dials the winner through chain.Dial, printing the ranked table.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"cronets/internal/chain"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

var congested = netem.Impairment{Latency: 40 * time.Millisecond}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// shaped starts a netem proxy to target, impaired in both directions.
func shaped(target string, imp netem.Impairment) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	p := netem.New(ln, target, netem.Config{Up: imp, Down: imp})
	go p.Serve() //nolint:errcheck // shut down via Close
	return p.Addr().String(), p, nil
}

// rewriteDialer is a relay's emulated routing table: chosen targets are
// rewritten onto shaped legs before dialing.
type rewriteDialer struct {
	d       net.Dialer
	rewrite map[string]string
}

func (r *rewriteDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if to, ok := r.rewrite[address]; ok {
		address = to
	}
	return r.d.DialContext(ctx, network, address)
}

func run() error {
	// The destination: a measure server answering echo probes.
	destLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	// The direct path crosses congested transit.
	directAddr, directLink, err := shaped(destAddr, congested)
	if err != nil {
		return err
	}
	defer directLink.Close()

	// Relay B: clean egress to the destination, congested client access.
	relayBLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	relayB := relay.New(relayBLn, relay.Config{})
	go relayB.Serve() //nolint:errcheck
	defer relayB.Close()
	bAccess, bLink, err := shaped(relayBLn.Addr().String(), congested)
	if err != nil {
		return err
	}
	defer bLink.Close()

	// Relay A: clean client access, congested egress to the destination,
	// clean backbone to relay B (the dialer is A's routing table).
	aEgress, aLink, err := shaped(destAddr, congested)
	if err != nil {
		return err
	}
	defer aLink.Close()
	relayALn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	relayA := relay.New(relayALn, relay.Config{
		Dialer: &rewriteDialer{rewrite: map[string]string{
			destAddr: aEgress,                  // A -> dest: congested
			bAccess:  relayBLn.Addr().String(), // A -> B: clean backbone
		}},
	})
	go relayA.Serve() //nolint:errcheck
	defer relayA.Close()

	// Pathmon with MaxHops 2: the fleet's top single-hop relays are
	// paired into two-hop chain candidates, probed and ranked in the
	// same table.
	mon, err := pathmon.New(pathmon.Config{
		Dest:         destAddr,
		DirectAddr:   directAddr,
		Fleet:        []string{relayALn.Addr().String(), bAccess},
		Interval:     250 * time.Millisecond,
		ProbeTimeout: 2 * time.Second, // the congested legs cost ~80 ms RTT per exchange
		ProbeCount:   2,
		Alpha:        0.5,
		SwitchRounds: 2,
		MaxHops:      2,
	})
	if err != nil {
		return err
	}
	defer mon.Close()
	mon.Start()

	fmt.Println("probing direct, 1-hop, and 2-hop chain paths...")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if best, ok := mon.Best(); ok && best.IsChain() {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no chain committed within %v", 10*time.Second)
		}
		time.Sleep(100 * time.Millisecond)
	}

	fmt.Println("\nranked path table:")
	for _, st := range mon.Ranked() {
		marker := " "
		if st.Best {
			marker = "*"
		}
		fmt.Printf("  %s %-7s %-40s srtt %6.1f ms\n",
			marker, st.Route.Kind(), st.Route, float64(st.SRTT)/float64(time.Millisecond))
	}

	// Dial the committed chain and measure through it.
	best, _ := mon.Best()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := chain.Dial(ctx, best.Hops(), destAddr, chain.Options{})
	if err != nil {
		return err
	}
	defer conn.Close()
	stats, err := measure.ProbeRTT(conn, 4)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s: avg RTT %.1f ms over %s\n",
		best, float64(stats.Avg)/float64(time.Millisecond), chain.String(best.Hops()))
	fmt.Println("every single-hop path crosses a 40 ms congested leg; the chain avoids them all.")
	return nil
}
