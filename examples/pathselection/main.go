// Path selection with MPTCP: the paper's Section VI answer to "which
// overlay node should I use?" — none in particular. Open one subflow on
// the direct path and one through every overlay node; the coupled
// congestion controller funnels traffic onto the best path automatically,
// while the uncoupled variant aggregates them all up to the NIC.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cronets"
	"cronets/internal/tcpsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := cronets.DefaultTopology(11)
	topo.ClientStubs = 8
	topo.ServerStubs = 2
	topo.CloudDCCities = []string{
		"WashingtonDC", "SanJose", "Dallas", "Amsterdam", "Tokyo", "London", "Singapore",
	}
	in, err := cronets.GenerateInternet(topo)
	if err != nil {
		return err
	}
	cn := cronets.New(in, cronets.DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	spec := cronets.Spec{Duration: time.Minute}

	// Two data centers act as the MPTCP proxies; the rest are overlay
	// nodes, giving the proxies 1 direct + 5 overlay paths.
	src := in.DCs["Singapore"]
	dst := in.DCs["WashingtonDC"]
	var overlays []string
	for _, dc := range cn.DCCities() {
		if dc != "Singapore" && dc != "WashingtonDC" {
			overlays = append(overlays, dc)
		}
	}

	pr, err := cn.MeasurePair(rng, src, dst, overlays, spec, 0)
	if err != nil {
		return err
	}
	fmt.Printf("Singapore -> WashingtonDC over %d paths\n\n", 1+len(overlays))
	fmt.Printf("  single-path TCP, direct:  %6.1f Mbps\n", pr.Direct.ThroughputMbps)
	best, _ := pr.BestOverlay(cronets.Overlay)
	fmt.Printf("  best overlay (probed):    %6.1f Mbps  via %s\n", best.ThroughputMbps, best.DC)

	coupled, err := cn.MeasureMPTCP(rng, src, dst, overlays,
		cronets.OLIA, tcpsim.Reno, 100, spec, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  MPTCP (OLIA, coupled):    %6.1f Mbps  — no probing needed\n", coupled.TotalMbps)

	uncoupled, err := cn.MeasureMPTCP(rng, src, dst, overlays,
		cronets.Uncoupled, tcpsim.Cubic, 100, spec, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  MPTCP (uncoupled CUBIC):  %6.1f Mbps  — sums the paths up to the NIC\n\n", uncoupled.TotalMbps)

	fmt.Println("  per-subflow (coupled):  ", formatMbps(coupled.SubflowMbps))
	fmt.Println("  per-subflow (uncoupled):", formatMbps(uncoupled.SubflowMbps))
	return nil
}

func formatMbps(xs []float64) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", x)
	}
	return out + " Mbps"
}
