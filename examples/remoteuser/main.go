// Remote user scenario: the paper's second motivating use case. A remote
// worker tunnels traffic through a cloud overlay node to reach a private
// service. The example exercises the real tunnel stack end to end —
// GRE-like encapsulation over a stream, and the overlay node's IP
// masquerade, which lets the service reply through the node without any
// tunnel configuration of its own — and then compares throughput on a
// netem-impaired "hotel Wi-Fi" direct path against the cloud detour.
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/relay"
	"cronets/internal/tunnel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := tunnelDemo(); err != nil {
		return err
	}
	return throughputDemo()
}

// tunnelDemo sends a request packet from the remote user through an
// overlay node into a packet switch and receives the reply through the
// node's NAT.
func tunnelDemo() error {
	fmt.Println("1. Tunnel + NAT through the overlay node")

	var (
		userAddr    = netip.MustParseAddr("203.0.113.10") // remote user
		overlayAddr = netip.MustParseAddr("198.51.100.1") // cloud VM
		serverAddr  = netip.MustParseAddr("192.0.2.20")   // corporate app
	)

	// "The Internet" around the overlay node, with the corporate server
	// attached.
	sw := tunnel.NewSwitch()
	serverPort := sw.Attach(serverAddr)
	overlayPort := sw.Attach(overlayAddr)

	// The tunnel between the user and the overlay node is an in-process
	// pipe here; in a deployment it is a TCP/UDP connection to the VM.
	userSide, nodeSide := net.Pipe()
	node := tunnel.NewOverlayNode(nodeSide, overlayAddr, overlayPort)
	if err := node.Start(); err != nil {
		return err
	}
	defer node.Close()

	user := tunnel.NewEndpoint(userSide)
	defer user.Close()

	// The corporate server answers whatever lands on it.
	go func() {
		for {
			pkt, err := serverPort.RecvPacket()
			if err != nil {
				return
			}
			reply := tunnel.Packet{
				Proto:   pkt.Proto,
				Src:     pkt.Dst,
				Dst:     pkt.Src,
				Payload: append([]byte("re: "), pkt.Payload...),
			}
			_ = serverPort.SendPacket(reply)
		}
	}()

	request := tunnel.Packet{
		Proto:   tunnel.ProtoTCP,
		Src:     netip.AddrPortFrom(userAddr, 51000),
		Dst:     netip.AddrPortFrom(serverAddr, 443),
		Payload: []byte("GET /payroll"),
	}
	if err := user.Send(request); err != nil {
		return err
	}
	reply, err := user.Recv()
	if err != nil {
		return err
	}
	fmt.Printf("   user sent    %q to %v\n", request.Payload, request.Dst)
	fmt.Printf("   server saw source %v (the overlay node's NAT address)\n", node.NAT().External())
	fmt.Printf("   user received %q from %v\n\n", reply.Payload, reply.Src)
	return nil
}

// throughputDemo compares the impaired direct path against the overlay
// detour using real sockets.
func throughputDemo() error {
	fmt.Println("2. Hotel Wi-Fi direct path vs cloud detour")

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := measure.NewServer(serverLn)
	go server.Serve() //nolint:errcheck
	defer server.Close()

	// Direct: long, thin, jittery.
	directLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	direct := netem.New(directLn, server.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: 90 * time.Millisecond, Jitter: 20 * time.Millisecond, RateMbps: 4},
		Down: netem.Impairment{Latency: 90 * time.Millisecond, Jitter: 20 * time.Millisecond, RateMbps: 4},
	})
	go direct.Serve() //nolint:errcheck
	defer direct.Close()

	// Overlay: short hop to the cloud node, clean leg onward.
	legLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	leg := netem.New(legLn, server.Addr().String(), netem.Config{
		Up:   netem.Impairment{Latency: 15 * time.Millisecond, RateMbps: 40},
		Down: netem.Impairment{Latency: 15 * time.Millisecond, RateMbps: 40},
	})
	go leg.Serve() //nolint:errcheck
	defer leg.Close()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	cloud := relay.New(cloudLn, relay.Config{Target: leg.Addr().String()})
	go cloud.Serve() //nolint:errcheck
	defer cloud.Close()

	report := func(name, addr string) error {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		rtt, err := measure.ProbeRTT(conn, 5)
		if err != nil {
			return err
		}
		conn2, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer conn2.Close()
		if _, err := measure.SinkClient(conn2); err != nil {
			return err
		}
		thr, err := measure.Throughput(conn2, 2*time.Second, 64<<10)
		if err != nil {
			return err
		}
		fmt.Printf("   %-16s %6.1f Mbps, rtt avg %v\n", name, thr.Mbps, rtt.Avg.Round(time.Millisecond))
		return nil
	}
	if err := report("direct:", direct.Addr().String()); err != nil {
		return err
	}
	if err := report("via overlay:", cloud.Addr().String()); err != nil {
		return err
	}
	return nil
}
