// Branch office interconnect over real sockets: the paper's first
// motivating scenario. Office A reaches office B's file server either over
// the "default Internet path" (a netem-shaped thin, slow link) or through
// a cloud relay reached over a much cleaner shaped path — and finally over
// a multipath channel using both paths at once, the MPTCP-proxy deployment
// of Section VI-A.
//
// Everything runs on localhost; netem proxies stand in for the wide-area
// conditions.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"cronets/internal/measure"
	"cronets/internal/multipath"
	"cronets/internal/netem"
	"cronets/internal/relay"
)

// Path conditions: the default route is thin and slow; the cloud detour is
// clean and fast (the overlay premise of the paper).
var (
	directImp = netem.Impairment{Latency: 40 * time.Millisecond, RateMbps: 8}
	cloudImp  = netem.Impairment{Latency: 10 * time.Millisecond, RateMbps: 60}
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// shapedPath starts a netem proxy to target with the impairment in both
// directions, returning its dialable address and a closer.
func shapedPath(target string, imp netem.Impairment) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	p := netem.New(ln, target, netem.Config{Up: imp, Down: imp})
	go p.Serve() //nolint:errcheck // shut down via Close
	return p.Addr().String(), p, nil
}

// cloudRelayPath starts a relay ("the cloud VM") whose onward leg to
// target is shaped with the cloud impairment.
func cloudRelayPath(target string) (string, func(), error) {
	legAddr, legCloser, err := shapedPath(target, cloudImp)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = legCloser.Close()
		return "", nil, err
	}
	r := relay.New(ln, relay.Config{Target: legAddr})
	go r.Serve() //nolint:errcheck
	closer := func() {
		_ = r.Close()
		_ = legCloser.Close()
	}
	return r.Addr().String(), closer, nil
}

func run() error {
	// Office B's measurement server (the remote file server).
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := measure.NewServer(serverLn)
	go server.Serve() //nolint:errcheck
	defer server.Close()
	serverAddr := server.Addr().String()

	directAddr, directCloser, err := shapedPath(serverAddr, directImp)
	if err != nil {
		return err
	}
	defer directCloser.Close()

	cloudAddr, cloudCloser, err := cloudRelayPath(serverAddr)
	if err != nil {
		return err
	}
	defer cloudCloser()

	const runFor = 2 * time.Second
	fmt.Println("Branch office A -> branch office B file transfer")

	directMbps, err := timedUpload(directAddr, runFor)
	if err != nil {
		return err
	}
	fmt.Printf("  direct path:      %6.1f Mbps\n", directMbps)

	cloudMbps, err := timedUpload(cloudAddr, runFor)
	if err != nil {
		return err
	}
	fmt.Printf("  via cloud relay:  %6.1f Mbps  (%.1fx)\n", cloudMbps, cloudMbps/directMbps)

	mpMbps, err := multipathTransfer(runFor)
	if err != nil {
		return err
	}
	fmt.Printf("  multipath (both): %6.1f Mbps  (%.1fx)\n", mpMbps, mpMbps/directMbps)
	fmt.Println("\nThe relay path wins; the multipath channel uses both without choosing.")
	return nil
}

// timedUpload measures sink-mode upload throughput to an address.
func timedUpload(addr string, runFor time.Duration) (float64, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if _, err := measure.SinkClient(conn); err != nil {
		return 0, err
	}
	res, err := measure.Throughput(conn, runFor, 64<<10)
	if err != nil {
		return 0, err
	}
	return res.Mbps, nil
}

// multipathTransfer stripes one stream across both shaped paths: office B
// runs the receiving proxy; each subflow traverses its own netem-shaped
// route (one direct, one through the cloud relay).
func multipathTransfer(runFor time.Duration) (float64, error) {
	// Office B's multipath rendezvous.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	rendezvous := ln.Addr().String()

	// Shaped routes toward the rendezvous.
	directAddr, directCloser, err := shapedPath(rendezvous, directImp)
	if err != nil {
		return 0, err
	}
	defer directCloser.Close()
	cloudAddr, cloudCloser, err := cloudRelayPath(rendezvous)
	if err != nil {
		return 0, err
	}
	defer cloudCloser()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	var senderConns, receiverConns []net.Conn
	for _, addr := range []string{directAddr, cloudAddr} {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return 0, err
		}
		senderConns = append(senderConns, c)
		receiverConns = append(receiverConns, <-accepted)
	}

	sender, err := multipath.NewSender(senderConns, multipath.Config{})
	if err != nil {
		return 0, err
	}
	receiver, err := multipath.NewReceiver(receiverConns, multipath.Config{})
	if err != nil {
		return 0, err
	}
	defer receiver.Close()

	done := make(chan int64, 1)
	go func() {
		n, _ := io.Copy(io.Discard, receiver)
		done <- n
	}()

	res, err := measure.Throughput(sender, runFor, 64<<10)
	if err != nil {
		return 0, err
	}
	if err := sender.Close(); err != nil {
		return 0, err
	}
	received := <-done
	// Goodput at the receiver over the full run.
	return float64(received) * 8 / res.Elapsed.Seconds() / 1e6, nil
}
