// Control plane demo — the paper's Fig. 1 scenario on real sockets.
//
// A destination (a measure echo server) is reachable two ways: directly
// over an emulated wide-area link, and through each of three cloud
// relays, each behind its own emulated link. A pathmon monitor probes
// all four paths continuously; a gateway fronts the destination and
// steers every new connection onto the current best path.
//
// Mid-run the direct link degrades (netem adds 120 ms of delay — a
// congested or re-routed Internet path). Within one probe interval plus
// the hysteresis window the monitor switches, and the gateway's next
// connections ride a relay instead — no client reconfiguration, no
// disturbance to established flows.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"cronets/internal/gateway"
	"cronets/internal/measure"
	"cronets/internal/netem"
	"cronets/internal/obs"
	"cronets/internal/pathmon"
	"cronets/internal/relay"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func listen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func run() error {
	reg := obs.NewRegistry()

	// Destination: a measure echo/sink server standing in for the
	// application the client wants to reach.
	destLn, err := listen()
	if err != nil {
		return err
	}
	dest := measure.NewServer(destLn)
	go dest.Serve() //nolint:errcheck
	defer dest.Close()
	destAddr := destLn.Addr().String()

	// Direct path: client -> netem (the wide-area Internet) -> dest.
	// Starts healthy at 10 ms one-way.
	directLn, err := listen()
	if err != nil {
		return err
	}
	directLink := netem.New(directLn, destAddr, netem.Config{
		Up:   netem.Impairment{Latency: 10 * time.Millisecond},
		Down: netem.Impairment{Latency: 10 * time.Millisecond},
		Obs:  reg,
	})
	go directLink.Serve() //nolint:errcheck
	defer directLink.Close()

	// Three cloud relays, each behind its own access link (one-way
	// latencies 15/20/25 ms — worse than the healthy direct path).
	var fleet []string
	for i, oneWay := range []time.Duration{15 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond} {
		relayLn, err := listen()
		if err != nil {
			return err
		}
		rl := relay.New(relayLn, relay.Config{Obs: reg})
		go rl.Serve() //nolint:errcheck
		defer rl.Close()

		linkLn, err := listen()
		if err != nil {
			return err
		}
		link := netem.New(linkLn, relayLn.Addr().String(), netem.Config{
			Up:   netem.Impairment{Latency: oneWay},
			Down: netem.Impairment{Latency: oneWay},
		})
		go link.Serve() //nolint:errcheck
		defer link.Close()
		fleet = append(fleet, link.Addr().String())
		fmt.Printf("relay %d: %s (one-way +%v)\n", i+1, link.Addr(), oneWay)
	}

	// Control plane: probe every 500 ms, switch after 2 consecutive
	// rounds of a >10% win.
	mon, err := pathmon.New(pathmon.Config{
		Dest:         destAddr,
		DirectAddr:   directLink.Addr().String(),
		Fleet:        fleet,
		Interval:     500 * time.Millisecond,
		ProbeCount:   3,
		SwitchMargin: 0.1,
		SwitchRounds: 2,
		Obs:          reg,
	})
	if err != nil {
		return err
	}
	defer mon.Close()
	mon.Start()

	gw, err := gateway.New(gateway.Config{
		Dest:       destAddr,
		DirectAddr: directLink.Addr().String(),
		Monitor:    mon,
		Obs:        reg,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	fmt.Printf("\ndest %s, direct link %s; probing...\n\n", destAddr, directLink.Addr())

	// Client loop: a fresh connection through the gateway every 400 ms,
	// RTT-probed so the chosen path's quality is visible.
	dial := func(tag string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		conn, path, err := gw.Dial(ctx)
		if err != nil {
			fmt.Printf("%-12s dial failed: %v\n", tag, err)
			return
		}
		defer conn.Close()
		stats, err := measure.ProbeRTTContext(ctx, conn, 3, nil)
		if err != nil {
			fmt.Printf("%-12s %-28s probe failed: %v\n", tag, path, err)
			return
		}
		fmt.Printf("%-12s %-28s rtt %6.1f ms\n", tag, path, float64(stats.Avg.Microseconds())/1000)
	}

	deadline := time.Now().Add(8 * time.Second)
	degraded := false
	for time.Now().Before(deadline) {
		phase := "healthy"
		if degraded {
			phase = "degraded"
		}
		dial(phase)
		if !degraded && time.Now().After(deadline.Add(-5*time.Second)) {
			degraded = true
			directLink.SetImpairment(
				netem.Impairment{Latency: 120 * time.Millisecond},
				netem.Impairment{Latency: 120 * time.Millisecond},
			)
			fmt.Println("\n*** direct link degraded to 120 ms one-way ***")
		}
		time.Sleep(400 * time.Millisecond)
	}

	fmt.Println("\nfinal path table:")
	for _, st := range mon.Ranked() {
		marker := " "
		if st.Best {
			marker = "*"
		}
		state := "up"
		if st.Down {
			state = "DOWN"
		}
		fmt.Printf(" %s %-28s score %8.1f ms  srtt %6.1f ms  samples %-3d %s\n",
			marker, st.Route, st.Score*1000,
			float64(st.SRTT.Microseconds())/1000, st.Samples, state)
	}

	sw := reg.Counter("cronets_pathmon_switches_total", "").Value()
	fmt.Printf("\ncronets_pathmon_switches_total = %d\n", sw)
	if best, _ := mon.Best(); best.IsDirect() {
		return fmt.Errorf("gateway still prefers the degraded direct path")
	}
	fmt.Println("new connections now ride the overlay — Fig. 1 reproduced.")
	return nil
}
