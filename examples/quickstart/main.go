// Quickstart: build a small simulated CRONet, measure one pair over the
// direct path and through every cloud data center, and print the paper's
// four configurations side by side.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cronets"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A reduced topology keeps the example fast; see
	// cronets.DefaultTopology for the paper-scale configuration.
	topo := cronets.DefaultTopology(7)
	topo.ClientStubs = 12
	topo.ServerStubs = 3
	in, err := cronets.GenerateInternet(topo)
	if err != nil {
		return err
	}
	cn := cronets.New(in, cronets.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	spec := cronets.Spec{Duration: 30 * time.Second}

	fmt.Println("CRONets quickstart: direct vs overlay measurements")
	fmt.Println()
	for i := 0; i < 4; i++ {
		src := in.Servers[i%len(in.Servers)]
		dst := in.Clients[i]
		pr, err := cn.MeasurePair(rng, src, dst, cn.DCCities(), spec, 0)
		if err != nil {
			return err
		}
		plain, _ := pr.BestOverlay(cronets.Overlay)
		split, _ := pr.BestOverlay(cronets.SplitOverlay)
		disc, _ := pr.BestOverlay(cronets.DiscreteOverlay)
		fmt.Printf("%s -> %s\n", src.Name, dst.Name)
		fmt.Printf("  direct:        %6.1f Mbps  (rtt %v, retx %.2g)\n",
			pr.Direct.ThroughputMbps, pr.Direct.AvgRTT.Round(time.Millisecond), pr.Direct.RetransRate)
		fmt.Printf("  best overlay:  %6.1f Mbps  via %s\n", plain.ThroughputMbps, plain.DC)
		fmt.Printf("  best split:    %6.1f Mbps  via %s\n", split.ThroughputMbps, split.DC)
		fmt.Printf("  discrete bound:%6.1f Mbps  via %s\n", disc.ThroughputMbps, disc.DC)
		fmt.Printf("  split improvement: %.2fx\n\n", split.ThroughputMbps/pr.Direct.ThroughputMbps)
	}
	return nil
}
