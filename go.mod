module cronets

go 1.23
